#include "sparql/lexer.h"

#include <cctype>

#include "rdf/term.h"
#include "util/string_util.h"

namespace axon {

namespace {

bool IsKeywordWord(const std::string& upper) {
  return upper == "SELECT" || upper == "WHERE" || upper == "PREFIX" ||
         upper == "DISTINCT" || upper == "FILTER" || upper == "LIMIT" ||
         upper == "ASK" || upper == "OPTIONAL" || upper == "UNION" ||
         upper == "ORDER" || upper == "BY" || upper == "ASC" ||
         upper == "DESC" || upper == "OFFSET" || upper == "GROUP" ||
         upper == "COUNT" || upper == "AS" || upper == "BOUND";
}

bool IsPnameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.';
}

Status LexError(size_t line, const std::string& msg) {
  return Status::ParseError("line " + std::to_string(line) + ": " + msg);
}

}  // namespace

Result<std::vector<Token>> TokenizeSparql(std::string_view text) {
  std::vector<Token> tokens;
  size_t line = 1;
  size_t i = 0;
  const size_t n = text.size();

  auto push = [&tokens, &line](TokenKind kind, std::string value) {
    tokens.push_back(Token{kind, std::move(value), line});
  };

  while (i < n) {
    char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c == '<') {
      // '<' opens an IRI ref but is also the less-than operator in FILTER
      // expressions. It is an IRI only when a '>' closes it before any
      // character that cannot appear inside an IRI ref (whitespace, quotes,
      // braces, a second '<').
      size_t j = i + 1;
      while (j < n && text[j] != '>' && text[j] != '<' && text[j] != '"' &&
             text[j] != '{' && text[j] != '}' &&
             !std::isspace(static_cast<unsigned char>(text[j]))) {
        ++j;
      }
      if (j < n && text[j] == '>') {
        push(TokenKind::kIriRef, std::string(text.substr(i + 1, j - i - 1)));
        i = j + 1;
        continue;
      }
      if (i + 1 < n && text[i + 1] == '=') {
        push(TokenKind::kPunct, "<=");
        i += 2;
      } else {
        push(TokenKind::kPunct, "<");
        ++i;
      }
      continue;
    }
    if (c == '>') {
      if (i + 1 < n && text[i + 1] == '=') {
        push(TokenKind::kPunct, ">=");
        i += 2;
      } else {
        push(TokenKind::kPunct, ">");
        ++i;
      }
      continue;
    }
    if (c == '!') {
      if (i + 1 < n && text[i + 1] == '=') {
        push(TokenKind::kPunct, "!=");
        i += 2;
      } else {
        push(TokenKind::kPunct, "!");
        ++i;
      }
      continue;
    }
    if (c == '&' || c == '|') {
      if (i + 1 < n && text[i + 1] == c) {
        push(TokenKind::kPunct, std::string(2, c));
        i += 2;
        continue;
      }
      return LexError(line, std::string("expected '") + c + c + "'");
    }
    if (c == '?' || c == '$') {
      size_t end = i + 1;
      while (end < n && (std::isalnum(static_cast<unsigned char>(text[end])) ||
                         text[end] == '_')) {
        ++end;
      }
      if (end == i + 1) return LexError(line, "empty variable name");
      push(TokenKind::kVariable, std::string(text.substr(i + 1, end - i - 1)));
      i = end;
      continue;
    }
    if (c == '"') {
      // Scan the quoted part plus optional @lang / ^^<iri>; keep the whole
      // canonical serialization as the token value so Term::FromCanonical
      // parses it downstream.
      size_t j = i + 1;
      while (j < n) {
        if (text[j] == '\\') {
          j += 2;
          continue;
        }
        if (text[j] == '"') break;
        if (text[j] == '\n') return LexError(line, "newline in literal");
        ++j;
      }
      if (j >= n) return LexError(line, "unterminated literal");
      size_t end = j + 1;
      if (end < n && text[end] == '@') {
        ++end;
        while (end < n && (std::isalnum(static_cast<unsigned char>(text[end])) ||
                           text[end] == '-')) {
          ++end;
        }
      } else if (end + 1 < n && text[end] == '^' && text[end + 1] == '^') {
        end += 2;
        if (end >= n || text[end] != '<') {
          return LexError(line, "expected datatype IRI after ^^");
        }
        size_t close = text.find('>', end);
        if (close == std::string_view::npos) {
          return LexError(line, "unterminated datatype IRI");
        }
        end = close + 1;
      }
      push(TokenKind::kString, std::string(text.substr(i, end - i)));
      i = end;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t end = i;
      while (end < n && std::isdigit(static_cast<unsigned char>(text[end]))) {
        ++end;
      }
      push(TokenKind::kInteger, std::string(text.substr(i, end - i)));
      i = end;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':') {
      // Word: keyword, 'a', or prefixed name (possibly with empty prefix).
      size_t end = i;
      bool has_colon = false;
      while (end < n && (IsPnameChar(text[end]) || text[end] == ':')) {
        if (text[end] == ':') has_colon = true;
        ++end;
      }
      std::string word(text.substr(i, end - i));
      // Trailing '.' belongs to the statement terminator, not the name.
      while (!word.empty() && word.back() == '.') {
        word.pop_back();
        --end;
      }
      if (word.empty()) return LexError(line, "stray '.'");
      if (has_colon) {
        push(TokenKind::kPname, word);
      } else if (word == "a") {
        push(TokenKind::kA, word);
      } else {
        std::string upper = word;
        for (char& ch : upper) ch = static_cast<char>(std::toupper(ch));
        if (!IsKeywordWord(upper)) {
          return LexError(line, "unexpected word '" + word + "'");
        }
        push(TokenKind::kKeyword, upper);
      }
      i = end;
      continue;
    }
    if (c == '{' || c == '}' || c == '.' || c == ';' || c == ',' || c == '(' ||
        c == ')' || c == '=' || c == '*') {
      push(TokenKind::kPunct, std::string(1, c));
      ++i;
      continue;
    }
    return LexError(line, std::string("unexpected character '") + c + "'");
  }
  push(TokenKind::kEof, "");
  return tokens;
}

}  // namespace axon
