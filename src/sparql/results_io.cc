#include "sparql/results_io.h"

#include <cstdio>
#include <cstdlib>

#include "rdf/term.h"

namespace axon {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string CsvEscape(std::string_view s) {
  bool needs_quote = s.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(s);
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

namespace {

constexpr char kXsdInteger[] = "http://www.w3.org/2001/XMLSchema#integer";

// The term behind a cell id: dictionary terms resolve normally, value-
// tagged ids materialize as xsd:integer literals. Never called on
// kInvalidId — each writer handles unbound cells in its own syntax.
Result<Term> CellTerm(TermId id, const Dictionary& dict) {
  if (IsValueId(id)) {
    return Term::Literal(std::to_string(ValueIdPayload(id)), kXsdInteger);
  }
  return dict.GetTerm(id);
}

Result<std::string> WriteTsv(const BindingTable& table,
                             const Dictionary& dict) {
  std::string out;
  for (size_t c = 0; c < table.num_cols(); ++c) {
    if (c > 0) out += '\t';
    out += "?" + table.vars()[c];
  }
  out += '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_cols(); ++c) {
      if (c > 0) out += '\t';
      TermId id = table.at(r, c);
      if (id == kInvalidId) continue;  // unbound: empty field
      AXON_ASSIGN_OR_RETURN(Term term, CellTerm(id, dict));
      out += term.Canonical();
    }
    out += '\n';
  }
  return out;
}

Result<std::string> WriteCsv(const BindingTable& table,
                             const Dictionary& dict) {
  std::string out;
  for (size_t c = 0; c < table.num_cols(); ++c) {
    if (c > 0) out += ',';
    out += CsvEscape(table.vars()[c]);
  }
  out += "\r\n";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_cols(); ++c) {
      if (c > 0) out += ',';
      TermId id = table.at(r, c);
      if (id == kInvalidId) continue;  // unbound: empty field
      AXON_ASSIGN_OR_RETURN(Term term, CellTerm(id, dict));
      out += CsvEscape(term.value);  // bare lexical form, per SPARQL CSV
    }
    out += "\r\n";
  }
  return out;
}

Result<std::string> WriteJson(const BindingTable& table,
                              const Dictionary& dict) {
  std::string out = "{\"head\":{\"vars\":[";
  for (size_t c = 0; c < table.num_cols(); ++c) {
    if (c > 0) out += ',';
    out += "\"" + JsonEscape(table.vars()[c]) + "\"";
  }
  out += "]},\"results\":{\"bindings\":[";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (r > 0) out += ',';
    out += '{';
    bool first_binding = true;
    for (size_t c = 0; c < table.num_cols(); ++c) {
      TermId id = table.at(r, c);
      if (id == kInvalidId) continue;  // unbound: binding absent
      if (!first_binding) out += ',';
      first_binding = false;
      AXON_ASSIGN_OR_RETURN(Term term, CellTerm(id, dict));
      out += "\"" + JsonEscape(table.vars()[c]) + "\":{";
      switch (term.kind) {
        case TermKind::kIri:
          out += "\"type\":\"uri\",\"value\":\"" + JsonEscape(term.value) +
                 "\"";
          break;
        case TermKind::kBlank:
          out += "\"type\":\"bnode\",\"value\":\"" + JsonEscape(term.value) +
                 "\"";
          break;
        case TermKind::kLiteral:
          out += "\"type\":\"literal\",\"value\":\"" +
                 JsonEscape(term.value) + "\"";
          if (!term.language.empty()) {
            out += ",\"xml:lang\":\"" + JsonEscape(term.language) + "\"";
          } else if (!term.datatype.empty()) {
            out += ",\"datatype\":\"" + JsonEscape(term.datatype) + "\"";
          }
          break;
      }
      out += '}';
    }
    out += '}';
  }
  out += "]}}";
  return out;
}

}  // namespace

Result<std::string> WriteResults(const BindingTable& table,
                                 const Dictionary& dict,
                                 ResultFormat format) {
  // Validate ids up front so all formats fail identically. Unbound and
  // value-tagged cells are legitimate; only dangling dictionary ids fail.
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_cols(); ++c) {
      TermId id = table.at(r, c);
      if (id == kInvalidId || IsValueId(id)) continue;
      if (id.value() > dict.size()) {
        return Status::InvalidArgument("binding holds an invalid term id");
      }
    }
  }
  switch (format) {
    case ResultFormat::kTsv: return WriteTsv(table, dict);
    case ResultFormat::kCsv: return WriteCsv(table, dict);
    case ResultFormat::kJson: return WriteJson(table, dict);
  }
  return Status::InvalidArgument("unknown result format");
}

Result<BindingTable> ReadResultsTsv(std::string_view text,
                                    const Dictionary& dict) {
  // Header line: "?a\t?b" (a single empty header = zero columns).
  size_t eol = text.find('\n');
  if (eol == std::string_view::npos) {
    return Status::InvalidArgument("results TSV missing header line");
  }
  std::string_view header = text.substr(0, eol);
  std::string_view body = text.substr(eol + 1);

  std::vector<std::string> vars;
  if (!header.empty()) {
    size_t start = 0;
    while (true) {
      size_t tab = header.find('\t', start);
      std::string_view field = tab == std::string_view::npos
                                   ? header.substr(start)
                                   : header.substr(start, tab - start);
      if (field.size() < 2 || field[0] != '?') {
        return Status::InvalidArgument("results TSV header field is not ?var");
      }
      vars.emplace_back(field.substr(1));
      if (tab == std::string_view::npos) break;
      start = tab + 1;
    }
  }
  BindingTable table(vars);

  std::vector<TermId> row(vars.size());
  size_t line_no = 1;
  while (!body.empty()) {
    ++line_no;
    size_t line_end = body.find('\n');
    std::string_view line = line_end == std::string_view::npos
                                ? body
                                : body.substr(0, line_end);
    body = line_end == std::string_view::npos ? std::string_view()
                                              : body.substr(line_end + 1);
    if (line.empty() && vars.empty()) {
      // Zero-column result row ("\n" per row after the empty header).
      table.SetNullaryRow(true);
      continue;
    }
    size_t col = 0;
    size_t start = 0;
    while (true) {
      size_t tab = line.find('\t', start);
      std::string_view field = tab == std::string_view::npos
                                   ? line.substr(start)
                                   : line.substr(start, tab - start);
      if (col >= vars.size()) {
        return Status::InvalidArgument("results TSV row has extra fields");
      }
      if (field.empty()) {
        row[col] = kInvalidId;  // unbound
      } else {
        auto id = dict.LookupCanonical(field);
        if (id.has_value()) {
          row[col] = *id;
        } else {
          // Not in the dictionary: an aggregate count round-trips into a
          // value-tagged id; everything else is unknown.
          AXON_ASSIGN_OR_RETURN(Term term, Term::FromCanonical(field));
          if (term.is_literal() && term.datatype == kXsdInteger) {
            char* end = nullptr;
            const unsigned long long v =
                std::strtoull(term.value.c_str(), &end, 10);
            if (end != nullptr && *end == '\0' && v < kValueIdTag) {
              row[col] = MakeValueId(static_cast<uint32_t>(v));
              ++col;
              if (tab == std::string_view::npos) break;
              start = tab + 1;
              continue;
            }
          }
          return Status::InvalidArgument(
              "results TSV line " + std::to_string(line_no) +
              " holds a term not in the dictionary: " + std::string(field));
        }
      }
      ++col;
      if (tab == std::string_view::npos) break;
      start = tab + 1;
    }
    if (col != vars.size()) {
      return Status::InvalidArgument("results TSV row has missing fields");
    }
    table.AppendRow(row);
  }
  return table;
}

}  // namespace axon
