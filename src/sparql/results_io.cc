#include "sparql/results_io.h"

#include <cstdio>

#include "rdf/term.h"

namespace axon {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string CsvEscape(std::string_view s) {
  bool needs_quote = s.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(s);
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

namespace {

Result<std::string> WriteTsv(const BindingTable& table,
                             const Dictionary& dict) {
  std::string out;
  for (size_t c = 0; c < table.num_cols(); ++c) {
    if (c > 0) out += '\t';
    out += "?" + table.vars()[c];
  }
  out += '\n';
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_cols(); ++c) {
      if (c > 0) out += '\t';
      out += dict.GetCanonical(table.at(r, c));
    }
    out += '\n';
  }
  return out;
}

Result<std::string> WriteCsv(const BindingTable& table,
                             const Dictionary& dict) {
  std::string out;
  for (size_t c = 0; c < table.num_cols(); ++c) {
    if (c > 0) out += ',';
    out += CsvEscape(table.vars()[c]);
  }
  out += "\r\n";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_cols(); ++c) {
      if (c > 0) out += ',';
      AXON_ASSIGN_OR_RETURN(Term term, dict.GetTerm(table.at(r, c)));
      out += CsvEscape(term.value);  // bare lexical form, per SPARQL CSV
    }
    out += "\r\n";
  }
  return out;
}

Result<std::string> WriteJson(const BindingTable& table,
                              const Dictionary& dict) {
  std::string out = "{\"head\":{\"vars\":[";
  for (size_t c = 0; c < table.num_cols(); ++c) {
    if (c > 0) out += ',';
    out += "\"" + JsonEscape(table.vars()[c]) + "\"";
  }
  out += "]},\"results\":{\"bindings\":[";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (r > 0) out += ',';
    out += '{';
    for (size_t c = 0; c < table.num_cols(); ++c) {
      if (c > 0) out += ',';
      AXON_ASSIGN_OR_RETURN(Term term, dict.GetTerm(table.at(r, c)));
      out += "\"" + JsonEscape(table.vars()[c]) + "\":{";
      switch (term.kind) {
        case TermKind::kIri:
          out += "\"type\":\"uri\",\"value\":\"" + JsonEscape(term.value) +
                 "\"";
          break;
        case TermKind::kBlank:
          out += "\"type\":\"bnode\",\"value\":\"" + JsonEscape(term.value) +
                 "\"";
          break;
        case TermKind::kLiteral:
          out += "\"type\":\"literal\",\"value\":\"" +
                 JsonEscape(term.value) + "\"";
          if (!term.language.empty()) {
            out += ",\"xml:lang\":\"" + JsonEscape(term.language) + "\"";
          } else if (!term.datatype.empty()) {
            out += ",\"datatype\":\"" + JsonEscape(term.datatype) + "\"";
          }
          break;
      }
      out += '}';
    }
    out += '}';
  }
  out += "]}}";
  return out;
}

}  // namespace

Result<std::string> WriteResults(const BindingTable& table,
                                 const Dictionary& dict,
                                 ResultFormat format) {
  // Validate ids up front so all formats fail identically.
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < table.num_cols(); ++c) {
      TermId id = table.at(r, c);
      if (id == kInvalidId || id.value() > dict.size()) {
        return Status::InvalidArgument("binding holds an invalid term id");
      }
    }
  }
  switch (format) {
    case ResultFormat::kTsv: return WriteTsv(table, dict);
    case ResultFormat::kCsv: return WriteCsv(table, dict);
    case ResultFormat::kJson: return WriteJson(table, dict);
  }
  return Status::InvalidArgument("unknown result format");
}

}  // namespace axon
