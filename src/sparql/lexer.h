// Tokenizer for the supported SPARQL fragment.

#ifndef AXON_SPARQL_LEXER_H_
#define AXON_SPARQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace axon {

enum class TokenKind {
  kKeyword,   // SELECT, WHERE, OPTIONAL, UNION, ORDER, ... (upper-cased)
  kVariable,  // ?name / $name (value excludes the sigil)
  kIriRef,    // <...> (value excludes the angle brackets)
  kPname,     // prefix:local or prefix: (value is the raw text)
  kA,         // the 'a' shorthand for rdf:type
  kString,    // "..." with optional @lang / ^^<iri>, value = canonical form
  kInteger,   // bare integer literal
  kPunct,     // { } . ; , ( ) = * plus the operators != < <= > >= ! && ||
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string value;
  size_t line = 0;  // 1-based

  bool Is(TokenKind k) const { return kind == k; }
  bool IsPunct(char c) const {
    return kind == TokenKind::kPunct && value.size() == 1 && value[0] == c;
  }
  /// Multi-character punctuation/operators ("<=", "&&", ...).
  bool IsPunctStr(std::string_view s) const {
    return kind == TokenKind::kPunct && value == s;
  }
  bool IsKeyword(std::string_view kw) const {
    return kind == TokenKind::kKeyword && value == kw;
  }
};

/// Tokenizes `text`; the result always ends with a kEof token.
Result<std::vector<Token>> TokenizeSparql(std::string_view text);

}  // namespace axon

#endif  // AXON_SPARQL_LEXER_H_
