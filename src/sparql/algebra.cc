#include "sparql/algebra.h"

#include <algorithm>

namespace axon {

std::string PatternTerm::ToString() const {
  return is_variable ? "?" + var : term.Canonical();
}

std::string TriplePattern::ToString() const {
  return s.ToString() + " " + p.ToString() + " " + o.ToString() + " .";
}

std::vector<std::string> SelectQuery::Variables() const {
  std::vector<std::string> out;
  auto add = [&out](const PatternTerm& t) {
    if (t.is_variable &&
        std::find(out.begin(), out.end(), t.var) == out.end()) {
      out.push_back(t.var);
    }
  };
  for (const TriplePattern& tp : patterns) {
    add(tp.s);
    add(tp.p);
    add(tp.o);
  }
  return out;
}

std::vector<std::string> SelectQuery::EffectiveProjection() const {
  return projection.empty() ? Variables() : projection;
}

std::string SelectQuery::ToString() const {
  std::string s = "SELECT ";
  if (distinct) s += "DISTINCT ";
  if (projection.empty()) {
    s += "*";
  } else {
    for (size_t i = 0; i < projection.size(); ++i) {
      if (i > 0) s += " ";
      s += "?" + projection[i];
    }
  }
  s += " WHERE {\n";
  for (const TriplePattern& tp : patterns) {
    s += "  " + tp.ToString() + "\n";
  }
  for (const EqualityFilter& f : filters) {
    s += "  FILTER(?" + f.var + " = " + f.value.Canonical() + ")\n";
  }
  s += "}";
  if (limit.has_value()) s += " LIMIT " + std::to_string(*limit);
  return s;
}

}  // namespace axon
