#include "sparql/algebra.h"

#include <algorithm>
#include <utility>

namespace axon {

std::string PatternTerm::ToString() const {
  return is_variable ? "?" + var : term.Canonical();
}

std::string TriplePattern::ToString() const {
  return s.ToString() + " " + p.ToString() + " " + o.ToString() + " .";
}

// --------------------------------------------------------- FilterExpr

FilterExpr FilterExpr::Variable(std::string name) {
  FilterExpr e;
  e.op = FilterOp::kVar;
  e.var = std::move(name);
  return e;
}

FilterExpr FilterExpr::Constant(Term t) {
  FilterExpr e;
  e.op = FilterOp::kConst;
  e.value = std::move(t);
  return e;
}

FilterExpr FilterExpr::Bound(std::string name) {
  FilterExpr e;
  e.op = FilterOp::kBound;
  e.var = std::move(name);
  return e;
}

FilterExpr FilterExpr::Unary(FilterOp o, FilterExpr a) {
  FilterExpr e;
  e.op = o;
  e.args.push_back(std::move(a));
  return e;
}

FilterExpr FilterExpr::Binary(FilterOp o, FilterExpr a, FilterExpr b) {
  FilterExpr e;
  e.op = o;
  e.args.push_back(std::move(a));
  e.args.push_back(std::move(b));
  return e;
}

bool FilterExpr::operator==(const FilterExpr& other) const {
  return op == other.op && var == other.var && value == other.value &&
         args == other.args;
}

void FilterExpr::CollectVars(std::vector<std::string>* out) const {
  if (op == FilterOp::kVar || op == FilterOp::kBound) {
    if (std::find(out->begin(), out->end(), var) == out->end()) {
      out->push_back(var);
    }
  }
  for (const FilterExpr& a : args) a.CollectVars(out);
}

namespace {
const char* FilterOpSymbol(FilterOp op) {
  switch (op) {
    case FilterOp::kEq:
      return "=";
    case FilterOp::kNe:
      return "!=";
    case FilterOp::kLt:
      return "<";
    case FilterOp::kLe:
      return "<=";
    case FilterOp::kGt:
      return ">";
    case FilterOp::kGe:
      return ">=";
    case FilterOp::kAnd:
      return "&&";
    case FilterOp::kOr:
      return "||";
    default:
      return "?";
  }
}
}  // namespace

std::string FilterExpr::ToString() const {
  switch (op) {
    case FilterOp::kVar:
      return "?" + var;
    case FilterOp::kConst:
      return value.Canonical();
    case FilterOp::kBound:
      return "bound(?" + var + ")";
    case FilterOp::kNot:
      return "!(" + (args.empty() ? std::string() : args[0].ToString()) + ")";
    default: {
      std::string l = args.size() > 0 ? args[0].ToString() : std::string();
      std::string r = args.size() > 1 ? args[1].ToString() : std::string();
      return "(" + l + " " + FilterOpSymbol(op) + " " + r + ")";
    }
  }
}

// ------------------------------------------------------- GroupPattern

bool GroupPattern::IsSimpleBgp() const {
  return filters.empty() && optionals.empty() && unions.empty();
}

namespace {
void AddVar(std::vector<std::string>* out, const PatternTerm& t) {
  if (t.is_variable &&
      std::find(out->begin(), out->end(), t.var) == out->end()) {
    out->push_back(t.var);
  }
}
}  // namespace

void GroupPattern::CollectVars(std::vector<std::string>* out) const {
  for (const TriplePattern& tp : patterns) {
    AddVar(out, tp.s);
    AddVar(out, tp.p);
    AddVar(out, tp.o);
  }
  for (const UnionBlock& u : unions) {
    for (const GroupPattern& b : u.branches) b.CollectVars(out);
  }
  for (const GroupPattern& opt : optionals) opt.CollectVars(out);
}

std::string GroupPattern::ToString(int indent) const {
  std::string pad(static_cast<size_t>(indent) * 2, ' ');
  std::string s;
  for (const TriplePattern& tp : patterns) {
    s += pad + tp.ToString() + "\n";
  }
  for (const UnionBlock& u : unions) {
    for (size_t i = 0; i < u.branches.size(); ++i) {
      if (i > 0) s += pad + "UNION\n";
      s += pad + "{\n" + u.branches[i].ToString(indent + 1) + pad + "}\n";
    }
  }
  for (const GroupPattern& opt : optionals) {
    s += pad + "OPTIONAL {\n" + opt.ToString(indent + 1) + pad + "}\n";
  }
  for (const EqualityFilter& f : eq_filters) {
    s += pad + "FILTER(?" + f.var + " = " + f.value.Canonical() + ")\n";
  }
  for (const FilterExpr& f : filters) {
    s += pad + "FILTER(" + f.ToString() + ")\n";
  }
  return s;
}

// -------------------------------------------------------- SelectQuery

std::vector<std::string> SelectQuery::Variables() const {
  std::vector<std::string> out;
  for (const TriplePattern& tp : patterns) {
    AddVar(&out, tp.s);
    AddVar(&out, tp.p);
    AddVar(&out, tp.o);
  }
  for (const UnionBlock& u : unions) {
    for (const GroupPattern& b : u.branches) b.CollectVars(&out);
  }
  for (const GroupPattern& opt : optionals) opt.CollectVars(&out);
  return out;
}

std::vector<std::string> SelectQuery::EffectiveProjection() const {
  if (!projection.empty()) return projection;
  if (!aggregates.empty()) {
    // SELECT * with aggregation projects the grouping keys then the
    // aggregate outputs.
    std::vector<std::string> out = group_by;
    for (const Aggregate& a : aggregates) {
      if (std::find(out.begin(), out.end(), a.as) == out.end()) {
        out.push_back(a.as);
      }
    }
    return out;
  }
  return Variables();
}

std::string SelectQuery::ToString() const {
  std::string s = "SELECT ";
  if (distinct) s += "DISTINCT ";
  if (projection.empty()) {
    s += "*";
  } else {
    for (size_t i = 0; i < projection.size(); ++i) {
      if (i > 0) s += " ";
      bool is_agg = false;
      for (const Aggregate& a : aggregates) {
        if (a.as == projection[i]) {
          s += "(COUNT(";
          if (a.distinct) s += "DISTINCT ";
          s += a.var.empty() ? "*" : "?" + a.var;
          s += ") AS ?" + a.as + ")";
          is_agg = true;
          break;
        }
      }
      if (!is_agg) s += "?" + projection[i];
    }
  }
  s += " WHERE {\n";
  GroupPattern top;
  top.patterns = patterns;
  top.eq_filters = filters;
  top.filters = expr_filters;
  top.optionals = optionals;
  top.unions = unions;
  s += top.ToString(1);
  s += "}";
  if (!group_by.empty()) {
    s += " GROUP BY";
    for (const std::string& v : group_by) s += " ?" + v;
  }
  if (!order_by.empty()) {
    s += " ORDER BY";
    for (const OrderKey& k : order_by) {
      s += k.ascending ? " ASC(?" : " DESC(?";
      s += k.var + ")";
    }
  }
  if (limit.has_value()) s += " LIMIT " + std::to_string(*limit);
  if (offset > 0) s += " OFFSET " + std::to_string(offset);
  return s;
}

}  // namespace axon
