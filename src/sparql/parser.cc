#include "sparql/parser.h"

#include <algorithm>
#include <map>
#include <utility>

#include "sparql/lexer.h"

namespace axon {

namespace {

constexpr char kRdfType[] = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

// Nesting bound for groups and parenthesized filter expressions; protects
// the recursive descent from fuzzer-generated `{{{{...` stacks.
constexpr int kMaxDepth = 64;

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectQuery> Parse() {
    AXON_RETURN_NOT_OK(ParsePrologue());
    if (!Peek().IsKeyword("SELECT")) {
      return Error("expected SELECT");
    }
    Advance();
    SelectQuery q;
    if (Peek().IsKeyword("DISTINCT")) {
      q.distinct = true;
      Advance();
    }
    AXON_RETURN_NOT_OK(ParseSelectItems(&q));
    if (!Peek().IsKeyword("WHERE")) return Error("expected WHERE");
    Advance();
    if (!Peek().IsPunct('{')) return Error("expected '{'");
    Advance();
    auto top = ParseGroup();
    if (!top.ok()) return top.status();
    if (!Peek().IsPunct('}')) return Error("expected '}'");
    Advance();
    q.patterns = std::move(top.value().patterns);
    q.filters = std::move(top.value().eq_filters);
    q.expr_filters = std::move(top.value().filters);
    q.optionals = std::move(top.value().optionals);
    q.unions = std::move(top.value().unions);
    AXON_RETURN_NOT_OK(ParseModifiers(&q));
    if (!Peek().Is(TokenKind::kEof)) return Error("trailing tokens");
    AXON_RETURN_NOT_OK(Validate(q));
    return q;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError("line " + std::to_string(Peek().line) + ": " +
                              msg + " (found '" + Peek().value + "')");
  }

  Status Expect(char c, const std::string& what) {
    if (!Peek().IsPunct(c)) {
      return Error("expected '" + std::string(1, c) + "' " + what);
    }
    Advance();
    return Status::OK();
  }

  Status ParsePrologue() {
    while (Peek().IsKeyword("PREFIX")) {
      Advance();
      if (!Peek().Is(TokenKind::kPname)) {
        return Error("expected prefix name after PREFIX");
      }
      std::string pname = Peek().value;
      if (pname.empty() || pname.back() != ':') {
        return Error("prefix declaration must end with ':'");
      }
      Advance();
      if (!Peek().Is(TokenKind::kIriRef)) {
        return Error("expected IRI in prefix declaration");
      }
      prefixes_[pname.substr(0, pname.size() - 1)] = Peek().value;
      Advance();
    }
    return Status::OK();
  }

  Status ParseSelectItems(SelectQuery* q) {
    if (Peek().IsPunct('*')) {
      Advance();
      return Status::OK();
    }
    while (true) {
      if (Peek().Is(TokenKind::kVariable)) {
        q->projection.push_back(Peek().value);
        Advance();
        continue;
      }
      if (Peek().IsPunct('(')) {
        Advance();
        if (!Peek().IsKeyword("COUNT")) {
          return Error("expected COUNT in aggregate select item");
        }
        Advance();
        AXON_RETURN_NOT_OK(Expect('(', "after COUNT"));
        Aggregate a;
        if (Peek().IsKeyword("DISTINCT")) {
          a.distinct = true;
          Advance();
        }
        if (Peek().IsPunct('*')) {
          Advance();
        } else if (Peek().Is(TokenKind::kVariable)) {
          a.var = Peek().value;
          Advance();
        } else {
          return Error("expected ?var or * inside COUNT");
        }
        AXON_RETURN_NOT_OK(Expect(')', "closing COUNT"));
        if (!Peek().IsKeyword("AS")) return Error("expected AS in aggregate");
        Advance();
        if (!Peek().Is(TokenKind::kVariable)) {
          return Error("expected output variable after AS");
        }
        a.as = Peek().value;
        Advance();
        AXON_RETURN_NOT_OK(Expect(')', "closing aggregate select item"));
        q->projection.push_back(a.as);
        q->aggregates.push_back(std::move(a));
        continue;
      }
      break;
    }
    if (q->projection.empty()) {
      return Error("expected projection variables or *");
    }
    return Status::OK();
  }

  Result<PatternTerm> ExpandPname(const std::string& pname, size_t line) {
    size_t colon = pname.find(':');
    std::string prefix = pname.substr(0, colon);
    std::string local = pname.substr(colon + 1);
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      return Status::ParseError("line " + std::to_string(line) +
                                ": undeclared prefix '" + prefix + ":'");
    }
    return PatternTerm::Bound(Term::Iri(it->second + local));
  }

  Result<PatternTerm> ParseTerm() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kVariable: {
        PatternTerm out = PatternTerm::Variable(t.value);
        Advance();
        return out;
      }
      case TokenKind::kIriRef: {
        PatternTerm out = PatternTerm::Bound(Term::Iri(t.value));
        Advance();
        return out;
      }
      case TokenKind::kPname: {
        auto out = ExpandPname(t.value, t.line);
        if (out.ok()) Advance();
        return out;
      }
      case TokenKind::kA: {
        PatternTerm out = PatternTerm::Bound(Term::Iri(kRdfType));
        Advance();
        return out;
      }
      case TokenKind::kString: {
        auto term = Term::FromCanonical(t.value);
        if (!term.ok()) return term.status();
        Advance();
        return PatternTerm::Bound(std::move(term).ValueOrDie());
      }
      case TokenKind::kInteger: {
        PatternTerm out = PatternTerm::Bound(Term::Literal(
            t.value, "http://www.w3.org/2001/XMLSchema#integer"));
        Advance();
        return out;
      }
      default:
        return Error("expected term");
    }
  }

  // ------------------------------------------------ filter expressions

  Result<FilterExpr> ParseBoundCall() {
    Advance();  // BOUND
    AXON_RETURN_NOT_OK(Expect('(', "after bound"));
    if (!Peek().Is(TokenKind::kVariable)) {
      return Error("expected variable inside bound()");
    }
    std::string var = Peek().value;
    Advance();
    AXON_RETURN_NOT_OK(Expect(')', "closing bound()"));
    return FilterExpr::Bound(std::move(var));
  }

  Result<FilterExpr> ParsePrimaryExpr() {
    if (Peek().IsPunct('(')) {
      if (++depth_ > kMaxDepth) return Error("expression nesting too deep");
      Advance();
      auto e = ParseExpr();
      --depth_;
      if (!e.ok()) return e;
      AXON_RETURN_NOT_OK(Expect(')', "closing expression"));
      return e;
    }
    if (Peek().IsKeyword("BOUND")) return ParseBoundCall();
    auto term = ParseTerm();
    if (!term.ok()) return term.status();
    if (term.value().is_variable) {
      return FilterExpr::Variable(std::move(term.value().var));
    }
    return FilterExpr::Constant(std::move(term.value().term));
  }

  Result<FilterExpr> ParseUnaryExpr() {
    if (Peek().IsPunctStr("!")) {
      if (++depth_ > kMaxDepth) return Error("expression nesting too deep");
      Advance();
      auto e = ParseUnaryExpr();
      --depth_;
      if (!e.ok()) return e;
      return FilterExpr::Unary(FilterOp::kNot, std::move(e).ValueOrDie());
    }
    return ParsePrimaryExpr();
  }

  bool PeekRelOp(FilterOp* op) const {
    const Token& t = Peek();
    if (t.IsPunct('=')) {
      *op = FilterOp::kEq;
    } else if (t.IsPunctStr("!=")) {
      *op = FilterOp::kNe;
    } else if (t.IsPunct('<')) {
      *op = FilterOp::kLt;
    } else if (t.IsPunctStr("<=")) {
      *op = FilterOp::kLe;
    } else if (t.IsPunctStr(">")) {
      *op = FilterOp::kGt;
    } else if (t.IsPunctStr(">=")) {
      *op = FilterOp::kGe;
    } else {
      return false;
    }
    return true;
  }

  Result<FilterExpr> ParseRelationalExpr() {
    auto lhs = ParseUnaryExpr();
    if (!lhs.ok()) return lhs;
    FilterOp op;
    if (!PeekRelOp(&op)) return lhs;
    Advance();
    auto rhs = ParseUnaryExpr();
    if (!rhs.ok()) return rhs;
    return FilterExpr::Binary(op, std::move(lhs).ValueOrDie(),
                              std::move(rhs).ValueOrDie());
  }

  Result<FilterExpr> ParseAndExpr() {
    auto e = ParseRelationalExpr();
    if (!e.ok()) return e;
    while (Peek().IsPunctStr("&&")) {
      Advance();
      auto rhs = ParseRelationalExpr();
      if (!rhs.ok()) return rhs;
      e = FilterExpr::Binary(FilterOp::kAnd, std::move(e).ValueOrDie(),
                             std::move(rhs).ValueOrDie());
    }
    return e;
  }

  Result<FilterExpr> ParseExpr() {
    auto e = ParseAndExpr();
    if (!e.ok()) return e;
    while (Peek().IsPunctStr("||")) {
      Advance();
      auto rhs = ParseAndExpr();
      if (!rhs.ok()) return rhs;
      e = FilterExpr::Binary(FilterOp::kOr, std::move(e).ValueOrDie(),
                             std::move(rhs).ValueOrDie());
    }
    return e;
  }

  Status ParseFilter(GroupPattern* g) {
    Advance();  // FILTER
    FilterExpr expr;
    if (Peek().IsKeyword("BOUND")) {
      auto e = ParseBoundCall();
      if (!e.ok()) return e.status();
      expr = std::move(e).ValueOrDie();
    } else {
      AXON_RETURN_NOT_OK(Expect('(', "after FILTER"));
      auto e = ParseExpr();
      if (!e.ok()) return e.status();
      AXON_RETURN_NOT_OK(Expect(')', "closing FILTER"));
      expr = std::move(e).ValueOrDie();
    }
    // The legacy `?var = constant` shape stays an EqualityFilter so the
    // index-backed engines can keep pushing it into retrieval.
    if (expr.op == FilterOp::kEq && expr.args.size() == 2 &&
        expr.args[0].op == FilterOp::kVar &&
        expr.args[1].op == FilterOp::kConst) {
      g->eq_filters.push_back(EqualityFilter{std::move(expr.args[0].var),
                                             std::move(expr.args[1].value)});
    } else {
      g->filters.push_back(std::move(expr));
    }
    return Status::OK();
  }

  // --------------------------------------------------- graph patterns

  Status ParseTriples(GroupPattern* g) {
    auto subject = ParseTerm();
    if (!subject.ok()) return subject.status();
    while (true) {
      auto predicate = ParseTerm();
      if (!predicate.ok()) return predicate.status();
      if (!predicate.value().is_variable && !predicate.value().term.is_iri()) {
        return Error("predicate must be an IRI or variable");
      }
      while (true) {
        auto object = ParseTerm();
        if (!object.ok()) return object.status();
        g->patterns.push_back(TriplePattern{
            subject.value(), predicate.value(), object.value()});
        if (Peek().IsPunct(',')) {
          Advance();
          continue;
        }
        break;
      }
      if (Peek().IsPunct(';')) {
        Advance();
        // Allow a dangling ';' before '.' or '}'.
        if (Peek().IsPunct('.') || Peek().IsPunct('}')) break;
        continue;
      }
      break;
    }
    if (Peek().IsPunct('.')) Advance();
    return Status::OK();
  }

  Result<GroupPattern> ParseBracedGroup() {
    if (++depth_ > kMaxDepth) return Error("group nesting too deep");
    AXON_RETURN_NOT_OK(Expect('{', "opening group"));
    auto g = ParseGroup();
    --depth_;
    if (!g.ok()) return g;
    AXON_RETURN_NOT_OK(Expect('}', "closing group"));
    return g;
  }

  Result<GroupPattern> ParseGroup() {
    GroupPattern g;
    while (!Peek().IsPunct('}') && !Peek().Is(TokenKind::kEof)) {
      if (Peek().IsKeyword("FILTER")) {
        AXON_RETURN_NOT_OK(ParseFilter(&g));
      } else if (Peek().IsKeyword("OPTIONAL")) {
        Advance();
        auto sub = ParseBracedGroup();
        if (!sub.ok()) return sub.status();
        g.optionals.push_back(std::move(sub).ValueOrDie());
        if (Peek().IsPunct('.')) Advance();
      } else if (Peek().IsPunct('{')) {
        UnionBlock block;
        auto first = ParseBracedGroup();
        if (!first.ok()) return first.status();
        block.branches.push_back(std::move(first).ValueOrDie());
        while (Peek().IsKeyword("UNION")) {
          Advance();
          auto branch = ParseBracedGroup();
          if (!branch.ok()) return branch.status();
          block.branches.push_back(std::move(branch).ValueOrDie());
        }
        g.unions.push_back(std::move(block));
        if (Peek().IsPunct('.')) Advance();
      } else {
        AXON_RETURN_NOT_OK(ParseTriples(&g));
      }
    }
    if (g.patterns.empty() && g.unions.empty() && g.optionals.empty()) {
      return Error("empty group pattern");
    }
    return g;
  }

  // -------------------------------------------------- solution modifiers

  Status ParseModifiers(SelectQuery* q) {
    while (!Peek().Is(TokenKind::kEof)) {
      if (Peek().IsKeyword("GROUP")) {
        if (!q->group_by.empty()) return Error("duplicate GROUP BY");
        Advance();
        if (!Peek().IsKeyword("BY")) return Error("expected BY after GROUP");
        Advance();
        while (Peek().Is(TokenKind::kVariable)) {
          q->group_by.push_back(Peek().value);
          Advance();
        }
        if (q->group_by.empty()) {
          return Error("expected variables after GROUP BY");
        }
      } else if (Peek().IsKeyword("ORDER")) {
        if (!q->order_by.empty()) return Error("duplicate ORDER BY");
        Advance();
        if (!Peek().IsKeyword("BY")) return Error("expected BY after ORDER");
        Advance();
        while (true) {
          OrderKey key;
          if (Peek().IsKeyword("ASC") || Peek().IsKeyword("DESC")) {
            key.ascending = Peek().IsKeyword("ASC");
            Advance();
            AXON_RETURN_NOT_OK(Expect('(', "after ASC/DESC"));
            if (!Peek().Is(TokenKind::kVariable)) {
              return Error("expected variable in ASC/DESC()");
            }
            key.var = Peek().value;
            Advance();
            AXON_RETURN_NOT_OK(Expect(')', "closing ASC/DESC"));
          } else if (Peek().Is(TokenKind::kVariable)) {
            key.var = Peek().value;
            Advance();
          } else {
            break;
          }
          q->order_by.push_back(std::move(key));
        }
        if (q->order_by.empty()) {
          return Error("expected sort keys after ORDER BY");
        }
      } else if (Peek().IsKeyword("LIMIT")) {
        if (q->limit.has_value()) return Error("duplicate LIMIT");
        Advance();
        if (!Peek().Is(TokenKind::kInteger)) {
          return Error("expected integer after LIMIT");
        }
        q->limit = std::stoull(Peek().value);
        Advance();
      } else if (Peek().IsKeyword("OFFSET")) {
        if (q->offset > 0) return Error("duplicate OFFSET");
        Advance();
        if (!Peek().Is(TokenKind::kInteger)) {
          return Error("expected integer after OFFSET");
        }
        q->offset = std::stoull(Peek().value);
        Advance();
      } else {
        return Error("trailing tokens");
      }
    }
    return Status::OK();
  }

  // ------------------------------------------------------- validation

  Status Validate(const SelectQuery& q) const {
    const std::vector<std::string> vars = q.Variables();
    auto is_pattern_var = [&vars](const std::string& v) {
      return std::find(vars.begin(), vars.end(), v) != vars.end();
    };
    auto is_aggregate_out = [&q](const std::string& v) {
      for (const Aggregate& a : q.aggregates) {
        if (a.as == v) return true;
      }
      return false;
    };
    const bool aggregating = !q.aggregates.empty() || !q.group_by.empty();
    for (const std::string& v : q.group_by) {
      if (!is_pattern_var(v)) {
        return Status::ParseError("GROUP BY variable ?" + v +
                                  " not used in the pattern");
      }
    }
    for (const Aggregate& a : q.aggregates) {
      if (!a.var.empty() && !is_pattern_var(a.var)) {
        return Status::ParseError("aggregated variable ?" + a.var +
                                  " not used in the pattern");
      }
      if (is_pattern_var(a.as)) {
        return Status::ParseError("aggregate output ?" + a.as +
                                  " clashes with a pattern variable");
      }
    }
    for (const std::string& v : q.projection) {
      if (is_aggregate_out(v)) continue;
      if (!is_pattern_var(v)) {
        return Status::ParseError("projected variable ?" + v +
                                  " not used in the pattern");
      }
      if (aggregating &&
          std::find(q.group_by.begin(), q.group_by.end(), v) ==
              q.group_by.end()) {
        return Status::ParseError("projected variable ?" + v +
                                  " is neither grouped nor aggregated");
      }
    }
    for (const OrderKey& k : q.order_by) {
      bool ok = aggregating ? (is_aggregate_out(k.var) ||
                               std::find(q.group_by.begin(), q.group_by.end(),
                                         k.var) != q.group_by.end())
                            : is_pattern_var(k.var);
      if (!ok) {
        return Status::ParseError("ORDER BY variable ?" + k.var +
                                  " not available in this query");
      }
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int depth_ = 0;
  std::map<std::string, std::string> prefixes_;
};

}  // namespace

Result<SelectQuery> ParseSparql(std::string_view text) {
  auto tokens = TokenizeSparql(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).ValueOrDie());
  return parser.Parse();
}

}  // namespace axon
