#include "sparql/parser.h"

#include <algorithm>
#include <map>

#include "sparql/lexer.h"

namespace axon {

namespace {

constexpr char kRdfType[] = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectQuery> Parse() {
    AXON_RETURN_NOT_OK(ParsePrologue());
    if (!Peek().IsKeyword("SELECT")) {
      return Error("expected SELECT");
    }
    Advance();
    SelectQuery q;
    if (Peek().IsKeyword("DISTINCT")) {
      q.distinct = true;
      Advance();
    }
    if (Peek().IsPunct('*')) {
      Advance();
    } else {
      while (Peek().Is(TokenKind::kVariable)) {
        q.projection.push_back(Peek().value);
        Advance();
      }
      if (q.projection.empty()) {
        return Error("expected projection variables or *");
      }
    }
    if (!Peek().IsKeyword("WHERE")) return Error("expected WHERE");
    Advance();
    if (!Peek().IsPunct('{')) return Error("expected '{'");
    Advance();
    AXON_RETURN_NOT_OK(ParseBlock(&q));
    if (!Peek().IsPunct('}')) return Error("expected '}'");
    Advance();
    if (Peek().IsKeyword("LIMIT")) {
      Advance();
      if (!Peek().Is(TokenKind::kInteger)) {
        return Error("expected integer after LIMIT");
      }
      q.limit = std::stoull(Peek().value);
      Advance();
    }
    if (!Peek().Is(TokenKind::kEof)) return Error("trailing tokens");
    // Validate that projected variables occur in the pattern.
    auto vars = q.Variables();
    for (const std::string& v : q.projection) {
      if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
        return Status::ParseError("projected variable ?" + v +
                                  " not used in the pattern");
      }
    }
    return q;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError("line " + std::to_string(Peek().line) + ": " +
                              msg + " (found '" + Peek().value + "')");
  }

  Status ParsePrologue() {
    while (Peek().IsKeyword("PREFIX")) {
      Advance();
      if (!Peek().Is(TokenKind::kPname)) {
        return Error("expected prefix name after PREFIX");
      }
      std::string pname = Peek().value;
      if (pname.empty() || pname.back() != ':') {
        return Error("prefix declaration must end with ':'");
      }
      Advance();
      if (!Peek().Is(TokenKind::kIriRef)) {
        return Error("expected IRI in prefix declaration");
      }
      prefixes_[pname.substr(0, pname.size() - 1)] = Peek().value;
      Advance();
    }
    return Status::OK();
  }

  Result<PatternTerm> ExpandPname(const std::string& pname, size_t line) {
    size_t colon = pname.find(':');
    std::string prefix = pname.substr(0, colon);
    std::string local = pname.substr(colon + 1);
    auto it = prefixes_.find(prefix);
    if (it == prefixes_.end()) {
      return Status::ParseError("line " + std::to_string(line) +
                                ": undeclared prefix '" + prefix + ":'");
    }
    return PatternTerm::Bound(Term::Iri(it->second + local));
  }

  Result<PatternTerm> ParseTerm() {
    const Token& t = Peek();
    switch (t.kind) {
      case TokenKind::kVariable: {
        PatternTerm out = PatternTerm::Variable(t.value);
        Advance();
        return out;
      }
      case TokenKind::kIriRef: {
        PatternTerm out = PatternTerm::Bound(Term::Iri(t.value));
        Advance();
        return out;
      }
      case TokenKind::kPname: {
        auto out = ExpandPname(t.value, t.line);
        if (out.ok()) Advance();
        return out;
      }
      case TokenKind::kA: {
        PatternTerm out = PatternTerm::Bound(Term::Iri(kRdfType));
        Advance();
        return out;
      }
      case TokenKind::kString: {
        auto term = Term::FromCanonical(t.value);
        if (!term.ok()) return term.status();
        Advance();
        return PatternTerm::Bound(std::move(term).ValueOrDie());
      }
      case TokenKind::kInteger: {
        PatternTerm out = PatternTerm::Bound(Term::Literal(
            t.value, "http://www.w3.org/2001/XMLSchema#integer"));
        Advance();
        return out;
      }
      default:
        return Error("expected term");
    }
  }

  Status ParseFilter(SelectQuery* q) {
    Advance();  // FILTER
    if (!Peek().IsPunct('(')) return Error("expected '(' after FILTER");
    Advance();
    if (!Peek().Is(TokenKind::kVariable)) {
      return Error("FILTER supports only ?var = term");
    }
    std::string var = Peek().value;
    Advance();
    if (!Peek().IsPunct('=')) return Error("expected '=' in FILTER");
    Advance();
    auto value = ParseTerm();
    if (!value.ok()) return value.status();
    if (value.value().is_variable) {
      return Error("FILTER right-hand side must be a constant");
    }
    if (!Peek().IsPunct(')')) return Error("expected ')' closing FILTER");
    Advance();
    q->filters.push_back(EqualityFilter{std::move(var), value.value().term});
    return Status::OK();
  }

  Status ParseTriples(SelectQuery* q) {
    auto subject = ParseTerm();
    if (!subject.ok()) return subject.status();
    while (true) {
      auto predicate = ParseTerm();
      if (!predicate.ok()) return predicate.status();
      if (!predicate.value().is_variable && !predicate.value().term.is_iri()) {
        return Error("predicate must be an IRI or variable");
      }
      while (true) {
        auto object = ParseTerm();
        if (!object.ok()) return object.status();
        q->patterns.push_back(TriplePattern{
            subject.value(), predicate.value(), object.value()});
        if (Peek().IsPunct(',')) {
          Advance();
          continue;
        }
        break;
      }
      if (Peek().IsPunct(';')) {
        Advance();
        // Allow a dangling ';' before '.' or '}'.
        if (Peek().IsPunct('.') || Peek().IsPunct('}')) break;
        continue;
      }
      break;
    }
    if (Peek().IsPunct('.')) Advance();
    return Status::OK();
  }

  Status ParseBlock(SelectQuery* q) {
    while (!Peek().IsPunct('}') && !Peek().Is(TokenKind::kEof)) {
      if (Peek().IsKeyword("FILTER")) {
        AXON_RETURN_NOT_OK(ParseFilter(q));
      } else {
        AXON_RETURN_NOT_OK(ParseTriples(q));
      }
    }
    return Status::OK();
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  std::map<std::string, std::string> prefixes_;
};

}  // namespace

Result<SelectQuery> ParseSparql(std::string_view text) {
  auto tokens = TokenizeSparql(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).ValueOrDie());
  return parser.Parse();
}

}  // namespace axon
