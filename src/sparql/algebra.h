// Query algebra for the conjunctive SPARQL fragment axonDB supports
// (Sec. V.A: "axonDB only supports conjunctive SPARQL queries with
// equi-joins"): a basic graph pattern of triple patterns, simple equality
// filters, optional DISTINCT/LIMIT.

#ifndef AXON_SPARQL_ALGEBRA_H_
#define AXON_SPARQL_ALGEBRA_H_

#include <optional>
#include <string>
#include <vector>

#include "rdf/term.h"

namespace axon {

/// A position in a triple pattern: either a variable or a bound RDF term.
struct PatternTerm {
  bool is_variable = false;
  std::string var;  // variable name without the '?' sigil
  Term term;        // bound term when !is_variable

  static PatternTerm Variable(std::string name) {
    PatternTerm t;
    t.is_variable = true;
    t.var = std::move(name);
    return t;
  }
  static PatternTerm Bound(Term term) {
    PatternTerm t;
    t.is_variable = false;
    t.term = std::move(term);
    return t;
  }

  bool operator==(const PatternTerm& other) const {
    if (is_variable != other.is_variable) return false;
    return is_variable ? var == other.var : term == other.term;
  }

  std::string ToString() const;
};

struct TriplePattern {
  PatternTerm s;
  PatternTerm p;
  PatternTerm o;

  bool operator==(const TriplePattern& other) const {
    return s == other.s && p == other.p && o == other.o;
  }

  std::string ToString() const;
};

/// FILTER(?var = <term>) — the only filter form of the supported fragment.
struct EqualityFilter {
  std::string var;
  Term value;

  bool operator==(const EqualityFilter& other) const {
    return var == other.var && value == other.value;
  }
};

struct SelectQuery {
  bool distinct = false;
  /// Projected variable names; empty means SELECT *.
  std::vector<std::string> projection;
  std::vector<TriplePattern> patterns;
  std::vector<EqualityFilter> filters;
  std::optional<uint64_t> limit;

  /// All distinct variable names, in first-appearance order across
  /// patterns (S, P, O within each pattern).
  std::vector<std::string> Variables() const;

  /// The effective projection: `projection`, or Variables() for SELECT *.
  std::vector<std::string> EffectiveProjection() const;

  std::string ToString() const;
};

}  // namespace axon

#endif  // AXON_SPARQL_ALGEBRA_H_
