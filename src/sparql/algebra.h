// Query algebra for the SPARQL fragment axonDB supports. The core of the
// paper (Sec. V.A: "axonDB only supports conjunctive SPARQL queries with
// equi-joins") is the conjunctive part — a basic graph pattern of triple
// patterns plus simple equality filters — and every index structure keys
// off that. On top of it the algebra now carries the composition layer:
// OPTIONAL (left outer join), UNION, general FILTER expressions
// (comparisons, &&/||/!, bound), GROUP BY / COUNT aggregation, ORDER BY,
// OFFSET — evaluated by src/exec/extended_eval.* over conjunctive leaves.

#ifndef AXON_SPARQL_ALGEBRA_H_
#define AXON_SPARQL_ALGEBRA_H_

#include <optional>
#include <string>
#include <vector>

#include "rdf/term.h"

namespace axon {

/// A position in a triple pattern: either a variable or a bound RDF term.
struct PatternTerm {
  bool is_variable = false;
  std::string var;  // variable name without the '?' sigil
  Term term;        // bound term when !is_variable

  static PatternTerm Variable(std::string name) {
    PatternTerm t;
    t.is_variable = true;
    t.var = std::move(name);
    return t;
  }
  static PatternTerm Bound(Term term) {
    PatternTerm t;
    t.is_variable = false;
    t.term = std::move(term);
    return t;
  }

  bool operator==(const PatternTerm& other) const {
    if (is_variable != other.is_variable) return false;
    return is_variable ? var == other.var : term == other.term;
  }

  std::string ToString() const;
};

struct TriplePattern {
  PatternTerm s;
  PatternTerm p;
  PatternTerm o;

  bool operator==(const TriplePattern& other) const {
    return s == other.s && p == other.p && o == other.o;
  }

  std::string ToString() const;
};

/// FILTER(?var = <term>) — the filter form of the conjunctive fragment,
/// kept distinct from FilterExpr because the engines push it into index
/// lookups (bound-object restriction on star retrieval).
struct EqualityFilter {
  std::string var;
  Term value;

  bool operator==(const EqualityFilter& other) const {
    return var == other.var && value == other.value;
  }
};

/// Node kinds of a general FILTER expression tree. Leaves are kVar/kConst;
/// comparisons and logical connectives have their operands in `args`.
enum class FilterOp {
  kVar,    // leaf: variable reference
  kConst,  // leaf: RDF term constant
  kEq,     // =
  kNe,     // !=
  kLt,     // <
  kLe,     // <=
  kGt,     // >
  kGe,     // >=
  kAnd,    // &&
  kOr,     // ||
  kNot,    // !
  kBound,  // bound(?v)
};

/// Recursive FILTER expression. Evaluation is SPARQL's three-valued logic:
/// comparisons touching an unbound variable are errors, errors behave as
/// false at the row level but short-circuit correctly through &&/|| (see
/// exec/expr.h).
struct FilterExpr {
  FilterOp op = FilterOp::kConst;
  std::string var;               // kVar / kBound
  Term value;                    // kConst
  std::vector<FilterExpr> args;  // operands of interior nodes

  static FilterExpr Variable(std::string name);
  static FilterExpr Constant(Term t);
  static FilterExpr Bound(std::string name);
  static FilterExpr Unary(FilterOp o, FilterExpr a);
  static FilterExpr Binary(FilterOp o, FilterExpr a, FilterExpr b);

  bool operator==(const FilterExpr& other) const;

  void CollectVars(std::vector<std::string>* out) const;
  std::string ToString() const;
};

struct UnionBlock;  // a GroupPattern may hold UNION blocks (defined below)

/// A group graph pattern: a conjunctive BGP plus the group's filters and
/// any nested OPTIONAL / UNION sub-groups. The top level of a SelectQuery
/// is itself (a flattened view of) a GroupPattern.
struct GroupPattern {
  std::vector<TriplePattern> patterns;
  std::vector<EqualityFilter> eq_filters;
  std::vector<FilterExpr> filters;
  std::vector<GroupPattern> optionals;
  std::vector<UnionBlock> unions;

  /// True when the group is a bare BGP (+equality filters): exactly the
  /// fragment the index-backed engines evaluate natively.
  bool IsSimpleBgp() const;

  void CollectVars(std::vector<std::string>* out) const;
  std::string ToString(int indent) const;
};

/// `{ A } UNION { B } UNION ...` — two or more alternative groups. A block
/// with a single branch is a plain braced sub-group (group join).
struct UnionBlock {
  std::vector<GroupPattern> branches;
};

/// One ORDER BY key; keys are plain variables, optionally wrapped in
/// ASC()/DESC().
struct OrderKey {
  std::string var;
  bool ascending = true;

  bool operator==(const OrderKey& other) const {
    return var == other.var && ascending == other.ascending;
  }
};

/// `(COUNT(?v) AS ?out)` / `(COUNT(*) AS ?out)`, optionally DISTINCT.
struct Aggregate {
  enum class Kind { kCount };
  Kind kind = Kind::kCount;
  bool distinct = false;
  std::string var;  // argument variable; empty means COUNT(*)
  std::string as;   // output variable name

  bool operator==(const Aggregate& other) const {
    return kind == other.kind && distinct == other.distinct &&
           var == other.var && as == other.as;
  }
};

struct SelectQuery {
  bool distinct = false;
  /// Projected variable names; empty means SELECT *. For aggregate queries
  /// this includes the aggregate output names.
  std::vector<std::string> projection;
  std::vector<TriplePattern> patterns;
  std::vector<EqualityFilter> filters;
  std::optional<uint64_t> limit;

  // ----- composition-layer surface (empty on conjunctive queries) -----
  std::vector<FilterExpr> expr_filters;
  std::vector<GroupPattern> optionals;
  std::vector<UnionBlock> unions;
  std::vector<std::string> group_by;
  std::vector<Aggregate> aggregates;
  std::vector<OrderKey> order_by;
  uint64_t offset = 0;

  /// True when the query is in the conjunctive fragment the index-backed
  /// engines evaluate natively (BGP + equality filters + DISTINCT/LIMIT);
  /// anything else routes through the composition evaluator.
  bool IsConjunctive() const {
    return expr_filters.empty() && optionals.empty() && unions.empty() &&
           group_by.empty() && aggregates.empty() && order_by.empty() &&
           offset == 0;
  }

  /// All distinct variable names, in first-appearance order across the
  /// top-level patterns (S, P, O within each pattern), then nested UNION
  /// and OPTIONAL groups.
  std::vector<std::string> Variables() const;

  /// The effective projection: `projection`, or for SELECT * the pattern
  /// variables (plus aggregate outputs when aggregating).
  std::vector<std::string> EffectiveProjection() const;

  std::string ToString() const;
};

}  // namespace axon

#endif  // AXON_SPARQL_ALGEBRA_H_
