// Recursive-descent parser for the supported SPARQL fragment:
//
//   query     := prologue SELECT [DISTINCT] (var+ | '*') WHERE '{' block '}'
//                [LIMIT int]
//   prologue  := (PREFIX pname: <iri>)*
//   block     := (triples | filter)*
//   triples   := subject propertyList '.'
//   propertyList := verb objectList (';' verb objectList)*
//   objectList   := object (',' object)*
//   filter    := FILTER '(' var '=' term ')'
//
// Prefixed names are expanded against the declared prefixes; the 'a'
// keyword expands to rdf:type.

#ifndef AXON_SPARQL_PARSER_H_
#define AXON_SPARQL_PARSER_H_

#include <string_view>

#include "sparql/algebra.h"
#include "util/status.h"

namespace axon {

/// Parses a SELECT query in the supported fragment.
Result<SelectQuery> ParseSparql(std::string_view text);

}  // namespace axon

#endif  // AXON_SPARQL_PARSER_H_
