// Recursive-descent parser for the supported SPARQL fragment:
//
//   query     := prologue SELECT [DISTINCT] selectItems WHERE '{' group '}'
//                modifiers
//   selectItems := '*' | (var | '(' COUNT '(' [DISTINCT] (var|'*') ')'
//                          AS var ')')+
//   prologue  := (PREFIX pname: <iri>)*
//   group     := (triples | filter | OPTIONAL '{' group '}'
//                 | '{' group '}' (UNION '{' group '}')*)*
//   triples   := subject propertyList '.'
//   propertyList := verb objectList (';' verb objectList)*
//   objectList   := object (',' object)*
//   filter    := FILTER '(' expr ')' | FILTER BOUND '(' var ')'
//   expr      := or-expr over comparisons (= != < <= > >=), && || !,
//                bound(?v), variables and constants
//   modifiers := (GROUP BY var+ | ORDER BY orderKey+ | LIMIT int
//                 | OFFSET int)*
//   orderKey  := var | ASC '(' var ')' | DESC '(' var ')'
//
// Prefixed names are expanded against the declared prefixes; the 'a'
// keyword expands to rdf:type. FILTER constraints of the legacy
// `?var = constant` shape parse into EqualityFilter (the conjunctive
// fragment the indexes push down); everything else becomes a FilterExpr.

#ifndef AXON_SPARQL_PARSER_H_
#define AXON_SPARQL_PARSER_H_

#include <string_view>

#include "sparql/algebra.h"
#include "util/status.h"

namespace axon {

/// Parses a SELECT query in the supported fragment.
Result<SelectQuery> ParseSparql(std::string_view text);

}  // namespace axon

#endif  // AXON_SPARQL_PARSER_H_
