// Query-result serialization: renders a BindingTable (through a
// Dictionary) in the interchange formats downstream tools expect —
// SPARQL-style TSV/CSV and the W3C "SPARQL 1.1 Query Results JSON" layout.
//
// Unbound cells (kInvalidId, produced by OPTIONAL padding and UNION
// schema fill) serialize as empty TSV/CSV fields and absent JSON
// bindings; aggregate counts carried as value-tagged ids (rdf/triple.h)
// serialize as xsd:integer literals. ReadResultsTsv is the exact inverse
// of the TSV writer over a fixed dictionary, which is what the golden
// conformance files round-trip through.

#ifndef AXON_SPARQL_RESULTS_IO_H_
#define AXON_SPARQL_RESULTS_IO_H_

#include <string>

#include "exec/bindings.h"
#include "rdf/dictionary.h"
#include "util/status.h"

namespace axon {

enum class ResultFormat {
  kTsv,   // header "?a\t?b", terms in N-Triples syntax (SPARQL TSV)
  kCsv,   // header "a,b", bare lexical forms, RFC-4180 quoting
  kJson,  // W3C SPARQL 1.1 Results JSON
};

/// Serializes `table` in the requested format. Fails on dangling term ids
/// (ids past the dictionary); unbound cells and value-tagged ids are fine.
Result<std::string> WriteResults(const BindingTable& table,
                                 const Dictionary& dict, ResultFormat format);

/// Parses the SPARQL-TSV text the kTsv writer produces back into a
/// BindingTable over `dict`: empty fields become unbound cells, xsd:integer
/// literals absent from the dictionary become value-tagged ids, and any
/// other unknown term is an error.
Result<BindingTable> ReadResultsTsv(std::string_view text,
                                    const Dictionary& dict);

/// Escapes a string for a JSON string literal (quotes not included).
std::string JsonEscape(std::string_view s);

/// Escapes one CSV field per RFC 4180 (quotes the field when needed).
std::string CsvEscape(std::string_view s);

}  // namespace axon

#endif  // AXON_SPARQL_RESULTS_IO_H_
