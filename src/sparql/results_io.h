// Query-result serialization: renders a BindingTable (through a
// Dictionary) in the interchange formats downstream tools expect —
// SPARQL-style TSV/CSV and the W3C "SPARQL 1.1 Query Results JSON" layout.

#ifndef AXON_SPARQL_RESULTS_IO_H_
#define AXON_SPARQL_RESULTS_IO_H_

#include <string>

#include "exec/bindings.h"
#include "rdf/dictionary.h"
#include "util/status.h"

namespace axon {

enum class ResultFormat {
  kTsv,   // header "?a\t?b", terms in N-Triples syntax (SPARQL TSV)
  kCsv,   // header "a,b", bare lexical forms, RFC-4180 quoting
  kJson,  // W3C SPARQL 1.1 Results JSON
};

/// Serializes `table` in the requested format. Fails on dangling term ids.
Result<std::string> WriteResults(const BindingTable& table,
                                 const Dictionary& dict, ResultFormat format);

/// Escapes a string for a JSON string literal (quotes not included).
std::string JsonEscape(std::string_view s);

/// Escapes one CSV field per RFC 4180 (quotes the field when needed).
std::string CsvEscape(std::string_view s);

}  // namespace axon

#endif  // AXON_SPARQL_RESULTS_IO_H_
