#include "engine/update_store.h"

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <tuple>

#include "storage/wal.h"
#include "util/failpoint.h"
#include "util/mutex.h"

namespace axon {

// All mutable store state behind one mutex. Public methods lock it and
// delegate to the *Locked helpers below; the WAL writer is externally
// synchronized by this same lock (storage/wal.h). Lock order: mu is
// acquired before the failpoint registry lock (via AXON_FAILPOINT_STATUS
// inside CompactLocked) and before any trace/metrics lock taken by query
// execution — it never nests inside another subsystem's lock.
struct UpdateStoreImpl {
  Mutex mu;

  // Immutable after Create/OpenDurable returns; unguarded by contract.
  UpdateOptions options;
  std::string path;  // empty = in-memory mode

  std::unique_ptr<WalWriter> wal AXON_GUARDED_BY(mu);  // non-null iff durable
  Dictionary dict AXON_GUARDED_BY(mu);                 // grows monotonically
  std::set<std::tuple<TermId, TermId, TermId>> live AXON_GUARDED_BY(mu);
  std::unique_ptr<Database> snapshot AXON_GUARDED_BY(mu);
  bool dirty AXON_GUARDED_BY(mu) = false;
  uint64_t pending_ops AXON_GUARDED_BY(mu) = 0;
};

namespace {

std::string WalPath(const std::string& base) { return base + ".wal"; }
std::string TmpPath(const std::string& base) { return base + ".tmp"; }

/// Appends one op record ('+'/'-' + N-Triples line) to the WAL and, per
/// options.sync_writes, fsyncs it.
Status LogOpLocked(UpdateStoreImpl& im, char op, const TermTriple& triple)
    AXON_REQUIRES(im.mu) {
  std::string record;
  record.push_back(op);
  record += WriteNTriplesLine(triple);
  AXON_RETURN_NOT_OK(im.wal->Append(record));
  if (im.options.sync_writes) {
    AXON_RETURN_NOT_OK(im.wal->Sync());
  }
  return Status::OK();
}

/// Applies a WAL record to the in-memory state (no logging): recovery.
Status ApplyLogRecordLocked(UpdateStoreImpl& im, std::string_view record)
    AXON_REQUIRES(im.mu) {
  if (record.empty()) return Status::Corruption("wal: empty record");
  char op = record[0];
  auto parsed = ParseNTriplesLine(record.substr(1));
  if (!parsed.ok()) {
    return Status::Corruption("wal: bad record: " +
                              parsed.status().message());
  }
  const TermTriple& t = parsed.value();
  if (op == '+') {
    im.live.insert(
        {im.dict.Intern(t.s), im.dict.Intern(t.p), im.dict.Intern(t.o)});
  } else if (op == '-') {
    auto s = im.dict.Lookup(t.s);
    auto p = im.dict.Lookup(t.p);
    auto o = im.dict.Lookup(t.o);
    if (s.has_value() && p.has_value() && o.has_value()) {
      im.live.erase({*s, *p, *o});
    }
  } else {
    return Status::Corruption("wal: unknown op byte");
  }
  return Status::OK();
}

Status CompactLocked(UpdateStoreImpl& im) AXON_REQUIRES(im.mu) {
  AXON_FAILPOINT_STATUS("compact.build");
  // Rebuild the read-optimized store from the live set. The dictionary is
  // reused as-is: ids are stable across compactions, so bindings held by
  // callers keep rendering correctly.
  Dataset data;
  data.dict = im.dict;
  data.triples.reserve(im.live.size());
  for (const auto& [s, p, o] : im.live) {
    data.triples.push_back(Triple{s, p, o});
  }
  auto built = Database::Build(data, im.options.engine);
  if (!built.ok()) return built.status();
  im.snapshot = std::make_unique<Database>(std::move(built).ValueOrDie());
  if (im.wal != nullptr) {
    // Fold the delta into the base. Order matters: the new base must be
    // durably committed (temp + fsync + rename) BEFORE the WAL resets.
    // Crash windows: before the rename — old base + full WAL, nothing
    // lost; between rename and reset — new base + stale WAL, whose replay
    // is idempotent; after reset — new base + empty WAL. On a persist
    // error we keep dirty so durability is retried, while the rebuilt
    // in-memory snapshot stays fully queryable.
    AXON_FAILPOINT_STATUS("compact.persist");
    Status persisted = im.snapshot->SaveAtomic(im.path);
    if (!persisted.ok()) return persisted;
    AXON_RETURN_NOT_OK(im.wal->Reset(WalPath(im.path)));
  }
  im.dirty = false;
  im.pending_ops = 0;
  return Status::OK();
}

Status InsertLocked(UpdateStoreImpl& im, const TermTriple& triple)
    AXON_REQUIRES(im.mu) {
  if (!triple.s.is_iri() && !triple.s.is_blank()) {
    return Status::InvalidArgument("subject must be an IRI or blank node");
  }
  if (!triple.p.is_iri()) {
    return Status::InvalidArgument("predicate must be an IRI");
  }
  TermId s = im.dict.Intern(triple.s);
  TermId p = im.dict.Intern(triple.p);
  TermId o = im.dict.Intern(triple.o);
  if (im.live.insert({s, p, o}).second) {
    if (im.wal != nullptr) {
      Status logged = LogOpLocked(im, '+', triple);
      if (!logged.ok()) {
        // Not acknowledged: roll the in-memory effect back so the state
        // never claims a write durability cannot back.
        im.live.erase({s, p, o});
        return logged;
      }
    }
    im.dirty = true;
    ++im.pending_ops;
    if (im.options.compaction_threshold > 0 &&
        im.pending_ops >= im.options.compaction_threshold) {
      return CompactLocked(im);
    }
  }
  return Status::OK();
}

Status DeleteLocked(UpdateStoreImpl& im, const TermTriple& triple)
    AXON_REQUIRES(im.mu) {
  auto s = im.dict.Lookup(triple.s);
  auto p = im.dict.Lookup(triple.p);
  auto o = im.dict.Lookup(triple.o);
  if (!s.has_value() || !p.has_value() || !o.has_value()) {
    return Status::OK();  // never seen: nothing to delete
  }
  if (im.live.erase({*s, *p, *o}) > 0) {
    if (im.wal != nullptr) {
      Status logged = LogOpLocked(im, '-', triple);
      if (!logged.ok()) {
        im.live.insert({*s, *p, *o});
        return logged;
      }
    }
    im.dirty = true;
    ++im.pending_ops;
    if (im.options.compaction_threshold > 0 &&
        im.pending_ops >= im.options.compaction_threshold) {
      return CompactLocked(im);
    }
  }
  return Status::OK();
}

Result<const Database*> SnapshotLocked(UpdateStoreImpl& im)
    AXON_REQUIRES(im.mu) {
  if (im.dirty || im.snapshot == nullptr) {
    AXON_RETURN_NOT_OK(CompactLocked(im));
  }
  return const_cast<const Database*>(im.snapshot.get());
}

}  // namespace

UpdatableDatabase::UpdatableDatabase()
    : impl_(std::make_unique<UpdateStoreImpl>()) {}

UpdatableDatabase::~UpdatableDatabase() = default;
UpdatableDatabase::UpdatableDatabase(UpdatableDatabase&&) noexcept = default;
UpdatableDatabase& UpdatableDatabase::operator=(UpdatableDatabase&&) noexcept =
    default;

Result<UpdatableDatabase> UpdatableDatabase::Create(const Dataset& initial,
                                                    UpdateOptions options) {
  UpdatableDatabase db;
  UpdateStoreImpl& im = *db.impl_;
  MutexLock lock(&im.mu);
  im.options = options;
  im.dict = initial.dict;
  for (const Triple& t : initial.triples) {
    im.live.insert({t.s, t.p, t.o});
  }
  AXON_RETURN_NOT_OK(CompactLocked(im));
  return db;
}

Result<UpdatableDatabase> UpdatableDatabase::OpenDurable(
    const std::string& path, UpdateOptions options) {
  if (path.empty()) {
    return Status::InvalidArgument("OpenDurable: empty path");
  }
  UpdatableDatabase db;
  UpdateStoreImpl& im = *db.impl_;
  MutexLock lock(&im.mu);
  im.options = options;
  im.path = path;

  // Recovery step 1: reap the orphaned temp a crash mid-SaveAtomic leaves
  // behind. It was never renamed, so it is not part of the store.
  std::remove(TmpPath(path).c_str());

  // Recovery step 2: open the base snapshot if one was ever committed.
  struct stat st;
  if (::stat(path.c_str(), &st) == 0) {
    auto opened = Database::Open(path, options.engine);
    if (!opened.ok()) return opened.status();  // typed Corruption/IOError
    im.snapshot =
        std::make_unique<Database>(std::move(opened).ValueOrDie());
    im.dict = im.snapshot->dict();
    // Streaming walk: in paged snapshots the rows decode page by page
    // instead of materializing the whole table.
    AXON_RETURN_NOT_OK(im.snapshot->ForEachTriple([&im](const Triple& t) {
      im.mu.AssertHeld();  // callback runs under the lock held above
      im.live.insert({t.s, t.p, t.o});
    }));
  }

  // Recovery step 3: replay the delta. Idempotent ops make a WAL that was
  // already (partially) folded into the base converge to the same state.
  // The callback runs strictly under the lock held above — AssertHeld
  // re-establishes that fact inside the lambda for the analysis.
  auto replayed = ReplayWal(WalPath(path), [&im](std::string_view record) {
    im.mu.AssertHeld();
    return ApplyLogRecordLocked(im, record);
  });
  if (!replayed.ok()) return replayed.status();
  im.dirty = replayed.value().records > 0 || im.snapshot == nullptr;
  im.pending_ops = replayed.value().records;

  // Recovery step 4: drop a torn tail (never-acknowledged bytes), then
  // arm the log for new writes.
  im.wal = std::make_unique<WalWriter>();
  AXON_RETURN_NOT_OK(
      im.wal->Open(WalPath(path), replayed.value().valid_bytes));

  // A fresh store (no base yet) commits an empty base immediately so a
  // reader never sees "no file" after a successful OpenDurable.
  if (im.snapshot == nullptr) {
    AXON_RETURN_NOT_OK(CompactLocked(im));
  }
  return db;
}

Status UpdatableDatabase::Insert(const TermTriple& triple) {
  UpdateStoreImpl& im = *impl_;
  MutexLock lock(&im.mu);
  return InsertLocked(im, triple);
}

Status UpdatableDatabase::Delete(const TermTriple& triple) {
  UpdateStoreImpl& im = *impl_;
  MutexLock lock(&im.mu);
  return DeleteLocked(im, triple);
}

Status UpdatableDatabase::InsertNTriples(std::string_view text) {
  UpdateStoreImpl& im = *impl_;
  MutexLock lock(&im.mu);
  Status status = Status::OK();
  Status parse = ParseNTriples(text, [&im, &status](TermTriple t) {
    im.mu.AssertHeld();
    if (status.ok()) status = InsertLocked(im, t);
  });
  AXON_RETURN_NOT_OK(parse);
  return status;
}

uint64_t UpdatableDatabase::pending_ops() const {
  UpdateStoreImpl& im = *impl_;
  MutexLock lock(&im.mu);
  return im.pending_ops;
}

uint64_t UpdatableDatabase::num_triples() const {
  UpdateStoreImpl& im = *impl_;
  MutexLock lock(&im.mu);
  return im.live.size();
}

bool UpdatableDatabase::durable() const { return !impl_->path.empty(); }

Status UpdatableDatabase::Compact() {
  UpdateStoreImpl& im = *impl_;
  MutexLock lock(&im.mu);
  return CompactLocked(im);
}

Result<const Database*> UpdatableDatabase::Snapshot() {
  UpdateStoreImpl& im = *impl_;
  MutexLock lock(&im.mu);
  return SnapshotLocked(im);
}

Result<QueryResult> UpdatableDatabase::Execute(const SelectQuery& query) {
  UpdateStoreImpl& im = *impl_;
  MutexLock lock(&im.mu);
  AXON_ASSIGN_OR_RETURN(const Database* db, SnapshotLocked(im));
  return db->Execute(query);
}

Result<QueryResult> UpdatableDatabase::ExecuteSparql(std::string_view text) {
  UpdateStoreImpl& im = *impl_;
  MutexLock lock(&im.mu);
  AXON_ASSIGN_OR_RETURN(const Database* db, SnapshotLocked(im));
  return db->ExecuteSparql(text);
}

Result<std::vector<std::string>> UpdatableDatabase::ExportLines() const {
  UpdateStoreImpl& im = *impl_;
  MutexLock lock(&im.mu);
  std::vector<std::string> lines;
  lines.reserve(im.live.size());
  for (const auto& [s, p, o] : im.live) {
    TermTriple t;
    AXON_ASSIGN_OR_RETURN(t.s, im.dict.GetTerm(s));
    AXON_ASSIGN_OR_RETURN(t.p, im.dict.GetTerm(p));
    AXON_ASSIGN_OR_RETURN(t.o, im.dict.GetTerm(o));
    std::string line = WriteNTriplesLine(t);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

Result<std::vector<std::vector<std::string>>> UpdatableDatabase::Render(
    const BindingTable& table) {
  UpdateStoreImpl& im = *impl_;
  MutexLock lock(&im.mu);
  AXON_ASSIGN_OR_RETURN(const Database* db, SnapshotLocked(im));
  return db->Render(table);
}

}  // namespace axon
