#include "engine/update_store.h"

namespace axon {

Result<UpdatableDatabase> UpdatableDatabase::Create(const Dataset& initial,
                                                    UpdateOptions options) {
  UpdatableDatabase db;
  db.options_ = options;
  db.dict_ = initial.dict;
  for (const Triple& t : initial.triples) {
    db.live_.insert({t.s, t.p, t.o});
  }
  AXON_RETURN_NOT_OK(db.Compact());
  return db;
}

Status UpdatableDatabase::Insert(const TermTriple& triple) {
  if (!triple.s.is_iri() && !triple.s.is_blank()) {
    return Status::InvalidArgument("subject must be an IRI or blank node");
  }
  if (!triple.p.is_iri()) {
    return Status::InvalidArgument("predicate must be an IRI");
  }
  TermId s = dict_.Intern(triple.s);
  TermId p = dict_.Intern(triple.p);
  TermId o = dict_.Intern(triple.o);
  if (live_.insert({s, p, o}).second) {
    dirty_ = true;
    ++pending_ops_;
    if (options_.compaction_threshold > 0 &&
        pending_ops_ >= options_.compaction_threshold) {
      return Compact();
    }
  }
  return Status::OK();
}

Status UpdatableDatabase::Delete(const TermTriple& triple) {
  auto s = dict_.Lookup(triple.s);
  auto p = dict_.Lookup(triple.p);
  auto o = dict_.Lookup(triple.o);
  if (!s.has_value() || !p.has_value() || !o.has_value()) {
    return Status::OK();  // never seen: nothing to delete
  }
  if (live_.erase({*s, *p, *o}) > 0) {
    dirty_ = true;
    ++pending_ops_;
    if (options_.compaction_threshold > 0 &&
        pending_ops_ >= options_.compaction_threshold) {
      return Compact();
    }
  }
  return Status::OK();
}

Status UpdatableDatabase::InsertNTriples(std::string_view text) {
  Status status = Status::OK();
  Status parse = ParseNTriples(text, [this, &status](TermTriple t) {
    if (status.ok()) status = Insert(t);
  });
  AXON_RETURN_NOT_OK(parse);
  return status;
}

Status UpdatableDatabase::Compact() {
  // Rebuild the read-optimized store from the live set. The dictionary is
  // reused as-is: ids are stable across compactions, so bindings held by
  // callers keep rendering correctly.
  Dataset data;
  data.dict = dict_;
  data.triples.reserve(live_.size());
  for (const auto& [s, p, o] : live_) {
    data.triples.push_back(Triple{s, p, o});
  }
  auto built = Database::Build(data, options_.engine);
  if (!built.ok()) return built.status();
  snapshot_ = std::make_unique<Database>(std::move(built).ValueOrDie());
  dirty_ = false;
  pending_ops_ = 0;
  return Status::OK();
}

Result<const Database*> UpdatableDatabase::Snapshot() {
  if (dirty_ || snapshot_ == nullptr) {
    AXON_RETURN_NOT_OK(Compact());
  }
  return const_cast<const Database*>(snapshot_.get());
}

Result<QueryResult> UpdatableDatabase::Execute(const SelectQuery& query) {
  AXON_ASSIGN_OR_RETURN(const Database* db, Snapshot());
  return db->Execute(query);
}

Result<QueryResult> UpdatableDatabase::ExecuteSparql(std::string_view text) {
  AXON_ASSIGN_OR_RETURN(const Database* db, Snapshot());
  return db->ExecuteSparql(text);
}

Result<std::vector<std::vector<std::string>>> UpdatableDatabase::Render(
    const BindingTable& table) {
  AXON_ASSIGN_OR_RETURN(const Database* db, Snapshot());
  return db->Render(table);
}

}  // namespace axon
