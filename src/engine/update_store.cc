#include "engine/update_store.h"

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>

#include "util/failpoint.h"

namespace axon {

namespace {
std::string WalPath(const std::string& base) { return base + ".wal"; }
std::string TmpPath(const std::string& base) { return base + ".tmp"; }
}  // namespace

Result<UpdatableDatabase> UpdatableDatabase::Create(const Dataset& initial,
                                                    UpdateOptions options) {
  UpdatableDatabase db;
  db.options_ = options;
  db.dict_ = initial.dict;
  for (const Triple& t : initial.triples) {
    db.live_.insert({t.s, t.p, t.o});
  }
  AXON_RETURN_NOT_OK(db.Compact());
  return db;
}

Result<UpdatableDatabase> UpdatableDatabase::OpenDurable(
    const std::string& path, UpdateOptions options) {
  if (path.empty()) {
    return Status::InvalidArgument("OpenDurable: empty path");
  }
  UpdatableDatabase db;
  db.options_ = options;
  db.path_ = path;

  // Recovery step 1: reap the orphaned temp a crash mid-SaveAtomic leaves
  // behind. It was never renamed, so it is not part of the store.
  std::remove(TmpPath(path).c_str());

  // Recovery step 2: open the base snapshot if one was ever committed.
  struct stat st;
  if (::stat(path.c_str(), &st) == 0) {
    auto opened = Database::Open(path, options.engine);
    if (!opened.ok()) return opened.status();  // typed Corruption/IOError
    db.snapshot_ =
        std::make_unique<Database>(std::move(opened).ValueOrDie());
    db.dict_ = db.snapshot_->dict();
    for (const Triple& t : db.snapshot_->cs_index().spo().rows()) {
      db.live_.insert({t.s, t.p, t.o});
    }
  }

  // Recovery step 3: replay the delta. Idempotent ops make a WAL that was
  // already (partially) folded into the base converge to the same state.
  auto replayed = ReplayWal(WalPath(path), [&db](std::string_view record) {
    return db.ApplyLogRecord(record);
  });
  if (!replayed.ok()) return replayed.status();
  db.dirty_ = replayed.value().records > 0 || db.snapshot_ == nullptr;
  db.pending_ops_ = replayed.value().records;

  // Recovery step 4: drop a torn tail (never-acknowledged bytes), then
  // arm the log for new writes.
  db.wal_ = std::make_unique<WalWriter>();
  AXON_RETURN_NOT_OK(
      db.wal_->Open(WalPath(path), replayed.value().valid_bytes));

  // A fresh store (no base yet) commits an empty base immediately so a
  // reader never sees "no file" after a successful OpenDurable.
  if (db.snapshot_ == nullptr) {
    AXON_RETURN_NOT_OK(db.Compact());
  }
  return db;
}

Status UpdatableDatabase::LogOp(char op, const TermTriple& triple) {
  std::string record;
  record.push_back(op);
  record += WriteNTriplesLine(triple);
  AXON_RETURN_NOT_OK(wal_->Append(record));
  if (options_.sync_writes) {
    AXON_RETURN_NOT_OK(wal_->Sync());
  }
  return Status::OK();
}

Status UpdatableDatabase::ApplyLogRecord(std::string_view record) {
  if (record.empty()) return Status::Corruption("wal: empty record");
  char op = record[0];
  auto parsed = ParseNTriplesLine(record.substr(1));
  if (!parsed.ok()) {
    return Status::Corruption("wal: bad record: " +
                              parsed.status().message());
  }
  const TermTriple& t = parsed.value();
  if (op == '+') {
    live_.insert(
        {dict_.Intern(t.s), dict_.Intern(t.p), dict_.Intern(t.o)});
  } else if (op == '-') {
    auto s = dict_.Lookup(t.s);
    auto p = dict_.Lookup(t.p);
    auto o = dict_.Lookup(t.o);
    if (s.has_value() && p.has_value() && o.has_value()) {
      live_.erase({*s, *p, *o});
    }
  } else {
    return Status::Corruption("wal: unknown op byte");
  }
  return Status::OK();
}

Status UpdatableDatabase::Insert(const TermTriple& triple) {
  if (!triple.s.is_iri() && !triple.s.is_blank()) {
    return Status::InvalidArgument("subject must be an IRI or blank node");
  }
  if (!triple.p.is_iri()) {
    return Status::InvalidArgument("predicate must be an IRI");
  }
  TermId s = dict_.Intern(triple.s);
  TermId p = dict_.Intern(triple.p);
  TermId o = dict_.Intern(triple.o);
  if (live_.insert({s, p, o}).second) {
    if (wal_ != nullptr) {
      Status logged = LogOp('+', triple);
      if (!logged.ok()) {
        // Not acknowledged: roll the in-memory effect back so the state
        // never claims a write durability cannot back.
        live_.erase({s, p, o});
        return logged;
      }
    }
    dirty_ = true;
    ++pending_ops_;
    if (options_.compaction_threshold > 0 &&
        pending_ops_ >= options_.compaction_threshold) {
      return Compact();
    }
  }
  return Status::OK();
}

Status UpdatableDatabase::Delete(const TermTriple& triple) {
  auto s = dict_.Lookup(triple.s);
  auto p = dict_.Lookup(triple.p);
  auto o = dict_.Lookup(triple.o);
  if (!s.has_value() || !p.has_value() || !o.has_value()) {
    return Status::OK();  // never seen: nothing to delete
  }
  if (live_.erase({*s, *p, *o}) > 0) {
    if (wal_ != nullptr) {
      Status logged = LogOp('-', triple);
      if (!logged.ok()) {
        live_.insert({*s, *p, *o});
        return logged;
      }
    }
    dirty_ = true;
    ++pending_ops_;
    if (options_.compaction_threshold > 0 &&
        pending_ops_ >= options_.compaction_threshold) {
      return Compact();
    }
  }
  return Status::OK();
}

Status UpdatableDatabase::InsertNTriples(std::string_view text) {
  Status status = Status::OK();
  Status parse = ParseNTriples(text, [this, &status](TermTriple t) {
    if (status.ok()) status = Insert(t);
  });
  AXON_RETURN_NOT_OK(parse);
  return status;
}

Status UpdatableDatabase::Compact() {
  AXON_FAILPOINT_STATUS("compact.build");
  // Rebuild the read-optimized store from the live set. The dictionary is
  // reused as-is: ids are stable across compactions, so bindings held by
  // callers keep rendering correctly.
  Dataset data;
  data.dict = dict_;
  data.triples.reserve(live_.size());
  for (const auto& [s, p, o] : live_) {
    data.triples.push_back(Triple{s, p, o});
  }
  auto built = Database::Build(data, options_.engine);
  if (!built.ok()) return built.status();
  snapshot_ = std::make_unique<Database>(std::move(built).ValueOrDie());
  if (wal_ != nullptr) {
    // Fold the delta into the base. Order matters: the new base must be
    // durably committed (temp + fsync + rename) BEFORE the WAL resets.
    // Crash windows: before the rename — old base + full WAL, nothing
    // lost; between rename and reset — new base + stale WAL, whose replay
    // is idempotent; after reset — new base + empty WAL. On a persist
    // error we keep dirty_ so durability is retried, while the rebuilt
    // in-memory snapshot stays fully queryable.
    AXON_FAILPOINT_STATUS("compact.persist");
    Status persisted = snapshot_->SaveAtomic(path_);
    if (!persisted.ok()) return persisted;
    AXON_RETURN_NOT_OK(wal_->Reset(WalPath(path_)));
  }
  dirty_ = false;
  pending_ops_ = 0;
  return Status::OK();
}

Result<const Database*> UpdatableDatabase::Snapshot() {
  if (dirty_ || snapshot_ == nullptr) {
    AXON_RETURN_NOT_OK(Compact());
  }
  return const_cast<const Database*>(snapshot_.get());
}

Result<QueryResult> UpdatableDatabase::Execute(const SelectQuery& query) {
  AXON_ASSIGN_OR_RETURN(const Database* db, Snapshot());
  return db->Execute(query);
}

Result<QueryResult> UpdatableDatabase::ExecuteSparql(std::string_view text) {
  AXON_ASSIGN_OR_RETURN(const Database* db, Snapshot());
  return db->ExecuteSparql(text);
}

Result<std::vector<std::string>> UpdatableDatabase::ExportLines() const {
  std::vector<std::string> lines;
  lines.reserve(live_.size());
  for (const auto& [s, p, o] : live_) {
    TermTriple t;
    AXON_ASSIGN_OR_RETURN(t.s, dict_.GetTerm(s));
    AXON_ASSIGN_OR_RETURN(t.p, dict_.GetTerm(p));
    AXON_ASSIGN_OR_RETURN(t.o, dict_.GetTerm(o));
    std::string line = WriteNTriplesLine(t);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

Result<std::vector<std::vector<std::string>>> UpdatableDatabase::Render(
    const BindingTable& table) {
  AXON_ASSIGN_OR_RETURN(const Database* db, Snapshot());
  return db->Render(table);
}

}  // namespace axon
