#include "engine/executor.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>

#include "engine/extended_eval.h"
#include "exec/batch.h"
#include "exec/exec_mode.h"
#include "util/cancellation.h"
#include "util/failpoint.h"
#include "util/resource_governor.h"
#include "util/string_util.h"
#include "util/trace.h"

namespace axon {

void Executor::AccountPageReads(const std::vector<RowRange>& sorted_ranges,
                                ExecStats* stats) {
  if (stats == nullptr) return;
  uint64_t last_page = UINT64_MAX;
  for (const RowRange& r : sorted_ranges) {
    if (r.empty()) continue;
    uint64_t first = r.begin / kSimulatedPageRows;
    uint64_t last = (r.end - 1) / kSimulatedPageRows;
    stats->pages_read += last - first + 1;
    if (first == last_page) --stats->pages_read;  // shared page boundary
    last_page = last;
  }
}

std::vector<RowRange> Executor::PlanScanRanges(
    std::vector<RowRange> ranges) const {
  std::sort(ranges.begin(), ranges.end(),
            [](const RowRange& a, const RowRange& b) {
              return a.begin < b.begin;
            });
  if (!options_.use_hierarchy || ranges.size() <= 1) return ranges;
  // Coalesce exactly adjacent (or overlapping) ranges: with the hierarchy
  // pre-order storage layout, matched ECS families are neighbours, so one
  // extended range scan replaces many small ones (Sec. IV.D).
  std::vector<RowRange> merged;
  for (const RowRange& r : ranges) {
    if (!merged.empty() && r.begin <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, r.end);
    } else {
      merged.push_back(r);
    }
  }
  return merged;
}

BindingTable Executor::EvalQueryEcs(const QueryGraph& qg, int query_ecs,
                                    const std::vector<EcsId>& matches,
                                    ExecStats* stats,
                                    QueryContext* ctx) const {
  AXON_SPAN("op.eval_query_ecs");
  const QueryEcs& q = qg.ecss[query_ecs];
  BindingTable acc;
  bool first = true;
  for (int pi : q.link_patterns) {
    const IdPattern& p = qg.patterns[pi];
    std::vector<RowRange> ranges;
    ranges.reserve(matches.size());
    for (EcsId e : matches) {
      RowRange r =
          p.p_bound() ? ecs_->PropertyRange(e, p.p) : ecs_->RangeOf(e);
      if (!r.empty()) ranges.push_back(r);
    }
    ranges = PlanScanRanges(std::move(ranges));
    AccountPageReads(ranges, stats);
    AXON_COUNTER_ADD("exec.ecs_ranges_scanned", ranges.size());
    // Scan each range as a pool task (inline when serial), then merge the
    // partial tables in range order — the same row order the serial single
    // loop produces. Stats are task-local and summed in range order.
    const TripleSource pso = PsoSource();
    std::vector<BindingTable> parts(ranges.size());
    std::vector<ExecStats> part_stats(ranges.size());
    ParallelFor(pool_, ranges.size(), [&](size_t i) {
      // Worker thread: install the query's budget and honor its stops.
      BudgetScope budget_scope(ctx != nullptr ? ctx->budget() : nullptr);
      if (ctx != nullptr && ctx->ShouldStop()) return;
      if (!pso.paged()) {
        parts[i] =
            ScanPattern(pso.ResidentSlice(ranges[i]), p, &part_stats[i], ctx);
        return;
      }
      // Paged: feed the scan one pinned page at a time. Chunk-invariant:
      // same rows, stats and charges as the contiguous slice above.
      PatternScanner scanner(p);
      pso.Scan(ranges[i], [&](std::span<const Triple> chunk, uint64_t) {
        scanner.Feed(chunk, &part_stats[i], ctx);
      });
      parts[i] = scanner.Finish(&part_stats[i]);
    });
    BindingTable link = ScanPattern({}, p, nullptr);  // empty, right schema
    for (size_t i = 0; i < ranges.size(); ++i) {
      if (stats != nullptr) stats->Accumulate(part_stats[i]);
      AppendRowsByName(&link, parts[i]);
    }
    if (first) {
      acc = std::move(link);
      first = false;
    } else {
      // Multiple properties between the same chain nodes: natural join on
      // the shared subject/object columns.
      acc = HashJoin(acc, link, stats, ctx);
    }
    if (acc.num_rows() == 0) break;
  }
  return acc;
}

bool Executor::StarMergeApplicable(const QueryGraph& qg,
                                   const std::vector<int>& star_patterns,
                                   const std::string& node_col) {
  // The merge fast path assumes the only variable shared between the
  // patterns is the subject; repeated variables inside a pattern or across
  // patterns need the general join pipeline.
  std::set<std::string> seen;
  for (int pi : star_patterns) {
    const IdPattern& p = qg.patterns[pi];
    std::vector<std::string> vars;
    if (!p.p_bound() && !p.p_var.empty()) vars.push_back(p.p_var);
    if (!p.o_bound() && !p.o_var.empty()) vars.push_back(p.o_var);
    for (const std::string& v : vars) {
      if (v == node_col || !seen.insert(v).second) return false;
    }
    if (vars.size() == 2 && vars[0] == vars[1]) return false;
  }
  return true;
}

void Executor::StarMergeScan(const QueryGraph& qg,
                             const std::vector<int>& star_patterns,
                             std::span<const Triple> rows, BindingTable* out,
                             ExecStats* stats, QueryContext* ctx) const {
  // One pass over a subject-ordered CS partition (the interesting order the
  // paper's Sec. IV.D merge join exploits): per subject group, collect each
  // pattern's matches and emit their cartesian product.
  size_t n = rows.size();
  size_t k = star_patterns.size();
  // Per pattern: list of (p value or 0, o value or 0) matches in the group.
  std::vector<std::vector<std::pair<TermId, TermId>>> matches(k);
  std::vector<TermId> row_buf(out->num_cols());
  // In batch mode, output rows accumulate in a columnar batch flushed per
  // kBatchRows (one append/charge per block) and stop checks stretch to
  // batch granularity; row mode keeps the per-leaf reference behavior.
  const bool use_batch = CurrentExecMode() == ExecMode::kBatch;
  const size_t check_rows = use_batch ? kBatchRows : kStopCheckRows;
  Batch batch;
  size_t batch_rows = 0;
  if (use_batch) batch.Reset(out->num_cols());
  auto emit_row = [&] {
    if (!use_batch) {
      out->AppendRow(row_buf);
      return;
    }
    for (size_t c = 0; c < row_buf.size(); ++c) {
      batch.col(c)[batch_rows] = row_buf[c];
    }
    if (++batch_rows == kBatchRows) {
      batch.set_size(batch_rows);
      out->AppendBatch(batch);
      batch.Reset(out->num_cols());
      batch_rows = 0;
    }
  };
  size_t counted = 0;
  size_t i = 0;
  while (i < n) {
    // Stop check per block-sized stretch of consumed rows (a subject group
    // larger than one block delays the check until the group ends).
    if (i - counted >= check_rows) {
      AXON_COUNTER_ADD("exec.triples_scanned", i - counted);
      counted = i;
      if (ctx != nullptr) ctx->CheckStop();
    }
    size_t j = i;
    TermId subject = rows[i].s;
    for (auto& m : matches) m.clear();
    bool ok = true;
    while (j < n && rows[j].s == subject) {
      if (stats != nullptr) ++stats->rows_scanned;
      for (size_t pi = 0; pi < k; ++pi) {
        const IdPattern& p = qg.patterns[star_patterns[pi]];
        if (p.p_bound() && rows[j].p != p.p) continue;
        if (p.o_bound() && rows[j].o != p.o) continue;
        matches[pi].emplace_back(rows[j].p, rows[j].o);
      }
      ++j;
    }
    for (const auto& m : matches) {
      if (m.empty()) {
        ok = false;
        break;
      }
    }
    if (ok) {
      // Odometer over the per-pattern match lists.
      std::vector<size_t> idx(k, 0);
      while (true) {
        size_t col = 0;
        row_buf[col++] = subject;
        for (size_t pi = 0; pi < k; ++pi) {
          const IdPattern& p = qg.patterns[star_patterns[pi]];
          const auto& [pv, ov] = matches[pi][idx[pi]];
          if (!p.p_bound() && !p.p_var.empty()) row_buf[col++] = pv;
          if (!p.o_bound() && !p.o_var.empty()) row_buf[col++] = ov;
        }
        emit_row();
        // Advance the odometer.
        size_t d = 0;
        for (; d < k; ++d) {
          if (++idx[d] < matches[d].size()) break;
          idx[d] = 0;
        }
        if (d == k) break;
      }
    }
    i = j;
  }
  if (use_batch && batch_rows > 0) {
    batch.set_size(batch_rows);
    out->AppendBatch(batch);
  }
  AXON_COUNTER_ADD("exec.triples_scanned", n - counted);
  // intermediate_rows accounting is the caller's job: it tracks the
  // *accumulated* output table, which per-partition tasks cannot see.
}

void Executor::StarMergeScanSource(const QueryGraph& qg,
                                   const std::vector<int>& star_patterns,
                                   const TripleSource& src,
                                   const RowRange& range, BindingTable* out,
                                   ExecStats* stats, QueryContext* ctx) const {
  if (!src.paged()) {
    StarMergeScan(qg, star_patterns, src.ResidentSlice(range), out, stats,
                  ctx);
    return;
  }
  // Paged: a subject group can straddle pages, so carry the trailing
  // incomplete group across chunks and flush only whole-group prefixes.
  // Groups are independent and arrive in order, so the concatenation of
  // flushes emits exactly the contiguous scan's rows; rows_scanned and
  // budget charges are chunk-invariant.
  std::vector<Triple> carry;
  src.Scan(range, [&](std::span<const Triple> chunk, uint64_t) {
    if (chunk.empty()) return;
    if (!carry.empty() && carry.back().s == chunk.front().s) {
      size_t take = 0;
      while (take < chunk.size() && chunk[take].s == carry.back().s) ++take;
      carry.insert(carry.end(), chunk.begin(), chunk.begin() + take);
      chunk = chunk.subspan(take);
      if (chunk.empty()) return;  // group may continue into the next page
    }
    if (!carry.empty()) {  // the carried group is now complete
      StarMergeScan(qg, star_patterns, carry, out, stats, ctx);
      carry.clear();
    }
    // Flush the chunk's whole-group prefix; carry its trailing group.
    size_t tail = chunk.size();
    const TermId last_s = chunk.back().s;
    while (tail > 0 && chunk[tail - 1].s == last_s) --tail;
    StarMergeScan(qg, star_patterns, chunk.subspan(0, tail), out, stats, ctx);
    carry.assign(chunk.begin() + tail, chunk.end());
  });
  if (!carry.empty()) {
    StarMergeScan(qg, star_patterns, carry, out, stats, ctx);
  }
}

BindingTable Executor::EvalStarNode(const QueryGraph& qg, int node,
                                    const std::vector<CsId>& allowed_cs,
                                    const std::vector<int>& star_patterns,
                                    ExecStats* stats,
                                    QueryContext* ctx) const {
  AXON_SPAN("op.eval_star_node");
  const QueryNode& n = qg.nodes[node];

  // Non-empty partition ranges in allowed_cs order — the unit of work for
  // both retrieval paths (and, sorted, the page-accounting input).
  std::vector<RowRange> ranges;
  for (CsId cs : allowed_cs) {
    RowRange range = n.is_variable ? cs_->RangeOf(cs)
                                   : cs_->SubjectRange(cs, n.bound_id);
    if (!range.empty()) ranges.push_back(range);
  }
  {
    std::vector<RowRange> sorted = ranges;
    std::sort(sorted.begin(), sorted.end(),
              [](const RowRange& a, const RowRange& b) {
                return a.begin < b.begin;
              });
    AccountPageReads(sorted, stats);
  }
  AXON_COUNTER_ADD("exec.cs_ranges_scanned", ranges.size());

  if (options_.use_star_merge_scan &&
      StarMergeApplicable(qg, star_patterns, n.col)) {
    // Merge fast path: schema = subject column + per-pattern variables.
    std::vector<std::string> cols = {n.col};
    for (int pi : star_patterns) {
      const IdPattern& p = qg.patterns[pi];
      if (!p.p_bound() && !p.p_var.empty()) cols.push_back(p.p_var);
      if (!p.o_bound() && !p.o_var.empty()) cols.push_back(p.o_var);
    }
    // One merge-scan task per partition, gathered in partition order.
    const TripleSource spo = SpoSource();
    std::vector<BindingTable> parts(ranges.size());
    std::vector<ExecStats> part_stats(ranges.size());
    ParallelFor(pool_, ranges.size(), [&](size_t i) {
      BudgetScope budget_scope(ctx != nullptr ? ctx->budget() : nullptr);
      if (ctx != nullptr && ctx->ShouldStop()) return;
      parts[i] = BindingTable(cols);
      StarMergeScanSource(qg, star_patterns, spo, ranges[i], &parts[i],
                          &part_stats[i], ctx);
    });
    BindingTable acc(cols);
    for (size_t i = 0; i < ranges.size(); ++i) {
      if (ctx != nullptr) ctx->CheckStop();
      if (stats != nullptr) stats->Accumulate(part_stats[i]);
      AppendRowsByName(&acc, parts[i]);
      // The serial reference accounted the accumulated table after each
      // partition's merge scan; reproduce that running total exactly.
      if (stats != nullptr) {
        stats->intermediate_rows += acc.num_rows();
        stats->NotePeakBytes(acc.ByteSize());
      }
    }
    return acc;
  }

  // General path. Establish the output schema by running the per-CS
  // pipeline on an empty span once (join column order is deterministic for
  // a fixed pipeline).
  BindingTable acc = ScanPattern({}, qg.patterns[star_patterns[0]], nullptr);
  for (size_t i = 1; i < star_patterns.size(); ++i) {
    acc = HashJoin(acc, ScanPattern({}, qg.patterns[star_patterns[i]], nullptr),
                   nullptr);
  }
  // One scan+join pipeline task per partition, gathered in partition order.
  const TripleSource spo = SpoSource();
  std::vector<BindingTable> parts(ranges.size());
  std::vector<ExecStats> part_stats(ranges.size());
  ParallelFor(pool_, ranges.size(), [&](size_t i) {
    BudgetScope budget_scope(ctx != nullptr ? ctx->budget() : nullptr);
    if (ctx != nullptr && ctx->ShouldStop()) return;
    BindingTable per_cs;
    bool first = true;
    for (int pi : star_patterns) {
      // Paged: re-scan the range per pattern (pages stay cache-warm across
      // patterns), preserving the resident path's early break on an empty
      // join and its per-pattern stats exactly.
      BindingTable t;
      if (!spo.paged()) {
        t = ScanPattern(spo.ResidentSlice(ranges[i]), qg.patterns[pi],
                        &part_stats[i], ctx);
      } else {
        PatternScanner scanner(qg.patterns[pi]);
        spo.Scan(ranges[i], [&](std::span<const Triple> chunk, uint64_t) {
          scanner.Feed(chunk, &part_stats[i], ctx);
        });
        t = scanner.Finish(&part_stats[i]);
      }
      if (first) {
        per_cs = std::move(t);
        first = false;
      } else {
        per_cs = HashJoin(per_cs, t, &part_stats[i], ctx);
      }
      if (per_cs.num_rows() == 0) break;
    }
    parts[i] = std::move(per_cs);
  });
  for (size_t i = 0; i < ranges.size(); ++i) {
    if (ctx != nullptr) ctx->CheckStop();
    if (stats != nullptr) stats->Accumulate(part_stats[i]);
    AppendRowsByName(&acc, parts[i]);
  }
  return acc;
}

std::vector<int> Executor::NeededStarPatterns(const QueryGraph& qg, int node,
                                              const SelectQuery& query) const {
  std::vector<int> star = qg.StarPatterns(node);
  if (!options_.skip_redundant_star_retrieval) return star;

  // Count variable occurrences across all pattern positions.
  std::map<std::string, int> occurrences;
  for (const IdPattern& p : qg.patterns) {
    if (!p.s_bound()) ++occurrences[p.s_var];
    if (!p.p_bound()) ++occurrences[p.p_var];
    if (!p.o_bound()) ++occurrences[p.o_var];
  }
  std::vector<std::string> proj = query.EffectiveProjection();
  auto is_projected = [&proj](const std::string& v) {
    return std::find(proj.begin(), proj.end(), v) != proj.end();
  };
  auto is_filtered = [&query](const std::string& v) {
    for (const EqualityFilter& f : query.filters) {
      if (f.var == v) return true;
    }
    return false;
  };

  std::vector<int> needed;
  for (int pi : star) {
    const IdPattern& p = qg.patterns[pi];
    bool skippable = p.p_bound() && !p.o_bound() && !p.o_var.empty() &&
                     p.o_var != p.s_var && occurrences[p.o_var] == 1 &&
                     !is_projected(p.o_var) && !is_filtered(p.o_var);
    if (!skippable) needed.push_back(pi);
  }
  return needed;
}

Executor::ChainJoinPlan Executor::ComputeChainJoinPlan(
    const QueryGraph& qg, const std::vector<std::set<EcsId>>& qecs_matches,
    const QueryPlan& plan) const {
  ChainJoinPlan out;

  // Priority order of query ECSs: plan order (outer chain order + inner
  // join order), deduped.
  std::vector<int> priority;
  {
    std::vector<bool> seen(qg.ecss.size(), false);
    for (const ChainPlan& cp : plan.chains) {
      for (size_t pos : cp.join_order) {
        int qecs = cp.chain[pos];
        if (!seen[qecs]) {
          seen[qecs] = true;
          priority.push_back(qecs);
        }
      }
    }
  }

  // Per-query-ECS statistics over the unioned matches, for the Eq. 9 cost
  // model applied globally: eval cardinality plus the two multiplication
  // factors (object-subject expansion when entering through the subject
  // side, subject-object when entering through the object side).
  out.cost.assign(qg.ecss.size(), 0.0);
  std::vector<double> mf_s(qg.ecss.size(), 1.0);
  std::vector<double> mf_o(qg.ecss.size(), 1.0);
  for (size_t qi = 0; qi < qg.ecss.size(); ++qi) {
    std::vector<EcsId> pm(qecs_matches[qi].begin(), qecs_matches[qi].end());
    out.cost[qi] = planner_.PositionCost(qg, static_cast<int>(qi), pm);
    uint64_t triples = 0;
    uint64_t subjects = 0;
    uint64_t objects = 0;
    for (EcsId e : pm) {
      const EcsStats& s = stats_->Of(e);
      triples += s.num_triples;
      subjects += s.distinct_subjects;
      objects += s.distinct_objects;
    }
    mf_s[qi] = subjects == 0 ? 1.0
                             : static_cast<double>(triples) /
                                   static_cast<double>(subjects);
    mf_o[qi] = objects == 0 ? 1.0
                            : static_cast<double>(triples) /
                                  static_cast<double>(objects);
  }

  // Global ordering over the units: the greedy heuristic (plan order with
  // Eq. 9 estimates) and, within the DP threshold, the bottom-up DPsize
  // enumeration — whichever sequence replays cheaper wins (planner.h).
  // The selection is purely statistics-driven, so the order (and its
  // running estimates) can be computed without touching the data — which
  // is what Explain() prints.
  JoinOrderInput input;
  input.cost = out.cost;
  input.mf_s = std::move(mf_s);
  input.mf_o = std::move(mf_o);
  input.subject_node.reserve(qg.ecss.size());
  input.object_node.reserve(qg.ecss.size());
  for (const QueryEcs& q : qg.ecss) {
    input.subject_node.push_back(q.subject_node);
    input.object_node.push_back(q.object_node);
  }
  input.priority = std::move(priority);
  input.num_nodes = qg.nodes.size();
  JoinOrder order = OrderJoins(input, options_.use_planner,
                               options_.use_dp_planner,
                               options_.dp_join_threshold);
  out.sequence = std::move(order.sequence);
  out.running_estimate = std::move(order.running_estimate);
  out.total_cost = order.total_cost;
  out.used_dp = order.used_dp;
  return out;
}

Result<QueryResult> Executor::Execute(const SelectQuery& query) const {
  QueryContext ctx(options_.timeout_millis, options_.memory_budget_bytes);
  return Execute(query, &ctx);
}

Result<QueryResult> Executor::Execute(const SelectQuery& query,
                                      QueryContext* ctx) const {
  // The query fault boundary. Cooperative stops (deadline / cancel /
  // budget) arrive as QueryStopError thrown inside scan loops — including
  // ones a worker task hit and WaitGroup::Wait rethrew. Allocation
  // failures — a real OOM, a budget charge, or an armed "exec.query" oom
  // failpoint — surface as a clean ResourceExhausted, never a crash: one
  // query overrunning memory must not take the server down.
  try {
    AXON_FAILPOINT("exec.query");
    // Paged mode: report the *real* per-query frame traffic by differencing
    // the buffer manager's monotonic counters around the query. Concurrent
    // queries blur attribution (shared pool), which is inherent to real
    // buffer caches; the differential tests run queries serially.
    BufferStats before;
    if (buffer_ != nullptr) before = buffer_->stats();
    Result<QueryResult> r = ExecuteImpl(query, ctx);
    if (buffer_ != nullptr && r.ok()) {
      BufferStats after = buffer_->stats();
      r.value().stats.pages_read = after.pages_read - before.pages_read;
      r.value().stats.pages_evicted =
          after.pages_evicted - before.pages_evicted;
    }
    return r;
  } catch (const QueryStopError&) {
    return ctx->StopStatus();
  } catch (const PagedIoError& e) {
    return e.status();
  } catch (const BudgetExceededError&) {
    return Status::ResourceExhausted(
        "query exceeded memory budget of " +
        std::to_string(ctx->budget()->limit()) + " bytes");
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted(
        "query aborted: out of memory during execution");
  }
}

Result<QueryResult> Executor::ExecuteImpl(const SelectQuery& query,
                                          QueryContext* ctx) const {
  // Extended surface (OPTIONAL/UNION/FILTER expressions/aggregation/ORDER
  // BY/OFFSET): compose the shared operators over conjunctive leaves, each
  // leaf answered by this executor's native chain/star pipeline. The fault
  // boundary in Execute() covers the whole composition.
  if (!query.IsConjunctive()) {
    return EvaluateExtended(
        query, *dict_,
        [this](const SelectQuery& leaf, QueryContext* c) {
          return ExecuteImpl(leaf, c);
        },
        ctx);
  }
  AXON_SPAN("query.execute");
  QueryResult result;
  // One shared context per query: the merging thread checks it between
  // operators, every scan/join loop checks it per leaf, and the sticky
  // cause makes the whole task tree quiesce once any thread fires a stop.
  // The budget is installed thread-locally here and re-installed inside
  // every worker task.
  BudgetScope budget_scope(ctx->budget());
  auto stop_status = [ctx]() { return ctx->StopStatus(); };
  std::vector<std::string> proj = query.EffectiveProjection();
  auto empty_result = [&proj]() {
    QueryResult r;
    r.table = BindingTable(proj);
    return r;
  };

  auto qg_r = BuildQueryGraph(query, *dict_, cs_->properties());
  if (!qg_r.ok()) return qg_r.status();
  QueryGraph qg = std::move(qg_r).ValueOrDie();
  if (qg.impossible) return empty_result();

  // Resolve filters early; an unknown constant means no solutions.
  std::vector<std::pair<std::string, TermId>> filters;
  for (const EqualityFilter& f : query.filters) {
    auto id = dict_->Lookup(f.value);
    if (!id.has_value()) return empty_result();
    filters.emplace_back(f.var, *id);
  }

  // --- Match chains against the ECS index (Algorithms 3-4). ---
  std::vector<ChainMatch> matches;
  {
    AXON_SPAN("query.match_chains");
    matches.reserve(qg.chains.size());
    for (const auto& chain : qg.chains) {
      ChainMatch m = matcher_.MatchChain(qg, chain);
      // An unmatched position anywhere proves the conjunctive query empty —
      // the paper's "quickly assessing the existence of non-empty results".
      if (m.Empty()) return empty_result();
      matches.push_back(std::move(m));
    }
  }

  QueryPlan plan;
  {
    AXON_SPAN("query.plan");
    plan = planner_.Plan(qg, std::move(matches), options_.use_planner);
  }

  // A query ECS may sit on several (overlapping) chains; its evaluation —
  // the union of its matched ECS partitions — does not depend on which
  // chain reached it, so evaluate and join each query ECS exactly once.
  // The chain-consistent matches are unioned per query ECS; the chain plan
  // contributes the join *order* only.
  std::vector<std::set<EcsId>> qecs_matches(qg.ecss.size());
  for (const ChainPlan& cp : plan.chains) {
    for (size_t pos = 0; pos < cp.chain.size(); ++pos) {
      qecs_matches[cp.chain[pos]].insert(
          cp.matches.position_matches[pos].begin(),
          cp.matches.position_matches[pos].end());
    }
  }

  // Allowed CSs per node, accumulated from the matched ECSs.
  std::vector<std::set<CsId>> node_cs(qg.nodes.size());
  std::vector<bool> node_in_chain(qg.nodes.size(), false);
  for (size_t qi = 0; qi < qg.ecss.size(); ++qi) {
    const QueryEcs& q = qg.ecss[qi];
    node_in_chain[q.subject_node] = true;
    node_in_chain[q.object_node] = true;
    for (EcsId e : qecs_matches[qi]) {
      node_cs[q.subject_node].insert(ecs_->set(e).subject_cs);
      node_cs[q.object_node].insert(ecs_->set(e).object_cs);
    }
  }

  ChainJoinPlan join_plan = ComputeChainJoinPlan(qg, qecs_matches, plan);

  // Join each query ECS once, in the planned global order.
  //
  // Parallel path: the query ECSs are independent scan/join units, so all
  // of them are evaluated concurrently up front, then joined serially in
  // plan order. To keep summed ExecStats identical to the serial reference
  // (which stops evaluating once a join runs empty), a task's counters are
  // only folded in when its table is actually consumed by the merge loop.
  BindingTable current;
  bool first = true;
  {
    AXON_SPAN("query.eval_chains");
    const size_t num_qecs = join_plan.sequence.size();
    std::vector<BindingTable> qecs_tables(num_qecs);
    std::vector<ExecStats> qecs_stats(num_qecs);
    if (pool_ != nullptr && num_qecs > 1) {
      WaitGroup wg(pool_);
      for (size_t i = 0; i < num_qecs; ++i) {
        wg.Run([this, &qg, &join_plan, &qecs_matches, &qecs_tables, &qecs_stats,
                ctx, i] {
          BudgetScope task_scope(ctx->budget());
          if (ctx->ShouldStop()) return;
          int qecs = join_plan.sequence[i];
          std::vector<EcsId> pm(qecs_matches[qecs].begin(),
                                qecs_matches[qecs].end());
          qecs_tables[i] = EvalQueryEcs(qg, qecs, pm, &qecs_stats[i], ctx);
        });
      }
      wg.Wait();
      if (ctx->ShouldStop()) return stop_status();
      for (size_t i = 0; i < num_qecs; ++i) {
        result.stats.Accumulate(qecs_stats[i]);
        if (first) {
          current = std::move(qecs_tables[i]);
          first = false;
        } else {
          current = HashJoin(current, qecs_tables[i], &result.stats, ctx);
        }
        if (current.num_rows() == 0) return empty_result();
      }
    } else {
      for (int qecs : join_plan.sequence) {
        std::vector<EcsId> pm(qecs_matches[qecs].begin(),
                              qecs_matches[qecs].end());
        BindingTable t = EvalQueryEcs(qg, qecs, pm, &result.stats, ctx);
        if (ctx->ShouldStop()) return stop_status();
        if (first) {
          current = std::move(t);
          first = false;
        } else {
          current = HashJoin(current, t, &result.stats, ctx);
        }
        if (current.num_rows() == 0) return empty_result();
      }
    }
  }

  // --- Star retrieval per node (Sec. IV.D). ---
  {
    AXON_SPAN("query.eval_stars");
    for (size_t node = 0; node < qg.nodes.size(); ++node) {
      if (!qg.nodes[node].emits()) continue;
      std::vector<int> all_star = qg.StarPatterns(static_cast<int>(node));
      if (all_star.empty()) continue;
      std::vector<int> needed =
          NeededStarPatterns(qg, static_cast<int>(node), query);

      // Allowed CS partitions for this node.
      std::vector<CsId> allowed;
      if (node_in_chain[node]) {
        allowed.assign(node_cs[node].begin(), node_cs[node].end());
      } else {
        const QueryNode& n = qg.nodes[node];
        if (!n.is_variable) {
          auto cs = cs_->CsOfSubject(n.bound_id);
          if (!cs.has_value() ||
              !n.star_bitmap.IsSubsetOf(cs_->set(*cs).properties)) {
            return empty_result();
          }
          allowed = {*cs};
        } else {
          allowed = cs_->MatchSupersets(n.star_bitmap);
        }
      }
      if (allowed.empty()) return empty_result();

      BindingTable star;
      if (needed.empty()) {
        if (node_in_chain[node]) continue;  // the chain carries the column
        // Existence-only star node: emit its distinct subjects. The serial
        // pipeline honors the same shared context the pool workers check:
        // one test per leaf-sized chunk, caught by the post-loop check below.
        star = BindingTable({qg.nodes[node].col});
        const bool use_batch = CurrentExecMode() == ExecMode::kBatch;
        const TripleSource spo = SpoSource();
        std::vector<TermId> subs(use_batch ? kBatchRows : 0);
        std::vector<SelVector> sel(use_batch ? kBatchRows : 0);
        Batch batch;
        for (CsId cs : allowed) {
          if (ctx->ShouldStop()) break;
          RowRange range = qg.nodes[node].is_variable
                               ? cs_->RangeOf(cs)
                               : cs_->SubjectRange(cs, qg.nodes[node].bound_id);
          TermId last = kInvalidId;  // reset per range, carried across chunks
          // The scan body over one chunk of the range. Resident mode calls
          // it once on the whole slice (the reference behavior); paged mode
          // once per pinned page, with `last` carrying the subject dedup
          // across page boundaries — same output rows, same rows_scanned.
          auto scan_rows = [&](std::span<const Triple> rows, uint64_t) {
            size_t counted = 0;
            if (use_batch) {
              // Blocked subject dedup: extract the subject column, build a
              // selection of group starts (subjects are contiguous in SPO
              // order), gather, append — one stop check per block.
              for (size_t base = 0; base < rows.size(); base += kBatchRows) {
                AXON_COUNTER_ADD("exec.triples_scanned", base - counted);
                counted = base;
                if (ctx->ShouldStop()) break;
                const size_t bn = std::min(kBatchRows, rows.size() - base);
                result.stats.rows_scanned += bn;
                for (size_t i = 0; i < bn; ++i) subs[i] = rows[base + i].s;
                size_t k = 0;
                for (size_t i = 0; i < bn; ++i) {
                  sel[k] = static_cast<SelVector>(i);
                  k += subs[i] != last ? 1 : 0;
                  last = subs[i];
                }
                if (k == 0) continue;
                batch.Reset(1);
                GatherCol(subs.data(), sel.data(), k, batch.col(0));
                batch.set_size(k);
                star.AppendBatch(batch);
              }
            } else {
              for (size_t i = 0; i < rows.size(); ++i) {
                if ((i % kStopCheckRows) == 0) {
                  AXON_COUNTER_ADD("exec.triples_scanned", i - counted);
                  counted = i;
                  if (ctx->ShouldStop()) break;
                }
                const Triple& t = rows[i];
                ++result.stats.rows_scanned;
                if (t.s != last) {
                  star.AppendRow({t.s});
                  last = t.s;
                }
              }
            }
            AXON_COUNTER_ADD("exec.triples_scanned",
                             ctx->ShouldStop() ? 0 : rows.size() - counted);
          };
          if (!spo.paged()) {
            scan_rows(spo.ResidentSlice(range), range.begin);
          } else {
            spo.Scan(range, scan_rows);
          }
        }
      } else {
        star = EvalStarNode(qg, static_cast<int>(node), allowed, needed,
                            &result.stats, ctx);
      }
      if (ctx->ShouldStop()) return stop_status();
      if (first) {
        current = std::move(star);
        first = false;
      } else {
        current = HashJoin(current, star, &result.stats, ctx);
      }
      if (current.num_rows() == 0 && current.num_cols() > 0) {
        return empty_result();
      }
    }
  }

  // --- Filters, projection, DISTINCT, LIMIT. ---
  {
    AXON_SPAN("query.finalize");
    for (const auto& [var, id] : filters) {
      current = FilterEquals(current, var, id, &result.stats);
    }
    for (const std::string& v : proj) {
      if (current.ColumnIndex(v) < 0) {
        return Status::Internal("executor produced no column for ?" + v);
      }
    }
    current = Project(current, proj);
    if (query.distinct) current = Distinct(current);
    if (query.limit.has_value()) current = Limit(current, *query.limit);
    result.table = std::move(current);
  }
  return result;
}

Result<std::string> Executor::Explain(const SelectQuery& query) const {
  std::string out;
  auto append = [&out](const std::string& line) {
    out += line;
    out += "\n";
  };

  if (!query.IsConjunctive()) {
    append(
        "extended query: OPTIONAL/UNION/FILTER/aggregation composed over "
        "conjunctive leaves");
    if (query.patterns.empty()) {
      append("no top-level BGP (leaves live inside UNION/OPTIONAL groups)");
      append("config: " + options_.ConfigName());
      return out;
    }
    SelectQuery leaf;
    leaf.patterns = query.patterns;
    leaf.filters = query.filters;
    auto rest = Explain(leaf);
    if (!rest.ok()) return rest;
    out += rest.value();
    return out;
  }

  AXON_ASSIGN_OR_RETURN(QueryGraph qg,
                        BuildQueryGraph(query, *dict_, cs_->properties()));
  if (qg.impossible) {
    append(
        "plan: EMPTY (a bound term or predicate does not occur in the data)");
    return out;
  }
  append("query graph: " + std::to_string(qg.nodes.size()) + " nodes, " +
         std::to_string(qg.ecss.size()) + " query ECSs, " +
         std::to_string(qg.chains.size()) + " chains");
  for (size_t qi = 0; qi < qg.ecss.size(); ++qi) {
    const QueryEcs& q = qg.ecss[qi];
    append("  Q" + std::to_string(qi) + ": (" +
           qg.nodes[q.subject_node].col + " -> " +
           qg.nodes[q.object_node].col + "), " +
           std::to_string(q.link_patterns.size()) + " link pattern(s)");
  }

  std::vector<ChainMatch> matches;
  for (const auto& chain : qg.chains) {
    ChainMatch m = matcher_.MatchChain(qg, chain);
    if (m.Empty()) {
      append("plan: EMPTY (chain has an unmatched query ECS — answered from "
             "the ECS graph without touching the data)");
      return out;
    }
    matches.push_back(std::move(m));
  }
  QueryPlan plan = planner_.Plan(qg, matches, options_.use_planner);
  for (size_t ci = 0; ci < plan.chains.size(); ++ci) {
    const ChainPlan& cp = plan.chains[ci];
    std::string line = "chain " + std::to_string(ci) + " (cost " +
                       FormatDouble(cp.cost, 4) + "):";
    for (size_t pos = 0; pos < cp.chain.size(); ++pos) {
      line += " Q" + std::to_string(cp.chain[pos]) + "[" +
              std::to_string(cp.matches.position_matches[pos].size()) +
              " ECS match(es), cost " +
              FormatDouble(cp.position_cost[pos], 4) + "]";
    }
    append(line);
  }

  std::vector<std::set<EcsId>> qecs_matches(qg.ecss.size());
  for (const ChainPlan& cp : plan.chains) {
    for (size_t pos = 0; pos < cp.chain.size(); ++pos) {
      qecs_matches[cp.chain[pos]].insert(
          cp.matches.position_matches[pos].begin(),
          cp.matches.position_matches[pos].end());
    }
  }
  ChainJoinPlan join_plan = ComputeChainJoinPlan(qg, qecs_matches, plan);
  if (!join_plan.sequence.empty()) {
    std::string line = "join order (";
    line += join_plan.used_dp ? "dp" : "greedy";
    line += ", total cost " + FormatDouble(join_plan.total_cost, 4) + "):";
    for (size_t i = 0; i < join_plan.sequence.size(); ++i) {
      line += " Q" + std::to_string(join_plan.sequence[i]) + " (est " +
              FormatDouble(join_plan.running_estimate[i], 4) + ")";
      if (i + 1 < join_plan.sequence.size()) line += " ->";
    }
    append(line);
  }

  for (size_t node = 0; node < qg.nodes.size(); ++node) {
    if (!qg.nodes[node].emits()) continue;
    std::vector<int> star = qg.StarPatterns(static_cast<int>(node));
    if (star.empty()) continue;
    std::vector<int> needed =
        NeededStarPatterns(qg, static_cast<int>(node), query);
    append("star retrieval for ?" + qg.nodes[node].col + ": " +
           std::to_string(needed.size()) + " of " +
           std::to_string(star.size()) + " pattern(s)" +
           (StarMergeApplicable(qg, needed.empty() ? star : needed,
                                qg.nodes[node].col)
                ? " [merge scan]"
                : " [hash pipeline]"));
  }
  append("config: " + options_.ConfigName());
  return out;
}

}  // namespace axon
