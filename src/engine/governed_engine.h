// GovernedEngine — the graceful-degradation composition layer.
//
// Wraps a primary QueryEngine (normally axonDB) behind a ResourceGovernor
// and optionally backs it with a baseline fallback engine:
//
//   caller -> Admit() gate -> primary under QueryContext
//                                |  ResourceExhausted / Internal
//                                v
//                       seeded backoff -> fallback under a fresh context
//
// Admission keeps at most `admission.max_concurrent` queries running;
// excess callers queue FIFO and are shed with Status::Unavailable (plus a
// retry-after hint) when the queue is full or their wait deadline passes.
// Every admitted query runs with a deadline + memory budget + optional
// cancel token; when the primary is killed by its budget (or fails
// internally) and degradation is enabled, the query is retried on the
// fallback engine after a deterministic seeded backoff, and the result is
// marked with ExecStats::degraded_to_baseline so callers and benches can
// see which answers the baseline produced. Outcomes feed the governor's
// counters (bench "governor" section, governor.* metrics).

#ifndef AXON_ENGINE_GOVERNED_ENGINE_H_
#define AXON_ENGINE_GOVERNED_ENGINE_H_

#include <string>

#include "engine/query_engine.h"
#include "util/cancellation.h"
#include "util/resource_governor.h"

namespace axon {

struct GovernedOptions {
  /// Admission gate configuration (max_concurrent = 0 admits everything).
  GovernorOptions admission;
  /// Per-query wall-clock budget (ms); 0 = unlimited.
  uint64_t timeout_millis = 0;
  /// Per-query memory budget for the primary engine; 0 = unlimited.
  uint64_t memory_budget_bytes = 0;
  /// Retry budget-killed / internally-failed queries on the fallback.
  bool degrade_to_baseline = false;
  /// Fallback attempts per query (each after a backoff).
  uint32_t max_degrade_attempts = 1;
  /// Base backoff before a fallback attempt; attempt k waits
  /// base << k plus deterministic seeded jitter.
  uint64_t degrade_backoff_millis = 1;
  /// Budget for fallback attempts; 0 = unlimited (the degraded path must
  /// be able to answer what the budgeted primary could not).
  uint64_t fallback_memory_budget_bytes = 0;
  /// Seed for the deterministic backoff jitter.
  uint64_t seed = 0;
};

class GovernedEngine : public QueryEngine {
 public:
  /// Both engines are borrowed and must outlive this object. `fallback`
  /// may be null (no degradation even if degrade_to_baseline is set).
  GovernedEngine(const QueryEngine* primary, const QueryEngine* fallback,
                 GovernedOptions options)
      : primary_(primary), fallback_(fallback), options_(options),
        governor_(options.admission) {}

  std::string name() const override {
    return "governed(" + primary_->name() + ")";
  }
  Result<QueryResult> Execute(const SelectQuery& query) const override;
  Result<QueryResult> Execute(const SelectQuery& query,
                              QueryContext* ctx) const override;
  uint64_t StorageBytes() const override { return primary_->StorageBytes(); }

  /// Execute with a caller-held cancel token: Cancel() stops the query at
  /// the next leaf-granularity check (even while it waits in the admission
  /// queue, the pre-run check sees it). `timeout_millis_override` != 0
  /// replaces options().timeout_millis for this call only — the HTTP
  /// front-end maps a per-request deadline through it.
  Result<QueryResult> ExecuteCancellable(
      const SelectQuery& query, const CancellationToken* cancel,
      uint64_t timeout_millis_override = 0) const;

  ResourceGovernor& governor() const { return governor_; }
  const GovernedOptions& options() const { return options_; }

 private:
  Result<QueryResult> Run(const SelectQuery& query,
                          const CancellationToken* cancel,
                          uint64_t timeout_millis_override = 0) const;

  const QueryEngine* primary_;
  const QueryEngine* fallback_;  // may be null
  GovernedOptions options_;
  mutable ResourceGovernor governor_;
};

}  // namespace axon

#endif  // AXON_ENGINE_GOVERNED_ENGINE_H_
