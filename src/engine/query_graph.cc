#include "engine/query_graph.h"

#include <algorithm>
#include <functional>
#include <map>

namespace axon {

namespace {

// Returns true if `needle` occurs as a contiguous subsequence of `hay`.
bool IsContiguousSubsequence(const std::vector<int>& needle,
                             const std::vector<int>& hay) {
  if (needle.size() > hay.size()) return false;
  for (size_t start = 0; start + needle.size() <= hay.size(); ++start) {
    if (std::equal(needle.begin(), needle.end(), hay.begin() + start)) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<int> QueryGraph::StarPatterns(int node) const {
  std::vector<int> out;
  for (int p : nodes[node].subject_patterns) {
    if (pattern_ecs[p] < 0) out.push_back(p);
  }
  return out;
}

Result<QueryGraph> BuildQueryGraph(const SelectQuery& query,
                                   const Dictionary& dict,
                                   const PropertyRegistry& properties) {
  QueryGraph g;
  if (query.patterns.empty()) {
    return Status::InvalidArgument("query has no triple patterns");
  }

  // --- Resolve patterns to ids and intern nodes. ---
  std::map<std::string, int> var_nodes;    // variable name -> node index
  std::map<TermId, int> bound_nodes;       // bound term id -> node index
  int next_bound = 0;

  auto intern_node = [&](const PatternTerm& t) -> int {
    if (t.is_variable) {
      auto it = var_nodes.find(t.var);
      if (it != var_nodes.end()) return it->second;
      QueryNode n;
      n.col = t.var;
      n.is_variable = true;
      int idx = static_cast<int>(g.nodes.size());
      g.nodes.push_back(std::move(n));
      var_nodes.emplace(t.var, idx);
      return idx;
    }
    auto id = dict.Lookup(t.term);
    if (!id.has_value()) {
      g.impossible = true;
      return -1;
    }
    auto it = bound_nodes.find(*id);
    if (it != bound_nodes.end()) return it->second;
    QueryNode n;
    n.col = "__b" + std::to_string(next_bound++);
    n.is_variable = false;
    n.bound_id = *id;
    int idx = static_cast<int>(g.nodes.size());
    g.nodes.push_back(std::move(n));
    bound_nodes.emplace(*id, idx);
    return idx;
  };

  for (const TriplePattern& tp : query.patterns) {
    IdPattern ip;
    int s_node = intern_node(tp.s);
    int o_node = intern_node(tp.o);
    if (g.impossible) return g;
    const QueryNode& sn = g.nodes[s_node];
    const QueryNode& on = g.nodes[o_node];
    if (sn.is_variable) {
      ip.s_var = sn.col;
    } else {
      ip.s = sn.bound_id;
      ip.s_var = sn.col;  // scans still emit the (constant) column
    }
    if (on.is_variable) {
      ip.o_var = on.col;
    } else {
      ip.o = on.bound_id;
      ip.o_var = on.col;
    }
    if (tp.p.is_variable) {
      ip.p_var = tp.p.var;
    } else {
      auto pid = dict.Lookup(tp.p.term);
      if (!pid.has_value()) {
        g.impossible = true;
        return g;
      }
      ip.p = *pid;
    }
    int pattern_idx = static_cast<int>(g.patterns.size());
    g.patterns.push_back(std::move(ip));
    g.pattern_subject_.push_back(s_node);
    g.pattern_object_.push_back(o_node);
    g.nodes[s_node].subject_patterns.push_back(pattern_idx);
  }

  // --- Query CS bitmaps (bound predicates only). A bound predicate that is
  // never used as a predicate in the data means no solutions. ---
  for (QueryNode& n : g.nodes) n.star_bitmap = Bitmap(properties.size());
  for (size_t i = 0; i < g.patterns.size(); ++i) {
    const IdPattern& ip = g.patterns[i];
    if (ip.p_bound()) {
      auto ord = properties.OrdinalOf(ip.p);
      if (!ord.has_value()) {
        g.impossible = true;
        return g;
      }
      g.nodes[g.pattern_subject_[i]].star_bitmap.Set(ord->value());
    }
  }

  // --- Query ECSs: patterns whose object node emits properties are chain
  // edges; dedupe per (subject node, object node) pair. ---
  g.pattern_ecs.assign(g.patterns.size(), -1);
  std::map<std::pair<int, int>, int> ecs_of_pair;
  for (size_t i = 0; i < g.patterns.size(); ++i) {
    int s_node = g.pattern_subject_[i];
    int o_node = g.pattern_object_[i];
    if (!g.nodes[o_node].emits()) continue;  // star pattern
    if (s_node == o_node) continue;          // self-loop: keep as star
    auto key = std::make_pair(s_node, o_node);
    auto it = ecs_of_pair.find(key);
    int ecs_idx;
    if (it == ecs_of_pair.end()) {
      ecs_idx = static_cast<int>(g.ecss.size());
      QueryEcs qe;
      qe.subject_node = s_node;
      qe.object_node = o_node;
      g.ecss.push_back(std::move(qe));
      ecs_of_pair.emplace(key, ecs_idx);
    } else {
      ecs_idx = it->second;
    }
    g.ecss[ecs_idx].link_patterns.push_back(static_cast<int>(i));
    g.pattern_ecs[i] = ecs_idx;
  }

  // --- Query-ECS adjacency. ---
  g.links.assign(g.ecss.size(), {});
  for (size_t i = 0; i < g.ecss.size(); ++i) {
    for (size_t j = 0; j < g.ecss.size(); ++j) {
      if (i == j) continue;
      if (g.ecss[i].object_node == g.ecss[j].subject_node) {
        g.links[i].push_back(static_cast<int>(j));
      }
    }
  }

  // --- Chains: maximal simple paths over the adjacency. ---
  std::vector<bool> has_pred(g.ecss.size(), false);
  for (const auto& succ : g.links) {
    for (int j : succ) has_pred[j] = true;
  }
  std::vector<std::vector<int>> chains;
  // DFS enumerating maximal simple paths from each start.
  std::function<void(std::vector<int>&)> extend = [&](std::vector<int>& path) {
    bool extended = false;
    for (int next : g.links[path.back()]) {
      if (std::find(path.begin(), path.end(), next) != path.end()) continue;
      path.push_back(next);
      extend(path);
      path.pop_back();
      extended = true;
    }
    if (!extended) chains.push_back(path);
  };
  for (size_t i = 0; i < g.ecss.size(); ++i) {
    if (!has_pred[i]) {
      std::vector<int> path = {static_cast<int>(i)};
      extend(path);
    }
  }
  // Cycle components have no predecessor-free entry; start one chain per
  // still-uncovered ECS.
  std::vector<bool> covered(g.ecss.size(), false);
  for (const auto& c : chains) {
    for (int e : c) covered[e] = true;
  }
  for (size_t i = 0; i < g.ecss.size(); ++i) {
    if (!covered[i]) {
      std::vector<int> path = {static_cast<int>(i)};
      extend(path);
      for (const auto& c : chains) {
        for (int e : c) covered[e] = true;
      }
    }
  }
  // Remove fully contained chains (single nested loop, Sec. IV.A).
  for (size_t i = 0; i < chains.size(); ++i) {
    bool contained = false;
    for (size_t j = 0; j < chains.size() && !contained; ++j) {
      if (i == j) continue;
      if (chains[i].size() < chains[j].size() &&
          IsContiguousSubsequence(chains[i], chains[j])) {
        contained = true;
      }
    }
    if (!contained) g.chains.push_back(chains[i]);
  }
  // Dedupe identical chains.
  std::sort(g.chains.begin(), g.chains.end());
  g.chains.erase(std::unique(g.chains.begin(), g.chains.end()),
                 g.chains.end());
  return g;
}

}  // namespace axon
