// Composition evaluator for the extended (non-conjunctive) SPARQL surface.
//
// The index structures of the paper — CS/ECS decomposition, star and chain
// retrieval — evaluate exactly conjunctive BGPs. Everything above that
// (OPTIONAL, UNION, general FILTER expressions, GROUP BY/COUNT, ORDER BY,
// OFFSET) composes over conjunctive *leaves*: each engine plugs its native
// BGP evaluator in as a callback, and this layer assembles leaf results
// with the engine-agnostic operators of src/exec/operators.h. All seven
// engine configurations therefore share one, well-tested composition
// semantics, and cross-engine result agreement on the extended surface
// reduces to agreement on conjunctive fragments — the property the
// differential suites already pin down.
//
// Semantics notes (mirrored by the independent naive evaluator in
// tests/naive_eval.h):
//  * A group's FILTERs scope over that group only; filters inside an
//    OPTIONAL see the optional group's bindings, not the outer row.
//  * Unbound is represented as kInvalidId in BindingTable cells.
//  * Zero-column (all-bound) groups collapse to at most one empty row.

#ifndef AXON_ENGINE_EXTENDED_EVAL_H_
#define AXON_ENGINE_EXTENDED_EVAL_H_

#include <functional>

#include "engine/query_engine.h"
#include "sparql/algebra.h"
#include "util/cancellation.h"

namespace axon {

/// Evaluates one conjunctive leaf BGP. The query passed to the callback
/// has only `patterns` and equality `filters` set (empty projection =
/// SELECT *, no DISTINCT/LIMIT); it must return all pattern variables.
using BgpEvalFn =
    std::function<Result<QueryResult>(const SelectQuery&, QueryContext*)>;

/// Evaluates a SelectQuery with extended constructs by composing
/// `eval_bgp` over its conjunctive leaves, then applying aggregation,
/// ORDER BY, projection, DISTINCT, OFFSET and LIMIT. `ctx` may be null.
/// Callers should route IsConjunctive() queries to their native path and
/// only fall into this for the extended surface.
Result<QueryResult> EvaluateExtended(const SelectQuery& query,
                                     const Dictionary& dict,
                                     const BgpEvalFn& eval_bgp,
                                     QueryContext* ctx);

}  // namespace axon

#endif  // AXON_ENGINE_EXTENDED_EVAL_H_
