// Mutable façade over the ECS-indexed store — the paper's announced future
// work ("As future work, we will address data updates in existing ECS
// indexes", Sec. VII).
//
// Updating a CS/ECS-partitioned store in place is structurally expensive: a
// single inserted triple can change its subject's characteristic set, which
// relocates *all* of that subject's triples across partitions and can mint
// or retire ECSs on both sides. UpdatableDatabase therefore implements the
// classic delta-store design (differential updates + periodic merge, as in
// column stores): writes accumulate in a write-optimized side buffer and
// the read-optimized ECS store is rebuilt — at a configurable delta
// threshold, or lazily at query time. Queries always observe every
// acknowledged write (snapshot-consistent read-your-writes).

#ifndef AXON_ENGINE_UPDATE_STORE_H_
#define AXON_ENGINE_UPDATE_STORE_H_

#include <memory>
#include <set>
#include <vector>

#include "engine/database.h"

namespace axon {

struct UpdateOptions {
  /// Rebuild the ECS store once the delta reaches this many pending
  /// operations. 0 = only rebuild lazily at query time.
  uint64_t compaction_threshold = 4096;

  /// Engine options used for every rebuild.
  EngineOptions engine;
};

class UpdatableDatabase {
 public:
  /// Starts from an initial dataset (may be empty).
  static Result<UpdatableDatabase> Create(const Dataset& initial,
                                          UpdateOptions options = {});

  /// Inserts one triple. Duplicate inserts are idempotent (RDF set
  /// semantics). Never fails on valid terms.
  Status Insert(const TermTriple& triple);

  /// Deletes one triple; deleting an absent triple is a no-op.
  Status Delete(const TermTriple& triple);

  /// Batch insert of parsed N-Triples text.
  Status InsertNTriples(std::string_view text);

  /// Number of pending (uncompacted) operations.
  uint64_t pending_ops() const { return pending_ops_; }

  /// Current triple count (base + delta effects).
  uint64_t num_triples() const { return live_.size(); }

  /// Forces a rebuild of the ECS store from the current state.
  Status Compact();

  /// Executes a query against the current state (compacts first if dirty).
  Result<QueryResult> ExecuteSparql(std::string_view text);
  Result<QueryResult> Execute(const SelectQuery& query);

  /// Read access to the underlying snapshot. Compacts first if dirty, so
  /// the returned database always reflects every acknowledged write.
  Result<const Database*> Snapshot();

  /// Renders results through the current dictionary.
  Result<std::vector<std::vector<std::string>>> Render(
      const BindingTable& table);

 private:
  UpdatableDatabase() = default;

  UpdateOptions options_;
  Dictionary dict_;                       // grows monotonically
  std::set<std::tuple<TermId, TermId, TermId>> live_;  // current triple set
  std::unique_ptr<Database> snapshot_;
  bool dirty_ = false;
  uint64_t pending_ops_ = 0;
};

}  // namespace axon

#endif  // AXON_ENGINE_UPDATE_STORE_H_
