// Mutable façade over the ECS-indexed store — the paper's announced future
// work ("As future work, we will address data updates in existing ECS
// indexes", Sec. VII).
//
// Updating a CS/ECS-partitioned store in place is structurally expensive: a
// single inserted triple can change its subject's characteristic set, which
// relocates *all* of that subject's triples across partitions and can mint
// or retire ECSs on both sides. UpdatableDatabase therefore implements the
// classic delta-store design (differential updates + periodic merge, as in
// column stores): writes accumulate in a write-optimized side buffer and
// the read-optimized ECS store is rebuilt — at a configurable delta
// threshold, or lazily at query time. Queries always observe every
// acknowledged write (snapshot-consistent read-your-writes).
//
// Durable mode (OpenDurable): the store is rooted at a path P — the base
// snapshot lives in the single binary db file P and the delta in the
// write-ahead log P+".wal". An Insert/Delete is acknowledged only after
// its record is appended to the WAL and fsynced; Compact() folds the
// delta into a new base with the crash-atomic write-temp + fsync + rename
// protocol and then resets the WAL. Killing the process at ANY point
// leaves P either the old or the new complete base, and replaying the WAL
// (idempotent set operations) reconverges — no acknowledged write is ever
// lost, which tests/chaos_test.cc proves under injected crashes.
//
// Thread safety: every method serializes on one internal annotated mutex
// (state lives behind a pImpl so the handle stays movable), so concurrent
// Insert/Delete/Compact/Execute calls from multiple threads are safe —
// including the WAL, which is externally synchronized by this lock
// (storage/wal.h). The pointer returned by Snapshot() is read-only shared
// state: it remains valid only until the next mutating call triggers a
// compaction, exactly as before — concurrent readers holding a snapshot
// must not race a writer (tests/concurrency_stress_test.cc runs readers
// against a quiescent store; serializing reads against updates is the
// caller's contract, Execute()/ExecuteSparql() do it internally).

#ifndef AXON_ENGINE_UPDATE_STORE_H_
#define AXON_ENGINE_UPDATE_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "engine/database.h"

namespace axon {

// Private state of UpdatableDatabase (defined in update_store.cc): one
// annotated Mutex plus the fields it guards.
struct UpdateStoreImpl;

struct UpdateOptions {
  /// Rebuild the ECS store once the delta reaches this many pending
  /// operations. 0 = only rebuild lazily at query time.
  uint64_t compaction_threshold = 4096;

  /// Engine options used for every rebuild.
  EngineOptions engine;

  /// Durable mode only: fsync the WAL before acknowledging each write
  /// (default). Turning it off batches syncs until the next Compact() —
  /// faster, but a crash may lose the unsynced suffix of the delta.
  bool sync_writes = true;
};

class UpdatableDatabase {
 public:
  /// Starts from an initial dataset (may be empty). In-memory: nothing is
  /// persisted until the caller saves a Snapshot() themselves.
  static Result<UpdatableDatabase> Create(const Dataset& initial,
                                          UpdateOptions options = {});

  /// Opens (or creates) a durable store rooted at `path`: recovers from
  /// any earlier crash — discards orphaned `path+".tmp"`, opens the base
  /// if present, replays the WAL, truncates a torn WAL tail — and arms
  /// write-ahead logging for all subsequent updates.
  static Result<UpdatableDatabase> OpenDurable(const std::string& path,
                                               UpdateOptions options = {});

  ~UpdatableDatabase();
  UpdatableDatabase(UpdatableDatabase&&) noexcept;
  UpdatableDatabase& operator=(UpdatableDatabase&&) noexcept;

  /// Inserts one triple. Duplicate inserts are idempotent (RDF set
  /// semantics). Never fails on valid terms in memory mode; in durable
  /// mode a WAL failure returns non-OK and the write is NOT applied (and
  /// must not be considered acknowledged).
  Status Insert(const TermTriple& triple);

  /// Deletes one triple; deleting an absent triple is a no-op.
  Status Delete(const TermTriple& triple);

  /// Batch insert of parsed N-Triples text.
  Status InsertNTriples(std::string_view text);

  /// Number of pending (uncompacted) operations.
  uint64_t pending_ops() const;

  /// Current triple count (base + delta effects).
  uint64_t num_triples() const;

  /// True when backed by a base file + WAL.
  bool durable() const;

  /// Forces a rebuild of the ECS store from the current state. Durable
  /// mode: also persists the new base crash-atomically and resets the
  /// WAL; on persist failure the store stays dirty (and fully queryable)
  /// and the WAL keeps the delta, so no acknowledged write is at risk.
  Status Compact();

  /// Executes a query against the current state (compacts first if dirty).
  Result<QueryResult> ExecuteSparql(std::string_view text);
  Result<QueryResult> Execute(const SelectQuery& query);

  /// Read access to the underlying snapshot. Compacts first if dirty, so
  /// the returned database always reflects every acknowledged write.
  Result<const Database*> Snapshot();

  /// Renders results through the current dictionary.
  Result<std::vector<std::vector<std::string>>> Render(
      const BindingTable& table);

  /// Canonical N-Triples lines (no trailing newline) of the current live
  /// set, sorted — the state fingerprint the chaos harness compares across
  /// crash/reopen cycles.
  Result<std::vector<std::string>> ExportLines() const;

 private:
  UpdatableDatabase();

  std::unique_ptr<UpdateStoreImpl> impl_;
};

}  // namespace axon

#endif  // AXON_ENGINE_UPDATE_STORE_H_
