// Common interface implemented by axonDB and the three baseline engines.
//
// All engines load the same id-encoded Dataset (same dictionary, same term
// ids), execute the same SelectQuery algebra and return BindingTables, so
// tests can assert cross-engine result equality and benches can time and
// size them identically.

#ifndef AXON_ENGINE_QUERY_ENGINE_H_
#define AXON_ENGINE_QUERY_ENGINE_H_

#include <memory>
#include <string>

#include "exec/bindings.h"
#include "exec/operators.h"
#include "rdf/dictionary.h"
#include "rdf/ntriples.h"
#include "rdf/triple.h"
#include "sparql/algebra.h"
#include "util/status.h"

namespace axon {

class QueryContext;

/// An id-encoded dataset: the dictionary plus the raw triples. This is the
/// common input to every engine's build phase.
struct Dataset {
  Dictionary dict;
  TripleVec triples;

  /// Interns a term-level triple.
  void Add(const TermTriple& t) {
    triples.push_back(
        Triple{dict.Intern(t.s), dict.Intern(t.p), dict.Intern(t.o)});
  }

  /// Parses N-Triples text into the dataset.
  Status AddNTriples(std::string_view text) {
    return ParseNTriples(text, [this](TermTriple t) { Add(t); });
  }
};

struct QueryResult {
  BindingTable table;
  ExecStats stats;
};

class QueryEngine {
 public:
  virtual ~QueryEngine() = default;

  /// Engine display name ("axonDB+", "SixPerm(RDF-3x)", ...).
  virtual std::string name() const = 0;

  /// Executes a conjunctive SELECT query.
  virtual Result<QueryResult> Execute(const SelectQuery& query) const = 0;

  /// Executes under a caller-owned QueryContext (deadline + memory budget
  /// + cancellation token). Engines that support cooperative stop override
  /// this; the default ignores the context. Every engine in this repo
  /// overrides it — the default exists so external QueryEngine
  /// implementations stay source-compatible.
  virtual Result<QueryResult> Execute(const SelectQuery& query,
                                      QueryContext* ctx) const {
    (void)ctx;
    return Execute(query);
  }

  /// Serialized on-disk footprint of the engine's storage + indexes
  /// (dictionary excluded — it is shared across engines).
  virtual uint64_t StorageBytes() const = 0;
};

}  // namespace axon

#endif  // AXON_ENGINE_QUERY_ENGINE_H_
