// Sharded ECS store — a single-process simulation of the paper's second
// piece of announced future work: "study the application of the approach
// in a distributed setting" (Sec. VII).
//
// Architecture (SemStore/S2RDF-style coordinator + storage shards):
//
//  * Triples are hash-partitioned by SUBJECT across K shards, so every
//    node's entire star lives on one shard and characteristic sets are
//    exact per shard.
//  * CS/ECS extraction runs as a map-exchange: local property sets are
//    merged into a GLOBAL CS/ECS id space (simulated here by running the
//    global extraction at the coordinator), and every shard indexes its
//    triple subset under the global ids — each shard holds its slice of
//    every CS partition (SPO side) and ECS partition (PSO side).
//  * The coordinator keeps only metadata: the dictionary, the global
//    CS/ECS schema, the ECS graph/statistics and the planner. Query
//    matching and planning are coordinator-side and identical to the
//    single-node engine; evaluation scatters the matched range scans to
//    the shards and gathers/joins the partial bindings.
//
// Because the scatter/gather handles the object-subject joins at the
// coordinator, results are exactly those of the single-node engine — the
// integration tests assert multiset equality per query.

#ifndef AXON_ENGINE_SHARDED_DATABASE_H_
#define AXON_ENGINE_SHARDED_DATABASE_H_

#include <memory>
#include <vector>

#include "engine/database.h"

namespace axon {

struct ShardedOptions {
  uint32_t num_shards = 4;
  /// Engine configuration used by the coordinator's matcher/planner and by
  /// the shard layouts (hierarchy pre-order applies per shard). Its
  /// `parallelism` knob also controls the coordinator's scatter pool:
  /// shard builds and per-shard scan tasks run on it, and partials are
  /// gathered in shard-index order so results are identical to the serial
  /// scatter loop.
  EngineOptions engine;
};

class ShardedDatabase : public QueryEngine {
 public:
  /// Builds the coordinator metadata and the K shard indexes.
  static Result<ShardedDatabase> Build(const Dataset& dataset,
                                       ShardedOptions options = {});

  std::string name() const override {
    return "axonDB-sharded(" + std::to_string(shards_.size()) + ")";
  }
  Result<QueryResult> Execute(const SelectQuery& query) const override;
  Result<QueryResult> Execute(const SelectQuery& query,
                              QueryContext* ctx) const override;

  /// Sum of the shards' storage (the coordinator's metadata is excluded,
  /// mirroring a deployment where it holds no triples).
  uint64_t StorageBytes() const override;

  size_t num_shards() const { return shards_.size(); }

  /// Triples resident on each shard (diagnostics / balance tests).
  std::vector<uint64_t> ShardTripleCounts() const;

  const Dictionary& dict() const { return dict_; }
  const EcsGraph& ecs_graph() const { return graph_; }

 private:
  ShardedDatabase() = default;

  // One storage shard: its slice of the CS-partitioned SPO table and the
  // ECS-partitioned PSO table, indexed under the GLOBAL CS/ECS ids.
  struct Shard {
    CsIndex cs;
    EcsIndex ecs;
  };

  // Execute() minus the fault boundary (QueryStopError / bad_alloc ->
  // Status translation happens in Execute).
  Result<QueryResult> ExecuteImpl(const SelectQuery& query,
                                  QueryContext* ctx) const;

  // eval(Q_i) scattered over the shards (one pool task per shard) and
  // gathered in shard-index order.
  BindingTable EvalQueryEcsScattered(const QueryGraph& qg, int query_ecs,
                                     const std::vector<EcsId>& matches,
                                     ExecStats* stats,
                                     QueryContext* ctx) const;

  // Star retrieval scattered over the shards, gathered in shard order.
  BindingTable EvalStarScattered(const QueryGraph& qg, int node,
                                 const std::vector<CsId>& allowed_cs,
                                 const std::vector<int>& star_patterns,
                                 ExecStats* stats, QueryContext* ctx) const;

  Dictionary dict_;
  // Coordinator metadata: global schema, graph, hierarchy order and
  // statistics. The CS/ECS indexes here carry ranges and per-ECS property
  // lists for matching and costing; their triple tables are global and
  // used only for sizes, never scanned.
  CsIndex cs_meta_;
  EcsIndex ecs_meta_;
  EcsGraph graph_;
  EcsStatistics stats_;
  EngineOptions options_;
  // Scatter pool behind options_.parallelism (null = serial scatter).
  std::shared_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace axon

#endif  // AXON_ENGINE_SHARDED_DATABASE_H_
