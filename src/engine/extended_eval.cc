#include "engine/extended_eval.h"

#include <algorithm>
#include <utility>

#include "exec/operators.h"

namespace axon {

namespace {

/// The single empty row — identity of the natural join; the base for
/// groups that start with OPTIONAL instead of a BGP.
BindingTable UnitTable() {
  BindingTable t;
  t.SetNullaryRow(true);
  return t;
}

Result<BindingTable> EvalGroup(const GroupPattern& g, const Dictionary& dict,
                               const BgpEvalFn& eval_bgp, QueryContext* ctx,
                               ExecStats* stats);

Result<BindingTable> EvalUnion(const UnionBlock& u, const Dictionary& dict,
                               const BgpEvalFn& eval_bgp, QueryContext* ctx,
                               ExecStats* stats) {
  BindingTable acc;
  bool first = true;
  for (const GroupPattern& branch : u.branches) {
    auto t = EvalGroup(branch, dict, eval_bgp, ctx, stats);
    if (!t.ok()) return t;
    if (first) {
      acc = std::move(t).ValueOrDie();
      first = false;
    } else {
      acc = UnionAll(acc, t.value(), stats, ctx);
    }
  }
  return acc;
}

Result<BindingTable> EvalGroup(const GroupPattern& g, const Dictionary& dict,
                               const BgpEvalFn& eval_bgp, QueryContext* ctx,
                               ExecStats* stats) {
  BindingTable base;
  bool have = false;
  std::vector<EqualityFilter> deferred_eq;
  if (!g.patterns.empty()) {
    SelectQuery leaf;
    leaf.patterns = g.patterns;
    // Equality filters on leaf variables push into the native evaluator
    // (where the indexes turn them into bound-object retrieval); filters
    // on variables bound elsewhere in the group apply after composition.
    const std::vector<std::string> leaf_vars = leaf.Variables();
    for (const EqualityFilter& f : g.eq_filters) {
      if (std::find(leaf_vars.begin(), leaf_vars.end(), f.var) !=
          leaf_vars.end()) {
        leaf.filters.push_back(f);
      } else {
        deferred_eq.push_back(f);
      }
    }
    auto r = eval_bgp(leaf, ctx);
    if (!r.ok()) return r.status();
    stats->Accumulate(r.value().stats);
    base = std::move(r.value().table);
    have = true;
  } else {
    deferred_eq = g.eq_filters;
  }
  for (const UnionBlock& u : g.unions) {
    auto ut = EvalUnion(u, dict, eval_bgp, ctx, stats);
    if (!ut.ok()) return ut;
    if (!have) {
      base = std::move(ut).ValueOrDie();
      have = true;
    } else {
      base = CompatJoin(base, ut.value(), stats, ctx);
    }
  }
  for (const GroupPattern& opt : g.optionals) {
    auto ot = EvalGroup(opt, dict, eval_bgp, ctx, stats);
    if (!ot.ok()) return ot;
    if (!have) {
      base = UnitTable();
      have = true;
    }
    base = LeftOuterJoin(base, ot.value(), stats, ctx);
  }
  if (!have) base = UnitTable();
  for (const EqualityFilter& f : deferred_eq) {
    auto id = dict.Lookup(f.value);
    if (!id.has_value()) {
      base = BindingTable(base.vars());  // unknown term: nothing matches
    } else {
      base = FilterEquals(base, f.var, *id, stats);
    }
  }
  for (const FilterExpr& f : g.filters) {
    base = FilterByExpr(base, f, dict, stats, ctx);
  }
  return base;
}

/// Project() asserts on missing columns; after full group evaluation all
/// projected variables have columns, but keep release builds safe against
/// degenerate inputs by substituting an empty result.
BindingTable SafeProject(const BindingTable& in,
                         const std::vector<std::string>& vars) {
  for (const std::string& v : vars) {
    if (in.ColumnIndex(v) < 0) return BindingTable(vars);
  }
  return Project(in, vars);
}

}  // namespace

Result<QueryResult> EvaluateExtended(const SelectQuery& query,
                                     const Dictionary& dict,
                                     const BgpEvalFn& eval_bgp,
                                     QueryContext* ctx) {
  QueryResult result;
  GroupPattern top;
  top.patterns = query.patterns;
  top.eq_filters = query.filters;
  top.filters = query.expr_filters;
  top.optionals = query.optionals;
  top.unions = query.unions;
  auto base = EvalGroup(top, dict, eval_bgp, ctx, &result.stats);
  if (!base.ok()) return base.status();
  BindingTable table = std::move(base).ValueOrDie();

  if (!query.aggregates.empty() || !query.group_by.empty()) {
    table = GroupCount(table, query.group_by, query.aggregates, &result.stats,
                       ctx);
  }
  if (!query.order_by.empty()) {
    table = OrderBy(table, query.order_by, dict, &result.stats, ctx);
  }
  const std::vector<std::string> proj = query.EffectiveProjection();
  if (proj != table.vars()) table = SafeProject(table, proj);
  if (query.distinct) table = Distinct(table);
  if (query.offset > 0) table = Offset(table, query.offset);
  if (query.limit.has_value()) table = Limit(table, *query.limit);
  result.stats.NotePeakBytes(table.ByteSize());
  result.table = std::move(table);
  return result;
}

}  // namespace axon
