#include "engine/ecs_matcher.h"

#include <functional>

#include "util/trace.h"

namespace axon {

bool EcsMatcher::Matches(const QueryGraph& qg, int query_ecs,
                         EcsId data_ecs) const {
  AXON_COUNTER_ADD("matcher.ecs_tried", 1);
  bool ok = MatchesUncounted(qg, query_ecs, data_ecs);
  if (!ok) AXON_COUNTER_ADD("matcher.ecs_pruned", 1);
  return ok;
}

bool EcsMatcher::MatchesUncounted(const QueryGraph& qg, int query_ecs,
                                  EcsId data_ecs) const {
  const QueryEcs& q = qg.ecss[query_ecs];
  const ExtendedCharacteristicSet& e = ecs_->set(data_ecs);
  const QueryNode& snode = qg.nodes[q.subject_node];
  const QueryNode& onode = qg.nodes[q.object_node];

  // Conditions (5) and (6): query CS bitmaps are subsets of the data CS
  // bitmaps, checked with bitwise AND.
  if (!snode.star_bitmap.IsSubsetOf(cs_->set(e.subject_cs).properties)) {
    return false;
  }
  if (!onode.star_bitmap.IsSubsetOf(cs_->set(e.object_cs).properties)) {
    return false;
  }

  // Condition (7): every bound link predicate occurs in the ECS's triples.
  // Unbound link predicates match any property in the region (Sec. IV.B).
  for (int pi : q.link_patterns) {
    const IdPattern& p = qg.patterns[pi];
    if (p.p_bound() && !ecs_->HasProperty(data_ecs, p.p)) return false;
  }

  // Bound chain nodes: the data ECS's CS on that side must be the bound
  // term's own CS.
  if (!snode.is_variable) {
    auto cs = cs_->CsOfSubject(snode.bound_id);
    if (!cs.has_value() || *cs != e.subject_cs) return false;
  }
  if (!onode.is_variable) {
    auto cs = cs_->CsOfSubject(onode.bound_id);
    if (!cs.has_value() || *cs != e.object_cs) return false;
  }
  return true;
}

std::vector<EcsId> EcsMatcher::MatchAll(const QueryGraph& qg,
                                        int query_ecs) const {
  std::vector<EcsId> out;
  for (uint32_t i = 0; i < ecs_->num_sets(); ++i) {
    EcsId e(i);
    if (Matches(qg, query_ecs, e)) out.push_back(e);
  }
  return out;
}

ChainMatch EcsMatcher::MatchChain(const QueryGraph& qg,
                                  const std::vector<int>& chain) const {
  AXON_SPAN("matcher.match_chain");
  AXON_HISTOGRAM("matcher.chain_length", chain.size());
  ChainMatch result;
  size_t k = chain.size();
  result.position_matches.assign(k, {});
  if (k == 0) return result;

  size_t n = ecs_->num_sets();
  // Memo: 0 = unknown, 1 = fails, 2 = succeeds (suffix from this position
  // can be completed through the ECS graph).
  std::vector<uint8_t> memo(n * k, 0);

  // Depth-first with suffix memoization: TryMatch(e, i) answers "does data
  // ECS e evaluate chain position i with a graph path completing the rest
  // of the chain?".
  std::function<bool(EcsId, size_t)> try_match = [&](EcsId e,
                                                     size_t i) -> bool {
    uint8_t& m = memo[e.value() * k + i];
    if (m != 0) return m == 2;
    if (!Matches(qg, chain[i], e)) {
      m = 1;
      return false;
    }
    if (i + 1 == k) {
      m = 2;
      return true;
    }
    bool ok = false;
    for (EcsId child : graph_->Successors(e)) {
      if (try_match(child, i + 1)) ok = true;  // no break: fill memo densely
    }
    m = ok ? 2 : 1;
    return ok;
  };

  // Algorithm 3: every ECS in the graph is a candidate starting point for
  // position 0; deeper positions are discovered through graph edges, and a
  // second sweep collects per-position survivors from the memo.
  for (uint32_t i0 = 0; i0 < n; ++i0) try_match(EcsId(i0), 0);

  // A data ECS is a valid match for position i>0 only if it both completes
  // the suffix (memo == 2) and is reachable from a valid match at position
  // i-1 via a graph edge.
  std::vector<bool> reachable(n, false);
  for (uint32_t i0 = 0; i0 < n; ++i0) {
    EcsId e(i0);
    if (memo[e.value() * k + 0] == 2) {
      result.position_matches[0].push_back(e);
      reachable[e.value()] = true;
    }
  }
  for (size_t i = 1; i < k; ++i) {
    std::vector<bool> next(n, false);
    for (uint32_t e0 = 0; e0 < n; ++e0) {
      EcsId e(e0);
      if (!reachable[e0]) continue;
      for (EcsId child : graph_->Successors(e)) {
        if (memo[child.value() * k + i] == 2) next[child.value()] = true;
      }
    }
    for (uint32_t e0 = 0; e0 < n; ++e0) {
      if (next[e0]) result.position_matches[i].push_back(EcsId(e0));
    }
    reachable = std::move(next);
  }
  return result;
}

}  // namespace axon
