#include "engine/governed_engine.h"

#include <chrono>
#include <thread>

#include "util/hash.h"
#include "util/random.h"
#include "util/trace.h"

namespace axon {

namespace {

// True when `status` is worth retrying on the fallback engine: the primary
// ran out of its budget (the intended degradation trigger) or failed
// internally (e.g. an injected fault). Deadline and cancel stops are NOT
// degradable — the caller's constraint applies to the fallback too, and it
// has already been spent.
bool Degradable(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted ||
         status.code() == StatusCode::kInternal;
}

}  // namespace

Result<QueryResult> GovernedEngine::Execute(const SelectQuery& query) const {
  return Run(query, nullptr);
}

Result<QueryResult> GovernedEngine::Execute(const SelectQuery& query,
                                            QueryContext* ctx) const {
  // An external context carries its own deadline/budget; honor its cancel
  // token and let the admission gate + degradation still apply.
  return Run(query, ctx != nullptr ? ctx->cancel_token() : nullptr);
}

Result<QueryResult> GovernedEngine::ExecuteCancellable(
    const SelectQuery& query, const CancellationToken* cancel,
    uint64_t timeout_millis_override) const {
  return Run(query, cancel, timeout_millis_override);
}

Result<QueryResult> GovernedEngine::Run(
    const SelectQuery& query, const CancellationToken* cancel,
    uint64_t timeout_millis_override) const {
  AXON_SPAN("query.execute_governed");
  const uint64_t timeout_millis = timeout_millis_override != 0
                                      ? timeout_millis_override
                                      : options_.timeout_millis;
  Status admitted = governor_.Admit();
  if (!admitted.ok()) return admitted;  // shed: no slot held

  struct SlotGuard {
    ResourceGovernor* g;
    ~SlotGuard() { g->Release(); }
  } guard{&governor_};

  // A query cancelled while it waited in the admission queue stops here,
  // before any scan work.
  if (cancel != nullptr && cancel->cancelled()) {
    governor_.RecordOutcome(QueryOutcome::kCancelled);
    return Status::Cancelled("query cancelled by caller");
  }

  QueryContext ctx(timeout_millis, options_.memory_budget_bytes, cancel);
  Result<QueryResult> primary = primary_->Execute(query, &ctx);
  if (primary.ok()) {
    governor_.RecordOutcome(QueryOutcome::kCompleted);
    return primary;
  }

  Status st = primary.status();
  if (fallback_ == nullptr || !options_.degrade_to_baseline ||
      !Degradable(st)) {
    governor_.RecordOutcome(ResourceGovernor::OutcomeOf(st));
    return st;
  }

  // Deterministic seeded backoff: attempt k waits base << k plus jitter
  // drawn from a PRNG keyed on (seed, query text length, attempt), so a
  // fixed seed reproduces the exact same schedule.
  for (uint32_t attempt = 0; attempt < options_.max_degrade_attempts;
       ++attempt) {
    if (options_.degrade_backoff_millis > 0) {
      Random rng(Mix64(options_.seed ^ (query.patterns.size() + 1)) +
                 attempt);
      uint64_t backoff = (options_.degrade_backoff_millis << attempt) +
                         rng.Uniform(options_.degrade_backoff_millis + 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    }
    if (cancel != nullptr && cancel->cancelled()) break;
    QueryContext fb_ctx(timeout_millis,
                        options_.fallback_memory_budget_bytes, cancel);
    Result<QueryResult> fb = fallback_->Execute(query, &fb_ctx);
    if (fb.ok()) {
      QueryResult out = std::move(fb).ValueOrDie();
      out.stats.degraded_to_baseline = 1;
      governor_.RecordOutcome(QueryOutcome::kDegraded);
      AXON_COUNTER_ADD("governor.degraded_results", 1);
      return out;
    }
    st = fb.status();
  }
  governor_.RecordOutcome(ResourceGovernor::OutcomeOf(st));
  return st;
}

}  // namespace axon
