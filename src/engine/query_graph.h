// ECS query graph extraction (paper Sec. IV.A).
//
// A parsed SELECT query is decomposed into:
//  * query nodes — each distinct subject/object position (variable or bound
//    term), with its query characteristic set: the bitmap of bound
//    predicates the node emits in the pattern (the paper's modified CS
//    definition that ranges over variables);
//  * query ECSs — one per (subject node, object node) pair connected by at
//    least one pattern whose object node itself emits properties (a chain
//    edge);
//  * star patterns — the remaining patterns, grouped under their subject
//    node;
//  * chains — maximal paths in the query-ECS adjacency (object node of one
//    query ECS = subject node of the next), with fully-contained chains
//    removed.

#ifndef AXON_ENGINE_QUERY_GRAPH_H_
#define AXON_ENGINE_QUERY_GRAPH_H_

#include <string>
#include <vector>

#include "cs/characteristic_set.h"
#include "exec/operators.h"
#include "rdf/dictionary.h"
#include "sparql/algebra.h"
#include "util/bitmap.h"

namespace axon {

struct QueryNode {
  /// Binding column name: the variable name, or a synthetic "__b<i>" column
  /// for bound nodes (constant-valued after scans filter on the bound id).
  std::string col;
  bool is_variable = false;
  TermId bound_id = kInvalidId;  // bound nodes only

  /// Bound predicates this node emits, as PropertyRegistry ordinals — the
  /// query CS bitmap S_c(s_q). Variable predicates contribute no bits.
  Bitmap star_bitmap;

  /// Indices into QueryGraph::patterns with this node as subject.
  std::vector<int> subject_patterns;

  /// True if the node emits at least one pattern (has a CS in the query).
  bool emits() const { return !subject_patterns.empty(); }
};

struct QueryEcs {
  int subject_node = -1;
  int object_node = -1;
  /// Chain-edge patterns: indices with s = subject_node, o = object_node.
  std::vector<int> link_patterns;
};

struct QueryGraph {
  /// Id-resolved patterns, parallel to the input query's pattern list.
  std::vector<IdPattern> patterns;
  std::vector<QueryNode> nodes;
  std::vector<QueryEcs> ecss;

  /// Query-ECS adjacency: links[i] = query ECSs j with
  /// ecss[i].object_node == ecss[j].subject_node.
  std::vector<std::vector<int>> links;

  /// Maximal chains (sequences of query-ECS indices); contained chains
  /// removed. Every query ECS appears in at least one chain.
  std::vector<std::vector<int>> chains;

  /// Pattern index -> owning query ECS (-1 for star patterns).
  std::vector<int> pattern_ecs;

  /// True when a bound term is absent from the dictionary — the query has
  /// provably no solutions.
  bool impossible = false;

  /// Node index of a pattern's subject/object.
  int SubjectNode(int pattern) const { return pattern_subject_[pattern]; }
  int ObjectNode(int pattern) const { return pattern_object_[pattern]; }

  /// Star patterns of `node`: subject patterns that are not chain edges.
  std::vector<int> StarPatterns(int node) const;

  // Every subject/object position maps to a node (predicate positions do
  // not create nodes).
  std::vector<int> pattern_subject_;
  std::vector<int> pattern_object_;
};

/// Builds the query graph. `properties` supplies the bitmap ordinal space;
/// bound predicates absent from it mark the query impossible.
Result<QueryGraph> BuildQueryGraph(const SelectQuery& query,
                                   const Dictionary& dict,
                                   const PropertyRegistry& properties);

}  // namespace axon

#endif  // AXON_ENGINE_QUERY_GRAPH_H_
