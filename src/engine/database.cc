#include "engine/database.h"

#include <algorithm>
#include <cstdio>

#include "cs/cs_extractor.h"
#include "ecs/ecs_extractor.h"
#include "storage/db_file.h"
#include "util/trace.h"

namespace axon {

Result<Database> Database::Build(const Dataset& dataset,
                                 EngineOptions options) {
  AXON_SPAN("load.build");
  Database db;
  db.options_ = options;
  db.dict_ = dataset.dict;  // engines share one dictionary; axonDB owns a
                            // copy so Save()/Open() round-trips standalone
  db.pool_ = MakePool(options.parallelism);
  ThreadPool* pool = db.pool_.get();

  // Loader's 4-wide rows, exact duplicates removed (set semantics of RDF).
  LoadTripleVec load;
  {
    AXON_SPAN("load.dedup_sort");
    TripleVec triples = dataset.triples;
    ParallelSort(pool, &triples, [](const Triple& a, const Triple& b) {
      return a.Key() < b.Key();
    });
    triples.erase(std::unique(triples.begin(), triples.end()), triples.end());
    load.reserve(triples.size());
    for (const Triple& t : triples) {
      load.push_back(LoadTriple{t.s, t.p, t.o, kNoCs});
    }
  }
  db.info_.num_triples = load.size();
  db.info_.num_terms = db.dict_.size();

  // (a) Characteristic sets — Algorithm 1 — and the CS index. The CS-index
  // build (B+-tree bulk loads over the finished extraction) is independent
  // of ECS extraction, so it runs as a pool task alongside it.
  CsExtraction cs = ExtractCharacteristicSets(std::move(load), pool);
  db.info_.num_properties = cs.properties.size();
  db.info_.num_cs = cs.sets.size();

  EcsExtraction ecs;
  {
    WaitGroup wg(pool);
    wg.Run([&db, &cs] { db.cs_index_ = CsIndex::Build(cs); });
    // (b) Extended characteristic sets — Algorithm 2 — on the calling
    // thread (it fans out its own subtasks on the same pool).
    ecs = ExtractExtendedCharacteristicSets(cs, pool);
    wg.Wait();
  }

  // Graph, statistics, hierarchy and the ECS index. Graph and statistics
  // are independent of the hierarchy chain (hierarchy → storage rank →
  // ECS-index bulk load), so they run as pool tasks beside it.
  {
    WaitGroup wg(pool);
    wg.Run([&db, &ecs] { db.graph_ = EcsGraph(ecs.links); });
    wg.Run([&db, &ecs] { db.stats_ = EcsStatistics::Build(ecs); });
    db.hierarchy_ = EcsHierarchy::Build(ecs.sets, cs.sets);
    std::vector<uint32_t> storage_rank;
    if (options.use_hierarchy) storage_rank = db.hierarchy_.StorageRank();
    db.ecs_index_ = EcsIndex::Build(ecs, storage_rank);
    wg.Wait();
  }
  db.info_.num_ecs = ecs.sets.size();
  db.info_.num_ecs_triples = ecs.triples.size();
  db.info_.num_ecs_edges = db.graph_.num_edges();

  if (options.use_paged_storage) {
    AXON_RETURN_NOT_OK(db.EnablePagedStorage({}, {}, /*borrow=*/false));
  }
  return db;
}

Status Database::EnablePagedStorage(std::string_view spo_pages,
                                    std::string_view pso_pages, bool borrow) {
  BufferOptions bopts;
  bopts.pool_bytes = options_.frame_pool_bytes;
  buffer_ = std::make_shared<BufferManager>(bopts);

  if (spo_pages.empty()) {
    paged_spo_ = std::make_shared<PagedTripleTable>(PagedTripleTable::Build(
        cs_index_.spo().rows(), options_.page_size_bytes));
  } else {
    AXON_ASSIGN_OR_RETURN(
        PagedTripleTable t,
        PagedTripleTable::FromSerialized(spo_pages, /*copy=*/!borrow));
    if (t.num_rows() != cs_index_.spo().size()) {
      return Status::Corruption("spo_pages row count does not match cs_meta");
    }
    paged_spo_ = std::make_shared<PagedTripleTable>(std::move(t));
  }
  paged_spo_->AttachBuffer(buffer_);
  cs_index_.AttachPagedSpo(paged_spo_.get());
  cs_index_.AttachSpo(TripleTable());  // drop the resident rows

  if (pso_pages.empty()) {
    paged_pso_ = std::make_shared<PagedTripleTable>(PagedTripleTable::Build(
        ecs_index_.pso().rows(), options_.page_size_bytes));
  } else {
    AXON_ASSIGN_OR_RETURN(
        PagedTripleTable t,
        PagedTripleTable::FromSerialized(pso_pages, /*copy=*/!borrow));
    if (t.num_rows() != ecs_index_.pso().size()) {
      return Status::Corruption("pso_pages row count does not match ecs_meta");
    }
    paged_pso_ = std::make_shared<PagedTripleTable>(std::move(t));
  }
  paged_pso_->AttachBuffer(buffer_);
  ecs_index_.AttachPagedPso(paged_pso_.get());
  ecs_index_.AttachPso(TripleTable());
  return Status::OK();
}

Status Database::Save(const std::string& path) const {
  DbFileWriter writer;
  AXON_RETURN_NOT_OK(writer.Open(path));
  std::string buf;
  AXON_RETURN_NOT_OK(dict_.Serialize(&buf));
  AXON_RETURN_NOT_OK(writer.AddSection("dict", buf));
  // Index metadata and the raw triple tables are separate sections: the
  // tables are fixed-width row images in 8-byte-aligned sections, so
  // OpenMapped() can serve them zero-copy from the mapping.
  buf.clear();
  cs_index_.SerializeMetaTo(&buf);
  AXON_RETURN_NOT_OK(writer.AddSection("cs_meta", buf));
  buf.clear();
  if (paged_spo_ != nullptr) {
    // Paged mode: the resident table is empty, so reconstruct the raw row
    // section by streaming a page-by-page decode. Files stay readable in
    // either mode; resident-mode files are byte-identical to before.
    TripleTable tmp;
    tmp.Reserve(paged_spo_->num_rows());
    AXON_RETURN_NOT_OK(paged_spo_->ForEachPage(
        [&tmp](std::span<const Triple> rows, uint64_t) {
          for (const Triple& t : rows) tmp.Append(t);
        }));
    tmp.SerializeRaw(&buf);
  } else {
    cs_index_.spo().SerializeRaw(&buf);
  }
  AXON_RETURN_NOT_OK(writer.AddSection("spo_rows", buf));
  if (paged_spo_ != nullptr) {
    AXON_RETURN_NOT_OK(writer.AddSection(
        "spo_pages", std::string(paged_spo_->serialized())));
  }
  buf.clear();
  ecs_index_.SerializeMetaTo(&buf);
  AXON_RETURN_NOT_OK(writer.AddSection("ecs_meta", buf));
  buf.clear();
  if (paged_pso_ != nullptr) {
    TripleTable tmp;
    tmp.Reserve(paged_pso_->num_rows());
    AXON_RETURN_NOT_OK(paged_pso_->ForEachPage(
        [&tmp](std::span<const Triple> rows, uint64_t) {
          for (const Triple& t : rows) tmp.Append(t);
        }));
    tmp.SerializeRaw(&buf);
  } else {
    ecs_index_.pso().SerializeRaw(&buf);
  }
  AXON_RETURN_NOT_OK(writer.AddSection("pso_rows", buf));
  if (paged_pso_ != nullptr) {
    AXON_RETURN_NOT_OK(writer.AddSection(
        "pso_pages", std::string(paged_pso_->serialized())));
  }
  buf.clear();
  graph_.SerializeTo(&buf);
  AXON_RETURN_NOT_OK(writer.AddSection("ecs_graph", buf));
  buf.clear();
  hierarchy_.SerializeTo(&buf);
  AXON_RETURN_NOT_OK(writer.AddSection("ecs_hierarchy", buf));
  buf.clear();
  stats_.SerializeTo(&buf);
  AXON_RETURN_NOT_OK(writer.AddSection("ecs_stats", buf));
  buf.clear();
  PutVarint64(&buf, info_.num_triples);
  PutVarint64(&buf, info_.num_terms);
  PutVarint64(&buf, info_.num_properties);
  PutVarint64(&buf, info_.num_cs);
  PutVarint64(&buf, info_.num_ecs);
  PutVarint64(&buf, info_.num_ecs_triples);
  PutVarint64(&buf, info_.num_ecs_edges);
  AXON_RETURN_NOT_OK(writer.AddSection("build_info", buf));
  return writer.Finish();
}

Status Database::SaveAtomic(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  Status st = Save(tmp);
  if (!st.ok()) {
    std::remove(tmp.c_str());  // best effort; recovery also reaps orphans
    return st;
  }
  return AtomicRename(tmp, path);
}

Result<Database> Database::Open(const std::string& path,
                                EngineOptions options) {
  DbFileReader reader;
  AXON_RETURN_NOT_OK(reader.Open(path));
  Database db;
  db.options_ = options;
  db.pool_ = MakePool(options.parallelism);

  AXON_ASSIGN_OR_RETURN(std::string_view dict_data,
                        reader.GetSection("dict"));
  AXON_ASSIGN_OR_RETURN(db.dict_, Dictionary::Deserialize(dict_data));

  size_t pos = 0;
  AXON_ASSIGN_OR_RETURN(std::string_view cs_data,
                        reader.GetSection("cs_meta"));
  AXON_ASSIGN_OR_RETURN(db.cs_index_, CsIndex::DeserializeMeta(cs_data, &pos));
  AXON_ASSIGN_OR_RETURN(std::string_view spo_data,
                        reader.GetSection("spo_rows"));
  AXON_ASSIGN_OR_RETURN(TripleTable spo, TripleTable::FromRawOwned(spo_data));
  db.cs_index_.AttachSpo(std::move(spo));

  pos = 0;
  AXON_ASSIGN_OR_RETURN(std::string_view ecs_data,
                        reader.GetSection("ecs_meta"));
  AXON_ASSIGN_OR_RETURN(db.ecs_index_,
                        EcsIndex::DeserializeMeta(ecs_data, &pos));
  AXON_ASSIGN_OR_RETURN(std::string_view pso_data,
                        reader.GetSection("pso_rows"));
  AXON_ASSIGN_OR_RETURN(TripleTable pso, TripleTable::FromRawOwned(pso_data));
  db.ecs_index_.AttachPso(std::move(pso));

  pos = 0;
  AXON_ASSIGN_OR_RETURN(std::string_view graph_data,
                        reader.GetSection("ecs_graph"));
  AXON_ASSIGN_OR_RETURN(db.graph_, EcsGraph::Deserialize(graph_data, &pos));

  pos = 0;
  AXON_ASSIGN_OR_RETURN(std::string_view hier_data,
                        reader.GetSection("ecs_hierarchy"));
  AXON_ASSIGN_OR_RETURN(db.hierarchy_,
                        EcsHierarchy::Deserialize(hier_data, &pos));

  pos = 0;
  AXON_ASSIGN_OR_RETURN(std::string_view stats_data,
                        reader.GetSection("ecs_stats"));
  AXON_ASSIGN_OR_RETURN(db.stats_,
                        EcsStatistics::Deserialize(stats_data, &pos));

  AXON_ASSIGN_OR_RETURN(std::string_view info_data,
                        reader.GetSection("build_info"));
  {
    const char* p = info_data.data();
    const char* limit = p + info_data.size();
    uint64_t* fields[] = {
        &db.info_.num_triples,     &db.info_.num_terms,
        &db.info_.num_properties,  &db.info_.num_cs,
        &db.info_.num_ecs,         &db.info_.num_ecs_triples,
        &db.info_.num_ecs_edges};
    for (uint64_t* f : fields) {
      p = GetVarint64(p, limit, f);
      if (p == nullptr) return Status::Corruption("build_info section");
    }
  }

  if (options.use_paged_storage) {
    // Adopt the file's page sections when present (copied: the reader's
    // mapping dies with this scope); older resident-only files fall back to
    // repacking the loaded rows.
    std::string_view spo_pages, pso_pages;
    Result<std::string_view> sp = reader.GetSection("spo_pages");
    if (sp.ok()) spo_pages = sp.value();
    Result<std::string_view> pp = reader.GetSection("pso_pages");
    if (pp.ok()) pso_pages = pp.value();
    AXON_RETURN_NOT_OK(
        db.EnablePagedStorage(spo_pages, pso_pages, /*borrow=*/false));
  }
  return db;
}

Result<Database> Database::OpenMapped(const std::string& path,
                                      EngineOptions options) {
  auto reader = std::make_shared<DbFileReader>();
  AXON_RETURN_NOT_OK(reader->Open(path));
  Database db;
  db.options_ = options;
  db.pool_ = MakePool(options.parallelism);

  AXON_ASSIGN_OR_RETURN(std::string_view dict_data,
                        reader->GetSection("dict"));
  AXON_ASSIGN_OR_RETURN(db.dict_, Dictionary::Deserialize(dict_data));

  size_t pos = 0;
  AXON_ASSIGN_OR_RETURN(std::string_view cs_data,
                        reader->GetSection("cs_meta"));
  AXON_ASSIGN_OR_RETURN(db.cs_index_, CsIndex::DeserializeMeta(cs_data, &pos));
  AXON_ASSIGN_OR_RETURN(std::string_view spo_data,
                        reader->GetSection("spo_rows"));
  AXON_ASSIGN_OR_RETURN(TripleTable spo, TripleTable::FromRaw(spo_data));
  db.cs_index_.AttachSpo(std::move(spo));

  pos = 0;
  AXON_ASSIGN_OR_RETURN(std::string_view ecs_data,
                        reader->GetSection("ecs_meta"));
  AXON_ASSIGN_OR_RETURN(db.ecs_index_,
                        EcsIndex::DeserializeMeta(ecs_data, &pos));
  AXON_ASSIGN_OR_RETURN(std::string_view pso_data,
                        reader->GetSection("pso_rows"));
  AXON_ASSIGN_OR_RETURN(TripleTable pso, TripleTable::FromRaw(pso_data));
  db.ecs_index_.AttachPso(std::move(pso));

  pos = 0;
  AXON_ASSIGN_OR_RETURN(std::string_view graph_data,
                        reader->GetSection("ecs_graph"));
  AXON_ASSIGN_OR_RETURN(db.graph_, EcsGraph::Deserialize(graph_data, &pos));

  pos = 0;
  AXON_ASSIGN_OR_RETURN(std::string_view hier_data,
                        reader->GetSection("ecs_hierarchy"));
  AXON_ASSIGN_OR_RETURN(db.hierarchy_,
                        EcsHierarchy::Deserialize(hier_data, &pos));

  pos = 0;
  AXON_ASSIGN_OR_RETURN(std::string_view stats_data,
                        reader->GetSection("ecs_stats"));
  AXON_ASSIGN_OR_RETURN(db.stats_,
                        EcsStatistics::Deserialize(stats_data, &pos));

  AXON_ASSIGN_OR_RETURN(std::string_view info_data,
                        reader->GetSection("build_info"));
  {
    const char* p = info_data.data();
    const char* limit = p + info_data.size();
    uint64_t* fields[] = {
        &db.info_.num_triples,     &db.info_.num_terms,
        &db.info_.num_properties,  &db.info_.num_cs,
        &db.info_.num_ecs,         &db.info_.num_ecs_triples,
        &db.info_.num_ecs_edges};
    for (uint64_t* f : fields) {
      p = GetVarint64(p, limit, f);
      if (p == nullptr) return Status::Corruption("build_info section");
    }
  }

  db.mapped_file_ = std::move(reader);
  if (options.use_paged_storage) {
    // Borrow the page bytes straight from the mapping (kept alive by
    // mapped_file_): compressed pages stay on disk, decoded frames are the
    // only per-table memory.
    std::string_view spo_pages, pso_pages;
    Result<std::string_view> sp = db.mapped_file_->GetSection("spo_pages");
    if (sp.ok()) spo_pages = sp.value();
    Result<std::string_view> pp = db.mapped_file_->GetSection("pso_pages");
    if (pp.ok()) pso_pages = pp.value();
    const bool borrow = !spo_pages.empty() || !pso_pages.empty();
    AXON_RETURN_NOT_OK(db.EnablePagedStorage(spo_pages, pso_pages, borrow));
  }
  return db;
}

Result<QueryResult> Database::Execute(const SelectQuery& query) const {
  return MakeExecutor().Execute(query);
}

Result<QueryResult> Database::Execute(const SelectQuery& query,
                                      QueryContext* ctx) const {
  return MakeExecutor().Execute(query, ctx);
}

Result<QueryResult> Database::ExecuteSparql(std::string_view text) const {
  AXON_ASSIGN_OR_RETURN(SelectQuery q, ParseSparql(text));
  return Execute(q);
}

uint64_t Database::StorageBytes() const {
  return cs_index_.ByteSize() + ecs_index_.ByteSize();
}

Status Database::ForEachTriple(
    const std::function<void(const Triple&)>& fn) const {
  if (paged_spo_ != nullptr) {
    return paged_spo_->ForEachPage(
        [&fn](std::span<const Triple> rows, uint64_t) {
          for (const Triple& t : rows) fn(t);
        });
  }
  for (const Triple& t : cs_index_.spo().rows()) fn(t);
  return Status::OK();
}

Result<std::string> Database::ExportNTriples() const {
  std::string out;
  Status term_st = Status::OK();
  Status walk = ForEachTriple([&](const Triple& t) {
    if (!term_st.ok()) return;
    Result<Term> s = dict_.GetTerm(t.s);
    Result<Term> p = dict_.GetTerm(t.p);
    Result<Term> o = dict_.GetTerm(t.o);
    if (!s.ok() || !p.ok() || !o.ok()) {
      term_st = !s.ok() ? s.status() : (!p.ok() ? p.status() : o.status());
      return;
    }
    out += WriteNTriplesLine(TermTriple{std::move(s).ValueOrDie(),
                                        std::move(p).ValueOrDie(),
                                        std::move(o).ValueOrDie()});
  });
  AXON_RETURN_NOT_OK(walk);
  AXON_RETURN_NOT_OK(term_st);
  return out;
}

Result<std::vector<std::vector<std::string>>> Database::Render(
    const BindingTable& table) const {
  std::vector<std::vector<std::string>> out;
  out.reserve(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<std::string> row;
    row.reserve(table.num_cols());
    for (size_t c = 0; c < table.num_cols(); ++c) {
      TermId id = table.at(r, c);
      if (id == kInvalidId) {
        row.push_back("");  // unbound (OPTIONAL-padded) cell
        continue;
      }
      if (IsValueId(id)) {
        // Aggregate count carried as a value-tagged id, not a dict term.
        row.push_back("\"" + std::to_string(ValueIdPayload(id)) +
                      "\"^^<http://www.w3.org/2001/XMLSchema#integer>");
        continue;
      }
      if (id.value() > dict_.size()) {
        return Status::Internal("binding with invalid term id");
      }
      row.push_back(dict_.GetCanonical(id));
    }
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace axon
