#include "engine/database.h"

#include <algorithm>
#include <cstdio>

#include "cs/cs_extractor.h"
#include "ecs/ecs_extractor.h"
#include "storage/db_file.h"
#include "util/trace.h"

namespace axon {

Result<Database> Database::Build(const Dataset& dataset,
                                 EngineOptions options) {
  AXON_SPAN("load.build");
  Database db;
  db.options_ = options;
  db.dict_ = dataset.dict;  // engines share one dictionary; axonDB owns a
                            // copy so Save()/Open() round-trips standalone
  db.pool_ = MakePool(options.parallelism);
  ThreadPool* pool = db.pool_.get();

  // Loader's 4-wide rows, exact duplicates removed (set semantics of RDF).
  LoadTripleVec load;
  {
    AXON_SPAN("load.dedup_sort");
    TripleVec triples = dataset.triples;
    ParallelSort(pool, &triples, [](const Triple& a, const Triple& b) {
      return a.Key() < b.Key();
    });
    triples.erase(std::unique(triples.begin(), triples.end()), triples.end());
    load.reserve(triples.size());
    for (const Triple& t : triples) {
      load.push_back(LoadTriple{t.s, t.p, t.o, kNoCs});
    }
  }
  db.info_.num_triples = load.size();
  db.info_.num_terms = db.dict_.size();

  // (a) Characteristic sets — Algorithm 1 — and the CS index. The CS-index
  // build (B+-tree bulk loads over the finished extraction) is independent
  // of ECS extraction, so it runs as a pool task alongside it.
  CsExtraction cs = ExtractCharacteristicSets(std::move(load), pool);
  db.info_.num_properties = cs.properties.size();
  db.info_.num_cs = cs.sets.size();

  EcsExtraction ecs;
  {
    WaitGroup wg(pool);
    wg.Run([&db, &cs] { db.cs_index_ = CsIndex::Build(cs); });
    // (b) Extended characteristic sets — Algorithm 2 — on the calling
    // thread (it fans out its own subtasks on the same pool).
    ecs = ExtractExtendedCharacteristicSets(cs, pool);
    wg.Wait();
  }

  // Graph, statistics, hierarchy and the ECS index. Graph and statistics
  // are independent of the hierarchy chain (hierarchy → storage rank →
  // ECS-index bulk load), so they run as pool tasks beside it.
  {
    WaitGroup wg(pool);
    wg.Run([&db, &ecs] { db.graph_ = EcsGraph(ecs.links); });
    wg.Run([&db, &ecs] { db.stats_ = EcsStatistics::Build(ecs); });
    db.hierarchy_ = EcsHierarchy::Build(ecs.sets, cs.sets);
    std::vector<uint32_t> storage_rank;
    if (options.use_hierarchy) storage_rank = db.hierarchy_.StorageRank();
    db.ecs_index_ = EcsIndex::Build(ecs, storage_rank);
    wg.Wait();
  }
  db.info_.num_ecs = ecs.sets.size();
  db.info_.num_ecs_triples = ecs.triples.size();
  db.info_.num_ecs_edges = db.graph_.num_edges();

  return db;
}

Status Database::Save(const std::string& path) const {
  DbFileWriter writer;
  AXON_RETURN_NOT_OK(writer.Open(path));
  std::string buf;
  AXON_RETURN_NOT_OK(dict_.Serialize(&buf));
  AXON_RETURN_NOT_OK(writer.AddSection("dict", buf));
  // Index metadata and the raw triple tables are separate sections: the
  // tables are fixed-width row images in 8-byte-aligned sections, so
  // OpenMapped() can serve them zero-copy from the mapping.
  buf.clear();
  cs_index_.SerializeMetaTo(&buf);
  AXON_RETURN_NOT_OK(writer.AddSection("cs_meta", buf));
  buf.clear();
  cs_index_.spo().SerializeRaw(&buf);
  AXON_RETURN_NOT_OK(writer.AddSection("spo_rows", buf));
  buf.clear();
  ecs_index_.SerializeMetaTo(&buf);
  AXON_RETURN_NOT_OK(writer.AddSection("ecs_meta", buf));
  buf.clear();
  ecs_index_.pso().SerializeRaw(&buf);
  AXON_RETURN_NOT_OK(writer.AddSection("pso_rows", buf));
  buf.clear();
  graph_.SerializeTo(&buf);
  AXON_RETURN_NOT_OK(writer.AddSection("ecs_graph", buf));
  buf.clear();
  hierarchy_.SerializeTo(&buf);
  AXON_RETURN_NOT_OK(writer.AddSection("ecs_hierarchy", buf));
  buf.clear();
  stats_.SerializeTo(&buf);
  AXON_RETURN_NOT_OK(writer.AddSection("ecs_stats", buf));
  buf.clear();
  PutVarint64(&buf, info_.num_triples);
  PutVarint64(&buf, info_.num_terms);
  PutVarint64(&buf, info_.num_properties);
  PutVarint64(&buf, info_.num_cs);
  PutVarint64(&buf, info_.num_ecs);
  PutVarint64(&buf, info_.num_ecs_triples);
  PutVarint64(&buf, info_.num_ecs_edges);
  AXON_RETURN_NOT_OK(writer.AddSection("build_info", buf));
  return writer.Finish();
}

Status Database::SaveAtomic(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  Status st = Save(tmp);
  if (!st.ok()) {
    std::remove(tmp.c_str());  // best effort; recovery also reaps orphans
    return st;
  }
  return AtomicRename(tmp, path);
}

Result<Database> Database::Open(const std::string& path,
                                EngineOptions options) {
  DbFileReader reader;
  AXON_RETURN_NOT_OK(reader.Open(path));
  Database db;
  db.options_ = options;
  db.pool_ = MakePool(options.parallelism);

  AXON_ASSIGN_OR_RETURN(std::string_view dict_data,
                        reader.GetSection("dict"));
  AXON_ASSIGN_OR_RETURN(db.dict_, Dictionary::Deserialize(dict_data));

  size_t pos = 0;
  AXON_ASSIGN_OR_RETURN(std::string_view cs_data,
                        reader.GetSection("cs_meta"));
  AXON_ASSIGN_OR_RETURN(db.cs_index_, CsIndex::DeserializeMeta(cs_data, &pos));
  AXON_ASSIGN_OR_RETURN(std::string_view spo_data,
                        reader.GetSection("spo_rows"));
  AXON_ASSIGN_OR_RETURN(TripleTable spo, TripleTable::FromRawOwned(spo_data));
  db.cs_index_.AttachSpo(std::move(spo));

  pos = 0;
  AXON_ASSIGN_OR_RETURN(std::string_view ecs_data,
                        reader.GetSection("ecs_meta"));
  AXON_ASSIGN_OR_RETURN(db.ecs_index_,
                        EcsIndex::DeserializeMeta(ecs_data, &pos));
  AXON_ASSIGN_OR_RETURN(std::string_view pso_data,
                        reader.GetSection("pso_rows"));
  AXON_ASSIGN_OR_RETURN(TripleTable pso, TripleTable::FromRawOwned(pso_data));
  db.ecs_index_.AttachPso(std::move(pso));

  pos = 0;
  AXON_ASSIGN_OR_RETURN(std::string_view graph_data,
                        reader.GetSection("ecs_graph"));
  AXON_ASSIGN_OR_RETURN(db.graph_, EcsGraph::Deserialize(graph_data, &pos));

  pos = 0;
  AXON_ASSIGN_OR_RETURN(std::string_view hier_data,
                        reader.GetSection("ecs_hierarchy"));
  AXON_ASSIGN_OR_RETURN(db.hierarchy_,
                        EcsHierarchy::Deserialize(hier_data, &pos));

  pos = 0;
  AXON_ASSIGN_OR_RETURN(std::string_view stats_data,
                        reader.GetSection("ecs_stats"));
  AXON_ASSIGN_OR_RETURN(db.stats_,
                        EcsStatistics::Deserialize(stats_data, &pos));

  AXON_ASSIGN_OR_RETURN(std::string_view info_data,
                        reader.GetSection("build_info"));
  {
    const char* p = info_data.data();
    const char* limit = p + info_data.size();
    uint64_t* fields[] = {
        &db.info_.num_triples,     &db.info_.num_terms,
        &db.info_.num_properties,  &db.info_.num_cs,
        &db.info_.num_ecs,         &db.info_.num_ecs_triples,
        &db.info_.num_ecs_edges};
    for (uint64_t* f : fields) {
      p = GetVarint64(p, limit, f);
      if (p == nullptr) return Status::Corruption("build_info section");
    }
  }

  return db;
}

Result<Database> Database::OpenMapped(const std::string& path,
                                      EngineOptions options) {
  auto reader = std::make_shared<DbFileReader>();
  AXON_RETURN_NOT_OK(reader->Open(path));
  Database db;
  db.options_ = options;
  db.pool_ = MakePool(options.parallelism);

  AXON_ASSIGN_OR_RETURN(std::string_view dict_data,
                        reader->GetSection("dict"));
  AXON_ASSIGN_OR_RETURN(db.dict_, Dictionary::Deserialize(dict_data));

  size_t pos = 0;
  AXON_ASSIGN_OR_RETURN(std::string_view cs_data,
                        reader->GetSection("cs_meta"));
  AXON_ASSIGN_OR_RETURN(db.cs_index_, CsIndex::DeserializeMeta(cs_data, &pos));
  AXON_ASSIGN_OR_RETURN(std::string_view spo_data,
                        reader->GetSection("spo_rows"));
  AXON_ASSIGN_OR_RETURN(TripleTable spo, TripleTable::FromRaw(spo_data));
  db.cs_index_.AttachSpo(std::move(spo));

  pos = 0;
  AXON_ASSIGN_OR_RETURN(std::string_view ecs_data,
                        reader->GetSection("ecs_meta"));
  AXON_ASSIGN_OR_RETURN(db.ecs_index_,
                        EcsIndex::DeserializeMeta(ecs_data, &pos));
  AXON_ASSIGN_OR_RETURN(std::string_view pso_data,
                        reader->GetSection("pso_rows"));
  AXON_ASSIGN_OR_RETURN(TripleTable pso, TripleTable::FromRaw(pso_data));
  db.ecs_index_.AttachPso(std::move(pso));

  pos = 0;
  AXON_ASSIGN_OR_RETURN(std::string_view graph_data,
                        reader->GetSection("ecs_graph"));
  AXON_ASSIGN_OR_RETURN(db.graph_, EcsGraph::Deserialize(graph_data, &pos));

  pos = 0;
  AXON_ASSIGN_OR_RETURN(std::string_view hier_data,
                        reader->GetSection("ecs_hierarchy"));
  AXON_ASSIGN_OR_RETURN(db.hierarchy_,
                        EcsHierarchy::Deserialize(hier_data, &pos));

  pos = 0;
  AXON_ASSIGN_OR_RETURN(std::string_view stats_data,
                        reader->GetSection("ecs_stats"));
  AXON_ASSIGN_OR_RETURN(db.stats_,
                        EcsStatistics::Deserialize(stats_data, &pos));

  AXON_ASSIGN_OR_RETURN(std::string_view info_data,
                        reader->GetSection("build_info"));
  {
    const char* p = info_data.data();
    const char* limit = p + info_data.size();
    uint64_t* fields[] = {
        &db.info_.num_triples,     &db.info_.num_terms,
        &db.info_.num_properties,  &db.info_.num_cs,
        &db.info_.num_ecs,         &db.info_.num_ecs_triples,
        &db.info_.num_ecs_edges};
    for (uint64_t* f : fields) {
      p = GetVarint64(p, limit, f);
      if (p == nullptr) return Status::Corruption("build_info section");
    }
  }

  db.mapped_file_ = std::move(reader);
  return db;
}

Result<QueryResult> Database::Execute(const SelectQuery& query) const {
  return MakeExecutor().Execute(query);
}

Result<QueryResult> Database::Execute(const SelectQuery& query,
                                      QueryContext* ctx) const {
  return MakeExecutor().Execute(query, ctx);
}

Result<QueryResult> Database::ExecuteSparql(std::string_view text) const {
  AXON_ASSIGN_OR_RETURN(SelectQuery q, ParseSparql(text));
  return Execute(q);
}

uint64_t Database::StorageBytes() const {
  return cs_index_.ByteSize() + ecs_index_.ByteSize();
}

Result<std::string> Database::ExportNTriples() const {
  std::string out;
  for (const Triple& t : cs_index_.spo().rows()) {
    AXON_ASSIGN_OR_RETURN(Term s, dict_.GetTerm(t.s));
    AXON_ASSIGN_OR_RETURN(Term p, dict_.GetTerm(t.p));
    AXON_ASSIGN_OR_RETURN(Term o, dict_.GetTerm(t.o));
    out += WriteNTriplesLine(TermTriple{std::move(s), std::move(p),
                                        std::move(o)});
  }
  return out;
}

Result<std::vector<std::vector<std::string>>> Database::Render(
    const BindingTable& table) const {
  std::vector<std::vector<std::string>> out;
  out.reserve(table.num_rows());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<std::string> row;
    row.reserve(table.num_cols());
    for (size_t c = 0; c < table.num_cols(); ++c) {
      TermId id = table.at(r, c);
      if (id == kInvalidId) {
        row.push_back("");  // unbound (OPTIONAL-padded) cell
        continue;
      }
      if (IsValueId(id)) {
        // Aggregate count carried as a value-tagged id, not a dict term.
        row.push_back("\"" + std::to_string(ValueIdPayload(id)) +
                      "\"^^<http://www.w3.org/2001/XMLSchema#integer>");
        continue;
      }
      if (id.value() > dict_.size()) {
        return Status::Internal("binding with invalid term id");
      }
      row.push_back(dict_.GetCanonical(id));
    }
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace axon
