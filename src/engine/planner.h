// Query planner (paper Sec. IV.C): outer ordering of chains by the
// recursive cost model cost(c_1..k) = cost(c_1..k-1) × m_f,os(Q_k), and
// inner ordering of each chain by lowest-cardinality-first expansion.

#ifndef AXON_ENGINE_PLANNER_H_
#define AXON_ENGINE_PLANNER_H_

#include <optional>
#include <vector>

#include "ecs/ecs_index.h"
#include "ecs/ecs_statistics.h"
#include "engine/ecs_matcher.h"
#include "engine/query_graph.h"

namespace axon {

/// The evaluation plan of one chain.
struct ChainPlan {
  int chain_index = -1;          // index into QueryGraph::chains
  std::vector<int> chain;        // the query-ECS sequence (copied)
  ChainMatch matches;            // per-position data-ECS matches
  std::vector<double> position_cost;  // eval cardinality per position
  /// Positions in evaluation order: join_order[0] is evaluated first and
  /// each subsequent position is adjacent to the already-evaluated span.
  std::vector<size_t> join_order;
  double cost = 0.0;             // Eq. 9 chain cost
};

struct QueryPlan {
  /// Chains in outer evaluation order (ascending cost when planning is on,
  /// input order otherwise).
  std::vector<ChainPlan> chains;
};

/// Inputs to global join ordering over the query-ECS units: the Eq. 9
/// statistics the executor aggregates over each unit's matched data ECSs
/// (eval cardinality plus the two entry-side multiplication factors), the
/// chain nodes each unit touches, and the chain-plan priority order used
/// as the deterministic tie-break.
struct JoinOrderInput {
  std::vector<double> cost;       // eval cardinality per unit
  std::vector<double> mf_s;       // multiplication factor, subject entry
  std::vector<double> mf_o;       // multiplication factor, object entry
  std::vector<int> subject_node;  // chain node ids per unit
  std::vector<int> object_node;
  std::vector<int> priority;      // units in plan order (deduped)
  size_t num_nodes = 0;
};

/// A global join order with its estimated intermediate sizes. `total_cost`
/// is the C_out objective: the sum of the running size estimates, the
/// quantity both the greedy heuristic and the DP minimize.
struct JoinOrder {
  std::vector<int> sequence;
  std::vector<double> running_estimate;
  double total_cost = 0.0;
  bool used_dp = false;
};

/// Replays `order->sequence` through the shared size-estimate model,
/// filling running_estimate and total_cost. Both orderings are scored by
/// this one function, which is what makes "DP cost <= greedy cost" a
/// provable property rather than an accident of two cost models.
void ReplayJoinOrder(const JoinOrderInput& in, JoinOrder* order);

/// The greedy ordering (the pre-DP behavior): next is the pending unit
/// minimizing the estimated joined size, preferring units connected to the
/// already-joined nodes over cross products. With `use_planner` false the
/// priority (chain) order is kept among equally-connected candidates.
JoinOrder OrderJoinsGreedy(const JoinOrderInput& in, bool use_planner);

/// Bottom-up DPsize enumeration over subsets of units: dp[S] holds the
/// Pareto frontier over (accumulated cost, running estimate) of left-deep
/// sequences covering S under the shared estimate model — the estimate is
/// path-dependent, so a single best-cost state per subset would not be
/// Bellman-safe. Extensions must connect to the joined nodes unless no
/// pending unit does (the same cross-product discipline as the greedy),
/// so the greedy sequence is always in the search space and the returned
/// cost never exceeds the greedy's. Returns nullopt when the instance is
/// out of range (fewer than 2 units, more than `max_units` units — hard
/// cap 16 — or more than 64 chain nodes).
std::optional<JoinOrder> OrderJoinsDp(const JoinOrderInput& in,
                                      size_t max_units);

/// The planner entry point the executors use: greedy always runs; when
/// `use_dp` is set and the instance fits, the DP runs too and the cheaper
/// sequence (under ReplayJoinOrder) wins.
JoinOrder OrderJoins(const JoinOrderInput& in, bool use_planner, bool use_dp,
                     size_t dp_max_units);

class Planner {
 public:
  Planner(const EcsIndex* ecs_index, const EcsStatistics* stats)
      : ecs_(ecs_index), stats_(stats) {}

  /// Cost of evaluating one query ECS: 1 when either chain node is bound
  /// (Sec. IV.C), else the total triple count of its matched ECSs —
  /// restricted to the bound link predicates' ranges when available.
  double PositionCost(const QueryGraph& qg, int query_ecs,
                      const std::vector<EcsId>& matches) const;

  /// m_f,os aggregated over the matched ECSs of a position.
  double MultiplicationFactor(const std::vector<EcsId>& matches) const;

  /// Builds the plan. When `enable` is false the chain order and the
  /// left-to-right inner order of the input are kept (the axonDB base
  /// configuration); costs are still computed for introspection.
  QueryPlan Plan(const QueryGraph& qg, std::vector<ChainMatch> matches,
                 bool enable) const;

 private:
  const EcsIndex* ecs_;
  const EcsStatistics* stats_;
};

}  // namespace axon

#endif  // AXON_ENGINE_PLANNER_H_
