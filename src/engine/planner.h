// Query planner (paper Sec. IV.C): outer ordering of chains by the
// recursive cost model cost(c_1..k) = cost(c_1..k-1) × m_f,os(Q_k), and
// inner ordering of each chain by lowest-cardinality-first expansion.

#ifndef AXON_ENGINE_PLANNER_H_
#define AXON_ENGINE_PLANNER_H_

#include <vector>

#include "ecs/ecs_index.h"
#include "ecs/ecs_statistics.h"
#include "engine/ecs_matcher.h"
#include "engine/query_graph.h"

namespace axon {

/// The evaluation plan of one chain.
struct ChainPlan {
  int chain_index = -1;          // index into QueryGraph::chains
  std::vector<int> chain;        // the query-ECS sequence (copied)
  ChainMatch matches;            // per-position data-ECS matches
  std::vector<double> position_cost;  // eval cardinality per position
  /// Positions in evaluation order: join_order[0] is evaluated first and
  /// each subsequent position is adjacent to the already-evaluated span.
  std::vector<size_t> join_order;
  double cost = 0.0;             // Eq. 9 chain cost
};

struct QueryPlan {
  /// Chains in outer evaluation order (ascending cost when planning is on,
  /// input order otherwise).
  std::vector<ChainPlan> chains;
};

class Planner {
 public:
  Planner(const EcsIndex* ecs_index, const EcsStatistics* stats)
      : ecs_(ecs_index), stats_(stats) {}

  /// Cost of evaluating one query ECS: 1 when either chain node is bound
  /// (Sec. IV.C), else the total triple count of its matched ECSs —
  /// restricted to the bound link predicates' ranges when available.
  double PositionCost(const QueryGraph& qg, int query_ecs,
                      const std::vector<EcsId>& matches) const;

  /// m_f,os aggregated over the matched ECSs of a position.
  double MultiplicationFactor(const std::vector<EcsId>& matches) const;

  /// Builds the plan. When `enable` is false the chain order and the
  /// left-to-right inner order of the input are kept (the axonDB base
  /// configuration); costs are still computed for introspection.
  QueryPlan Plan(const QueryGraph& qg, std::vector<ChainMatch> matches,
                 bool enable) const;

 private:
  const EcsIndex* ecs_;
  const EcsStatistics* stats_;
};

}  // namespace axon

#endif  // AXON_ENGINE_PLANNER_H_
