// axon::Database — the axonDB engine façade (paper Fig. 2).
//
// Ties together the three core modules: (a) loading — dictionary encoding
// plus CS/ECS extraction, (b) index construction — CS index, ECS index, ECS
// graph, hierarchy and statistics, persisted into a single binary file, and
// (c) query processing — parse, ECS-graph matching, planning, execution.
//
// Typical use:
//   axon::Dataset data;
//   data.AddNTriples(text);
//   auto db = axon::Database::Build(data, axon::EngineOptions{});
//   auto result = db.value().ExecuteSparql(
//       "SELECT ?x WHERE { ?x <p> ?y . ?y <q> ?z }");

#ifndef AXON_ENGINE_DATABASE_H_
#define AXON_ENGINE_DATABASE_H_

#include <memory>
#include <string>

#include "cs/cs_index.h"
#include "storage/db_file.h"
#include "ecs/ecs_graph.h"
#include "ecs/ecs_hierarchy.h"
#include "ecs/ecs_index.h"
#include "ecs/ecs_statistics.h"
#include "engine/cardinality.h"
#include "engine/executor.h"
#include "engine/query_engine.h"
#include "sparql/parser.h"
#include "storage/buffer_manager.h"
#include "storage/paged_table.h"

namespace axon {

/// Summary counters reported after a build (the Table II columns).
struct BuildInfo {
  uint64_t num_triples = 0;       // after exact-duplicate removal
  uint64_t num_terms = 0;         // dictionary entries
  uint64_t num_properties = 0;    // distinct predicates
  uint64_t num_cs = 0;            // distinct characteristic sets
  uint64_t num_ecs = 0;           // distinct extended characteristic sets
  uint64_t num_ecs_triples = 0;   // PSO-table rows (valid-ECS triples)
  uint64_t num_ecs_edges = 0;     // ECS-graph edges
};

class Database : public QueryEngine {
 public:
  /// Loads a dataset: extracts CSs and ECSs, builds every index. With
  /// options.use_hierarchy the PSO partitions are laid out in hierarchy
  /// pre-order (Sec. III.D), otherwise in ECS-id order.
  static Result<Database> Build(const Dataset& dataset,
                                EngineOptions options = {});

  /// Persists all structures into one binary database file. The file is
  /// fsynced before the call returns (DbFileWriter::Finish syncs), but the
  /// write is in place — a crash mid-Save leaves a torn file. Use
  /// SaveAtomic() when `path` may already hold a good database.
  Status Save(const std::string& path) const;

  /// Crash-atomic save: writes `path + ".tmp"`, fsyncs, then renames over
  /// `path` and fsyncs the directory. At every kill point `path` holds
  /// either the complete old database or the complete new one. A stale
  /// orphaned temp from an earlier crash is overwritten.
  Status SaveAtomic(const std::string& path) const;

  /// Opens a Save()d database file, copying the triple tables into memory.
  static Result<Database> Open(const std::string& path,
                               EngineOptions options = {});

  /// Opens a Save()d database file with the SPO/PSO tables served directly
  /// from the memory-mapped file — zero copy, the paper's Sec. III.A
  /// "backed by a memory mapped file" read path. The mapping stays alive
  /// for the lifetime of the returned Database. Query results are
  /// identical to Open(); only the residency of the tables differs.
  static Result<Database> OpenMapped(const std::string& path,
                                     EngineOptions options = {});

  /// True when the triple tables are served from a memory-mapped file.
  bool is_mapped() const { return mapped_file_ != nullptr; }

  /// True when the SPO/PSO tables are compressed paged tables behind the
  /// buffer manager (EngineOptions::use_paged_storage, DESIGN.md §14).
  bool is_paged() const { return buffer_ != nullptr; }
  /// The buffer manager behind paged tables (null in resident mode);
  /// exposes the real pages_read / pages_evicted counters.
  const BufferManager* buffer_manager() const { return buffer_.get(); }

  /// Streams every triple in SPO order: the resident row array, or a
  /// sequential page-by-page decode in paged mode (bounded residency; no
  /// frame pool involved). Backs ExportNTriples and update-store recovery.
  Status ForEachTriple(const std::function<void(const Triple&)>& fn) const;

  // QueryEngine interface.
  std::string name() const override { return options_.ConfigName(); }
  Result<QueryResult> Execute(const SelectQuery& query) const override;
  Result<QueryResult> Execute(const SelectQuery& query,
                              QueryContext* ctx) const override;
  uint64_t StorageBytes() const override;

  /// Parses and executes SPARQL text.
  Result<QueryResult> ExecuteSparql(std::string_view text) const;

  /// Human-readable plan description (no data access): the ECS
  /// decomposition, chain matches and the planned join order.
  Result<std::string> Explain(const SelectQuery& query) const {
    return MakeExecutor().Explain(query);
  }

  /// CS/ECS-based estimate of a query's result cardinality (Sec. IV.C cost
  /// model + Neumann-Moerkotte star estimation). 0 for provably empty
  /// queries.
  Result<double> EstimateCardinality(const SelectQuery& query) const {
    return CardinalityEstimator(&cs_index_, &ecs_index_, &stats_, &graph_)
        .EstimateQuery(query, dict_);
  }

  const Dictionary& dict() const { return dict_; }
  const CsIndex& cs_index() const { return cs_index_; }
  const EcsIndex& ecs_index() const { return ecs_index_; }
  const EcsGraph& ecs_graph() const { return graph_; }
  const EcsHierarchy& hierarchy() const { return hierarchy_; }
  const EcsStatistics& statistics() const { return stats_; }
  const EngineOptions& options() const { return options_; }
  const BuildInfo& build_info() const { return info_; }

  /// Serializes the full triple contents back to N-Triples text (one
  /// statement per line, SPO order). Round-trips through AddNTriples.
  Result<std::string> ExportNTriples() const;

  /// Renders a result table back to term strings (row-major), resolving
  /// ids through the dictionary.
  Result<std::vector<std::vector<std::string>>> Render(
      const BindingTable& table) const;

  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

 private:
  Database() = default;

  // The Executor holds pointers into this object, and Database is movable —
  // so executors are constructed per Execute() call (they are a handful of
  // pointers) rather than cached across moves. The thread pool (null on
  // the serial path) is shared across concurrent Execute() calls.
  Executor MakeExecutor() const {
    return Executor(&dict_, &cs_index_, &ecs_index_, &graph_, &stats_,
                    options_, pool_.get(), buffer_.get());
  }

  /// Switches the SPO/PSO tables to compressed paged storage: builds (or
  /// adopts, when `spo_pages`/`pso_pages` hold serialized sections) the
  /// paged tables, attaches them to a fresh buffer manager sized by
  /// options_.frame_pool_bytes, and drops the resident row arrays so only
  /// compressed bytes plus bounded frames stay in memory. `borrow` serves
  /// page bytes straight from the mapping (OpenMapped path).
  Status EnablePagedStorage(std::string_view spo_pages,
                            std::string_view pso_pages, bool borrow);

  Dictionary dict_;
  CsIndex cs_index_;
  EcsIndex ecs_index_;
  EcsGraph graph_;
  EcsHierarchy hierarchy_;
  EcsStatistics stats_;
  EngineOptions options_;
  BuildInfo info_;
  // Worker pool behind EngineOptions::parallelism (null = serial path);
  // used by Build() for extraction/index tasks and by every Execute().
  std::shared_ptr<ThreadPool> pool_;
  // Paged mode (null otherwise). shared_ptrs keep the paged tables and the
  // buffer manager at stable addresses across Database moves — the indexes
  // hold raw pointers to the tables and the buffer's registered loaders
  // capture them.
  std::shared_ptr<BufferManager> buffer_;
  std::shared_ptr<PagedTripleTable> paged_spo_;
  std::shared_ptr<PagedTripleTable> paged_pso_;
  // Keeps the mapping alive for borrowed (OpenMapped) tables.
  std::shared_ptr<DbFileReader> mapped_file_;
};

}  // namespace axon

#endif  // AXON_ENGINE_DATABASE_H_
