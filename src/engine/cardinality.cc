#include "engine/cardinality.h"

#include <algorithm>

namespace axon {

double CardinalityEstimator::EstimateStarInCs(CsId cs,
                                              const Bitmap& query_cs) const {
  if (!query_cs.IsSubsetOf(cs_->set(cs).properties)) return 0.0;
  double subjects = static_cast<double>(cs_->DistinctSubjects(cs));
  if (subjects <= 0) return 0.0;
  double estimate = subjects;
  for (uint32_t ordinal : query_cs.ToIndices()) {
    TermId pred = cs_->properties().PredicateOf(PropOrdinal(ordinal));
    estimate *= static_cast<double>(cs_->PredicateCount(cs, pred)) / subjects;
  }
  return estimate;
}

double CardinalityEstimator::EstimateStar(const Bitmap& query_cs) const {
  double total = 0.0;
  for (CsId cs : cs_->MatchSupersets(query_cs)) {
    total += EstimateStarInCs(cs, query_cs);
  }
  return total;
}

double CardinalityEstimator::EstimateQueryEcs(
    const QueryGraph& qg, int query_ecs,
    const std::vector<EcsId>& matches) const {
  const QueryEcs& q = qg.ecss[query_ecs];
  double best = -1.0;
  for (int pi : q.link_patterns) {
    const IdPattern& p = qg.patterns[pi];
    if (!p.p_bound()) continue;
    double total = 0.0;
    for (EcsId e : matches) {
      total += static_cast<double>(ecs_->PropertyRange(e, p.p).size());
    }
    if (best < 0.0 || total < best) best = total;
  }
  if (best >= 0.0) return best;
  double total = 0.0;
  for (EcsId e : matches) {
    total += static_cast<double>(ecs_->RangeOf(e).size());
  }
  return total;
}

double CardinalityEstimator::EstimateChain(const QueryGraph& qg,
                                           const std::vector<int>& chain,
                                           const ChainMatch& match) const {
  if (chain.empty() || match.Empty()) return 0.0;
  double estimate =
      EstimateQueryEcs(qg, chain[0], match.position_matches[0]);
  for (size_t i = 1; i < chain.size(); ++i) {
    uint64_t triples = 0;
    uint64_t subjects = 0;
    for (EcsId e : match.position_matches[i]) {
      const EcsStats& s = stats_->Of(e);
      triples += s.num_triples;
      subjects += s.distinct_subjects;
    }
    double mf = subjects == 0
                    ? 0.0
                    : static_cast<double>(triples) / static_cast<double>(subjects);
    estimate *= mf;
  }
  return estimate;
}

Result<double> CardinalityEstimator::EstimateQuery(
    const SelectQuery& query, const Dictionary& dict) const {
  AXON_ASSIGN_OR_RETURN(QueryGraph qg,
                        BuildQueryGraph(query, dict, cs_->properties()));
  if (qg.impossible) return 0.0;

  EcsMatcher matcher(cs_, ecs_, graph_);
  double estimate = 1.0;
  bool any_factor = false;

  // Chain contribution: the maximum single-chain estimate (chains overlap,
  // so multiplying them would double-count shared ECSs).
  double chain_estimate = 0.0;
  for (const auto& chain : qg.chains) {
    ChainMatch match = matcher.MatchChain(qg, chain);
    if (match.Empty()) return 0.0;
    chain_estimate = std::max(chain_estimate,
                              EstimateChain(qg, chain, match));
  }
  if (!qg.chains.empty()) {
    estimate *= chain_estimate;
    any_factor = true;
  }

  // Star contribution: per star-only node, the CS-based estimate; chain
  // nodes' star attributes contribute their per-subject multiplicities.
  for (size_t node = 0; node < qg.nodes.size(); ++node) {
    const QueryNode& n = qg.nodes[node];
    if (!n.emits()) continue;
    std::vector<int> star = qg.StarPatterns(static_cast<int>(node));
    if (star.empty()) continue;
    Bitmap star_only(cs_->properties().size());
    for (int pi : star) {
      if (qg.patterns[pi].p_bound()) {
        auto ord = cs_->properties().OrdinalOf(qg.patterns[pi].p);
        if (ord.has_value()) star_only.Set(ord->value());
      }
    }
    bool in_chain = false;
    for (const QueryEcs& qe : qg.ecss) {
      if (qe.subject_node == static_cast<int>(node) ||
          qe.object_node == static_cast<int>(node)) {
        in_chain = true;
        break;
      }
    }
    if (!in_chain) {
      double star_est = EstimateStar(n.star_bitmap);
      if (star_est <= 0.0) return 0.0;
      estimate *= star_est;
      any_factor = true;
    } else if (star_only.Count() > 0) {
      // Multiplicity of the star attributes per chain-node subject:
      // weighted over the CSs that can carry the full node bitmap.
      double subjects = 0.0;
      double rows = 0.0;
      for (CsId cs : cs_->MatchSupersets(n.star_bitmap)) {
        double s = static_cast<double>(cs_->DistinctSubjects(cs));
        subjects += s;
        rows += EstimateStarInCs(cs, star_only);
      }
      if (subjects > 0.0) estimate *= rows / subjects;
    }
  }
  if (!any_factor) return 0.0;
  return estimate;
}

}  // namespace axon
