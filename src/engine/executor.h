// axonDB query execution (paper Sec. IV.D).
//
// Each chain is evaluated by range-scanning the PSO partitions of its
// matched ECSs and object-subject hash-joining consecutive positions in the
// planner's inner order; multiple chains are joined on their common
// attributes; star-pattern attributes are retrieved from the CS index
// partitions of the CSs that the matched ECSs allow for each node and
// joined on the node's subject column. With the hierarchy optimization on,
// matched ECS ranges that are adjacent in the pre-order storage layout are
// coalesced into single extended range scans.

#ifndef AXON_ENGINE_EXECUTOR_H_
#define AXON_ENGINE_EXECUTOR_H_

#include <set>
#include <string>
#include <vector>

#include "cs/cs_index.h"
#include "ecs/ecs_graph.h"
#include "ecs/ecs_index.h"
#include "ecs/ecs_statistics.h"
#include "engine/ecs_matcher.h"
#include "engine/planner.h"
#include "engine/query_engine.h"
#include "engine/query_graph.h"
#include "storage/paged_table.h"
#include "util/thread_pool.h"

namespace axon {

/// The four configurations of Table IV: base (both off), -h, -qp, +.
struct EngineOptions {
  bool use_hierarchy = true;
  bool use_planner = true;

  /// When the planner is on, also run the bottom-up DPsize enumeration
  /// over the query ECS units and take the cheaper global join order
  /// (planner.h OrderJoins). Greedy remains the fallback above
  /// `dp_join_threshold` units, so planning stays O(n^2) on very large
  /// queries. Off reproduces the pure greedy ordering.
  bool use_dp_planner = true;

  /// Maximum number of join units the DP enumerates (2^n subset states);
  /// larger queries fall back to the greedy order.
  uint32_t dp_join_threshold = 12;

  /// Per-query wall-clock budget in milliseconds; 0 = unlimited. The
  /// paper's evaluation imposes a 30-minute timeout on every engine
  /// (Sec. V.A); this is the engine-level mechanism behind it. Checked
  /// between operators and, inside every scan/join loop, every
  /// kStopCheckRows rows (one B+-tree leaf), so overshoot is bounded by a
  /// single leaf scan per worker.
  uint64_t timeout_millis = 0;

  /// Per-query memory budget in bytes for intermediate results (operator
  /// buffers + hash-join builds); 0 = unlimited. Charged before growth, so
  /// an over-budget query returns ResourceExhausted without its tracked
  /// allocations ever exceeding the budget.
  uint64_t memory_budget_bytes = 0;

  /// Worker threads for load-time extraction/index builds and query-time
  /// scans: 0 = hardware concurrency, 1 = the serial reference path
  /// (default; exactly the pre-parallel engine), K > 1 = a fixed pool of K
  /// threads. Partial results are always merged in plan order, so results
  /// and summed ExecStats are bit-identical at every setting (enforced by
  /// parallel_determinism_test).
  uint32_t parallelism = 1;

  /// Ablation knob: when false the star merge scan is disabled and star
  /// retrieval always goes through the general hash-join pipeline
  /// (bench_micro_ablation measures the difference).
  bool use_star_merge_scan = true;

  /// Paged storage (DESIGN.md §14): the SPO/PSO tables are stored as
  /// compressed pages behind a pin/unpin buffer manager instead of resident
  /// row arrays, so datasets larger than the frame pool load and query.
  /// Results, ExecStats (minus the real pages_read/pages_evicted counters)
  /// and budget charges are bit-identical to resident mode
  /// (paged_exec_test). Default off: the resident path is the reference.
  bool use_paged_storage = false;

  /// Frame-pool soft target in bytes for paged mode (decoded pages resident
  /// at once; eviction starts above this).
  uint64_t frame_pool_bytes = 4ull << 20;

  /// Serialized page size target for paged mode.
  uint32_t page_size_bytes = 4096;

  /// When false, star patterns that are pure existence checks (bound
  /// predicate, object variable that is neither projected, shared, bound
  /// nor filtered) are not retrieved at all — their existence is already
  /// guaranteed by the ECS match (Sec. IV.D). This changes duplicate
  /// multiplicities of non-DISTINCT results, so it defaults to off.
  bool skip_redundant_star_retrieval = false;

  std::string ConfigName() const {
    if (use_hierarchy && use_planner) return "axonDB+";
    if (use_hierarchy) return "axonDB-h";
    if (use_planner) return "axonDB-qp";
    return "axonDB";
  }
};

class Executor {
 public:
  /// `pool` may be null (serial reference path) and must outlive the
  /// executor; it is shared by concurrent Execute() calls.
  /// `buffer` (paged mode) is the buffer manager behind the indexes' paged
  /// tables; it supplies the real pages_read/pages_evicted deltas per query
  /// and must outlive the executor. Null in resident mode.
  Executor(const Dictionary* dict, const CsIndex* cs_index,
           const EcsIndex* ecs_index, const EcsGraph* graph,
           const EcsStatistics* stats, EngineOptions options,
           ThreadPool* pool = nullptr, const BufferManager* buffer = nullptr)
      : dict_(dict),
        cs_(cs_index),
        ecs_(ecs_index),
        graph_(graph),
        stats_(stats),
        options_(options),
        pool_(pool),
        buffer_(buffer),
        matcher_(cs_index, ecs_index, graph),
        planner_(ecs_index, stats) {}

  Result<QueryResult> Execute(const SelectQuery& query) const;

  /// Executes under a caller-owned context; timeout/budget/cancel stops
  /// surface as DeadlineExceeded / ResourceExhausted / Cancelled.
  Result<QueryResult> Execute(const SelectQuery& query,
                              QueryContext* ctx) const;

  /// Human-readable plan description: the query's ECS decomposition, the
  /// chain matches, the planned join order with running size estimates,
  /// and the star-retrieval plan. Does not touch the triple tables.
  Result<std::string> Explain(const SelectQuery& query) const;

  /// Adds the simulated 4 KiB page count of the (sorted, disjoint) ranges
  /// to stats->pages_read. Public: unit-tested directly and useful for
  /// instrumentation.
  static void AccountPageReads(const std::vector<RowRange>& sorted_ranges,
                               ExecStats* stats);

 private:
  /// Execute() minus the fault boundary: Execute wraps this in the
  /// QueryStopError / bad_alloc -> Status translation (and the
  /// "exec.query" failpoint) so a stop or OOM anywhere in the pipeline is
  /// a clean Status.
  Result<QueryResult> ExecuteImpl(const SelectQuery& query,
                                  QueryContext* ctx) const;

  /// eval(Q_i): union of the matched ECS partitions' rows for every link
  /// pattern of the query ECS, link patterns natural-joined on the chain
  /// node columns. The per-ECS PSO range scans run as pool tasks; partial
  /// tables are appended in range (storage) order, so the union is
  /// bit-identical to the serial scan.
  BindingTable EvalQueryEcs(const QueryGraph& qg, int query_ecs,
                            const std::vector<EcsId>& matches,
                            ExecStats* stats, QueryContext* ctx) const;

  /// Star retrieval for one node over the allowed CS partitions.
  /// Returns a table with the node column plus the star patterns' variable
  /// columns. Per-CS partition scans run as pool tasks, merged in
  /// allowed_cs order.
  BindingTable EvalStarNode(const QueryGraph& qg, int node,
                            const std::vector<CsId>& allowed_cs,
                            const std::vector<int>& star_patterns,
                            ExecStats* stats, QueryContext* ctx) const;

  /// True when the star patterns share no variables besides the subject —
  /// the precondition of the single-pass merge scan (Sec. IV.D: the CS
  /// index "maintains the interesting order of the subject node").
  static bool StarMergeApplicable(const QueryGraph& qg,
                                  const std::vector<int>& star_patterns,
                                  const std::string& node_col);

  /// One merge pass over a subject-ordered partition: per subject group,
  /// emits the cartesian product of the patterns' matches into `out`.
  void StarMergeScan(const QueryGraph& qg,
                     const std::vector<int>& star_patterns,
                     std::span<const Triple> rows, BindingTable* out,
                     ExecStats* stats, QueryContext* ctx) const;

  /// StarMergeScan over a chunked TripleSource: buffers rows only until a
  /// subject group completes, then flushes whole-group prefixes through
  /// StarMergeScan — so decoded residency stays one page + one carry group
  /// and the output is bit-identical to the contiguous scan (groups are
  /// independent and arrive in order).
  void StarMergeScanSource(const QueryGraph& qg,
                           const std::vector<int>& star_patterns,
                           const TripleSource& src, const RowRange& range,
                           BindingTable* out, ExecStats* stats,
                           QueryContext* ctx) const;

  /// The SPO / PSO read seams: paged sources when the indexes carry paged
  /// tables (options_.use_paged_storage), resident otherwise.
  TripleSource SpoSource() const {
    return cs_->paged_spo() != nullptr ? TripleSource(cs_->paged_spo())
                                       : TripleSource(&cs_->spo());
  }
  TripleSource PsoSource() const {
    return ecs_->paged_pso() != nullptr ? TripleSource(ecs_->paged_pso())
                                        : TripleSource(&ecs_->pso());
  }

  /// Merges ranges that are adjacent/overlapping in storage order when the
  /// hierarchy optimization is on (extended range scans, Sec. IV.D).
  std::vector<RowRange> PlanScanRanges(std::vector<RowRange> ranges) const;

  /// Star patterns of `node` that must actually be retrieved.
  std::vector<int> NeededStarPatterns(const QueryGraph& qg, int node,
                                      const SelectQuery& query) const;

  /// The statistics-driven global join order over the query ECSs (Eq. 9
  /// applied across chains), with per-step running size estimates.
  struct ChainJoinPlan {
    std::vector<int> sequence;             // query-ECS indices, join order
    std::vector<double> running_estimate;  // estimated rows after each step
    std::vector<double> cost;              // per-query-ECS eval cardinality
    double total_cost = 0.0;               // sum of running estimates
    bool used_dp = false;                  // DP order beat (or tied) greedy
  };
  ChainJoinPlan ComputeChainJoinPlan(
      const QueryGraph& qg, const std::vector<std::set<EcsId>>& qecs_matches,
      const QueryPlan& plan) const;

  const Dictionary* dict_;
  const CsIndex* cs_;
  const EcsIndex* ecs_;
  const EcsGraph* graph_;
  const EcsStatistics* stats_;
  EngineOptions options_;
  ThreadPool* pool_;             // null => serial reference path
  const BufferManager* buffer_ = nullptr;  // null => resident mode
  EcsMatcher matcher_;
  Planner planner_;
};

}  // namespace axon

#endif  // AXON_ENGINE_EXECUTOR_H_
