// Matching query ECS chains against the ECS index (paper Sec. IV.B,
// Algorithms 3 and 4).
//
// A query ECS Q = (S_q,left, S_q,right) matches a data ECS E when
//   (5) S_q,left  ⊆ E.subjectCS,
//   (6) S_q,right ⊆ E.objectCS,     (bitmap subset via AND)
//   (7) every bound link predicate of Q appears among E's properties,
// and additionally — when a chain node is a bound term — E's corresponding
// CS must be the bound term's actual CS (a pure pruning step; execution
// filters by the bound id regardless).
//
// Chain matching performs the depth-first traversal of the ECS graph: a
// data ECS counts as a match for chain position i only if some successor
// matches position i+1 (memoized), which guarantees "consecutively matched
// ECSs over the query are actually linked in the data".

#ifndef AXON_ENGINE_ECS_MATCHER_H_
#define AXON_ENGINE_ECS_MATCHER_H_

#include <vector>

#include "cs/cs_index.h"
#include "ecs/ecs_graph.h"
#include "ecs/ecs_index.h"
#include "engine/query_graph.h"

namespace axon {

/// Matches of one chain: per chain position, the data ECSs evaluating that
/// query ECS (Eq. 8's matches(Q_i) restricted to chain-consistent ECSs).
struct ChainMatch {
  std::vector<std::vector<EcsId>> position_matches;

  /// True when some position has no match — the chain (and the query) has
  /// no solutions.
  bool Empty() const {
    for (const auto& m : position_matches) {
      if (m.empty()) return true;
    }
    return position_matches.empty();
  }
};

class EcsMatcher {
 public:
  EcsMatcher(const CsIndex* cs_index, const EcsIndex* ecs_index,
             const EcsGraph* graph)
      : cs_(cs_index), ecs_(ecs_index), graph_(graph) {}

  /// Conditions (5)-(7) + bound-node CS pruning for a single query ECS.
  bool Matches(const QueryGraph& qg, int query_ecs, EcsId data_ecs) const;

  /// Algorithm 3/4: match every position of `chain` (query-ECS indices into
  /// qg.ecss) against the ECS graph.
  ChainMatch MatchChain(const QueryGraph& qg,
                        const std::vector<int>& chain) const;

  /// All data ECSs matching a single query ECS (ignoring chain context).
  std::vector<EcsId> MatchAll(const QueryGraph& qg, int query_ecs) const;

 private:
  bool MatchesUncounted(const QueryGraph& qg, int query_ecs,
                        EcsId data_ecs) const;

  const CsIndex* cs_;
  const EcsIndex* ecs_;
  const EcsGraph* graph_;
};

}  // namespace axon

#endif  // AXON_ENGINE_ECS_MATCHER_H_
