// Characteristic-set cardinality estimation.
//
// The technique the paper builds on (Neumann & Moerkotte, ICDE 2011,
// cited as [9]): star-pattern result sizes are estimated *exactly per CS*
// from the per-CS occurrence statistics — for each CS matching the star's
// property set, the expected contribution is
//
//   distinct_subjects(CS) × Π_p  count(CS, p) / distinct_subjects(CS)
//
// which is exact for single-occurrence properties and an
// independence-within-CS approximation for multi-valued ones. Chains are
// estimated with the paper's own Eq. 9 over the matched ECS statistics.
// axonDB's planner uses these numbers; they are exposed here as a public
// API (with per-query estimates) so applications and tests can inspect
// estimation quality.

#ifndef AXON_ENGINE_CARDINALITY_H_
#define AXON_ENGINE_CARDINALITY_H_

#include <vector>

#include "cs/cs_index.h"
#include "ecs/ecs_index.h"
#include "ecs/ecs_statistics.h"
#include "engine/ecs_matcher.h"
#include "engine/query_graph.h"
#include "sparql/algebra.h"

namespace axon {

class CardinalityEstimator {
 public:
  CardinalityEstimator(const CsIndex* cs_index, const EcsIndex* ecs_index,
                       const EcsStatistics* stats, const EcsGraph* graph)
      : cs_(cs_index), ecs_(ecs_index), stats_(stats), graph_(graph) {}

  /// Estimated solutions of a star of the given bound predicates
  /// (PropertyRegistry ordinals; each predicate once) around one unbound
  /// subject node: Σ_matching CS  subjects(CS) · Π_p count(CS,p)/subjects.
  double EstimateStar(const Bitmap& query_cs) const;

  /// Estimated solutions of a star restricted to one CS.
  double EstimateStarInCs(CsId cs, const Bitmap& query_cs) const;

  /// Estimated rows of one matched query ECS (eval cardinality: the total
  /// triples of the matched partitions, per bound link predicate).
  double EstimateQueryEcs(const QueryGraph& qg, int query_ecs,
                          const std::vector<EcsId>& matches) const;

  /// Estimated chain size via Eq. 9: eval(Q_1) × Π m_f,os(Q_i).
  double EstimateChain(const QueryGraph& qg, const std::vector<int>& chain,
                       const ChainMatch& match) const;

  /// End-to-end estimate for a parsed query against this database: builds
  /// the query graph, matches chains, combines chain and star estimates
  /// multiplicatively over the join structure. Returns 0 when the query is
  /// provably empty.
  Result<double> EstimateQuery(const SelectQuery& query,
                               const Dictionary& dict) const;

 private:
  const CsIndex* cs_;
  const EcsIndex* ecs_;
  const EcsStatistics* stats_;
  const EcsGraph* graph_;
};

}  // namespace axon

#endif  // AXON_ENGINE_CARDINALITY_H_
