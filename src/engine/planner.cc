#include "engine/planner.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <numeric>

#include "util/trace.h"

namespace axon {

namespace {

// The one-step size estimate shared by greedy, DP and replay: entering a
// unit through an already-joined subject (object) node multiplies the
// running estimate by mf_s (mf_o); both ends joined can only shrink; no
// shared node is a cross product scaled by the unit's own cardinality.
double StepEstimate(const JoinOrderInput& in, int unit, bool first,
                    double est_rows, bool s_joined, bool o_joined) {
  if (first) return in.cost[unit];
  if (s_joined && o_joined) return est_rows;
  if (s_joined) return est_rows * in.mf_s[unit];
  if (o_joined) return est_rows * in.mf_o[unit];
  return est_rows * in.cost[unit];
}

// A unit may have no chain node on one side (QueryEcs defaults the object
// to -1 for star-only units); a missing node is never joined.
bool NodeJoined(const std::vector<bool>& node_joined, int node) {
  return node >= 0 && node_joined[static_cast<size_t>(node)];
}

void MarkNodeJoined(std::vector<bool>* node_joined, int node) {
  if (node >= 0) (*node_joined)[static_cast<size_t>(node)] = true;
}

}  // namespace

void ReplayJoinOrder(const JoinOrderInput& in, JoinOrder* order) {
  std::vector<bool> node_joined(in.num_nodes, false);
  order->running_estimate.clear();
  order->total_cost = 0.0;
  double est_rows = 1.0;
  bool first = true;
  for (int unit : order->sequence) {
    const double e =
        StepEstimate(in, unit, first, est_rows,
                     NodeJoined(node_joined, in.subject_node[unit]),
                     NodeJoined(node_joined, in.object_node[unit]));
    est_rows = std::max(e, 1.0);
    MarkNodeJoined(&node_joined, in.subject_node[unit]);
    MarkNodeJoined(&node_joined, in.object_node[unit]);
    first = false;
    order->running_estimate.push_back(est_rows);
    order->total_cost += est_rows;
  }
}

JoinOrder OrderJoinsGreedy(const JoinOrderInput& in, bool use_planner) {
  JoinOrder out;
  const size_t n = in.cost.size();
  std::vector<bool> unit_joined(n, false);
  std::vector<bool> node_joined(in.num_nodes, false);
  double est_rows = 1.0;
  bool first = true;
  for (size_t step = 0; step < in.priority.size(); ++step) {
    int best = -1;
    double best_estimate = 0.0;
    for (int candidate : in.priority) {
      if (unit_joined[static_cast<size_t>(candidate)]) continue;
      const bool s_joined = NodeJoined(node_joined, in.subject_node[candidate]);
      const bool o_joined = NodeJoined(node_joined, in.object_node[candidate]);
      const bool connected = s_joined || o_joined;
      const double estimate =
          StepEstimate(in, candidate, first, est_rows, s_joined, o_joined);
      bool better;
      if (best < 0) {
        better = true;
      } else {
        const bool best_connected =
            first || NodeJoined(node_joined, in.subject_node[best]) ||
            NodeJoined(node_joined, in.object_node[best]);
        if (connected != best_connected) {
          better = connected;
        } else if (use_planner) {
          better = estimate < best_estimate;
        } else {
          better = false;  // keep priority (chain) order among equals
        }
      }
      if (better) {
        best = candidate;
        best_estimate = estimate;
      }
    }
    unit_joined[static_cast<size_t>(best)] = true;
    MarkNodeJoined(&node_joined, in.subject_node[best]);
    MarkNodeJoined(&node_joined, in.object_node[best]);
    est_rows = std::max(best_estimate, 1.0);
    first = false;
    out.sequence.push_back(best);
  }
  ReplayJoinOrder(in, &out);
  return out;
}

std::optional<JoinOrder> OrderJoinsDp(const JoinOrderInput& in,
                                      size_t max_units) {
  const size_t n = in.priority.size();
  // The hard n cap bounds the dp table even when a caller passes an
  // over-generous threshold (2^16 subsets, each a small Pareto frontier).
  if (n < 2 || n > max_units || n > 16 || in.num_nodes > 64) {
    return std::nullopt;
  }
  // Rank units by priority position for deterministic tie-breaks; map the
  // DP's dense indices onto priority order.
  const std::vector<int>& units = in.priority;
  const auto node_bit = [](int node) {
    return node >= 0 ? uint64_t{1} << static_cast<unsigned>(node)
                     : uint64_t{0};
  };
  std::vector<uint64_t> node_mask(n, 0);
  for (size_t i = 0; i < n; ++i) {
    node_mask[i] = node_bit(in.subject_node[units[i]]) |
                   node_bit(in.object_node[units[i]]);
  }

  // The running estimate is path-dependent (which node gets joined first
  // decides which multiplication factor applies), so one best-cost state
  // per subset is not Bellman-safe: a costlier prefix with a smaller
  // running estimate can win downstream. Each subset therefore keeps the
  // Pareto frontier over (cost, est_rows); a frontier entry records its
  // predecessor for reconstruction. The joined-node set is determined by
  // the subset alone, so it is not part of the state.
  struct State {
    double cost;
    double est_rows;
    int last;    // dense index of the last unit joined
    int parent;  // index into the frontier of the subset without `last`
  };
  const size_t num_subsets = size_t{1} << n;
  std::vector<std::vector<State>> dp(num_subsets);
  dp[0].push_back(State{0.0, 1.0, -1, -1});

  for (size_t s = 0; s < num_subsets; ++s) {
    if (dp[s].empty()) continue;
    const bool first = s == 0;
    uint64_t joined_nodes = 0;
    for (size_t i = 0; i < n; ++i) {
      if ((s & (size_t{1} << i)) != 0) joined_nodes |= node_mask[i];
    }
    // The same cross-product discipline as the greedy: extensions must
    // touch an already-joined node, unless no pending unit does.
    bool has_connected = false;
    if (!first) {
      for (size_t i = 0; i < n; ++i) {
        if ((s & (size_t{1} << i)) == 0 &&
            (joined_nodes & node_mask[i]) != 0) {
          has_connected = true;
          break;
        }
      }
    }
    for (size_t i = 0; i < n; ++i) {
      if ((s & (size_t{1} << i)) != 0) continue;
      const bool connected = (joined_nodes & node_mask[i]) != 0;
      if (has_connected && !connected) continue;
      const int unit = units[i];
      const bool s_joined =
          (joined_nodes & node_bit(in.subject_node[unit])) != 0;
      const bool o_joined =
          (joined_nodes & node_bit(in.object_node[unit])) != 0;
      std::vector<State>& next = dp[s | (size_t{1} << i)];
      // All predecessors of a subset are smaller, so dp[s] is final here
      // and parent indices into it stay stable; `next` may still be
      // pruned, but nothing references its entries yet.
      for (size_t si = 0; si < dp[s].size(); ++si) {
        const State& cur = dp[s][si];
        const double est = std::max(
            StepEstimate(in, unit, first, cur.est_rows, s_joined, o_joined),
            1.0);
        const double cost = cur.cost + est;
        bool dominated = false;
        for (const State& st : next) {
          if (st.cost <= cost && st.est_rows <= est) {
            dominated = true;
            break;
          }
        }
        if (dominated) continue;
        next.erase(std::remove_if(next.begin(), next.end(),
                                  [&](const State& st) {
                                    return cost <= st.cost &&
                                           est <= st.est_rows;
                                  }),
                   next.end());
        next.push_back(State{cost, est, static_cast<int>(i),
                             static_cast<int>(si)});
      }
    }
  }

  // The cheapest full-set state wins (first of equals: the enumeration is
  // deterministic, so so is the pick); peel back through the parents.
  const std::vector<State>& full = dp[num_subsets - 1];
  size_t best = 0;
  for (size_t i = 1; i < full.size(); ++i) {
    if (full[i].cost < full[best].cost) best = i;
  }
  JoinOrder out;
  out.used_dp = true;
  std::vector<int> rev;
  size_t s = num_subsets - 1;
  int state_idx = static_cast<int>(best);
  while (s != 0) {
    const State& st = dp[s][static_cast<size_t>(state_idx)];
    rev.push_back(units[static_cast<size_t>(st.last)]);
    s &= ~(size_t{1} << static_cast<unsigned>(st.last));
    state_idx = st.parent;
  }
  out.sequence.assign(rev.rbegin(), rev.rend());
  ReplayJoinOrder(in, &out);
  return out;
}

JoinOrder OrderJoins(const JoinOrderInput& in, bool use_planner, bool use_dp,
                     size_t dp_max_units) {
  JoinOrder greedy = OrderJoinsGreedy(in, use_planner);
  if (!use_planner || !use_dp) return greedy;
  std::optional<JoinOrder> dp = OrderJoinsDp(in, dp_max_units);
  if (!dp.has_value()) return greedy;
  // Both orders were scored by ReplayJoinOrder; the greedy sequence is in
  // the DP's search space, so dp->total_cost <= greedy.total_cost always —
  // the comparison guards the invariant (and the property test asserts it).
  return dp->total_cost <= greedy.total_cost ? *dp : greedy;
}

double Planner::PositionCost(const QueryGraph& qg, int query_ecs,
                             const std::vector<EcsId>& matches) const {
  const QueryEcs& q = qg.ecss[query_ecs];
  // Bound chain node => constant cost 1 (Sec. IV.C).
  if (!qg.nodes[q.subject_node].is_variable ||
      !qg.nodes[q.object_node].is_variable) {
    return 1.0;
  }
  // Otherwise the cost of reading eval(Q): the union of the matched ECS
  // ranges, narrowed to the bound link predicate with the smallest ranges.
  double best = -1.0;
  for (int pi : q.link_patterns) {
    const IdPattern& p = qg.patterns[pi];
    if (!p.p_bound()) continue;
    double total = 0.0;
    for (EcsId e : matches) {
      total += static_cast<double>(ecs_->PropertyRange(e, p.p).size());
    }
    if (best < 0.0 || total < best) best = total;
  }
  if (best >= 0.0) return best;
  double total = 0.0;
  for (EcsId e : matches) {
    total += static_cast<double>(ecs_->RangeOf(e).size());
  }
  return total;
}

double Planner::MultiplicationFactor(const std::vector<EcsId>& matches) const {
  uint64_t triples = 0;
  uint64_t subjects = 0;
  for (EcsId e : matches) {
    const EcsStats& s = stats_->Of(e);
    triples += s.num_triples;
    subjects += s.distinct_subjects;
  }
  if (subjects == 0) return 0.0;
  return static_cast<double>(triples) / static_cast<double>(subjects);
}

QueryPlan Planner::Plan(const QueryGraph& qg, std::vector<ChainMatch> matches,
                        bool enable) const {
  AXON_SPAN("planner.plan");
  QueryPlan plan;
  plan.chains.reserve(qg.chains.size());
  for (size_t ci = 0; ci < qg.chains.size(); ++ci) {
    ChainPlan cp;
    cp.chain_index = static_cast<int>(ci);
    cp.chain = qg.chains[ci];
    cp.matches = std::move(matches[ci]);
    size_t k = cp.chain.size();
    cp.position_cost.resize(k);
    for (size_t i = 0; i < k; ++i) {
      cp.position_cost[i] =
          PositionCost(qg, cp.chain[i], cp.matches.position_matches[i]);
    }
    // Eq. 9: cost of the chain = cost of the first position times the
    // multiplication factors of the subsequent object-subject joins.
    cp.cost = k == 0 ? 0.0 : cp.position_cost[0];
    for (size_t i = 1; i < k; ++i) {
      double mf = MultiplicationFactor(cp.matches.position_matches[i]);
      cp.cost *= std::max(mf, 1e-9);
    }

    // Inner order.
    cp.join_order.resize(k);
    std::iota(cp.join_order.begin(), cp.join_order.end(), 0);
    if (enable && k > 1) {
      // Start from the lowest-cardinality position and expand the
      // contiguous span left/right toward the cheaper neighbour.
      size_t start = std::min_element(cp.position_cost.begin(),
                                      cp.position_cost.end()) -
                     cp.position_cost.begin();
      cp.join_order.clear();
      cp.join_order.push_back(start);
      size_t lo = start;
      size_t hi = start;
      while (cp.join_order.size() < k) {
        bool has_left = lo > 0;
        bool has_right = hi + 1 < k;
        if (has_left &&
            (!has_right ||
             cp.position_cost[lo - 1] <= cp.position_cost[hi + 1])) {
          cp.join_order.push_back(--lo);
        } else if (has_right) {
          cp.join_order.push_back(++hi);
        }
      }
    }
    plan.chains.push_back(std::move(cp));
  }

  if (enable) {
    std::stable_sort(
        plan.chains.begin(), plan.chains.end(),
        [](const ChainPlan& a, const ChainPlan& b) { return a.cost < b.cost; });
  }
  return plan;
}

}  // namespace axon
