#include "engine/planner.h"

#include <algorithm>
#include <numeric>

#include "util/trace.h"

namespace axon {

double Planner::PositionCost(const QueryGraph& qg, int query_ecs,
                             const std::vector<EcsId>& matches) const {
  const QueryEcs& q = qg.ecss[query_ecs];
  // Bound chain node => constant cost 1 (Sec. IV.C).
  if (!qg.nodes[q.subject_node].is_variable ||
      !qg.nodes[q.object_node].is_variable) {
    return 1.0;
  }
  // Otherwise the cost of reading eval(Q): the union of the matched ECS
  // ranges, narrowed to the bound link predicate with the smallest ranges.
  double best = -1.0;
  for (int pi : q.link_patterns) {
    const IdPattern& p = qg.patterns[pi];
    if (!p.p_bound()) continue;
    double total = 0.0;
    for (EcsId e : matches) {
      total += static_cast<double>(ecs_->PropertyRange(e, p.p).size());
    }
    if (best < 0.0 || total < best) best = total;
  }
  if (best >= 0.0) return best;
  double total = 0.0;
  for (EcsId e : matches) {
    total += static_cast<double>(ecs_->RangeOf(e).size());
  }
  return total;
}

double Planner::MultiplicationFactor(const std::vector<EcsId>& matches) const {
  uint64_t triples = 0;
  uint64_t subjects = 0;
  for (EcsId e : matches) {
    const EcsStats& s = stats_->Of(e);
    triples += s.num_triples;
    subjects += s.distinct_subjects;
  }
  if (subjects == 0) return 0.0;
  return static_cast<double>(triples) / static_cast<double>(subjects);
}

QueryPlan Planner::Plan(const QueryGraph& qg, std::vector<ChainMatch> matches,
                        bool enable) const {
  AXON_SPAN("planner.plan");
  QueryPlan plan;
  plan.chains.reserve(qg.chains.size());
  for (size_t ci = 0; ci < qg.chains.size(); ++ci) {
    ChainPlan cp;
    cp.chain_index = static_cast<int>(ci);
    cp.chain = qg.chains[ci];
    cp.matches = std::move(matches[ci]);
    size_t k = cp.chain.size();
    cp.position_cost.resize(k);
    for (size_t i = 0; i < k; ++i) {
      cp.position_cost[i] =
          PositionCost(qg, cp.chain[i], cp.matches.position_matches[i]);
    }
    // Eq. 9: cost of the chain = cost of the first position times the
    // multiplication factors of the subsequent object-subject joins.
    cp.cost = k == 0 ? 0.0 : cp.position_cost[0];
    for (size_t i = 1; i < k; ++i) {
      double mf = MultiplicationFactor(cp.matches.position_matches[i]);
      cp.cost *= std::max(mf, 1e-9);
    }

    // Inner order.
    cp.join_order.resize(k);
    std::iota(cp.join_order.begin(), cp.join_order.end(), 0);
    if (enable && k > 1) {
      // Start from the lowest-cardinality position and expand the
      // contiguous span left/right toward the cheaper neighbour.
      size_t start = std::min_element(cp.position_cost.begin(),
                                      cp.position_cost.end()) -
                     cp.position_cost.begin();
      cp.join_order.clear();
      cp.join_order.push_back(start);
      size_t lo = start;
      size_t hi = start;
      while (cp.join_order.size() < k) {
        bool has_left = lo > 0;
        bool has_right = hi + 1 < k;
        if (has_left &&
            (!has_right ||
             cp.position_cost[lo - 1] <= cp.position_cost[hi + 1])) {
          cp.join_order.push_back(--lo);
        } else if (has_right) {
          cp.join_order.push_back(++hi);
        }
      }
    }
    plan.chains.push_back(std::move(cp));
  }

  if (enable) {
    std::stable_sort(
        plan.chains.begin(), plan.chains.end(),
        [](const ChainPlan& a, const ChainPlan& b) { return a.cost < b.cost; });
  }
  return plan;
}

}  // namespace axon
