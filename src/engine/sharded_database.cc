#include "engine/sharded_database.h"

#include <algorithm>
#include <set>

#include "cs/cs_extractor.h"
#include "ecs/ecs_extractor.h"
#include "ecs/ecs_hierarchy.h"
#include "engine/ecs_matcher.h"
#include "engine/extended_eval.h"
#include "engine/planner.h"
#include "util/cancellation.h"
#include "util/failpoint.h"
#include "util/hash.h"
#include "util/resource_governor.h"
#include "util/trace.h"

namespace axon {

namespace {

// Subject-hash shard assignment.
inline uint32_t ShardOf(TermId subject, size_t num_shards) {
  return static_cast<uint32_t>(Mix64(subject.value()) % num_shards);
}

}  // namespace

Result<ShardedDatabase> ShardedDatabase::Build(const Dataset& dataset,
                                               ShardedOptions options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  AXON_SPAN("shard.build");
  ShardedDatabase db;
  db.options_ = options.engine;
  db.dict_ = dataset.dict;
  db.pool_ = MakePool(options.engine.parallelism);
  ThreadPool* pool = db.pool_.get();

  // Deduplicated loader rows (RDF set semantics), as in Database::Build.
  LoadTripleVec load;
  {
    TripleVec triples = dataset.triples;
    ParallelSort(pool, &triples, [](const Triple& a, const Triple& b) {
      return a.Key() < b.Key();
    });
    triples.erase(std::unique(triples.begin(), triples.end()), triples.end());
    load.reserve(triples.size());
    for (const Triple& t : triples) {
      load.push_back(LoadTriple{t.s, t.p, t.o, kNoCs});
    }
  }

  // Global schema extraction — the simulated map-exchange: a deployment
  // would merge per-shard property sets into this same global CS/ECS id
  // space (subject-hash partitioning keeps every star on one shard, so the
  // local property sets are already exact).
  CsExtraction cs = ExtractCharacteristicSets(std::move(load), pool);
  EcsExtraction ecs = ExtractExtendedCharacteristicSets(cs, pool);
  db.graph_ = EcsGraph(ecs.links);
  db.stats_ = EcsStatistics::Build(ecs);
  std::vector<uint32_t> storage_rank;
  if (options.engine.use_hierarchy) {
    storage_rank = EcsHierarchy::Build(ecs.sets, cs.sets).StorageRank();
  }
  db.cs_meta_ = CsIndex::Build(cs);
  db.ecs_meta_ = EcsIndex::Build(ecs, storage_rank);

  // Shard the triples under the global ids: filtering the (CS, S, P, O)-
  // and (ECS, P, S, O)-sorted streams preserves their orders, so the
  // per-shard indexes are built exactly like the single-node ones. Each
  // shard's filter + index build is independent — one pool task per shard.
  db.shards_.resize(options.num_shards);
  ParallelFor(pool, options.num_shards, [&](size_t k) {
    CsExtraction shard_cs;
    shard_cs.properties = cs.properties;
    shard_cs.sets = cs.sets;
    for (const LoadTriple& t : cs.triples) {
      if (ShardOf(t.s, options.num_shards) == k) {
        shard_cs.triples.push_back(t);
      }
    }
    EcsExtraction shard_ecs;
    shard_ecs.sets = ecs.sets;
    shard_ecs.links = ecs.links;
    for (const EcsTriple& t : ecs.triples) {
      if (ShardOf(t.s, options.num_shards) == k) {
        shard_ecs.triples.push_back(t);
      }
    }
    auto shard = std::make_unique<Shard>();
    shard->cs = CsIndex::Build(shard_cs);
    shard->ecs = EcsIndex::Build(shard_ecs, storage_rank);
    db.shards_[k] = std::move(shard);
  });
  return db;
}

uint64_t ShardedDatabase::StorageBytes() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    total += s->cs.ByteSize() + s->ecs.ByteSize();
  }
  return total;
}

std::vector<uint64_t> ShardedDatabase::ShardTripleCounts() const {
  std::vector<uint64_t> out;
  out.reserve(shards_.size());
  for (const auto& s : shards_) out.push_back(s->cs.spo().size());
  return out;
}

BindingTable ShardedDatabase::EvalQueryEcsScattered(
    const QueryGraph& qg, int query_ecs, const std::vector<EcsId>& matches,
    ExecStats* stats, QueryContext* ctx) const {
  AXON_SPAN("shard.scatter_eval");
  const QueryEcs& q = qg.ecss[query_ecs];
  BindingTable acc;
  bool first = true;
  for (int pi : q.link_patterns) {
    const IdPattern& p = qg.patterns[pi];
    // Scatter: one task per shard scans that shard's slice of every
    // matched ECS partition. Gather: shard partials are appended in
    // shard-index order — the serial scatter loop's exact row order.
    std::vector<BindingTable> shard_parts(shards_.size());
    std::vector<ExecStats> shard_stats(shards_.size());
    ParallelFor(pool_.get(), shards_.size(), [&](size_t si) {
      BudgetScope task_scope(ctx != nullptr ? ctx->budget() : nullptr);
      if (ctx != nullptr && ctx->ShouldStop()) return;
      const Shard& shard = *shards_[si];
      BindingTable local = ScanPattern({}, p, nullptr);  // right schema
      for (EcsId e : matches) {
        RowRange r = p.p_bound() ? shard.ecs.PropertyRange(e, p.p)
                                 : shard.ecs.RangeOf(e);
        if (r.empty()) continue;
        BindingTable part =
            ScanPattern(shard.ecs.pso().slice(r), p, &shard_stats[si], ctx);
        AppendRowsByName(&local, part);
      }
      shard_parts[si] = std::move(local);
    });
    BindingTable link = ScanPattern({}, p, nullptr);  // empty, right schema
    for (size_t si = 0; si < shards_.size(); ++si) {
      if (stats != nullptr) stats->Accumulate(shard_stats[si]);
      AppendRowsByName(&link, shard_parts[si]);
    }
    if (first) {
      acc = std::move(link);
      first = false;
    } else {
      acc = HashJoin(acc, link, stats, ctx);
    }
    if (acc.num_rows() == 0) break;
  }
  return acc;
}

BindingTable ShardedDatabase::EvalStarScattered(
    const QueryGraph& qg, int node, const std::vector<CsId>& allowed_cs,
    const std::vector<int>& star_patterns, ExecStats* stats,
    QueryContext* ctx) const {
  AXON_SPAN("shard.scatter_star");
  const QueryNode& n = qg.nodes[node];
  // Output schema via the pipeline on an empty span.
  BindingTable acc = ScanPattern({}, qg.patterns[star_patterns[0]], nullptr);
  for (size_t i = 1; i < star_patterns.size(); ++i) {
    acc = HashJoin(acc, ScanPattern({}, qg.patterns[star_patterns[i]], nullptr),
                   nullptr);
  }
  // Scatter star retrieval per shard; gather in shard-index order.
  std::vector<BindingTable> shard_parts(shards_.size());
  std::vector<ExecStats> shard_stats(shards_.size());
  ParallelFor(pool_.get(), shards_.size(), [&](size_t si) {
    BudgetScope task_scope(ctx != nullptr ? ctx->budget() : nullptr);
    if (ctx != nullptr && ctx->ShouldStop()) return;
    const Shard& shard = *shards_[si];
    BindingTable local(acc.vars());
    for (CsId cs : allowed_cs) {
      if (ctx != nullptr && ctx->ShouldStop()) return;
      RowRange range = n.is_variable ? shard.cs.RangeOf(cs)
                                     : shard.cs.SubjectRange(cs, n.bound_id);
      if (range.empty()) continue;
      std::span<const Triple> rows = shard.cs.spo().slice(range);
      BindingTable per_cs;
      bool first = true;
      for (int pi : star_patterns) {
        BindingTable t =
            ScanPattern(rows, qg.patterns[pi], &shard_stats[si], ctx);
        if (first) {
          per_cs = std::move(t);
          first = false;
        } else {
          per_cs = HashJoin(per_cs, t, &shard_stats[si], ctx);
        }
        if (per_cs.num_rows() == 0) break;
      }
      AppendRowsByName(&local, per_cs);
    }
    shard_parts[si] = std::move(local);
  });
  for (size_t si = 0; si < shards_.size(); ++si) {
    if (ctx != nullptr) ctx->CheckStop();
    if (stats != nullptr) stats->Accumulate(shard_stats[si]);
    AppendRowsByName(&acc, shard_parts[si]);
  }
  return acc;
}

Result<QueryResult> ShardedDatabase::Execute(const SelectQuery& query) const {
  QueryContext ctx(options_.timeout_millis, options_.memory_budget_bytes);
  return Execute(query, &ctx);
}

Result<QueryResult> ShardedDatabase::Execute(const SelectQuery& query,
                                             QueryContext* ctx) const {
  // Coordinator-side fault boundary — the sharded twin of
  // Executor::Execute: stops and allocation failures anywhere in the
  // scatter/gather tree surface as clean Statuses.
  try {
    AXON_FAILPOINT("exec.query");
    return ExecuteImpl(query, ctx);
  } catch (const QueryStopError&) {
    return ctx->StopStatus();
  } catch (const BudgetExceededError&) {
    return Status::ResourceExhausted(
        "query exceeded memory budget of " +
        std::to_string(ctx->budget()->limit()) + " bytes");
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted(
        "query aborted: out of memory during execution");
  }
}

Result<QueryResult> ShardedDatabase::ExecuteImpl(const SelectQuery& query,
                                                 QueryContext* ctx) const {
  // Extended surface: compose over conjunctive leaves; each leaf runs the
  // scatter/gather pipeline below. The coordinator fault boundary in
  // Execute() covers the composition.
  if (!query.IsConjunctive()) {
    return EvaluateExtended(
        query, dict_,
        [this](const SelectQuery& leaf, QueryContext* c) {
          return ExecuteImpl(leaf, c);
        },
        ctx);
  }
  AXON_SPAN("query.execute_sharded");
  QueryResult result;
  std::vector<std::string> proj = query.EffectiveProjection();
  auto empty_result = [&proj]() {
    QueryResult r;
    r.table = BindingTable(proj);
    return r;
  };
  // Shared across the scatter tasks: once any worker (or the coordinator
  // loop) observes a stop the cause is sticky and everyone bails out.
  BudgetScope budget_scope(ctx->budget());
  auto stop_status = [ctx]() { return ctx->StopStatus(); };

  AXON_ASSIGN_OR_RETURN(QueryGraph qg,
                        BuildQueryGraph(query, dict_, cs_meta_.properties()));
  if (qg.impossible) return empty_result();

  std::vector<std::pair<std::string, TermId>> filters;
  for (const EqualityFilter& f : query.filters) {
    auto id = dict_.Lookup(f.value);
    if (!id.has_value()) return empty_result();
    filters.emplace_back(f.var, *id);
  }

  // Coordinator-side matching and planning over the global metadata.
  EcsMatcher matcher(&cs_meta_, &ecs_meta_, &graph_);
  std::vector<ChainMatch> matches;
  for (const auto& chain : qg.chains) {
    ChainMatch m = matcher.MatchChain(qg, chain);
    if (m.Empty()) return empty_result();
    matches.push_back(std::move(m));
  }
  Planner planner(&ecs_meta_, &stats_);
  QueryPlan plan = planner.Plan(qg, std::move(matches), options_.use_planner);

  std::vector<std::set<EcsId>> qecs_matches(qg.ecss.size());
  for (const ChainPlan& cp : plan.chains) {
    for (size_t pos = 0; pos < cp.chain.size(); ++pos) {
      qecs_matches[cp.chain[pos]].insert(
          cp.matches.position_matches[pos].begin(),
          cp.matches.position_matches[pos].end());
    }
  }
  std::vector<std::set<CsId>> node_cs(qg.nodes.size());
  std::vector<bool> node_in_chain(qg.nodes.size(), false);
  for (size_t qi = 0; qi < qg.ecss.size(); ++qi) {
    const QueryEcs& q = qg.ecss[qi];
    node_in_chain[q.subject_node] = true;
    node_in_chain[q.object_node] = true;
    for (EcsId e : qecs_matches[qi]) {
      node_cs[q.subject_node].insert(ecs_meta_.set(e).subject_cs);
      node_cs[q.object_node].insert(ecs_meta_.set(e).object_cs);
    }
  }

  // Plan-priority order with connectivity preference (the coordinator
  // joins gathered partials; a cross product would scatter huge bindings).
  std::vector<int> priority;
  {
    std::vector<bool> seen(qg.ecss.size(), false);
    for (const ChainPlan& cp : plan.chains) {
      for (size_t pos : cp.join_order) {
        int qecs = cp.chain[pos];
        if (!seen[qecs]) {
          seen[qecs] = true;
          priority.push_back(qecs);
        }
      }
    }
  }
  BindingTable current;
  bool first = true;
  std::vector<bool> ecs_joined(qg.ecss.size(), false);
  std::vector<bool> node_joined(qg.nodes.size(), false);
  for (size_t step = 0; step < priority.size(); ++step) {
    int qecs = -1;
    for (int candidate : priority) {
      if (ecs_joined[candidate]) continue;
      if (first || node_joined[qg.ecss[candidate].subject_node] ||
          node_joined[qg.ecss[candidate].object_node]) {
        qecs = candidate;
        break;
      }
      if (qecs < 0) qecs = candidate;
    }
    ecs_joined[qecs] = true;
    node_joined[qg.ecss[qecs].subject_node] = true;
    node_joined[qg.ecss[qecs].object_node] = true;
    std::vector<EcsId> pm(qecs_matches[qecs].begin(),
                          qecs_matches[qecs].end());
    BindingTable t = EvalQueryEcsScattered(qg, qecs, pm, &result.stats, ctx);
    if (ctx->ShouldStop()) return stop_status();
    if (first) {
      current = std::move(t);
      first = false;
    } else {
      current = HashJoin(current, t, &result.stats, ctx);
    }
    if (current.num_rows() == 0) return empty_result();
  }

  // Scattered star retrieval.
  for (size_t node = 0; node < qg.nodes.size(); ++node) {
    if (!qg.nodes[node].emits()) continue;
    std::vector<int> star = qg.StarPatterns(static_cast<int>(node));
    if (star.empty()) continue;

    std::vector<CsId> allowed;
    if (node_in_chain[node]) {
      allowed.assign(node_cs[node].begin(), node_cs[node].end());
    } else {
      const QueryNode& n = qg.nodes[node];
      if (!n.is_variable) {
        auto cs = cs_meta_.CsOfSubject(n.bound_id);
        if (!cs.has_value() ||
            !n.star_bitmap.IsSubsetOf(cs_meta_.set(*cs).properties)) {
          return empty_result();
        }
        allowed = {*cs};
      } else {
        allowed = cs_meta_.MatchSupersets(n.star_bitmap);
      }
    }
    if (allowed.empty()) return empty_result();

    BindingTable star_table = EvalStarScattered(
        qg, static_cast<int>(node), allowed, star, &result.stats, ctx);
    if (ctx->ShouldStop()) return stop_status();
    if (first) {
      current = std::move(star_table);
      first = false;
    } else {
      current = HashJoin(current, star_table, &result.stats, ctx);
    }
    if (current.num_rows() == 0 && current.num_cols() > 0) {
      return empty_result();
    }
  }

  for (const auto& [var, id] : filters) {
    current = FilterEquals(current, var, id, &result.stats);
  }
  for (const std::string& v : proj) {
    if (current.ColumnIndex(v) < 0) {
      return Status::Internal("sharded executor produced no column for ?" + v);
    }
  }
  current = Project(current, proj);
  if (query.distinct) current = Distinct(current);
  if (query.limit.has_value()) current = Limit(current, *query.limit);
  result.table = std::move(current);
  return result;
}

}  // namespace axon
