// Internal: pieces shared between the row-at-a-time reference operators
// (operators.cc) and the columnar batch operators (batch_ops.cc), plus the
// per-mode entry points the public dispatchers select between. Not part of
// the public exec API — include exec/operators.h instead.

#ifndef AXON_EXEC_OPERATORS_IMPL_H_
#define AXON_EXEC_OPERATORS_IMPL_H_

#include <span>
#include <string>
#include <vector>

#include "exec/bindings.h"
#include "exec/operators.h"
#include "util/hash.h"

namespace axon {

namespace exec_internal {

/// Hash of a row key (vector of ids).
struct RowKeyHash {
  size_t operator()(const std::vector<TermId>& key) const {
    uint64_t h = 0x243f6a8885a308d3ULL;
    for (TermId id : key) h = HashCombine(h, id.value());
    return static_cast<size_t>(h);
  }
};

/// Natural-join column layout: shared key columns plus the output schema
/// (probe columns first, then build-only columns) — identical between the
/// row and batch HashJoin so their outputs are bit-identical.
struct JoinLayout {
  std::vector<int> build_key;
  std::vector<int> probe_key;
  std::vector<std::string> out_vars;
  std::vector<int> build_extra;
};
JoinLayout ComputeJoinLayout(const BindingTable& build,
                             const BindingTable& probe);

/// Compatibility-join layout: left columns then right-only columns.
struct CompatLayout {
  std::vector<std::string> out_vars;
  std::vector<int> right_extra;  // right cols not shared with left
  std::vector<int> left_key;     // shared cols, left side
  std::vector<int> right_key;    // shared cols, right side
};
CompatLayout ComputeCompatLayout(const BindingTable& left,
                                 const BindingTable& right);

/// Output schema of a pattern scan: the distinct named variables in
/// S, P, O order — shared by the row scan, the batch scan and
/// PatternScanner so all three agree on column order.
std::vector<std::string> PatternVars(const IdPattern& pattern);

}  // namespace exec_internal

// The row-at-a-time reference implementations (operators.cc). These define
// the engine's semantics; the batch operators must reproduce their output,
// stats, and budget-charge behavior bit-for-bit.
namespace row_ops {

BindingTable ScanPattern(std::span<const Triple> triples,
                         const IdPattern& pattern, ExecStats* stats,
                         QueryContext* ctx);
/// The scan body without schema setup or end-of-scan accounting: appends
/// `triples`' solutions to `out` (schema = PatternVars(pattern)). Backs
/// both ScanPattern and the chunk-fed PatternScanner. `nullary_matches` is
/// ignored here (the row engine's AppendRow tracks nullary rows itself)
/// but kept for signature symmetry with batch_ops.
void ScanPatternInto(std::span<const Triple> triples, const IdPattern& pattern,
                     BindingTable* out, uint64_t* nullary_matches,
                     ExecStats* stats, QueryContext* ctx);
BindingTable HashJoin(const BindingTable& left, const BindingTable& right,
                      ExecStats* stats, QueryContext* ctx);
BindingTable FilterEquals(const BindingTable& in, const std::string& var,
                          TermId value, ExecStats* stats, QueryContext* ctx);
BindingTable SemiJoin(const BindingTable& left, const BindingTable& right,
                      ExecStats* stats, QueryContext* ctx);
BindingTable Project(const BindingTable& in,
                     const std::vector<std::string>& vars, QueryContext* ctx);
BindingTable Distinct(const BindingTable& in, QueryContext* ctx);
BindingTable Limit(const BindingTable& in, uint64_t limit);
BindingTable Offset(const BindingTable& in, uint64_t offset);
BindingTable UnionAll(const BindingTable& left, const BindingTable& right,
                      ExecStats* stats, QueryContext* ctx);
/// Compatibility join (inner/outer). Also exposed to batch_ops: the batch
/// engine delegates the rare unbound-key nested-loop case to this
/// reference implementation.
BindingTable CompatJoinImpl(const BindingTable& left, const BindingTable& right,
                            bool outer, ExecStats* stats, QueryContext* ctx);
BindingTable FilterByExpr(const BindingTable& in, const FilterExpr& expr,
                          const Dictionary& dict, ExecStats* stats,
                          QueryContext* ctx);
BindingTable OrderBy(const BindingTable& in, const std::vector<OrderKey>& keys,
                     const Dictionary& dict, ExecStats* stats,
                     QueryContext* ctx);
BindingTable GroupCount(const BindingTable& in,
                        const std::vector<std::string>& group_by,
                        const std::vector<Aggregate>& aggregates,
                        ExecStats* stats, QueryContext* ctx);

}  // namespace row_ops

namespace batch_ops {

BindingTable ScanPattern(std::span<const Triple> triples,
                         const IdPattern& pattern, ExecStats* stats,
                         QueryContext* ctx);
/// Columnar scan body; see row_ops::ScanPatternInto. `nullary_matches`
/// accumulates zero-column matches across chunks (the batch engine defers
/// the nullary-row flag to end of scan).
void ScanPatternInto(std::span<const Triple> triples, const IdPattern& pattern,
                     BindingTable* out, uint64_t* nullary_matches,
                     ExecStats* stats, QueryContext* ctx);
BindingTable HashJoin(const BindingTable& left, const BindingTable& right,
                      ExecStats* stats, QueryContext* ctx);
BindingTable FilterEquals(const BindingTable& in, const std::string& var,
                          TermId value, ExecStats* stats, QueryContext* ctx);
BindingTable SemiJoin(const BindingTable& left, const BindingTable& right,
                      ExecStats* stats, QueryContext* ctx);
BindingTable Project(const BindingTable& in,
                     const std::vector<std::string>& vars, QueryContext* ctx);
BindingTable Distinct(const BindingTable& in, QueryContext* ctx);
BindingTable Limit(const BindingTable& in, uint64_t limit);
BindingTable Offset(const BindingTable& in, uint64_t offset);
BindingTable UnionAll(const BindingTable& left, const BindingTable& right,
                      ExecStats* stats, QueryContext* ctx);
BindingTable CompatJoinImpl(const BindingTable& left, const BindingTable& right,
                            bool outer, ExecStats* stats, QueryContext* ctx);
BindingTable FilterByExpr(const BindingTable& in, const FilterExpr& expr,
                          const Dictionary& dict, ExecStats* stats,
                          QueryContext* ctx);
BindingTable OrderBy(const BindingTable& in, const std::vector<OrderKey>& keys,
                     const Dictionary& dict, ExecStats* stats,
                     QueryContext* ctx);
BindingTable GroupCount(const BindingTable& in,
                        const std::vector<std::string>& group_by,
                        const std::vector<Aggregate>& aggregates,
                        ExecStats* stats, QueryContext* ctx);

}  // namespace batch_ops

}  // namespace axon

#endif  // AXON_EXEC_OPERATORS_IMPL_H_
