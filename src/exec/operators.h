// Relational operators over BindingTables: pattern scans, natural hash
// join, merge join on sorted inputs, filter, projection, distinct.
//
// These are deliberately engine-agnostic: axonDB's chain executor and all
// three baseline engines are built from the same operators, so runtime
// differences in the benchmarks come from *index structure and plan shape*,
// not from operator implementation quality — mirroring the paper's aim of
// isolating the indexing scheme.

#ifndef AXON_EXEC_OPERATORS_H_
#define AXON_EXEC_OPERATORS_H_

#include <algorithm>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "exec/bindings.h"
#include "rdf/dictionary.h"
#include "rdf/triple.h"
#include "sparql/algebra.h"
#include "util/cancellation.h"

namespace axon {

/// Rows per page of the simulated 4 KiB disk model behind resident-mode
/// pages_read. The single definition keeps the axonDB executor and the
/// baseline engines accounting with the same page size, so simulated-I/O
/// comparisons across engines stay like for like.
inline constexpr uint64_t kSimulatedPageRows = 4096 / sizeof(Triple);

/// Execution counters for instrumentation (intermediate-result accounting
/// shown in the benches).
struct ExecStats {
  uint64_t rows_scanned = 0;       // triples read from storage
  uint64_t intermediate_rows = 0;  // rows materialized between operators
  uint64_t joins = 0;              // join operator invocations
  /// Storage pages touched by range scans. Resident mode: the simulated
  /// 4 KiB-page model over the on-disk triple layout (wall time on the
  /// in-memory substrate cannot show the disk locality the ECS-hierarchy
  /// layout buys; this metric can — fewer distinct pages when matched ECS
  /// families are stored adjacent). Paged mode: the *real* frame loads the
  /// buffer manager performed for this query, which depend on cache state.
  uint64_t pages_read = 0;
  /// Frames the buffer manager evicted during this query. Always 0 in
  /// resident mode; nonzero in paged mode once the working set exceeds the
  /// frame pool (the scale-smoke gate asserts this).
  uint64_t pages_evicted = 0;
  /// 1 when this result was answered by the baseline fallback engine after
  /// the primary failed (GovernedEngine); summed across sub-results.
  uint64_t degraded_to_baseline = 0;
  /// Largest single operator output table, in bytes. Defined over the
  /// deterministic per-operator outputs (not a concurrent RSS high-water
  /// mark), so it is bit-identical at every parallelism setting.
  uint64_t budget_bytes_peak = 0;

  void Accumulate(const ExecStats& other) {
    rows_scanned += other.rows_scanned;
    intermediate_rows += other.intermediate_rows;
    joins += other.joins;
    pages_read += other.pages_read;
    pages_evicted += other.pages_evicted;
    degraded_to_baseline += other.degraded_to_baseline;
    budget_bytes_peak = std::max(budget_bytes_peak, other.budget_bytes_peak);
  }

  void NotePeakBytes(uint64_t bytes) {
    budget_bytes_peak = std::max(budget_bytes_peak, bytes);
  }
};

/// An id-level triple pattern: kInvalidId marks an unbound position; the
/// var names give column names for unbound positions (empty string = anon,
/// the position is scanned but not output).
struct IdPattern {
  TermId s = kInvalidId;
  TermId p = kInvalidId;
  TermId o = kInvalidId;
  std::string s_var;
  std::string p_var;
  std::string o_var;

  bool s_bound() const { return s != kInvalidId; }
  bool p_bound() const { return p != kInvalidId; }
  bool o_bound() const { return o != kInvalidId; }
  int NumBound() const {
    return (s_bound() ? 1 : 0) + (p_bound() ? 1 : 0) + (o_bound() ? 1 : 0);
  }
};

/// Materializes the solutions of `pattern` over a span of candidate triples:
/// drops rows failing bound components or repeated-variable equality, and
/// outputs one column per distinct named variable. With a QueryContext the
/// scan checks for deadline/cancel/budget stops every kStopCheckRows rows
/// (one B+-tree leaf) and throws QueryStopError.
BindingTable ScanPattern(std::span<const Triple> triples,
                         const IdPattern& pattern, ExecStats* stats,
                         QueryContext* ctx = nullptr);

/// Incremental ScanPattern over a chunked triple source (the paged read
/// path, where a range arrives one pinned page at a time). Feed() appends
/// the chunk's solutions; Finish() applies the end-of-scan accounting
/// (intermediate_rows, peak bytes, the nullary-row flag) and returns the
/// table. One Feed over the whole range is exactly ScanPattern: results,
/// ExecStats, and budget charges are chunking-invariant (BindingTable's
/// canonical capacity chain makes charge totals depend only on cumulative
/// rows — the same property the batch engine relies on).
class PatternScanner {
 public:
  explicit PatternScanner(const IdPattern& pattern);

  void Feed(std::span<const Triple> chunk, ExecStats* stats,
            QueryContext* ctx = nullptr);
  BindingTable Finish(ExecStats* stats);

 private:
  IdPattern pattern_;
  bool use_batch_;
  BindingTable out_;
  uint64_t nullary_matches_ = 0;
};

/// Natural join on all shared columns (hash join, smaller side builds).
/// With no shared columns this degrades to a cross product. With a
/// QueryContext the build/probe loops check for stops every
/// kStopCheckRows rows, and the build table is charged to the query's
/// memory budget before construction.
BindingTable HashJoin(const BindingTable& left, const BindingTable& right,
                      ExecStats* stats, QueryContext* ctx = nullptr);

/// Keeps rows where column `var` equals `value`.
BindingTable FilterEquals(const BindingTable& in, const std::string& var,
                          TermId value, ExecStats* stats,
                          QueryContext* ctx = nullptr);

/// Semi-join: keeps left rows whose shared columns have a match in `right`.
BindingTable SemiJoin(const BindingTable& left, const BindingTable& right,
                      ExecStats* stats, QueryContext* ctx = nullptr);

/// Projects onto `vars` (missing vars are an error in debug builds).
BindingTable Project(const BindingTable& in, const std::vector<std::string>& vars,
                     QueryContext* ctx = nullptr);

/// Removes duplicate rows.
BindingTable Distinct(const BindingTable& in, QueryContext* ctx = nullptr);

/// Truncates to at most `limit` rows.
BindingTable Limit(const BindingTable& in, uint64_t limit);

/// Drops the first `offset` rows (ORDER BY ... OFFSET paging).
BindingTable Offset(const BindingTable& in, uint64_t offset);

/// Multiset union (UNION): the output schema is the union of both schemas
/// (left columns first); positions absent on one side fill with kInvalidId
/// (unbound). Zero-column unions collapse to at most one empty row, the
/// engine-wide nullary-table convention.
BindingTable UnionAll(const BindingTable& left, const BindingTable& right,
                      ExecStats* stats, QueryContext* ctx = nullptr);

/// SPARQL left outer join (OPTIONAL): every left row survives; rows with
/// compatible right rows extend with their bindings, the rest pad the
/// right-only columns with kInvalidId. When no shared column holds an
/// unbound value the join runs as a hash join (build on the right,
/// budget-charged); otherwise it falls back to a compatibility
/// nested-loop join, where unbound agrees with anything and the merged
/// row takes the bound value.
BindingTable LeftOuterJoin(const BindingTable& left, const BindingTable& right,
                           ExecStats* stats, QueryContext* ctx = nullptr);

/// Null-aware natural join with SPARQL compatibility semantics: like
/// HashJoin, but unbound values in shared columns agree with anything and
/// the merged row takes the bound side's value. Needed when an input can
/// carry unbound columns (outputs of UNION/OPTIONAL); plain BGP pipelines
/// keep using HashJoin.
BindingTable CompatJoin(const BindingTable& left, const BindingTable& right,
                        ExecStats* stats, QueryContext* ctx = nullptr);

/// Keeps rows satisfying `expr` under SPARQL three-valued semantics
/// (errors drop the row). Terms are interpreted against `dict`.
BindingTable FilterByExpr(const BindingTable& in, const FilterExpr& expr,
                          const Dictionary& dict, ExecStats* stats,
                          QueryContext* ctx = nullptr);

/// Stable sort by `keys` (ASC/DESC per key) in the content-defined term
/// order of exec/expr.h, with the full row (by id) as a final tie-break —
/// so every engine emits the same sequence regardless of its internal row
/// order. Pipeline breaker: the permutation and rank table are charged to
/// the memory budget.
BindingTable OrderBy(const BindingTable& in, const std::vector<OrderKey>& keys,
                     const Dictionary& dict, ExecStats* stats,
                     QueryContext* ctx = nullptr);

/// GROUP BY + COUNT aggregation. Output schema: the grouping variables
/// then one column per aggregate, whose counts bind to value-tagged ids
/// (rdf/triple.h). With no grouping variables the whole input is one
/// group and an empty input yields the SPARQL-mandated single zero row;
/// with grouping variables an empty input yields no rows. COUNT(?v)
/// counts rows where ?v is bound; DISTINCT deduplicates the counted
/// values (or whole rows for COUNT(DISTINCT *)).
BindingTable GroupCount(const BindingTable& in,
                        const std::vector<std::string>& group_by,
                        const std::vector<Aggregate>& aggregates,
                        ExecStats* stats, QueryContext* ctx = nullptr);

}  // namespace axon

#endif  // AXON_EXEC_OPERATORS_H_
