// Relational operators over BindingTables: pattern scans, natural hash
// join, merge join on sorted inputs, filter, projection, distinct.
//
// These are deliberately engine-agnostic: axonDB's chain executor and all
// three baseline engines are built from the same operators, so runtime
// differences in the benchmarks come from *index structure and plan shape*,
// not from operator implementation quality — mirroring the paper's aim of
// isolating the indexing scheme.

#ifndef AXON_EXEC_OPERATORS_H_
#define AXON_EXEC_OPERATORS_H_

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "exec/bindings.h"
#include "rdf/triple.h"

namespace axon {

/// Execution counters for instrumentation (intermediate-result accounting
/// shown in the benches).
struct ExecStats {
  uint64_t rows_scanned = 0;       // triples read from storage
  uint64_t intermediate_rows = 0;  // rows materialized between operators
  uint64_t joins = 0;              // join operator invocations
  /// Simulated storage pages touched by range scans (4 KiB pages over the
  /// on-disk triple layout). Wall time on the in-memory substrate cannot
  /// show the disk locality the ECS-hierarchy layout buys; this metric can
  /// (fewer distinct pages when matched ECS families are stored adjacent).
  uint64_t pages_read = 0;

  void Accumulate(const ExecStats& other) {
    rows_scanned += other.rows_scanned;
    intermediate_rows += other.intermediate_rows;
    joins += other.joins;
    pages_read += other.pages_read;
  }
};

/// An id-level triple pattern: kInvalidId marks an unbound position; the
/// var names give column names for unbound positions (empty string = anon,
/// the position is scanned but not output).
struct IdPattern {
  TermId s = kInvalidId;
  TermId p = kInvalidId;
  TermId o = kInvalidId;
  std::string s_var;
  std::string p_var;
  std::string o_var;

  bool s_bound() const { return s != kInvalidId; }
  bool p_bound() const { return p != kInvalidId; }
  bool o_bound() const { return o != kInvalidId; }
  int NumBound() const {
    return (s_bound() ? 1 : 0) + (p_bound() ? 1 : 0) + (o_bound() ? 1 : 0);
  }
};

/// Materializes the solutions of `pattern` over a span of candidate triples:
/// drops rows failing bound components or repeated-variable equality, and
/// outputs one column per distinct named variable.
BindingTable ScanPattern(std::span<const Triple> triples,
                         const IdPattern& pattern, ExecStats* stats);

/// Natural join on all shared columns (hash join, smaller side builds).
/// With no shared columns this degrades to a cross product.
BindingTable HashJoin(const BindingTable& left, const BindingTable& right,
                      ExecStats* stats);

/// Keeps rows where column `var` equals `value`.
BindingTable FilterEquals(const BindingTable& in, const std::string& var,
                          TermId value, ExecStats* stats);

/// Semi-join: keeps left rows whose shared columns have a match in `right`.
BindingTable SemiJoin(const BindingTable& left, const BindingTable& right,
                      ExecStats* stats);

/// Projects onto `vars` (missing vars are an error in debug builds).
BindingTable Project(const BindingTable& in, const std::vector<std::string>& vars);

/// Removes duplicate rows.
BindingTable Distinct(const BindingTable& in);

/// Truncates to at most `limit` rows.
BindingTable Limit(const BindingTable& in, uint64_t limit);

}  // namespace axon

#endif  // AXON_EXEC_OPERATORS_H_
