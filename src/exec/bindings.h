// Binding tables: the tuple streams flowing between query operators.
//
// A BindingTable is a column-named relation of TermIds — one column per
// query variable, one row per partial solution. Both axonDB's executor and
// the baseline engines produce and consume these, so cross-engine result
// comparison is a straight multiset equality.

#ifndef AXON_EXEC_BINDINGS_H_
#define AXON_EXEC_BINDINGS_H_

#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "rdf/triple.h"

namespace axon {

class Batch;  // exec/batch.h — columnar 1024-row chunk

class BindingTable {
 public:
  BindingTable() = default;
  explicit BindingTable(std::vector<std::string> vars)
      : vars_(std::move(vars)) {}

  const std::vector<std::string>& vars() const { return vars_; }
  size_t num_cols() const { return vars_.size(); }
  size_t num_rows() const {
    return vars_.empty() ? (nullary_rows_ ? 1 : 0)
                         : data_.size() / vars_.size();
  }
  bool empty() const { return num_rows() == 0; }

  /// Column index of `var`, or -1.
  int ColumnIndex(const std::string& var) const;

  TermId at(size_t row, size_t col) const {
    return data_[row * vars_.size() + col];
  }

  std::span<const TermId> row(size_t i) const {
    return std::span<const TermId>(data_).subspan(i * vars_.size(),
                                                  vars_.size());
  }

  void AppendRow(std::span<const TermId> values);
  void AppendRow(std::initializer_list<TermId> values) {
    AppendRow(std::span<const TermId>(values.begin(), values.size()));
  }

  /// Appends a columnar batch (batch.num_cols() must equal num_cols(),
  /// which must be nonzero): one capacity check / budget charge for the
  /// whole batch, then a column-at-a-time transpose into the row-major
  /// storage. This is how the batch operators emit output — the budget
  /// and stop machinery runs at batch granularity, not per row.
  void AppendBatch(const Batch& batch);

  /// Bulk-appends rows [begin, end) of `src`, whose schema must be
  /// column-for-column identical to this table's. One capacity check,
  /// then a flat memcpy-style copy of the row-major slab — the fast path
  /// for Limit/Offset/merge-in-order unions.
  void AppendRows(const BindingTable& src, size_t begin, size_t end);

  /// Bytes held by the row storage (the operator-buffer size the per-query
  /// memory budget accounts for).
  uint64_t ByteSize() const { return data_.size() * sizeof(TermId); }

  /// Marks a zero-column table as containing the single empty row (the
  /// identity of the natural join). Zero-column tables default to empty.
  void SetNullaryRow(bool present) { nullary_rows_ = present; }

  /// Rows as a flat vector (row-major). For tests.
  const std::vector<TermId>& flat() const { return data_; }

  void Reserve(size_t rows) { GrowFor(rows * vars_.size()); }

  /// Sorted multiset of rows projected onto `vars` — the canonical form
  /// used to compare results across engines regardless of row/column order.
  std::vector<std::vector<TermId>> CanonicalRows(
      const std::vector<std::string>& vars) const;

 private:
  /// Ensures capacity for `needed` ids, charging the growth to the
  /// thread-local memory budget (BudgetScope) *before* allocating — tables
  /// are the engine's dominant intermediate allocation, so budget
  /// enforcement rides the amortized capacity-doubling path and costs the
  /// hot AppendRow loop nothing.
  void GrowFor(size_t needed);

  std::vector<std::string> vars_;
  std::vector<TermId> data_;
  bool nullary_rows_ = false;
};

/// Appends src's rows to dst, mapping columns by name (schemas may order
/// columns differently; columns missing from src fill with kInvalidId).
/// The scatter/gather merge primitive of the parallel executors. In batch
/// mode this is a flat slab copy when the schemas match column-for-column,
/// and a blocked column-at-a-time transpose otherwise; in row mode it is
/// the per-row reference loop.
void AppendRowsByName(BindingTable* dst, const BindingTable& src);

}  // namespace axon

#endif  // AXON_EXEC_BINDINGS_H_
