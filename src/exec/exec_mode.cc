#include "exec/exec_mode.h"

#include <atomic>

namespace axon {

namespace {

std::atomic<int> g_default_mode{static_cast<int>(ExecMode::kBatch)};

// Thread-local override installed by ExecModeScope; -1 = none.
thread_local int t_override_mode = -1;

}  // namespace

ExecMode DefaultExecMode() {
  return static_cast<ExecMode>(g_default_mode.load(std::memory_order_relaxed));
}

void SetDefaultExecMode(ExecMode mode) {
  g_default_mode.store(static_cast<int>(mode), std::memory_order_relaxed);
}

ExecMode CurrentExecMode() {
  int over = t_override_mode;
  return over >= 0 ? static_cast<ExecMode>(over) : DefaultExecMode();
}

ExecModeScope::ExecModeScope(ExecMode mode) : prev_(t_override_mode) {
  t_override_mode = static_cast<int>(mode);
}

ExecModeScope::~ExecModeScope() { t_override_mode = prev_; }

}  // namespace axon
