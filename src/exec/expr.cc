#include "exec/expr.h"

#include <cstdlib>

namespace axon {

namespace {

constexpr char kXsd[] = "http://www.w3.org/2001/XMLSchema#";

bool IsNumericDatatype(const std::string& dt) {
  if (dt.size() <= sizeof(kXsd) - 1 || dt.compare(0, sizeof(kXsd) - 1, kXsd) != 0) {
    return false;
  }
  const std::string local = dt.substr(sizeof(kXsd) - 1);
  return local == "integer" || local == "decimal" || local == "double" ||
         local == "float" || local == "long" || local == "int" ||
         local == "short" || local == "byte" ||
         local == "nonNegativeInteger" || local == "positiveInteger" ||
         local == "negativeInteger" || local == "nonPositiveInteger" ||
         local == "unsignedLong" || local == "unsignedInt";
}

bool ParseNumeric(const std::string& lexical, double* out) {
  if (lexical.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(lexical.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

TermSortKey KeyFromTerm(const Term& t) {
  TermSortKey k;
  k.str = t.Canonical();
  switch (t.kind) {
    case TermKind::kBlank:
      k.cls = 1;
      break;
    case TermKind::kIri:
      k.cls = 2;
      break;
    case TermKind::kLiteral:
      k.cls = (IsNumericDatatype(t.datatype) && ParseNumeric(t.value, &k.num))
                  ? 3
                  : 4;
      break;
  }
  return k;
}

}  // namespace

TermSortKey MakeTermSortKey(TermId id, const Dictionary& dict) {
  TermSortKey k;
  if (id == kInvalidId) return k;  // cls 0: unbound sorts first
  if (IsValueId(id)) {
    const uint32_t v = ValueIdPayload(id);
    k.cls = 3;
    k.num = static_cast<double>(v);
    k.str = "\"" + std::to_string(v) + "\"^^<" + kXsd + "integer>";
    return k;
  }
  auto term = dict.GetTerm(id);
  if (!term.ok()) {
    // Out-of-dictionary id: deterministic fallback bucket below everything.
    k.str = std::to_string(id.value());
    return k;
  }
  return KeyFromTerm(term.value());
}

int CompareTermSortKeys(const TermSortKey& a, const TermSortKey& b) {
  if (a.cls != b.cls) return a.cls < b.cls ? -1 : 1;
  if (a.cls == 3 && a.num != b.num) return a.num < b.num ? -1 : 1;
  const int c = a.str.compare(b.str);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

FilterEvaluator::FilterEvaluator(const FilterExpr& expr,
                                 const BindingTable& table,
                                 const Dictionary& dict)
    : expr_(expr), table_(table), dict_(dict) {
  // Resolve variable columns and constant keys once.
  const auto walk = [this](const FilterExpr& e, const auto& self) -> void {
    if (e.op == FilterOp::kVar || e.op == FilterOp::kBound) {
      columns_.emplace(e.var, table_.ColumnIndex(e.var));
    } else if (e.op == FilterOp::kConst) {
      const_keys_.emplace(&e, KeyFromTerm(e.value));
    }
    for (const FilterExpr& a : e.args) self(a, self);
  };
  walk(expr_, walk);
}

const TermSortKey& FilterEvaluator::KeyForId(TermId id) const {
  auto it = id_keys_.find(id.value());
  if (it == id_keys_.end()) {
    it = id_keys_.emplace(id.value(), MakeTermSortKey(id, dict_)).first;
  }
  return it->second;
}

bool FilterEvaluator::OperandKey(const FilterExpr& e, size_t row,
                                 const TermSortKey** out) const {
  if (e.op == FilterOp::kConst) {
    *out = &const_keys_.at(&e);
    return true;
  }
  if (e.op != FilterOp::kVar) return false;
  const int col = columns_.at(e.var);
  if (col < 0) return false;
  const TermId id = table_.at(row, static_cast<size_t>(col));
  if (id == kInvalidId) return false;  // comparing unbound is a type error
  *out = &KeyForId(id);
  return true;
}

Ebv FilterEvaluator::Eval(size_t row) const { return EvalNode(expr_, row); }

Ebv FilterEvaluator::EvalNode(const FilterExpr& e, size_t row) const {
  switch (e.op) {
    case FilterOp::kBound: {
      const int col = columns_.at(e.var);
      const bool bound =
          col >= 0 && table_.at(row, static_cast<size_t>(col)) != kInvalidId;
      return bound ? Ebv::kTrue : Ebv::kFalse;
    }
    case FilterOp::kNot: {
      const Ebv v = EvalNode(e.args[0], row);
      if (v == Ebv::kError) return Ebv::kError;
      return v == Ebv::kTrue ? Ebv::kFalse : Ebv::kTrue;
    }
    case FilterOp::kAnd: {
      const Ebv a = EvalNode(e.args[0], row);
      if (a == Ebv::kFalse) return Ebv::kFalse;
      const Ebv b = EvalNode(e.args[1], row);
      if (b == Ebv::kFalse) return Ebv::kFalse;
      if (a == Ebv::kError || b == Ebv::kError) return Ebv::kError;
      return Ebv::kTrue;
    }
    case FilterOp::kOr: {
      const Ebv a = EvalNode(e.args[0], row);
      if (a == Ebv::kTrue) return Ebv::kTrue;
      const Ebv b = EvalNode(e.args[1], row);
      if (b == Ebv::kTrue) return Ebv::kTrue;
      if (a == Ebv::kError || b == Ebv::kError) return Ebv::kError;
      return Ebv::kFalse;
    }
    case FilterOp::kEq:
    case FilterOp::kNe:
    case FilterOp::kLt:
    case FilterOp::kLe:
    case FilterOp::kGt:
    case FilterOp::kGe: {
      const TermSortKey* a = nullptr;
      const TermSortKey* b = nullptr;
      if (!OperandKey(e.args[0], row, &a) || !OperandKey(e.args[1], row, &b)) {
        return Ebv::kError;
      }
      // Value equality: numeric pairs by value ("05" = "5"), everything
      // else by canonical form within the same term class.
      const bool both_numeric = a->cls == 3 && b->cls == 3;
      if (e.op == FilterOp::kEq || e.op == FilterOp::kNe) {
        const bool eq = both_numeric ? a->num == b->num
                                     : (a->cls == b->cls && a->str == b->str);
        return (eq == (e.op == FilterOp::kEq)) ? Ebv::kTrue : Ebv::kFalse;
      }
      // Relational comparison is defined for numeric pairs, and within
      // IRIs / non-numeric literals by canonical form; anything else is a
      // type error.
      int c;
      if (both_numeric) {
        c = a->num < b->num ? -1 : (a->num > b->num ? 1 : 0);
      } else if (a->cls == b->cls && (a->cls == 2 || a->cls == 4)) {
        const int sc = a->str.compare(b->str);
        c = sc < 0 ? -1 : (sc > 0 ? 1 : 0);
      } else {
        return Ebv::kError;
      }
      bool keep;
      switch (e.op) {
        case FilterOp::kLt:
          keep = c < 0;
          break;
        case FilterOp::kLe:
          keep = c <= 0;
          break;
        case FilterOp::kGt:
          keep = c > 0;
          break;
        default:
          keep = c >= 0;
          break;
      }
      return keep ? Ebv::kTrue : Ebv::kFalse;
    }
    case FilterOp::kVar:
    case FilterOp::kConst:
      // A bare term has no effective boolean value in our fragment.
      return Ebv::kError;
  }
  return Ebv::kError;
}

}  // namespace axon
