#include "exec/operators.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <numeric>
#include <set>
#include <unordered_map>

#include "exec/exec_mode.h"
#include "exec/expr.h"
#include "exec/operators_impl.h"
#include "util/trace.h"

// This file holds the row-at-a-time reference implementations (row_ops) and
// the public entry points, which dispatch between row_ops and the columnar
// batch_ops (batch_ops.cc) on CurrentExecMode(). The row implementations
// are the executable semantics spec: the batch engine is required to match
// their results, ExecStats, and budget charges bit-for-bit, which the
// differential tests enforce.

namespace axon {

namespace exec_internal {

std::vector<std::string> PatternVars(const IdPattern& pattern) {
  // Distinct named variables in S, P, O order.
  std::vector<std::string> vars;
  auto add_var = [&vars](const std::string& v) {
    if (!v.empty() && std::find(vars.begin(), vars.end(), v) == vars.end()) {
      vars.push_back(v);
    }
  };
  if (!pattern.s_bound()) add_var(pattern.s_var);
  if (!pattern.p_bound()) add_var(pattern.p_var);
  if (!pattern.o_bound()) add_var(pattern.o_var);
  return vars;
}

JoinLayout ComputeJoinLayout(const BindingTable& build,
                             const BindingTable& probe) {
  JoinLayout lay;
  for (size_t i = 0; i < build.vars().size(); ++i) {
    int j = probe.ColumnIndex(build.vars()[i]);
    if (j >= 0) {
      lay.build_key.push_back(static_cast<int>(i));
      lay.probe_key.push_back(j);
    }
  }
  // Output schema: probe columns then build-only columns (order is
  // irrelevant to correctness; CanonicalRows normalizes for comparison).
  lay.out_vars = probe.vars();
  for (size_t i = 0; i < build.vars().size(); ++i) {
    if (probe.ColumnIndex(build.vars()[i]) < 0) {
      lay.out_vars.push_back(build.vars()[i]);
      lay.build_extra.push_back(static_cast<int>(i));
    }
  }
  return lay;
}

CompatLayout ComputeCompatLayout(const BindingTable& left,
                                 const BindingTable& right) {
  CompatLayout lay;
  lay.out_vars = left.vars();
  for (size_t i = 0; i < right.vars().size(); ++i) {
    int j = left.ColumnIndex(right.vars()[i]);
    if (j >= 0) {
      lay.left_key.push_back(j);
      lay.right_key.push_back(static_cast<int>(i));
    } else {
      lay.out_vars.push_back(right.vars()[i]);
      lay.right_extra.push_back(static_cast<int>(i));
    }
  }
  return lay;
}

}  // namespace exec_internal

namespace row_ops {

using exec_internal::CompatLayout;
using exec_internal::ComputeCompatLayout;
using exec_internal::ComputeJoinLayout;
using exec_internal::JoinLayout;
using exec_internal::RowKeyHash;

void ScanPatternInto(std::span<const Triple> triples, const IdPattern& pattern,
                     BindingTable* out_table, uint64_t* /*nullary_matches*/,
                     ExecStats* stats, QueryContext* ctx) {
  BindingTable& out = *out_table;
  const std::vector<std::string>& vars = out.vars();
  std::vector<TermId> row(vars.size());
  // The triples-scanned counter is flushed per leaf-sized chunk (not once
  // up front) so a stopped scan reports only the rows it actually visited —
  // the cancellation-latency tests bound post-cancel work through it.
  size_t counted = 0;
  for (size_t idx = 0; idx < triples.size(); ++idx) {
    if ((idx % kStopCheckRows) == 0) {
      AXON_COUNTER_ADD("exec.triples_scanned", idx - counted);
      counted = idx;
      if (ctx != nullptr) ctx->CheckStop();
    }
    const Triple& t = triples[idx];
    if (stats != nullptr) ++stats->rows_scanned;
    if (pattern.s_bound() && t.s != pattern.s) continue;
    if (pattern.p_bound() && t.p != pattern.p) continue;
    if (pattern.o_bound() && t.o != pattern.o) continue;
    // Repeated-variable constraints (e.g. ?x :p ?x).
    bool ok = true;
    for (size_t i = 0; i < vars.size(); ++i) {
      TermId v = kInvalidId;
      if (!pattern.s_bound() && pattern.s_var == vars[i]) v = t.s;
      if (!pattern.p_bound() && pattern.p_var == vars[i]) {
        if (v != kInvalidId && v != t.p) {
          ok = false;
          break;
        }
        v = t.p;
      }
      if (!pattern.o_bound() && pattern.o_var == vars[i]) {
        if (v != kInvalidId && v != t.o) {
          ok = false;
          break;
        }
        v = t.o;
      }
      row[i] = v;
    }
    if (!ok) continue;
    out.AppendRow(row);
  }
  AXON_COUNTER_ADD("exec.triples_scanned", triples.size() - counted);
}

BindingTable ScanPattern(std::span<const Triple> triples,
                         const IdPattern& pattern, ExecStats* stats,
                         QueryContext* ctx) {
  BindingTable out(exec_internal::PatternVars(pattern));
  ScanPatternInto(triples, pattern, &out, nullptr, stats, ctx);
  if (stats != nullptr) {
    stats->intermediate_rows += out.num_rows();
    stats->NotePeakBytes(out.ByteSize());
  }
  return out;
}

BindingTable HashJoin(const BindingTable& left, const BindingTable& right,
                      ExecStats* stats, QueryContext* ctx) {
  if (stats != nullptr) ++stats->joins;
  // Build on the smaller side.
  const BindingTable& build = left.num_rows() <= right.num_rows() ? left : right;
  const BindingTable& probe = left.num_rows() <= right.num_rows() ? right : left;

  JoinLayout lay = ComputeJoinLayout(build, probe);
  BindingTable out(lay.out_vars);

  if (build.num_rows() == 0 || probe.num_rows() == 0) return out;

  // Charge the hash-table build to the query's memory budget up front: a
  // deterministic per-row estimate (bucket slot + key copy + row index),
  // taken before the table allocates so an over-budget build never grows.
  if (MemoryBudget* budget = BudgetScope::Current()) {
    budget->Charge(build.num_rows() *
                   (2 * sizeof(size_t) + lay.build_key.size() * sizeof(TermId)));
  }
  std::unordered_map<std::vector<TermId>, std::vector<size_t>, RowKeyHash>
      table;
  table.reserve(build.num_rows());
  std::vector<TermId> key(lay.build_key.size());
  for (size_t r = 0; r < build.num_rows(); ++r) {
    if (ctx != nullptr && (r % kStopCheckRows) == 0) ctx->CheckStop();
    for (size_t k = 0; k < lay.build_key.size(); ++k) {
      key[k] = build.at(r, lay.build_key[k]);
    }
    table[key].push_back(r);
  }

  std::vector<TermId> out_row(lay.out_vars.size());
  for (size_t r = 0; r < probe.num_rows(); ++r) {
    if (ctx != nullptr && (r % kStopCheckRows) == 0) ctx->CheckStop();
    for (size_t k = 0; k < lay.probe_key.size(); ++k) {
      key[k] = probe.at(r, lay.probe_key[k]);
    }
    auto it = table.find(key);
    if (it == table.end()) continue;
    for (size_t br : it->second) {
      size_t c = 0;
      for (; c < probe.vars().size(); ++c) out_row[c] = probe.at(r, c);
      for (size_t e = 0; e < lay.build_extra.size(); ++e) {
        out_row[c + e] = build.at(br, lay.build_extra[e]);
      }
      out.AppendRow(out_row);
    }
  }
  if (stats != nullptr) {
    stats->intermediate_rows += out.num_rows();
    stats->NotePeakBytes(out.ByteSize());
  }
  AXON_COUNTER_ADD("exec.join_rows_out", out.num_rows());
  return out;
}

BindingTable FilterEquals(const BindingTable& in, const std::string& var,
                          TermId value, ExecStats* stats, QueryContext* ctx) {
  int col = in.ColumnIndex(var);
  BindingTable out(in.vars());
  if (col < 0) return out;
  for (size_t r = 0; r < in.num_rows(); ++r) {
    if (ctx != nullptr && (r % kStopCheckRows) == 0) ctx->CheckStop();
    if (in.at(r, col) == value) out.AppendRow(in.row(r));
  }
  if (stats != nullptr) stats->intermediate_rows += out.num_rows();
  return out;
}

BindingTable SemiJoin(const BindingTable& left, const BindingTable& right,
                      ExecStats* stats, QueryContext* ctx) {
  if (stats != nullptr) ++stats->joins;
  std::vector<int> left_key;
  std::vector<int> right_key;
  for (size_t i = 0; i < left.vars().size(); ++i) {
    int j = right.ColumnIndex(left.vars()[i]);
    if (j >= 0) {
      left_key.push_back(static_cast<int>(i));
      right_key.push_back(j);
    }
  }
  BindingTable out(left.vars());
  if (left_key.empty()) {
    // No shared columns: left survives iff right is non-empty.
    if (right.num_rows() == 0) return out;
    for (size_t r = 0; r < left.num_rows(); ++r) {
      if (ctx != nullptr && (r % kStopCheckRows) == 0) ctx->CheckStop();
      out.AppendRow(left.row(r));
    }
    return out;
  }
  std::set<std::vector<TermId>> keys;
  std::vector<TermId> key(right_key.size());
  for (size_t r = 0; r < right.num_rows(); ++r) {
    for (size_t k = 0; k < right_key.size(); ++k) {
      key[k] = right.at(r, right_key[k]);
    }
    keys.insert(key);
  }
  for (size_t r = 0; r < left.num_rows(); ++r) {
    if (ctx != nullptr && (r % kStopCheckRows) == 0) ctx->CheckStop();
    for (size_t k = 0; k < left_key.size(); ++k) {
      key[k] = left.at(r, left_key[k]);
    }
    if (keys.count(key)) out.AppendRow(left.row(r));
  }
  if (stats != nullptr) stats->intermediate_rows += out.num_rows();
  return out;
}

BindingTable Project(const BindingTable& in,
                     const std::vector<std::string>& vars, QueryContext* ctx) {
  std::vector<int> cols;
  cols.reserve(vars.size());
  for (const std::string& v : vars) {
    int c = in.ColumnIndex(v);
    assert(c >= 0 && "projecting a missing column");
    cols.push_back(c);
  }
  BindingTable out(vars);
  std::vector<TermId> row(vars.size());
  for (size_t r = 0; r < in.num_rows(); ++r) {
    if (ctx != nullptr && (r % kStopCheckRows) == 0) ctx->CheckStop();
    for (size_t i = 0; i < cols.size(); ++i) row[i] = in.at(r, cols[i]);
    out.AppendRow(row);
  }
  return out;
}

BindingTable Distinct(const BindingTable& in, QueryContext* ctx) {
  BindingTable out(in.vars());
  std::set<std::vector<TermId>> seen;
  for (size_t r = 0; r < in.num_rows(); ++r) {
    if (ctx != nullptr && (r % kStopCheckRows) == 0) ctx->CheckStop();
    std::vector<TermId> row(in.row(r).begin(), in.row(r).end());
    if (seen.insert(row).second) out.AppendRow(row);
  }
  if (in.num_cols() == 0 && in.num_rows() > 0) out.SetNullaryRow(true);
  return out;
}

BindingTable Limit(const BindingTable& in, uint64_t limit) {
  BindingTable out(in.vars());
  uint64_t n = std::min<uint64_t>(limit, in.num_rows());
  for (uint64_t r = 0; r < n; ++r) out.AppendRow(in.row(r));
  if (in.num_cols() == 0 && in.num_rows() > 0 && limit > 0) {
    out.SetNullaryRow(true);
  }
  return out;
}

BindingTable Offset(const BindingTable& in, uint64_t offset) {
  BindingTable out(in.vars());
  if (in.num_cols() == 0) {
    out.SetNullaryRow(in.num_rows() > offset);
    return out;
  }
  for (uint64_t r = offset; r < in.num_rows(); ++r) out.AppendRow(in.row(r));
  return out;
}

BindingTable UnionAll(const BindingTable& left, const BindingTable& right,
                      ExecStats* stats, QueryContext* ctx) {
  std::vector<std::string> out_vars = left.vars();
  for (const std::string& v : right.vars()) {
    if (std::find(out_vars.begin(), out_vars.end(), v) == out_vars.end()) {
      out_vars.push_back(v);
    }
  }
  BindingTable out(out_vars);
  if (out_vars.empty()) {
    out.SetNullaryRow(left.num_rows() + right.num_rows() > 0);
    return out;
  }
  std::vector<TermId> row(out_vars.size());
  for (const BindingTable* side : {&left, &right}) {
    std::vector<int> cols(out_vars.size());
    for (size_t i = 0; i < out_vars.size(); ++i) {
      cols[i] = side->ColumnIndex(out_vars[i]);
    }
    for (size_t r = 0; r < side->num_rows(); ++r) {
      if (ctx != nullptr && (r % kStopCheckRows) == 0) ctx->CheckStop();
      for (size_t i = 0; i < cols.size(); ++i) {
        row[i] = cols[i] >= 0 ? side->at(r, static_cast<size_t>(cols[i]))
                              : kInvalidId;
      }
      out.AppendRow(row);
    }
  }
  if (stats != nullptr) {
    stats->intermediate_rows += out.num_rows();
    stats->NotePeakBytes(out.ByteSize());
  }
  return out;
}

// Shared implementation of the compatibility joins: inner (CompatJoin) and
// left outer (LeftOuterJoin). `outer` controls whether unmatched left rows
// survive padded with unbound right columns.
BindingTable CompatJoinImpl(const BindingTable& left, const BindingTable& right,
                            bool outer, ExecStats* stats, QueryContext* ctx) {
  if (stats != nullptr) ++stats->joins;
  // Output schema: left columns then right-only columns.
  CompatLayout lay = ComputeCompatLayout(left, right);
  BindingTable out(lay.out_vars);
  if (lay.out_vars.empty()) {
    // Both sides nullary: the join is pure existence logic.
    out.SetNullaryRow(left.num_rows() > 0 &&
                      (outer || right.num_rows() > 0));
    return out;
  }
  if (left.num_cols() == 0 && left.num_rows() == 0) return out;

  // Shared columns holding unbound values (possible after nested
  // OPTIONAL/UNION) force the compatibility join: unbound agrees with
  // anything, which a hash on exact key values cannot express.
  bool has_nulls = false;
  for (size_t k = 0; k < lay.left_key.size() && !has_nulls; ++k) {
    for (size_t r = 0; r < left.num_rows() && !has_nulls; ++r) {
      if (left.at(r, static_cast<size_t>(lay.left_key[k])) == kInvalidId) {
        has_nulls = true;
      }
    }
    for (size_t r = 0; r < right.num_rows() && !has_nulls; ++r) {
      if (right.at(r, static_cast<size_t>(lay.right_key[k])) == kInvalidId) {
        has_nulls = true;
      }
    }
  }

  std::vector<TermId> out_row(lay.out_vars.size());
  auto emit_match = [&](size_t lr, size_t rr) {
    for (size_t c = 0; c < left.num_cols(); ++c) {
      TermId v = left.at(lr, c);
      if (v == kInvalidId) {
        // The merged solution takes the right side's binding when the
        // left one is unbound (compatibility-join semantics).
        int rc = right.ColumnIndex(left.vars()[c]);
        if (rc >= 0) v = right.at(rr, static_cast<size_t>(rc));
      }
      out_row[c] = v;
    }
    for (size_t e = 0; e < lay.right_extra.size(); ++e) {
      out_row[left.num_cols() + e] =
          right.at(rr, static_cast<size_t>(lay.right_extra[e]));
    }
    out.AppendRow(out_row);
  };
  auto emit_unmatched = [&](size_t lr) {
    for (size_t c = 0; c < left.num_cols(); ++c) out_row[c] = left.at(lr, c);
    for (size_t e = 0; e < lay.right_extra.size(); ++e) {
      out_row[left.num_cols() + e] = kInvalidId;
    }
    out.AppendRow(out_row);
  };

  if (!has_nulls) {
    // Hash path: build on the right, probe with every left row.
    if (MemoryBudget* budget = BudgetScope::Current()) {
      budget->Charge(right.num_rows() * (2 * sizeof(size_t) +
                                         lay.right_key.size() * sizeof(TermId)));
    }
    std::unordered_map<std::vector<TermId>, std::vector<size_t>, RowKeyHash>
        table;
    table.reserve(right.num_rows());
    std::vector<TermId> key(lay.right_key.size());
    for (size_t r = 0; r < right.num_rows(); ++r) {
      if (ctx != nullptr && (r % kStopCheckRows) == 0) ctx->CheckStop();
      for (size_t k = 0; k < lay.right_key.size(); ++k) {
        key[k] = right.at(r, static_cast<size_t>(lay.right_key[k]));
      }
      table[key].push_back(r);
    }
    for (size_t lr = 0; lr < left.num_rows(); ++lr) {
      if (ctx != nullptr && (lr % kStopCheckRows) == 0) ctx->CheckStop();
      for (size_t k = 0; k < lay.left_key.size(); ++k) {
        key[k] = left.at(lr, static_cast<size_t>(lay.left_key[k]));
      }
      auto it = table.find(key);
      if (it == table.end()) {
        if (outer) emit_unmatched(lr);
        continue;
      }
      for (size_t rr : it->second) emit_match(lr, rr);
    }
  } else {
    for (size_t lr = 0; lr < left.num_rows(); ++lr) {
      if (ctx != nullptr && (lr % kStopCheckRows) == 0) ctx->CheckStop();
      bool matched = false;
      for (size_t rr = 0; rr < right.num_rows(); ++rr) {
        if (ctx != nullptr && (rr % kStopCheckRows) == kStopCheckRows - 1) {
          ctx->CheckStop();
        }
        bool compatible = true;
        for (size_t k = 0; k < lay.left_key.size(); ++k) {
          TermId lv = left.at(lr, static_cast<size_t>(lay.left_key[k]));
          TermId rv = right.at(rr, static_cast<size_t>(lay.right_key[k]));
          if (lv != kInvalidId && rv != kInvalidId && lv != rv) {
            compatible = false;
            break;
          }
        }
        if (!compatible) continue;
        matched = true;
        emit_match(lr, rr);
      }
      if (outer && !matched) emit_unmatched(lr);
    }
  }
  if (stats != nullptr) {
    stats->intermediate_rows += out.num_rows();
    stats->NotePeakBytes(out.ByteSize());
  }
  return out;
}

BindingTable FilterByExpr(const BindingTable& in, const FilterExpr& expr,
                          const Dictionary& dict, ExecStats* stats,
                          QueryContext* ctx) {
  BindingTable out(in.vars());
  FilterEvaluator eval(expr, in, dict);
  if (in.num_cols() == 0) {
    out.SetNullaryRow(in.num_rows() > 0 && eval.Keep(0));
    return out;
  }
  for (size_t r = 0; r < in.num_rows(); ++r) {
    if (ctx != nullptr && (r % kStopCheckRows) == 0) ctx->CheckStop();
    if (eval.Keep(r)) out.AppendRow(in.row(r));
  }
  if (stats != nullptr) stats->intermediate_rows += out.num_rows();
  return out;
}

BindingTable OrderBy(const BindingTable& in, const std::vector<OrderKey>& keys,
                     const Dictionary& dict, ExecStats* stats,
                     QueryContext* ctx) {
  BindingTable out(in.vars());
  if (in.num_cols() == 0) {
    out.SetNullaryRow(in.num_rows() > 0);
    return out;
  }
  if (in.num_rows() == 0) return out;
  std::vector<std::pair<size_t, bool>> key_cols;  // (column, ascending)
  for (const OrderKey& k : keys) {
    int c = in.ColumnIndex(k.var);
    if (c >= 0) key_cols.emplace_back(static_cast<size_t>(c), k.ascending);
  }
  // Rank the distinct ids of the key columns once in term order; rows then
  // compare by cheap integer ranks. Sorting is a pipeline breaker: charge
  // the permutation and rank table before building them.
  std::set<TermId> distinct;
  for (const auto& [col, asc] : key_cols) {
    for (size_t r = 0; r < in.num_rows(); ++r) {
      if (ctx != nullptr && (r % kStopCheckRows) == 0) ctx->CheckStop();
      distinct.insert(in.at(r, col));
    }
  }
  if (MemoryBudget* budget = BudgetScope::Current()) {
    budget->Charge(in.num_rows() * sizeof(size_t) +
                   distinct.size() * (sizeof(TermSortKey) + 64));
  }
  std::vector<std::pair<TermSortKey, TermId>> keyed;
  keyed.reserve(distinct.size());
  for (TermId id : distinct) keyed.emplace_back(MakeTermSortKey(id, dict), id);
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) {
                     return CompareTermSortKeys(a.first, b.first) < 0;
                   });
  std::unordered_map<uint32_t, size_t> rank;
  rank.reserve(keyed.size());
  for (size_t i = 0; i < keyed.size(); ++i) {
    rank.emplace(keyed[i].second.value(), i);
  }

  std::vector<size_t> perm(in.num_rows());
  std::iota(perm.begin(), perm.end(), size_t{0});
  std::stable_sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
    for (const auto& [col, asc] : key_cols) {
      size_t ra = rank.at(in.at(a, col).value());
      size_t rb = rank.at(in.at(b, col).value());
      if (ra != rb) return asc ? ra < rb : ra > rb;
    }
    // Deterministic tie-break over the whole row (ids are assigned
    // identically by every engine building from the same dataset).
    for (size_t c = 0; c < in.num_cols(); ++c) {
      TermId av = in.at(a, c);
      TermId bv = in.at(b, c);
      if (av != bv) return av < bv;
    }
    return false;
  });
  for (size_t i = 0; i < perm.size(); ++i) {
    if (ctx != nullptr && (i % kStopCheckRows) == 0) ctx->CheckStop();
    out.AppendRow(in.row(perm[i]));
  }
  if (stats != nullptr) {
    stats->intermediate_rows += out.num_rows();
    stats->NotePeakBytes(out.ByteSize());
  }
  return out;
}

BindingTable GroupCount(const BindingTable& in,
                        const std::vector<std::string>& group_by,
                        const std::vector<Aggregate>& aggregates,
                        ExecStats* stats, QueryContext* ctx) {
  std::vector<std::string> out_vars = group_by;
  for (const Aggregate& a : aggregates) out_vars.push_back(a.as);
  BindingTable out(out_vars);

  std::vector<int> key_cols;
  key_cols.reserve(group_by.size());
  for (const std::string& v : group_by) key_cols.push_back(in.ColumnIndex(v));
  std::vector<int> arg_cols;  // -1 = COUNT(*)
  arg_cols.reserve(aggregates.size());
  for (const Aggregate& a : aggregates) {
    arg_cols.push_back(a.var.empty() ? -1 : in.ColumnIndex(a.var));
  }

  struct GroupState {
    std::vector<uint64_t> counts;
    std::vector<std::set<std::vector<TermId>>> distinct;
  };
  // std::map keys iterate in id order: the output row order is
  // deterministic across engines regardless of input row order.
  std::map<std::vector<TermId>, GroupState> groups;

  std::vector<TermId> key(key_cols.size());
  for (size_t r = 0; r < in.num_rows(); ++r) {
    if (ctx != nullptr && (r % kStopCheckRows) == 0) ctx->CheckStop();
    for (size_t k = 0; k < key_cols.size(); ++k) {
      key[k] = key_cols[k] >= 0 ? in.at(r, static_cast<size_t>(key_cols[k]))
                                : kInvalidId;
    }
    auto [it, inserted] = groups.try_emplace(key);
    if (inserted) {
      if (MemoryBudget* budget = BudgetScope::Current()) {
        budget->Charge(key.size() * sizeof(TermId) + 64);
      }
      it->second.counts.assign(aggregates.size(), 0);
      it->second.distinct.resize(aggregates.size());
    }
    for (size_t a = 0; a < aggregates.size(); ++a) {
      if (aggregates[a].distinct) {
        std::vector<TermId> value;
        if (arg_cols[a] < 0) {
          value.assign(in.row(r).begin(), in.row(r).end());
        } else {
          TermId v = in.at(r, static_cast<size_t>(arg_cols[a]));
          if (v == kInvalidId) continue;  // COUNT skips unbound
          value.push_back(v);
        }
        if (it->second.distinct[a].insert(std::move(value)).second) {
          if (MemoryBudget* budget = BudgetScope::Current()) {
            budget->Charge((key.size() + 1) * sizeof(TermId) + 48);
          }
        }
      } else {
        if (arg_cols[a] >= 0 &&
            in.at(r, static_cast<size_t>(arg_cols[a])) == kInvalidId) {
          continue;
        }
        ++it->second.counts[a];
      }
    }
  }
  // With no grouping keys, aggregation over an empty input still produces
  // the single all-zero group (SPARQL: COUNT over zero solutions is 0).
  if (groups.empty() && group_by.empty()) {
    GroupState zero;
    zero.counts.assign(aggregates.size(), 0);
    zero.distinct.resize(aggregates.size());
    groups.emplace(std::vector<TermId>{}, std::move(zero));
  }

  std::vector<TermId> row(out_vars.size());
  size_t emitted = 0;
  for (const auto& [k, state] : groups) {
    if (ctx != nullptr && (emitted++ % kStopCheckRows) == 0) ctx->CheckStop();
    for (size_t i = 0; i < k.size(); ++i) row[i] = k[i];
    for (size_t a = 0; a < aggregates.size(); ++a) {
      uint64_t n = aggregates[a].distinct ? state.distinct[a].size()
                                          : state.counts[a];
      row[k.size() + a] = MakeValueId(static_cast<uint32_t>(
          std::min<uint64_t>(n, kValueIdTag - 1)));
    }
    out.AppendRow(row);
  }
  if (stats != nullptr) {
    stats->intermediate_rows += out.num_rows();
    stats->NotePeakBytes(out.ByteSize());
  }
  return out;
}

}  // namespace row_ops

// --------------------------------------------------------------- dispatch
//
// The public operators pick the execution flavor per call from
// CurrentExecMode() (process default, overridable per thread with
// ExecModeScope). Every engine config — axonDB's chain executor, the
// extended-algebra evaluator, and all baseline engines — funnels through
// these entry points, so flipping the mode switches the whole fleet
// between row and batch execution.

namespace {

inline bool UseBatch() { return CurrentExecMode() == ExecMode::kBatch; }

}  // namespace

BindingTable ScanPattern(std::span<const Triple> triples,
                         const IdPattern& pattern, ExecStats* stats,
                         QueryContext* ctx) {
  return UseBatch() ? batch_ops::ScanPattern(triples, pattern, stats, ctx)
                    : row_ops::ScanPattern(triples, pattern, stats, ctx);
}

PatternScanner::PatternScanner(const IdPattern& pattern)
    : pattern_(pattern),
      // Latch the mode once: a scan must not switch engines between chunks.
      use_batch_(UseBatch()),
      out_(exec_internal::PatternVars(pattern)) {}

void PatternScanner::Feed(std::span<const Triple> chunk, ExecStats* stats,
                          QueryContext* ctx) {
  if (use_batch_) {
    batch_ops::ScanPatternInto(chunk, pattern_, &out_, &nullary_matches_,
                               stats, ctx);
  } else {
    row_ops::ScanPatternInto(chunk, pattern_, &out_, &nullary_matches_, stats,
                             ctx);
  }
}

BindingTable PatternScanner::Finish(ExecStats* stats) {
  if (use_batch_ && out_.num_cols() == 0 && nullary_matches_ > 0) {
    out_.SetNullaryRow(true);
  }
  if (stats != nullptr) {
    stats->intermediate_rows += out_.num_rows();
    stats->NotePeakBytes(out_.ByteSize());
  }
  return std::move(out_);
}

BindingTable HashJoin(const BindingTable& left, const BindingTable& right,
                      ExecStats* stats, QueryContext* ctx) {
  return UseBatch() ? batch_ops::HashJoin(left, right, stats, ctx)
                    : row_ops::HashJoin(left, right, stats, ctx);
}

BindingTable FilterEquals(const BindingTable& in, const std::string& var,
                          TermId value, ExecStats* stats, QueryContext* ctx) {
  return UseBatch() ? batch_ops::FilterEquals(in, var, value, stats, ctx)
                    : row_ops::FilterEquals(in, var, value, stats, ctx);
}

BindingTable SemiJoin(const BindingTable& left, const BindingTable& right,
                      ExecStats* stats, QueryContext* ctx) {
  return UseBatch() ? batch_ops::SemiJoin(left, right, stats, ctx)
                    : row_ops::SemiJoin(left, right, stats, ctx);
}

BindingTable Project(const BindingTable& in,
                     const std::vector<std::string>& vars, QueryContext* ctx) {
  return UseBatch() ? batch_ops::Project(in, vars, ctx)
                    : row_ops::Project(in, vars, ctx);
}

BindingTable Distinct(const BindingTable& in, QueryContext* ctx) {
  return UseBatch() ? batch_ops::Distinct(in, ctx) : row_ops::Distinct(in, ctx);
}

BindingTable Limit(const BindingTable& in, uint64_t limit) {
  return UseBatch() ? batch_ops::Limit(in, limit) : row_ops::Limit(in, limit);
}

BindingTable Offset(const BindingTable& in, uint64_t offset) {
  return UseBatch() ? batch_ops::Offset(in, offset)
                    : row_ops::Offset(in, offset);
}

BindingTable UnionAll(const BindingTable& left, const BindingTable& right,
                      ExecStats* stats, QueryContext* ctx) {
  return UseBatch() ? batch_ops::UnionAll(left, right, stats, ctx)
                    : row_ops::UnionAll(left, right, stats, ctx);
}

BindingTable LeftOuterJoin(const BindingTable& left, const BindingTable& right,
                           ExecStats* stats, QueryContext* ctx) {
  return UseBatch()
             ? batch_ops::CompatJoinImpl(left, right, /*outer=*/true, stats, ctx)
             : row_ops::CompatJoinImpl(left, right, /*outer=*/true, stats, ctx);
}

BindingTable CompatJoin(const BindingTable& left, const BindingTable& right,
                        ExecStats* stats, QueryContext* ctx) {
  return UseBatch() ? batch_ops::CompatJoinImpl(left, right, /*outer=*/false,
                                                stats, ctx)
                    : row_ops::CompatJoinImpl(left, right, /*outer=*/false,
                                              stats, ctx);
}

BindingTable FilterByExpr(const BindingTable& in, const FilterExpr& expr,
                          const Dictionary& dict, ExecStats* stats,
                          QueryContext* ctx) {
  return UseBatch() ? batch_ops::FilterByExpr(in, expr, dict, stats, ctx)
                    : row_ops::FilterByExpr(in, expr, dict, stats, ctx);
}

BindingTable OrderBy(const BindingTable& in, const std::vector<OrderKey>& keys,
                     const Dictionary& dict, ExecStats* stats,
                     QueryContext* ctx) {
  return UseBatch() ? batch_ops::OrderBy(in, keys, dict, stats, ctx)
                    : row_ops::OrderBy(in, keys, dict, stats, ctx);
}

BindingTable GroupCount(const BindingTable& in,
                        const std::vector<std::string>& group_by,
                        const std::vector<Aggregate>& aggregates,
                        ExecStats* stats, QueryContext* ctx) {
  return UseBatch()
             ? batch_ops::GroupCount(in, group_by, aggregates, stats, ctx)
             : row_ops::GroupCount(in, group_by, aggregates, stats, ctx);
}

}  // namespace axon
