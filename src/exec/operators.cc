#include "exec/operators.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <unordered_map>

#include "util/hash.h"
#include "util/trace.h"

namespace axon {

namespace {

// Hash of a row key (vector of ids).
struct RowKeyHash {
  size_t operator()(const std::vector<TermId>& key) const {
    uint64_t h = 0x243f6a8885a308d3ULL;
    for (TermId id : key) h = HashCombine(h, id.value());
    return static_cast<size_t>(h);
  }
};

}  // namespace

BindingTable ScanPattern(std::span<const Triple> triples,
                         const IdPattern& pattern, ExecStats* stats,
                         QueryContext* ctx) {
  // Output columns: distinct named variables in S, P, O order.
  std::vector<std::string> vars;
  auto add_var = [&vars](const std::string& v) {
    if (!v.empty() && std::find(vars.begin(), vars.end(), v) == vars.end()) {
      vars.push_back(v);
    }
  };
  if (!pattern.s_bound()) add_var(pattern.s_var);
  if (!pattern.p_bound()) add_var(pattern.p_var);
  if (!pattern.o_bound()) add_var(pattern.o_var);

  BindingTable out(vars);
  std::vector<TermId> row(vars.size());
  // The triples-scanned counter is flushed per leaf-sized chunk (not once
  // up front) so a stopped scan reports only the rows it actually visited —
  // the cancellation-latency tests bound post-cancel work through it.
  size_t counted = 0;
  for (size_t idx = 0; idx < triples.size(); ++idx) {
    if ((idx % kStopCheckRows) == 0) {
      AXON_COUNTER_ADD("exec.triples_scanned", idx - counted);
      counted = idx;
      if (ctx != nullptr) ctx->CheckStop();
    }
    const Triple& t = triples[idx];
    if (stats != nullptr) ++stats->rows_scanned;
    if (pattern.s_bound() && t.s != pattern.s) continue;
    if (pattern.p_bound() && t.p != pattern.p) continue;
    if (pattern.o_bound() && t.o != pattern.o) continue;
    // Repeated-variable constraints (e.g. ?x :p ?x).
    bool ok = true;
    for (size_t i = 0; i < vars.size(); ++i) {
      TermId v = kInvalidId;
      if (!pattern.s_bound() && pattern.s_var == vars[i]) v = t.s;
      if (!pattern.p_bound() && pattern.p_var == vars[i]) {
        if (v != kInvalidId && v != t.p) {
          ok = false;
          break;
        }
        v = t.p;
      }
      if (!pattern.o_bound() && pattern.o_var == vars[i]) {
        if (v != kInvalidId && v != t.o) {
          ok = false;
          break;
        }
        v = t.o;
      }
      row[i] = v;
    }
    if (!ok) continue;
    out.AppendRow(row);
  }
  AXON_COUNTER_ADD("exec.triples_scanned", triples.size() - counted);
  if (stats != nullptr) {
    stats->intermediate_rows += out.num_rows();
    stats->NotePeakBytes(out.ByteSize());
  }
  return out;
}

BindingTable HashJoin(const BindingTable& left, const BindingTable& right,
                      ExecStats* stats, QueryContext* ctx) {
  if (stats != nullptr) ++stats->joins;
  // Build on the smaller side.
  const BindingTable& build = left.num_rows() <= right.num_rows() ? left : right;
  const BindingTable& probe = left.num_rows() <= right.num_rows() ? right : left;

  // Shared columns.
  std::vector<int> build_key;
  std::vector<int> probe_key;
  for (size_t i = 0; i < build.vars().size(); ++i) {
    int j = probe.ColumnIndex(build.vars()[i]);
    if (j >= 0) {
      build_key.push_back(static_cast<int>(i));
      probe_key.push_back(j);
    }
  }

  // Output schema: probe columns then build-only columns (order is
  // irrelevant to correctness; CanonicalRows normalizes for comparison).
  std::vector<std::string> out_vars = probe.vars();
  std::vector<int> build_extra;
  for (size_t i = 0; i < build.vars().size(); ++i) {
    if (probe.ColumnIndex(build.vars()[i]) < 0) {
      out_vars.push_back(build.vars()[i]);
      build_extra.push_back(static_cast<int>(i));
    }
  }
  BindingTable out(out_vars);

  if (build.num_rows() == 0 || probe.num_rows() == 0) return out;

  // Charge the hash-table build to the query's memory budget up front: a
  // deterministic per-row estimate (bucket slot + key copy + row index),
  // taken before the table allocates so an over-budget build never grows.
  if (MemoryBudget* budget = BudgetScope::Current()) {
    budget->Charge(build.num_rows() *
                   (2 * sizeof(size_t) + build_key.size() * sizeof(TermId)));
  }
  std::unordered_map<std::vector<TermId>, std::vector<size_t>, RowKeyHash>
      table;
  table.reserve(build.num_rows());
  std::vector<TermId> key(build_key.size());
  for (size_t r = 0; r < build.num_rows(); ++r) {
    if (ctx != nullptr && (r % kStopCheckRows) == 0) ctx->CheckStop();
    for (size_t k = 0; k < build_key.size(); ++k) {
      key[k] = build.at(r, build_key[k]);
    }
    table[key].push_back(r);
  }

  std::vector<TermId> out_row(out_vars.size());
  for (size_t r = 0; r < probe.num_rows(); ++r) {
    if (ctx != nullptr && (r % kStopCheckRows) == 0) ctx->CheckStop();
    for (size_t k = 0; k < probe_key.size(); ++k) {
      key[k] = probe.at(r, probe_key[k]);
    }
    auto it = table.find(key);
    if (it == table.end()) continue;
    for (size_t br : it->second) {
      size_t c = 0;
      for (; c < probe.vars().size(); ++c) out_row[c] = probe.at(r, c);
      for (size_t e = 0; e < build_extra.size(); ++e) {
        out_row[c + e] = build.at(br, build_extra[e]);
      }
      out.AppendRow(out_row);
    }
  }
  if (stats != nullptr) {
    stats->intermediate_rows += out.num_rows();
    stats->NotePeakBytes(out.ByteSize());
  }
  AXON_COUNTER_ADD("exec.join_rows_out", out.num_rows());
  return out;
}

BindingTable FilterEquals(const BindingTable& in, const std::string& var,
                          TermId value, ExecStats* stats) {
  int col = in.ColumnIndex(var);
  BindingTable out(in.vars());
  if (col < 0) return out;
  for (size_t r = 0; r < in.num_rows(); ++r) {
    if (in.at(r, col) == value) out.AppendRow(in.row(r));
  }
  if (stats != nullptr) stats->intermediate_rows += out.num_rows();
  return out;
}

BindingTable SemiJoin(const BindingTable& left, const BindingTable& right,
                      ExecStats* stats) {
  if (stats != nullptr) ++stats->joins;
  std::vector<int> left_key;
  std::vector<int> right_key;
  for (size_t i = 0; i < left.vars().size(); ++i) {
    int j = right.ColumnIndex(left.vars()[i]);
    if (j >= 0) {
      left_key.push_back(static_cast<int>(i));
      right_key.push_back(j);
    }
  }
  BindingTable out(left.vars());
  if (left_key.empty()) {
    // No shared columns: left survives iff right is non-empty.
    if (right.num_rows() == 0) return out;
    for (size_t r = 0; r < left.num_rows(); ++r) out.AppendRow(left.row(r));
    return out;
  }
  std::set<std::vector<TermId>> keys;
  std::vector<TermId> key(right_key.size());
  for (size_t r = 0; r < right.num_rows(); ++r) {
    for (size_t k = 0; k < right_key.size(); ++k) {
      key[k] = right.at(r, right_key[k]);
    }
    keys.insert(key);
  }
  for (size_t r = 0; r < left.num_rows(); ++r) {
    for (size_t k = 0; k < left_key.size(); ++k) {
      key[k] = left.at(r, left_key[k]);
    }
    if (keys.count(key)) out.AppendRow(left.row(r));
  }
  if (stats != nullptr) stats->intermediate_rows += out.num_rows();
  return out;
}

BindingTable Project(const BindingTable& in,
                     const std::vector<std::string>& vars) {
  std::vector<int> cols;
  cols.reserve(vars.size());
  for (const std::string& v : vars) {
    int c = in.ColumnIndex(v);
    assert(c >= 0 && "projecting a missing column");
    cols.push_back(c);
  }
  BindingTable out(vars);
  std::vector<TermId> row(vars.size());
  for (size_t r = 0; r < in.num_rows(); ++r) {
    for (size_t i = 0; i < cols.size(); ++i) row[i] = in.at(r, cols[i]);
    out.AppendRow(row);
  }
  return out;
}

BindingTable Distinct(const BindingTable& in) {
  BindingTable out(in.vars());
  std::set<std::vector<TermId>> seen;
  for (size_t r = 0; r < in.num_rows(); ++r) {
    std::vector<TermId> row(in.row(r).begin(), in.row(r).end());
    if (seen.insert(row).second) out.AppendRow(row);
  }
  if (in.num_cols() == 0 && in.num_rows() > 0) out.SetNullaryRow(true);
  return out;
}

BindingTable Limit(const BindingTable& in, uint64_t limit) {
  BindingTable out(in.vars());
  uint64_t n = std::min<uint64_t>(limit, in.num_rows());
  for (uint64_t r = 0; r < n; ++r) out.AppendRow(in.row(r));
  if (in.num_cols() == 0 && in.num_rows() > 0 && limit > 0) {
    out.SetNullaryRow(true);
  }
  return out;
}

}  // namespace axon
