// Columnar execution batches: the unit of work of the block-at-a-time
// operators (exec/batch_ops.cc).
//
// A Batch holds up to kBatchRows rows of a BindingTable's schema as
// contiguous per-column TermId arrays (column-major). Operators run
// branch-light kernels over whole columns — build a selection vector,
// refine it, gather the survivors — and only transpose back to the
// row-major BindingTable layout once per batch (BindingTable::AppendBatch),
// which is also where cooperative-stop checks and memory-budget charges
// land: once per batch instead of once per 64-row leaf.
//
// The kernels are written as index-accumulating scalar loops over
// contiguous u32 arrays with no data-dependent branches in the loop body —
// the shape auto-vectorizers handle well — rather than hand-written
// intrinsics, so every target the CI matrix builds (incl. sanitizers) runs
// the same code.

#ifndef AXON_EXEC_BATCH_H_
#define AXON_EXEC_BATCH_H_

#include <cstdint>
#include <vector>

#include "rdf/triple.h"

namespace axon {

/// Rows per execution batch. Chosen so one batch of a few columns stays
/// L1/L2-resident (a 4-column batch is 16 KiB) while amortizing per-chunk
/// bookkeeping (stop checks, budget charges, counter flushes) over ~16
/// B+-tree leaves.
inline constexpr size_t kBatchRows = 1024;

/// A fixed-capacity columnar chunk: `num_cols` arrays of kBatchRows
/// TermIds, `size` rows valid. Reused across blocks — Reset() keeps the
/// allocation.
class Batch {
 public:
  Batch() = default;

  /// Re-shapes for `num_cols` columns and zero rows. Keeps capacity.
  void Reset(size_t num_cols) {
    num_cols_ = num_cols;
    size_ = 0;
    data_.resize(num_cols * kBatchRows);
  }

  size_t num_cols() const { return num_cols_; }
  size_t size() const { return size_; }
  bool full() const { return size_ == kBatchRows; }
  void set_size(size_t n) { size_ = n; }

  TermId* col(size_t c) { return data_.data() + c * kBatchRows; }
  const TermId* col(size_t c) const { return data_.data() + c * kBatchRows; }

 private:
  std::vector<TermId> data_;  // column-major, kBatchRows stride
  size_t num_cols_ = 0;
  size_t size_ = 0;
};

/// Selection vector: indices of surviving rows within one batch/block.
using SelVector = uint32_t;

// ---------------------------------------------------------------- kernels
//
// All kernels take contiguous column pointers and write dense selection
// vectors. Loop bodies are branch-free (the comparison result feeds the
// output cursor), so a mispredicted filter costs nothing.

/// sel[k] = i for every i in [0, n) with col[i] == value; returns k.
inline size_t SelEquals(const TermId* col, size_t n, TermId value,
                        SelVector* sel) {
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    sel[k] = static_cast<SelVector>(i);
    k += col[i] == value ? 1 : 0;
  }
  return k;
}

/// Refines `sel_in` (n entries) to entries whose col value == value.
/// In-place refinement (sel_out == sel_in) is allowed.
inline size_t SelRefineEquals(const TermId* col, const SelVector* sel_in,
                              size_t n, TermId value, SelVector* sel_out) {
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    SelVector r = sel_in[i];
    sel_out[k] = r;
    k += col[r] == value ? 1 : 0;
  }
  return k;
}

/// Refines `sel_in` to entries where a[r] == b[r] (repeated-variable
/// equality between two positions). In-place allowed.
inline size_t SelRefineColsEqual(const TermId* a, const TermId* b,
                                 const SelVector* sel_in, size_t n,
                                 SelVector* sel_out) {
  size_t k = 0;
  for (size_t i = 0; i < n; ++i) {
    SelVector r = sel_in[i];
    sel_out[k] = r;
    k += a[r] == b[r] ? 1 : 0;
  }
  return k;
}

/// dst[i] = src[sel[i]] for i in [0, n).
inline void GatherCol(const TermId* src, const SelVector* sel, size_t n,
                      TermId* dst) {
  for (size_t i = 0; i < n; ++i) dst[i] = src[sel[i]];
}

/// True iff any of col[0..n) equals `value` (early-exit block scan).
inline bool ColContains(const TermId* col, size_t n, TermId value) {
  for (size_t i = 0; i < n; ++i) {
    if (col[i] == value) return true;
  }
  return false;
}

}  // namespace axon

#endif  // AXON_EXEC_BATCH_H_
