#include "exec/bindings.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "exec/batch.h"
#include "exec/exec_mode.h"
#include "util/resource_governor.h"

namespace axon {

int BindingTable::ColumnIndex(const std::string& var) const {
  for (size_t i = 0; i < vars_.size(); ++i) {
    if (vars_[i] == var) return static_cast<int>(i);
  }
  return -1;
}

void BindingTable::GrowFor(size_t needed) {
  if (needed <= data_.capacity()) return;
  // Explicit doubling keeps the charged amounts deterministic (independent
  // of the standard library's growth policy). Capacities always walk the
  // canonical 64·2^k chain, so the total charged for a table of a given
  // final size is identical whether it was filled row-at-a-time or in
  // 1024-row batches — row and batch execution hit the same budget wall
  // at the same point.
  size_t new_cap = std::max<size_t>(data_.capacity() * 2, 64);
  while (new_cap < needed) new_cap *= 2;
  MemoryBudget* budget = BudgetScope::Current();
  if (budget != nullptr) {
    budget->Charge((new_cap - data_.capacity()) * sizeof(TermId));
  }
  data_.reserve(new_cap);
}

void BindingTable::AppendRow(std::span<const TermId> values) {
  assert(values.size() == vars_.size());
  if (vars_.empty()) {
    nullary_rows_ = true;
    return;
  }
  GrowFor(data_.size() + values.size());
  data_.insert(data_.end(), values.begin(), values.end());
}

void BindingTable::AppendBatch(const Batch& batch) {
  assert(batch.num_cols() == vars_.size());
  assert(!vars_.empty() && "zero-column tables use SetNullaryRow");
  const size_t rows = batch.size();
  if (rows == 0) return;
  const size_t cols = vars_.size();
  const size_t base = data_.size();
  GrowFor(base + rows * cols);  // one charge per batch
  data_.resize(base + rows * cols);
  TermId* out = data_.data() + base;
  // Column-major -> row-major transpose: contiguous reads per column,
  // strided writes. Column count is small (query variables), row count is
  // up to kBatchRows, so the strided side stays cache-resident.
  for (size_t c = 0; c < cols; ++c) {
    const TermId* src = batch.col(c);
    TermId* dst = out + c;
    for (size_t r = 0; r < rows; ++r) dst[r * cols] = src[r];
  }
}

void BindingTable::AppendRows(const BindingTable& src, size_t begin,
                              size_t end) {
  assert(src.vars_ == vars_);
  if (vars_.empty() || begin >= end) return;
  const size_t cols = vars_.size();
  const size_t base = data_.size();
  GrowFor(base + (end - begin) * cols);
  data_.resize(base + (end - begin) * cols);
  std::memcpy(data_.data() + base, src.data_.data() + begin * cols,
              (end - begin) * cols * sizeof(TermId));
}

void AppendRowsByName(BindingTable* dst, const BindingTable& src) {
  const size_t rows = src.num_rows();
  if (rows == 0) return;
  if (dst->num_cols() == 0) {
    dst->SetNullaryRow(true);
    return;
  }
  if (CurrentExecMode() != ExecMode::kBatch) {
    std::vector<int> mapping(dst->num_cols());
    for (size_t c = 0; c < dst->num_cols(); ++c) {
      mapping[c] = src.ColumnIndex(dst->vars()[c]);
    }
    std::vector<TermId> row(dst->num_cols());
    for (size_t r = 0; r < rows; ++r) {
      for (size_t c = 0; c < dst->num_cols(); ++c) {
        row[c] = mapping[c] < 0 ? kInvalidId : src.at(r, mapping[c]);
      }
      dst->AppendRow(row);
    }
    return;
  }
  if (dst->vars() == src.vars()) {
    dst->AppendRows(src, 0, rows);
    return;
  }
  std::vector<int> mapping(dst->num_cols());
  for (size_t c = 0; c < dst->num_cols(); ++c) {
    mapping[c] = src.ColumnIndex(dst->vars()[c]);
  }
  const size_t cols = dst->num_cols();
  const size_t scols = src.num_cols();
  const TermId* f = src.flat().data();
  Batch batch;
  for (size_t base = 0; base < rows; base += kBatchRows) {
    const size_t n = std::min(kBatchRows, rows - base);
    batch.Reset(cols);
    for (size_t c = 0; c < cols; ++c) {
      TermId* d = batch.col(c);
      if (mapping[c] < 0) {
        std::fill_n(d, n, kInvalidId);
        continue;
      }
      const TermId* s = f + base * scols + static_cast<size_t>(mapping[c]);
      for (size_t i = 0; i < n; ++i) d[i] = s[i * scols];
    }
    batch.set_size(n);
    dst->AppendBatch(batch);
  }
}

std::vector<std::vector<TermId>> BindingTable::CanonicalRows(
    const std::vector<std::string>& vars) const {
  std::vector<int> cols;
  cols.reserve(vars.size());
  for (const std::string& v : vars) cols.push_back(ColumnIndex(v));
  std::vector<std::vector<TermId>> out;
  out.reserve(num_rows());
  for (size_t r = 0; r < num_rows(); ++r) {
    std::vector<TermId> row;
    row.reserve(cols.size());
    for (int c : cols) {
      row.push_back(c < 0 ? kInvalidId : at(r, static_cast<size_t>(c)));
    }
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace axon
