#include "exec/bindings.h"

#include <algorithm>
#include <cassert>

#include "util/resource_governor.h"

namespace axon {

int BindingTable::ColumnIndex(const std::string& var) const {
  for (size_t i = 0; i < vars_.size(); ++i) {
    if (vars_[i] == var) return static_cast<int>(i);
  }
  return -1;
}

void BindingTable::GrowFor(size_t needed) {
  if (needed <= data_.capacity()) return;
  // Explicit doubling keeps the charged amounts deterministic (independent
  // of the standard library's growth policy).
  size_t new_cap = std::max<size_t>(data_.capacity() * 2, 64);
  new_cap = std::max(new_cap, needed);
  MemoryBudget* budget = BudgetScope::Current();
  if (budget != nullptr) {
    budget->Charge((new_cap - data_.capacity()) * sizeof(TermId));
  }
  data_.reserve(new_cap);
}

void BindingTable::AppendRow(std::span<const TermId> values) {
  assert(values.size() == vars_.size());
  if (vars_.empty()) {
    nullary_rows_ = true;
    return;
  }
  GrowFor(data_.size() + values.size());
  data_.insert(data_.end(), values.begin(), values.end());
}

std::vector<std::vector<TermId>> BindingTable::CanonicalRows(
    const std::vector<std::string>& vars) const {
  std::vector<int> cols;
  cols.reserve(vars.size());
  for (const std::string& v : vars) cols.push_back(ColumnIndex(v));
  std::vector<std::vector<TermId>> out;
  out.reserve(num_rows());
  for (size_t r = 0; r < num_rows(); ++r) {
    std::vector<TermId> row;
    row.reserve(cols.size());
    for (int c : cols) {
      row.push_back(c < 0 ? kInvalidId : at(r, static_cast<size_t>(c)));
    }
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace axon
