// Block-at-a-time columnar operator implementations (exec/batch.h).
//
// Contract: each operator here is a drop-in replacement for its row_ops
// counterpart in operators.cc — same output rows in the same order, same
// ExecStats totals, same memory-budget charges (BindingTable::GrowFor walks
// a canonical capacity chain, so charge totals are append-granularity
// independent). What changes is the loop shape: inputs are processed in
// kBatchRows blocks, predicates run as selection-vector kernels over
// contiguous column extracts, survivors are gathered column-at-a-time, and
// cooperative-stop checks / counter flushes move from per-64-row polls to
// once per block. tests/batch_exec_test.cc diffs both flavors directly;
// the conformance goldens pin the batch engine to the row engine's
// results across all engine configs.

#include <algorithm>
#include <cassert>
#include <map>
#include <numeric>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exec/batch.h"
#include "exec/expr.h"
#include "exec/operators.h"
#include "exec/operators_impl.h"
#include "util/trace.h"

namespace axon {
namespace batch_ops {

namespace {

using exec_internal::CompatLayout;
using exec_internal::ComputeCompatLayout;
using exec_internal::ComputeJoinLayout;
using exec_internal::JoinLayout;
using exec_internal::RowKeyHash;

/// Extracts column `col` of rows [base, base+n) into contiguous `dst`
/// (row-major -> column strided read).
void ExtractCol(const BindingTable& t, size_t base, size_t n, size_t col,
                TermId* dst) {
  const size_t cols = t.num_cols();
  const TermId* src = t.flat().data() + base * cols + col;
  for (size_t i = 0; i < n; ++i) dst[i] = src[i * cols];
}

/// Hash/equality over whole rows of one table, addressed by row index —
/// dedup sets hash row content in place, with no per-row key allocation
/// and no O(cols·log n) tree compares (the row engine's std::set pays
/// both; content-identical rows dedupe identically either way).
struct FlatRowHash {
  const BindingTable* t;
  size_t operator()(uint32_t r) const {
    uint64_t h = 0x243f6a8885a308d3ULL;
    for (TermId id : t->row(r)) h = HashCombine(h, id.value());
    return static_cast<size_t>(h);
  }
};
struct FlatRowEq {
  const BindingTable* t;
  bool operator()(uint32_t a, uint32_t b) const {
    auto ra = t->row(a);
    auto rb = t->row(b);
    return std::equal(ra.begin(), ra.end(), rb.begin(), rb.end());
  }
};

/// Gathers rows base+sel[j] (j < k), all columns of `t`, into `batch`.
void GatherRows(const BindingTable& t, size_t base, const SelVector* sel,
                size_t k, Batch* batch) {
  const size_t cols = t.num_cols();
  const TermId* f = t.flat().data();
  batch->Reset(cols);
  for (size_t c = 0; c < cols; ++c) {
    TermId* d = batch->col(c);
    const TermId* src = f + base * cols + c;
    for (size_t j = 0; j < k; ++j) d[j] = src[sel[j] * cols];
  }
  batch->set_size(k);
}

}  // namespace

void ScanPatternInto(std::span<const Triple> triples, const IdPattern& pattern,
                     BindingTable* out_table, uint64_t* nullary_matches_acc,
                     ExecStats* stats, QueryContext* ctx) {
  BindingTable& out = *out_table;
  const std::vector<std::string>& vars = out.vars();

  // Compile the pattern into position space (0=S, 1=P, 2=O): which
  // positions each output column reads from, which position pairs must be
  // equal (repeated variables), and which positions need extraction at all.
  int col_source[3] = {0, 0, 0};
  std::vector<std::pair<int, int>> eq_pairs;
  bool need[3] = {pattern.s_bound(), pattern.p_bound(), pattern.o_bound()};
  for (size_t c = 0; c < vars.size(); ++c) {
    int pos[3];
    int np = 0;
    if (!pattern.s_bound() && pattern.s_var == vars[c]) pos[np++] = 0;
    if (!pattern.p_bound() && pattern.p_var == vars[c]) pos[np++] = 1;
    if (!pattern.o_bound() && pattern.o_var == vars[c]) pos[np++] = 2;
    col_source[c] = pos[0];
    need[pos[0]] = true;
    for (int j = 1; j < np; ++j) {
      eq_pairs.emplace_back(pos[j - 1], pos[j]);
      need[pos[j]] = true;
    }
  }
  const bool any_filter = pattern.s_bound() || pattern.p_bound() ||
                          pattern.o_bound() || !eq_pairs.empty();

  std::vector<TermId> cols[3];
  for (int p = 0; p < 3; ++p) {
    if (need[p]) cols[p].resize(kBatchRows);
  }
  std::vector<SelVector> sel(kBatchRows);
  Batch batch;
  const Triple* tp = triples.data();
  size_t counted = 0;
  uint64_t nullary_matches = 0;
  for (size_t base = 0; base < triples.size(); base += kBatchRows) {
    // Flush the visited-rows counter before each block so a stopped scan
    // reports only blocks it actually entered (cancellation-latency bound).
    AXON_COUNTER_ADD("exec.triples_scanned", base - counted);
    counted = base;
    if (ctx != nullptr) ctx->CheckStop();
    const size_t n = std::min(kBatchRows, triples.size() - base);
    if (stats != nullptr) stats->rows_scanned += n;

    // Transpose the needed triple positions into contiguous columns.
    if (need[0]) {
      TermId* d = cols[0].data();
      for (size_t i = 0; i < n; ++i) d[i] = tp[base + i].s;
    }
    if (need[1]) {
      TermId* d = cols[1].data();
      for (size_t i = 0; i < n; ++i) d[i] = tp[base + i].p;
    }
    if (need[2]) {
      TermId* d = cols[2].data();
      for (size_t i = 0; i < n; ++i) d[i] = tp[base + i].o;
    }

    // Build the selection: first constraint produces it, the rest refine
    // it in place.
    size_t k = n;
    if (any_filter) {
      bool dense = true;
      auto refine_eq = [&](const TermId* col, TermId v) {
        k = dense ? SelEquals(col, n, v, sel.data())
                  : SelRefineEquals(col, sel.data(), k, v, sel.data());
        dense = false;
      };
      if (pattern.s_bound()) refine_eq(cols[0].data(), pattern.s);
      if (pattern.p_bound()) refine_eq(cols[1].data(), pattern.p);
      if (pattern.o_bound()) refine_eq(cols[2].data(), pattern.o);
      for (auto [a, b] : eq_pairs) {
        if (dense) {
          std::iota(sel.begin(), sel.begin() + n, SelVector{0});
          dense = false;
        }
        k = SelRefineColsEqual(cols[a].data(), cols[b].data(), sel.data(), k,
                               sel.data());
      }
    }
    if (k == 0) continue;
    if (vars.empty()) {
      nullary_matches += k;
      continue;
    }
    batch.Reset(vars.size());
    for (size_t c = 0; c < vars.size(); ++c) {
      const TermId* src = cols[col_source[c]].data();
      if (any_filter) {
        GatherCol(src, sel.data(), k, batch.col(c));
      } else {
        std::copy_n(src, n, batch.col(c));
      }
    }
    batch.set_size(k);
    out.AppendBatch(batch);
  }
  AXON_COUNTER_ADD("exec.triples_scanned", triples.size() - counted);
  if (nullary_matches_acc != nullptr) *nullary_matches_acc += nullary_matches;
}

BindingTable ScanPattern(std::span<const Triple> triples,
                         const IdPattern& pattern, ExecStats* stats,
                         QueryContext* ctx) {
  BindingTable out(exec_internal::PatternVars(pattern));
  uint64_t nullary_matches = 0;
  ScanPatternInto(triples, pattern, &out, &nullary_matches, stats, ctx);
  if (out.num_cols() == 0 && nullary_matches > 0) out.SetNullaryRow(true);
  if (stats != nullptr) {
    stats->intermediate_rows += out.num_rows();
    stats->NotePeakBytes(out.ByteSize());
  }
  return out;
}

BindingTable HashJoin(const BindingTable& left, const BindingTable& right,
                      ExecStats* stats, QueryContext* ctx) {
  if (stats != nullptr) ++stats->joins;
  // Build on the smaller side (same rule as row_ops, so the build-charge
  // and output column order are identical).
  const BindingTable& build = left.num_rows() <= right.num_rows() ? left : right;
  const BindingTable& probe = left.num_rows() <= right.num_rows() ? right : left;
  JoinLayout lay = ComputeJoinLayout(build, probe);
  BindingTable out(lay.out_vars);
  if (build.num_rows() == 0 || probe.num_rows() == 0) return out;

  if (MemoryBudget* budget = BudgetScope::Current()) {
    budget->Charge(build.num_rows() *
                   (2 * sizeof(size_t) + lay.build_key.size() * sizeof(TermId)));
  }

  const size_t build_rows = build.num_rows();
  const size_t probe_rows = probe.num_rows();
  // Single-column keys (the common case in chain plans) hash the raw u32;
  // multi-column and cross-product (empty) keys use vector keys.
  const bool single = lay.build_key.size() == 1;
  std::unordered_map<uint32_t, std::vector<size_t>> table1;
  std::unordered_map<std::vector<TermId>, std::vector<size_t>, RowKeyHash>
      tablen;
  std::vector<TermId> keycol(kBatchRows);
  if (single) {
    table1.reserve(build_rows);
    const size_t bk = static_cast<size_t>(lay.build_key[0]);
    for (size_t base = 0; base < build_rows; base += kBatchRows) {
      if (ctx != nullptr) ctx->CheckStop();
      const size_t n = std::min(kBatchRows, build_rows - base);
      ExtractCol(build, base, n, bk, keycol.data());
      for (size_t i = 0; i < n; ++i) {
        table1[keycol[i].value()].push_back(base + i);
      }
    }
  } else {
    tablen.reserve(build_rows);
    std::vector<TermId> key(lay.build_key.size());
    for (size_t base = 0; base < build_rows; base += kBatchRows) {
      if (ctx != nullptr) ctx->CheckStop();
      const size_t n = std::min(kBatchRows, build_rows - base);
      for (size_t i = 0; i < n; ++i) {
        for (size_t k = 0; k < lay.build_key.size(); ++k) {
          key[k] = build.at(base + i, static_cast<size_t>(lay.build_key[k]));
        }
        tablen[key].push_back(base + i);
      }
    }
  }

  // Probe per block, buffering (probe row, build row) match pairs, then
  // materialize them in <= kBatchRows column-gather chunks.
  const size_t pcols = probe.num_cols();
  const size_t bcols = build.num_cols();
  const size_t ocols = lay.out_vars.size();
  const TermId* pf = probe.flat().data();
  const TermId* bf = build.flat().data();
  std::vector<size_t> m_probe;
  std::vector<size_t> m_build;
  Batch batch;
  uint64_t nullary_emits = 0;
  auto flush = [&] {
    const size_t total = m_probe.size();
    if (total == 0) return;
    if (ocols == 0) {  // both sides nullary: pure existence
      nullary_emits += total;
      m_probe.clear();
      m_build.clear();
      return;
    }
    for (size_t off = 0; off < total; off += kBatchRows) {
      if (ctx != nullptr) ctx->CheckStop();
      const size_t n = std::min(kBatchRows, total - off);
      batch.Reset(ocols);
      for (size_t c = 0; c < pcols; ++c) {
        TermId* d = batch.col(c);
        for (size_t j = 0; j < n; ++j) d[j] = pf[m_probe[off + j] * pcols + c];
      }
      for (size_t e = 0; e < lay.build_extra.size(); ++e) {
        TermId* d = batch.col(pcols + e);
        const size_t bc = static_cast<size_t>(lay.build_extra[e]);
        for (size_t j = 0; j < n; ++j) d[j] = bf[m_build[off + j] * bcols + bc];
      }
      batch.set_size(n);
      out.AppendBatch(batch);
    }
    m_probe.clear();
    m_build.clear();
  };

  if (single) {
    const size_t pk = static_cast<size_t>(lay.probe_key[0]);
    for (size_t base = 0; base < probe_rows; base += kBatchRows) {
      if (ctx != nullptr) ctx->CheckStop();
      const size_t n = std::min(kBatchRows, probe_rows - base);
      ExtractCol(probe, base, n, pk, keycol.data());
      for (size_t i = 0; i < n; ++i) {
        auto it = table1.find(keycol[i].value());
        if (it == table1.end()) continue;
        for (size_t br : it->second) {
          m_probe.push_back(base + i);
          m_build.push_back(br);
        }
      }
      flush();
    }
  } else {
    std::vector<TermId> key(lay.probe_key.size());
    for (size_t base = 0; base < probe_rows; base += kBatchRows) {
      if (ctx != nullptr) ctx->CheckStop();
      const size_t n = std::min(kBatchRows, probe_rows - base);
      for (size_t i = 0; i < n; ++i) {
        for (size_t k = 0; k < lay.probe_key.size(); ++k) {
          key[k] = probe.at(base + i, static_cast<size_t>(lay.probe_key[k]));
        }
        auto it = tablen.find(key);
        if (it == tablen.end()) continue;
        for (size_t br : it->second) {
          m_probe.push_back(base + i);
          m_build.push_back(br);
        }
      }
      flush();
    }
  }
  if (ocols == 0 && nullary_emits > 0) out.SetNullaryRow(true);
  if (stats != nullptr) {
    stats->intermediate_rows += out.num_rows();
    stats->NotePeakBytes(out.ByteSize());
  }
  AXON_COUNTER_ADD("exec.join_rows_out", out.num_rows());
  return out;
}

BindingTable FilterEquals(const BindingTable& in, const std::string& var,
                          TermId value, ExecStats* stats, QueryContext* ctx) {
  int col = in.ColumnIndex(var);
  BindingTable out(in.vars());
  if (col < 0) return out;
  const size_t rows = in.num_rows();
  std::vector<TermId> buf(kBatchRows);
  std::vector<SelVector> sel(kBatchRows);
  Batch batch;
  for (size_t base = 0; base < rows; base += kBatchRows) {
    if (ctx != nullptr) ctx->CheckStop();
    const size_t n = std::min(kBatchRows, rows - base);
    ExtractCol(in, base, n, static_cast<size_t>(col), buf.data());
    const size_t k = SelEquals(buf.data(), n, value, sel.data());
    if (k == 0) continue;
    GatherRows(in, base, sel.data(), k, &batch);
    out.AppendBatch(batch);
  }
  if (stats != nullptr) stats->intermediate_rows += out.num_rows();
  return out;
}

BindingTable SemiJoin(const BindingTable& left, const BindingTable& right,
                      ExecStats* stats, QueryContext* ctx) {
  if (stats != nullptr) ++stats->joins;
  std::vector<int> left_key;
  std::vector<int> right_key;
  for (size_t i = 0; i < left.vars().size(); ++i) {
    int j = right.ColumnIndex(left.vars()[i]);
    if (j >= 0) {
      left_key.push_back(static_cast<int>(i));
      right_key.push_back(j);
    }
  }
  BindingTable out(left.vars());
  if (left_key.empty()) {
    // No shared columns: left survives iff right is non-empty.
    if (right.num_rows() == 0) return out;
    if (left.num_cols() == 0) {
      out.SetNullaryRow(left.num_rows() > 0);
      return out;
    }
    out.AppendRows(left, 0, left.num_rows());
    return out;
  }
  const size_t rows = left.num_rows();
  std::vector<TermId> buf(kBatchRows);
  std::vector<SelVector> sel(kBatchRows);
  Batch batch;
  if (left_key.size() == 1) {
    std::unordered_set<uint32_t> keys;
    keys.reserve(right.num_rows());
    const size_t rk = static_cast<size_t>(right_key[0]);
    for (size_t base = 0; base < right.num_rows(); base += kBatchRows) {
      const size_t n = std::min(kBatchRows, right.num_rows() - base);
      ExtractCol(right, base, n, rk, buf.data());
      for (size_t i = 0; i < n; ++i) keys.insert(buf[i].value());
    }
    const size_t lk = static_cast<size_t>(left_key[0]);
    for (size_t base = 0; base < rows; base += kBatchRows) {
      if (ctx != nullptr) ctx->CheckStop();
      const size_t n = std::min(kBatchRows, rows - base);
      ExtractCol(left, base, n, lk, buf.data());
      size_t k = 0;
      for (size_t i = 0; i < n; ++i) {
        sel[k] = static_cast<SelVector>(i);
        k += keys.count(buf[i].value());
      }
      if (k == 0) continue;
      GatherRows(left, base, sel.data(), k, &batch);
      out.AppendBatch(batch);
    }
  } else {
    std::unordered_set<std::vector<TermId>, RowKeyHash> keys(
        right.num_rows() == 0 ? 1 : right.num_rows());
    std::vector<TermId> key(right_key.size());
    for (size_t r = 0; r < right.num_rows(); ++r) {
      for (size_t k = 0; k < right_key.size(); ++k) {
        key[k] = right.at(r, right_key[k]);
      }
      keys.insert(key);
    }
    for (size_t base = 0; base < rows; base += kBatchRows) {
      if (ctx != nullptr) ctx->CheckStop();
      const size_t n = std::min(kBatchRows, rows - base);
      size_t k = 0;
      for (size_t i = 0; i < n; ++i) {
        for (size_t kk = 0; kk < left_key.size(); ++kk) {
          key[kk] = left.at(base + i, left_key[kk]);
        }
        sel[k] = static_cast<SelVector>(i);
        k += keys.count(key) ? 1 : 0;
      }
      if (k == 0) continue;
      GatherRows(left, base, sel.data(), k, &batch);
      out.AppendBatch(batch);
    }
  }
  if (stats != nullptr) stats->intermediate_rows += out.num_rows();
  return out;
}

BindingTable Project(const BindingTable& in,
                     const std::vector<std::string>& vars, QueryContext* ctx) {
  std::vector<int> cols;
  cols.reserve(vars.size());
  for (const std::string& v : vars) {
    int c = in.ColumnIndex(v);
    assert(c >= 0 && "projecting a missing column");
    cols.push_back(c);
  }
  BindingTable out(vars);
  if (vars.empty()) {
    out.SetNullaryRow(in.num_rows() > 0);
    return out;
  }
  const size_t rows = in.num_rows();
  Batch batch;
  for (size_t base = 0; base < rows; base += kBatchRows) {
    if (ctx != nullptr) ctx->CheckStop();
    const size_t n = std::min(kBatchRows, rows - base);
    batch.Reset(vars.size());
    for (size_t i = 0; i < vars.size(); ++i) {
      ExtractCol(in, base, n, static_cast<size_t>(cols[i]), batch.col(i));
    }
    batch.set_size(n);
    out.AppendBatch(batch);
  }
  return out;
}

BindingTable Distinct(const BindingTable& in, QueryContext* ctx) {
  BindingTable out(in.vars());
  if (in.num_cols() == 0) {
    out.SetNullaryRow(in.num_rows() > 0);
    return out;
  }
  // First-occurrence dedup over row indices: content-hashed in place.
  const size_t rows = in.num_rows();
  std::unordered_set<uint32_t, FlatRowHash, FlatRowEq> seen(
      /*bucket_count=*/64, FlatRowHash{&in}, FlatRowEq{&in});
  seen.reserve(rows);
  std::vector<SelVector> sel(kBatchRows);
  Batch batch;
  for (size_t base = 0; base < rows; base += kBatchRows) {
    if (ctx != nullptr) ctx->CheckStop();
    const size_t n = std::min(kBatchRows, rows - base);
    size_t k = 0;
    for (size_t i = 0; i < n; ++i) {
      if (seen.insert(static_cast<uint32_t>(base + i)).second) {
        sel[k++] = static_cast<SelVector>(i);
      }
    }
    if (k == 0) continue;
    GatherRows(in, base, sel.data(), k, &batch);
    out.AppendBatch(batch);
  }
  return out;
}

BindingTable Limit(const BindingTable& in, uint64_t limit) {
  BindingTable out(in.vars());
  if (in.num_cols() == 0) {
    out.SetNullaryRow(in.num_rows() > 0 && limit > 0);
    return out;
  }
  out.AppendRows(in, 0, std::min<uint64_t>(limit, in.num_rows()));
  return out;
}

BindingTable Offset(const BindingTable& in, uint64_t offset) {
  BindingTable out(in.vars());
  if (in.num_cols() == 0) {
    out.SetNullaryRow(in.num_rows() > offset);
    return out;
  }
  out.AppendRows(in, std::min<uint64_t>(offset, in.num_rows()), in.num_rows());
  return out;
}

BindingTable UnionAll(const BindingTable& left, const BindingTable& right,
                      ExecStats* stats, QueryContext* ctx) {
  std::vector<std::string> out_vars = left.vars();
  for (const std::string& v : right.vars()) {
    if (std::find(out_vars.begin(), out_vars.end(), v) == out_vars.end()) {
      out_vars.push_back(v);
    }
  }
  BindingTable out(out_vars);
  if (out_vars.empty()) {
    out.SetNullaryRow(left.num_rows() + right.num_rows() > 0);
    return out;
  }
  Batch batch;
  for (const BindingTable* side : {&left, &right}) {
    const size_t rows = side->num_rows();
    if (rows == 0) continue;
    if (side->vars() == out_vars) {
      // Schema-identical side: flat slab copies, one stop check per block.
      for (size_t base = 0; base < rows; base += kBatchRows) {
        if (ctx != nullptr) ctx->CheckStop();
        out.AppendRows(*side, base, base + std::min(kBatchRows, rows - base));
      }
      continue;
    }
    std::vector<int> cols(out_vars.size());
    for (size_t i = 0; i < out_vars.size(); ++i) {
      cols[i] = side->ColumnIndex(out_vars[i]);
    }
    for (size_t base = 0; base < rows; base += kBatchRows) {
      if (ctx != nullptr) ctx->CheckStop();
      const size_t n = std::min(kBatchRows, rows - base);
      batch.Reset(out_vars.size());
      for (size_t i = 0; i < out_vars.size(); ++i) {
        if (cols[i] >= 0) {
          ExtractCol(*side, base, n, static_cast<size_t>(cols[i]),
                     batch.col(i));
        } else {
          std::fill_n(batch.col(i), n, kInvalidId);
        }
      }
      batch.set_size(n);
      out.AppendBatch(batch);
    }
  }
  if (stats != nullptr) {
    stats->intermediate_rows += out.num_rows();
    stats->NotePeakBytes(out.ByteSize());
  }
  return out;
}

BindingTable CompatJoinImpl(const BindingTable& left, const BindingTable& right,
                            bool outer, ExecStats* stats, QueryContext* ctx) {
  CompatLayout lay = ComputeCompatLayout(left, right);

  // Unbound values in shared columns need full compatibility semantics
  // (unbound agrees with anything) — that path stays on the row reference
  // implementation; it is rare (only after nested OPTIONAL/UNION) and
  // inherently value-dependent. Detection itself is columnar.
  {
    std::vector<TermId> buf(kBatchRows);
    bool has_nulls = false;
    for (size_t k = 0; k < lay.left_key.size() && !has_nulls; ++k) {
      const size_t lc = static_cast<size_t>(lay.left_key[k]);
      for (size_t base = 0; base < left.num_rows() && !has_nulls;
           base += kBatchRows) {
        const size_t n = std::min(kBatchRows, left.num_rows() - base);
        ExtractCol(left, base, n, lc, buf.data());
        has_nulls = ColContains(buf.data(), n, kInvalidId);
      }
      const size_t rc = static_cast<size_t>(lay.right_key[k]);
      for (size_t base = 0; base < right.num_rows() && !has_nulls;
           base += kBatchRows) {
        const size_t n = std::min(kBatchRows, right.num_rows() - base);
        ExtractCol(right, base, n, rc, buf.data());
        has_nulls = ColContains(buf.data(), n, kInvalidId);
      }
    }
    if (has_nulls) {
      return row_ops::CompatJoinImpl(left, right, outer, stats, ctx);
    }
  }

  if (stats != nullptr) ++stats->joins;
  BindingTable out(lay.out_vars);
  if (lay.out_vars.empty()) {
    // Both sides nullary: the join is pure existence logic.
    out.SetNullaryRow(left.num_rows() > 0 && (outer || right.num_rows() > 0));
    return out;
  }
  if (left.num_cols() == 0 && left.num_rows() == 0) return out;

  // Hash path: build on the right, probe with every left row. With no
  // unbound key values the row engine's "take the right side's binding
  // when the left is unbound" merge can never fire (a left column shared
  // with the right IS a key column), so the output row is simply the left
  // row followed by the right-only columns.
  if (MemoryBudget* budget = BudgetScope::Current()) {
    budget->Charge(right.num_rows() * (2 * sizeof(size_t) +
                                       lay.right_key.size() * sizeof(TermId)));
  }
  const size_t right_rows = right.num_rows();
  const bool single = lay.right_key.size() == 1;
  std::unordered_map<uint32_t, std::vector<size_t>> table1;
  std::unordered_map<std::vector<TermId>, std::vector<size_t>, RowKeyHash>
      tablen;
  std::vector<TermId> keycol(kBatchRows);
  if (single) {
    table1.reserve(right_rows);
    const size_t rk = static_cast<size_t>(lay.right_key[0]);
    for (size_t base = 0; base < right_rows; base += kBatchRows) {
      if (ctx != nullptr) ctx->CheckStop();
      const size_t n = std::min(kBatchRows, right_rows - base);
      ExtractCol(right, base, n, rk, keycol.data());
      for (size_t i = 0; i < n; ++i) {
        table1[keycol[i].value()].push_back(base + i);
      }
    }
  } else {
    tablen.reserve(right_rows);
    std::vector<TermId> key(lay.right_key.size());
    for (size_t base = 0; base < right_rows; base += kBatchRows) {
      if (ctx != nullptr) ctx->CheckStop();
      const size_t n = std::min(kBatchRows, right_rows - base);
      for (size_t i = 0; i < n; ++i) {
        for (size_t k = 0; k < lay.right_key.size(); ++k) {
          key[k] = right.at(base + i, static_cast<size_t>(lay.right_key[k]));
        }
        tablen[key].push_back(base + i);
      }
    }
  }

  constexpr size_t kNoMatch = static_cast<size_t>(-1);
  const size_t lcols = left.num_cols();
  const size_t rcols = right.num_cols();
  const TermId* lf = left.flat().data();
  const TermId* rf = right.flat().data();
  std::vector<size_t> m_left;
  std::vector<size_t> m_right;  // kNoMatch = unmatched outer row
  Batch batch;
  auto flush = [&] {
    const size_t total = m_left.size();
    for (size_t off = 0; off < total; off += kBatchRows) {
      if (ctx != nullptr) ctx->CheckStop();
      const size_t n = std::min(kBatchRows, total - off);
      batch.Reset(lay.out_vars.size());
      for (size_t c = 0; c < lcols; ++c) {
        TermId* d = batch.col(c);
        for (size_t j = 0; j < n; ++j) d[j] = lf[m_left[off + j] * lcols + c];
      }
      for (size_t e = 0; e < lay.right_extra.size(); ++e) {
        TermId* d = batch.col(lcols + e);
        const size_t rc = static_cast<size_t>(lay.right_extra[e]);
        for (size_t j = 0; j < n; ++j) {
          const size_t rr = m_right[off + j];
          d[j] = rr == kNoMatch ? kInvalidId : rf[rr * rcols + rc];
        }
      }
      batch.set_size(n);
      out.AppendBatch(batch);
    }
    m_left.clear();
    m_right.clear();
  };

  const size_t left_rows = left.num_rows();
  if (single) {
    const size_t lk = static_cast<size_t>(lay.left_key[0]);
    for (size_t base = 0; base < left_rows; base += kBatchRows) {
      if (ctx != nullptr) ctx->CheckStop();
      const size_t n = std::min(kBatchRows, left_rows - base);
      ExtractCol(left, base, n, lk, keycol.data());
      for (size_t i = 0; i < n; ++i) {
        auto it = table1.find(keycol[i].value());
        if (it == table1.end()) {
          if (outer) {
            m_left.push_back(base + i);
            m_right.push_back(kNoMatch);
          }
          continue;
        }
        for (size_t rr : it->second) {
          m_left.push_back(base + i);
          m_right.push_back(rr);
        }
      }
      flush();
    }
  } else {
    std::vector<TermId> key(lay.left_key.size());
    for (size_t base = 0; base < left_rows; base += kBatchRows) {
      if (ctx != nullptr) ctx->CheckStop();
      const size_t n = std::min(kBatchRows, left_rows - base);
      for (size_t i = 0; i < n; ++i) {
        for (size_t k = 0; k < lay.left_key.size(); ++k) {
          key[k] = left.at(base + i, static_cast<size_t>(lay.left_key[k]));
        }
        auto it = tablen.find(key);
        if (it == tablen.end()) {
          if (outer) {
            m_left.push_back(base + i);
            m_right.push_back(kNoMatch);
          }
          continue;
        }
        for (size_t rr : it->second) {
          m_left.push_back(base + i);
          m_right.push_back(rr);
        }
      }
      flush();
    }
  }
  if (stats != nullptr) {
    stats->intermediate_rows += out.num_rows();
    stats->NotePeakBytes(out.ByteSize());
  }
  return out;
}

BindingTable FilterByExpr(const BindingTable& in, const FilterExpr& expr,
                          const Dictionary& dict, ExecStats* stats,
                          QueryContext* ctx) {
  BindingTable out(in.vars());
  FilterEvaluator eval(expr, in, dict);
  if (in.num_cols() == 0) {
    out.SetNullaryRow(in.num_rows() > 0 && eval.Keep(0));
    return out;
  }
  const size_t rows = in.num_rows();
  std::vector<SelVector> sel(kBatchRows);
  Batch batch;

  // Keep() is a pure function of the referenced columns' values, so when
  // the expression reads at most two columns the verdicts memoize by value
  // — repeated ids (the common case: FILTERs over low-cardinality columns
  // like years or types) skip the expression tree walk entirely. Variables
  // absent from the schema are unbound on every row, hence constant.
  std::vector<std::string> evars;
  expr.CollectVars(&evars);
  std::sort(evars.begin(), evars.end());
  evars.erase(std::unique(evars.begin(), evars.end()), evars.end());
  std::vector<size_t> ecols;
  for (const std::string& v : evars) {
    int c = in.ColumnIndex(v);
    if (c >= 0) ecols.push_back(static_cast<size_t>(c));
  }

  if (ecols.size() <= 2) {
    const size_t nec = ecols.size();
    std::unordered_map<uint64_t, bool> memo;
    std::vector<TermId> b0(kBatchRows);
    std::vector<TermId> b1(kBatchRows);
    for (size_t base = 0; base < rows; base += kBatchRows) {
      if (ctx != nullptr) ctx->CheckStop();
      const size_t n = std::min(kBatchRows, rows - base);
      if (nec >= 1) ExtractCol(in, base, n, ecols[0], b0.data());
      if (nec >= 2) ExtractCol(in, base, n, ecols[1], b1.data());
      size_t k = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t key =
            nec == 0 ? 0
                     : (nec == 1 ? b0[i].value()
                                 : (static_cast<uint64_t>(b0[i].value()) |
                                    static_cast<uint64_t>(b1[i].value())
                                        << 32));
        auto [it, fresh] = memo.try_emplace(key, false);
        if (fresh) it->second = eval.Keep(base + i);
        sel[k] = static_cast<SelVector>(i);
        k += it->second ? 1 : 0;
      }
      if (k == 0) continue;
      GatherRows(in, base, sel.data(), k, &batch);
      out.AppendBatch(batch);
    }
  } else {
    for (size_t base = 0; base < rows; base += kBatchRows) {
      if (ctx != nullptr) ctx->CheckStop();
      const size_t n = std::min(kBatchRows, rows - base);
      size_t k = 0;
      for (size_t i = 0; i < n; ++i) {
        sel[k] = static_cast<SelVector>(i);
        k += eval.Keep(base + i) ? 1 : 0;
      }
      if (k == 0) continue;
      GatherRows(in, base, sel.data(), k, &batch);
      out.AppendBatch(batch);
    }
  }
  if (stats != nullptr) stats->intermediate_rows += out.num_rows();
  return out;
}

BindingTable OrderBy(const BindingTable& in, const std::vector<OrderKey>& keys,
                     const Dictionary& dict, ExecStats* stats,
                     QueryContext* ctx) {
  BindingTable out(in.vars());
  if (in.num_cols() == 0) {
    out.SetNullaryRow(in.num_rows() > 0);
    return out;
  }
  if (in.num_rows() == 0) return out;
  std::vector<std::pair<size_t, bool>> key_cols;  // (column, ascending)
  for (const OrderKey& k : keys) {
    int c = in.ColumnIndex(k.var);
    if (c >= 0) key_cols.emplace_back(static_cast<size_t>(c), k.ascending);
  }
  // Rank the distinct key ids once in term order, exactly as the row
  // engine does (the budget charge formula depends on the distinct count).
  // Distinct collection is sort+unique over contiguous block extracts —
  // ascending id order, the same iteration order as the row engine's
  // std::set, so the keyed/rank tables below come out identical.
  const size_t rows = in.num_rows();
  std::vector<TermId> distinct;
  distinct.reserve(rows * key_cols.size());
  std::vector<TermId> buf(kBatchRows);
  for (const auto& [col, asc] : key_cols) {
    for (size_t base = 0; base < rows; base += kBatchRows) {
      if (ctx != nullptr) ctx->CheckStop();
      const size_t n = std::min(kBatchRows, rows - base);
      ExtractCol(in, base, n, col, buf.data());
      distinct.insert(distinct.end(), buf.data(), buf.data() + n);
    }
  }
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  if (MemoryBudget* budget = BudgetScope::Current()) {
    budget->Charge(rows * sizeof(size_t) +
                   distinct.size() * (sizeof(TermSortKey) + 64));
  }
  std::vector<std::pair<TermSortKey, TermId>> keyed;
  keyed.reserve(distinct.size());
  for (TermId id : distinct) keyed.emplace_back(MakeTermSortKey(id, dict), id);
  std::stable_sort(keyed.begin(), keyed.end(),
                   [](const auto& a, const auto& b) {
                     return CompareTermSortKeys(a.first, b.first) < 0;
                   });
  std::unordered_map<uint32_t, size_t> rank;
  rank.reserve(keyed.size());
  for (size_t i = 0; i < keyed.size(); ++i) {
    rank.emplace(keyed[i].second.value(), i);
  }

  std::vector<size_t> perm(rows);
  std::iota(perm.begin(), perm.end(), size_t{0});
  std::stable_sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
    for (const auto& [col, asc] : key_cols) {
      size_t ra = rank.at(in.at(a, col).value());
      size_t rb = rank.at(in.at(b, col).value());
      if (ra != rb) return asc ? ra < rb : ra > rb;
    }
    // Deterministic tie-break over the whole row.
    for (size_t c = 0; c < in.num_cols(); ++c) {
      TermId av = in.at(a, c);
      TermId bv = in.at(b, c);
      if (av != bv) return av < bv;
    }
    return false;
  });
  // Permutation gather, column-at-a-time per block.
  const size_t cols = in.num_cols();
  const TermId* f = in.flat().data();
  Batch batch;
  for (size_t base = 0; base < rows; base += kBatchRows) {
    if (ctx != nullptr) ctx->CheckStop();
    const size_t n = std::min(kBatchRows, rows - base);
    batch.Reset(cols);
    for (size_t c = 0; c < cols; ++c) {
      TermId* d = batch.col(c);
      for (size_t j = 0; j < n; ++j) d[j] = f[perm[base + j] * cols + c];
    }
    batch.set_size(n);
    out.AppendBatch(batch);
  }
  if (stats != nullptr) {
    stats->intermediate_rows += out.num_rows();
    stats->NotePeakBytes(out.ByteSize());
  }
  return out;
}

BindingTable GroupCount(const BindingTable& in,
                        const std::vector<std::string>& group_by,
                        const std::vector<Aggregate>& aggregates,
                        ExecStats* stats, QueryContext* ctx) {
  std::vector<std::string> out_vars = group_by;
  for (const Aggregate& a : aggregates) out_vars.push_back(a.as);
  BindingTable out(out_vars);

  std::vector<int> key_cols;
  key_cols.reserve(group_by.size());
  for (const std::string& v : group_by) key_cols.push_back(in.ColumnIndex(v));
  std::vector<int> arg_cols;  // -1 = COUNT(*)
  arg_cols.reserve(aggregates.size());
  for (const Aggregate& a : aggregates) {
    arg_cols.push_back(a.var.empty() ? -1 : in.ColumnIndex(a.var));
  }

  struct GroupState {
    std::vector<uint64_t> counts;
    std::vector<std::unordered_set<std::vector<TermId>, RowKeyHash>> distinct;
  };
  // Hash aggregation instead of the row engine's std::map: groups land in
  // insertion-order slots and are key-sorted once at the end, so the
  // emitted row order (and every budget-charge event) matches the row
  // engine exactly while each probe is O(1) instead of O(cols·log n).
  std::unordered_map<std::vector<TermId>, size_t, RowKeyHash> group_index;
  std::vector<std::pair<std::vector<TermId>, GroupState>> slots;

  const size_t rows = in.num_rows();
  std::vector<std::vector<TermId>> keybuf(key_cols.size(),
                                          std::vector<TermId>(kBatchRows));
  std::vector<TermId> key(key_cols.size());
  for (size_t base = 0; base < rows; base += kBatchRows) {
    if (ctx != nullptr) ctx->CheckStop();
    const size_t n = std::min(kBatchRows, rows - base);
    for (size_t k = 0; k < key_cols.size(); ++k) {
      if (key_cols[k] >= 0) {
        ExtractCol(in, base, n, static_cast<size_t>(key_cols[k]),
                   keybuf[k].data());
      } else {
        std::fill_n(keybuf[k].data(), n, kInvalidId);
      }
    }
    for (size_t i = 0; i < n; ++i) {
      const size_t r = base + i;
      for (size_t k = 0; k < key_cols.size(); ++k) key[k] = keybuf[k][i];
      auto [it, inserted] = group_index.try_emplace(key, slots.size());
      if (inserted) {
        if (MemoryBudget* budget = BudgetScope::Current()) {
          budget->Charge(key.size() * sizeof(TermId) + 64);
        }
        slots.emplace_back(key, GroupState{});
        slots.back().second.counts.assign(aggregates.size(), 0);
        slots.back().second.distinct.resize(aggregates.size());
      }
      GroupState& state = slots[it->second].second;
      for (size_t a = 0; a < aggregates.size(); ++a) {
        if (aggregates[a].distinct) {
          std::vector<TermId> value;
          if (arg_cols[a] < 0) {
            value.assign(in.row(r).begin(), in.row(r).end());
          } else {
            TermId v = in.at(r, static_cast<size_t>(arg_cols[a]));
            if (v == kInvalidId) continue;  // COUNT skips unbound
            value.push_back(v);
          }
          if (state.distinct[a].insert(std::move(value)).second) {
            if (MemoryBudget* budget = BudgetScope::Current()) {
              budget->Charge((key.size() + 1) * sizeof(TermId) + 48);
            }
          }
        } else {
          if (arg_cols[a] >= 0 &&
              in.at(r, static_cast<size_t>(arg_cols[a])) == kInvalidId) {
            continue;
          }
          ++state.counts[a];
        }
      }
    }
  }
  // With no grouping keys, aggregation over an empty input still produces
  // the single all-zero group (SPARQL: COUNT over zero solutions is 0).
  if (slots.empty() && group_by.empty()) {
    GroupState zero;
    zero.counts.assign(aggregates.size(), 0);
    zero.distinct.resize(aggregates.size());
    slots.emplace_back(std::vector<TermId>{}, std::move(zero));
  }
  // The row engine's std::map iterates in key id order; sort the slots
  // likewise before emitting.
  std::sort(slots.begin(), slots.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::vector<TermId> row(out_vars.size());
  size_t emitted = 0;
  for (const auto& [k, state] : slots) {
    if (ctx != nullptr && (emitted++ % kBatchRows) == 0) ctx->CheckStop();
    for (size_t i = 0; i < k.size(); ++i) row[i] = k[i];
    for (size_t a = 0; a < aggregates.size(); ++a) {
      uint64_t n = aggregates[a].distinct ? state.distinct[a].size()
                                          : state.counts[a];
      row[k.size() + a] = MakeValueId(static_cast<uint32_t>(
          std::min<uint64_t>(n, kValueIdTag - 1)));
    }
    out.AppendRow(row);
  }
  if (stats != nullptr) {
    stats->intermediate_rows += out.num_rows();
    stats->NotePeakBytes(out.ByteSize());
  }
  return out;
}

}  // namespace batch_ops
}  // namespace axon
