// FILTER expression evaluation and term ordering over dictionary-encoded
// bindings.
//
// Two pieces live here because they share the term-interpretation logic:
//
//  * TermSortKey / CompareTermSortKeys — a deterministic total order over
//    TermIds (including the unbound sentinel and value-tagged aggregate
//    ids) used by ORDER BY. The order follows SPARQL's: unbound < blank
//    nodes < IRIs < literals, numeric literals by value before other
//    literals by canonical form. Because the order depends only on term
//    *content*, every engine sorts identically regardless of its internal
//    row order.
//
//  * FilterEvaluator — SPARQL three-valued evaluation of a FilterExpr
//    against one row: comparisons touching an unbound variable are type
//    errors, errors act as false at the top level but propagate through
//    &&/|| with the standard truth tables, and bound() observes the
//    unbound sentinel directly.

#ifndef AXON_EXEC_EXPR_H_
#define AXON_EXEC_EXPR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "exec/bindings.h"
#include "rdf/dictionary.h"
#include "sparql/algebra.h"

namespace axon {

/// Comparable interpretation of one TermId. `cls` ranks term classes
/// (0 unbound, 1 blank, 2 IRI, 3 numeric literal, 4 other literal); within
/// a class, numeric literals compare by `num`, everything else by `str`
/// (the canonical form, which doubles as the total-order tie-break for
/// equal numeric values like "5" vs "05").
struct TermSortKey {
  int cls = 0;
  double num = 0.0;
  std::string str;
};

/// Builds the key for `id`. Handles kInvalidId (unbound) and value-tagged
/// aggregate ids without touching the dictionary.
TermSortKey MakeTermSortKey(TermId id, const Dictionary& dict);

/// Total order: negative / zero / positive like strcmp.
int CompareTermSortKeys(const TermSortKey& a, const TermSortKey& b);

/// Three-valued result of a filter (sub)expression.
enum class Ebv { kFalse = 0, kTrue = 1, kError = 2 };

/// Evaluates one FilterExpr against rows of one BindingTable. Column
/// indices and term keys are resolved once and cached, so per-row
/// evaluation does no dictionary work after warm-up.
class FilterEvaluator {
 public:
  FilterEvaluator(const FilterExpr& expr, const BindingTable& table,
                  const Dictionary& dict);

  /// The full SPARQL constraint semantics: kError collapses to "row
  /// dropped", i.e. only kTrue keeps the row.
  bool Keep(size_t row) const { return Eval(row) == Ebv::kTrue; }

  Ebv Eval(size_t row) const;

 private:
  Ebv EvalNode(const FilterExpr& e, size_t row) const;
  /// Resolves a kVar/kConst operand to its sort key; false on unbound or
  /// non-leaf operands (a SPARQL type error).
  bool OperandKey(const FilterExpr& e, size_t row, const TermSortKey** out) const;
  const TermSortKey& KeyForId(TermId id) const;

  const FilterExpr& expr_;
  const BindingTable& table_;
  const Dictionary& dict_;
  std::unordered_map<std::string, int> columns_;
  std::unordered_map<const FilterExpr*, TermSortKey> const_keys_;
  mutable std::unordered_map<uint32_t, TermSortKey> id_keys_;
};

}  // namespace axon

#endif  // AXON_EXEC_EXPR_H_
