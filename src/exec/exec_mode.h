// Execution-mode switch: row-at-a-time reference vs block-at-a-time
// columnar batches.
//
// Both modes run the same logical operators and are bit-identical in
// results and ExecStats (proven by the determinism/conformance suites and
// tests/batch_exec_test); they differ only in the shape of the inner
// loops. Batch is the production default; row is kept as the executable
// specification the batch kernels are diffed against, and as the ablation
// arm of the bench reports.
//
// The mode is resolved per operator call: a thread-local ExecModeScope
// override wins, otherwise the process-wide default applies. Worker pool
// threads see the process default, so flipping the default covers the
// parallel and sharded paths too — which is what the bench ablation and
// the row-vs-batch differential tests rely on.

#ifndef AXON_EXEC_EXEC_MODE_H_
#define AXON_EXEC_EXEC_MODE_H_

namespace axon {

enum class ExecMode {
  kRow,    // scalar per-row push/copy loops (reference path)
  kBatch,  // 1024-row columnar batches, selection vectors (default)
};

/// Process-wide default mode (kBatch unless overridden).
ExecMode DefaultExecMode();
void SetDefaultExecMode(ExecMode mode);

/// The mode operators on this thread resolve right now.
ExecMode CurrentExecMode();

/// RAII thread-local override, for tests and serial ablations. Scopes
/// nest; pool workers spawned inside a scope are NOT covered (they read
/// the process default) — use SetDefaultExecMode for parallel runs.
class ExecModeScope {
 public:
  explicit ExecModeScope(ExecMode mode);
  ~ExecModeScope();

  ExecModeScope(const ExecModeScope&) = delete;
  ExecModeScope& operator=(const ExecModeScope&) = delete;

 private:
  int prev_;  // -1 = no previous override
};

}  // namespace axon

#endif  // AXON_EXEC_EXEC_MODE_H_
