// File I/O primitives: a read-only memory-mapped view and a buffered
// sequential writer. The paper's loader keeps its triple vectors "off-heap,
// backed by a memory mapped file" (Sec. III.A); we use the same mechanism to
// read the persisted SPO/PSO tables without copying them into RAM.

#ifndef AXON_UTIL_MMAP_FILE_H_
#define AXON_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "util/status.h"

namespace axon {

/// Read-only memory map of a whole file. Movable, not copyable.
class MmapFile {
 public:
  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// Maps `path` read-only. A zero-length file maps successfully with
  /// data() == nullptr and size() == 0.
  Status Open(const std::string& path);
  void Close();

  bool is_open() const { return data_ != nullptr || size_ == 0; }
  const char* data() const { return data_; }
  size_t size() const { return size_; }
  std::string_view view() const { return {data_, size_}; }

 private:
  const char* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
};

/// Buffered sequential file writer with fixed/varint helpers.
class FileWriter {
 public:
  enum class Mode { kTruncate, kAppend };

  FileWriter() = default;
  ~FileWriter();

  FileWriter(const FileWriter&) = delete;
  FileWriter& operator=(const FileWriter&) = delete;

  /// Creates `path` for writing — truncated by default, or positioned at
  /// the current end with Mode::kAppend (the WAL reopen path).
  Status Open(const std::string& path, Mode mode = Mode::kTruncate);

  Status Append(const void* data, size_t n);
  Status Append(std::string_view s) { return Append(s.data(), s.size()); }
  Status AppendFixed32(uint32_t v);
  Status AppendFixed64(uint64_t v);

  /// Bytes appended so far, plus any pre-existing bytes in append mode
  /// (== file offset of the next Append).
  uint64_t offset() const { return offset_; }

  /// Flushes user-space buffers and fsyncs to stable storage. A write is
  /// durable — may be acknowledged — only after Sync() returns OK.
  Status Sync();

  /// Flushes and closes; returns the first error encountered. Does NOT
  /// imply durability — call Sync() first where that matters.
  Status Close();

 private:
  FILE* file_ = nullptr;
  uint64_t offset_ = 0;
};

/// Atomically renames `from` onto `to` (POSIX rename) and fsyncs the
/// parent directory so the rename itself is durable. The visible file at
/// `to` is always either the old or the new content, never a mix — the
/// commit step of every write-temp + fsync + rename protocol.
Status AtomicRename(const std::string& from, const std::string& to);

/// Reads a whole file into `out`. Convenience for small metadata sections.
Status ReadFileToString(const std::string& path, std::string* out);

/// Writes `data` to `path`, truncating.
Status WriteStringToFile(const std::string& path, std::string_view data);

}  // namespace axon

#endif  // AXON_UTIL_MMAP_FILE_H_
