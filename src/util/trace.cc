#include "util/trace.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>

namespace axon {

namespace obs {

namespace {
// -1 = read the environment on first use; 0/1 = decided.
std::atomic<int> g_enabled{-1};
}  // namespace

bool Enabled() {
  int s = g_enabled.load(std::memory_order_relaxed);
  if (s < 0) {
    const char* e = std::getenv("AXON_TRACE");
    s = (e != nullptr && *e != '\0' && std::strcmp(e, "0") != 0) ? 1 : 0;
    g_enabled.store(s, std::memory_order_relaxed);
  }
  return s == 1;
}

void SetEnabled(bool on) {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace obs

namespace trace {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct ThreadBuf {
  std::mutex mu;
  std::vector<Span> spans;     // open spans have duration_ns == 0
  std::vector<int32_t> stack;  // indices of open spans, innermost last
  uint32_t thread_index = 0;
  uint64_t epoch = 0;          // bumped by Clear(); stale spans drop
};

// Process-wide span storage; buffers outlive their threads. Leaked by
// design: spans may close during static destruction.
struct Registry {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadBuf>> bufs;
  uint64_t epoch_ns = NowNs();
};

Registry& GlobalRegistry() {
  static Registry* r = new Registry();
  return *r;
}

ThreadBuf* LocalBufOrRegister() {
  thread_local ThreadBuf* cell = nullptr;
  if (cell == nullptr) {
    Registry& r = GlobalRegistry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.bufs.push_back(std::make_unique<ThreadBuf>());
    r.bufs.back()->thread_index = static_cast<uint32_t>(r.bufs.size() - 1);
    cell = r.bufs.back().get();
  }
  return cell;
}

}  // namespace

Collector& Collector::Global() {
  static Collector* collector = new Collector();
  return *collector;
}

ScopedSpan::ScopedSpan(const char* name) : name_(name) {
  if (!obs::Enabled()) return;
  Registry& r = GlobalRegistry();
  ThreadBuf* buf = LocalBufOrRegister();
  start_ns_ = NowNs();
  std::lock_guard<std::mutex> lock(buf->mu);
  index_ = static_cast<int32_t>(buf->spans.size());
  Span s;
  s.name = name;
  s.start_ns = start_ns_ - r.epoch_ns;
  s.thread = buf->thread_index;
  s.parent = buf->stack.empty() ? -1 : buf->stack.back();
  buf->spans.push_back(std::move(s));
  buf->stack.push_back(index_);
  epoch_ = buf->epoch;
  buf_ = buf;
}

ScopedSpan::~ScopedSpan() {
  if (buf_ == nullptr) return;
  uint64_t dur = NowNs() - start_ns_;
  if (dur == 0) dur = 1;  // 0 marks "open"; a closed span is >= 1 ns
  auto* buf = static_cast<ThreadBuf*>(buf_);
  {
    std::lock_guard<std::mutex> lock(buf->mu);
    if (epoch_ == buf->epoch) {
      buf->spans[index_].duration_ns = dur;
      if (!buf->stack.empty() && buf->stack.back() == index_) {
        buf->stack.pop_back();
      }
    }
  }
  // Per-operator wall time for the metrics snapshot (microseconds).
  metrics::MetricsRegistry::Global()
      .GetHistogram(std::string("optime.") + name_)
      ->Observe(dur / 1000);
}

std::vector<Span> Collector::CollectSpans() const {
  Registry& r = GlobalRegistry();
  std::vector<Span> out;
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& buf : r.bufs) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    // Map this buffer's completed-span indices into `out`. Parents start
    // before their children, so a parent's remap entry is already set by
    // the time its children are visited.
    std::vector<int32_t> remap(buf->spans.size(), -1);
    for (size_t i = 0; i < buf->spans.size(); ++i) {
      const Span& s = buf->spans[i];
      if (s.duration_ns == 0) continue;  // still open
      Span copy = s;
      copy.parent = s.parent >= 0 ? remap[s.parent] : -1;
      remap[i] = static_cast<int32_t>(out.size());
      out.push_back(std::move(copy));
    }
  }
  return out;
}

void Collector::Clear() {
  Registry& r = GlobalRegistry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& buf : r.bufs) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->spans.clear();
    buf->stack.clear();
    ++buf->epoch;
  }
  r.epoch_ns = NowNs();
}

JsonValue Collector::ToJson() const {
  JsonValue out = JsonValue::Object();
  JsonValue spans = JsonValue::Array();
  for (const Span& s : CollectSpans()) {
    JsonValue j = JsonValue::Object();
    j["name"] = s.name;
    j["start_ns"] = s.start_ns;
    j["dur_ns"] = s.duration_ns;
    j["thread"] = static_cast<uint64_t>(s.thread);
    j["parent"] = static_cast<int64_t>(s.parent);
    spans.Append(std::move(j));
  }
  out["spans"] = std::move(spans);
  return out;
}

Status WriteJson(const std::string& path) {
  JsonValue out = JsonValue::Object();
  out["trace"] = Collector::Global().ToJson();
  out["metrics"] = metrics::MetricsRegistry::Global().Snapshot();
  return WriteJsonFile(path, out);
}

}  // namespace trace
}  // namespace axon
