#include "util/trace.h"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "util/mutex.h"

namespace axon {

namespace obs {

namespace {
// -1 = read the environment on first use; 0/1 = decided.
std::atomic<int> g_enabled{-1};
}  // namespace

bool Enabled() {
  int s = g_enabled.load(std::memory_order_relaxed);
  if (s < 0) {
    const char* e = std::getenv("AXON_TRACE");
    s = (e != nullptr && *e != '\0' && std::strcmp(e, "0") != 0) ? 1 : 0;
    g_enabled.store(s, std::memory_order_relaxed);
  }
  return s == 1;
}

void SetEnabled(bool on) {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace obs

namespace trace {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct ThreadBuf;

// Process-wide span storage; buffers outlive their threads. Leaked by
// design: spans may close during static destruction.
//
// epoch_ns (the collector's time origin) is atomic, not guarded: it is
// read on every span open — deliberately without taking Registry::mu on
// the hot path — while Clear() rewrites it. The original plain uint64_t
// was a data race (found while annotating this file for -Wthread-safety;
// regression-tested by TraceTest.ConcurrentSpansAndClearAreSafe under
// TSan).
struct Registry {
  Mutex mu;
  std::vector<std::unique_ptr<ThreadBuf>> bufs AXON_GUARDED_BY(mu);
  std::atomic<uint64_t> epoch_ns{NowNs()};
};

Registry& GlobalRegistry();

// Lock order (checked under -Wthread-safety-beta): Registry::mu is always
// acquired before any ThreadBuf::mu — CollectSpans/Clear iterate the
// buffer list under the registry lock and take each buffer lock nested
// inside it, while the span open/close paths take only the buffer lock.
struct ThreadBuf {
  Mutex mu AXON_ACQUIRED_AFTER(GlobalRegistry().mu);
  std::vector<Span> spans AXON_GUARDED_BY(mu);   // open: duration_ns == 0
  std::vector<int32_t> stack AXON_GUARDED_BY(mu);  // open spans, innermost
                                                   // last
  uint32_t thread_index = 0;  // immutable after registration
  uint64_t epoch AXON_GUARDED_BY(mu) = 0;  // bumped by Clear()
};

Registry& GlobalRegistry() {
  static Registry* r = new Registry();
  return *r;
}

ThreadBuf* LocalBufOrRegister() {
  thread_local ThreadBuf* cell = nullptr;
  if (cell == nullptr) {
    Registry& r = GlobalRegistry();
    MutexLock lock(&r.mu);
    r.bufs.push_back(std::make_unique<ThreadBuf>());
    r.bufs.back()->thread_index = static_cast<uint32_t>(r.bufs.size() - 1);
    cell = r.bufs.back().get();
  }
  return cell;
}

}  // namespace

Collector& Collector::Global() {
  static Collector* collector = new Collector();
  return *collector;
}

ScopedSpan::ScopedSpan(const char* name) : name_(name) {
  if (!obs::Enabled()) return;
  Registry& r = GlobalRegistry();
  ThreadBuf* buf = LocalBufOrRegister();
  start_ns_ = NowNs();
  uint64_t epoch_ns = r.epoch_ns.load(std::memory_order_relaxed);
  MutexLock lock(&buf->mu);
  index_ = static_cast<int32_t>(buf->spans.size());
  Span s;
  s.name = name;
  s.start_ns = start_ns_ - epoch_ns;
  s.thread = buf->thread_index;
  s.parent = buf->stack.empty() ? -1 : buf->stack.back();
  buf->spans.push_back(std::move(s));
  buf->stack.push_back(index_);
  epoch_ = buf->epoch;
  buf_ = buf;
}

ScopedSpan::~ScopedSpan() {
  if (buf_ == nullptr) return;
  uint64_t dur = NowNs() - start_ns_;
  if (dur == 0) dur = 1;  // 0 marks "open"; a closed span is >= 1 ns
  auto* buf = static_cast<ThreadBuf*>(buf_);
  {
    MutexLock lock(&buf->mu);
    if (epoch_ == buf->epoch) {
      buf->spans[index_].duration_ns = dur;
      if (!buf->stack.empty() && buf->stack.back() == index_) {
        buf->stack.pop_back();
      }
    }
  }
  // Per-operator wall time for the metrics snapshot (microseconds).
  metrics::MetricsRegistry::Global()
      .GetHistogram(std::string("optime.") + name_)
      ->Observe(dur / 1000);
}

std::vector<Span> Collector::CollectSpans() const {
  Registry& r = GlobalRegistry();
  std::vector<Span> out;
  MutexLock lock(&r.mu);
  for (const auto& owned : r.bufs) {
    ThreadBuf* buf = owned.get();
    MutexLock buf_lock(&buf->mu);
    // Map this buffer's completed-span indices into `out`. Parents start
    // before their children, so a parent's remap entry is already set by
    // the time its children are visited.
    std::vector<int32_t> remap(buf->spans.size(), -1);
    for (size_t i = 0; i < buf->spans.size(); ++i) {
      const Span& s = buf->spans[i];
      if (s.duration_ns == 0) continue;  // still open
      Span copy = s;
      copy.parent = s.parent >= 0 ? remap[s.parent] : -1;
      remap[i] = static_cast<int32_t>(out.size());
      out.push_back(std::move(copy));
    }
  }
  return out;
}

void Collector::Clear() {
  Registry& r = GlobalRegistry();
  MutexLock lock(&r.mu);
  for (const auto& owned : r.bufs) {
    ThreadBuf* buf = owned.get();
    MutexLock buf_lock(&buf->mu);
    buf->spans.clear();
    buf->stack.clear();
    ++buf->epoch;
  }
  r.epoch_ns.store(NowNs(), std::memory_order_relaxed);
}

JsonValue Collector::ToJson() const {
  JsonValue out = JsonValue::Object();
  JsonValue spans = JsonValue::Array();
  for (const Span& s : CollectSpans()) {
    JsonValue j = JsonValue::Object();
    j["name"] = s.name;
    j["start_ns"] = s.start_ns;
    j["dur_ns"] = s.duration_ns;
    j["thread"] = static_cast<uint64_t>(s.thread);
    j["parent"] = static_cast<int64_t>(s.parent);
    spans.Append(std::move(j));
  }
  out["spans"] = std::move(spans);
  return out;
}

Status WriteJson(const std::string& path) {
  JsonValue out = JsonValue::Object();
  out["trace"] = Collector::Global().ToJson();
  out["metrics"] = metrics::MetricsRegistry::Global().Snapshot();
  return WriteJsonFile(path, out);
}

}  // namespace trace
}  // namespace axon
