// Cooperative cancellation: one QueryContext per query unifies the three
// reasons an in-flight query must stop — wall-clock deadline, explicit
// caller cancel, per-query memory budget — behind a single sticky check.
//
// Propagation model: the context is passed down executor -> operators ->
// baselines -> sharded scatter/gather. Scan loops call CheckStop() every
// kStopCheckRows rows (one B+-tree leaf, the engine's natural access
// granule), which throws QueryStopError; WaitGroup/ParallelFor rethrow a
// worker's exception to the merging thread, and the query fault boundary
// (Executor::Execute, ShardedDatabase::Execute, EvaluateBgpGreedy)
// translates it into the Status matching the stop cause. The first cause
// observed wins and is sticky, so a query that both times out and is
// cancelled reports one deterministic-enough terminal status and every
// worker quiesces promptly.

#ifndef AXON_UTIL_CANCELLATION_H_
#define AXON_UTIL_CANCELLATION_H_

#include <atomic>
#include <cstdint>
#include <stdexcept>

#include "util/resource_governor.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace axon {

/// Rows scanned between cooperative stop checks: one B+-tree leaf
/// (storage/btree.h kFanout), so cancellation latency is bounded by a
/// single leaf scan per worker.
inline constexpr uint64_t kStopCheckRows = 64;

/// Sticky cancel flag, owned by the caller and shared with every task of
/// the query it governs. Thread-safe; Cancel() is idempotent.
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Why a query stopped early.
enum class StopCause {
  kNone = 0,
  kDeadline,   // timeout_millis elapsed
  kCancelled,  // CancellationToken fired
  kBudget,     // memory budget exceeded
};

/// Thrown by CheckStop() inside operators/scan loops; caught at the query
/// fault boundary and mapped to StopStatus().
class QueryStopError : public std::runtime_error {
 public:
  explicit QueryStopError(StopCause cause)
      : std::runtime_error("axon: query stopped"), cause_(cause) {}
  StopCause cause() const { return cause_; }

 private:
  StopCause cause_;
};

/// Per-query execution context: deadline + budget + cancel token. Owned by
/// the query entry point; all of the query's tasks share one instance.
class QueryContext {
 public:
  QueryContext() : QueryContext(0, 0, nullptr) {}
  explicit QueryContext(uint64_t timeout_millis,
                        uint64_t memory_budget_bytes = 0,
                        const CancellationToken* cancel = nullptr)
      : timeout_millis_(timeout_millis),
        deadline_(timeout_millis),
        budget_(memory_budget_bytes),
        cancel_(cancel) {}

  QueryContext(const QueryContext&) = delete;
  QueryContext& operator=(const QueryContext&) = delete;

  /// True once any stop cause fired; records the first cause observed.
  bool ShouldStop() {
    if (cause_.load(std::memory_order_relaxed) != StopCause::kNone) {
      return true;
    }
    if (cancel_ != nullptr && cancel_->cancelled()) {
      return Fire(StopCause::kCancelled);
    }
    if (deadline_.Expired()) return Fire(StopCause::kDeadline);
    if (budget_.exceeded()) return Fire(StopCause::kBudget);
    return false;
  }

  /// Throws QueryStopError when ShouldStop(). The per-leaf check used by
  /// scan loops.
  void CheckStop() {
    if (ShouldStop()) throw QueryStopError(cause());
  }

  StopCause cause() const { return cause_.load(std::memory_order_relaxed); }

  /// The terminal Status for the recorded stop cause.
  Status StopStatus() const;

  uint64_t timeout_millis() const { return timeout_millis_; }
  MemoryBudget* budget() { return &budget_; }
  const MemoryBudget& budget() const { return budget_; }
  const CancellationToken* cancel_token() const { return cancel_; }

 private:
  bool Fire(StopCause cause) {
    StopCause expected = StopCause::kNone;
    cause_.compare_exchange_strong(expected, cause,
                                   std::memory_order_relaxed);
    return true;
  }

  uint64_t timeout_millis_;
  Deadline deadline_;
  MemoryBudget budget_;
  const CancellationToken* cancel_;
  std::atomic<StopCause> cause_{StopCause::kNone};
};

}  // namespace axon

#endif  // AXON_UTIL_CANCELLATION_H_
