// Fixed-size thread pool for intra-engine parallelism.
//
// Design constraints (see DESIGN.md "Threading model"):
//  * No work stealing, no task priorities — the engine's parallel units
//    (partition sorts, per-ECS range scans, shard scatters) are coarse and
//    embarrassingly parallel, so a mutex-protected FIFO is enough and keeps
//    the pool auditable under TSan.
//  * Tasks never block on the pool. Helpers that fan out (WaitGroup,
//    ParallelFor, ParallelSort) run inline when called from a worker
//    thread, which makes nested parallelism safe by construction (no
//    worker ever waits for a task that needs a worker to run).
//  * Exceptions thrown by tasks are captured and rethrown to the waiter
//    (first one wins), so Status-based callers see failures at the point
//    where they Wait().
//
// The `parallelism` knob on EngineOptions maps onto this via MakePool():
// 0 = hardware concurrency, 1 = no pool (the serial reference path), K>1 =
// K worker threads.

#ifndef AXON_UTIL_THREAD_POOL_H_
#define AXON_UTIL_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.h"

namespace axon {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains the queue and joins the workers. All WaitGroups built on this
  /// pool must have been waited on before destruction.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues a task. Thread-safe; callable from any thread, including
  /// workers (the task will simply run later — never wait for it from a
  /// worker).
  void Submit(std::function<void()> fn);

  /// True on a thread currently executing a pool task (any pool).
  static bool InWorker();

  /// Resolves the EngineOptions::parallelism knob: 0 = hardware
  /// concurrency, otherwise the value itself.
  static size_t ResolveThreads(uint32_t parallelism);

 private:
  void WorkerLoop();

  Mutex mu_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ AXON_GUARDED_BY(mu_);
  bool stop_ AXON_GUARDED_BY(mu_) = false;
  // Written only by the constructor (before workers can observe `this`
  // escaping) and joined by the destructor; never mutated in between.
  std::vector<std::thread> threads_;
};

/// Creates a pool for the given parallelism knob, or nullptr when the
/// resolved thread count is 1 — the null pool selects the serial reference
/// path everywhere.
std::shared_ptr<ThreadPool> MakePool(uint32_t parallelism);

/// Tracks a batch of tasks submitted to a pool. With a null pool (or when
/// constructed on a worker thread) tasks run inline in submission order —
/// the serial reference path. Wait() rethrows the first task exception.
class WaitGroup {
 public:
  explicit WaitGroup(ThreadPool* pool);
  ~WaitGroup();

  WaitGroup(const WaitGroup&) = delete;
  WaitGroup& operator=(const WaitGroup&) = delete;

  /// Submits one task (or runs it inline on the serial path).
  void Run(std::function<void()> fn);

  /// Blocks until every submitted task finished; rethrows the first
  /// exception any task threw.
  void Wait();

 private:
  ThreadPool* pool_;  // nullptr => inline execution
  Mutex mu_;
  CondVar cv_;
  size_t pending_ AXON_GUARDED_BY(mu_) = 0;
  std::exception_ptr error_ AXON_GUARDED_BY(mu_);
};

/// Runs fn(i) for every i in [0, n). Indices are processed in blocks; the
/// serial fallback (null pool, worker thread, or tiny n) preserves index
/// order exactly. Rethrows the first task exception.
void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn);

/// Sorts `v` with `comp` using chunked std::sort + pairwise merges on the
/// pool. `comp` must be a strict total order for the result to be
/// bit-identical to a serial std::sort (all engine sort keys are full
/// tuples, so this holds).
template <typename T, typename Comp>
void ParallelSort(ThreadPool* pool, std::vector<T>* v, Comp comp) {
  const size_t n = v->size();
  size_t parts = pool == nullptr || ThreadPool::InWorker()
                     ? 1
                     : std::min(pool->num_threads(), n / 4096);
  if (parts < 2) {
    std::sort(v->begin(), v->end(), comp);
    return;
  }
  std::vector<size_t> bounds(parts + 1);
  for (size_t i = 0; i <= parts; ++i) bounds[i] = i * n / parts;
  ParallelFor(pool, parts, [&](size_t i) {
    std::sort(v->begin() + bounds[i], v->begin() + bounds[i + 1], comp);
  });
  for (size_t width = 1; width < parts; width *= 2) {
    struct Merge {
      size_t lo, mid, hi;
    };
    std::vector<Merge> merges;
    for (size_t i = 0; i + width < parts; i += 2 * width) {
      merges.push_back(Merge{bounds[i], bounds[i + width],
                             bounds[std::min(i + 2 * width, parts)]});
    }
    ParallelFor(pool, merges.size(), [&](size_t m) {
      std::inplace_merge(v->begin() + merges[m].lo, v->begin() + merges[m].mid,
                         v->begin() + merges[m].hi, comp);
    });
  }
}

/// Shared per-query deadline: one steady-clock target, one sticky atomic
/// flag checked by every worker task. Expired() is monotonic — once the
/// deadline fires, every subsequent check (on any thread) reports true, so
/// all of a query's tasks quiesce promptly and the caller returns a single
/// DeadlineExceeded.
class Deadline {
 public:
  /// timeout_millis = 0 disables the deadline entirely.
  explicit Deadline(uint64_t timeout_millis)
      : enabled_(timeout_millis != 0),
        at_(std::chrono::steady_clock::now() +
            std::chrono::milliseconds(timeout_millis)) {}

  /// Checks the clock (cheap; sticky once fired).
  bool Expired() {
    if (!enabled_) return false;
    if (hit_.load(std::memory_order_relaxed)) return true;
    if (std::chrono::steady_clock::now() >= at_) {
      hit_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// True iff some thread already observed expiry.
  bool hit() const { return hit_.load(std::memory_order_relaxed); }

 private:
  bool enabled_;
  std::chrono::steady_clock::time_point at_;
  std::atomic<bool> hit_{false};
};

}  // namespace axon

#endif  // AXON_UTIL_THREAD_POOL_H_
