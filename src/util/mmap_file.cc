#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>

#include "util/failpoint.h"
#include "util/varint.h"

namespace axon {

namespace {
Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::IOError(op + " " + path + ": " + std::strerror(errno));
}
}  // namespace

MmapFile::~MmapFile() { Close(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(other.data_), size_(other.size_), mapped_(other.mapped_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Close();
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

Status MmapFile::Open(const std::string& path) {
  Close();
  AXON_FAILPOINT_STATUS("mmap.open");
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return ErrnoStatus("fstat", path);
  }
  size_ = static_cast<size_t>(st.st_size);
  if (size_ == 0) {
    ::close(fd);
    data_ = nullptr;
    mapped_ = false;
    return Status::OK();
  }
  void* p = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (p == MAP_FAILED) {
    size_ = 0;
    return ErrnoStatus("mmap", path);
  }
  data_ = static_cast<const char*>(p);
  mapped_ = true;
  return Status::OK();
}

void MmapFile::Close() {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

FileWriter::~FileWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status FileWriter::Open(const std::string& path, Mode mode) {
  if (file_ != nullptr) return Status::Internal("FileWriter already open");
  AXON_FAILPOINT_STATUS("file.open");
  file_ = std::fopen(path.c_str(), mode == Mode::kAppend ? "ab" : "wb");
  if (file_ == nullptr) return ErrnoStatus("fopen", path);
  if (mode == Mode::kAppend) {
    long at = std::ftell(file_);
    if (at < 0) {
      std::fclose(file_);
      file_ = nullptr;
      return ErrnoStatus("ftell", path);
    }
    offset_ = static_cast<uint64_t>(at);
  } else {
    offset_ = 0;
  }
  return Status::OK();
}

Status FileWriter::Append(const void* data, size_t n) {
  if (file_ == nullptr) return Status::Internal("FileWriter not open");
  if (n == 0) return Status::OK();
  const auto fp = AXON_FAILPOINT_EVAL("file.write");
  if (fp) {
    failpoint::Execute("file.write", fp);
    if (fp.action == failpoint::Action::kError) {
      return failpoint::InjectedError("file.write");
    }
    if (fp.action == failpoint::Action::kShortIo) {
      // Torn write: a prefix reaches the file, then the device fails —
      // exactly what a full disk or yanked cable produces.
      size_t cut = std::min<size_t>(n, static_cast<size_t>(fp.arg));
      if (cut > 0 && std::fwrite(data, 1, cut, file_) == cut) offset_ += cut;
      return failpoint::InjectedError("file.write");
    }
    if (fp.action == failpoint::Action::kBitflip) {
      // Silent corruption: the write "succeeds" with one bit flipped.
      // Checksums on the read path must catch this.
      std::string corrupt(static_cast<const char*>(data), n);
      size_t bit = static_cast<size_t>(fp.arg % (8 * n));
      corrupt[bit / 8] = static_cast<char>(
          corrupt[bit / 8] ^ static_cast<char>(1u << (bit % 8)));
      if (std::fwrite(corrupt.data(), 1, n, file_) != n) {
        return Status::IOError("fwrite failed: " +
                               std::string(std::strerror(errno)));
      }
      offset_ += n;
      return Status::OK();
    }
  }
  if (std::fwrite(data, 1, n, file_) != n) {
    return Status::IOError("fwrite failed: " +
                           std::string(std::strerror(errno)));
  }
  offset_ += n;
  return Status::OK();
}

Status FileWriter::AppendFixed32(uint32_t v) {
  std::string buf;
  PutFixed32(&buf, v);
  return Append(buf);
}

Status FileWriter::AppendFixed64(uint64_t v) {
  std::string buf;
  PutFixed64(&buf, v);
  return Append(buf);
}

Status FileWriter::Sync() {
  if (file_ == nullptr) return Status::Internal("FileWriter not open");
  AXON_FAILPOINT_STATUS("file.sync");
  if (std::fflush(file_) != 0) {
    return Status::IOError("fflush failed: " +
                           std::string(std::strerror(errno)));
  }
  if (::fsync(::fileno(file_)) != 0) {
    return Status::IOError("fsync failed: " +
                           std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Status FileWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  Status st = Status::OK();
  if (std::fflush(file_) != 0) st = Status::IOError("fflush failed");
  if (std::fclose(file_) != 0 && st.ok()) st = Status::IOError("fclose failed");
  file_ = nullptr;
  return st;
}

Status AtomicRename(const std::string& from, const std::string& to) {
  AXON_FAILPOINT_STATUS("atomic.rename");
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return ErrnoStatus("rename", from + " -> " + to);
  }
  // Durability of the rename itself: fsync the parent directory. Best
  // effort — some filesystems reject O_RDONLY|O_DIRECTORY fsync; the
  // rename already happened, so failure here is not fatal to atomicity.
  std::string dir = ".";
  size_t slash = to.find_last_of('/');
  if (slash != std::string::npos) dir = to.substr(0, slash);
  int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  MmapFile f;
  AXON_RETURN_NOT_OK(f.Open(path));
  out->assign(f.data(), f.size());
  return Status::OK();
}

Status WriteStringToFile(const std::string& path, std::string_view data) {
  FileWriter w;
  AXON_RETURN_NOT_OK(w.Open(path));
  AXON_RETURN_NOT_OK(w.Append(data));
  return w.Close();
}

}  // namespace axon
