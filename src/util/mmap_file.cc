#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/varint.h"

namespace axon {

namespace {
Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status::IOError(op + " " + path + ": " + std::strerror(errno));
}
}  // namespace

MmapFile::~MmapFile() { Close(); }

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(other.data_), size_(other.size_), mapped_(other.mapped_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_ = false;
}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    Close();
    data_ = other.data_;
    size_ = other.size_;
    mapped_ = other.mapped_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_ = false;
  }
  return *this;
}

Status MmapFile::Open(const std::string& path) {
  Close();
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoStatus("open", path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return ErrnoStatus("fstat", path);
  }
  size_ = static_cast<size_t>(st.st_size);
  if (size_ == 0) {
    ::close(fd);
    data_ = nullptr;
    mapped_ = false;
    return Status::OK();
  }
  void* p = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (p == MAP_FAILED) {
    size_ = 0;
    return ErrnoStatus("mmap", path);
  }
  data_ = static_cast<const char*>(p);
  mapped_ = true;
  return Status::OK();
}

void MmapFile::Close() {
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<char*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

FileWriter::~FileWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status FileWriter::Open(const std::string& path) {
  if (file_ != nullptr) return Status::Internal("FileWriter already open");
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) return ErrnoStatus("fopen", path);
  offset_ = 0;
  return Status::OK();
}

Status FileWriter::Append(const void* data, size_t n) {
  if (file_ == nullptr) return Status::Internal("FileWriter not open");
  if (n == 0) return Status::OK();
  if (std::fwrite(data, 1, n, file_) != n) {
    return Status::IOError("fwrite failed: " +
                           std::string(std::strerror(errno)));
  }
  offset_ += n;
  return Status::OK();
}

Status FileWriter::AppendFixed32(uint32_t v) {
  std::string buf;
  PutFixed32(&buf, v);
  return Append(buf);
}

Status FileWriter::AppendFixed64(uint64_t v) {
  std::string buf;
  PutFixed64(&buf, v);
  return Append(buf);
}

Status FileWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  Status st = Status::OK();
  if (std::fflush(file_) != 0) st = Status::IOError("fflush failed");
  if (std::fclose(file_) != 0 && st.ok()) st = Status::IOError("fclose failed");
  file_ = nullptr;
  return st;
}

Status ReadFileToString(const std::string& path, std::string* out) {
  MmapFile f;
  AXON_RETURN_NOT_OK(f.Open(path));
  out->assign(f.data(), f.size());
  return Status::OK();
}

Status WriteStringToFile(const std::string& path, std::string_view data) {
  FileWriter w;
  AXON_RETURN_NOT_OK(w.Open(path));
  AXON_RETURN_NOT_OK(w.Append(data));
  return w.Close();
}

}  // namespace axon
