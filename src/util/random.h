// Deterministic pseudo-random generator for the data generators.
// xoshiro256** seeded via SplitMix64: fast, high quality, and — critically
// for reproducible experiments — identical streams for identical seeds on
// every platform (unlike std::mt19937 + distribution objects, whose
// libstdc++/libc++ outputs differ).

#ifndef AXON_UTIL_RANDOM_H_
#define AXON_UTIL_RANDOM_H_

#include <cstdint>

namespace axon {

class Random {
 public:
  explicit Random(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 to fill the state from one seed word.
    uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      si = z ^ (z >> 31);
    }
  }

  uint64_t Next() {
    uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Zipf-like skewed pick in [0, n): low indices are much more likely.
  /// Used to give generated datasets the heavy-tailed degree distributions
  /// of real RDF graphs.
  uint64_t Skewed(uint64_t n, double exponent = 1.0) {
    if (n <= 1) return 0;
    // Inverse-CDF approximation of a bounded Pareto.
    double u = NextDouble();
    double x = (exponent == 1.0)
                   ? (static_cast<double>(n) - 1.0) * u * u
                   : (static_cast<double>(n) - 1.0) * u * u * exponent / 2.0;
    uint64_t v = static_cast<uint64_t>(x);
    return v >= n ? n - 1 : v;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace axon

#endif  // AXON_UTIL_RANDOM_H_
