// LEB128-style variable-length integer coding, used by the dictionary and
// the database file format to keep offset tables compact.

#ifndef AXON_UTIL_VARINT_H_
#define AXON_UTIL_VARINT_H_

#include <cstdint>
#include <string>

namespace axon {

/// Appends a varint encoding of `v` (1..10 bytes) to `out`.
inline void PutVarint64(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

inline void PutVarint32(std::string* out, uint32_t v) {
  PutVarint64(out, v);
}

/// Decodes a varint starting at `p`; returns the first byte past the varint,
/// or nullptr if the encoding runs past `limit` or overflows 64 bits.
inline const char* GetVarint64(const char* p, const char* limit,
                               uint64_t* value) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63 && p < limit; shift += 7) {
    uint64_t byte = static_cast<unsigned char>(*p);
    ++p;
    if (byte & 0x80) {
      result |= (byte & 0x7f) << shift;
    } else {
      result |= byte << shift;
      *value = result;
      return p;
    }
  }
  return nullptr;
}

inline const char* GetVarint32(const char* p, const char* limit,
                               uint32_t* value) {
  uint64_t v64 = 0;
  const char* q = GetVarint64(p, limit, &v64);
  if (q == nullptr || v64 > UINT32_MAX) return nullptr;
  *value = static_cast<uint32_t>(v64);
  return q;
}

/// Appends a 32-bit little-endian fixed-width integer.
inline void PutFixed32(std::string* out, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xff);
  buf[1] = static_cast<char>((v >> 8) & 0xff);
  buf[2] = static_cast<char>((v >> 16) & 0xff);
  buf[3] = static_cast<char>((v >> 24) & 0xff);
  out->append(buf, 4);
}

inline void PutFixed64(std::string* out, uint64_t v) {
  PutFixed32(out, static_cast<uint32_t>(v & 0xffffffff));
  PutFixed32(out, static_cast<uint32_t>(v >> 32));
}

inline uint32_t DecodeFixed32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

inline uint64_t DecodeFixed64(const char* p) {
  return static_cast<uint64_t>(DecodeFixed32(p)) |
         (static_cast<uint64_t>(DecodeFixed32(p + 4)) << 32);
}

}  // namespace axon

#endif  // AXON_UTIL_VARINT_H_
