#include "util/metrics.h"

#include <bit>
#include <map>
#include <memory>

#include "util/mutex.h"

namespace axon {
namespace metrics {

namespace {

inline int BucketOf(uint64_t value) {
  // 0,1 -> 0; [2,4) -> 2; [2^(i-1), 2^i) -> i.
  return value < 2 ? 0 : 64 - std::countl_zero(value);
}

}  // namespace

void Histogram::Observe(uint64_t value) {
  buckets_[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < value &&
         !max_.compare_exchange_weak(prev, value, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Quantile(double q) const {
  uint64_t total = count();
  if (total == 0) return 0;
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
  if (rank >= total) rank = total - 1;
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen > rank) {
      return i == 0 ? 1 : (uint64_t{1} << i) - 1;  // bucket upper bound
    }
  }
  return max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

JsonValue Histogram::ToJson() const {
  JsonValue out = JsonValue::Object();
  uint64_t n = count();
  out["count"] = n;
  out["sum"] = sum();
  out["mean"] =
      n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  out["max"] = max();
  out["p50"] = Quantile(0.50);
  out["p90"] = Quantile(0.90);
  out["p99"] = Quantile(0.99);
  return out;
}

struct MetricsRegistry::Impl {
  mutable Mutex mu;
  // std::map: sorted snapshots; unique_ptr: stable addresses across growth
  // (Counter/Histogram themselves are lock-free atomics, so only the maps
  // need the registry lock).
  std::map<std::string, std::unique_ptr<Counter>> counters
      AXON_GUARDED_BY(mu);
  std::map<std::string, std::unique_ptr<Histogram>> histograms
      AXON_GUARDED_BY(mu);
};

MetricsRegistry::Impl* MetricsRegistry::impl() {
  static Impl* impl = new Impl();  // leaked by design
  return impl;
}

const MetricsRegistry::Impl* MetricsRegistry::impl() const {
  return const_cast<MetricsRegistry*>(this)->impl();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  Impl* im = impl();
  MutexLock lock(&im->mu);
  auto& slot = im->counters[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  Impl* im = impl();
  MutexLock lock(&im->mu);
  auto& slot = im->histograms[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::ResetAll() {
  Impl* im = impl();
  MutexLock lock(&im->mu);
  for (auto& [name, c] : im->counters) c->Reset();
  for (auto& [name, h] : im->histograms) h->Reset();
}

JsonValue MetricsRegistry::Snapshot() const {
  const Impl* im = impl();
  MutexLock lock(&im->mu);
  JsonValue out = JsonValue::Object();
  JsonValue counters = JsonValue::Object();
  for (const auto& [name, c] : im->counters) {
    if (c->value() != 0) counters[name] = c->value();
  }
  JsonValue histograms = JsonValue::Object();
  for (const auto& [name, h] : im->histograms) {
    if (h->count() != 0) histograms[name] = h->ToJson();
  }
  out["counters"] = std::move(counters);
  out["histograms"] = std::move(histograms);
  return out;
}

}  // namespace metrics
}  // namespace axon
