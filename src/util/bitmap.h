// Dynamic property bitmap.
//
// Characteristic sets are represented as bitmaps over the dataset's property
// ids (Sec. III.B of the paper): bit i is set iff property i is emitted by
// the subject. All query-to-data matching reduces to the subset test
// `a AND b == a`, which this class implements with word-wise operations.

#ifndef AXON_UTIL_BITMAP_H_
#define AXON_UTIL_BITMAP_H_

#include <cstdint>
#include <string>
#include <vector>

namespace axon {

/// A fixed-capacity-after-construction bitset sized to the number of distinct
/// properties in a dataset (Table II shows this is small: 18..80 in
/// practice, so a bitmap is a few machine words).
class Bitmap {
 public:
  Bitmap() = default;
  /// Creates an all-zero bitmap able to hold bits [0, num_bits).
  explicit Bitmap(uint32_t num_bits);

  uint32_t num_bits() const { return num_bits_; }

  /// Sets bit `i`; grows the bitmap if `i >= num_bits()`.
  void Set(uint32_t i);
  void Clear(uint32_t i);
  bool Test(uint32_t i) const;

  /// Number of set bits.
  uint32_t Count() const;
  bool Empty() const { return Count() == 0; }

  /// True iff every bit set in *this is also set in `other`
  /// (i.e. `*this AND other == *this`).
  bool IsSubsetOf(const Bitmap& other) const;

  /// True iff the two bitmaps share at least one set bit.
  bool Intersects(const Bitmap& other) const;

  Bitmap And(const Bitmap& other) const;
  Bitmap Or(const Bitmap& other) const;

  /// Indices of all set bits, ascending.
  std::vector<uint32_t> ToIndices() const;

  /// Builds a bitmap with the given bit indices set.
  static Bitmap FromIndices(const std::vector<uint32_t>& indices,
                            uint32_t num_bits = 0);

  /// Deterministic content hash (used to dedupe characteristic sets during
  /// extraction: Algorithm 1 hashes the aggregated property bitmap).
  uint64_t Hash() const;

  bool operator==(const Bitmap& other) const;
  bool operator!=(const Bitmap& other) const { return !(*this == other); }

  /// "{0,3,7}" — for logs and test failure messages.
  std::string ToString() const;

  /// Raw words, little-endian bit order within a word (for serialization).
  const std::vector<uint64_t>& words() const { return words_; }
  /// Rebuilds from serialized words.
  static Bitmap FromWords(std::vector<uint64_t> words, uint32_t num_bits);

 private:
  // Drops set bits beyond num_bits_ would be a bug; words beyond the last
  // meaningful bit are kept zero so Hash()/operator== stay canonical.
  void Normalize();

  uint32_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace axon

#endif  // AXON_UTIL_BITMAP_H_
