// Failpoint fault-injection framework.
//
// A failpoint is a named site in production code where a fault — an I/O
// error, a short write, a delay, a flipped bit, an allocation failure or a
// hard crash — can be injected deterministically by tests, the chaos
// harness or an operator. Sites are free when disarmed and compile to
// nothing entirely under -DAXON_FAILPOINTS=OFF (the default for Release
// builds), so the framework is provably zero-cost in production.
//
// Usage at a site:
//
//   Status FileWriter::Sync() {
//     AXON_FAILPOINT_STATUS("file.sync");   // err/delay/crash injectable
//     ...
//   }
//
// Arming (programmatic, e.g. from a test):
//
//   failpoint::SetSeed(42);
//   ASSERT_TRUE(failpoint::Arm("file.sync", "err@0.3").ok());
//   ...
//   failpoint::DisarmAll();
//
// Arming via environment (picked up by ArmFromEnv(), which main()-less
// test binaries call lazily on the first Eval):
//
//   AXON_FAILPOINTS='dbfile.fsync=err@0.3,pool.task=delay:5ms' ./chaos_run
//
// Spec grammar (one per site):  action[:arg][@prob][*count][+skip]
//   err          evaluate to an injected IOError at the site
//   short:N      truncate the I/O to at most N bytes, then error
//   delay[:Tms]  sleep T milliseconds (default 1) before proceeding
//   bitflip      flip one deterministic bit in the site's buffer
//   oom          throw std::bad_alloc at the site
//   crash        std::_Exit(kCrashExitCode) at the site, no cleanup — the
//                process dies as if SIGKILLed mid-operation
//   @P           fire with probability P in [0,1] (deterministic in the
//                seed set via SetSeed; default: always)
//   *N           fire at most N times, then the site goes quiet
//   +K           skip the first K evaluations before the first fire
//
// Site-naming convention: <module>.<operation>[.<detail>], e.g.
// "file.write", "dbfile.write.section", "wal.append", "pool.task",
// "exec.query", "atomic.rename". See DESIGN.md §8 for the full registry.
//
// The registry (Arm/Disarm/Eval/Hits) is always compiled — it is a few
// hundred bytes and lets tests and tools link in every configuration; the
// AXON_FAILPOINT* macros at the sites are what vanish when the flag is
// off, so a disarmed-but-compiled-in build pays one relaxed atomic load
// per site and an OFF build pays nothing.

#ifndef AXON_UTIL_FAILPOINT_H_
#define AXON_UTIL_FAILPOINT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

#ifndef AXON_FAILPOINTS_ENABLED
#define AXON_FAILPOINTS_ENABLED 0
#endif

namespace axon {
namespace failpoint {

/// Exit code used by the crash action; chaos harnesses waitpid() for it to
/// distinguish an injected crash from a real one.
inline constexpr int kCrashExitCode = 87;

enum class Action : uint8_t {
  kOff = 0,
  kError,
  kShortIo,
  kDelay,
  kBitflip,
  kOom,
  kCrash,
};

/// What a site should inject right now. kOff means "proceed normally".
struct Fault {
  Action action = Action::kOff;
  /// delay: milliseconds; short-io: byte cap; bitflip: raw entropy the
  /// site reduces onto its buffer (bit index = arg % (8 * size)).
  uint64_t arg = 0;

  constexpr explicit operator bool() const { return action != Action::kOff; }
};

/// Arms `site` with a spec (grammar above). Re-arming replaces the
/// previous spec and resets its counters.
Status Arm(const std::string& site, const std::string& spec);

/// Arms a comma-separated list: "siteA=spec,siteB=spec".
Status ArmFromSpec(const std::string& multi_spec);

/// Arms from the AXON_FAILPOINTS environment variable (no-op when unset).
/// Called lazily by the first Eval(), so env-armed runs need no code.
Status ArmFromEnv();

void Disarm(const std::string& site);
void DisarmAll();

/// Seeds the per-site probability streams (default seed: 0). Determinism
/// contract: same seed + same Eval() sequence => same fire schedule.
void SetSeed(uint64_t seed);

/// Times `site` evaluated to a live fault so far (for tests/reports).
uint64_t Hits(const std::string& site);

/// Currently armed sites as (site, original spec) pairs, sorted by site —
/// the armed-site schedule chaos_run prints for reproducibility.
std::vector<std::pair<std::string, std::string>> ArmedSites();

/// True when sites are compiled in (AXON_FAILPOINTS=ON).
constexpr bool CompiledIn() { return AXON_FAILPOINTS_ENABLED != 0; }

/// Consults the registry for `site`. Cheap when nothing is armed (one
/// relaxed atomic load). Called via the AXON_FAILPOINT* macros.
Fault Eval(const char* site);

/// Carries out the self-contained actions: delay sleeps, oom throws
/// std::bad_alloc, crash _Exit()s. kError/kShortIo/kBitflip are no-ops
/// here — the site interprets them against its own buffers.
void Execute(const char* site, const Fault& fault);

/// The Status an armed kError evaluates to: IOError("failpoint(<site>):
/// injected error"). The stable "failpoint(" prefix lets harnesses tell
/// injected failures from organic ones.
Status InjectedError(const char* site);

/// True when `st` was produced by InjectedError().
bool IsInjected(const Status& st);

}  // namespace failpoint
}  // namespace axon

#if AXON_FAILPOINTS_ENABLED

/// Generic site: handles delay/oom/crash; error-class actions are ignored
/// (use AXON_FAILPOINT_STATUS or AXON_FAILPOINT_EVAL where a Status or a
/// buffer is in reach).
#define AXON_FAILPOINT(site)                                          \
  do {                                                                \
    const ::axon::failpoint::Fault _axon_fp =                         \
        ::axon::failpoint::Eval(site);                                \
    if (_axon_fp) ::axon::failpoint::Execute(site, _axon_fp);         \
  } while (0)

/// Status-returning site: like AXON_FAILPOINT, but an armed `err` makes
/// the enclosing function return the injected IOError.
#define AXON_FAILPOINT_STATUS(site)                                   \
  do {                                                                \
    const ::axon::failpoint::Fault _axon_fp =                         \
        ::axon::failpoint::Eval(site);                                \
    if (_axon_fp) {                                                   \
      ::axon::failpoint::Execute(site, _axon_fp);                     \
      if (_axon_fp.action == ::axon::failpoint::Action::kError)       \
        return ::axon::failpoint::InjectedError(site);                \
    }                                                                 \
  } while (0)

/// Expression form for sites that interpret short-io/bitflip against
/// their own buffers. Delay/oom/crash still need Execute() by the caller.
#define AXON_FAILPOINT_EVAL(site) (::axon::failpoint::Eval(site))

#else

#define AXON_FAILPOINT(site) ((void)0)
#define AXON_FAILPOINT_STATUS(site) ((void)0)
#define AXON_FAILPOINT_EVAL(site) (::axon::failpoint::Fault{})

#endif  // AXON_FAILPOINTS_ENABLED

#endif  // AXON_UTIL_FAILPOINT_H_
