// Annotated mutex / scoped-lock / condition-variable wrappers.
//
// std::mutex carries no thread-safety attributes under libstdc++, so code
// locking it directly is invisible to Clang's -Wthread-safety analysis.
// Every locked subsystem in the tree therefore locks through these
// wrappers instead; tools/axon_lint rejects naked std::mutex /
// std::lock_guard / std::condition_variable anywhere outside this header.
//
// Usage pattern (see DESIGN.md §13 for the full conventions):
//
//   class Queue {
//    public:
//     void Push(Item item) {
//       MutexLock lock(&mu_);
//       items_.push_back(std::move(item));
//       cv_.NotifyOne();
//     }
//     Item Pop() {
//       MutexLock lock(&mu_);
//       while (items_.empty()) cv_.Wait(&mu_);   // explicit loop — the
//       ...                                      // analysis cannot see
//     }                                          // into predicate lambdas
//    private:
//     Mutex mu_;
//     CondVar cv_;
//     std::deque<Item> items_ AXON_GUARDED_BY(mu_);
//   };
//
// CondVar waits take the Mutex explicitly and are annotated
// AXON_REQUIRES(mu): the analysis treats the lock as continuously held
// across the wait, which matches the caller's view — the guarded state
// may change across a Wait(), hence the mandatory while-loop re-check.

#ifndef AXON_UTIL_MUTEX_H_
#define AXON_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/annotations.h"

namespace axon {

/// An annotated standard mutex. Non-recursive, non-movable; prefer the
/// RAII MutexLock over manual Lock()/Unlock() pairs.
class AXON_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() AXON_ACQUIRE() { mu_.lock(); }
  void Unlock() AXON_RELEASE() { mu_.unlock(); }
  bool TryLock() AXON_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Tells the analysis this mutex is held when it cannot prove it — the
  /// one sanctioned use is a lambda invoked strictly under the lock (the
  /// analysis drops lock state at lambda boundaries). No runtime effect;
  /// the call is a statement of fact the caller must guarantee.
  void AssertHeld() const AXON_ASSERT_CAPABILITY() {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII scope holding a Mutex for its lifetime.
class AXON_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) AXON_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() AXON_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable paired with a Mutex the caller already holds.
/// The wait methods atomically release the mutex, block, and re-acquire
/// before returning — annotated AXON_REQUIRES so the analysis (correctly)
/// sees the lock held on both sides of the call.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (spurious wakeups possible — always re-check
  /// the predicate in a while-loop).
  void Wait(Mutex* mu) AXON_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  /// Blocks until notified or `deadline` passes. Returns false exactly
  /// when the wait timed out (the mutex is re-held either way).
  bool WaitUntil(Mutex* mu, std::chrono::steady_clock::time_point deadline)
      AXON_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status != std::cv_status::timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace axon

#endif  // AXON_UTIL_MUTEX_H_
