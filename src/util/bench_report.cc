#include "util/bench_report.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "util/resource_governor.h"
#include "util/trace.h"

namespace axon {
namespace bench {

namespace {

// Unguarded by contract: ReportScope is constructed in main() before any
// bench worker thread exists and destroyed after they join, so all
// cross-thread visibility is ordered by thread creation/join.
Report* g_current = nullptr;

double EnvScale() {
  const char* s = std::getenv("AXON_BENCH_SCALE");
  if (s == nullptr) return 1.0;
  double v = std::atof(s);
  return v > 0 ? v : 1.0;
}

}  // namespace

void Report::AddRow(ReportRow row) {
  MutexLock lock(&mu_);
  rows_.push_back(std::move(row));
}

void Report::AddBuildSeconds(const std::string& engine, double seconds) {
  MutexLock lock(&mu_);
  build_seconds_.emplace_back(engine, seconds);
}

void Report::SetScale(double scale) {
  MutexLock lock(&mu_);
  scale_ = scale;
}

JsonValue Report::ToJson() const {
  MutexLock lock(&mu_);
  JsonValue doc = JsonValue::Object();
  doc["schema"] = "axon-bench-v1";
  doc["bench"] = name_;
  doc["scale"] = scale_;
  JsonValue build = JsonValue::Object();
  for (const auto& [engine, seconds] : build_seconds_) {
    build[engine] = seconds;
  }
  doc["build_seconds"] = std::move(build);
  JsonValue rows = JsonValue::Array();
  for (const ReportRow& r : rows_) {
    JsonValue row = JsonValue::Object();
    row["section"] = r.section;
    row["query"] = r.query;
    row["engine"] = r.engine;
    row["seconds"] = r.seconds;
    JsonValue counters = JsonValue::Object();
    counters["pages_read"] = r.pages_read;
    counters["pages_evicted"] = r.pages_evicted;
    counters["rows_scanned"] = r.rows_scanned;
    counters["intermediate_rows"] = r.intermediate_rows;
    counters["joins"] = r.joins;
    row["counters"] = std::move(counters);
    rows.Append(std::move(row));
  }
  doc["rows"] = std::move(rows);
  if (obs::Enabled()) {
    doc["metrics"] = metrics::MetricsRegistry::Global().Snapshot();
  }
  // Resource-governor counters, only when some governed execution actually
  // ran in this process — benches without a governed section keep their
  // byte-identical report (the golden-file test relies on this).
  GovernorCounters gov = ResourceGovernor::GlobalSnapshot();
  if (gov.submitted > 0) {
    JsonValue g = JsonValue::Object();
    g["submitted"] = gov.submitted;
    g["admitted"] = gov.admitted;
    g["queued"] = gov.queued;
    g["shed"] = gov.shed;
    g["completed"] = gov.completed;
    g["budget_killed"] = gov.budget_killed;
    g["cancelled"] = gov.cancelled;
    g["deadline_expired"] = gov.deadline_expired;
    g["degraded"] = gov.degraded;
    g["failed"] = gov.failed;
    doc["governor"] = std::move(g);
  }
  return doc;
}

Status Report::WriteFile(const std::string& dir) const {
  std::string path = dir + "/BENCH_" + name_ + ".json";
  return WriteJsonFile(path, ToJson());
}

Report* Report::Current() { return g_current; }

ReportScope::ReportScope(const std::string& name) : report_(name) {
  report_.SetScale(EnvScale());
  g_current = &report_;
}

ReportScope::~ReportScope() {
  g_current = nullptr;
  const char* dir = std::getenv("AXON_BENCH_JSON_DIR");
  Status s = report_.WriteFile(dir != nullptr && *dir != '\0' ? dir : ".");
  if (!s.ok()) {
    std::fprintf(stderr, "bench report write failed: %s\n",
                 s.ToString().c_str());
  }
}

Status ValidateBenchReport(const JsonValue& doc) {
  if (!doc.is_object()) return Status::InvalidArgument("report: not an object");
  if (doc.GetString("schema") != "axon-bench-v1") {
    return Status::InvalidArgument("report: schema is not axon-bench-v1");
  }
  if (doc.GetString("bench").empty()) {
    return Status::InvalidArgument("report: missing bench name");
  }
  const JsonValue* rows = doc.Find("rows");
  if (rows == nullptr || !rows->is_array()) {
    return Status::InvalidArgument("report: missing rows array");
  }
  for (const JsonValue& row : rows->items()) {
    if (!row.is_object()) {
      return Status::InvalidArgument("report: row is not an object");
    }
    for (const char* key : {"section", "query", "engine"}) {
      const JsonValue* v = row.Find(key);
      if (v == nullptr || !v->is_string()) {
        return Status::InvalidArgument(std::string("report: row missing ") +
                                       key);
      }
    }
    const JsonValue* secs = row.Find("seconds");
    if (secs == nullptr || !secs->is_number()) {
      return Status::InvalidArgument("report: row missing seconds");
    }
    const JsonValue* counters = row.Find("counters");
    if (counters == nullptr || !counters->is_object()) {
      return Status::InvalidArgument("report: row missing counters");
    }
    for (const auto& [name, value] : counters->members()) {
      if (!value.is_number()) {
        return Status::InvalidArgument("report: counter " + name +
                                       " is not a number");
      }
    }
  }
  const JsonValue* build = doc.Find("build_seconds");
  if (build != nullptr && !build->is_object()) {
    return Status::InvalidArgument("report: build_seconds is not an object");
  }
  // Optional governor section (present only when governed execution ran).
  const JsonValue* gov = doc.Find("governor");
  if (gov != nullptr) {
    if (!gov->is_object()) {
      return Status::InvalidArgument("report: governor is not an object");
    }
    for (const auto& [name, value] : gov->members()) {
      if (!value.is_number()) {
        return Status::InvalidArgument("report: governor counter " + name +
                                       " is not a number");
      }
    }
  }
  return Status::OK();
}

Result<BenchDiffResult> DiffBenchReports(const JsonValue& baseline,
                                         const JsonValue& current,
                                         const BenchDiffOptions& options) {
  AXON_RETURN_NOT_OK(ValidateBenchReport(baseline));
  AXON_RETURN_NOT_OK(ValidateBenchReport(current));
  BenchDiffResult out;

  auto key_of = [](const JsonValue& row) {
    return row.GetString("section") + " / " + row.GetString("query") + " / " +
           row.GetString("engine");
  };
  std::map<std::string, const JsonValue*> cur_rows;
  for (const JsonValue& row : current.Find("rows")->items()) {
    cur_rows[key_of(row)] = &row;
  }

  char buf[256];
  for (const JsonValue& base_row : baseline.Find("rows")->items()) {
    std::string key = key_of(base_row);
    auto it = cur_rows.find(key);
    if (it == cur_rows.end()) {
      out.regressions.push_back("missing row: " + key);
      continue;
    }
    const JsonValue& cur_row = *it->second;
    cur_rows.erase(it);

    double base_s = base_row.GetDouble("seconds");
    double cur_s = cur_row.GetDouble("seconds");
    if (base_s > 0 && cur_s > options.min_seconds &&
        cur_s > base_s * (1.0 + options.latency_tolerance)) {
      std::snprintf(buf, sizeof(buf),
                    "latency: %s: %.6fs -> %.6fs (+%.1f%%, tolerance %.0f%%)",
                    key.c_str(), base_s, cur_s, (cur_s / base_s - 1.0) * 100,
                    options.latency_tolerance * 100);
      out.regressions.push_back(buf);
    }

    const JsonValue* base_counters = base_row.Find("counters");
    const JsonValue* cur_counters = cur_row.Find("counters");
    for (const auto& [name, base_v] : base_counters->members()) {
      double base_c = base_v.AsDouble();
      double cur_c = cur_counters->GetDouble(name);
      if (base_c >= 0 &&
          cur_c > base_c * (1.0 + options.counter_tolerance) + 0.5) {
        std::snprintf(buf, sizeof(buf),
                      "counter: %s: %s %.0f -> %.0f (+%.1f%%, tolerance "
                      "%.0f%%)",
                      key.c_str(), name.c_str(), base_c, cur_c,
                      base_c > 0 ? (cur_c / base_c - 1.0) * 100 : 100.0,
                      options.counter_tolerance * 100);
        out.regressions.push_back(buf);
      }
    }
  }
  for (const auto& [key, row] : cur_rows) {
    (void)row;
    out.notes.push_back("new row (not in baseline): " + key);
  }

  // Governor counters: the degradation/shedding profile of a governed
  // bench is deterministic under a fixed seed, so a drift in shed /
  // budget_killed / degraded versus the baseline is a behavior change.
  const JsonValue* base_gov = baseline.Find("governor");
  const JsonValue* cur_gov = current.Find("governor");
  if (base_gov != nullptr && cur_gov == nullptr) {
    out.regressions.push_back(
        "missing governor section (baseline has one)");
  } else if (base_gov == nullptr && cur_gov != nullptr) {
    out.notes.push_back("new governor section (not in baseline)");
  } else if (base_gov != nullptr && cur_gov != nullptr) {
    for (const auto& [name, base_v] : base_gov->members()) {
      double base_c = base_v.AsDouble();
      double cur_c = cur_gov->GetDouble(name);
      if (cur_c > base_c * (1.0 + options.counter_tolerance) + 0.5) {
        std::snprintf(buf, sizeof(buf),
                      "governor: %s %.0f -> %.0f (+%.1f%%, tolerance %.0f%%)",
                      name.c_str(), base_c, cur_c,
                      base_c > 0 ? (cur_c / base_c - 1.0) * 100 : 100.0,
                      options.counter_tolerance * 100);
        out.regressions.push_back(buf);
      }
    }
  }
  return out;
}

Result<JsonValue> MergeBenchReports(const std::vector<JsonValue>& candidates) {
  if (candidates.empty()) {
    return Status::InvalidArgument("merge: no candidate reports");
  }
  for (const JsonValue& doc : candidates) {
    AXON_RETURN_NOT_OK(ValidateBenchReport(doc));
    if (doc.GetString("bench") != candidates.front().GetString("bench")) {
      return Status::InvalidArgument(
          "merge: candidates are from different benches (" +
          candidates.front().GetString("bench") + " vs " +
          doc.GetString("bench") + ")");
    }
  }
  if (candidates.size() == 1) return candidates.front();

  auto key_of = [](const JsonValue& row) {
    return row.GetString("section") + " / " + row.GetString("query") + " / " +
           row.GetString("engine");
  };

  // Union of rows in first-seen order; per row the best (minimum) seconds
  // and the minimum of each counter across the runs that have the row.
  std::vector<std::string> order;
  std::map<std::string, JsonValue> best;
  for (const JsonValue& doc : candidates) {
    for (const JsonValue& row : doc.Find("rows")->items()) {
      std::string key = key_of(row);
      auto it = best.find(key);
      if (it == best.end()) {
        order.push_back(key);
        best.emplace(key, row);
        continue;
      }
      JsonValue& kept = it->second;
      if (row.GetDouble("seconds") < kept.GetDouble("seconds")) {
        kept["seconds"] = row.GetDouble("seconds");
      }
      const JsonValue* counters = row.Find("counters");
      JsonValue& kept_counters = kept["counters"];
      for (const auto& [name, value] : counters->members()) {
        double v = value.AsDouble();
        const JsonValue* prev = kept_counters.Find(name);
        if (prev == nullptr || v < prev->AsDouble()) {
          kept_counters[name] = v;
        }
      }
    }
  }

  JsonValue merged = candidates.front();
  JsonValue rows = JsonValue::Array();
  for (const std::string& key : order) {
    rows.Append(std::move(best.at(key)));
  }
  merged["rows"] = std::move(rows);

  // Per-engine build-time minima across the runs that report the engine.
  JsonValue build = JsonValue::Object();
  for (const JsonValue& doc : candidates) {
    const JsonValue* b = doc.Find("build_seconds");
    if (b == nullptr) continue;
    for (const auto& [engine, seconds] : b->members()) {
      double v = seconds.AsDouble();
      const JsonValue* prev = build.Find(engine);
      if (prev == nullptr || v < prev->AsDouble()) {
        build[engine] = v;
      }
    }
  }
  merged["build_seconds"] = std::move(build);
  return merged;
}

}  // namespace bench
}  // namespace axon
