#include "util/resource_governor.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "util/trace.h"

namespace axon {

namespace {

thread_local MemoryBudget* t_budget = nullptr;

// Process-wide aggregate: plain atomics mirroring every instance's
// counters, read by the bench-report "governor" section.
struct GlobalCounters {
  std::atomic<uint64_t> submitted{0};
  std::atomic<uint64_t> admitted{0};
  std::atomic<uint64_t> queued{0};
  std::atomic<uint64_t> shed{0};
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> budget_killed{0};
  std::atomic<uint64_t> cancelled{0};
  std::atomic<uint64_t> deadline_expired{0};
  std::atomic<uint64_t> degraded{0};
  std::atomic<uint64_t> failed{0};
};

GlobalCounters& Global() {
  static GlobalCounters g;
  return g;
}

std::atomic<uint64_t>& GlobalField(uint64_t GovernorCounters::* field) {
  GlobalCounters& g = Global();
  if (field == &GovernorCounters::submitted) return g.submitted;
  if (field == &GovernorCounters::admitted) return g.admitted;
  if (field == &GovernorCounters::queued) return g.queued;
  if (field == &GovernorCounters::shed) return g.shed;
  if (field == &GovernorCounters::completed) return g.completed;
  if (field == &GovernorCounters::budget_killed) return g.budget_killed;
  if (field == &GovernorCounters::cancelled) return g.cancelled;
  if (field == &GovernorCounters::deadline_expired) return g.deadline_expired;
  if (field == &GovernorCounters::degraded) return g.degraded;
  return g.failed;
}

const char* MetricName(uint64_t GovernorCounters::* field) {
  if (field == &GovernorCounters::submitted) return "governor.submitted";
  if (field == &GovernorCounters::admitted) return "governor.admitted";
  if (field == &GovernorCounters::queued) return "governor.queued";
  if (field == &GovernorCounters::shed) return "governor.shed";
  if (field == &GovernorCounters::completed) return "governor.completed";
  if (field == &GovernorCounters::budget_killed) {
    return "governor.budget_killed";
  }
  if (field == &GovernorCounters::cancelled) return "governor.cancelled";
  if (field == &GovernorCounters::deadline_expired) {
    return "governor.deadline_expired";
  }
  if (field == &GovernorCounters::degraded) return "governor.degraded";
  return "governor.failed";
}

}  // namespace

BudgetScope::BudgetScope(MemoryBudget* budget) : prev_(t_budget) {
  t_budget = budget;
}

BudgetScope::~BudgetScope() { t_budget = prev_; }

MemoryBudget* BudgetScope::Current() { return t_budget; }

ResourceGovernor::ResourceGovernor(GovernorOptions options)
    : options_(options), retry_jitter_(options.retry_jitter_seed) {}

void ResourceGovernor::Bump(uint64_t GovernorCounters::* field) {
  ++(counters_.*field);
  GlobalField(field).fetch_add(1, std::memory_order_relaxed);
#if AXON_TRACE_ENABLED
  if (obs::Enabled()) {
    metrics::MetricsRegistry::Global().GetCounter(MetricName(field))->Add(1);
  }
#else
  (void)MetricName;
#endif
}

Status ResourceGovernor::ShedLocked() {
  Bump(&GovernorCounters::shed);
  // Jitter the hint ±25% so shed clients that retry exactly on the hint
  // spread out instead of arriving as a second synchronized burst. The
  // stream is deterministic in retry_jitter_seed, so equal seeds with
  // equal shed sequences reproduce identical hints.
  uint64_t hint = options_.retry_after_millis;
  if (hint > 0) {
    const uint64_t lo = hint - hint / 4;
    const uint64_t hi = hint + hint / 4;
    hint = retry_jitter_.Range(lo, hi);
  }
  return Status::Unavailable(
      "engine overloaded: " + std::to_string(running_) + " running, " +
      std::to_string(queue_.size()) + " queued; retry after ~" +
      std::to_string(hint) + "ms");
}

Status ResourceGovernor::Admit() {
  MutexLock lock(&mu_);
  Bump(&GovernorCounters::submitted);
  if (options_.max_concurrent == 0) {
    ++running_;
    Bump(&GovernorCounters::admitted);
    return Status::OK();
  }
  if (running_ < options_.max_concurrent && queue_.empty()) {
    ++running_;
    Bump(&GovernorCounters::admitted);
    return Status::OK();
  }
  if (queue_.size() >= options_.max_queue) return ShedLocked();

  const uint64_t ticket = next_ticket_++;
  queue_.push_back(ticket);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(options_.queue_wait_millis);
  // Explicit wait loop (not a predicate lambda — the thread-safety
  // analysis cannot see lock state inside lambdas). Matches
  // wait_until(pred) semantics: one final predicate check after a
  // timed-out wait, so a grant that raced the deadline still wins.
  bool granted = false;
  for (;;) {
    if (!queue_.empty() && queue_.front() == ticket &&
        running_ < options_.max_concurrent) {
      granted = true;
      break;
    }
    if (!cv_.WaitUntil(&mu_, deadline)) {
      granted = !queue_.empty() && queue_.front() == ticket &&
                running_ < options_.max_concurrent;
      break;
    }
  }
  if (!granted) {
    // Timed out: abandon the queue entry (it may sit anywhere — an earlier
    // waiter at the front keeps FIFO order for the rest).
    queue_.erase(std::find(queue_.begin(), queue_.end(), ticket));
    // Our departure may unblock the new front.
    cv_.NotifyAll();
    return ShedLocked();
  }
  queue_.pop_front();
  ++running_;
  Bump(&GovernorCounters::admitted);
  Bump(&GovernorCounters::queued);
  // The next waiter's wakeup condition depends on the new queue front.
  cv_.NotifyAll();
  return Status::OK();
}

void ResourceGovernor::Release() {
  MutexLock lock(&mu_);
  --running_;
  cv_.NotifyAll();
}

void ResourceGovernor::RecordOutcome(QueryOutcome outcome) {
  MutexLock lock(&mu_);
  switch (outcome) {
    case QueryOutcome::kCompleted:
      Bump(&GovernorCounters::completed);
      break;
    case QueryOutcome::kBudgetKilled:
      Bump(&GovernorCounters::budget_killed);
      break;
    case QueryOutcome::kCancelled:
      Bump(&GovernorCounters::cancelled);
      break;
    case QueryOutcome::kDeadlineExpired:
      Bump(&GovernorCounters::deadline_expired);
      break;
    case QueryOutcome::kDegraded:
      Bump(&GovernorCounters::degraded);
      break;
    case QueryOutcome::kFailed:
      Bump(&GovernorCounters::failed);
      break;
  }
}

QueryOutcome ResourceGovernor::OutcomeOf(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk:
      return QueryOutcome::kCompleted;
    case StatusCode::kResourceExhausted:
      return QueryOutcome::kBudgetKilled;
    case StatusCode::kCancelled:
      return QueryOutcome::kCancelled;
    case StatusCode::kDeadlineExceeded:
      return QueryOutcome::kDeadlineExpired;
    default:
      return QueryOutcome::kFailed;
  }
}

GovernorCounters ResourceGovernor::Snapshot() const {
  MutexLock lock(&mu_);
  return counters_;
}

uint32_t ResourceGovernor::running() const {
  MutexLock lock(&mu_);
  return running_;
}

GovernorCounters ResourceGovernor::GlobalSnapshot() {
  GlobalCounters& g = Global();
  GovernorCounters out;
  out.submitted = g.submitted.load(std::memory_order_relaxed);
  out.admitted = g.admitted.load(std::memory_order_relaxed);
  out.queued = g.queued.load(std::memory_order_relaxed);
  out.shed = g.shed.load(std::memory_order_relaxed);
  out.completed = g.completed.load(std::memory_order_relaxed);
  out.budget_killed = g.budget_killed.load(std::memory_order_relaxed);
  out.cancelled = g.cancelled.load(std::memory_order_relaxed);
  out.deadline_expired = g.deadline_expired.load(std::memory_order_relaxed);
  out.degraded = g.degraded.load(std::memory_order_relaxed);
  out.failed = g.failed.load(std::memory_order_relaxed);
  return out;
}

uint64_t RetryAfterHintMillis(const Status& status, uint64_t fallback_millis) {
  const std::string& msg = status.message();
  static constexpr char kMarker[] = "retry after ~";
  size_t at = msg.rfind(kMarker);
  if (at == std::string::npos) return fallback_millis;
  at += sizeof(kMarker) - 1;
  uint64_t value = 0;
  bool any = false;
  while (at < msg.size() && msg[at] >= '0' && msg[at] <= '9') {
    value = value * 10 + static_cast<uint64_t>(msg[at] - '0');
    any = true;
    ++at;
  }
  // Only trust the number if the "ms" unit follows (guards against a hint
  // embedded in an unrelated message shape).
  if (!any || msg.compare(at, 2, "ms") != 0) return fallback_millis;
  return value;
}

void ResourceGovernor::ResetGlobalForTest() {
  GlobalCounters& g = Global();
  g.submitted.store(0, std::memory_order_relaxed);
  g.admitted.store(0, std::memory_order_relaxed);
  g.queued.store(0, std::memory_order_relaxed);
  g.shed.store(0, std::memory_order_relaxed);
  g.completed.store(0, std::memory_order_relaxed);
  g.budget_killed.store(0, std::memory_order_relaxed);
  g.cancelled.store(0, std::memory_order_relaxed);
  g.deadline_expired.store(0, std::memory_order_relaxed);
  g.degraded.store(0, std::memory_order_relaxed);
  g.failed.store(0, std::memory_order_relaxed);
}

}  // namespace axon
