// Scoped-span tracing: where the time goes inside ECS matching, chain
// evaluation, star retrieval and the loading pipeline.
//
// Usage (always through the macros — they compile to nothing when the
// CMake option AXON_TRACE is OFF):
//
//   void Executor::Execute(...) {
//     AXON_SPAN("query.execute");          // RAII span for this scope
//     ...
//     AXON_COUNTER_ADD("exec.triples_scanned", rows.size());
//     AXON_HISTOGRAM("planner.chain_length", chain.size());
//   }
//
// Runtime gate: spans and metric macros are no-ops unless observability is
// enabled — via the environment (AXON_TRACE=1) or obs::SetEnabled(true).
// A disabled instrumentation point costs one relaxed atomic load.
//
// Model: every thread keeps a private span stack and buffer (registered
// with the global collector on first use). Nesting within a thread is
// recorded via parent links; pool tasks traced on worker threads appear as
// roots of that worker's forest — stitching task spans under their
// submitting span would require cross-thread context propagation the
// engine's coarse task granularity doesn't warrant (DESIGN.md
// "Observability"). Completed spans additionally feed an
// "optime.<name>" duration histogram (microseconds) in the metrics
// registry, so per-operator wall time survives a Clear().
//
// trace::Collector::Global().ToJson() serializes the completed spans —
// call it (or trace::WriteJson) when the traced region is quiescent.

#ifndef AXON_UTIL_TRACE_H_
#define AXON_UTIL_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/metrics.h"

#ifndef AXON_TRACE_ENABLED
#define AXON_TRACE_ENABLED 1
#endif

namespace axon {

namespace obs {

/// True when observability (tracing + metrics) is on for this process.
bool Enabled();

/// Programmatic override of the AXON_TRACE environment default.
void SetEnabled(bool on);

}  // namespace obs

namespace trace {

struct Span {
  std::string name;
  uint64_t start_ns = 0;     // since the collector's epoch
  uint64_t duration_ns = 0;  // 0 while still open
  uint32_t thread = 0;       // dense per-thread index, registration order
  int32_t parent = -1;       // index into the collected span list, -1 = root
};

class Collector {
 public:
  static Collector& Global();

  /// Completed spans from every thread, parents before children, parent
  /// indices rewritten to this list. Open spans are excluded.
  std::vector<Span> CollectSpans() const;

  /// Drops all recorded spans. Only call while no traced code is running
  /// (between queries / after a bench run); concurrent span *starts* during
  /// a clear are tolerated but may be dropped.
  void Clear();

  /// {"spans":[{"name","start_ns","dur_ns","thread","parent"}...]}
  JsonValue ToJson() const;

 private:
  Collector() = default;
};

/// RAII span. Construct through AXON_SPAN; a span constructed while
/// observability is disabled records nothing (and stays inert even if
/// tracing is flipped on before it closes).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void* buf_ = nullptr;  // owning thread buffer; null when inert
  const char* name_;
  int32_t index_ = -1;    // slot in the thread buffer
  uint64_t epoch_ = 0;    // buffer clear-epoch at open; stale spans drop
  uint64_t start_ns_ = 0;
};

/// Serializes {"trace": spans, "metrics": registry snapshot} to `path`.
Status WriteJson(const std::string& path);

}  // namespace trace
}  // namespace axon

#if AXON_TRACE_ENABLED

#define AXON_SPAN_CAT2(a, b) a##b
#define AXON_SPAN_CAT(a, b) AXON_SPAN_CAT2(a, b)
#define AXON_SPAN(name) \
  ::axon::trace::ScopedSpan AXON_SPAN_CAT(axon_span_, __LINE__)(name)

// Counter/histogram updates cache the registry lookup per call site.
#define AXON_COUNTER_ADD(name, delta)                                     \
  do {                                                                    \
    if (::axon::obs::Enabled()) {                                         \
      static ::axon::metrics::Counter* axon_cached_counter =              \
          ::axon::metrics::MetricsRegistry::Global().GetCounter(name);    \
      axon_cached_counter->Add(static_cast<uint64_t>(delta));             \
    }                                                                     \
  } while (0)

#define AXON_HISTOGRAM(name, value)                                      \
  do {                                                                   \
    if (::axon::obs::Enabled()) {                                        \
      static ::axon::metrics::Histogram* axon_cached_histogram =         \
          ::axon::metrics::MetricsRegistry::Global().GetHistogram(name); \
      axon_cached_histogram->Observe(static_cast<uint64_t>(value));      \
    }                                                                    \
  } while (0)

#else  // !AXON_TRACE_ENABLED

#define AXON_SPAN(name) \
  do {                  \
  } while (0)
#define AXON_COUNTER_ADD(name, delta) \
  do {                                \
    (void)(delta);                    \
  } while (0)
#define AXON_HISTOGRAM(name, value) \
  do {                              \
    (void)(value);                  \
  } while (0)

#endif  // AXON_TRACE_ENABLED

#endif  // AXON_UTIL_TRACE_H_
