// Clang thread-safety (capability) annotation macros.
//
// These wrap the attributes documented at
// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html so that locked
// state can be proven consistent at compile time: every field names the
// mutex that guards it (AXON_GUARDED_BY), every helper that expects its
// caller to hold a lock says so (AXON_REQUIRES), and the analysis —
// enabled tree-wide with -Wthread-safety under Clang, an error in CI —
// rejects any access path that cannot discharge those obligations.
//
// The macros expand to nothing on compilers without the attributes (GCC
// builds the same tree warning-free), so annotated code stays portable.
// Use them only through the axon::Mutex / axon::MutexLock / axon::CondVar
// wrappers in util/mutex.h: std::mutex itself carries no annotations
// under libstdc++, which is why naked std::mutex use outside that header
// is additionally rejected by tools/axon_lint.
//
// Lock-ordering attributes (AXON_ACQUIRED_BEFORE / AXON_ACQUIRED_AFTER)
// document the global acquisition order (DESIGN.md §13) and are checked
// under -Wthread-safety-beta, which CI runs as a non-blocking report.

#ifndef AXON_UTIL_ANNOTATIONS_H_
#define AXON_UTIL_ANNOTATIONS_H_

#if defined(__clang__)
#define AXON_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define AXON_THREAD_ANNOTATION_(x)  // no-op on GCC and others
#endif

// Type attributes: a class that is a lock, or an RAII scope holding one.
#define AXON_CAPABILITY(x) AXON_THREAD_ANNOTATION_(capability(x))
#define AXON_SCOPED_CAPABILITY AXON_THREAD_ANNOTATION_(scoped_lockable)

// Data attributes: the mutex that guards a field (or, for pointers, the
// pointed-to data).
#define AXON_GUARDED_BY(x) AXON_THREAD_ANNOTATION_(guarded_by(x))
#define AXON_PT_GUARDED_BY(x) AXON_THREAD_ANNOTATION_(pt_guarded_by(x))

// Declared global acquisition order between two locks.
#define AXON_ACQUIRED_BEFORE(...) \
  AXON_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define AXON_ACQUIRED_AFTER(...) \
  AXON_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

// Function attributes: locks the caller must hold / must not hold, and
// locks the function itself acquires or releases.
#define AXON_REQUIRES(...) \
  AXON_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define AXON_REQUIRES_SHARED(...) \
  AXON_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
#define AXON_ACQUIRE(...) \
  AXON_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define AXON_ACQUIRE_SHARED(...) \
  AXON_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define AXON_RELEASE(...) \
  AXON_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define AXON_TRY_ACQUIRE(...) \
  AXON_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))
#define AXON_EXCLUDES(...) AXON_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
#define AXON_ASSERT_CAPABILITY(x) \
  AXON_THREAD_ANNOTATION_(assert_capability(x))
#define AXON_RETURN_CAPABILITY(x) AXON_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch. Policy (enforced in review, see DESIGN.md §13): not used
// anywhere in the tree today; a new use must carry a comment proving why
// the analysis cannot model the code.
#define AXON_NO_THREAD_SAFETY_ANALYSIS \
  AXON_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // AXON_UTIL_ANNOTATIONS_H_
