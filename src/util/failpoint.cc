#include "util/failpoint.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <new>
#include <thread>

#include "util/mutex.h"
#include "util/random.h"

namespace axon {
namespace failpoint {

namespace {

struct SiteState {
  Action action = Action::kOff;
  uint64_t arg = 0;
  double prob = 1.0;         // @P
  int64_t remaining = -1;    // *N; -1 = unlimited
  uint64_t skip = 0;         // +K
  uint64_t evals = 0;
  uint64_t hits = 0;
  uint64_t rng_seed = 0;     // global seed mixed with the site name
  Random rng{0};
  std::string spec;          // original text, for ArmedSites()
};

struct Registry {
  Mutex mu;
  std::map<std::string, SiteState> sites AXON_GUARDED_BY(mu);
  uint64_t seed AXON_GUARDED_BY(mu) = 0;
  std::atomic<bool> env_checked{false};
};

Registry& Reg() {
  static Registry* r = new Registry();  // leaked: outlives all threads
  return *r;
}

// Fast-path gate: number of armed sites. Zero => Eval returns immediately.
std::atomic<uint32_t> g_armed{0};

uint64_t SiteSeed(uint64_t seed, const std::string& site) {
  uint64_t h = 1469598103934665603ULL ^ seed;
  for (char c : site) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// Parses "action[:arg][@prob][*count][+skip]" into `out`.
Status ParseSpec(const std::string& site, const std::string& spec,
                 SiteState* out) {
  std::string body = spec;
  // Peel the suffixes strictly right-to-left — always the rightmost
  // marker first, so "err@0.5*3+2" splits into @0.5, *3, +2 regardless of
  // the order they were written in. Each marker may appear at most once.
  std::string prob_s, count_s, skip_s;
  for (;;) {
    size_t best = std::string::npos;
    char which = 0;
    for (char marker : {'@', '*', '+'}) {
      const size_t at = body.rfind(marker);
      if (at != std::string::npos &&
          (best == std::string::npos || at > best)) {
        best = at;
        which = marker;
      }
    }
    if (best == std::string::npos) break;
    std::string* slot = which == '@' ? &prob_s
                        : which == '*' ? &count_s
                                       : &skip_s;
    if (!slot->empty()) {
      return Status::InvalidArgument("failpoint " + site + ": duplicate '" +
                                     std::string(1, which) + "' in spec '" +
                                     spec + "'");
    }
    *slot = body.substr(best + 1);
    body = body.substr(0, best);
  }
  std::string arg_s;
  size_t colon = body.find(':');
  if (colon != std::string::npos) {
    arg_s = body.substr(colon + 1);
    body = body.substr(0, colon);
  }

  if (body == "err" || body == "error") {
    out->action = Action::kError;
  } else if (body == "short") {
    out->action = Action::kShortIo;
  } else if (body == "delay") {
    out->action = Action::kDelay;
    out->arg = 1;  // default 1ms
  } else if (body == "bitflip") {
    out->action = Action::kBitflip;
  } else if (body == "oom") {
    out->action = Action::kOom;
  } else if (body == "crash" || body == "crash-here") {
    out->action = Action::kCrash;
  } else {
    return Status::InvalidArgument("failpoint " + site + ": unknown action '" +
                                   body + "' in spec '" + spec + "'");
  }

  if (!arg_s.empty()) {
    // Accept "5" and "5ms" for delays; plain integers elsewhere.
    size_t end = arg_s.find_first_not_of("0123456789");
    if (end == 0 ||
        (end != std::string::npos && arg_s.substr(end) != "ms")) {
      return Status::InvalidArgument("failpoint " + site + ": bad arg '" +
                                     arg_s + "' in spec '" + spec + "'");
    }
    out->arg = std::strtoull(arg_s.c_str(), nullptr, 10);
  }
  if (!prob_s.empty()) {
    char* end = nullptr;
    out->prob = std::strtod(prob_s.c_str(), &end);
    if (end == prob_s.c_str() || *end != '\0' || out->prob < 0.0 ||
        out->prob > 1.0) {
      return Status::InvalidArgument("failpoint " + site +
                                     ": bad probability '" + prob_s + "'");
    }
  }
  if (!count_s.empty()) {
    out->remaining = static_cast<int64_t>(
        std::strtoull(count_s.c_str(), nullptr, 10));
  }
  if (!skip_s.empty()) {
    out->skip = std::strtoull(skip_s.c_str(), nullptr, 10);
  }
  out->spec = spec;
  return Status::OK();
}

}  // namespace

Status Arm(const std::string& site, const std::string& spec) {
  if (site.empty()) return Status::InvalidArgument("failpoint: empty site");
  SiteState state;
  AXON_RETURN_NOT_OK(ParseSpec(site, spec, &state));
  Registry& reg = Reg();
  MutexLock lock(&reg.mu);
  state.rng_seed = SiteSeed(reg.seed, site);
  state.rng = Random(state.rng_seed);
  auto [it, inserted] = reg.sites.insert_or_assign(site, std::move(state));
  (void)it;
  if (inserted) g_armed.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status ArmFromSpec(const std::string& multi_spec) {
  size_t pos = 0;
  while (pos < multi_spec.size()) {
    size_t comma = multi_spec.find(',', pos);
    if (comma == std::string::npos) comma = multi_spec.size();
    std::string item = multi_spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    size_t eq = item.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("failpoint spec '" + item +
                                     "': expected site=action");
    }
    AXON_RETURN_NOT_OK(Arm(item.substr(0, eq), item.substr(eq + 1)));
  }
  return Status::OK();
}

Status ArmFromEnv() {
  const char* env = std::getenv("AXON_FAILPOINTS");
  if (env == nullptr || *env == '\0') return Status::OK();
  return ArmFromSpec(env);
}

void Disarm(const std::string& site) {
  Registry& reg = Reg();
  MutexLock lock(&reg.mu);
  if (reg.sites.erase(site) > 0) {
    g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

void DisarmAll() {
  Registry& reg = Reg();
  MutexLock lock(&reg.mu);
  g_armed.fetch_sub(static_cast<uint32_t>(reg.sites.size()),
                    std::memory_order_relaxed);
  reg.sites.clear();
}

void SetSeed(uint64_t seed) {
  Registry& reg = Reg();
  MutexLock lock(&reg.mu);
  reg.seed = seed;
  for (auto& [site, state] : reg.sites) {
    state.rng_seed = SiteSeed(seed, site);
    state.rng = Random(state.rng_seed);
    state.evals = 0;
    state.hits = 0;
  }
}

uint64_t Hits(const std::string& site) {
  Registry& reg = Reg();
  MutexLock lock(&reg.mu);
  auto it = reg.sites.find(site);
  return it == reg.sites.end() ? 0 : it->second.hits;
}

std::vector<std::pair<std::string, std::string>> ArmedSites() {
  Registry& reg = Reg();
  MutexLock lock(&reg.mu);
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(reg.sites.size());
  for (const auto& [site, state] : reg.sites) {
    out.emplace_back(site, state.spec);
  }
  return out;
}

Fault Eval(const char* site) {
  // One-time env pickup so AXON_FAILPOINTS=... works without any code in
  // the binary under test. Checked before the armed-count fast path.
  Registry& reg = Reg();
  if (!reg.env_checked.load(std::memory_order_acquire)) {
    bool expected = false;
    if (reg.env_checked.compare_exchange_strong(expected, true,
                                                std::memory_order_acq_rel)) {
      Status st = ArmFromEnv();
      if (!st.ok()) {
        std::fprintf(stderr, "AXON_FAILPOINTS ignored: %s\n",
                     st.ToString().c_str());
      }
    }
  }
  if (g_armed.load(std::memory_order_relaxed) == 0) return Fault{};
  MutexLock lock(&reg.mu);
  auto it = reg.sites.find(site);
  if (it == reg.sites.end()) return Fault{};
  SiteState& s = it->second;
  ++s.evals;
  if (s.evals <= s.skip) return Fault{};
  if (s.remaining == 0) return Fault{};
  if (s.prob < 1.0 && s.rng.NextDouble() >= s.prob) return Fault{};
  if (s.remaining > 0) --s.remaining;
  ++s.hits;
  Fault f;
  f.action = s.action;
  f.arg = s.action == Action::kBitflip ? s.rng.Next() : s.arg;
  return f;
}

void Execute(const char* site, const Fault& fault) {
  switch (fault.action) {
    case Action::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(fault.arg));
      break;
    case Action::kOom:
      throw std::bad_alloc();
    case Action::kCrash:
      // Die exactly here: no stdio flush, no destructors, no atexit — the
      // on-disk state is whatever already reached the kernel, the closest
      // user-space approximation of a power cut.
      std::fprintf(stderr, "failpoint(%s): injected crash\n", site);
      std::_Exit(kCrashExitCode);
    case Action::kOff:
    case Action::kError:
    case Action::kShortIo:
    case Action::kBitflip:
      break;  // interpreted by the site itself
  }
}

Status InjectedError(const char* site) {
  return Status::IOError("failpoint(" + std::string(site) +
                         "): injected error");
}

bool IsInjected(const Status& st) {
  return !st.ok() && st.message().rfind("failpoint(", 0) == 0;
}

}  // namespace failpoint
}  // namespace axon
