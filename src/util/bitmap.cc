#include "util/bitmap.h"

#include <algorithm>
#include <bit>
#include <cassert>

#include "util/hash.h"

namespace axon {

namespace {
constexpr uint32_t kWordBits = 64;

inline uint32_t WordsFor(uint32_t bits) { return (bits + kWordBits - 1) / kWordBits; }
}  // namespace

Bitmap::Bitmap(uint32_t num_bits)
    : num_bits_(num_bits), words_(WordsFor(num_bits), 0) {}

void Bitmap::Set(uint32_t i) {
  if (i >= num_bits_) {
    num_bits_ = i + 1;
    words_.resize(WordsFor(num_bits_), 0);
  }
  words_[i / kWordBits] |= (uint64_t{1} << (i % kWordBits));
}

void Bitmap::Clear(uint32_t i) {
  if (i >= num_bits_) return;
  words_[i / kWordBits] &= ~(uint64_t{1} << (i % kWordBits));
}

bool Bitmap::Test(uint32_t i) const {
  if (i >= num_bits_) return false;
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1;
}

uint32_t Bitmap::Count() const {
  uint32_t c = 0;
  for (uint64_t w : words_) c += static_cast<uint32_t>(std::popcount(w));
  return c;
}

bool Bitmap::IsSubsetOf(const Bitmap& other) const {
  for (size_t i = 0; i < words_.size(); ++i) {
    uint64_t ow = i < other.words_.size() ? other.words_[i] : 0;
    if ((words_[i] & ow) != words_[i]) return false;
  }
  return true;
}

bool Bitmap::Intersects(const Bitmap& other) const {
  size_t n = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < n; ++i) {
    if (words_[i] & other.words_[i]) return true;
  }
  return false;
}

Bitmap Bitmap::And(const Bitmap& other) const {
  Bitmap out(std::min(num_bits_, other.num_bits_));
  for (size_t i = 0; i < out.words_.size(); ++i) {
    out.words_[i] = words_[i] & other.words_[i];
  }
  return out;
}

Bitmap Bitmap::Or(const Bitmap& other) const {
  Bitmap out(std::max(num_bits_, other.num_bits_));
  for (size_t i = 0; i < out.words_.size(); ++i) {
    uint64_t a = i < words_.size() ? words_[i] : 0;
    uint64_t b = i < other.words_.size() ? other.words_[i] : 0;
    out.words_[i] = a | b;
  }
  return out;
}

std::vector<uint32_t> Bitmap::ToIndices() const {
  std::vector<uint32_t> out;
  out.reserve(Count());
  for (size_t wi = 0; wi < words_.size(); ++wi) {
    uint64_t w = words_[wi];
    while (w) {
      uint32_t bit = static_cast<uint32_t>(std::countr_zero(w));
      out.push_back(static_cast<uint32_t>(wi) * kWordBits + bit);
      w &= w - 1;
    }
  }
  return out;
}

Bitmap Bitmap::FromIndices(const std::vector<uint32_t>& indices,
                           uint32_t num_bits) {
  Bitmap b(num_bits);
  for (uint32_t i : indices) b.Set(i);
  return b;
}

void Bitmap::Normalize() {
  // Zero any bits at positions >= num_bits_ in the last word.
  uint32_t rem = num_bits_ % kWordBits;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << rem) - 1;
  }
}

uint64_t Bitmap::Hash() const {
  // Hash only up to the highest set word so that trailing-zero growth does
  // not change the hash: {1,3} hashes the same regardless of capacity.
  size_t n = words_.size();
  while (n > 0 && words_[n - 1] == 0) --n;
  uint64_t h = 0x42d5ad5fULL;
  for (size_t i = 0; i < n; ++i) h = HashCombine(h, words_[i]);
  return h;
}

bool Bitmap::operator==(const Bitmap& other) const {
  size_t n = std::max(words_.size(), other.words_.size());
  for (size_t i = 0; i < n; ++i) {
    uint64_t a = i < words_.size() ? words_[i] : 0;
    uint64_t b = i < other.words_.size() ? other.words_[i] : 0;
    if (a != b) return false;
  }
  return true;
}

std::string Bitmap::ToString() const {
  std::string s = "{";
  bool first = true;
  for (uint32_t i : ToIndices()) {
    if (!first) s += ",";
    first = false;
    s += std::to_string(i);
  }
  s += "}";
  return s;
}

Bitmap Bitmap::FromWords(std::vector<uint64_t> words, uint32_t num_bits) {
  Bitmap b;
  b.num_bits_ = num_bits;
  b.words_ = std::move(words);
  b.words_.resize(WordsFor(num_bits), 0);
  b.Normalize();
  return b;
}

}  // namespace axon
