#include "util/cancellation.h"

#include <string>

namespace axon {

Status QueryContext::StopStatus() const {
  switch (cause()) {
    case StopCause::kDeadline:
      return Status::DeadlineExceeded("query exceeded " +
                                      std::to_string(timeout_millis_) + "ms");
    case StopCause::kCancelled:
      return Status::Cancelled("query cancelled by caller");
    case StopCause::kBudget:
      return Status::ResourceExhausted("query exceeded memory budget of " +
                                       std::to_string(budget_.limit()) +
                                       " bytes");
    case StopCause::kNone:
      break;
  }
  return Status::Internal("query stopped without a recorded cause");
}

}  // namespace axon
