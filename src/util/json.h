// Minimal JSON document model: parse, build, serialize.
//
// The observability layer (trace sink, metrics snapshots, bench artifacts,
// tools/bench_diff) needs a dependency-free structured format. This is a
// deliberately small DOM: objects are std::map (sorted keys => byte-stable
// serialization, which the golden-file tests and bench_diff rely on),
// numbers are doubles printed as integers when integral, and the parser
// accepts exactly the JSON this writer produces plus ordinary interchange
// JSON (no comments, no trailing commas).

#ifndef AXON_UTIL_JSON_H_
#define AXON_UTIL_JSON_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace axon {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : type_(Type::kNull) {}
  JsonValue(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT(runtime/explicit)
  JsonValue(double d) : type_(Type::kNumber), num_(d) {}  // NOLINT
  JsonValue(int64_t i)  // NOLINT(runtime/explicit)
      : type_(Type::kNumber), num_(static_cast<double>(i)) {}
  JsonValue(uint64_t u)  // NOLINT(runtime/explicit)
      : type_(Type::kNumber), num_(static_cast<double>(u)) {}
  JsonValue(int i) : type_(Type::kNumber), num_(i) {}  // NOLINT
  JsonValue(std::string s)  // NOLINT(runtime/explicit)
      : type_(Type::kString), str_(std::move(s)) {}
  JsonValue(const char* s) : type_(Type::kString), str_(s) {}  // NOLINT

  static JsonValue Array() {
    JsonValue v;
    v.type_ = Type::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return num_; }
  int64_t AsInt() const { return static_cast<int64_t>(num_); }
  const std::string& AsString() const { return str_; }
  const std::vector<JsonValue>& items() const { return arr_; }
  const std::map<std::string, JsonValue>& members() const { return obj_; }

  /// Array append.
  JsonValue& Append(JsonValue v) {
    arr_.push_back(std::move(v));
    return arr_.back();
  }
  size_t size() const {
    return type_ == Type::kArray ? arr_.size() : obj_.size();
  }

  /// Object member access (creates on mutation, as in std::map).
  JsonValue& operator[](const std::string& key) { return obj_[key]; }

  /// Const lookup: nullptr when absent (or not an object).
  const JsonValue* Find(const std::string& key) const {
    if (type_ != Type::kObject) return nullptr;
    auto it = obj_.find(key);
    return it == obj_.end() ? nullptr : &it->second;
  }
  bool Has(const std::string& key) const { return Find(key) != nullptr; }

  /// Convenience typed getters with defaults, for tolerant readers.
  double GetDouble(const std::string& key, double dflt = 0) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->is_number() ? v->num_ : dflt;
  }
  std::string GetString(const std::string& key,
                        const std::string& dflt = "") const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->is_string() ? v->str_ : dflt;
  }

  /// Serializes this value. `indent` < 0 means compact one-line output;
  /// otherwise pretty-printed with that many spaces per level. Object keys
  /// always come out sorted (std::map order) so output is byte-stable.
  std::string ToString(int indent = 2) const;

 private:
  void WriteTo(std::string* out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::map<std::string, JsonValue> obj_;
};

/// Parses a complete JSON document (rejects trailing garbage).
Result<JsonValue> ParseJson(std::string_view text);

/// Reads and parses a JSON file.
Result<JsonValue> ReadJsonFile(const std::string& path);

/// Writes `value` to `path` with a trailing newline.
Status WriteJsonFile(const std::string& path, const JsonValue& value);

}  // namespace axon

#endif  // AXON_UTIL_JSON_H_
