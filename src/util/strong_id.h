// Zero-cost strong id types for the engine's dictionary-encoded id spaces.
//
// Every dense identifier in the system (term ids, characteristic-set ids,
// extended-characteristic-set ids, property ordinals) is a 32-bit integer,
// and before this header they were all mutually-convertible uint32_t
// aliases. A CsId passed where an EcsId belongs silently corrupts the ECS
// graph adjacency and hierarchy lattices (paper Sec. III.C-D) — the class of
// bug this template makes a compile error. StrongId<Tag> wraps a uint32_t
// with *explicit* construction and no cross-tag conversions, so mixing id
// spaces fails to compile (see tests/negative_compile/), while staying a
// trivially-copyable 4-byte value type that optimizes to the bare integer.

#ifndef AXON_UTIL_STRONG_ID_H_
#define AXON_UTIL_STRONG_ID_H_

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <type_traits>

#include "util/varint.h"

namespace axon {

template <typename Tag>
class StrongId {
 public:
  using underlying_type = uint32_t;

  /// Default-constructs to 0. For id spaces whose sentinel is not 0 (CsId,
  /// EcsId use UINT32_MAX) prefer the named sentinel constants.
  constexpr StrongId() = default;

  /// Construction from the raw integer is always explicit: the boundary
  /// between "just a number" and "an id of this space" must be visible.
  explicit constexpr StrongId(uint32_t v) : v_(v) {}

  /// The raw value, for serialization, indexing and packing into composite
  /// keys. Call sites using value() are exactly the audited boundaries
  /// where an id leaves its typed space.
  constexpr uint32_t value() const { return v_; }

  friend constexpr bool operator==(StrongId, StrongId) = default;
  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  /// Ordinal iteration over a dense id space (`for (TermId i(1); i <= max;
  /// ++i)`). Stays within the tag, so it cannot leak across id spaces.
  constexpr StrongId& operator++() {
    ++v_;
    return *this;
  }

 private:
  uint32_t v_ = 0;
};

/// Streams as the raw value (diagnostics, gtest failure messages).
template <typename Tag>
inline std::ostream& operator<<(std::ostream& os, StrongId<Tag> id) {
  return os << id.value();
}

// The whole point of the wrapper is that it costs nothing: same size,
// alignment and copy semantics as the bare uint32_t it replaces.
namespace strong_id_internal {
struct CheckTag {};
static_assert(sizeof(StrongId<CheckTag>) == 4);
static_assert(alignof(StrongId<CheckTag>) == 4);
static_assert(std::is_trivially_copyable_v<StrongId<CheckTag>>);
static_assert(std::is_trivially_destructible_v<StrongId<CheckTag>>);
}  // namespace strong_id_internal

/// Varint serialization helpers; the typed counterparts of
/// PutVarint32/GetVarint32 used by every on-disk section that stores ids.
template <typename Tag>
inline void PutVarintId(std::string* out, StrongId<Tag> id) {
  PutVarint32(out, id.value());
}

template <typename Tag>
inline const char* GetVarintId(const char* p, const char* limit,
                               StrongId<Tag>* out) {
  uint32_t raw = 0;
  p = GetVarint32(p, limit, &raw);
  if (p != nullptr) *out = StrongId<Tag>(raw);
  return p;
}

}  // namespace axon

/// Hashes like the underlying integer, so unordered containers keyed by a
/// strong id behave identically to the pre-migration uint32_t maps.
template <typename Tag>
struct std::hash<axon::StrongId<Tag>> {
  size_t operator()(axon::StrongId<Tag> id) const noexcept {
    return std::hash<uint32_t>{}(id.value());
  }
};

#endif  // AXON_UTIL_STRONG_ID_H_
