#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace axon {

std::string_view TrimView(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> SplitView(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string FormatBytes(uint64_t bytes) {
  static const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f %s", v, kUnits[unit]);
  return buf;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

std::string EscapeNTriplesLiteral(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string UnescapeNTriplesLiteral(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      char c = s[i + 1];
      switch (c) {
        case '\\': out += '\\'; ++i; continue;
        case '"': out += '"'; ++i; continue;
        case 'n': out += '\n'; ++i; continue;
        case 'r': out += '\r'; ++i; continue;
        case 't': out += '\t'; ++i; continue;
        default: break;  // unknown escape: keep the backslash verbatim
      }
    }
    out += s[i];
  }
  return out;
}

}  // namespace axon
