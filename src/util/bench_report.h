// Machine-readable benchmark reports and the regression comparator behind
// tools/bench_diff and the CI perf gate.
//
// Every bench binary wraps its main in a bench::ReportScope; the harness
// (bench_common.h) records one row per (section, query, engine) cell plus
// per-engine build times, and the scope's destructor serializes the whole
// report to BENCH_<name>.json (directory from AXON_BENCH_JSON_DIR,
// default "."). Schema "axon-bench-v1":
//
//   {
//     "schema": "axon-bench-v1",
//     "bench": "<name>",
//     "scale": <AXON_BENCH_SCALE multiplier>,
//     "build_seconds": {"<engine>": <seconds>, ...},
//     "rows": [{"section", "query", "engine", "seconds",
//               "counters": {"pages_read", "pages_evicted",
//                            "rows_scanned", "intermediate_rows",
//                            "joins"}}, ...],
//     "metrics": {...},  // registry snapshot, when observability is on
//     "governor": {...}  // admission/outcome counters, when governed
//                        // execution ran in this process
//   }
//
// DiffBenchReports compares a current report against a committed baseline.
// Latency regressions are tolerance-gated (wall time is noisy across CI
// runners; rows under `min_seconds` are never flagged on time). Counter
// regressions use a tighter tolerance: ExecStats counters are deterministic
// at every parallelism, so a counter jump is a real plan/exec change, not
// noise. A row present in the baseline but missing from the current report
// is a regression (lost coverage); new rows are reported as notes.

#ifndef AXON_UTIL_BENCH_REPORT_H_
#define AXON_UTIL_BENCH_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/json.h"
#include "util/mutex.h"

namespace axon {
namespace bench {

struct ReportRow {
  std::string section;
  std::string query;
  std::string engine;
  double seconds = 0;
  uint64_t pages_read = 0;
  uint64_t rows_scanned = 0;
  uint64_t intermediate_rows = 0;
  uint64_t joins = 0;
  // Buffer-manager evictions (nonzero only under paged storage). Kept last:
  // harness call sites construct rows positionally.
  uint64_t pages_evicted = 0;
};

/// Accumulates one bench binary's rows; thread-safe.
class Report {
 public:
  explicit Report(std::string name) : name_(std::move(name)) {}

  void AddRow(ReportRow row);
  void AddBuildSeconds(const std::string& engine, double seconds);
  void SetScale(double scale);

  /// The schema-stable JSON document (keys sorted by the JSON writer).
  /// Includes the global metrics snapshot when observability is enabled.
  JsonValue ToJson() const;

  /// Writes ToJson() to `<dir>/BENCH_<name>.json`.
  Status WriteFile(const std::string& dir) const;

  const std::string& name() const { return name_; }

  /// The report the current bench binary is writing, or nullptr outside a
  /// ReportScope. The harness records rows through this.
  static Report* Current();

 private:
  friend class ReportScope;

  // Lock order: ToJson() holds mu_ while snapshotting the metrics
  // registry, so Report::mu_ nests OUTSIDE MetricsRegistry::Impl::mu
  // (DESIGN.md §13). Merge/Diff are pure functions over JSON documents
  // and take no locks.
  mutable Mutex mu_;
  std::string name_;  // immutable after construction
  double scale_ AXON_GUARDED_BY(mu_) = 1.0;
  std::vector<ReportRow> rows_ AXON_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, double>> build_seconds_
      AXON_GUARDED_BY(mu_);
};

/// RAII: installs Report::Current() for the binary's lifetime and writes
/// BENCH_<name>.json on destruction (AXON_BENCH_JSON_DIR or ".").
class ReportScope {
 public:
  explicit ReportScope(const std::string& name);
  ~ReportScope();
  ReportScope(const ReportScope&) = delete;
  ReportScope& operator=(const ReportScope&) = delete;

  Report& report() { return report_; }

 private:
  Report report_;
};

/// Schema check for an axon-bench-v1 document.
Status ValidateBenchReport(const JsonValue& doc);

struct BenchDiffOptions {
  double latency_tolerance = 0.15;  // flag rows >15% slower
  double counter_tolerance = 0.10;  // flag counters >10% higher
  // Rows faster than this never flag on time: sub-millisecond rows on
  // shared CI runners swing by integer factors from scheduling alone, so
  // the floor sits well above them and the counters carry the strict gate.
  double min_seconds = 0.02;
};

struct BenchDiffResult {
  std::vector<std::string> regressions;
  std::vector<std::string> notes;
  bool ok() const { return regressions.empty(); }
};

/// Compares `current` against `baseline` (both axon-bench-v1). Returns an
/// error status if either document fails schema validation.
Result<BenchDiffResult> DiffBenchReports(const JsonValue& baseline,
                                         const JsonValue& current,
                                         const BenchDiffOptions& options);

/// Merges multiple runs of the same bench into one noise-reduced
/// candidate: per (section, query, engine) row the minimum seconds and the
/// minimum of each counter across runs (best-of semantics, matching
/// TimeQuery's best-of-N), rows unioned in first-seen order, per-engine
/// build_seconds minima. Everything else (schema, bench, scale, metrics,
/// governor) comes from the first run. The CI perf gate re-runs a bench
/// once when the first run breaches and diffs the merged pair, so a single
/// noisy-runner spike cannot fail the gate on its own.
Result<JsonValue> MergeBenchReports(const std::vector<JsonValue>& candidates);

}  // namespace bench
}  // namespace axon

#endif  // AXON_UTIL_BENCH_REPORT_H_
