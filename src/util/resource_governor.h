// Resource governor: per-query memory budgets and admission control.
//
// Two independent pieces, composed by engine/governed_engine:
//
//  * MemoryBudget — a tracking accounting hook for one query's operator
//    buffers. Operators charge the budget *before* growing a buffer (the
//    exec/bindings capacity-growth path and the hash-join build side), so
//    tracked allocations never exceed the limit: when a charge would push
//    past `limit_bytes` it throws BudgetExceededError — a std::bad_alloc
//    subclass, caught by the same query fault boundary that turns real
//    allocation failure into Status::ResourceExhausted. A limit of 0
//    disables enforcement but keeps the accounting (footprint
//    measurement). BudgetScope installs a budget thread-locally so deep
//    operator code charges without signature plumbing; worker tasks
//    re-install the scope on their own thread.
//
//  * ResourceGovernor — a bounded concurrent-query gate. Admit() grants a
//    slot immediately when fewer than `max_concurrent` queries run,
//    otherwise queues FIFO up to `max_queue` waiters for at most
//    `queue_wait_millis`; a full queue or a timed-out wait sheds the query
//    with Status::Unavailable carrying a retry-after hint. Outcome
//    counters (admitted/shed/completed/budget-killed/degraded/...) feed
//    the bench-report "governor" section and, when observability is on,
//    the metrics registry as governor.* counters.
//
// Counters are aggregated process-wide (GlobalSnapshot) so bench binaries
// report them without threading a governor instance through the harness.

#ifndef AXON_UTIL_RESOURCE_GOVERNOR_H_
#define AXON_UTIL_RESOURCE_GOVERNOR_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <new>

#include "util/mutex.h"
#include "util/random.h"
#include "util/status.h"

namespace axon {

/// Thrown when a charge would exceed a query's memory budget. Derives
/// std::bad_alloc so the existing bad_alloc -> ResourceExhausted fault
/// boundaries catch it without new plumbing; boundaries that want the
/// budget-specific message catch this type first.
class BudgetExceededError : public std::bad_alloc {
 public:
  const char* what() const noexcept override {
    return "axon: per-query memory budget exceeded";
  }
};

/// Cumulative allocation accounting for one query. Thread-safe: worker
/// tasks of the same query charge the same budget concurrently.
class MemoryBudget {
 public:
  MemoryBudget() = default;
  /// limit_bytes = 0: track only, never throw.
  explicit MemoryBudget(uint64_t limit_bytes) : limit_(limit_bytes) {}

  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Records `bytes` of imminent buffer growth. Throws BudgetExceededError
  /// when the charge would exceed the limit — before recording it, so
  /// charged() never exceeds limit() and the caller never allocates the
  /// over-budget buffer.
  void Charge(uint64_t bytes) {
    if (bytes == 0) return;
    if (exceeded_.load(std::memory_order_relaxed)) throw BudgetExceededError();
    uint64_t prev = charged_.fetch_add(bytes, std::memory_order_relaxed);
    if (limit_ != 0 && prev + bytes > limit_) {
      charged_.fetch_sub(bytes, std::memory_order_relaxed);
      denied_.fetch_add(bytes, std::memory_order_relaxed);
      exceeded_.store(true, std::memory_order_relaxed);
      throw BudgetExceededError();
    }
    uint64_t seen = largest_.load(std::memory_order_relaxed);
    while (bytes > seen &&
           !largest_.compare_exchange_weak(seen, bytes,
                                           std::memory_order_relaxed)) {
    }
  }

  /// Non-throwing Charge: returns false (and marks the budget exceeded)
  /// instead of throwing.
  bool TryCharge(uint64_t bytes) {
    try {
      Charge(bytes);
      return true;
    } catch (const BudgetExceededError&) {
      return false;
    }
  }

  /// Returns `bytes` of a previous charge, for *pool-style* budgets whose
  /// tracked allocations are released and reused (the buffer manager's
  /// frame pool). charged() then tracks residency, not cumulative traffic.
  /// A refund re-opens an exceeded budget so the pool can retry after
  /// evicting. Per-query operator budgets never refund — their sticky
  /// exceeded flag is what makes one denial kill the whole query.
  void Refund(uint64_t bytes) {
    if (bytes == 0) return;
    charged_.fetch_sub(bytes, std::memory_order_relaxed);
    exceeded_.store(false, std::memory_order_relaxed);
  }

  uint64_t limit() const { return limit_; }
  /// Total bytes of accepted charges (cumulative, never exceeds limit()),
  /// minus any refunds (pool-style budgets only).
  uint64_t charged() const { return charged_.load(std::memory_order_relaxed); }
  /// The largest single accepted charge — the "operator-buffer granule" by
  /// which an enforcement race could transiently overshoot.
  uint64_t largest_charge() const {
    return largest_.load(std::memory_order_relaxed);
  }
  /// Bytes of the first denied charge (0 until exceeded).
  uint64_t denied_bytes() const {
    return denied_.load(std::memory_order_relaxed);
  }
  bool exceeded() const { return exceeded_.load(std::memory_order_relaxed); }

 private:
  uint64_t limit_ = 0;
  std::atomic<uint64_t> charged_{0};
  std::atomic<uint64_t> largest_{0};
  std::atomic<uint64_t> denied_{0};
  std::atomic<bool> exceeded_{false};
};

/// RAII thread-local installation of a query's budget, so buffer-growth
/// code (BindingTable) charges without parameter plumbing. Scopes nest;
/// each worker task installs its own scope on its own thread.
class BudgetScope {
 public:
  explicit BudgetScope(MemoryBudget* budget);
  ~BudgetScope();

  BudgetScope(const BudgetScope&) = delete;
  BudgetScope& operator=(const BudgetScope&) = delete;

  /// The innermost budget installed on this thread, or nullptr.
  static MemoryBudget* Current();

 private:
  MemoryBudget* prev_;
};

/// How one admitted query ended. Shed queries never reach an outcome —
/// they are counted at the admission gate.
enum class QueryOutcome {
  kCompleted,        // Ok from the primary engine
  kBudgetKilled,     // ResourceExhausted (budget or real OOM)
  kCancelled,        // explicit CancellationToken
  kDeadlineExpired,  // timeout_millis
  kDegraded,         // primary failed, baseline fallback answered
  kFailed,           // any other error
};

struct GovernorOptions {
  /// Queries allowed to run concurrently; 0 disables admission control
  /// (every Admit() succeeds immediately).
  uint32_t max_concurrent = 0;
  /// Waiters allowed behind the gate; an arrival beyond this is shed.
  uint32_t max_queue = 16;
  /// Per-entry queue deadline: a waiter not admitted within this window is
  /// shed with Unavailable.
  uint64_t queue_wait_millis = 1000;
  /// Retry-after hint embedded in shed Unavailable messages. Each shed
  /// jitters the hint ±25% (deterministic in retry_jitter_seed) so a
  /// synchronized burst of shed clients does not thundering-herd back at
  /// the same instant.
  uint64_t retry_after_millis = 50;
  /// Seed for the retry-after jitter stream: equal seeds + equal shed
  /// sequences reproduce identical hints.
  uint64_t retry_jitter_seed = 0;
};

/// Snapshot of the admission/outcome counters. The accounting identity —
/// submitted == shed + completed + budget_killed + cancelled +
/// deadline_expired + degraded + failed once all queries resolved — is
/// what the overload soak asserts.
struct GovernorCounters {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t queued = 0;  // admitted after waiting (subset of admitted)
  uint64_t shed = 0;
  uint64_t completed = 0;
  uint64_t budget_killed = 0;
  uint64_t cancelled = 0;
  uint64_t deadline_expired = 0;
  uint64_t degraded = 0;
  uint64_t failed = 0;
};

class ResourceGovernor {
 public:
  explicit ResourceGovernor(GovernorOptions options = {});

  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  /// Blocks until a slot is granted (FIFO among waiters) or the entry's
  /// queue deadline passes. Ok = slot held, caller must Release() and
  /// RecordOutcome() exactly once; Unavailable = shed, no slot held.
  Status Admit() AXON_EXCLUDES(mu_);

  /// Returns the slot taken by a successful Admit().
  void Release() AXON_EXCLUDES(mu_);

  /// Classifies how an admitted query ended.
  void RecordOutcome(QueryOutcome outcome) AXON_EXCLUDES(mu_);

  /// Maps a terminal engine Status to its outcome class.
  static QueryOutcome OutcomeOf(const Status& status);

  GovernorCounters Snapshot() const AXON_EXCLUDES(mu_);
  const GovernorOptions& options() const { return options_; }
  /// Currently running (admitted, not yet released) queries.
  uint32_t running() const AXON_EXCLUDES(mu_);

  /// Process-wide aggregate across every governor instance — what the
  /// bench-report "governor" section serializes.
  static GovernorCounters GlobalSnapshot();
  static void ResetGlobalForTest();

 private:
  void Bump(uint64_t GovernorCounters::* field) AXON_REQUIRES(mu_);
  /// Counts the shed and builds its Unavailable status (retry-after hint).
  Status ShedLocked() AXON_REQUIRES(mu_);

  GovernorOptions options_;
  mutable Mutex mu_;
  CondVar cv_;
  uint32_t running_ AXON_GUARDED_BY(mu_) = 0;
  uint64_t next_ticket_ AXON_GUARDED_BY(mu_) = 0;
  std::deque<uint64_t> queue_ AXON_GUARDED_BY(mu_);  // waiting ticket FIFO
  GovernorCounters counters_ AXON_GUARDED_BY(mu_);
  Random retry_jitter_ AXON_GUARDED_BY(mu_);  // hint jitter stream
};

/// Extracts the "retry after ~Nms" hint a shed Unavailable status carries,
/// or `fallback_millis` when `status` has no parseable hint. The HTTP
/// front-end maps this onto the Retry-After header.
uint64_t RetryAfterHintMillis(const Status& status, uint64_t fallback_millis);

}  // namespace axon

#endif  // AXON_UTIL_RESOURCE_GOVERNOR_H_
