// Status / Result error model for axondb.
//
// Public APIs never throw; fallible operations return a Status (or a
// Result<T> which is Status + value). This follows the common database-engine
// idiom (RocksDB, Arrow): errors carry a machine-checkable code plus a
// human-readable message, and are cheap to propagate.

#ifndef AXON_UTIL_STATUS_H_
#define AXON_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace axon {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIOError,
  kCorruption,
  kParseError,
  kUnsupported,
  kOutOfRange,
  kDeadlineExceeded,
  kResourceExhausted,
  kInternal,
  kCancelled,
  kUnavailable,
};

/// Returns a short stable name for a StatusCode ("OK", "InvalidArgument"...).
inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kAlreadyExists: return "AlreadyExists";
    case StatusCode::kIOError: return "IOError";
    case StatusCode::kCorruption: return "Corruption";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kUnsupported: return "Unsupported";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
    case StatusCode::kResourceExhausted: return "ResourceExhausted";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kCancelled: return "Cancelled";
    case StatusCode::kUnavailable: return "Unavailable";
  }
  return "Unknown";
}

/// Outcome of a fallible operation: a code and, when not OK, a message.
///
/// Statuses are value types; copying is cheap for the OK case (no message
/// allocation). Use the static factories: `Status::OK()`,
/// `Status::InvalidArgument("...")`, etc.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const {
    if (ok()) return "OK";
    std::string s = StatusCodeName(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value of type T or an error Status. Modeled after arrow::Result.
///
/// Access the value only after checking `ok()`; `ValueOrDie()` asserts in
/// debug builds.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}        // NOLINT implicit
  Result(Status status) : value_(std::move(status)) {  // NOLINT implicit
    assert(!std::get<Status>(value_).ok() &&
           "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(value_);
  }

  const T& value() const {
    assert(ok());
    return std::get<T>(value_);
  }
  T& value() {
    assert(ok());
    return std::get<T>(value_);
  }

  /// Moves the value out of the Result.
  T ValueOrDie() && {
    assert(ok());
    return std::move(std::get<T>(value_));
  }

 private:
  std::variant<T, Status> value_;
};

/// Propagates a non-OK status out of the enclosing function.
#define AXON_RETURN_NOT_OK(expr)            \
  do {                                      \
    ::axon::Status _st = (expr);            \
    if (!_st.ok()) return _st;              \
  } while (0)

/// Assigns a Result's value to `lhs` or propagates its error status.
#define AXON_ASSIGN_OR_RETURN(lhs, rexpr)          \
  auto AXON_CONCAT_(_res_, __LINE__) = (rexpr);    \
  if (!AXON_CONCAT_(_res_, __LINE__).ok())         \
    return AXON_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(AXON_CONCAT_(_res_, __LINE__)).ValueOrDie()

#define AXON_CONCAT_IMPL_(a, b) a##b
#define AXON_CONCAT_(a, b) AXON_CONCAT_IMPL_(a, b)

}  // namespace axon

#endif  // AXON_UTIL_STATUS_H_
