#include "util/json.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace axon {

namespace {

void WriteEscaped(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void WriteNumber(std::string* out, double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64, static_cast<int64_t>(d));
    out->append(buf);
    return;
  }
  if (!std::isfinite(d)) {  // JSON has no inf/nan; clamp to null
    out->append("null");
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", d);
  out->append(buf);
}

}  // namespace

void JsonValue::WriteTo(std::string* out, int indent, int depth) const {
  auto newline = [&](int d) {
    if (indent < 0) return;
    out->push_back('\n');
    out->append(static_cast<size_t>(indent) * d, ' ');
  };
  switch (type_) {
    case Type::kNull:
      out->append("null");
      break;
    case Type::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case Type::kNumber:
      WriteNumber(out, num_);
      break;
    case Type::kString:
      WriteEscaped(out, str_);
      break;
    case Type::kArray: {
      if (arr_.empty()) {
        out->append("[]");
        break;
      }
      out->push_back('[');
      for (size_t i = 0; i < arr_.size(); ++i) {
        if (i > 0) out->push_back(',');
        newline(depth + 1);
        arr_[i].WriteTo(out, indent, depth + 1);
      }
      newline(depth);
      out->push_back(']');
      break;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        out->append("{}");
        break;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out->push_back(',');
        first = false;
        newline(depth + 1);
        WriteEscaped(out, k);
        out->append(indent < 0 ? ":" : ": ");
        v.WriteTo(out, indent, depth + 1);
      }
      newline(depth);
      out->push_back('}');
      break;
    }
  }
}

std::string JsonValue::ToString(int indent) const {
  std::string out;
  WriteTo(&out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : p_(text.data()), end_(p_ + text.size()) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    AXON_RETURN_NOT_OK(ParseValue(&v, 0));
    SkipWs();
    if (p_ != end_) return Err("trailing characters after document");
    return v;
  }

 private:
  Status Err(const std::string& msg) const {
    return Status::InvalidArgument("json: " + msg);
  }

  void SkipWs() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                          *p_ == '\r')) {
      ++p_;
    }
  }

  bool Consume(char c) {
    if (p_ != end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view w) {
    if (static_cast<size_t>(end_ - p_) < w.size()) return false;
    if (std::string_view(p_, w.size()) != w) return false;
    p_ += w.size();
    return true;
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Err("expected string");
    while (p_ != end_) {
      char c = *p_++;
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (p_ == end_) break;
      char e = *p_++;
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out->push_back(e);
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          if (end_ - p_ < 4) return Err("truncated \\u escape");
          char buf[5] = {p_[0], p_[1], p_[2], p_[3], 0};
          char* pe = nullptr;
          long code = std::strtol(buf, &pe, 16);
          if (pe != buf + 4) return Err("bad \\u escape");
          p_ += 4;
          // Minimal UTF-8 encoding (the writer only emits control chars).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Err("bad escape character");
      }
    }
    return Err("unterminated string");
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > 128) return Err("nesting too deep");
    SkipWs();
    if (p_ == end_) return Err("unexpected end of input");
    char c = *p_;
    if (c == '{') {
      ++p_;
      *out = JsonValue::Object();
      SkipWs();
      if (Consume('}')) return Status::OK();
      for (;;) {
        SkipWs();
        std::string key;
        AXON_RETURN_NOT_OK(ParseString(&key));
        SkipWs();
        if (!Consume(':')) return Err("expected ':' in object");
        JsonValue v;
        AXON_RETURN_NOT_OK(ParseValue(&v, depth + 1));
        (*out)[key] = std::move(v);
        SkipWs();
        if (Consume(',')) continue;
        if (Consume('}')) return Status::OK();
        return Err("expected ',' or '}' in object");
      }
    }
    if (c == '[') {
      ++p_;
      *out = JsonValue::Array();
      SkipWs();
      if (Consume(']')) return Status::OK();
      for (;;) {
        JsonValue v;
        AXON_RETURN_NOT_OK(ParseValue(&v, depth + 1));
        out->Append(std::move(v));
        SkipWs();
        if (Consume(',')) continue;
        if (Consume(']')) return Status::OK();
        return Err("expected ',' or ']' in array");
      }
    }
    if (c == '"') {
      std::string s;
      AXON_RETURN_NOT_OK(ParseString(&s));
      *out = JsonValue(std::move(s));
      return Status::OK();
    }
    if (ConsumeWord("true")) {
      *out = JsonValue(true);
      return Status::OK();
    }
    if (ConsumeWord("false")) {
      *out = JsonValue(false);
      return Status::OK();
    }
    if (ConsumeWord("null")) {
      *out = JsonValue();
      return Status::OK();
    }
    // Number.
    const char* start = p_;
    if (p_ != end_ && (*p_ == '-' || *p_ == '+')) ++p_;
    while (p_ != end_ && ((*p_ >= '0' && *p_ <= '9') || *p_ == '.' ||
                          *p_ == 'e' || *p_ == 'E' || *p_ == '-' ||
                          *p_ == '+')) {
      ++p_;
    }
    if (p_ == start) return Err("unexpected character");
    std::string num(start, p_ - start);
    char* pe = nullptr;
    double d = std::strtod(num.c_str(), &pe);
    if (pe != num.c_str() + num.size()) return Err("bad number");
    *out = JsonValue(d);
    return Status::OK();
  }

  const char* p_;
  const char* end_;
};

}  // namespace

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

Result<JsonValue> ReadJsonFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::string data;
  char buf[1 << 14];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  std::fclose(f);
  return ParseJson(data);
}

Status WriteJsonFile(const std::string& path, const JsonValue& value) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot write " + path);
  std::string text = value.ToString();
  text.push_back('\n');
  size_t written = std::fwrite(text.data(), 1, text.size(), f);
  int rc = std::fclose(f);
  if (written != text.size() || rc != 0) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace axon
