// Small string helpers used by the parsers and the bench harness.

#ifndef AXON_UTIL_STRING_UTIL_H_
#define AXON_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace axon {

/// Strips ASCII whitespace from both ends.
std::string_view TrimView(std::string_view s);

/// Splits on `sep`, keeping empty fields.
std::vector<std::string_view> SplitView(std::string_view s, char sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Human-friendly byte size: "1.23 MB".
std::string FormatBytes(uint64_t bytes);

/// Fixed-precision double: FormatDouble(0.01234, 4) == "0.0123".
std::string FormatDouble(double v, int precision);

/// Escapes a string for N-Triples literal output (backslash, quote, LF, CR,
/// TAB).
std::string EscapeNTriplesLiteral(std::string_view s);
/// Reverses EscapeNTriplesLiteral; invalid escapes are passed through.
std::string UnescapeNTriplesLiteral(std::string_view s);

}  // namespace axon

#endif  // AXON_UTIL_STRING_UTIL_H_
