// Hashing primitives shared across the engine (dictionaries, CS hashing,
// join tables). We use FNV-1a for byte strings and a splittable 64-bit mix
// for integer keys; both are deterministic across runs so that on-disk
// structures hashed at load time can be re-validated later.

#ifndef AXON_UTIL_HASH_H_
#define AXON_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace axon {

/// FNV-1a 64-bit hash of a byte range.
inline uint64_t HashBytes(const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 1469598103934665603ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

/// Finalizer from SplitMix64; a strong 64->64 bit mixer.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-dependent combination of two hashes (boost::hash_combine style).
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return seed ^ (Mix64(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Hash of a pair of 32-bit ids (used for (subjectCS, objectCS) keys).
inline uint64_t HashIdPair(uint32_t a, uint32_t b) {
  return Mix64((static_cast<uint64_t>(a) << 32) | b);
}

}  // namespace axon

#endif  // AXON_UTIL_HASH_H_
