#include "util/thread_pool.h"

#include <cassert>

#include "util/failpoint.h"
#include "util/trace.h"

namespace axon {

namespace {
thread_local bool t_in_worker = false;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    assert(!stop_);
    queue_.push_back(std::move(fn));
    AXON_HISTOGRAM("pool.queue_depth", queue_.size());
  }
  cv_.notify_one();
}

bool ThreadPool::InWorker() { return t_in_worker; }

size_t ThreadPool::ResolveThreads(uint32_t parallelism) {
  if (parallelism != 0) return parallelism;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ && drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::shared_ptr<ThreadPool> MakePool(uint32_t parallelism) {
  size_t threads = ThreadPool::ResolveThreads(parallelism);
  if (threads < 2) return nullptr;
  return std::make_shared<ThreadPool>(threads);
}

WaitGroup::WaitGroup(ThreadPool* pool)
    : pool_(pool != nullptr && !ThreadPool::InWorker() ? pool : nullptr) {}

WaitGroup::~WaitGroup() {
  // Tasks capture state owned by the waiter; never let the group die with
  // tasks in flight (Wait() may already have run — this is then a no-op).
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

void WaitGroup::Run(std::function<void()> fn) {
  if (pool_ == nullptr) {
    // Serial reference path: run inline, but keep the parallel contract —
    // after a failure, remaining tasks are skipped and Wait() rethrows.
    if (error_ != nullptr) return;
    try {
      // Armed "pool.task" faults (delay jitter, oom) hit the inline path
      // too, so the determinism contract is exercised on both schedules.
      AXON_FAILPOINT("pool.task");
      fn();
    } catch (...) {
      error_ = std::current_exception();
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++pending_;
  }
  pool_->Submit([this, fn = std::move(fn)] {
    try {
      AXON_FAILPOINT("pool.task");
      fn();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (error_ == nullptr) error_ = std::current_exception();
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (--pending_ == 0) cv_.notify_all();
  });
}

void WaitGroup::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
  if (error_ != nullptr) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  size_t threads =
      pool == nullptr || ThreadPool::InWorker() ? 1 : pool->num_threads();
  if (threads < 2 || n < 2) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Static block decomposition: up to 4 blocks per worker bounds the
  // submission overhead while smoothing imbalance between blocks.
  size_t blocks = std::min(n, threads * 4);
  WaitGroup wg(pool);
  for (size_t b = 0; b < blocks; ++b) {
    size_t begin = b * n / blocks;
    size_t end = (b + 1) * n / blocks;
    wg.Run([&fn, begin, end] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  wg.Wait();
}

}  // namespace axon
