#include "util/thread_pool.h"

#include <cassert>

#include "util/failpoint.h"
#include "util/trace.h"

namespace axon {

namespace {
thread_local bool t_in_worker = false;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    MutexLock lock(&mu_);
    assert(!stop_);
    queue_.push_back(std::move(fn));
    AXON_HISTOGRAM("pool.queue_depth", queue_.size());
  }
  cv_.NotifyOne();
}

bool ThreadPool::InWorker() { return t_in_worker; }

size_t ThreadPool::ResolveThreads(uint32_t parallelism) {
  if (parallelism != 0) return parallelism;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::WorkerLoop() {
  t_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(&mu_);
      if (queue_.empty()) return;  // stop_ && drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

std::shared_ptr<ThreadPool> MakePool(uint32_t parallelism) {
  size_t threads = ThreadPool::ResolveThreads(parallelism);
  if (threads < 2) return nullptr;
  return std::make_shared<ThreadPool>(threads);
}

WaitGroup::WaitGroup(ThreadPool* pool)
    : pool_(pool != nullptr && !ThreadPool::InWorker() ? pool : nullptr) {}

WaitGroup::~WaitGroup() {
  // Tasks capture state owned by the waiter; never let the group die with
  // tasks in flight (Wait() may already have run — this is then a no-op).
  MutexLock lock(&mu_);
  while (pending_ != 0) cv_.Wait(&mu_);
}

void WaitGroup::Run(std::function<void()> fn) {
  if (pool_ == nullptr) {
    // Serial reference path: run inline, but keep the parallel contract —
    // after a failure, remaining tasks are skipped and Wait() rethrows.
    // The lock is uncontended here (no tasks in flight) but keeps every
    // error_ access under mu_ for the thread-safety analysis.
    {
      MutexLock lock(&mu_);
      if (error_ != nullptr) return;
    }
    std::exception_ptr err;
    try {
      // Armed "pool.task" faults (delay jitter, oom) hit the inline path
      // too, so the determinism contract is exercised on both schedules.
      AXON_FAILPOINT("pool.task");
      fn();
    } catch (...) {
      err = std::current_exception();
    }
    if (err != nullptr) {
      MutexLock lock(&mu_);
      if (error_ == nullptr) error_ = err;
    }
    return;
  }
  {
    MutexLock lock(&mu_);
    ++pending_;
  }
  pool_->Submit([this, fn = std::move(fn)] {
    std::exception_ptr err;
    try {
      AXON_FAILPOINT("pool.task");
      fn();
    } catch (...) {
      err = std::current_exception();
    }
    MutexLock lock(&mu_);
    if (err != nullptr && error_ == nullptr) error_ = err;
    if (--pending_ == 0) cv_.NotifyAll();
  });
}

void WaitGroup::Wait() {
  std::exception_ptr e;
  {
    MutexLock lock(&mu_);
    while (pending_ != 0) cv_.Wait(&mu_);
    e = error_;
    error_ = nullptr;
  }
  if (e != nullptr) std::rethrow_exception(e);
}

void ParallelFor(ThreadPool* pool, size_t n,
                 const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  size_t threads =
      pool == nullptr || ThreadPool::InWorker() ? 1 : pool->num_threads();
  if (threads < 2 || n < 2) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Static block decomposition: up to 4 blocks per worker bounds the
  // submission overhead while smoothing imbalance between blocks.
  size_t blocks = std::min(n, threads * 4);
  WaitGroup wg(pool);
  for (size_t b = 0; b < blocks; ++b) {
    size_t begin = b * n / blocks;
    size_t end = (b + 1) * n / blocks;
    wg.Run([&fn, begin, end] {
      for (size_t i = begin; i < end; ++i) fn(i);
    });
  }
  wg.Wait();
}

}  // namespace axon
