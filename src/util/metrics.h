// Global metrics: named counters and histograms for the engine's hot
// paths (triples scanned, B+-tree node touches, ECS matches tried/pruned,
// chain lengths, pool queue depth, per-operator wall time).
//
// Design constraints:
//  * Registration is on-demand and thread-safe; returned pointers are
//    stable for the process lifetime (the registry never deletes), so call
//    sites can cache them in function-local statics.
//  * Updates are lock-free relaxed atomics — safe from any thread,
//    including pool workers inside TSan-checked sections.
//  * The whole layer is gated twice: compiled out entirely when the CMake
//    option AXON_TRACE is OFF (see trace.h for the macros), and runtime
//    no-op'd unless observability is enabled (env AXON_TRACE=1 or
//    obs::SetEnabled(true)); a disabled build or run costs at most one
//    relaxed atomic load per instrumentation point.
//  * Snapshot() serializes to JSON with sorted keys — the format consumed
//    by the bench artifacts and tools/bench_diff.

#ifndef AXON_UTIL_METRICS_H_
#define AXON_UTIL_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/json.h"

namespace axon {
namespace metrics {

class Counter {
 public:
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Power-of-two-bucket histogram of non-negative integer samples: bucket i
/// counts values in [2^(i-1), 2^i) (bucket 0 counts zeros and ones). Fixed
/// layout, lock-free observation; quantiles are bucket-resolution
/// estimates, which is plenty for span timings and queue depths.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Observe(uint64_t value);
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  /// Upper bound of the bucket containing quantile q in [0, 1].
  uint64_t Quantile(double q) const;
  void Reset();

  /// {"count":N,"sum":S,"mean":S/N,"max":M,"p50":...,"p99":...}
  JsonValue ToJson() const;

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

class MetricsRegistry {
 public:
  /// The process-wide registry (intentionally leaked: instrumentation may
  /// fire from detached contexts during static destruction).
  static MetricsRegistry& Global();

  /// Finds or creates; returned pointer is valid forever.
  Counter* GetCounter(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Zeroes every metric (pointers stay valid). For bench/test isolation;
  /// concurrent updates during a reset are tolerated (they land in the
  /// fresh epoch or the old one, never corrupt).
  void ResetAll();

  /// {"counters": {name: value}, "histograms": {name: {...}}} with zero-
  /// valued counters elided (a disabled run snapshots to empty objects).
  JsonValue Snapshot() const;

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl* impl();
  const Impl* impl() const;
};

}  // namespace metrics
}  // namespace axon

#endif  // AXON_UTIL_METRICS_H_
