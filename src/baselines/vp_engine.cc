#include "baselines/vp_engine.h"

#include "util/trace.h"

namespace axon {

VpEngine VpEngine::Build(const Dataset& dataset) {
  VpEngine e;
  e.dict_ = &dataset.dict;
  for (const Triple& t : dataset.triples) {
    Chunk& c = e.chunks_[t.p];
    c.by_subject.Append(t);
    c.by_object.Append(t);
  }
  for (auto& [pred, chunk] : e.chunks_) {
    (void)pred;
    chunk.by_subject.Sort(Permutation::kSpo);
    chunk.by_subject.Dedup();
    chunk.by_object.Sort(Permutation::kOps);
    chunk.by_object.Dedup();
    e.total_triples_ += chunk.by_subject.size();
  }
  return e;
}

AccessPath VpEngine::MakeAccessPath(const IdPattern& p) const {
  AccessPath path;
  if (p.p_bound()) {
    auto it = chunks_.find(p.p);
    if (it == chunks_.end()) {
      path.estimated_rows = 0;
      path.materialize = [p](ExecStats* stats, QueryContext* ctx) {
        return ScanPattern({}, p, stats, ctx);
      };
      return path;
    }
    const Chunk& chunk = it->second;
    if (p.o_bound() && !p.s_bound()) {
      RowRange range =
          chunk.by_object.EqualRange(Permutation::kOps, p.o, p.p, kInvalidId);
      path.estimated_rows = range.size();
      path.materialize = [&chunk, range, p](ExecStats* stats, QueryContext* ctx) {
        AccountRangePages(range, stats);
        return ScanPattern(chunk.by_object.slice(range), p, stats, ctx);
      };
      return path;
    }
    RowRange range =
        p.s_bound()
            ? chunk.by_subject.EqualRange(Permutation::kSpo, p.s, p.p,
                                          p.o_bound() ? p.o : kInvalidId)
            : RowRange{0, chunk.by_subject.size()};
    path.estimated_rows = range.size();
    path.materialize = [&chunk, range, p](ExecStats* stats, QueryContext* ctx) {
      AccountRangePages(range, stats);
      return ScanPattern(chunk.by_subject.slice(range), p, stats, ctx);
    };
    return path;
  }

  // Unbound predicate: union over every chunk (the vertical-partitioning
  // weak spot). Bound S/O at least narrow each chunk's range.
  uint64_t estimate = 0;
  std::vector<std::pair<const TripleTable*, RowRange>> pieces;
  for (const auto& [pred, chunk] : chunks_) {
    (void)pred;
    if (p.o_bound() && !p.s_bound()) {
      RowRange r = chunk.by_object.EqualRange(Permutation::kOps, p.o,
                                              kInvalidId, kInvalidId);
      pieces.emplace_back(&chunk.by_object, r);
      estimate += r.size();
    } else if (p.s_bound()) {
      RowRange r = chunk.by_subject.EqualRange(Permutation::kSpo, p.s,
                                               kInvalidId, kInvalidId);
      pieces.emplace_back(&chunk.by_subject, r);
      estimate += r.size();
    } else {
      RowRange r{0, chunk.by_subject.size()};
      pieces.emplace_back(&chunk.by_subject, r);
      estimate += r.size();
    }
  }
  path.estimated_rows = estimate;
  path.materialize = [pieces, p](ExecStats* stats, QueryContext* ctx) {
    // Union the per-chunk scans; all chunks yield the same schema since the
    // schema is a function of the pattern alone.
    BindingTable out = ScanPattern({}, p, stats);
    for (const auto& [table, range] : pieces) {
      if (ctx != nullptr) ctx->CheckStop();
      AccountRangePages(range, stats);
      BindingTable part = ScanPattern(table->slice(range), p, stats, ctx);
      for (size_t r = 0; r < part.num_rows(); ++r) {
        out.AppendRow(part.row(r));
      }
    }
    return out;
  };
  return path;
}

Result<QueryResult> VpEngine::Execute(const SelectQuery& query) const {
  QueryContext ctx(timeout_millis_);
  return Execute(query, &ctx);
}

Result<QueryResult> VpEngine::Execute(const SelectQuery& query,
                                      QueryContext* ctx) const {
  AXON_SPAN("query.execute_vp");
  return EvaluateSparql(
      query, *dict_,
      [this](const IdPattern& p) { return MakeAccessPath(p); }, ctx);
}

uint64_t VpEngine::StorageBytes() const {
  uint64_t total = 0;
  for (const auto& [pred, chunk] : chunks_) {
    (void)pred;
    total += chunk.by_subject.ByteSize() + chunk.by_object.ByteSize();
  }
  return total;
}

}  // namespace axon
