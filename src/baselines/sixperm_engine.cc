#include "baselines/sixperm_engine.h"

#include "util/trace.h"

namespace axon {

SixPermEngine SixPermEngine::Build(const Dataset& dataset) {
  SixPermEngine e;
  e.dict_ = &dataset.dict;
  for (size_t i = 0; i < kAllPermutations.size(); ++i) {
    e.tables_[i].Reserve(dataset.triples.size());
    for (const Triple& t : dataset.triples) e.tables_[i].Append(t);
    e.tables_[i].Sort(kAllPermutations[i]);
    e.tables_[i].Dedup();
  }
  return e;
}

Permutation SixPermEngine::ChoosePermutation(const IdPattern& p) {
  // Pick the ordering whose major→minor key visits bound positions first.
  if (p.s_bound()) {
    if (p.p_bound()) return Permutation::kSpo;
    if (p.o_bound()) return Permutation::kSop;
    return Permutation::kSpo;
  }
  if (p.p_bound()) {
    if (p.o_bound()) return Permutation::kPos;
    return Permutation::kPso;
  }
  if (p.o_bound()) return Permutation::kOsp;
  return Permutation::kSpo;  // full scan
}

AccessPath SixPermEngine::MakeAccessPath(const IdPattern& p) const {
  Permutation perm = ChoosePermutation(p);
  const TripleTable& table = tables_[static_cast<size_t>(perm)];
  // Bound components in the permutation's key order form the probe prefix.
  auto key = PermutationKey(perm, Triple{p.s, p.p, p.o});
  TermId major = key[0];
  TermId mid = major != kInvalidId ? key[1] : kInvalidId;
  TermId minor = (major != kInvalidId && mid != kInvalidId) ? key[2]
                                                            : kInvalidId;
  RowRange range = major == kInvalidId
                       ? RowRange{0, table.size()}
                       : table.EqualRange(perm, major, mid, minor);
  AccessPath path;
  path.estimated_rows = range.size();
  path.materialize = [&table, range, p](ExecStats* stats, QueryContext* ctx) {
    AccountRangePages(range, stats);
    return ScanPattern(table.slice(range), p, stats, ctx);
  };
  return path;
}

Result<QueryResult> SixPermEngine::Execute(const SelectQuery& query) const {
  QueryContext ctx(timeout_millis_);
  return Execute(query, &ctx);
}

Result<QueryResult> SixPermEngine::Execute(const SelectQuery& query,
                                           QueryContext* ctx) const {
  AXON_SPAN("query.execute_sixperm");
  return EvaluateSparql(
      query, *dict_,
      [this](const IdPattern& p) { return MakeAccessPath(p); }, ctx);
}

uint64_t SixPermEngine::StorageBytes() const {
  uint64_t total = 0;
  for (const TripleTable& t : tables_) total += t.ByteSize();
  return total;
}

}  // namespace axon
