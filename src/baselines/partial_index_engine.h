// Partial-index baseline — the Virtuoso 7.2 architectural analogue.
//
// Open-source Virtuoso keeps a quad table with two *full* orderings (PSOG
// and POGS — here PSO and POS) plus a small set of *partial* indexes; it
// does not maintain subject- or object-major full permutations. We model
// this as: full PSO and POS tables, plus a partial SP index (subject →
// rows, resolved through a subject-major table that the engine must
// post-filter). Patterns that a six-permutation store would answer with a
// tight prefix scan (e.g. bound S+O) here scan wider ranges and filter —
// the behaviour the paper's experiments expose on unbound-heavy chains.

#ifndef AXON_BASELINES_PARTIAL_INDEX_ENGINE_H_
#define AXON_BASELINES_PARTIAL_INDEX_ENGINE_H_

#include "baselines/generic_bgp.h"
#include "storage/triple_table.h"

namespace axon {

class PartialIndexEngine : public QueryEngine {
 public:
  static PartialIndexEngine Build(const Dataset& dataset);

  std::string name() const override { return "PartialIdx(Virtuoso)"; }
  Result<QueryResult> Execute(const SelectQuery& query) const override;
  Result<QueryResult> Execute(const SelectQuery& query,
                              QueryContext* ctx) const override;
  uint64_t StorageBytes() const override;

  /// Per-query wall-clock budget (ms); 0 = unlimited.
  void set_timeout_millis(uint64_t ms) { timeout_millis_ = ms; }

 private:
  AccessPath MakeAccessPath(const IdPattern& p) const;

  const Dictionary* dict_ = nullptr;
  uint64_t timeout_millis_ = 0;
  TripleTable pso_;  // full index
  TripleTable pos_;  // full index
  TripleTable sop_;  // partial: subject-major, used only for bound-S probes
};

}  // namespace axon

#endif  // AXON_BASELINES_PARTIAL_INDEX_ENGINE_H_
