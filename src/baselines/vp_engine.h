// Vertical-partitioning baseline — the TripleBit architectural analogue.
//
// Data is partitioned into one two-column (S, O) chunk per predicate
// (Abadi-style vertical partitioning; TripleBit's chunks-per-predicate
// layout, paper Sec. VI). Each chunk is kept in both subject order and
// object order. Patterns with a bound predicate scan only that predicate's
// chunk — excellent for selective bound-object probes — but patterns with
// an unbound predicate must union every chunk, and multi-chain queries
// suffer the large intermediate joins the paper reports for TripleBit.

#ifndef AXON_BASELINES_VP_ENGINE_H_
#define AXON_BASELINES_VP_ENGINE_H_

#include <map>

#include "baselines/generic_bgp.h"
#include "storage/triple_table.h"

namespace axon {

class VpEngine : public QueryEngine {
 public:
  static VpEngine Build(const Dataset& dataset);

  std::string name() const override { return "VertPart(TripleBit)"; }
  Result<QueryResult> Execute(const SelectQuery& query) const override;
  Result<QueryResult> Execute(const SelectQuery& query,
                              QueryContext* ctx) const override;
  uint64_t StorageBytes() const override;

  /// Per-query wall-clock budget (ms); 0 = unlimited.
  void set_timeout_millis(uint64_t ms) { timeout_millis_ = ms; }

  size_t num_predicates() const { return chunks_.size(); }

 private:
  struct Chunk {
    TripleTable by_subject;  // sorted (S, O)
    TripleTable by_object;   // sorted (O, S)
  };

  AccessPath MakeAccessPath(const IdPattern& p) const;

  const Dictionary* dict_ = nullptr;
  uint64_t timeout_millis_ = 0;
  std::map<TermId, Chunk> chunks_;
  uint64_t total_triples_ = 0;
};

}  // namespace axon

#endif  // AXON_BASELINES_VP_ENGINE_H_
