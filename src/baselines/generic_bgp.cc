#include "baselines/generic_bgp.h"

#include <algorithm>

#include "engine/extended_eval.h"
#include "util/resource_governor.h"
#include "util/trace.h"

namespace axon {

namespace {

// Variables named by a pattern.
std::vector<std::string> PatternVars(const IdPattern& p) {
  std::vector<std::string> out;
  auto add = [&out](const std::string& v) {
    if (!v.empty() && std::find(out.begin(), out.end(), v) == out.end()) {
      out.push_back(v);
    }
  };
  add(p.s_var);
  add(p.p_var);
  add(p.o_var);
  return out;
}

bool SharesVar(const std::vector<std::string>& bound_vars,
               const IdPattern& p) {
  for (const std::string& v : PatternVars(p)) {
    if (std::find(bound_vars.begin(), bound_vars.end(), v) !=
        bound_vars.end()) {
      return true;
    }
  }
  return false;
}

}  // namespace

Result<std::vector<IdPattern>> BindPatterns(const SelectQuery& query,
                                            const Dictionary& dict,
                                            bool* empty_result) {
  *empty_result = false;
  std::vector<IdPattern> out;
  out.reserve(query.patterns.size());
  for (const TriplePattern& tp : query.patterns) {
    IdPattern ip;
    auto bind = [&dict, empty_result](const PatternTerm& t, TermId* id,
                                      std::string* var) {
      if (t.is_variable) {
        *var = t.var;
        return;
      }
      auto found = dict.Lookup(t.term);
      if (!found.has_value()) {
        *empty_result = true;
        return;
      }
      *id = *found;
    };
    bind(tp.s, &ip.s, &ip.s_var);
    bind(tp.p, &ip.p, &ip.p_var);
    bind(tp.o, &ip.o, &ip.o_var);
    out.push_back(std::move(ip));
  }
  return out;
}

Result<std::vector<std::pair<std::string, TermId>>> BindFilters(
    const SelectQuery& query, const Dictionary& dict, bool* empty_result) {
  *empty_result = false;
  std::vector<std::pair<std::string, TermId>> out;
  for (const EqualityFilter& f : query.filters) {
    auto found = dict.Lookup(f.value);
    if (!found.has_value()) {
      *empty_result = true;
      return out;
    }
    out.emplace_back(f.var, *found);
  }
  return out;
}

namespace {

Result<QueryResult> EvaluateBgpGreedyImpl(const SelectQuery& query,
                                          const Dictionary& dict,
                                          const AccessPathFn& access_path,
                                          QueryContext* ctx) {
  AXON_SPAN("baseline.eval_bgp_greedy");
  QueryResult result;
  // Install the query's budget for the (serial) baseline pipeline so
  // operator buffer growth is charged exactly like in the axonDB executor.
  BudgetScope budget_scope(ctx != nullptr ? ctx->budget() : nullptr);
  if (query.patterns.empty()) {
    return Status::InvalidArgument("query has no triple patterns");
  }

  bool patterns_empty = false;
  bool filters_empty = false;
  auto patterns_r = BindPatterns(query, dict, &patterns_empty);
  if (!patterns_r.ok()) return patterns_r.status();
  auto filters_r = BindFilters(query, dict, &filters_empty);
  if (!filters_r.ok()) return filters_r.status();
  bool empty = patterns_empty || filters_empty;
  std::vector<IdPattern> patterns = std::move(patterns_r).ValueOrDie();
  auto filters = std::move(filters_r).ValueOrDie();

  std::vector<std::string> proj = query.EffectiveProjection();
  if (empty) {
    result.table = BindingTable(proj);
    return result;
  }

  // Choose an access path per pattern up front (first-level statistics).
  std::vector<AccessPath> paths;
  paths.reserve(patterns.size());
  for (const IdPattern& p : patterns) paths.push_back(access_path(p));

  // Greedy ordering: cheapest connected pattern next.
  std::vector<bool> used(patterns.size(), false);
  std::vector<std::string> bound_vars;
  BindingTable current;
  bool first = true;
  for (size_t step = 0; step < patterns.size(); ++step) {
    size_t best = patterns.size();
    bool best_connected = false;
    for (size_t i = 0; i < patterns.size(); ++i) {
      if (used[i]) continue;
      bool connected = first || SharesVar(bound_vars, patterns[i]);
      if (best == patterns.size() ||
          (connected && !best_connected) ||
          (connected == best_connected &&
           paths[i].estimated_rows < paths[best].estimated_rows)) {
        best = i;
        best_connected = connected;
      }
    }
    BindingTable next = paths[best].materialize(&result.stats, ctx);
    used[best] = true;
    for (const std::string& v : PatternVars(patterns[best])) {
      if (std::find(bound_vars.begin(), bound_vars.end(), v) ==
          bound_vars.end()) {
        bound_vars.push_back(v);
      }
    }
    if (ctx != nullptr && ctx->ShouldStop()) return ctx->StopStatus();
    if (first) {
      current = std::move(next);
      first = false;
    } else {
      current = HashJoin(current, next, &result.stats, ctx);
    }
    if (current.num_rows() == 0 && current.num_cols() > 0) break;
  }

  for (const auto& [var, id] : filters) {
    current = FilterEquals(current, var, id, &result.stats);
  }

  // Patterns whose every position is bound and which were skipped by the
  // early break must still hold: if we broke early with zero rows the
  // result is empty anyway, so nothing further to check.
  for (const std::string& v : proj) {
    if (current.ColumnIndex(v) < 0) {
      // Only reachable after the zero-row early break, before the pattern
      // binding v was joined in: the result is empty over the projection
      // schema. (Projecting the missing column would assert.)
      result.table = BindingTable(proj);
      return result;
    }
  }
  current = Project(current, proj);
  if (query.distinct) current = Distinct(current);
  if (query.limit.has_value()) current = Limit(current, *query.limit);
  result.table = std::move(current);
  return result;
}

// Conjunctive queries run the greedy pipeline directly; extended queries
// compose it over conjunctive leaves. Callers go through the fault
// boundary below either way.
Result<QueryResult> DispatchImpl(const SelectQuery& query,
                                 const Dictionary& dict,
                                 const AccessPathFn& access_path,
                                 QueryContext* ctx) {
  if (!query.IsConjunctive()) {
    return EvaluateExtended(
        query, dict,
        [&dict, &access_path](const SelectQuery& leaf, QueryContext* c) {
          return EvaluateBgpGreedyImpl(leaf, dict, access_path, c);
        },
        ctx);
  }
  return EvaluateBgpGreedyImpl(query, dict, access_path, ctx);
}

}  // namespace

Result<QueryResult> EvaluateBgpGreedy(const SelectQuery& query,
                                      const Dictionary& dict,
                                      const AccessPathFn& access_path,
                                      QueryContext* ctx) {
  // Baseline fault boundary, mirroring Executor::Execute: a stop thrown
  // from inside a scan/join loop or a budget-denied allocation becomes a
  // clean Status instead of unwinding into the caller.
  try {
    return EvaluateBgpGreedyImpl(query, dict, access_path, ctx);
  } catch (const QueryStopError&) {
    return ctx != nullptr
               ? ctx->StopStatus()
               : Status::Internal("query stop without a QueryContext");
  } catch (const BudgetExceededError&) {
    return Status::ResourceExhausted(
        ctx != nullptr
            ? "query exceeded memory budget of " +
                  std::to_string(ctx->budget()->limit()) + " bytes"
            : "query exceeded memory budget");
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted(
        "query aborted: out of memory during execution");
  }
}

Result<QueryResult> EvaluateSparql(const SelectQuery& query,
                                   const Dictionary& dict,
                                   const AccessPathFn& access_path,
                                   QueryContext* ctx) {
  try {
    return DispatchImpl(query, dict, access_path, ctx);
  } catch (const QueryStopError&) {
    return ctx != nullptr
               ? ctx->StopStatus()
               : Status::Internal("query stop without a QueryContext");
  } catch (const BudgetExceededError&) {
    return Status::ResourceExhausted(
        ctx != nullptr
            ? "query exceeded memory budget of " +
                  std::to_string(ctx->budget()->limit()) + " bytes"
            : "query exceeded memory budget");
  } catch (const std::bad_alloc&) {
    return Status::ResourceExhausted(
        "query aborted: out of memory during execution");
  }
}

}  // namespace axon
