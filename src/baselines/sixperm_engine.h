// Six-permutation baseline — the RDF-3x architectural analogue.
//
// Stores the full triples table in all six (S,P,O) orderings and answers
// each triple pattern with a binary-searched prefix range over the
// permutation whose sort key starts with the pattern's bound components
// (RDF-3x's "exhaustive permutation" scheme, paper Secs. I and VI). Join
// ordering is greedy over first-level cardinality statistics — the data
// independence assumption the paper critiques.

#ifndef AXON_BASELINES_SIXPERM_ENGINE_H_
#define AXON_BASELINES_SIXPERM_ENGINE_H_

#include <array>

#include "baselines/generic_bgp.h"
#include "storage/triple_table.h"

namespace axon {

class SixPermEngine : public QueryEngine {
 public:
  /// Builds all six permutation tables from the dataset.
  static SixPermEngine Build(const Dataset& dataset);

  std::string name() const override { return "SixPerm(RDF-3x)"; }
  Result<QueryResult> Execute(const SelectQuery& query) const override;
  Result<QueryResult> Execute(const SelectQuery& query,
                              QueryContext* ctx) const override;
  uint64_t StorageBytes() const override;

  /// Per-query wall-clock budget (ms); 0 = unlimited.
  void set_timeout_millis(uint64_t ms) { timeout_millis_ = ms; }

  /// The permutation whose key prefix covers the pattern's bound
  /// components (exposed for tests).
  static Permutation ChoosePermutation(const IdPattern& p);

 private:
  AccessPath MakeAccessPath(const IdPattern& p) const;

  const Dictionary* dict_ = nullptr;
  uint64_t timeout_millis_ = 0;
  std::array<TripleTable, 6> tables_;
};

}  // namespace axon

#endif  // AXON_BASELINES_SIXPERM_ENGINE_H_
