// Generic BGP evaluation shared by the baseline engines.
//
// The baselines embody the "data independence assumption" the paper
// critiques: each triple pattern is resolved to the best available index
// range in isolation, per-pattern cardinalities are first-level statistics,
// and join ordering is a greedy heuristic over those estimates. What
// differs between the three baselines is only the set of access paths —
// exactly the axis the paper varies (six permutations vs partial indexes vs
// vertical partitioning).

#ifndef AXON_BASELINES_GENERIC_BGP_H_
#define AXON_BASELINES_GENERIC_BGP_H_

#include <functional>
#include <vector>

#include "engine/query_engine.h"
#include "exec/operators.h"
#include "sparql/algebra.h"
#include "storage/triple_table.h"

namespace axon {

/// Resolves the pattern-level terms of `query` to ids via `dict`. If any
/// bound term is absent from the dictionary, the query provably has no
/// solutions and *empty_result is set.
Result<std::vector<IdPattern>> BindPatterns(const SelectQuery& query,
                                            const Dictionary& dict,
                                            bool* empty_result);

/// Resolves the equality filters of `query` to (var, id) pairs; a filter
/// value missing from the dictionary sets *empty_result.
Result<std::vector<std::pair<std::string, TermId>>> BindFilters(
    const SelectQuery& query, const Dictionary& dict, bool* empty_result);

/// Adds the simulated page count of one scanned range to stats->pages_read
/// (kSimulatedPageRows — the same disk model the axonDB executor accounts
/// with, so simulated-I/O comparisons across engines are like for like).
inline void AccountRangePages(const RowRange& range, ExecStats* stats) {
  if (stats == nullptr || range.empty()) return;
  stats->pages_read += (range.end - 1) / kSimulatedPageRows -
                       range.begin / kSimulatedPageRows + 1;
}

/// One access path chosen for a pattern: an estimated cardinality and a
/// thunk materializing the pattern's solutions. The QueryContext (may be
/// null) lets the scan inside the thunk observe deadline/cancel/budget
/// stops at leaf granularity instead of only between operators.
struct AccessPath {
  uint64_t estimated_rows = 0;
  std::function<BindingTable(ExecStats*, QueryContext*)> materialize;
};

/// Engine-specific access-path selection.
using AccessPathFn = std::function<AccessPath(const IdPattern&)>;

/// Greedy BGP evaluation: repeatedly joins in the cheapest pattern that
/// shares a variable with the current bindings (falling back to a cross
/// product when the pattern graph is disconnected), then applies filters,
/// DISTINCT/projection and LIMIT.
/// `ctx` may be null (no deadline, no budget, no cancellation); with a
/// context, stops are observed every kStopCheckRows rows inside scans and
/// joins and surface as DeadlineExceeded / Cancelled / ResourceExhausted —
/// the engine-level mechanism behind the paper's per-query 30-minute cap.
Result<QueryResult> EvaluateBgpGreedy(const SelectQuery& query,
                                      const Dictionary& dict,
                                      const AccessPathFn& access_path,
                                      QueryContext* ctx = nullptr);

/// Full-surface entry point for the baseline engines: conjunctive queries
/// go straight to the greedy BGP pipeline; extended queries (OPTIONAL /
/// UNION / FILTER expressions / aggregation / ORDER BY / OFFSET) compose
/// the shared operators over conjunctive leaves, each leaf evaluated
/// greedily through `access_path`. One fault boundary covers both paths.
Result<QueryResult> EvaluateSparql(const SelectQuery& query,
                                   const Dictionary& dict,
                                   const AccessPathFn& access_path,
                                   QueryContext* ctx = nullptr);

}  // namespace axon

#endif  // AXON_BASELINES_GENERIC_BGP_H_
