#include "baselines/partial_index_engine.h"

#include "util/trace.h"

namespace axon {

PartialIndexEngine PartialIndexEngine::Build(const Dataset& dataset) {
  PartialIndexEngine e;
  e.dict_ = &dataset.dict;
  for (TripleTable* t : {&e.pso_, &e.pos_, &e.sop_}) {
    t->Reserve(dataset.triples.size());
    for (const Triple& triple : dataset.triples) t->Append(triple);
  }
  e.pso_.Sort(Permutation::kPso);
  e.pso_.Dedup();
  e.pos_.Sort(Permutation::kPos);
  e.pos_.Dedup();
  e.sop_.Sort(Permutation::kSop);
  e.sop_.Dedup();
  return e;
}

AccessPath PartialIndexEngine::MakeAccessPath(const IdPattern& p) const {
  const TripleTable* table = nullptr;
  RowRange range;
  if (p.p_bound()) {
    if (p.o_bound()) {
      // POS prefix covers (P, O [, S]).
      table = &pos_;
      range = pos_.EqualRange(Permutation::kPos, p.p, p.o,
                              p.s_bound() ? p.s : kInvalidId);
    } else {
      // PSO prefix covers (P [, S]).
      table = &pso_;
      range = pso_.EqualRange(Permutation::kPso, p.p,
                              p.s_bound() ? p.s : kInvalidId, kInvalidId);
    }
  } else if (p.s_bound()) {
    // Partial SP index: subject-major probe; the O component is covered
    // when bound, P never is (post-filtered by ScanPattern).
    table = &sop_;
    range = sop_.EqualRange(Permutation::kSop, p.s,
                            p.o_bound() ? p.o : kInvalidId, kInvalidId);
  } else if (p.o_bound()) {
    // No object-major full index: fall back to a full scan of POS and
    // post-filter — the cost the partial-index scheme pays on bound-object
    // probes without a bound predicate.
    table = &pos_;
    range = RowRange{0, pos_.size()};
  } else {
    table = &pso_;
    range = RowRange{0, pso_.size()};
  }
  AccessPath path;
  path.estimated_rows = range.size();
  path.materialize = [table, range, p](ExecStats* stats, QueryContext* ctx) {
    AccountRangePages(range, stats);
    return ScanPattern(table->slice(range), p, stats, ctx);
  };
  return path;
}

Result<QueryResult> PartialIndexEngine::Execute(
    const SelectQuery& query) const {
  QueryContext ctx(timeout_millis_);
  return Execute(query, &ctx);
}

Result<QueryResult> PartialIndexEngine::Execute(const SelectQuery& query,
                                                QueryContext* ctx) const {
  AXON_SPAN("query.execute_partial_index");
  return EvaluateSparql(
      query, *dict_,
      [this](const IdPattern& p) { return MakeAccessPath(p); }, ctx);
}

uint64_t PartialIndexEngine::StorageBytes() const {
  return pso_.ByteSize() + pos_.ByteSize() + sop_.ByteSize();
}

}  // namespace axon
