// Structure-only generators for the remaining Table II datasets: BSBM,
// WordNet, EFO and DBLP. Table II reports only schema-census numbers
// (#properties, #CS, #ECS), so these generators reproduce each dataset's
// *schema regime* — BSBM's e-commerce star schema with few CSs, WordNet's
// highly variable lexical records (hundreds of CSs), EFO's ontology-class
// records with optional annotation subsets, DBLP's publication records —
// at laptop scale.

#ifndef AXON_DATAGEN_MISC_GENERATORS_H_
#define AXON_DATAGEN_MISC_GENERATORS_H_

#include "engine/query_engine.h"

namespace axon {

struct BsbmConfig {
  uint32_t num_products = 500;
  uint64_t seed = 21;
};
Dataset GenerateBsbmDataset(const BsbmConfig& config);

struct WordnetConfig {
  uint32_t num_synsets = 2000;
  uint64_t seed = 22;
};
Dataset GenerateWordnetDataset(const WordnetConfig& config);

struct EfoConfig {
  uint32_t num_classes = 1500;
  uint64_t seed = 23;
};
Dataset GenerateEfoDataset(const EfoConfig& config);

struct DblpConfig {
  uint32_t num_papers = 1000;
  uint64_t seed = 24;
};
Dataset GenerateDblpDataset(const DblpConfig& config);

}  // namespace axon

#endif  // AXON_DATAGEN_MISC_GENERATORS_H_
