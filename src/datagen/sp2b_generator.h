// SP²Bench-inspired publication-graph generator.
//
// Models the DBLP-style bibliographic world of the SP²Bench SPARQL
// benchmark (Schmidt et al., ICDE 2009) at laptop scale: journals and
// conference proceedings per year, articles and inproceedings with
// authors, titles, page counts and publication years, plus optional
// properties (abstracts, seeAlso links) that occur on only part of the
// population — exactly the shape OPTIONAL / !bound / FILTER-range /
// aggregation queries need to produce interesting answers. Years and page
// counts are xsd:integer literals so value-level FILTER comparisons and
// ORDER BY have something numeric to chew on.
//
// Generation is purely seed-deterministic: the same config always yields
// the same triple multiset, which the workloads test and the sp2b bench
// baselines rely on.

#ifndef AXON_DATAGEN_SP2B_GENERATOR_H_
#define AXON_DATAGEN_SP2B_GENERATOR_H_

#include "engine/query_engine.h"

namespace axon {

struct Sp2bConfig {
  uint32_t num_years = 5;            // consecutive years from first_year
  uint32_t first_year = 1990;
  uint32_t journals_per_year = 2;
  uint32_t articles_per_journal = 6;
  uint32_t proceedings_per_year = 2;
  uint32_t inproceedings_per_proc = 5;
  uint32_t num_persons = 40;
  uint64_t seed = 7;
};

/// Vocabulary namespaces (SP²Bench reuses DC/DCTERMS/FOAF/SWRC).
inline constexpr char kSp2bNs[] = "http://localhost/vocabulary/bench/";
inline constexpr char kDcNs[] = "http://purl.org/dc/elements/1.1/";
inline constexpr char kDcTermsNs[] = "http://purl.org/dc/terms/";
inline constexpr char kFoafNs[] = "http://xmlns.com/foaf/0.1/";
inline constexpr char kSwrcNs[] = "http://swrc.ontoware.org/ontology#";

/// Appends the generated triples to `dataset`.
void GenerateSp2b(const Sp2bConfig& config, Dataset* dataset);

/// Convenience: fresh dataset.
Dataset GenerateSp2bDataset(const Sp2bConfig& config);

}  // namespace axon

#endif  // AXON_DATAGEN_SP2B_GENERATOR_H_
