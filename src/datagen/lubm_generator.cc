#include "datagen/lubm_generator.h"

#include <map>
#include <string>
#include <vector>

#include "util/random.h"

namespace axon {

namespace {

constexpr char kRdfType[] = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

std::string Ub(const std::string& local) { return std::string(kUbNs) + local; }

// Emits rdf:type for the leaf class plus its full superclass closure
// (the paper's extension replacing inference).
const std::vector<std::string>& Closure(const std::string& leaf) {
  static const std::map<std::string, std::vector<std::string>> kClosure = {
      {"University", {"University", "Organization"}},
      {"Department", {"Department", "Organization"}},
      {"ResearchGroup", {"ResearchGroup", "Organization"}},
      {"FullProfessor",
       {"FullProfessor", "Professor", "Faculty", "Employee", "Person"}},
      {"AssociateProfessor",
       {"AssociateProfessor", "Professor", "Faculty", "Employee", "Person"}},
      {"AssistantProfessor",
       {"AssistantProfessor", "Professor", "Faculty", "Employee", "Person"}},
      {"Lecturer", {"Lecturer", "Faculty", "Employee", "Person"}},
      {"GraduateStudent", {"GraduateStudent", "Student", "Person"}},
      {"UndergraduateStudent", {"UndergraduateStudent", "Student", "Person"}},
      {"Course", {"Course", "Work"}},
      {"GraduateCourse", {"GraduateCourse", "Course", "Work"}},
      {"Publication", {"Publication", "Work"}},
  };
  return kClosure.at(leaf);
}

class LubmBuilder {
 public:
  LubmBuilder(const LubmConfig& config, Dataset* out)
      : config_(config), out_(out), rng_(config.seed) {}

  void Generate() {
    for (uint32_t u = 0; u < config_.num_universities; ++u) {
      GenerateUniversity(u);
    }
    // hasAlumnus: inverse of the degreeFrom edges, added by the paper's
    // extended generator.
    for (const auto& [univ, person] : alumni_) {
      Emit(univ, Ub("hasAlumnus"), Term::Iri(person));
    }
  }

 private:
  std::string UnivIri(uint32_t u) const {
    return "http://www.University" + std::to_string(u) + ".edu";
  }
  std::string DeptIri(uint32_t u, uint32_t d) const {
    return "http://www.Department" + std::to_string(d) + ".University" +
           std::to_string(u) + ".edu";
  }
  std::string Entity(const std::string& dept, const std::string& kind,
                     uint32_t i) const {
    return dept + "/" + kind + std::to_string(i);
  }

  void Emit(const std::string& s, const std::string& p, const Term& o) {
    out_->Add(TermTriple{Term::Iri(s), Term::Iri(p), o});
  }
  void EmitTypes(const std::string& s, const std::string& leaf) {
    for (const std::string& cls : Closure(leaf)) {
      Emit(s, kRdfType, Term::Iri(Ub(cls)));
    }
  }
  void EmitName(const std::string& s, const std::string& label) {
    Emit(s, Ub("name"), Term::Literal(label));
  }

  uint32_t RandomUniversity() {
    return static_cast<uint32_t>(rng_.Uniform(config_.num_universities));
  }

  void GenerateUniversity(uint32_t u) {
    std::string univ = UnivIri(u);
    EmitTypes(univ, "University");
    EmitName(univ, "University" + std::to_string(u));
    for (uint32_t d = 0; d < config_.depts_per_university; ++d) {
      GenerateDepartment(u, d);
    }
  }

  void GenerateDepartment(uint32_t u, uint32_t d) {
    std::string univ = UnivIri(u);
    std::string dept = DeptIri(u, d);
    EmitTypes(dept, "Department");
    EmitName(dept, "Department" + std::to_string(d));
    Emit(dept, Ub("subOrganizationOf"), Term::Iri(univ));

    // Courses first so teachers/students can reference them.
    std::vector<std::string> courses;
    std::vector<std::string> grad_courses;
    for (uint32_t i = 0; i < config_.courses_per_dept; ++i) {
      std::string c = Entity(dept, "Course", i);
      EmitTypes(c, "Course");
      EmitName(c, "Course" + std::to_string(i));
      courses.push_back(c);
    }
    for (uint32_t i = 0; i < config_.grad_courses_per_dept; ++i) {
      std::string c = Entity(dept, "GraduateCourse", i);
      EmitTypes(c, "GraduateCourse");
      EmitName(c, "GraduateCourse" + std::to_string(i));
      grad_courses.push_back(c);
    }

    // Faculty, cycling through the professor ranks; index 0 heads the
    // department.
    static const char* kRanks[] = {"FullProfessor", "AssociateProfessor",
                                   "AssistantProfessor", "Lecturer"};
    std::vector<std::string> faculty;
    for (uint32_t i = 0; i < config_.faculty_per_dept; ++i) {
      const char* rank = kRanks[i % 4];
      std::string f = Entity(dept, rank, i);
      EmitTypes(f, rank);
      EmitName(f, std::string(rank) + std::to_string(i));
      Emit(f, Ub("emailAddress"),
           Term::Literal(std::string(rank) + std::to_string(i) + "@" + dept));
      Emit(f, Ub("telephone"), Term::Literal("xxx-xxx-xxxx"));
      Emit(f, Ub("worksFor"), Term::Iri(dept));
      Emit(f, Ub("memberOf"), Term::Iri(dept));  // paper's extension
      Emit(f, Ub("researchInterest"),
           Term::Literal("Research" + std::to_string(rng_.Uniform(30))));
      // Degrees: from random universities; recorded for hasAlumnus.
      std::string ug_univ = UnivIri(RandomUniversity());
      std::string phd_univ = UnivIri(RandomUniversity());
      Emit(f, Ub("undergraduateDegreeFrom"), Term::Iri(ug_univ));
      Emit(f, Ub("doctoralDegreeFrom"), Term::Iri(phd_univ));
      alumni_.emplace_back(ug_univ, f);
      alumni_.emplace_back(phd_univ, f);
      // Teaching: one undergraduate course and (professors) one graduate.
      Emit(f, Ub("teacherOf"),
           Term::Iri(courses[rng_.Uniform(courses.size())]));
      if (i % 4 != 3 && !grad_courses.empty()) {
        Emit(f, Ub("teacherOf"),
             Term::Iri(grad_courses[rng_.Uniform(grad_courses.size())]));
      }
      faculty.push_back(f);
    }
    Emit(faculty[0], Ub("headOf"), Term::Iri(dept));

    // Graduate students.
    std::vector<std::string> grads;
    for (uint32_t i = 0; i < config_.grads_per_dept; ++i) {
      std::string s = Entity(dept, "GraduateStudent", i);
      EmitTypes(s, "GraduateStudent");
      EmitName(s, "GraduateStudent" + std::to_string(i));
      Emit(s, Ub("emailAddress"),
           Term::Literal("grad" + std::to_string(i) + "@" + dept));
      Emit(s, Ub("memberOf"), Term::Iri(dept));
      Emit(s, Ub("advisor"),
           Term::Iri(faculty[rng_.Uniform(faculty.size())]));
      std::string ug_univ = UnivIri(RandomUniversity());
      Emit(s, Ub("undergraduateDegreeFrom"), Term::Iri(ug_univ));
      alumni_.emplace_back(ug_univ, s);
      uint32_t n_courses = 1 + static_cast<uint32_t>(rng_.Uniform(3));
      for (uint32_t c = 0; c < n_courses && !grad_courses.empty(); ++c) {
        Emit(s, Ub("takesCourse"),
             Term::Iri(grad_courses[rng_.Uniform(grad_courses.size())]));
      }
      // Some grads assist a course.
      if (rng_.Bernoulli(0.3)) {
        Emit(s, Ub("teachingAssistantOf"),
             Term::Iri(courses[rng_.Uniform(courses.size())]));
      }
      grads.push_back(s);
    }

    // Undergraduates.
    for (uint32_t i = 0; i < config_.undergrads_per_dept; ++i) {
      std::string s = Entity(dept, "UndergraduateStudent", i);
      EmitTypes(s, "UndergraduateStudent");
      EmitName(s, "UndergraduateStudent" + std::to_string(i));
      Emit(s, Ub("emailAddress"),
           Term::Literal("ug" + std::to_string(i) + "@" + dept));
      Emit(s, Ub("memberOf"), Term::Iri(dept));
      uint32_t n_courses = 1 + static_cast<uint32_t>(rng_.Uniform(3));
      for (uint32_t c = 0; c < n_courses; ++c) {
        Emit(s, Ub("takesCourse"),
             Term::Iri(courses[rng_.Uniform(courses.size())]));
      }
      if (rng_.Bernoulli(0.2)) {
        Emit(s, Ub("advisor"),
             Term::Iri(faculty[rng_.Uniform(faculty.size())]));
      }
    }

    // Publications authored by faculty (and grad co-authors).
    for (uint32_t i = 0; i < config_.publications_per_dept; ++i) {
      std::string p = Entity(dept, "Publication", i);
      EmitTypes(p, "Publication");
      EmitName(p, "Publication" + std::to_string(i));
      Emit(p, Ub("publicationAuthor"),
           Term::Iri(faculty[rng_.Uniform(faculty.size())]));
      if (!grads.empty() && rng_.Bernoulli(0.6)) {
        Emit(p, Ub("publicationAuthor"),
             Term::Iri(grads[rng_.Uniform(grads.size())]));
      }
    }

    // Research groups.
    for (uint32_t i = 0; i < config_.research_groups_per_dept; ++i) {
      std::string g = Entity(dept, "ResearchGroup", i);
      EmitTypes(g, "ResearchGroup");
      Emit(g, Ub("subOrganizationOf"), Term::Iri(dept));
    }
  }

  const LubmConfig& config_;
  Dataset* out_;
  Random rng_;
  std::vector<std::pair<std::string, std::string>> alumni_;
};

}  // namespace

void GenerateLubm(const LubmConfig& config, Dataset* dataset) {
  LubmBuilder(config, dataset).Generate();
}

Dataset GenerateLubmDataset(const LubmConfig& config) {
  Dataset d;
  GenerateLubm(config, &d);
  return d;
}

}  // namespace axon
