#include "datagen/misc_generators.h"

#include <string>
#include <vector>

#include "util/random.h"

namespace axon {

namespace {

constexpr char kRdfType[] = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

void Emit(Dataset* out, const std::string& s, const std::string& p,
          const Term& o) {
  out->Add(TermTriple{Term::Iri(s), Term::Iri(p), o});
}

}  // namespace

Dataset GenerateBsbmDataset(const BsbmConfig& config) {
  // BSBM: products with vendors, offers and reviews — a regular e-commerce
  // schema, so the CS count stays small (44 in Table II) relative to the
  // property count (40).
  Dataset d;
  Random rng(config.seed);
  const std::string ns = "http://www4.wiwiss.fu-berlin.de/bizer/bsbm/v01/vocabulary/";
  const std::string inst = "http://bsbm.example.org/";

  std::vector<std::string> producers;
  for (uint32_t i = 0; i < std::max(1u, config.num_products / 25); ++i) {
    std::string p = inst + "producer/" + std::to_string(i);
    Emit(&d, p, kRdfType, Term::Iri(ns + "Producer"));
    Emit(&d, p, ns + "label", Term::Literal("Producer" + std::to_string(i)));
    Emit(&d, p, ns + "country", Term::Literal("DE"));
    producers.push_back(p);
  }
  std::vector<std::string> vendors;
  for (uint32_t i = 0; i < std::max(1u, config.num_products / 40); ++i) {
    std::string v = inst + "vendor/" + std::to_string(i);
    Emit(&d, v, kRdfType, Term::Iri(ns + "Vendor"));
    Emit(&d, v, ns + "label", Term::Literal("Vendor" + std::to_string(i)));
    Emit(&d, v, ns + "homepage", Term::Literal("http://vendor" + std::to_string(i)));
    vendors.push_back(v);
  }
  std::vector<std::string> reviewers;
  for (uint32_t i = 0; i < std::max(1u, config.num_products / 10); ++i) {
    std::string r = inst + "reviewer/" + std::to_string(i);
    Emit(&d, r, kRdfType, Term::Iri(ns + "Person"));
    Emit(&d, r, ns + "name", Term::Literal("Reviewer" + std::to_string(i)));
    if (rng.Bernoulli(0.5)) {
      Emit(&d, r, ns + "mbox", Term::Literal("r" + std::to_string(i) + "@x"));
    }
    reviewers.push_back(r);
  }
  for (uint32_t i = 0; i < config.num_products; ++i) {
    std::string p = inst + "product/" + std::to_string(i);
    Emit(&d, p, kRdfType, Term::Iri(ns + "Product"));
    Emit(&d, p, ns + "label", Term::Literal("Product" + std::to_string(i)));
    Emit(&d, p, ns + "producer",
         Term::Iri(producers[rng.Uniform(producers.size())]));
    for (uint32_t f = 0; f < 3; ++f) {
      Emit(&d, p, ns + "productFeature" + std::to_string(1 + rng.Uniform(5)),
           Term::Literal("feature"));
    }
    if (rng.Bernoulli(0.6)) {
      Emit(&d, p, ns + "productPropertyNumeric1",
           Term::Literal(std::to_string(rng.Uniform(1000))));
    }
    // Offers: vendor sells product.
    uint32_t n_offers = static_cast<uint32_t>(rng.Uniform(3));
    for (uint32_t o = 0; o < n_offers; ++o) {
      std::string off = inst + "offer/" + std::to_string(i) + "_" + std::to_string(o);
      Emit(&d, off, kRdfType, Term::Iri(ns + "Offer"));
      Emit(&d, off, ns + "product", Term::Iri(p));
      Emit(&d, off, ns + "vendor",
           Term::Iri(vendors[rng.Uniform(vendors.size())]));
      Emit(&d, off, ns + "price",
           Term::Literal(std::to_string(rng.Uniform(500))));
    }
    // Reviews.
    uint32_t n_reviews = static_cast<uint32_t>(rng.Uniform(3));
    for (uint32_t r = 0; r < n_reviews; ++r) {
      std::string rev = inst + "review/" + std::to_string(i) + "_" + std::to_string(r);
      Emit(&d, rev, kRdfType, Term::Iri(ns + "Review"));
      Emit(&d, rev, ns + "reviewFor", Term::Iri(p));
      Emit(&d, rev, ns + "reviewer",
           Term::Iri(reviewers[rng.Uniform(reviewers.size())]));
      Emit(&d, rev, ns + "rating1",
           Term::Literal(std::to_string(1 + rng.Uniform(10))));
      if (rng.Bernoulli(0.4)) {
        Emit(&d, rev, ns + "rating2",
             Term::Literal(std::to_string(1 + rng.Uniform(10))));
      }
    }
  }
  return d;
}

Dataset GenerateWordnetDataset(const WordnetConfig& config) {
  // WordNet: synsets with highly variable lexical relations — many CSs
  // (779 in Table II) from a moderate property count (64). Variability
  // comes from each synset drawing a random subset of semantic relations.
  Dataset d;
  Random rng(config.seed);
  const std::string ns = "http://wordnet-rdf.princeton.edu/ontology#";
  const std::string inst = "http://wordnet-rdf.princeton.edu/id/";

  std::vector<std::string> synsets;
  synsets.reserve(config.num_synsets);
  for (uint32_t i = 0; i < config.num_synsets; ++i) {
    synsets.push_back(inst + std::to_string(100000 + i));
  }
  static const char* kPos[] = {"NounSynset", "VerbSynset", "AdjectiveSynset",
                               "AdverbSynset"};
  static const char* kRelations[] = {
      "hyponym",   "hypernym",   "meronym",      "holonym",
      "antonym",   "entailment", "causes",       "attribute",
      "similarTo", "seeAlso",    "derivation",   "pertainsTo",
      "domain",    "memberOf",   "instanceOf",   "participleOf",
  };
  for (uint32_t i = 0; i < config.num_synsets; ++i) {
    const std::string& s = synsets[i];
    Emit(&d, s, kRdfType, Term::Iri(ns + kPos[rng.Uniform(4)]));
    Emit(&d, s, ns + "label", Term::Literal("synset" + std::to_string(i)));
    if (rng.Bernoulli(0.8)) {
      Emit(&d, s, ns + "gloss", Term::Literal("definition " + std::to_string(i)));
    }
    if (rng.Bernoulli(0.3)) {
      Emit(&d, s, ns + "lexicalForm", Term::Literal("word" + std::to_string(i)));
    }
    // Random relation subset: 1-5 relations to random synsets.
    uint32_t n = 1 + static_cast<uint32_t>(rng.Uniform(5));
    for (uint32_t k = 0; k < n; ++k) {
      const char* rel = kRelations[rng.Uniform(16)];
      Emit(&d, s, ns + rel,
           Term::Iri(synsets[rng.Uniform(synsets.size())]));
    }
  }
  return d;
}

Dataset GenerateEfoDataset(const EfoConfig& config) {
  // EFO (Experimental Factor Ontology): class records with optional
  // annotation subsets (520 CS from 80 properties in Table II) and
  // subClassOf chains.
  Dataset d;
  Random rng(config.seed);
  const std::string ns = "http://www.ebi.ac.uk/efo/";
  const std::string obo = "http://purl.obolibrary.org/obo/";
  const std::string owl = "http://www.w3.org/2002/07/owl#";
  const std::string rdfs = "http://www.w3.org/2000/01/rdf-schema#";

  std::vector<std::string> classes;
  classes.reserve(config.num_classes);
  for (uint32_t i = 0; i < config.num_classes; ++i) {
    classes.push_back(ns + "EFO_" + std::to_string(1000000 + i));
  }
  static const char* kAnnotations[] = {
      "definition",         "alternative_term", "bioportal_provenance",
      "database_cross_reference", "gwas_trait", "creator",
      "definition_citation", "example_of_usage", "organizational_class",
      "reason_for_obsolescence",
  };
  for (uint32_t i = 0; i < config.num_classes; ++i) {
    const std::string& c = classes[i];
    Emit(&d, c, kRdfType, Term::Iri(owl + "Class"));
    Emit(&d, c, rdfs + "label", Term::Literal("term" + std::to_string(i)));
    if (i > 0) {
      // subClassOf to an earlier class: an acyclic ontology DAG with long
      // root-ward chains.
      Emit(&d, c, rdfs + "subClassOf",
           Term::Iri(classes[rng.Skewed(i)]));
      if (rng.Bernoulli(0.2)) {
        Emit(&d, c, rdfs + "subClassOf", Term::Iri(classes[rng.Skewed(i)]));
      }
    }
    for (const char* ann : kAnnotations) {
      if (rng.Bernoulli(0.35)) {
        Emit(&d, c, obo + ann,
             Term::Literal(std::string(ann) + std::to_string(i)));
      }
    }
  }
  return d;
}

Dataset GenerateDblpDataset(const DblpConfig& config) {
  // DBLP: bibliographic records — regular schema, modest CS count (95)
  // from 26 properties; chains via cite and author edges.
  Dataset d;
  Random rng(config.seed);
  const std::string dc = "http://purl.org/dc/elements/1.1/";
  const std::string ns = "https://dblp.org/rdf/schema#";
  const std::string inst = "https://dblp.org/rec/";

  uint32_t num_authors = std::max(2u, config.num_papers / 2);
  std::vector<std::string> authors;
  for (uint32_t i = 0; i < num_authors; ++i) {
    std::string a = "https://dblp.org/pid/" + std::to_string(i);
    Emit(&d, a, kRdfType, Term::Iri(ns + "Person"));
    Emit(&d, a, ns + "primaryCreatorName",
         Term::Literal("Author " + std::to_string(i)));
    if (rng.Bernoulli(0.4)) {
      Emit(&d, a, ns + "orcid", Term::Literal("0000-" + std::to_string(i)));
    }
    authors.push_back(a);
  }
  std::vector<std::string> venues;
  for (uint32_t i = 0; i < std::max(1u, config.num_papers / 50); ++i) {
    std::string v = "https://dblp.org/venues/" + std::to_string(i);
    Emit(&d, v, kRdfType, Term::Iri(ns + "Venue"));
    Emit(&d, v, ns + "label", Term::Literal("Venue" + std::to_string(i)));
    venues.push_back(v);
  }
  std::vector<std::string> papers;
  papers.reserve(config.num_papers);
  for (uint32_t i = 0; i < config.num_papers; ++i) {
    std::string p = inst + std::to_string(i);
    bool journal = rng.Bernoulli(0.4);
    Emit(&d, p, kRdfType, Term::Iri(ns + (journal ? "Article" : "Inproceedings")));
    Emit(&d, p, dc + "title", Term::Literal("Paper " + std::to_string(i)));
    Emit(&d, p, ns + "yearOfPublication",
         Term::Literal(std::to_string(1990 + rng.Uniform(35))));
    Emit(&d, p, ns + "publishedIn",
         Term::Iri(venues[rng.Uniform(venues.size())]));
    uint32_t n_auth = 1 + static_cast<uint32_t>(rng.Uniform(4));
    for (uint32_t k = 0; k < n_auth; ++k) {
      Emit(&d, p, dc + "creator",
           Term::Iri(authors[rng.Uniform(authors.size())]));
    }
    if (rng.Bernoulli(0.5)) {
      Emit(&d, p, ns + "pagination", Term::Literal("1-12"));
    }
    // Citations to earlier papers: chain structure.
    if (!papers.empty()) {
      uint32_t n_cites = static_cast<uint32_t>(rng.Uniform(4));
      for (uint32_t k = 0; k < n_cites; ++k) {
        Emit(&d, p, ns + "cite",
             Term::Iri(papers[rng.Skewed(papers.size())]));
      }
    }
    papers.push_back(p);
  }
  return d;
}

}  // namespace axon
