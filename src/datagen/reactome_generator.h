// Reactome-like synthetic data generator.
//
// Substitute for the EBI Reactome RDF dump (~16 M triples) used in the
// paper's real-world experiments. The paper selects Reactome because it
// "contains information about biological pathways, and is rich in long
// paths with branching components" — precisely the structure this generator
// reproduces: pathway → (hasEvent) → reaction → (input/output) → physical
// entity → (referenceEntity) → reference molecule chains, preceding-event
// chains between reactions, catalyst branches, and literal annotation stars
// on every node. Triple counts scale with num_pathways; the schema yields a
// CS/ECS census in the same regime as the paper's Table II row for Reactome
// (112 CS / 346 ECS at full size).

#ifndef AXON_DATAGEN_REACTOME_GENERATOR_H_
#define AXON_DATAGEN_REACTOME_GENERATOR_H_

#include "engine/query_engine.h"

namespace axon {

struct ReactomeConfig {
  uint32_t num_pathways = 40;
  uint32_t reactions_per_pathway = 8;   // mean; forms the hasEvent fan-out
  uint32_t entities_per_reaction = 3;   // inputs+outputs
  uint32_t sub_pathway_depth = 3;       // pathway containment chain length
  uint64_t seed = 7;
};

inline constexpr char kBiopaxNs[] = "http://www.biopax.org/release/biopax-level3.owl#";
inline constexpr char kReactomeNs[] = "http://identifiers.org/reactome/";

void GenerateReactome(const ReactomeConfig& config, Dataset* dataset);
Dataset GenerateReactomeDataset(const ReactomeConfig& config);

}  // namespace axon

#endif  // AXON_DATAGEN_REACTOME_GENERATOR_H_
