#include "datagen/geonames_generator.h"

#include <string>
#include <vector>

#include "util/hash.h"
#include "util/random.h"

namespace axon {

namespace {

constexpr char kRdfType[] = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

class GeonamesBuilder {
 public:
  GeonamesBuilder(const GeonamesConfig& config, Dataset* out)
      : config_(config), out_(out), rng_(config.seed) {}

  void Generate() {
    // Features are organized into an administrative containment hierarchy:
    // level 0 = countries, deeper levels = admin divisions and places.
    // parentFeature edges between levels create the object-subject chains.
    uint32_t depth = std::max(1u, config_.hierarchy_depth);
    std::vector<std::vector<std::string>> levels(depth);
    uint32_t remaining = config_.num_features;
    // Geometric level sizing: each level ~4x the previous.
    uint32_t level_size = std::max(1u, remaining / (1u << (depth + 1)));
    for (uint32_t lvl = 0; lvl < depth; ++lvl) {
      uint32_t count = lvl + 1 == depth
                           ? remaining
                           : std::min(remaining, std::max(1u, level_size));
      remaining -= count;
      for (uint32_t i = 0; i < count; ++i) {
        std::string f = MakeFeature(lvl, levels);
        levels[lvl].push_back(f);
      }
      level_size *= 4;
      if (remaining == 0) break;
    }
  }

 private:
  std::string Geo(const std::string& local) {
    return std::string(kGeoNs) + local;
  }
  void Emit(const std::string& s, const std::string& p, const Term& o) {
    out_->Add(TermTriple{Term::Iri(s), Term::Iri(p), o});
  }

  std::string MakeFeature(uint32_t lvl,
                          const std::vector<std::vector<std::string>>& levels) {
    uint64_t i = next_id_++;
    std::string f = "http://sws.geonames.org/" + std::to_string(i) + "/";
    Emit(f, kRdfType, Term::Iri(Geo("Feature")));
    Emit(f, Geo("name"), Term::Literal("Feature" + std::to_string(i)));
    static const char* kClasses[] = {"A", "P", "H", "T", "S", "L", "V"};
    Emit(f, Geo("featureClass"),
         Term::Iri(Geo(kClasses[rng_.Uniform(7)])));

    // Optional properties, drawn as per-feature *profiles*: real Geonames
    // features cluster by how richly they are curated, so the CS census is
    // large (Table II: 851 CS) but each CS still covers many features.
    // A profile is a base subset of the optional properties; a small
    // mutation step flips one extra property so the long tail of rare CSs
    // exists too.
    static const char* kOptional[] = {
        "alternateName", "population",   "elevation",      "countryCode",
        "postalCode",    "wikipediaArticle", "lat",        "long",
        "featureCode",   "shortName",    "officialName",   "colloquialName",
    };
    constexpr int kNumOptional = 12;
    constexpr int kNumProfiles = 24;
    // Deterministic pseudo-random profile masks derived from the profile
    // index (stable across runs and seeds). Skewed pick: a few profiles
    // dominate, the rest form the long tail.
    uint32_t profile = static_cast<uint32_t>(rng_.Skewed(kNumProfiles));
    uint32_t mask = static_cast<uint32_t>(Mix64(profile * 2654435761u)) &
                    ((1u << kNumOptional) - 1);
    if (rng_.Bernoulli(0.05)) {
      mask ^= 1u << rng_.Uniform(kNumOptional);  // rare-CS tail
    }
    for (int b = 0; b < kNumOptional; ++b) {
      if (mask & (1u << b)) {
        Emit(f, Geo(kOptional[b]),
             Term::Literal(std::string(kOptional[b]) + std::to_string(i)));
      }
    }

    // Chain edges into the previous hierarchy level (parentFeature /
    // parentADM) and lateral nearby/neighbour links. Link-property
    // presence follows the profile as well, so CS variety stays bounded
    // while the realized (CS, CS) pairs — the ECS census — combine freely
    // across profile pairs (Table II: #ECS is ~14x #CS for Geonames).
    if (lvl > 0 && !levels[lvl - 1].empty()) {
      const auto& parents = levels[lvl - 1];
      Emit(f, Geo("parentFeature"),
           Term::Iri(parents[rng_.Uniform(parents.size())]));
      if (profile % 4 == 0) {
        Emit(f, Geo("parentADM" + std::to_string(lvl)),
             Term::Iri(parents[rng_.Uniform(parents.size())]));
      }
    }
    if (lvl > 0 && !levels[lvl].empty() && rng_.Bernoulli(0.4)) {
      const auto& sibs = levels[lvl];
      Emit(f, Geo(profile % 2 == 0 ? "nearby" : "neighbour"),
           Term::Iri(sibs[rng_.Uniform(sibs.size())]));
    }
    return f;
  }

  const GeonamesConfig& config_;
  Dataset* out_;
  Random rng_;
  uint64_t next_id_ = 0;
};

}  // namespace

void GenerateGeonames(const GeonamesConfig& config, Dataset* dataset) {
  GeonamesBuilder(config, dataset).Generate();
}

Dataset GenerateGeonamesDataset(const GeonamesConfig& config) {
  Dataset d;
  GenerateGeonames(config, &d);
  return d;
}

}  // namespace axon
