// Geonames-like synthetic data generator.
//
// Substitute for the geonames.org RDF dump (~172 M triples). The paper
// picks Geonames as the adversarial case for ECS indexing: "a diverse
// schema of varying properties among the same types of entities", i.e. a
// very large number of distinct CSs (851) and ECSs (12136), which
// fragments the ECS partitioning and erodes axonDB's advantage (Fig. 6d).
// This generator reproduces that property: every feature draws a random
// subset of optional properties, and parentFeature/nearby edges create
// chains between features of many different CSs.

#ifndef AXON_DATAGEN_GEONAMES_GENERATOR_H_
#define AXON_DATAGEN_GEONAMES_GENERATOR_H_

#include "engine/query_engine.h"

namespace axon {

struct GeonamesConfig {
  uint32_t num_features = 4000;
  /// Administrative hierarchy depth (country -> admin1 -> ... -> place).
  uint32_t hierarchy_depth = 5;
  uint64_t seed = 13;
};

inline constexpr char kGeoNs[] = "http://www.geonames.org/ontology#";

void GenerateGeonames(const GeonamesConfig& config, Dataset* dataset);
Dataset GenerateGeonamesDataset(const GeonamesConfig& config);

}  // namespace axon

#endif  // AXON_DATAGEN_GEONAMES_GENERATOR_H_
