// LUBM-like synthetic data generator.
//
// Stands in for the Lehigh University Benchmark generator used by the
// paper's synthetic experiments. It emits the LUBM academic ontology
// (universities, departments, faculty, students, courses, publications)
// with the paper's extensions pre-materialized: the transitive closure of
// subclass relationships as extra rdf:type triples, plus the memberOf and
// hasAlumnus properties (Sec. V.A — the paper extends the generator this
// way because axonDB does not do inferencing).
//
// Entity counts per department are configurable and default to a scaled-
// down LUBM profile (~3-4 k triples per university) so that the benchmark
// sweeps run at laptop scale; the schema — hence the CS/ECS structure —
// matches full-size LUBM (Table II reports only 14 CS / 68 ECS regardless
// of scale).

#ifndef AXON_DATAGEN_LUBM_GENERATOR_H_
#define AXON_DATAGEN_LUBM_GENERATOR_H_

#include "engine/query_engine.h"

namespace axon {

struct LubmConfig {
  uint32_t num_universities = 1;
  uint32_t depts_per_university = 12;
  uint32_t faculty_per_dept = 5;       // split across professor ranks
  uint32_t courses_per_dept = 8;
  uint32_t grad_courses_per_dept = 4;
  uint32_t undergrads_per_dept = 20;
  uint32_t grads_per_dept = 8;
  uint32_t publications_per_dept = 10;
  uint32_t research_groups_per_dept = 2;
  uint64_t seed = 42;
};

/// The LUBM vocabulary namespace used by generator and workloads.
inline constexpr char kUbNs[] =
    "http://swat.cse.lehigh.edu/onto/univ-bench.owl#";

/// Appends the generated triples (dictionary-encoded) to `dataset`.
void GenerateLubm(const LubmConfig& config, Dataset* dataset);

/// Convenience: fresh dataset.
Dataset GenerateLubmDataset(const LubmConfig& config);

}  // namespace axon

#endif  // AXON_DATAGEN_LUBM_GENERATOR_H_
