#include "datagen/reactome_generator.h"

#include <string>
#include <vector>

#include "util/random.h"

namespace axon {

namespace {

constexpr char kRdfType[] = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

class ReactomeBuilder {
 public:
  ReactomeBuilder(const ReactomeConfig& config, Dataset* out)
      : config_(config), out_(out), rng_(config.seed) {}

  void Generate() {
    MakeCompartments();
    for (uint32_t p = 0; p < config_.num_pathways; ++p) GeneratePathway(p);
  }

 private:
  std::string Bp(const std::string& local) {
    return std::string(kBiopaxNs) + local;
  }
  std::string Node(const std::string& kind, uint64_t i) {
    return std::string(kReactomeNs) + kind + "/" + std::to_string(i);
  }
  void Emit(const std::string& s, const std::string& p, const Term& o) {
    out_->Add(TermTriple{Term::Iri(s), Term::Iri(p), o});
  }
  void Annotate(const std::string& s, const std::string& kind, uint64_t i) {
    Emit(s, Bp("displayName"),
         Term::Literal(kind + " " + std::to_string(i)));
    Emit(s, Bp("stId"), Term::Literal("R-HSA-" + std::to_string(10000 + i)));
    // Optional curation annotations. Real Reactome records cluster into a
    // handful of curation *profiles* (which subset of annotations a record
    // carries) rather than drawing properties independently — that keeps
    // the CS census moderate (Table II: 112 CS from 65 properties) with
    // partitions of useful size. Profile 0 (bare) is the most common.
    static const char* kAnnotations[] = {"comment", "dataSource",
                                         "evidenceCode", "availability"};
    static const uint8_t kProfiles[] = {0b0000, 0b0001, 0b0011,
                                        0b0111, 0b1111, 0b0101};
    uint8_t mask = kProfiles[rng_.Skewed(6)];
    for (int b = 0; b < 4; ++b) {
      if (mask & (1 << b)) {
        Emit(s, Bp(kAnnotations[b]),
             Term::Literal(std::string(kAnnotations[b]) + std::to_string(i)));
      }
    }
  }

  void MakeCompartments() {
    static const char* kNames[] = {"cytosol", "nucleus", "membrane",
                                   "extracellular", "mitochondrion"};
    for (uint32_t i = 0; i < 5; ++i) {
      std::string c = Node("compartment", i);
      Emit(c, kRdfType, Term::Iri(Bp("CellularLocation")));
      Emit(c, Bp("displayName"), Term::Literal(kNames[i]));
      compartments_.push_back(c);
    }
  }

  // A physical entity with a reference chain; entities are pooled and
  // reused across reactions so reaction chains interconnect.
  std::string MakeEntity() {
    if (!entities_.empty() && rng_.Bernoulli(0.4)) {
      return entities_[rng_.Uniform(entities_.size())];
    }
    uint64_t i = next_entity_++;
    static const char* kKinds[] = {"Protein", "Complex", "SmallMolecule"};
    const char* kind = kKinds[rng_.Uniform(3)];
    std::string e = Node("entity", i);
    Emit(e, kRdfType, Term::Iri(Bp(kind)));
    Annotate(e, kind, i);
    if (rng_.Bernoulli(0.7)) {
      Emit(e, Bp("cellularLocation"),
           Term::Iri(compartments_[rng_.Uniform(compartments_.size())]));
    }
    // Reference chain: entity -> reference molecule -> cross reference.
    if (std::string(kind) != "Complex") {
      uint64_t r = next_ref_++;
      std::string ref = Node("reference", r);
      Emit(e, Bp("entityReference"), Term::Iri(ref));
      Emit(ref, kRdfType, Term::Iri(Bp("EntityReference")));
      Emit(ref, Bp("displayName"),
           Term::Literal("UniProt:" + std::to_string(r)));
      if (rng_.Bernoulli(0.5)) {
        std::string xref = Node("xref", r);
        Emit(ref, Bp("xref"), Term::Iri(xref));
        Emit(xref, kRdfType, Term::Iri(Bp("UnificationXref")));
        Emit(xref, Bp("db"), Term::Literal("UniProt"));
        Emit(xref, Bp("id"), Term::Literal("P" + std::to_string(r)));
      }
    } else if (!entities_.empty()) {
      // Complexes branch into components.
      uint32_t n = 1 + static_cast<uint32_t>(rng_.Uniform(3));
      for (uint32_t c = 0; c < n; ++c) {
        Emit(e, Bp("component"),
             Term::Iri(entities_[rng_.Uniform(entities_.size())]));
      }
    }
    entities_.push_back(e);
    return e;
  }

  std::string MakeReaction(uint64_t i) {
    std::string r = Node("reaction", i);
    Emit(r, kRdfType, Term::Iri(Bp("BiochemicalReaction")));
    Annotate(r, "Reaction", i);
    if (rng_.Bernoulli(0.3)) {
      Emit(r, Bp("spontaneous"), Term::Literal("false"));
    }
    uint32_t n = std::max<uint32_t>(1, config_.entities_per_reaction);
    for (uint32_t k = 0; k < n; ++k) {
      Emit(r, k % 2 == 0 ? Bp("left") : Bp("right"),
           Term::Iri(MakeEntity()));
    }
    // Catalyst branch.
    if (rng_.Bernoulli(0.5)) {
      uint64_t c = next_catalysis_++;
      std::string cat = Node("catalysis", c);
      Emit(cat, kRdfType, Term::Iri(Bp("Catalysis")));
      Emit(cat, Bp("controller"), Term::Iri(MakeEntity()));
      Emit(cat, Bp("controlled"), Term::Iri(r));
      Emit(cat, Bp("controlType"), Term::Literal("ACTIVATION"));
    }
    return r;
  }

  void GeneratePathway(uint32_t p) {
    // Containment chain: top pathway -> sub-pathway -> ... (long paths).
    std::string parent;
    for (uint32_t depth = 0; depth < std::max(1u, config_.sub_pathway_depth);
         ++depth) {
      uint64_t i = next_pathway_++;
      std::string pw = Node("pathway", i);
      Emit(pw, kRdfType, Term::Iri(Bp("Pathway")));
      Annotate(pw, "Pathway", i);
      Emit(pw, Bp("organism"), Term::Literal("Homo sapiens"));
      if (!parent.empty()) {
        Emit(parent, Bp("pathwayComponent"), Term::Iri(pw));
      }
      parent = pw;
    }
    // Reactions under the innermost sub-pathway with preceding-event
    // chains between consecutive reactions.
    std::string prev;
    uint32_t n = std::max<uint32_t>(1, config_.reactions_per_pathway);
    (void)p;
    for (uint32_t k = 0; k < n; ++k) {
      std::string r = MakeReaction(next_reaction_++);
      Emit(parent, Bp("pathwayComponent"), Term::Iri(r));
      if (!prev.empty()) {
        Emit(r, Bp("precedingEvent"), Term::Iri(prev));
      }
      prev = r;
    }
  }

  const ReactomeConfig& config_;
  Dataset* out_;
  Random rng_;
  std::vector<std::string> compartments_;
  std::vector<std::string> entities_;
  uint64_t next_entity_ = 0;
  uint64_t next_ref_ = 0;
  uint64_t next_catalysis_ = 0;
  uint64_t next_pathway_ = 0;
  uint64_t next_reaction_ = 0;
};

}  // namespace

void GenerateReactome(const ReactomeConfig& config, Dataset* dataset) {
  ReactomeBuilder(config, dataset).Generate();
}

Dataset GenerateReactomeDataset(const ReactomeConfig& config) {
  Dataset d;
  GenerateReactome(config, &d);
  return d;
}

}  // namespace axon
