#include "datagen/sp2b_generator.h"

#include <set>
#include <string>
#include <vector>

#include "util/random.h"

namespace axon {

namespace {

constexpr char kRdfType[] = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
constexpr char kRdfsSeeAlso[] =
    "http://www.w3.org/2000/01/rdf-schema#seeAlso";
constexpr char kXsdInteger[] = "http://www.w3.org/2001/XMLSchema#integer";

std::string Bench(const std::string& local) {
  return std::string(kSp2bNs) + local;
}
std::string Dc(const std::string& local) { return std::string(kDcNs) + local; }
std::string DcTerms(const std::string& local) {
  return std::string(kDcTermsNs) + local;
}
std::string Foaf(const std::string& local) {
  return std::string(kFoafNs) + local;
}
std::string Swrc(const std::string& local) {
  return std::string(kSwrcNs) + local;
}

Term IntLiteral(uint32_t v) {
  return Term::Literal(std::to_string(v), kXsdInteger);
}

class Sp2bBuilder {
 public:
  Sp2bBuilder(const Sp2bConfig& config, Dataset* out)
      : config_(config), out_(out), rng_(config.seed) {}

  void Generate() {
    GeneratePersons();
    for (uint32_t y = 0; y < config_.num_years; ++y) {
      GenerateYear(config_.first_year + y);
    }
  }

 private:
  void Emit(const std::string& s, const std::string& p, const Term& o) {
    out_->Add(TermTriple{Term::Iri(s), Term::Iri(p), o});
  }

  std::string RandomPerson() {
    return persons_[rng_.Uniform(persons_.size())];
  }

  void GeneratePersons() {
    persons_.reserve(config_.num_persons);
    for (uint32_t i = 0; i < config_.num_persons; ++i) {
      std::string p = "http://localhost/persons/Person" + std::to_string(i);
      Emit(p, kRdfType, Term::Iri(Foaf("Person")));
      Emit(p, Foaf("name"), Term::Literal("Person" + std::to_string(i)));
      persons_.push_back(std::move(p));
    }
  }

  // One publication with the properties common to articles and
  // inproceedings; optional properties (abstract, seeAlso) hit only part
  // of the population so OPTIONAL/!bound queries split it.
  void EmitPublicationCore(const std::string& pub, const std::string& kind,
                           uint32_t year, uint32_t index) {
    Emit(pub, kRdfType, Term::Iri(Bench(kind)));
    Emit(pub, Dc("title"),
         Term::Literal(kind + std::to_string(year) + "-" +
                       std::to_string(index)));
    Emit(pub, DcTerms("issued"), IntLiteral(year));
    Emit(pub, Swrc("pages"),
         IntLiteral(1 + static_cast<uint32_t>(rng_.Uniform(50))));
    uint32_t n_authors = 1 + static_cast<uint32_t>(rng_.Uniform(3));
    std::set<std::string> authors;
    while (authors.size() < n_authors && authors.size() < persons_.size()) {
      authors.insert(RandomPerson());
    }
    for (const std::string& a : authors) {
      Emit(pub, Dc("creator"), Term::Iri(a));
    }
    if (rng_.Bernoulli(0.4)) {
      Emit(pub, Bench("abstract"),
           Term::Literal("Abstract of " + pub));
    }
    if (rng_.Bernoulli(0.25)) {
      Emit(pub, kRdfsSeeAlso,
           Term::Iri("http://dblp.uni-trier.de/rec/" + std::to_string(year) +
                     "/" + std::to_string(index)));
    }
  }

  void GenerateYear(uint32_t year) {
    for (uint32_t j = 0; j < config_.journals_per_year; ++j) {
      std::string journal = "http://localhost/publications/journals/Journal" +
                            std::to_string(year) + "-" + std::to_string(j);
      Emit(journal, kRdfType, Term::Iri(Bench("Journal")));
      Emit(journal, Dc("title"),
           Term::Literal("Journal " + std::to_string(j) + " (" +
                         std::to_string(year) + ")"));
      Emit(journal, DcTerms("issued"), IntLiteral(year));
      for (uint32_t a = 0; a < config_.articles_per_journal; ++a) {
        std::string article =
            "http://localhost/publications/articles/Article" +
            std::to_string(year) + "-" + std::to_string(j) + "-" +
            std::to_string(a);
        EmitPublicationCore(article, "Article",
                            year, j * config_.articles_per_journal + a);
        Emit(article, Swrc("journal"), Term::Iri(journal));
      }
    }
    for (uint32_t p = 0; p < config_.proceedings_per_year; ++p) {
      std::string proc =
          "http://localhost/publications/procs/Proceedings" +
          std::to_string(year) + "-" + std::to_string(p);
      Emit(proc, kRdfType, Term::Iri(Bench("Proceedings")));
      Emit(proc, Dc("title"),
           Term::Literal("Proceedings " + std::to_string(p) + " (" +
                         std::to_string(year) + ")"));
      Emit(proc, DcTerms("issued"), IntLiteral(year));
      Emit(proc, Swrc("editor"), Term::Iri(RandomPerson()));
      for (uint32_t i = 0; i < config_.inproceedings_per_proc; ++i) {
        std::string inproc =
            "http://localhost/publications/inprocs/Inproceeding" +
            std::to_string(year) + "-" + std::to_string(p) + "-" +
            std::to_string(i);
        EmitPublicationCore(inproc, "Inproceedings", year,
                            p * config_.inproceedings_per_proc + i);
        Emit(inproc, Swrc("booktitle"), Term::Iri(proc));
      }
    }
  }

  const Sp2bConfig& config_;
  Dataset* out_;
  Random rng_;
  std::vector<std::string> persons_;
};

}  // namespace

void GenerateSp2b(const Sp2bConfig& config, Dataset* dataset) {
  Sp2bBuilder(config, dataset).Generate();
}

Dataset GenerateSp2bDataset(const Sp2bConfig& config) {
  Dataset d;
  GenerateSp2b(config, &d);
  return d;
}

}  // namespace axon
