// Thin POSIX TCP wrappers — the only place the server touches socket
// syscalls, so every byte in or out of the process passes a failpoint
// site: `sock.accept` (err/delay), `sock.read` and `sock.write`
// (err/short/delay/bitflip) and `sock.close` (err/delay). The chaos soak
// (tools/chaos_run --server) arms these to prove the event loop survives
// transient syscall failures, truncated transfers and corrupted bytes
// without crashing or leaking connections.
//
// All fds are nonblocking; Read/Write report would-block explicitly so
// the readiness loop never stalls on a slow peer.

#ifndef AXON_SERVER_SOCKET_H_
#define AXON_SERVER_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace axon {
namespace net {

/// Outcome of one nonblocking read/write attempt.
struct IoResult {
  enum class Kind { kOk, kWouldBlock, kEof, kError };
  Kind kind = Kind::kOk;
  size_t bytes = 0;  // transferred (kOk only)
};

/// Creates a nonblocking listener bound to host:port (port 0 = ephemeral)
/// with SO_REUSEADDR. Returns the listening fd.
Result<int> ListenTcp(const std::string& host, uint16_t port, int backlog);

/// Accepts one pending connection as a nonblocking fd. kWouldBlock-like
/// outcomes return -1 with an OK status; real failures return a Status.
/// `send_buffer_bytes` > 0 shrinks SO_SNDBUF (tests force backpressure).
Result<int> AcceptConn(int listen_fd, int send_buffer_bytes);

/// Nonblocking read of up to `cap` bytes into `buf`.
IoResult ReadSome(int fd, char* buf, size_t cap);

/// Nonblocking write of up to `len` bytes from `buf`; short writes are
/// normal (kOk with bytes < len).
IoResult WriteSome(int fd, const char* buf, size_t len);

/// close(2); errors are swallowed (the fd is gone either way).
void CloseFd(int fd);

/// The port a bound socket actually listens on (for port 0 binds).
Result<uint16_t> LocalPort(int fd);

/// Client-side helper for tests/tools: blocking connect to host:port,
/// returns a *blocking* fd (client code reads/writes directly).
Result<int> ConnectTcp(const std::string& host, uint16_t port);

}  // namespace net
}  // namespace axon

#endif  // AXON_SERVER_SOCKET_H_
