#include "server/http.h"

#include <algorithm>
#include <cctype>

namespace axon {
namespace http {

namespace {

int HexVal(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool IsTokenChar(char c) {
  // RFC 7230 token characters (enough for methods and header names).
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

// Case-insensitive ASCII comparison for header values like "Keep-Alive".
bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool PercentDecode(std::string_view in, std::string* out) {
  out->clear();
  out->reserve(in.size());
  for (size_t i = 0; i < in.size(); ++i) {
    char c = in[i];
    if (c == '+') {
      out->push_back(' ');
    } else if (c == '%') {
      if (i + 2 >= in.size()) return false;  // truncated escape
      int hi = HexVal(in[i + 1]);
      int lo = HexVal(in[i + 2]);
      if (hi < 0 || lo < 0) return false;
      out->push_back(static_cast<char>(hi * 16 + lo));
      i += 2;
    } else {
      out->push_back(c);
    }
  }
  return true;
}

const std::string* Request::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key == name) return &value;
  }
  return nullptr;
}

bool Request::QueryParam(std::string_view name, std::string* out) const {
  std::string_view rest = query;
  while (!rest.empty()) {
    size_t amp = rest.find('&');
    std::string_view pair =
        amp == std::string_view::npos ? rest : rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view()
                                         : rest.substr(amp + 1);
    size_t eq = pair.find('=');
    std::string_view key = eq == std::string_view::npos ? pair
                                                        : pair.substr(0, eq);
    if (key != name) continue;
    std::string_view raw =
        eq == std::string_view::npos ? std::string_view() : pair.substr(eq + 1);
    return PercentDecode(raw, out);
  }
  return false;
}

ParseResult RequestParser::Fail(int status, std::string reason) {
  state_ = State::kError;
  error_status_ = status;
  error_reason_ = std::move(reason);
  return ParseResult::kError;
}

bool RequestParser::FinishRequestLine(std::string_view line) {
  // METHOD SP request-target SP HTTP-version
  size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) return false;
  size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) return false;
  std::string_view method = line.substr(0, sp1);
  std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = line.substr(sp2 + 1);
  for (char c : method) {
    if (!IsTokenChar(c)) return false;
  }
  if (target.empty() || target.front() != '/') return false;
  for (char c : target) {
    if (static_cast<unsigned char>(c) <= ' ' ||
        static_cast<unsigned char>(c) == 0x7f) {
      return false;
    }
  }
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    // Syntactically a version? Then it's a version we don't speak.
    if (version.rfind("HTTP/", 0) == 0) {
      error_status_ = 505;
      error_reason_ = "only HTTP/1.0 and HTTP/1.1 are supported";
      return false;
    }
    return false;
  }
  request_.method = std::string(method);
  request_.target = std::string(target);
  request_.http11 = version == "HTTP/1.1";
  request_.keep_alive = request_.http11;  // 1.0 defaults to close
  size_t qmark = target.find('?');
  request_.path = std::string(target.substr(0, qmark));
  request_.query = qmark == std::string_view::npos
                       ? std::string()
                       : std::string(target.substr(qmark + 1));
  return true;
}

bool RequestParser::FinishHeaderLine(std::string_view line) {
  // "Name: value" — obsolete line folding (leading whitespace) rejected.
  if (line.front() == ' ' || line.front() == '\t') return false;
  size_t colon = line.find(':');
  if (colon == std::string_view::npos || colon == 0) return false;
  std::string_view name = line.substr(0, colon);
  for (char c : name) {
    if (!IsTokenChar(c)) return false;
  }
  request_.headers.emplace_back(ToLower(name),
                                std::string(Trim(line.substr(colon + 1))));
  return true;
}

bool RequestParser::FinishHeaders() {
  if (const std::string* conn = request_.FindHeader("connection")) {
    if (EqualsIgnoreCase(*conn, "close")) request_.keep_alive = false;
    if (EqualsIgnoreCase(*conn, "keep-alive")) request_.keep_alive = true;
  }
  request_.content_length = 0;
  if (const std::string* cl = request_.FindHeader("content-length")) {
    if (cl->empty() || cl->size() > 18) return false;
    uint64_t n = 0;
    for (char c : *cl) {
      if (c < '0' || c > '9') return false;
      n = n * 10 + static_cast<uint64_t>(c - '0');
    }
    request_.content_length = n;
  }
  if (request_.FindHeader("transfer-encoding") != nullptr) {
    // Inbound chunked bodies are out of scope; reject rather than desync.
    error_status_ = 411;
    error_reason_ = "chunked request bodies are not supported";
    return false;
  }
  return true;
}

ParseResult RequestParser::Feed(std::string_view in, size_t* consumed) {
  *consumed = 0;
  if (state_ == State::kError) return ParseResult::kError;
  if (state_ == State::kDone) return ParseResult::kDone;

  while (*consumed < in.size() || state_ == State::kBody) {
    if (state_ == State::kBody) {
      if (request_.content_length > limits_.max_body_bytes) {
        return Fail(413, "request body exceeds " +
                             std::to_string(limits_.max_body_bytes) +
                             " bytes");
      }
      size_t want = static_cast<size_t>(request_.content_length) -
                    request_.body.size();
      size_t take = std::min(want, in.size() - *consumed);
      request_.body.append(in.substr(*consumed, take));
      *consumed += take;
      if (request_.body.size() == request_.content_length) {
        state_ = State::kDone;
        return ParseResult::kDone;
      }
      return ParseResult::kNeedMore;
    }

    // Accumulate one line (up to '\n'; tolerant of a missing '\r').
    size_t nl = in.find('\n', *consumed);
    size_t take = (nl == std::string_view::npos ? in.size() : nl + 1) -
                  *consumed;
    const uint64_t line_cap = state_ == State::kRequestLine
                                  ? limits_.max_request_line_bytes
                                  : limits_.max_header_bytes;
    if (line_.size() + take > line_cap ||
        (state_ == State::kHeaders &&
         header_bytes_ + line_.size() + take > limits_.max_header_bytes)) {
      return state_ == State::kRequestLine
                 ? Fail(414, "request line exceeds " +
                                 std::to_string(line_cap) + " bytes")
                 : Fail(431, "header section exceeds " +
                                 std::to_string(limits_.max_header_bytes) +
                                 " bytes");
    }
    line_.append(in.substr(*consumed, take));
    *consumed += take;
    if (nl == std::string_view::npos) return ParseResult::kNeedMore;

    // Strip the terminator.
    line_.pop_back();
    if (!line_.empty() && line_.back() == '\r') line_.pop_back();

    if (state_ == State::kRequestLine) {
      if (line_.empty()) {
        // Tolerate stray CRLFs before the request line (RFC 7230
        // robustness); the server's read-buffer cap bounds the abuse.
        continue;
      }
      error_status_ = 0;
      if (!FinishRequestLine(line_)) {
        if (error_status_ != 0) {
          return Fail(error_status_, std::move(error_reason_));
        }
        return Fail(400, "malformed request line: " + line_);
      }
      line_.clear();
      state_ = State::kHeaders;
    } else {  // kHeaders
      header_bytes_ += line_.size() + 2;
      if (line_.empty()) {
        error_status_ = 0;
        if (!FinishHeaders()) {
          if (error_status_ != 0) {
            return Fail(error_status_, std::move(error_reason_));
          }
          return Fail(400, "malformed Content-Length header");
        }
        if (request_.content_length > 0) {
          state_ = State::kBody;
          continue;
        }
        state_ = State::kDone;
        return ParseResult::kDone;
      }
      if (request_.headers.size() >= limits_.max_headers) {
        return Fail(431, "more than " + std::to_string(limits_.max_headers) +
                             " headers");
      }
      if (!FinishHeaderLine(line_)) {
        return Fail(400, "malformed header line: " + line_);
      }
      line_.clear();
    }
  }
  return ParseResult::kNeedMore;
}

void RequestParser::Reset() {
  state_ = State::kRequestLine;
  line_.clear();
  header_bytes_ = 0;
  request_ = Request{};
  error_status_ = 0;
  error_reason_.clear();
}

std::string_view StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 411: return "Length Required";
    case 413: return "Payload Too Large";
    case 414: return "URI Too Long";
    case 415: return "Unsupported Media Type";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    case 504: return "Gateway Timeout";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string ChunkBody(std::string_view body, size_t chunk_bytes) {
  if (chunk_bytes == 0) chunk_bytes = body.size() + 1;
  std::string out;
  out.reserve(body.size() + 64);
  size_t pos = 0;
  while (pos < body.size()) {
    size_t n = std::min(chunk_bytes, body.size() - pos);
    char hex[32];
    std::snprintf(hex, sizeof(hex), "%zx\r\n", n);
    out += hex;
    out.append(body.substr(pos, n));
    out += "\r\n";
    pos += n;
  }
  out += "0\r\n\r\n";
  return out;
}

std::string SerializeResponse(const Response& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    std::string(StatusReason(response.status)) + "\r\n";
  if (!response.content_type.empty()) {
    out += "Content-Type: " + response.content_type + "\r\n";
  }
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  if (response.close) out += "Connection: close\r\n";
  if (response.chunked) {
    out += "Transfer-Encoding: chunked\r\n\r\n";
    out += ChunkBody(response.body, 16 * 1024);
  } else {
    out += "Content-Length: " + std::to_string(response.body.size()) +
           "\r\n\r\n";
    out += response.body;
  }
  return out;
}

}  // namespace http
}  // namespace axon
