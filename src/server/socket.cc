#include "server/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "util/failpoint.h"

namespace axon {
namespace net {

namespace {

Status ErrnoStatus(const char* what) {
  return Status::IOError(std::string(what) + " failed: " +
                         std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

}  // namespace

Result<int> ListenTcp(const std::string& host, uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad listen address: " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = ErrnoStatus("bind");
    ::close(fd);
    return st;
  }
  if (::listen(fd, backlog) < 0) {
    Status st = ErrnoStatus("listen");
    ::close(fd);
    return st;
  }
  Status st = SetNonBlocking(fd);
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  return fd;
}

Result<int> AcceptConn(int listen_fd, int send_buffer_bytes) {
  // err here models a transient accept(2) failure (EMFILE, ECONNABORTED):
  // the loop counts it and keeps serving; delay models a slow accept path.
  const auto fp = AXON_FAILPOINT_EVAL("sock.accept");
  if (fp) {
    failpoint::Execute("sock.accept", fp);
    if (fp.action == failpoint::Action::kError) {
      return failpoint::InjectedError("sock.accept");
    }
  }
  int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
        errno == ECONNABORTED) {
      return -1;  // nothing pending / already-gone peer: not an error
    }
    return ErrnoStatus("accept");
  }
  Status st = SetNonBlocking(fd);
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  if (send_buffer_bytes > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &send_buffer_bytes,
                 sizeof(send_buffer_bytes));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

IoResult ReadSome(int fd, char* buf, size_t cap) {
  size_t limit = cap;
  const auto fp = AXON_FAILPOINT_EVAL("sock.read");
  if (fp) {
    failpoint::Execute("sock.read", fp);
    if (fp.action == failpoint::Action::kError) {
      return {IoResult::Kind::kError, 0};  // torn connection mid-read
    }
    if (fp.action == failpoint::Action::kShortIo) {
      // Trickle: the kernel hands over fewer bytes than asked for.
      limit = std::min(limit, std::max<size_t>(1, fp.arg));
    }
  }
  ssize_t n = ::read(fd, buf, limit);
  if (n > 0) {
    if (fp.action == failpoint::Action::kBitflip) {
      // Corrupted inbound bytes; the HTTP parser must reject, not crash.
      size_t bit = static_cast<size_t>(fp.arg) %
                   (8 * static_cast<size_t>(n));
      buf[bit / 8] = static_cast<char>(
          buf[bit / 8] ^ static_cast<char>(1u << (bit % 8)));
    }
    return {IoResult::Kind::kOk, static_cast<size_t>(n)};
  }
  if (n == 0) return {IoResult::Kind::kEof, 0};
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    return {IoResult::Kind::kWouldBlock, 0};
  }
  return {IoResult::Kind::kError, 0};
}

IoResult WriteSome(int fd, const char* buf, size_t len) {
  size_t limit = len;
  std::string corrupted;  // bitflip needs a mutable copy
  const auto fp = AXON_FAILPOINT_EVAL("sock.write");
  if (fp) {
    failpoint::Execute("sock.write", fp);
    if (fp.action == failpoint::Action::kError) {
      return {IoResult::Kind::kError, 0};  // peer reset mid-response
    }
    if (fp.action == failpoint::Action::kShortIo) {
      // Full send queue: only a prefix leaves; the caller must retain the
      // tail and resume on writability — exactly the backpressure path.
      limit = std::min(limit, std::max<size_t>(1, fp.arg));
    }
    if (fp.action == failpoint::Action::kBitflip && len > 0) {
      corrupted.assign(buf, len);
      size_t bit = static_cast<size_t>(fp.arg) % (8 * len);
      corrupted[bit / 8] = static_cast<char>(
          corrupted[bit / 8] ^ static_cast<char>(1u << (bit % 8)));
      buf = corrupted.data();
    }
  }
  ssize_t n = ::send(fd, buf, limit, MSG_NOSIGNAL);
  if (n >= 0) return {IoResult::Kind::kOk, static_cast<size_t>(n)};
  if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
    return {IoResult::Kind::kWouldBlock, 0};
  }
  return {IoResult::Kind::kError, 0};
}

void CloseFd(int fd) {
  if (fd < 0) return;
  // err is swallowed by design — close(2) failure cannot be retried and
  // the fd is released either way; delay models a lingering close.
  const auto fp = AXON_FAILPOINT_EVAL("sock.close");
  if (fp) failpoint::Execute("sock.close", fp);
  ::close(fd);
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return ErrnoStatus("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<int> ConnectTcp(const std::string& host, uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad connect address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = ErrnoStatus("connect");
    ::close(fd);
    return st;
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace net
}  // namespace axon
