// Minimal, hostile-input-hardened HTTP/1.1 subset for the SPARQL endpoint.
//
// The surface is deliberately narrow — exactly what the SPARQL protocol
// needs over a trusted-ish network edge: GET with a percent-encoded
// `?query=` target, POST with an `application/sparql-query` body, named
// headers, keep-alive and pipelining, Content-Length bodies (no inbound
// chunked decoding — request bodies are bounded and buffered), and
// chunked or Content-Length response framing. Everything else is rejected
// with a precise status code, never undefined behavior: the parser is
// incremental (feed it bytes as they arrive), enforces hard limits on
// request-line/header/body sizes at every state, and is fuzzed
// (fuzz/fuzz_http.cc) plus pinned by a hostile-input table in
// tests/server_http_test.cc.
//
// Error philosophy: a malformed request yields (status, reason) for a
// final response; the connection always closes after an error response so
// framing desync can never poison a pipelined successor.

#ifndef AXON_SERVER_HTTP_H_
#define AXON_SERVER_HTTP_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace axon {
namespace http {

/// Decodes %XX escapes (and '+' as space, per form-urlencoded query
/// strings). Returns false on a truncated or non-hex escape.
bool PercentDecode(std::string_view in, std::string* out);

/// One parsed request. Header names are lower-cased at parse time; values
/// keep their bytes (trimmed of surrounding whitespace).
struct Request {
  std::string method;   // "GET", "POST", ...
  std::string target;   // raw request target ("/sparql?query=...")
  std::string path;     // target up to '?' (undecoded)
  std::string query;    // target after '?' (undecoded, may be empty)
  bool http11 = true;   // false = HTTP/1.0
  bool keep_alive = true;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  uint64_t content_length = 0;

  /// First header with this (lower-case) name, or nullptr.
  const std::string* FindHeader(std::string_view name) const;

  /// Percent-decoded value of `name` in the query string, or empty+false.
  bool QueryParam(std::string_view name, std::string* out) const;
};

/// Parser limits; exceeding one maps to a specific 4xx.
struct ParserLimits {
  uint64_t max_request_line_bytes = 8192;   // 414 URI Too Long
  uint64_t max_header_bytes = 16384;        // 431 Header Fields Too Large
  uint32_t max_headers = 64;                // 431
  uint64_t max_body_bytes = 1 << 20;        // 413 Payload Too Large
};

enum class ParseResult {
  kNeedMore,  // consumed everything offered; feed more bytes
  kDone,      // one complete request parsed; more bytes may remain
  kError,     // protocol violation; error_status()/error_reason() set
};

/// Incremental request parser. Feed() consumes from the front of `in` and
/// reports how many bytes it took; after kDone, Reset() rearms it for the
/// next pipelined request. After kError the parser stays in the error
/// state until Reset().
class RequestParser {
 public:
  explicit RequestParser(ParserLimits limits = {}) : limits_(limits) {}

  ParseResult Feed(std::string_view in, size_t* consumed);

  const Request& request() const { return request_; }
  Request& mutable_request() { return request_; }

  int error_status() const { return error_status_; }
  const std::string& error_reason() const { return error_reason_; }

  /// True once any bytes of the current request have been consumed (a
  /// reaper uses this to distinguish idle from mid-request timeouts).
  bool mid_request() const { return state_ != State::kRequestLine ||
                                    !line_.empty(); }

  void Reset();

 private:
  enum class State { kRequestLine, kHeaders, kBody, kDone, kError };

  ParseResult Fail(int status, std::string reason);
  bool FinishRequestLine(std::string_view line);
  bool FinishHeaderLine(std::string_view line);
  bool FinishHeaders();

  ParserLimits limits_;
  State state_ = State::kRequestLine;
  std::string line_;          // partial line being accumulated
  uint64_t header_bytes_ = 0; // running header-section size
  Request request_;
  int error_status_ = 0;
  std::string error_reason_;
};

/// One outgoing response. Body framing: `chunked` uses Transfer-Encoding:
/// chunked (HTTP/1.1 only); otherwise Content-Length.
struct Response {
  int status = 200;
  std::string content_type;  // empty = no body headers
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool chunked = false;
  bool close = false;  // emit "Connection: close"
};

/// Canonical reason phrase for the status codes this server emits.
std::string_view StatusReason(int status);

/// Serializes status line + headers + framed body into wire bytes.
std::string SerializeResponse(const Response& response);

/// Splits `body` into `chunk_bytes`-sized chunked-coding frames plus the
/// terminal 0-chunk (exposed for tests; SerializeResponse uses it).
std::string ChunkBody(std::string_view body, size_t chunk_bytes);

}  // namespace http
}  // namespace axon

#endif  // AXON_SERVER_HTTP_H_
