#include "server/server.h"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "server/socket.h"
#include "sparql/parser.h"
#include "sparql/results_io.h"

namespace axon {
namespace server {

namespace {

using Clock = std::chrono::steady_clock;

Clock::time_point After(uint64_t millis) {
  return Clock::now() + std::chrono::milliseconds(millis);
}

// Retry-After carries whole seconds; round the millisecond hint up so a
// compliant client never retries before the hinted instant.
uint64_t RetryAfterSeconds(uint64_t millis) {
  return std::max<uint64_t>(1, (millis + 999) / 1000);
}

}  // namespace

/// All fields owned by the loop thread. A connection is in exactly one of
/// the states the deadlines encode: idle / mid-request (reading),
/// executing (a worker owns the request), or flushing (outbuf pending).
struct SparqlHttpServer::Connection {
  int fd = -1;
  uint64_t id = 0;

  http::RequestParser parser;
  std::string inbuf;  // bytes received but not yet fed to the parser

  std::string outbuf;  // serialized response bytes not yet written
  size_t out_off = 0;
  bool close_after_flush = false;

  bool executing = false;
  std::shared_ptr<CancellationToken> token;  // set while executing

  Clock::time_point read_deadline;
  Clock::time_point write_deadline;  // meaningful while outbuf pending
  Clock::time_point exec_backstop;   // meaningful while executing
  bool backstop_fired = false;

  size_t pending_out() const { return outbuf.size() - out_off; }
};

SparqlHttpServer::SparqlHttpServer(const GovernedEngine* engine,
                                   const Dictionary* dict,
                                   ServerOptions options)
    : engine_(engine), dict_(dict), options_(std::move(options)) {}

SparqlHttpServer::~SparqlHttpServer() { Shutdown(); }

Status SparqlHttpServer::Start() {
  {
    MutexLock lock(&mu_);
    if (started_) return Status::Internal("server already started");
    started_ = true;
    draining_ = false;
  }
  AXON_ASSIGN_OR_RETURN(listen_fd_,
                        net::ListenTcp(options_.host, options_.port, 128));
  auto port = net::LocalPort(listen_fd_);
  if (!port.ok()) {
    net::CloseFd(listen_fd_);
    listen_fd_ = -1;
    return port.status();
  }
  port_ = port.value();
  if (::pipe(wake_fds_) != 0) {
    net::CloseFd(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("pipe() failed");
  }
  // Both ends nonblocking: the loop drains the read end until EAGAIN, and
  // Wake() must never stall a worker if the pipe is full.
  for (int fd : wake_fds_) {
    int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
  pool_ = std::make_unique<ThreadPool>(
      std::max<uint32_t>(1, options_.num_workers));
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { LoopMain(); });
  return Status::OK();
}

void SparqlHttpServer::Shutdown() {
  {
    MutexLock lock(&mu_);
    if (!started_) return;
    draining_ = true;
  }
  Wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  // The loop exited with jobs_in_flight_ == 0, so the pool queue is empty;
  // destroying it only joins idle workers.
  pool_.reset();
  if (wake_fds_[0] >= 0) {
    ::close(wake_fds_[0]);
    ::close(wake_fds_[1]);
    wake_fds_[0] = wake_fds_[1] = -1;
  }
  running_.store(false, std::memory_order_release);
  MutexLock lock(&mu_);
  started_ = false;
}

void SparqlHttpServer::Wake() {
  if (wake_fds_[1] < 0) return;
  char b = 0;
  // A full pipe already guarantees a pending wakeup; the byte can drop.
  [[maybe_unused]] ssize_t ignored = ::write(wake_fds_[1], &b, 1);
}

int SparqlHttpServer::NextTimeoutMillis() const {
  Clock::time_point earliest = Clock::time_point::max();
  for (const auto& [id, conn] : conns_) {
    if (conn->executing) {
      if (!conn->backstop_fired) {
        earliest = std::min(earliest, conn->exec_backstop);
      }
    } else if (conn->pending_out() > 0) {
      earliest = std::min(earliest, conn->write_deadline);
    } else {
      earliest = std::min(earliest, conn->read_deadline);
    }
  }
  if (earliest == Clock::time_point::max()) return 500;
  auto delta = std::chrono::duration_cast<std::chrono::milliseconds>(
                   earliest - Clock::now())
                   .count();
  return static_cast<int>(std::clamp<long long>(delta, 10, 500));
}

void SparqlHttpServer::LoopMain() {
  std::vector<pollfd> fds;
  std::vector<uint64_t> fd_conn;  // conn id per pollfd (0 = listener/wake)
  bool drain_seen = false;
  Clock::time_point drain_deadline{};

  for (;;) {
    bool draining;
    {
      MutexLock lock(&mu_);
      draining = draining_;
    }
    if (draining && !drain_seen) {
      drain_seen = true;
      drain_deadline = After(options_.drain_timeout_millis);
      if (listen_fd_ >= 0) {
        net::CloseFd(listen_fd_);
        listen_fd_ = -1;
      }
    }
    if (drain_seen) {
      // Close everything with no response in flight; past the drain
      // deadline, cancel in-flight queries and drop undrained writers.
      std::vector<uint64_t> doomed;
      const bool expired = Clock::now() >= drain_deadline;
      for (auto& [id, conn] : conns_) {
        if (conn->executing) {
          if (expired && conn->token != nullptr) conn->token->Cancel();
          continue;
        }
        if (conn->pending_out() > 0 && !expired) continue;
        doomed.push_back(id);
      }
      for (uint64_t id : doomed) CloseConnection(id);
      if (conns_.empty() && jobs_in_flight_ == 0) break;
    }

    fds.clear();
    fd_conn.clear();
    fds.push_back(pollfd{wake_fds_[0], POLLIN, 0});
    fd_conn.push_back(0);
    // Polled even at the connection cap: DoAccept sheds over-cap arrivals
    // with an immediate close, which beats leaving them to rot (and time
    // out client-side) in the listen backlog.
    if (listen_fd_ >= 0) {
      fds.push_back(pollfd{listen_fd_, POLLIN, 0});
      fd_conn.push_back(0);
    }
    for (auto& [id, conn] : conns_) {
      short events = 0;
      if (conn->pending_out() > 0) {
        events |= POLLOUT;  // flushing: no reads until drained
      } else if (conn->inbuf.size() < options_.max_pipeline_buffer_bytes) {
        // Reading — also while executing, to catch disconnects and park
        // pipelined bytes. Note POLLIN also reports EOF.
        events |= POLLIN;
      }
      if (events == 0) continue;  // fully backpressured
      fds.push_back(pollfd{conn->fd, events, 0});
      fd_conn.push_back(id);
    }

    ::poll(fds.data(), fds.size(), NextTimeoutMillis());

    if (fds[0].revents & POLLIN) {
      char buf[256];
      while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
      }
    }

    // Completions first: they free write capacity and governor slots.
    for (;;) {
      Completion done;
      {
        MutexLock lock(&mu_);
        if (completions_.empty()) break;
        done = std::move(completions_.front());
        completions_.pop_front();
      }
      HandleCompletion(std::move(done));
    }

    for (size_t i = 1; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      if (fds[i].fd == listen_fd_) {
        DoAccept();
        continue;
      }
      auto it = conns_.find(fd_conn[i]);
      if (it == conns_.end()) continue;  // closed earlier this iteration
      Connection* conn = it->second.get();
      if (fds[i].revents & (POLLERR | POLLNVAL)) {
        if (conn->executing && conn->token != nullptr) {
          conn->token->Cancel();
          stats_.cancels_disconnect.fetch_add(1, std::memory_order_relaxed);
        }
        CloseConnection(conn->id);
        continue;
      }
      if (fds[i].revents & POLLOUT) {
        FlushWrites(conn);
        it = conns_.find(fd_conn[i]);
        if (it == conns_.end()) continue;
        // A drained response may unblock a parked pipelined request.
        AdvanceParser(it->second.get());
        it = conns_.find(fd_conn[i]);
        if (it == conns_.end()) continue;
        conn = it->second.get();
      }
      if (fds[i].revents & (POLLIN | POLLHUP)) HandleReadable(conn);
    }

    CheckDeadlines();
  }

  // Loop exit: every connection closed, every job accounted.
  for (auto& [id, conn] : conns_) {
    net::CloseFd(conn->fd);
    stats_.closed.fetch_add(1, std::memory_order_relaxed);
  }
  conns_.clear();
  if (listen_fd_ >= 0) {
    net::CloseFd(listen_fd_);
    listen_fd_ = -1;
  }
}

void SparqlHttpServer::DoAccept() {
  // Accept in a burst until the listener runs dry or the table fills.
  for (;;) {
    if (conns_.size() >= options_.max_connections) {
      // Over capacity: take and drop the next pending connection so the
      // backlog does not hold dead sockets (counted, never served).
      auto fd = net::AcceptConn(listen_fd_, 0);
      if (fd.ok() && fd.value() >= 0) {
        net::CloseFd(fd.value());
        stats_.conns_rejected.fetch_add(1, std::memory_order_relaxed);
      }
      return;
    }
    auto fd = net::AcceptConn(listen_fd_, options_.send_buffer_bytes);
    if (!fd.ok()) {
      // Transient accept failure (EMFILE or an armed sock.accept): count
      // and keep serving existing connections.
      stats_.accept_failures.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (fd.value() < 0) return;  // backlog drained

    auto conn = std::make_unique<Connection>();
    conn->fd = fd.value();
    conn->id = next_conn_id_++;
    conn->parser = http::RequestParser(options_.limits);
    conn->read_deadline = After(options_.idle_timeout_millis);
    stats_.accepted.fetch_add(1, std::memory_order_relaxed);
    uint64_t id = conn->id;
    conns_.emplace(id, std::move(conn));
  }
}

void SparqlHttpServer::HandleReadable(Connection* conn) {
  // Bounded burst per readiness event so one firehose client cannot
  // starve the loop; level-triggered poll re-reports leftovers.
  constexpr size_t kReadChunk = 16 * 1024;
  constexpr size_t kMaxPerEvent = 4 * kReadChunk;
  size_t taken = 0;
  bool eof = false, error = false;
  char buf[kReadChunk];
  while (taken < kMaxPerEvent &&
         conn->inbuf.size() < options_.max_pipeline_buffer_bytes) {
    net::IoResult r = net::ReadSome(conn->fd, buf, sizeof(buf));
    if (r.kind == net::IoResult::Kind::kOk) {
      conn->inbuf.append(buf, r.bytes);
      taken += r.bytes;
      continue;
    }
    if (r.kind == net::IoResult::Kind::kWouldBlock) break;
    if (r.kind == net::IoResult::Kind::kEof) eof = true;
    if (r.kind == net::IoResult::Kind::kError) error = true;
    break;
  }

  if (eof || error) {
    if (conn->executing) {
      // Disconnect mid-execution: cancel the query and reclaim the
      // connection now; the worker's completion is dropped (abandoned).
      if (conn->token != nullptr) {
        conn->token->Cancel();
        stats_.cancels_disconnect.fetch_add(1, std::memory_order_relaxed);
      }
      CloseConnection(conn->id);
      return;
    }
    // Premature EOF mid-request, or a clean close between requests.
    // Nothing to respond to either way (no complete request exists).
    CloseConnection(conn->id);
    return;
  }

  if (!conn->executing && conn->pending_out() == 0) AdvanceParser(conn);
}

void SparqlHttpServer::AdvanceParser(Connection* conn) {
  // One request at a time per connection: pipelined successors stay
  // parked in inbuf until the current response has fully drained. The
  // loop re-looks the connection up each round because dispatching a
  // request (or flushing its response) may close and free it.
  const uint64_t id = conn->id;
  for (;;) {
    auto it = conns_.find(id);
    if (it == conns_.end()) return;  // closed during dispatch/flush
    conn = it->second.get();
    if (conn->executing || conn->pending_out() > 0 || conn->inbuf.empty()) {
      break;
    }
    size_t consumed = 0;
    http::ParseResult r = conn->parser.Feed(conn->inbuf, &consumed);
    conn->inbuf.erase(0, consumed);
    if (r == http::ParseResult::kNeedMore) break;

    stats_.requests_received.fetch_add(1, std::memory_order_relaxed);
    if (r == http::ParseResult::kError) {
      http::Response resp;
      resp.status = conn->parser.error_status();
      resp.content_type = "text/plain";
      resp.body = conn->parser.error_reason() + "\n";
      resp.close = true;
      EnqueueResponse(conn, resp, ResponseClass::kClientError);
      return;  // framing may be desynced; close after flush
    }
    http::Request request = std::move(conn->parser.mutable_request());
    conn->parser.Reset();
    DispatchRequest(conn, request);
  }
  auto it = conns_.find(id);
  if (it == conns_.end()) return;
  conn = it->second.get();
  if (!conn->executing && conn->pending_out() == 0) {
    conn->read_deadline = After(conn->parser.mid_request()
                                    ? options_.read_timeout_millis
                                    : options_.idle_timeout_millis);
  }
}

void SparqlHttpServer::DispatchRequest(Connection* conn,
                                       const http::Request& request) {
  auto reject = [&](int status, const std::string& why) {

    http::Response resp;
    resp.status = status;
    resp.content_type = "text/plain";
    resp.body = why + "\n";
    resp.close = true;
    if (status == 405) resp.headers.emplace_back("Allow", "GET, POST");
    EnqueueResponse(conn, resp, ResponseClass::kClientError);
  };

  if (request.path == "/healthz") {
    http::Response resp;
    resp.content_type = "text/plain";
    resp.body = "ok\n";
    resp.close = !request.keep_alive;
    EnqueueResponse(conn, resp, ResponseClass::kOk);
    return;
  }
  if (request.path != "/sparql") {
    reject(404, "no such endpoint (try /sparql)");
    return;
  }

  std::string query_text;
  if (request.method == "GET") {
    if (!request.QueryParam("query", &query_text)) {
      reject(400, "missing or undecodable 'query' parameter");
      return;
    }
  } else if (request.method == "POST") {
    const std::string* ct = request.FindHeader("content-type");
    if (ct == nullptr ||
        ct->rfind("application/sparql-query", 0) != 0) {
      reject(415, "POST requires Content-Type: application/sparql-query");
      return;
    }
    query_text = request.body;
  } else {
    reject(405, "only GET and POST are supported");
    return;
  }
  if (query_text.empty()) {
    reject(400, "empty query");
    return;
  }

  uint64_t timeout = options_.request_timeout_millis;
  if (const std::string* hdr = request.FindHeader("x-axon-timeout-millis")) {
    uint64_t v = 0;
    if (hdr->empty() || hdr->size() > 9) {
      reject(400, "bad X-Axon-Timeout-Millis");
      return;
    }
    for (char c : *hdr) {
      if (c < '0' || c > '9') {
        reject(400, "bad X-Axon-Timeout-Millis");
        return;
      }
      v = v * 10 + static_cast<uint64_t>(c - '0');
    }
    timeout = std::min(std::max<uint64_t>(v, 1),
                       options_.max_request_timeout_millis);
  }

  const std::string* accept = request.FindHeader("accept");
  bool want_json =
      accept != nullptr &&
      accept->find("application/sparql-results+json") != std::string::npos;

  conn->executing = true;
  conn->token = std::make_shared<CancellationToken>();
  // Backstop: the engine's own deadline should fire first; this catches a
  // worker that wedges past it (grace on top of the effective timeout).
  uint64_t effective = timeout != 0 ? timeout : engine_->options().timeout_millis;
  conn->exec_backstop =
      effective != 0
          ? After(effective + options_.deadline_grace_millis)
          : Clock::time_point::max();
  conn->backstop_fired = false;
  ++jobs_in_flight_;
  ExecuteJob(conn->id, std::move(query_text), want_json, request.keep_alive,
             request.http11, timeout, conn->token);
}

void SparqlHttpServer::ExecuteJob(uint64_t conn_id, std::string query_text,
                                  bool want_json, bool keep_alive, bool http11,
                                  uint64_t timeout_millis,
                                  std::shared_ptr<CancellationToken> token) {
  pool_->Submit([this, conn_id, query_text = std::move(query_text), want_json,
                 keep_alive, http11, timeout_millis,
                 token = std::move(token)] {
    Completion done;
    done.conn_id = conn_id;

    http::Response resp;
    resp.content_type = "text/plain";
    resp.close = true;
    try {
      auto parsed = ParseSparql(query_text);
      if (!parsed.ok()) {
        resp.status = 400;
        resp.body = "parse error: " + parsed.status().ToString() + "\n";
        done.klass = ResponseClass::kClientError;
      } else {
        auto result = engine_->ExecuteCancellable(parsed.value(), token.get(),
                                                  timeout_millis);
        if (result.ok()) {
          auto body = WriteResults(result.value().table, *dict_,
                                   want_json ? ResultFormat::kJson
                                             : ResultFormat::kTsv);
          if (body.ok()) {
            resp.status = 200;
            resp.content_type = want_json
                                    ? "application/sparql-results+json"
                                    : "text/tab-separated-values";
            resp.body = std::move(body).ValueOrDie();
            resp.chunked =
                http11 && resp.body.size() > options_.chunk_threshold_bytes;
            resp.close = !keep_alive;
            done.klass = ResponseClass::kOk;
          } else {
            resp.status = 500;
            resp.body = "serialization failed: " +
                        body.status().ToString() + "\n";
            done.klass = ResponseClass::kServerError;
          }
        } else {
          const Status& st = result.status();
          switch (st.code()) {
            case StatusCode::kCancelled:
              // Client gone (or drain): no one to respond to.
              done.klass = ResponseClass::kNone;
              break;
            case StatusCode::kUnavailable: {
              resp.status = 503;
              uint64_t hint = RetryAfterHintMillis(
                  st, engine_->governor().options().retry_after_millis);
              resp.headers.emplace_back(
                  "Retry-After", std::to_string(RetryAfterSeconds(hint)));
              resp.body = st.ToString() + "\n";
              done.klass = ResponseClass::kShed;
              break;
            }
            case StatusCode::kDeadlineExceeded:
              resp.status = 504;
              resp.body = st.ToString() + "\n";
              done.klass = ResponseClass::kTimeout;
              break;
            case StatusCode::kResourceExhausted:
              resp.status = 500;
              resp.body = st.ToString() + "\n";
              done.klass = ResponseClass::kServerError;
              break;
            default:
              resp.status = 500;
              resp.body = st.ToString() + "\n";
              done.klass = ResponseClass::kServerError;
              break;
          }
        }
      }
    } catch (const std::exception& e) {
      // Last-ditch fault boundary: a worker must never take the pool down.
      resp.status = 500;
      resp.content_type = "text/plain";
      resp.body = std::string("internal error: ") + e.what() + "\n";
      resp.close = true;
      done.klass = ResponseClass::kServerError;
    }
    if (done.klass != ResponseClass::kNone) {
      done.bytes = http::SerializeResponse(resp);
      done.close_after = resp.close;
    }
    {
      MutexLock lock(&mu_);
      completions_.push_back(std::move(done));
    }
    Wake();

  });
}

void SparqlHttpServer::HandleCompletion(Completion done) {
  --jobs_in_flight_;

  auto it = conns_.find(done.conn_id);
  if (it == conns_.end()) {
    // The connection died while the query ran (disconnect or drain):
    // the response has no recipient.
    stats_.requests_abandoned.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Connection* conn = it->second.get();
  conn->executing = false;
  conn->token.reset();
  if (done.klass == ResponseClass::kNone) {
    // Cancelled with the client still connected (deadline backstop or
    // drain): nothing correct to send — resolve with a clean close.
    stats_.requests_abandoned.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(conn->id);
    return;
  }
  CountResponse(done.klass);
  const uint64_t id = conn->id;
  AppendOutput(conn, std::move(done.bytes), done.close_after);
  // If the response flushed inline and the client already pipelined its
  // next request, pick it up now (no readiness event will fire for it).
  auto it2 = conns_.find(id);
  if (it2 != conns_.end()) AdvanceParser(it2->second.get());
}

void SparqlHttpServer::EnqueueResponse(Connection* conn,
                                       const http::Response& response,
                                       ResponseClass klass) {
  CountResponse(klass);
  AppendOutput(conn, http::SerializeResponse(response), response.close);
}

void SparqlHttpServer::CountResponse(ResponseClass klass) {
  switch (klass) {
    case ResponseClass::kOk:
      stats_.responses_ok.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseClass::kClientError:
      stats_.responses_client_error.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseClass::kShed:
      stats_.responses_shed.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseClass::kTimeout:
      stats_.responses_timeout.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseClass::kServerError:
      stats_.responses_server_error.fetch_add(1, std::memory_order_relaxed);
      break;
    case ResponseClass::kNone:
      break;
  }
}

void SparqlHttpServer::AppendOutput(Connection* conn, std::string bytes,
                                    bool close_after) {
  if (conn->pending_out() + bytes.size() >
      options_.write_buffer_limit_bytes) {
    // Slow-client shed: the peer cannot drain what it has asked for.
    stats_.overcap_closed.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(conn->id);
    return;
  }
  if (conn->outbuf.empty()) {
    conn->outbuf = std::move(bytes);
    conn->out_off = 0;
  } else {
    conn->outbuf.append(bytes);
  }
  conn->close_after_flush = conn->close_after_flush || close_after;
  conn->write_deadline = After(options_.write_timeout_millis);
  FlushWrites(conn);
}

void SparqlHttpServer::FlushWrites(Connection* conn) {
  while (conn->pending_out() > 0) {
    net::IoResult r = net::WriteSome(conn->fd, conn->outbuf.data() +
                                                   conn->out_off,
                                     conn->pending_out());
    if (r.kind == net::IoResult::Kind::kOk) {
      conn->out_off += r.bytes;
      conn->write_deadline = After(options_.write_timeout_millis);
      continue;
    }
    if (r.kind == net::IoResult::Kind::kWouldBlock) return;
    // kError (reset, or an armed sock.write): the response cannot be
    // delivered; reclaim the connection.
    CloseConnection(conn->id);
    return;
  }
  // Fully drained. A parked pipelined successor is picked up by the
  // caller (AdvanceParser's loop, or the POLLOUT/completion handlers) —
  // never from here, so flush/parse cannot recurse.
  conn->outbuf.clear();
  conn->out_off = 0;
  if (conn->close_after_flush) {
    CloseConnection(conn->id);
    return;
  }
  conn->read_deadline = After(options_.idle_timeout_millis);
}

void SparqlHttpServer::CheckDeadlines() {
  const auto now = Clock::now();
  std::vector<uint64_t> doomed_idle, doomed_slow, doomed_midreq;
  for (auto& [id, conn] : conns_) {
    if (conn->executing) {
      if (!conn->backstop_fired && now >= conn->exec_backstop &&
          conn->token != nullptr) {
        conn->backstop_fired = true;
        conn->token->Cancel();  // completion resolves it (504-less close)
      }
      continue;
    }
    if (conn->pending_out() > 0) {
      if (now >= conn->write_deadline) doomed_slow.push_back(id);
      continue;
    }
    if (now >= conn->read_deadline) {
      if (conn->parser.mid_request()) {
        doomed_midreq.push_back(id);
      } else {
        doomed_idle.push_back(id);
      }
    }
  }
  for (uint64_t id : doomed_idle) {
    stats_.idle_reaped.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(id);
  }
  for (uint64_t id : doomed_slow) {
    stats_.slow_closed.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(id);
  }
  for (uint64_t id : doomed_midreq) {
    // The request never completed; it resolves as a counted 408.
    auto it = conns_.find(id);
    if (it == conns_.end()) continue;
    stats_.requests_received.fetch_add(1, std::memory_order_relaxed);
    http::Response resp;
    resp.status = 408;
    resp.content_type = "text/plain";
    resp.body = "request incomplete after read timeout\n";
    resp.close = true;
    EnqueueResponse(it->second.get(), resp, ResponseClass::kClientError);
  }
}

void SparqlHttpServer::CloseConnection(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  // An in-flight job's completion finds the id gone and counts itself
  // abandoned there — exactly once, in HandleCompletion.
  net::CloseFd(it->second->fd);
  stats_.closed.fetch_add(1, std::memory_order_relaxed);
  conns_.erase(it);
}

}  // namespace server
}  // namespace axon
