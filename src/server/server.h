// SparqlHttpServer — the hardened SPARQL-over-HTTP front-end.
//
// Threading model (the whole design hangs off this):
//
//   * One event-loop thread owns *all* connection state. It runs a
//     level-triggered poll(2) readiness loop over the listener, a self-
//     wake pipe and every client socket; no other thread ever touches a
//     Connection. That single-writer discipline is what keeps the server
//     TSan-clean without per-connection locks.
//   * A fixed ThreadPool (util/thread_pool) executes queries. A worker
//     gets copies of everything it needs (query text, format, conn id, a
//     shared CancellationToken) — never a Connection pointer — runs the
//     query through GovernedEngine, serializes the *complete* response to
//     bytes, and hands them back through a mutex-guarded completion queue
//     plus a wake-pipe byte. Responses are therefore atomic: the loop
//     either enqueues a whole response for a live connection or drops the
//     completion for a dead one. Partial results are never half-written.
//
// Robustness contract per connection:
//   * read deadlines — an idle keep-alive connection is reaped after
//     idle_timeout_millis; a connection stuck mid-request gets 408 after
//     read_timeout_millis.
//   * per-request deadline — request_timeout_millis (optionally lowered by
//     an `X-Axon-Timeout-Millis` request header, capped by
//     max_request_timeout_millis) maps into the engine's QueryContext;
//     expiry surfaces as 504. A loop-side backstop cancels the token if a
//     worker overruns the deadline by a grace period.
//   * disconnect cancellation — the loop keeps polling an executing
//     connection; EOF/reset cancels the query's token, closes the socket
//     and drops the eventual completion (counted requests_abandoned).
//   * backpressure — while a response is draining the loop stops reading
//     (pipelined bytes park in a bounded buffer); a client that cannot
//     drain write_buffer_limit_bytes is shed with a close, and one that
//     drains too slowly trips write_timeout_millis.
//   * overload — governor sheds surface as 503 with a Retry-After header
//     derived from the jittered hint (util/resource_governor).
//   * graceful drain — Shutdown() stops accepting, lets in-flight work
//     finish within drain_timeout_millis, then cancels stragglers and
//     force-closes; the loop exits only after every dispatched job has
//     been accounted, so ServerStats balances exactly.
//
// Accounting identity (asserted by tools/chaos_run --server):
//   requests_received == responses_ok + responses_client_error +
//                        responses_shed + responses_timeout +
//                        responses_server_error + requests_abandoned
//   accepted == closed (after Shutdown)

#ifndef AXON_SERVER_SERVER_H_
#define AXON_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "engine/governed_engine.h"
#include "rdf/dictionary.h"
#include "server/http.h"
#include "util/mutex.h"
#include "util/thread_pool.h"

namespace axon {
namespace server {

struct ServerOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; port() reports the bound port
  uint32_t num_workers = 4;
  uint32_t max_connections = 256;

  /// Reap a keep-alive connection idle (between requests) this long.
  uint64_t idle_timeout_millis = 30'000;
  /// 408 a connection stuck mid-request (bytes consumed, request
  /// incomplete) this long.
  uint64_t read_timeout_millis = 5'000;
  /// Close a connection whose response has not fully drained this long
  /// after the last successful write.
  uint64_t write_timeout_millis = 10'000;
  /// Per-request execution deadline mapped into QueryContext; 0 = the
  /// engine's own GovernedOptions::timeout_millis.
  uint64_t request_timeout_millis = 0;
  /// Upper bound on a client-supplied X-Axon-Timeout-Millis header.
  uint64_t max_request_timeout_millis = 60'000;
  /// Grace past the request deadline before the loop-side backstop
  /// cancels a still-running worker.
  uint64_t deadline_grace_millis = 1'000;

  /// Pending (unflushed) response bytes a connection may hold; beyond it
  /// the client is shed with a close. Responses larger than this cap are
  /// themselves shed — size it above the largest expected result.
  uint64_t write_buffer_limit_bytes = 8ull << 20;
  /// Bytes of pipelined follow-up requests parked while a response is in
  /// flight; beyond it the loop stops reading until the pipeline drains.
  uint64_t max_pipeline_buffer_bytes = 64 * 1024;
  /// Bodies above this are framed Transfer-Encoding: chunked (HTTP/1.1).
  uint64_t chunk_threshold_bytes = 64 * 1024;

  /// Drain window for Shutdown(): in-flight queries may finish this long
  /// before being cancelled.
  uint64_t drain_timeout_millis = 2'000;

  /// SO_SNDBUF for accepted sockets; 0 = kernel default. Tests shrink it
  /// to make slow-client backpressure deterministic.
  int send_buffer_bytes = 0;

  http::ParserLimits limits;
};

/// Monotonic counters, written by the loop thread (and workers, for
/// nothing — workers only report through completions) and readable from
/// any thread. See the accounting identity in the file comment.
struct ServerStats {
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> closed{0};
  std::atomic<uint64_t> conns_rejected{0};   // over max_connections
  std::atomic<uint64_t> accept_failures{0};  // transient accept(2) errors

  std::atomic<uint64_t> requests_received{0};
  std::atomic<uint64_t> responses_ok{0};            // 2xx
  std::atomic<uint64_t> responses_client_error{0};  // 4xx
  std::atomic<uint64_t> responses_shed{0};          // 503 (+Retry-After)
  std::atomic<uint64_t> responses_timeout{0};       // 504
  std::atomic<uint64_t> responses_server_error{0};  // 500
  std::atomic<uint64_t> requests_abandoned{0};      // resolved by a close

  std::atomic<uint64_t> cancels_disconnect{0};  // token fired by peer EOF
  std::atomic<uint64_t> idle_reaped{0};
  std::atomic<uint64_t> slow_closed{0};     // write deadline expired
  std::atomic<uint64_t> overcap_closed{0};  // write buffer over cap
};

class SparqlHttpServer {
 public:
  /// `engine` executes the queries; `dict` renders result terms. Both are
  /// borrowed and must outlive the server.
  SparqlHttpServer(const GovernedEngine* engine, const Dictionary* dict,
                   ServerOptions options);
  ~SparqlHttpServer();

  SparqlHttpServer(const SparqlHttpServer&) = delete;
  SparqlHttpServer& operator=(const SparqlHttpServer&) = delete;

  /// Binds, spawns the worker pool and the event-loop thread. Idempotence:
  /// a second Start() on a running server is an error.
  Status Start();

  /// Graceful drain (see file comment). Blocks until the loop exits and
  /// every dispatched job is accounted. Safe to call more than once and
  /// from signal-driven shutdown paths (but not from a signal handler —
  /// flag the request and call this from the main thread).
  void Shutdown();

  bool running() const { return running_.load(std::memory_order_acquire); }
  /// Bound listen port (valid after Start()).
  uint16_t port() const { return port_; }
  const ServerStats& stats() const { return stats_; }
  /// Live connections owned by the loop (0 after Shutdown()).
  uint64_t active_connections() const {
    return stats_.accepted.load(std::memory_order_relaxed) +
           stats_.conns_rejected.load(std::memory_order_relaxed) -
           stats_.closed.load(std::memory_order_relaxed);
  }

 private:
  struct Connection;

  /// How a finished request resolved, for the stats breakdown.
  enum class ResponseClass : uint8_t {
    kOk,           // 2xx
    kClientError,  // 4xx
    kShed,         // 503
    kTimeout,      // 504
    kServerError,  // 500
    kNone,         // cancelled — no response, clean close
  };

  /// A worker's finished request: complete response bytes for conn_id.
  struct Completion {
    uint64_t conn_id = 0;
    std::string bytes;        // empty iff klass == kNone
    bool close_after = false;
    ResponseClass klass = ResponseClass::kNone;
  };

  void LoopMain();
  void DoAccept();
  void HandleReadable(Connection* conn);
  void AdvanceParser(Connection* conn);
  void DispatchRequest(Connection* conn, const http::Request& request);
  void ExecuteJob(uint64_t conn_id, std::string query_text, bool want_json,
                  bool keep_alive, bool http11, uint64_t timeout_millis,
                  std::shared_ptr<CancellationToken> token);
  void HandleCompletion(Completion done);
  void EnqueueResponse(Connection* conn, const http::Response& response,
                       ResponseClass klass);
  void AppendOutput(Connection* conn, std::string bytes, bool close_after);
  void FlushWrites(Connection* conn);
  void CheckDeadlines();
  void CloseConnection(uint64_t conn_id);
  void CountResponse(ResponseClass klass);
  void Wake();
  /// Milliseconds until the nearest connection deadline (poll timeout).
  int NextTimeoutMillis() const;

  const GovernedEngine* engine_;
  const Dictionary* dict_;
  ServerOptions options_;

  std::atomic<bool> running_{false};
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: [0] polled, [1] written

  std::unique_ptr<ThreadPool> pool_;
  std::thread loop_thread_;

  Mutex mu_;
  bool draining_ AXON_GUARDED_BY(mu_) = false;
  bool started_ AXON_GUARDED_BY(mu_) = false;
  std::deque<Completion> completions_ AXON_GUARDED_BY(mu_);

  // ---- Loop-thread-only state (no lock: single owner) ----
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  uint64_t next_conn_id_ = 1;
  uint64_t jobs_in_flight_ = 0;

  ServerStats stats_;
};

}  // namespace server
}  // namespace axon

#endif  // AXON_SERVER_SERVER_H_
