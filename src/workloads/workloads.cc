#include "workloads/workloads.h"

#include <cassert>

namespace axon {

namespace {

constexpr char kUbPrefix[] =
    "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n";

constexpr char kBpPrefix[] =
    "PREFIX bp: <http://www.biopax.org/release/biopax-level3.owl#>\n"
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n";

constexpr char kGeoPrefix[] =
    "PREFIX geo: <http://www.geonames.org/ontology#>\n"
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n";

constexpr char kSp2bPrefix[] =
    "PREFIX bench: <http://localhost/vocabulary/bench/>\n"
    "PREFIX dc: <http://purl.org/dc/elements/1.1/>\n"
    "PREFIX dcterms: <http://purl.org/dc/terms/>\n"
    "PREFIX foaf: <http://xmlns.com/foaf/0.1/>\n"
    "PREFIX swrc: <http://swrc.ontoware.org/ontology#>\n"
    "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
    "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n";

std::string Ub(const std::string& body) { return kUbPrefix + body; }
std::string Bp(const std::string& body) { return kBpPrefix + body; }
std::string Geo(const std::string& body) { return kGeoPrefix + body; }
std::string S2(const std::string& body) { return kSp2bPrefix + body; }

}  // namespace

const WorkloadQuery& Workload::Get(const std::string& query_name) const {
  for (const WorkloadQuery& q : queries) {
    if (q.name == query_name) return q;
  }
  assert(false && "unknown workload query");
  return queries.front();
}

const Workload& LubmOriginalWorkload() {
  static const Workload w = {
      "lubm-original",
      {
          // LUBM Q2: graduate students with a triangle over their
          // department's university and their undergraduate degree.
          {"Q2", Ub(R"(SELECT ?x ?y ?z WHERE {
             ?x rdf:type ub:GraduateStudent .
             ?y rdf:type ub:University .
             ?z rdf:type ub:Department .
             ?x ub:memberOf ?z .
             ?z ub:subOrganizationOf ?y .
             ?x ub:undergraduateDegreeFrom ?y })"),
           true},
          // LUBM Q4: the descriptive star of professors of one department.
          {"Q4", Ub(R"(SELECT ?x ?y1 ?y2 ?y3 WHERE {
             ?x ub:worksFor <http://www.Department0.University0.edu> .
             ?x rdf:type ub:FullProfessor .
             ?x ub:name ?y1 .
             ?x ub:emailAddress ?y2 .
             ?x ub:telephone ?y3 })"),
           true},
          // LUBM Q7: students taking courses of a given professor.
          {"Q7", Ub(R"(SELECT ?x ?y WHERE {
             ?x rdf:type ub:UndergraduateStudent .
             ?y rdf:type ub:Course .
             ?x ub:takesCourse ?y .
             <http://www.Department0.University0.edu/FullProfessor0>
               ub:teacherOf ?y })"),
           true},
          // LUBM Q8: students of departments of one university, with email.
          {"Q8", Ub(R"(SELECT ?x ?y ?z WHERE {
             ?x rdf:type ub:UndergraduateStudent .
             ?y rdf:type ub:Department .
             ?x ub:memberOf ?y .
             ?y ub:subOrganizationOf <http://www.University0.edu> .
             ?x ub:emailAddress ?z })"),
           true},
          // LUBM Q9: the classic student/faculty/course triangle.
          {"Q9", Ub(R"(SELECT ?x ?y ?z WHERE {
             ?x rdf:type ub:GraduateStudent .
             ?y rdf:type ub:FullProfessor .
             ?z rdf:type ub:GraduateCourse .
             ?x ub:advisor ?y .
             ?y ub:teacherOf ?z .
             ?x ub:takesCourse ?z })"),
           false},
          // LUBM Q12: department heads of one university (chain + star).
          {"Q12", Ub(R"(SELECT ?x ?y WHERE {
             ?x rdf:type ub:FullProfessor .
             ?y rdf:type ub:Department .
             ?x ub:headOf ?y .
             ?y ub:subOrganizationOf <http://www.University0.edu> })"),
           true},
      }};
  return w;
}


const Workload& LubmFullWorkload() {
  static const Workload w = {
      "lubm-full",
      {
          // LUBM Q1: takers of one specific graduate course.
          {"Q1", Ub(R"(SELECT ?x WHERE {
             ?x rdf:type ub:GraduateStudent .
             ?x ub:takesCourse
               <http://www.Department0.University0.edu/GraduateCourse0> })"),
           true},
          // LUBM Q2: the student/department/university triangle.
          {"Q2", LubmOriginalWorkload().Get("Q2").sparql, true},
          // LUBM Q3: publications of one professor.
          {"Q3", Ub(R"(SELECT ?x WHERE {
             ?x rdf:type ub:Publication .
             ?x ub:publicationAuthor
               <http://www.Department0.University0.edu/FullProfessor0> })"),
           true},
          // LUBM Q4: professor star in one department.
          {"Q4", LubmOriginalWorkload().Get("Q4").sparql, true},
          // LUBM Q5: members of one department (closure: Person).
          {"Q5", Ub(R"(SELECT ?x WHERE {
             ?x rdf:type ub:Person .
             ?x ub:memberOf <http://www.Department0.University0.edu> })"),
           true},
          // LUBM Q6: all students (pure closure scan).
          {"Q6", Ub(R"(SELECT ?x WHERE { ?x rdf:type ub:Student })"), false},
          // LUBM Q7: students taking a course of one professor.
          {"Q7", LubmOriginalWorkload().Get("Q7").sparql, true},
          // LUBM Q8: students of one university's departments, with email.
          {"Q8", LubmOriginalWorkload().Get("Q8").sparql, true},
          // LUBM Q9: the student/faculty/course triangle.
          {"Q9", LubmOriginalWorkload().Get("Q9").sparql, false},
          // LUBM Q10: takers of one graduate course (closure: Student).
          {"Q10", Ub(R"(SELECT ?x WHERE {
             ?x rdf:type ub:Student .
             ?x ub:takesCourse
               <http://www.Department0.University0.edu/GraduateCourse1> })"),
           true},
          // LUBM Q11: research groups of one university (chain through the
          // department instead of the transitive subOrganizationOf).
          {"Q11", Ub(R"(SELECT ?x WHERE {
             ?x rdf:type ub:ResearchGroup .
             ?x ub:subOrganizationOf ?d .
             ?d ub:subOrganizationOf <http://www.University0.edu> })"),
           true},
          // LUBM Q12: department heads of one university.
          {"Q12", LubmOriginalWorkload().Get("Q12").sparql, true},
          // LUBM Q13: alumni of one university.
          {"Q13", Ub(R"(SELECT ?x WHERE {
             <http://www.University0.edu> ub:hasAlumnus ?x })"),
           true},
          // LUBM Q14: all undergraduates (full type scan).
          {"Q14", Ub(R"(SELECT ?x WHERE {
             ?x rdf:type ub:UndergraduateStudent })"),
           false},
      }};
  return w;
}

const Workload& LubmModifiedWorkload() {
  static const Workload w = {
      "lubm-modified",
      {
          // Q1 (from LUBM 2): the triangle with all type bounds removed and
          // the stars extended — department and student described by their
          // properties, not their classes.
          {"Q1", Ub(R"(SELECT ?x ?z ?y WHERE {
             ?x ub:memberOf ?z .
             ?x ub:undergraduateDegreeFrom ?y .
             ?x ub:emailAddress ?e .
             ?z ub:subOrganizationOf ?y .
             ?z ub:name ?zn })"),
           true},
          // Q2 (from LUBM 12): heads of departments, unbound university,
          // extended star on the head.
          {"Q2", Ub(R"(SELECT ?x ?y ?u WHERE {
             ?x ub:headOf ?y .
             ?x ub:name ?n .
             ?x ub:emailAddress ?e .
             ?x ub:researchInterest ?r .
             ?y ub:subOrganizationOf ?u .
             ?y ub:name ?yn .
             ?u ub:name ?un })"),
           true},
          // Q3 (from LUBM 3): provably empty — no subject both heads a
          // department and takes a course, so no CS (hence no ECS chain)
          // matches and the preprocessor answers without any joins.
          {"Q3", Ub(R"(SELECT ?x ?d ?c WHERE {
             ?x ub:headOf ?d .
             ?x ub:takesCourse ?c .
             ?d ub:name ?dn .
             ?c ub:name ?cn })"),
           true},
          // Q4 (from LUBM 4): selective bound-department star-chain; the
          // permuted indexes of the competitors shine here (paper: axonDB
          // is outmatched on Q4/Q5).
          {"Q4", Ub(R"(SELECT ?x ?n ?e WHERE {
             ?x ub:worksFor <http://www.Department0.University0.edu> .
             ?x ub:name ?n .
             ?x ub:emailAddress ?e .
             ?x ub:telephone ?t .
             ?x ub:undergraduateDegreeFrom ?u .
             ?u ub:name ?un })"),
           true},
          // Q5: selective single-chain query with a bound course.
          {"Q5", Ub(R"(SELECT ?x ?y WHERE {
             ?x ub:takesCourse <http://www.Department0.University0.edu/Course0> .
             ?x ub:memberOf ?y .
             ?x ub:name ?n .
             ?y ub:subOrganizationOf ?u .
             ?y ub:name ?yn })"),
           true},
          // Q6: advisor chain, two ECSs, moderately selective.
          {"Q6", Ub(R"(SELECT ?x ?a ?d WHERE {
             ?x ub:advisor ?a .
             ?x ub:emailAddress ?e .
             ?a ub:worksFor ?d .
             ?a ub:researchInterest ?r .
             ?d ub:name ?dn })"),
           true},
          // Q7: 3-ECS chain student -> advisor -> department -> university
          // with stars at every node; all nodes unbound.
          {"Q7", Ub(R"(SELECT ?x ?a ?d ?u WHERE {
             ?x ub:advisor ?a .
             ?x ub:name ?xn .
             ?x ub:emailAddress ?xe .
             ?a ub:worksFor ?d .
             ?a ub:name ?an .
             ?a ub:telephone ?at .
             ?d ub:subOrganizationOf ?u .
             ?d ub:name ?dn .
             ?u ub:name ?un })"),
           true},
          // Q8: multi-chain-star — the advisor chain of Q7 plus the
          // teaching chain branching at the advisor.
          {"Q8", Ub(R"(SELECT ?x ?a ?c ?d WHERE {
             ?x ub:advisor ?a .
             ?x ub:takesCourse ?c .
             ?x ub:name ?xn .
             ?a ub:teacherOf ?c .
             ?a ub:name ?an .
             ?a ub:worksFor ?d .
             ?d ub:name ?dn .
             ?c ub:name ?cn })"),
           true},
          // Q9: the Table I motivating query — a long unbound chain
          // publication -> author -> department -> university with a branch
          // to degrees and stars throughout (11 patterns).
          {"Q9", Ub(R"(SELECT ?p ?a ?d ?u ?u2 WHERE {
             ?p ub:publicationAuthor ?a .
             ?p ub:name ?pn .
             ?a ub:worksFor ?d .
             ?a ub:name ?an .
             ?a ub:emailAddress ?ae .
             ?a ub:doctoralDegreeFrom ?u2 .
             ?d ub:subOrganizationOf ?u .
             ?d ub:name ?dn .
             ?u ub:name ?un .
             ?u2 ub:name ?u2n .
             ?u2 ub:hasAlumnus ?a })"),
           false},
          // Q10: course-centric multi-chain: students and teachers meeting
          // at a course, departments on both sides.
          {"Q10", Ub(R"(SELECT ?s ?c ?f ?d WHERE {
             ?s ub:takesCourse ?c .
             ?s ub:memberOf ?d .
             ?s ub:name ?sn .
             ?f ub:teacherOf ?c .
             ?f ub:worksFor ?d .
             ?f ub:name ?fn .
             ?c ub:name ?cn .
             ?d ub:name ?dn })"),
           false},
          // Q11: 4-ECS chain with stars — student, advisor, department,
          // university, plus alumni back-edge (13 patterns).
          {"Q11", Ub(R"(SELECT ?x ?a ?d ?u WHERE {
             ?x ub:advisor ?a .
             ?x ub:name ?xn .
             ?x ub:memberOf ?d .
             ?a ub:worksFor ?d .
             ?a ub:name ?an .
             ?a ub:undergraduateDegreeFrom ?u .
             ?d ub:subOrganizationOf ?u .
             ?d ub:name ?dn .
             ?u ub:hasAlumnus ?x2 .
             ?x2 ub:memberOf ?d2 .
             ?u ub:name ?un .
             ?d2 ub:name ?d2n .
             ?x2 ub:name ?x2n })"),
           false},
          // Q12: the widest unbound multi-chain-star (14 patterns): the
          // publication chain of Q9 joined with the teaching chain of Q10.
          {"Q12", Ub(R"(SELECT ?p ?a ?c ?s ?d ?u WHERE {
             ?p ub:publicationAuthor ?a .
             ?p ub:name ?pn .
             ?a ub:teacherOf ?c .
             ?a ub:name ?an .
             ?a ub:worksFor ?d .
             ?a ub:researchInterest ?ar .
             ?s ub:takesCourse ?c .
             ?s ub:name ?sn .
             ?s ub:memberOf ?d .
             ?c ub:name ?cn .
             ?d ub:subOrganizationOf ?u .
             ?d ub:name ?dn .
             ?u ub:name ?un .
             ?u ub:hasAlumnus ?a })"),
           false},
      }};
  return w;
}

const Workload& ReactomeWorkload() {
  static const Workload w = {
      "reactome",
      {
          // Q1: one chain, 3 query ECSs equivalent depth: pathway ->
          // reaction -> entity, descriptive stars, bound organism filter.
          {"Q1", Bp(R"(SELECT ?pw ?r ?e WHERE {
             ?pw bp:pathwayComponent ?r .
             ?pw bp:organism "Homo sapiens" .
             ?pw bp:displayName ?pn .
             ?r bp:left ?e .
             ?r bp:displayName ?rn .
             ?e bp:displayName ?en })"),
           true},
          // Q2: reaction precedence chain (2 ECSs) with stars.
          {"Q2", Bp(R"(SELECT ?r1 ?r2 ?e WHERE {
             ?r1 bp:precedingEvent ?r2 .
             ?r1 bp:displayName ?n1 .
             ?r2 bp:left ?e .
             ?r2 bp:displayName ?n2 .
             ?e bp:displayName ?en })"),
           true},
          // Q3: entity reference chain: reaction -> entity -> reference ->
          // xref (3 ECSs), all unbound.
          {"Q3", Bp(R"(SELECT ?r ?e ?ref ?x WHERE {
             ?r bp:left ?e .
             ?r bp:displayName ?rn .
             ?e bp:entityReference ?ref .
             ?e bp:displayName ?en .
             ?ref bp:xref ?x .
             ?ref bp:displayName ?refn .
             ?x bp:id ?xid })"),
           true},
          // Q4: catalysis branch joined with the reaction's pathway.
          {"Q4", Bp(R"(SELECT ?cat ?ctrl ?r ?pw WHERE {
             ?cat bp:controller ?ctrl .
             ?cat bp:controlled ?r .
             ?cat bp:controlType ?ct .
             ?ctrl bp:displayName ?cn .
             ?r bp:displayName ?rn .
             ?pw bp:pathwayComponent ?r .
             ?pw bp:displayName ?pn })"),
           true},
          // Q5: pathway containment chain (pathway -> subpathway ->
          // reaction), long path, all unbound.
          {"Q5", Bp(R"(SELECT ?p1 ?p2 ?r WHERE {
             ?p1 bp:pathwayComponent ?p2 .
             ?p1 bp:displayName ?n1 .
             ?p1 bp:organism ?o1 .
             ?p2 bp:pathwayComponent ?r .
             ?p2 bp:organism ?o2 .
             ?r bp:precedingEvent ?rp .
             ?r bp:displayName ?rn .
             ?rp bp:displayName ?rpn })"),
           false},
          // Q6: two chains meeting at an entity: reaction inputs that are
          // complexes with components carrying references.
          {"Q6", Bp(R"(SELECT ?r ?e ?comp ?ref WHERE {
             ?r bp:left ?e .
             ?r bp:displayName ?rn .
             ?e bp:component ?comp .
             ?e bp:displayName ?en .
             ?comp bp:entityReference ?ref .
             ?comp bp:displayName ?compn .
             ?ref bp:displayName ?refn })"),
           false},
          // Q7: three chains around a reaction: precedence, catalysis and
          // entity reference (multi-chain-star).
          {"Q7", Bp(R"(SELECT ?r1 ?r2 ?ctrl ?e ?ref WHERE {
             ?r1 bp:precedingEvent ?r2 .
             ?r1 bp:displayName ?n1 .
             ?r1 bp:left ?e .
             ?cat bp:controlled ?r1 .
             ?cat bp:controller ?ctrl .
             ?ctrl bp:displayName ?cn .
             ?r2 bp:displayName ?n2 .
             ?e bp:entityReference ?ref .
             ?e bp:displayName ?en .
             ?ref bp:displayName ?refn })"),
           false},
          // Q8: the Table I motivating query — the longest multi-chain-star:
          // pathway containment + precedence + reference chains, 12
          // patterns, every node unbound.
          {"Q8", Bp(R"(SELECT ?p1 ?p2 ?r1 ?r2 ?e ?ref WHERE {
             ?p1 bp:pathwayComponent ?p2 .
             ?p1 bp:displayName ?pn1 .
             ?p2 bp:pathwayComponent ?r1 .
             ?p2 bp:displayName ?pn2 .
             ?r1 bp:precedingEvent ?r2 .
             ?r1 bp:displayName ?rn1 .
             ?r2 bp:left ?e .
             ?r2 bp:displayName ?rn2 .
             ?e bp:entityReference ?ref .
             ?e bp:displayName ?en .
             ?ref bp:displayName ?refn .
             ?e bp:cellularLocation ?loc })"),
           false},
      }};
  return w;
}

const Workload& GeonamesWorkload() {
  static const Workload w = {
      "geonames",
      {
          // Q1: single parent chain with name stars.
          {"Q1", Geo(R"(SELECT ?f ?p WHERE {
             ?f geo:parentFeature ?p .
             ?f geo:name ?fn .
             ?p geo:name ?pn .
             ?p geo:featureClass ?pc })"),
           true},
          // Q2: two-hop administrative chain.
          {"Q2", Geo(R"(SELECT ?f ?p ?g WHERE {
             ?f geo:parentFeature ?p .
             ?f geo:name ?fn .
             ?p geo:parentFeature ?g .
             ?p geo:name ?pn .
             ?g geo:name ?gn })"),
           true},
          // Q3: chain + population star (rarer CS: only some features carry
          // population).
          {"Q3", Geo(R"(SELECT ?f ?p WHERE {
             ?f geo:parentFeature ?p .
             ?f geo:population ?pop .
             ?f geo:name ?fn .
             ?p geo:name ?pn .
             ?p geo:countryCode ?cc })"),
           true},
          // Q4: neighbour lateral chain joined with the parent chain.
          {"Q4", Geo(R"(SELECT ?f ?n ?p WHERE {
             ?f geo:neighbour ?n .
             ?f geo:name ?fn .
             ?n geo:parentFeature ?p .
             ?n geo:name ?nn .
             ?p geo:name ?pn })"),
           false},
          // Q5: three-hop chain, all unbound, wide stars.
          {"Q5", Geo(R"(SELECT ?f ?p ?g ?c WHERE {
             ?f geo:parentFeature ?p .
             ?f geo:name ?fn .
             ?f geo:featureClass ?fc .
             ?p geo:parentFeature ?g .
             ?p geo:name ?pn .
             ?g geo:parentFeature ?c .
             ?g geo:name ?gn .
             ?c geo:name ?cn })"),
           false},
          // Q6: multi-chain: nearby + parent chains meeting at a feature
          // with a wikipedia annotation.
          {"Q6", Geo(R"(SELECT ?a ?b ?p WHERE {
             ?a geo:nearby ?b .
             ?a geo:name ?an .
             ?b geo:parentFeature ?p .
             ?b geo:wikipediaArticle ?w .
             ?b geo:name ?bn .
             ?p geo:name ?pn })"),
           false},
      }};
  return w;
}

const Workload& Sp2bWorkload() {
  static const Workload w = {
      "sp2b",
      {
          // Q1: conjunctive baseline — journal articles with titles. The
          // one pure-BGP query, so the extended queries' leaves have a
          // directly-benched native reference.
          {"Q1", S2(R"(SELECT ?article ?journal ?title WHERE {
             ?article rdf:type bench:Article .
             ?article swrc:journal ?journal .
             ?article dc:title ?title })"),
           true},
          // Q2: OPTIONAL abstract, deterministic ORDER BY title.
          {"Q2", S2(R"(SELECT ?article ?title ?abs WHERE {
             ?article rdf:type bench:Article .
             ?article dc:title ?title .
             ?article dcterms:issued ?year .
             OPTIONAL { ?article bench:abstract ?abs }
           } ORDER BY ?title)"),
           true},
          // Q3: numeric FILTER range over publication years.
          {"Q3", S2(R"(SELECT ?article ?year WHERE {
             ?article rdf:type bench:Article .
             ?article dcterms:issued ?year .
             FILTER ( ?year >= "1991"^^<http://www.w3.org/2001/XMLSchema#integer> && ?year < "1993"^^<http://www.w3.org/2001/XMLSchema#integer> )
           })"),
           true},
          // Q4: UNION of the two publication kinds, deduplicated.
          {"Q4", S2(R"(SELECT DISTINCT ?pub ?title WHERE {
             { ?pub rdf:type bench:Article . ?pub dc:title ?title }
             UNION
             { ?pub rdf:type bench:Inproceedings . ?pub dc:title ?title }
           })"),
           false},
          // Q5: publications per author (GROUP BY + COUNT), ordered.
          {"Q5", S2(R"(SELECT ?person (COUNT(?pub) AS ?n) WHERE {
             ?pub dc:creator ?person .
           } GROUP BY ?person ORDER BY ?person)"),
           false},
          // Q6: negation-as-failure via OPTIONAL + !bound — publications
          // without an abstract.
          {"Q6", S2(R"(SELECT ?pub ?title WHERE {
             ?pub dc:title ?title .
             ?pub dcterms:issued ?year .
             OPTIONAL { ?pub bench:abstract ?abs }
             FILTER ( ! bound(?abs) )
           })"),
           false},
          // Q7: ORDER BY DESC + tie-break key, LIMIT/OFFSET paging.
          {"Q7", S2(R"(SELECT ?title ?year WHERE {
             ?pub rdf:type bench:Article .
             ?pub dc:title ?title .
             ?pub dcterms:issued ?year .
           } ORDER BY DESC(?year) ?title LIMIT 10 OFFSET 5)"),
           true},
          // Q8: top-level BGP joined with a UNION block (persons that
          // edited proceedings or authored anything).
          {"Q8", S2(R"(SELECT DISTINCT ?name WHERE {
             ?person foaf:name ?name .
             { ?proc swrc:editor ?person }
             UNION
             { ?pub dc:creator ?person }
           } ORDER BY ?name)"),
           false},
          // Q9: COUNT(*) per publication year.
          {"Q9", S2(R"(SELECT ?year (COUNT(*) AS ?total) WHERE {
             ?pub rdf:type bench:Article .
             ?pub dcterms:issued ?year .
           } GROUP BY ?year ORDER BY ?year)"),
           false},
          // Q10: equality filter + OPTIONAL seeAlso link.
          {"Q10", S2(R"(SELECT ?pub ?see WHERE {
             ?pub dc:title ?title .
             ?pub dcterms:issued ?year .
             FILTER ( ?year = "1991"^^<http://www.w3.org/2001/XMLSchema#integer> )
             OPTIONAL { ?pub rdfs:seeAlso ?see }
           })"),
           true},
          // Q11: global COUNT(DISTINCT) — one-row aggregate, no grouping.
          {"Q11", S2(R"(SELECT (COUNT(DISTINCT ?person) AS ?authors) WHERE {
             ?pub dc:creator ?person .
           })"),
           false},
      }};
  return w;
}

}  // namespace axon
