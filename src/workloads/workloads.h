// The evaluation query sets (paper Sec. V.A, "Datasets and Queries"),
// written against the vocabularies of our dataset generators:
//
//  * LUBM original — the 6 standard LUBM queries the paper selects
//    (2, 4, 7, 8, 9, 12), rewritten with the materialized subclass closure
//    replacing inference (Fig. 6a).
//  * LUBM modified — the 12 low-selectivity multi-chain-star queries: the
//    paper's modifications of queries 2, 3, 4, 8, 10, 11, 12 (bound nodes
//    turned into variables, characteristic sets extended) plus 5 new ones,
//    ordered by complexity; Q1-Q8 selective, Q9-Q12 unselective (Fig. 6b).
//  * Reactome — 8 queries of increasing chain count (1-3) and query ECSs
//    (3-6) over the pathway graph (Fig. 6c).
//  * Geonames — 6 queries over the feature hierarchy (Fig. 6d).
//
// The paper does not print its query texts; these are reconstructions that
// preserve the documented *shape* (number of triple patterns, chain/star
// structure, selectivity ordering). Each query records its pattern and
// chain counts so benches can report the paper's complexity metric
// (#patterns × #chains).

#ifndef AXON_WORKLOADS_WORKLOADS_H_
#define AXON_WORKLOADS_WORKLOADS_H_

#include <string>
#include <vector>

namespace axon {

struct WorkloadQuery {
  std::string name;    // "Q1", "Q2", ...
  std::string sparql;
  bool selective = true;  // the paper's selectivity classification
};

struct Workload {
  std::string name;
  std::vector<WorkloadQuery> queries;

  const WorkloadQuery& Get(const std::string& query_name) const;
};

const Workload& LubmOriginalWorkload();

/// The complete 14-query standard LUBM set (queries 1-14), rewritten
/// against the materialized closure (no inference). The paper benches only
/// the 6 most challenging (LubmOriginalWorkload); the full set is provided
/// for completeness and coverage testing.
const Workload& LubmFullWorkload();
const Workload& LubmModifiedWorkload();
const Workload& ReactomeWorkload();
const Workload& GeonamesWorkload();

/// SP²Bench-inspired publication-graph queries over the sp2b generator
/// (datagen/sp2b_generator.h). Unlike the four conjunctive workloads
/// above, these exercise the extended surface end to end: OPTIONAL,
/// UNION, FILTER expressions (ranges, !bound), DISTINCT, ORDER BY,
/// LIMIT/OFFSET and GROUP BY / COUNT.
const Workload& Sp2bWorkload();

}  // namespace axon

#endif  // AXON_WORKLOADS_WORKLOADS_H_
