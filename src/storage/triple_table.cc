#include "storage/triple_table.h"

#include <algorithm>
#include <cstring>

#include "util/varint.h"

namespace axon {

const char* PermutationName(Permutation p) {
  switch (p) {
    case Permutation::kSpo: return "SPO";
    case Permutation::kSop: return "SOP";
    case Permutation::kPso: return "PSO";
    case Permutation::kPos: return "POS";
    case Permutation::kOsp: return "OSP";
    case Permutation::kOps: return "OPS";
  }
  return "?";
}

std::array<TermId, 3> PermutationKey(Permutation perm, const Triple& t) {
  switch (perm) {
    case Permutation::kSpo: return {t.s, t.p, t.o};
    case Permutation::kSop: return {t.s, t.o, t.p};
    case Permutation::kPso: return {t.p, t.s, t.o};
    case Permutation::kPos: return {t.p, t.o, t.s};
    case Permutation::kOsp: return {t.o, t.s, t.p};
    case Permutation::kOps: return {t.o, t.p, t.s};
  }
  return {t.s, t.p, t.o};
}

void TripleTable::Sort(Permutation perm) {
  assert(!borrowed_ && "cannot sort a borrowed (mapped) table");
  std::sort(rows_.begin(), rows_.end(),
            [perm](const Triple& a, const Triple& b) {
              return PermutationKey(perm, a) < PermutationKey(perm, b);
            });
}

void TripleTable::Dedup() {
  assert(!borrowed_ && "cannot dedup a borrowed (mapped) table");
  rows_.erase(std::unique(rows_.begin(), rows_.end()), rows_.end());
}

RowRange TripleTable::EqualRange(Permutation perm, TermId major, TermId mid,
                                 TermId minor) const {
  std::span<const Triple> all = rows();
  // Build lower/upper probe keys: bound components fixed, unbound components
  // span [0, UINT32_MAX].
  constexpr TermId kMinTerm{0};
  constexpr TermId kMaxTerm{UINT32_MAX};
  std::array<TermId, 3> lo_key = {major, mid == kInvalidId ? kMinTerm : mid,
                                  minor == kInvalidId ? kMinTerm : minor};
  std::array<TermId, 3> hi_key = {major, mid == kInvalidId ? kMaxTerm : mid,
                                  minor == kInvalidId ? kMaxTerm : minor};
  auto cmp = [perm](const Triple& t, const std::array<TermId, 3>& key) {
    return PermutationKey(perm, t) < key;
  };
  auto cmp2 = [perm](const std::array<TermId, 3>& key, const Triple& t) {
    return key < PermutationKey(perm, t);
  };
  auto lo = std::lower_bound(all.begin(), all.end(), lo_key, cmp);
  auto hi = std::upper_bound(lo, all.end(), hi_key, cmp2);
  return RowRange{static_cast<uint64_t>(lo - all.begin()),
                  static_cast<uint64_t>(hi - all.begin())};
}

void TripleTable::SerializeTo(std::string* out) const {
  std::span<const Triple> all = rows();
  PutVarint64(out, all.size());
  static_assert(sizeof(Triple) == 12, "Triple must be 3 packed u32");
  out->append(reinterpret_cast<const char*>(all.data()),
              all.size() * sizeof(Triple));
}

void TripleTable::SerializeRaw(std::string* out) const {
  std::span<const Triple> all = rows();
  out->append(reinterpret_cast<const char*>(all.data()),
              all.size() * sizeof(Triple));
}

Result<TripleTable> TripleTable::FromRaw(std::string_view bytes) {
  if (bytes.size() % sizeof(Triple) != 0) {
    return Status::Corruption("triple table: raw image size not a multiple "
                              "of the row size");
  }
  size_t n = bytes.size() / sizeof(Triple);
  TripleTable t;
  if (reinterpret_cast<uintptr_t>(bytes.data()) % alignof(Triple) == 0) {
    t.borrowed_ = true;
    t.view_ = std::span<const Triple>(
        reinterpret_cast<const Triple*>(bytes.data()), n);
  } else {
    // Misaligned mapping (should not happen with aligned sections, but a
    // foreign file might): fall back to an owned copy.
    t.rows_.resize(n);
    if (!bytes.empty()) {
      std::memcpy(t.rows_.data(), bytes.data(), bytes.size());
    }
  }
  return t;
}

Result<TripleTable> TripleTable::FromRawOwned(std::string_view bytes) {
  if (bytes.size() % sizeof(Triple) != 0) {
    return Status::Corruption("triple table: raw image size not a multiple "
                              "of the row size");
  }
  TripleTable t;
  t.rows_.resize(bytes.size() / sizeof(Triple));
  // memcpy with a null pointer is UB even at size 0 (empty table).
  if (!bytes.empty()) {
    std::memcpy(t.rows_.data(), bytes.data(), bytes.size());
  }
  return t;
}

Result<TripleTable> TripleTable::Deserialize(std::string_view data,
                                             size_t* pos) {
  const char* p = data.data() + *pos;
  const char* limit = data.data() + data.size();
  uint64_t n = 0;
  p = GetVarint64(p, limit, &n);
  if (p == nullptr) return Status::Corruption("triple table: row count");
  if (p + n * sizeof(Triple) > limit) {
    return Status::Corruption("triple table: truncated rows");
  }
  TripleTable t;
  t.rows_.resize(n);
  if (n > 0) {
    std::memcpy(t.rows_.data(), p, n * sizeof(Triple));
  }
  *pos = (p + n * sizeof(Triple)) - data.data();
  return t;
}

}  // namespace axon
