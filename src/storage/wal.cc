#include "storage/wal.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/failpoint.h"
#include "util/hash.h"
#include "util/varint.h"

namespace axon {

namespace {
constexpr size_t kFrameHeader = 4;   // fixed32 payload length
constexpr size_t kFrameFooter = 8;   // fixed64 fnv1a of the payload
}  // namespace

Status WalWriter::Open(const std::string& path, uint64_t trusted_bytes) {
  if (open_) return Status::Internal("WalWriter already open");
  path_ = path;
  struct stat st;
  if (::stat(path.c_str(), &st) == 0 &&
      static_cast<uint64_t>(st.st_size) > trusted_bytes) {
    AXON_FAILPOINT_STATUS("wal.truncate");
    if (::truncate(path.c_str(), static_cast<off_t>(trusted_bytes)) != 0) {
      return Status::IOError("wal truncate " + path + ": " +
                             std::strerror(errno));
    }
  }
  AXON_RETURN_NOT_OK(writer_.Open(path, FileWriter::Mode::kAppend));
  open_ = true;
  broken_ = false;
  return Status::OK();
}

Status WalWriter::Reset(const std::string& path) {
  AXON_RETURN_NOT_OK(Close());
  AXON_FAILPOINT_STATUS("wal.truncate");
  path_ = path;
  AXON_RETURN_NOT_OK(writer_.Open(path, FileWriter::Mode::kTruncate));
  // The empty log must be durable before the caller forgets the delta. On
  // failure the writer must not be left open while open_ is false — a
  // retried Reset would then find the file handle still held and fail
  // forever ("FileWriter already open").
  Status synced = writer_.Sync();
  if (!synced.ok()) {
    (void)writer_.Close();
    return synced;
  }
  open_ = true;
  broken_ = false;
  return Status::OK();
}

Status WalWriter::Append(std::string_view record) {
  if (!open_) return Status::Internal("WalWriter not open");
  if (broken_) {
    return Status::IOError("wal " + path_ +
                           ": writer is broken after a failed self-heal");
  }
  AXON_FAILPOINT_STATUS("wal.append");
  const uint64_t start = writer_.offset();
  std::string frame;
  frame.reserve(kFrameHeader + record.size() + kFrameFooter);
  PutFixed32(&frame, static_cast<uint32_t>(record.size()));
  frame.append(record);
  PutFixed64(&frame, HashBytes(record.data(), record.size()));
  Status st = writer_.Append(frame);
  if (st.ok()) return Status::OK();
  // Self-heal: drop the partial frame so the log stays a clean prefix of
  // whole frames. Close (discarding buffered bytes is fine — they were
  // never acknowledged), truncate to the pre-append boundary, reopen.
  (void)writer_.Close();
  open_ = false;
  if (::truncate(path_.c_str(), static_cast<off_t>(start)) != 0) {
    broken_ = true;
    return st;
  }
  Status reopen = writer_.Open(path_, FileWriter::Mode::kAppend);
  if (!reopen.ok() || writer_.offset() != start) {
    broken_ = true;
    return st;
  }
  open_ = true;
  return st;  // the append itself still failed; op must not be acknowledged
}

Status WalWriter::Sync() {
  if (!open_) return Status::Internal("WalWriter not open");
  AXON_FAILPOINT_STATUS("wal.sync");
  return writer_.Sync();
}

Status WalWriter::Close() {
  if (!open_) return Status::OK();
  open_ = false;
  return writer_.Close();
}

Result<WalReplayResult> ReplayWal(
    const std::string& path,
    const std::function<Status(std::string_view)>& apply) {
  WalReplayResult result;
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return result;  // no log: nothing to replay
  }
  std::string bytes;
  AXON_RETURN_NOT_OK(ReadFileToString(path, &bytes));
  size_t pos = 0;
  while (pos + kFrameHeader + kFrameFooter <= bytes.size()) {
    uint32_t len = DecodeFixed32(bytes.data() + pos);
    if (len > bytes.size() - pos - kFrameHeader - kFrameFooter) {
      result.torn = true;  // frame extends past the file: torn tail
      break;
    }
    const char* payload = bytes.data() + pos + kFrameHeader;
    uint64_t expected = DecodeFixed64(payload + len);
    if (HashBytes(payload, len) != expected) {
      result.torn = true;  // half-written or bit-rotted frame
      break;
    }
    AXON_RETURN_NOT_OK(apply(std::string_view(payload, len)));
    pos += kFrameHeader + len + kFrameFooter;
    ++result.records;
    result.valid_bytes = pos;
  }
  if (pos < bytes.size() && !result.torn) result.torn = true;
  return result;
}

}  // namespace axon
