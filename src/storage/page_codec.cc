#include "storage/page_codec.h"

#include <algorithm>

#include "util/failpoint.h"
#include "util/hash.h"
#include "util/varint.h"

namespace axon {
namespace pagecodec {

namespace {

/// FNV-1a 64 folded to 32 bits (xor-fold keeps both halves significant).
uint32_t Checksum(std::string_view body) {
  uint64_t h = HashBytes(body.data(), body.size());
  return static_cast<uint32_t>(h ^ (h >> 32));
}

/// Zigzag encoding maps signed deltas to small unsigned varints.
uint64_t ZigzagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

int64_t ZigzagDecode(uint64_t v) {
  return static_cast<int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

void PutComponentDelta(std::string* out, TermId cur, TermId prev) {
  PutVarint64(out, ZigzagEncode(static_cast<int64_t>(cur.value()) -
                                static_cast<int64_t>(prev.value())));
}

/// Decodes one row at `*p`: absolute components for a restart row, zigzag
/// deltas against `*prev` otherwise. Advances *p and *prev. nullptr on any
/// bounds or range violation.
const char* DecodeRow(const char* p, const char* limit, bool restart,
                      Triple* prev) {
  uint32_t abs_comp[3];
  if (restart) {
    for (auto& c : abs_comp) {
      p = GetVarint32(p, limit, &c);
      if (p == nullptr) return nullptr;
    }
  } else {
    const uint32_t prev_comp[3] = {prev->s.value(), prev->p.value(),
                                   prev->o.value()};
    for (int i = 0; i < 3; ++i) {
      uint64_t zz = 0;
      p = GetVarint64(p, limit, &zz);
      if (p == nullptr) return nullptr;
      int64_t v = static_cast<int64_t>(prev_comp[i]) + ZigzagDecode(zz);
      if (v < 0 || v > static_cast<int64_t>(UINT32_MAX)) return nullptr;
      abs_comp[i] = static_cast<uint32_t>(v);
    }
  }
  *prev = Triple{TermId(abs_comp[0]), TermId(abs_comp[1]), TermId(abs_comp[2])};
  return p;
}

Status VerifyAndParse(std::string_view page, PageView* view) {
  if (page.size() < sizeof(uint32_t) + 2) {
    return Status::Corruption("page: truncated header");
  }
  std::string_view body = page.substr(sizeof(uint32_t));
  if (DecodeFixed32(page.data()) != Checksum(body)) {
    return Status::Corruption("page: checksum mismatch");
  }
  const char* p = body.data();
  const char* limit = p + body.size();
  uint32_t num_rows = 0;
  uint32_t num_restarts = 0;
  p = GetVarint32(p, limit, &num_rows);
  if (p != nullptr) p = GetVarint32(p, limit, &num_restarts);
  if (p == nullptr || num_rows == 0) {
    return Status::Corruption("page: bad row count");
  }
  if (num_restarts != (num_rows + kRestartInterval - 1) / kRestartInterval) {
    return Status::Corruption("page: restart count mismatch");
  }
  std::vector<uint32_t> restarts;
  restarts.reserve(num_restarts);
  uint32_t off = 0;
  for (uint32_t i = 0; i < num_restarts; ++i) {
    uint32_t delta = 0;
    p = GetVarint32(p, limit, &delta);
    if (p == nullptr || (i == 0 && delta != 0) || (i > 0 && delta == 0)) {
      return Status::Corruption("page: bad restart offset");
    }
    off += delta;
    restarts.push_back(off);
  }
  std::string_view payload(p, static_cast<size_t>(limit - p));
  // Every encoded row is at least 3 bytes (three one-byte varints), so a
  // hostile row count cannot force an oversized decode allocation.
  if (static_cast<uint64_t>(num_rows) * 3 > payload.size() ||
      restarts.back() >= payload.size()) {
    return Status::Corruption("page: row count exceeds payload");
  }
  if (view != nullptr) {
    view->num_rows = num_rows;
    view->restarts = std::move(restarts);
    view->payload = payload;
  }
  return Status::OK();
}

}  // namespace

PageBuilder::PageBuilder(uint32_t page_bytes)
    : page_bytes_(std::max(page_bytes, kMinPageBytes)) {}

bool PageBuilder::TryAdd(const Triple& t) {
  const bool restart = num_rows_ % kRestartInterval == 0;
  std::string enc;
  if (restart) {
    PutVarint32(&enc, t.s.value());
    PutVarint32(&enc, t.p.value());
    PutVarint32(&enc, t.o.value());
  } else {
    PutComponentDelta(&enc, t.s, prev_.s);
    PutComponentDelta(&enc, t.p, prev_.p);
    PutComponentDelta(&enc, t.o, prev_.o);
  }
  uint32_t new_restart_bytes = restart_table_bytes_;
  if (restart) {
    std::string delta_enc;
    uint32_t prev_off = restarts_.empty() ? 0 : restarts_.back();
    PutVarint32(&delta_enc, static_cast<uint32_t>(payload_.size()) - prev_off);
    new_restart_bytes += static_cast<uint32_t>(delta_enc.size());
  }
  // Header: checksum (4) + num_rows/num_restarts varints (<= 5 each) +
  // the restart offset table.
  const uint64_t projected =
      4 + 5 + 5 + new_restart_bytes + payload_.size() + enc.size();
  if (num_rows_ > 0 && projected > page_bytes_) return false;
  if (restart) {
    restarts_.push_back(static_cast<uint32_t>(payload_.size()));
    restart_table_bytes_ = new_restart_bytes;
  }
  payload_ += enc;
  prev_ = t;
  ++num_rows_;
  return true;
}

std::string PageBuilder::Finish() {
  std::string body;
  PutVarint32(&body, num_rows_);
  PutVarint32(&body, static_cast<uint32_t>(restarts_.size()));
  uint32_t prev_off = 0;
  for (uint32_t off : restarts_) {
    PutVarint32(&body, off - prev_off);
    prev_off = off;
  }
  body += payload_;
  std::string page;
  page.reserve(body.size() + sizeof(uint32_t));
  PutFixed32(&page, Checksum(body));
  page += body;
  num_rows_ = 0;
  prev_ = Triple{};
  payload_.clear();
  restarts_.clear();
  restart_table_bytes_ = 0;
  return page;
}

Status ParsePage(std::string_view page, PageView* view) {
  const failpoint::Fault fault = AXON_FAILPOINT_EVAL("page.decode");
  if (fault) {
    failpoint::Execute("page.decode", fault);
    if (fault.action == failpoint::Action::kError) {
      return failpoint::InjectedError("page.decode");
    }
    if (fault.action == failpoint::Action::kBitflip && !page.empty()) {
      // Flip one deterministic bit in a copy — the checksum must reject
      // it. Views never escape from the flipped copy: even in the
      // astronomically unlikely event of a checksum collision, the parse
      // is discarded and Corruption returned.
      std::string flipped(page);
      const size_t bit = fault.arg % (flipped.size() * 8);
      flipped[bit / 8] = static_cast<char>(
          static_cast<unsigned char>(flipped[bit / 8]) ^ (1u << (bit % 8)));
      Status st = VerifyAndParse(flipped, nullptr);
      return st.ok() ? Status::Corruption("page: injected bitflip") : st;
    }
  }
  return VerifyAndParse(page, view);
}

Status DecodeRows(const PageView& view, std::vector<Triple>* out) {
  const char* base = view.payload.data();
  const char* limit = base + view.payload.size();
  const char* p = base;
  Triple prev{};
  out->reserve(out->size() + view.num_rows);
  for (uint32_t row = 0; row < view.num_rows; ++row) {
    const bool restart = row % kRestartInterval == 0;
    if (restart &&
        static_cast<size_t>(p - base) != view.restarts[row / kRestartInterval]) {
      return Status::Corruption("page: restart offset out of sync");
    }
    p = DecodeRow(p, limit, restart, &prev);
    if (p == nullptr) return Status::Corruption("page: bad row encoding");
    out->push_back(prev);
  }
  if (p != limit) return Status::Corruption("page: trailing payload bytes");
  return Status::OK();
}

Status DecodeRowAt(const PageView& view, uint32_t slot, Triple* out) {
  if (slot >= view.num_rows) {
    return Status::OutOfRange("page: slot out of range");
  }
  const uint32_t run = slot / kRestartInterval;
  const char* base = view.payload.data();
  const char* limit = base + view.payload.size();
  const char* p = base + view.restarts[run];
  Triple prev{};
  for (uint32_t row = run * kRestartInterval; row <= slot; ++row) {
    p = DecodeRow(p, limit, row % kRestartInterval == 0, &prev);
    if (p == nullptr) return Status::Corruption("page: bad row encoding");
  }
  *out = prev;
  return Status::OK();
}

}  // namespace pagecodec
}  // namespace axon
