// Buffer manager: a bounded pool of decoded triple-page frames with
// pin/unpin reference counting and clock (second-chance) eviction.
//
// Paged tables (storage/paged_table.h) keep their compressed page bytes
// resident (owned or mmapped) but decode rows on demand: Pin() returns a
// frame holding the decoded rows of one page, loading it through the
// table's registered PageLoader on a miss. Pinned frames are never
// evicted; unpinned frames are reclaimed by a clock sweep whenever decoded
// residency exceeds the pool target. Frame allocation is charged to a
// pool-level MemoryBudget (charged on load, refunded on eviction), so
// decoded residency is observable — and, with a hard limit, enforceable —
// through the same accounting primitive the per-query budgets use.
//
// Contracts (DESIGN.md §14):
//   * Pin discipline: every Pin() is balanced by exactly one unpin (the
//     PinnedPage destructor). Holding a pin keeps the frame's row span
//     valid and the frame ineligible for eviction.
//   * Lock order: mu_ is a leaf lock — no callback (loader, budget) runs
//     under it; page loads execute outside the lock with waiters parked
//     on cv_. Never acquire another lock while holding mu_.
//   * Eviction invariants: only frames with pins == 0 and loading == false
//     are evicted; resident_bytes_ always equals the sum of loaded frame
//     bytes; a failed load leaves a zero-byte tombstone frame that the
//     next Pin() retries (transient faults heal).
//
// Thread-safe. Failpoint site "page.read" fires on every frame load.

#ifndef AXON_STORAGE_BUFFER_MANAGER_H_
#define AXON_STORAGE_BUFFER_MANAGER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "rdf/triple.h"
#include "util/annotations.h"
#include "util/mutex.h"
#include "util/resource_governor.h"
#include "util/status.h"

namespace axon {

class BufferManager;

struct BufferOptions {
  /// Target bound on decoded frame bytes. The clock sweep evicts unpinned
  /// frames past this; concurrently pinned working sets may transiently
  /// exceed it (correctness over strictness — a query must be able to pin
  /// the page it is scanning).
  uint64_t pool_bytes = 4ull << 20;
  /// Hard cap enforced through the pool MemoryBudget; 0 = track only.
  /// With a cap set, a Pin() that cannot evict its way under the cap
  /// fails with ResourceExhausted instead of overshooting.
  uint64_t hard_limit_bytes = 0;
};

/// Monotonic counters (never reset). pages_read counts frame loads
/// (misses), pin_hits counts pins served from a resident frame.
struct BufferStats {
  uint64_t pages_read = 0;
  uint64_t pages_evicted = 0;
  uint64_t pin_hits = 0;
};

/// RAII pin on one decoded page frame. The row span stays valid exactly
/// as long as the pin is held. Move-only.
class PinnedPage {
 public:
  PinnedPage() = default;
  PinnedPage(PinnedPage&& other) noexcept
      : manager_(other.manager_), frame_(other.frame_) {
    other.manager_ = nullptr;
    other.frame_ = nullptr;
  }
  PinnedPage& operator=(PinnedPage&& other) noexcept {
    if (this != &other) {
      Release();
      manager_ = other.manager_;
      frame_ = other.frame_;
      other.manager_ = nullptr;
      other.frame_ = nullptr;
    }
    return *this;
  }
  ~PinnedPage() { Release(); }

  PinnedPage(const PinnedPage&) = delete;
  PinnedPage& operator=(const PinnedPage&) = delete;

  bool valid() const { return frame_ != nullptr; }
  std::span<const Triple> rows() const;

 private:
  friend class BufferManager;
  struct Frame;
  PinnedPage(BufferManager* manager, Frame* frame)
      : manager_(manager), frame_(frame) {}
  void Release();

  BufferManager* manager_ = nullptr;
  Frame* frame_ = nullptr;
};

class BufferManager {
 public:
  /// Fills `rows` with the decoded rows of page `page_no`.
  using PageLoader =
      std::function<Status(uint32_t page_no, std::vector<Triple>* rows)>;

  explicit BufferManager(BufferOptions options = {});

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;
  ~BufferManager();

  /// Registers a table's page loader; the returned id names the table in
  /// Pin(). Loaders must be thread-safe (they run outside the pool lock,
  /// possibly concurrently for different pages).
  uint32_t RegisterTable(PageLoader loader) AXON_EXCLUDES(mu_);

  /// Pins page `page_no` of table `table_id`, loading (and possibly
  /// evicting) on a miss. The returned pin keeps the decoded rows alive
  /// until destroyed. Errors: the loader's status (checksum/decode
  /// failures, injected page.read faults) or ResourceExhausted when a
  /// hard-capped pool cannot fit the frame.
  Result<PinnedPage> Pin(uint32_t table_id, uint32_t page_no)
      AXON_EXCLUDES(mu_);

  BufferStats stats() const AXON_EXCLUDES(mu_);
  /// Decoded bytes currently resident (loaded frames, pinned or not).
  uint64_t resident_bytes() const AXON_EXCLUDES(mu_);
  /// Frames with at least one pin (for tests and invariant checks).
  uint64_t pinned_frames() const AXON_EXCLUDES(mu_);
  /// The pool-level budget: charged() == resident decoded bytes.
  const MemoryBudget& budget() const { return budget_; }
  const BufferOptions& options() const { return options_; }

 private:
  friend class PinnedPage;
  using Frame = PinnedPage::Frame;

  void Unpin(Frame* frame) AXON_EXCLUDES(mu_);
  /// Clock sweep: evicts one unpinned loaded frame. False when none is
  /// evictable (all pinned or loading).
  bool EvictOneLocked() AXON_REQUIRES(mu_);
  /// Evicts until `incoming` more bytes fit under the pool target (or
  /// nothing more is evictable).
  void EvictForLocked(uint64_t incoming) AXON_REQUIRES(mu_);

  const BufferOptions options_;
  /// Pool-level accounting: charged on frame load, refunded on eviction.
  MemoryBudget budget_;

  mutable Mutex mu_;
  CondVar cv_;  // signaled when a load completes (either way)
  std::unordered_map<uint64_t, std::unique_ptr<Frame>> frames_
      AXON_GUARDED_BY(mu_);
  std::vector<uint64_t> clock_keys_ AXON_GUARDED_BY(mu_);
  size_t clock_hand_ AXON_GUARDED_BY(mu_) = 0;
  uint64_t resident_bytes_ AXON_GUARDED_BY(mu_) = 0;
  std::vector<PageLoader> loaders_ AXON_GUARDED_BY(mu_);
  BufferStats stats_ AXON_GUARDED_BY(mu_);
};

}  // namespace axon

#endif  // AXON_STORAGE_BUFFER_MANAGER_H_
