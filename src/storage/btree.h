// In-memory B+-tree with bulk loading, point lookup, ordered range scans and
// flat serialization.
//
// The paper builds its CS index and ECS index "as a B+-tree on top of" the
// SPO/PSO tables (Secs. III.B, III.C): keys are CS/ECS ids, values are the
// [start,end) row ranges in the corresponding table. This template serves
// both indexes plus any ordered id→payload map the engine needs. Keys and
// values must be trivially copyable; serialization dumps the entries in key
// order and deserialization bulk-loads, which reproduces an optimally packed
// tree.

#ifndef AXON_STORAGE_BTREE_H_
#define AXON_STORAGE_BTREE_H_

#include <algorithm>
#include <cassert>
#include <cstring>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "util/status.h"
#include "util/trace.h"
#include "util/varint.h"

namespace axon {

template <typename K, typename V, int kFanout = 64>
class BPlusTree {
  static_assert(std::is_trivially_copyable_v<K>,
                "B+-tree keys must be trivially copyable");
  static_assert(std::is_trivially_copyable_v<V>,
                "B+-tree values must be trivially copyable");
  static_assert(kFanout >= 4, "fanout too small");

 public:
  BPlusTree() = default;

  /// Inserts or overwrites `key`.
  void Insert(const K& key, const V& value) {
    if (root_ == nullptr) {
      auto leaf = std::make_unique<Node>(/*leaf=*/true);
      leaf->keys.push_back(key);
      leaf->values.push_back(value);
      root_ = std::move(leaf);
      size_ = 1;
      return;
    }
    K up_key;
    std::unique_ptr<Node> sibling = InsertRec(root_.get(), key, value, &up_key);
    if (sibling != nullptr) {
      auto new_root = std::make_unique<Node>(/*leaf=*/false);
      new_root->keys.push_back(up_key);
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(sibling));
      root_ = std::move(new_root);
    }
  }

  /// Pointer to the value for `key`, or nullptr. Valid until next mutation.
  const V* Find(const K& key) const {
    const Node* n = root_.get();
    if (n == nullptr) return nullptr;
    uint64_t hops = 1;
    while (!n->leaf) {
      size_t i = std::upper_bound(n->keys.begin(), n->keys.end(), key) -
                 n->keys.begin();
      n = n->children[i].get();
      ++hops;
    }
    AXON_COUNTER_ADD("btree.node_touches", hops);
    auto it = std::lower_bound(n->keys.begin(), n->keys.end(), key);
    if (it == n->keys.end() || key < *it) return nullptr;
    return &n->values[it - n->keys.begin()];
  }

  bool Contains(const K& key) const { return Find(key) != nullptr; }

  /// Invokes fn(key, value) for every entry with lo <= key <= hi, in order.
  template <typename Fn>
  void ScanRange(const K& lo, const K& hi, Fn&& fn) const {
    const Node* n = root_.get();
    if (n == nullptr) return;
    uint64_t hops = 1;
    while (!n->leaf) {
      size_t i = std::upper_bound(n->keys.begin(), n->keys.end(), lo) -
                 n->keys.begin();
      n = n->children[i].get();
      ++hops;
    }
    size_t i = std::lower_bound(n->keys.begin(), n->keys.end(), lo) -
               n->keys.begin();
    while (n != nullptr) {
      for (; i < n->keys.size(); ++i) {
        if (hi < n->keys[i]) {
          AXON_COUNTER_ADD("btree.node_touches", hops);
          return;
        }
        fn(n->keys[i], n->values[i]);
      }
      n = n->next;
      if (n != nullptr) ++hops;
      i = 0;
    }
    AXON_COUNTER_ADD("btree.node_touches", hops);
  }

  /// Invokes fn(key, value) for every entry, ascending.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const Node* n = LeftmostLeaf();
    while (n != nullptr) {
      for (size_t i = 0; i < n->keys.size(); ++i) fn(n->keys[i], n->values[i]);
      n = n->next;
    }
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Height of the tree (0 when empty, 1 for a single leaf).
  int Height() const {
    int h = 0;
    const Node* n = root_.get();
    while (n != nullptr) {
      ++h;
      n = n->leaf ? nullptr : n->children[0].get();
    }
    return h;
  }

  /// Builds an optimally packed tree from entries sorted by strictly
  /// ascending key.
  static BPlusTree BulkLoad(const std::vector<std::pair<K, V>>& sorted) {
    BPlusTree t;
    if (sorted.empty()) return t;
    assert(std::is_sorted(sorted.begin(), sorted.end(),
                          [](const auto& a, const auto& b) {
                            return a.first < b.first;
                          }));
    // Build leaves.
    std::vector<std::unique_ptr<Node>> level;
    std::vector<K> level_min;
    constexpr size_t kLeafFill = kFanout - 1;
    for (size_t i = 0; i < sorted.size(); i += kLeafFill) {
      auto leaf = std::make_unique<Node>(/*leaf=*/true);
      size_t end = std::min(i + kLeafFill, sorted.size());
      for (size_t j = i; j < end; ++j) {
        leaf->keys.push_back(sorted[j].first);
        leaf->values.push_back(sorted[j].second);
      }
      level_min.push_back(leaf->keys.front());
      level.push_back(std::move(leaf));
    }
    for (size_t i = 0; i + 1 < level.size(); ++i) {
      level[i]->next = level[i + 1].get();
    }
    // Build internal levels until a single root remains.
    while (level.size() > 1) {
      std::vector<std::unique_ptr<Node>> parents;
      std::vector<K> parents_min;
      for (size_t i = 0; i < level.size(); i += kFanout) {
        auto parent = std::make_unique<Node>(/*leaf=*/false);
        size_t end = std::min(i + static_cast<size_t>(kFanout), level.size());
        parents_min.push_back(level_min[i]);
        for (size_t j = i; j < end; ++j) {
          if (j > i) parent->keys.push_back(level_min[j]);
          parent->children.push_back(std::move(level[j]));
        }
        parents.push_back(std::move(parent));
      }
      level = std::move(parents);
      level_min = std::move(parents_min);
    }
    t.root_ = std::move(level.front());
    t.size_ = sorted.size();
    return t;
  }

  /// Appends all (key, value) pairs in key order to `out` with a small
  /// header. Readers reconstruct with Deserialize.
  void SerializeTo(std::string* out) const {
    PutVarint64(out, size_);
    ForEach([out](const K& k, const V& v) {
      out->append(reinterpret_cast<const char*>(&k), sizeof(K));
      out->append(reinterpret_cast<const char*>(&v), sizeof(V));
    });
  }

  /// Reads a SerializeTo()d tree. Advances *pos past the consumed bytes.
  static Result<BPlusTree> Deserialize(std::string_view data, size_t* pos) {
    const char* p = data.data() + *pos;
    const char* limit = data.data() + data.size();
    uint64_t n = 0;
    p = GetVarint64(p, limit, &n);
    if (p == nullptr) return Status::Corruption("btree: entry count");
    const size_t entry_size = sizeof(K) + sizeof(V);
    if (p + n * entry_size > limit) {
      return Status::Corruption("btree: truncated entries");
    }
    std::vector<std::pair<K, V>> entries;
    entries.reserve(n);
    for (uint64_t i = 0; i < n; ++i) {
      K k;
      V v;
      std::memcpy(&k, p, sizeof(K));
      std::memcpy(&v, p + sizeof(K), sizeof(V));
      p += entry_size;
      entries.emplace_back(k, v);
    }
    *pos = p - data.data();
    return BulkLoad(entries);
  }

 private:
  struct Node {
    explicit Node(bool is_leaf) : leaf(is_leaf) {}
    bool leaf;
    std::vector<K> keys;
    std::vector<V> values;                        // leaves only
    std::vector<std::unique_ptr<Node>> children;  // internal only
    Node* next = nullptr;                         // leaf chain
  };

  const Node* LeftmostLeaf() const {
    const Node* n = root_.get();
    if (n == nullptr) return nullptr;
    while (!n->leaf) n = n->children[0].get();
    return n;
  }

  // Returns a new right sibling if `node` split; *up_key is the separator.
  std::unique_ptr<Node> InsertRec(Node* node, const K& key, const V& value,
                                  K* up_key) {
    if (node->leaf) {
      auto it = std::lower_bound(node->keys.begin(), node->keys.end(), key);
      size_t i = it - node->keys.begin();
      if (it != node->keys.end() && !(key < *it)) {
        node->values[i] = value;  // overwrite
        return nullptr;
      }
      node->keys.insert(it, key);
      node->values.insert(node->values.begin() + i, value);
      ++size_;
      if (node->keys.size() < kFanout) return nullptr;
      // Split leaf.
      auto right = std::make_unique<Node>(/*leaf=*/true);
      size_t mid = node->keys.size() / 2;
      right->keys.assign(node->keys.begin() + mid, node->keys.end());
      right->values.assign(node->values.begin() + mid, node->values.end());
      node->keys.resize(mid);
      node->values.resize(mid);
      right->next = node->next;
      node->next = right.get();
      *up_key = right->keys.front();
      return right;
    }
    size_t i = std::upper_bound(node->keys.begin(), node->keys.end(), key) -
               node->keys.begin();
    K child_up;
    std::unique_ptr<Node> sibling =
        InsertRec(node->children[i].get(), key, value, &child_up);
    if (sibling == nullptr) return nullptr;
    node->keys.insert(node->keys.begin() + i, child_up);
    node->children.insert(node->children.begin() + i + 1, std::move(sibling));
    if (node->children.size() <= kFanout) return nullptr;
    // Split internal node.
    auto right = std::make_unique<Node>(/*leaf=*/false);
    size_t mid = node->keys.size() / 2;
    *up_key = node->keys[mid];
    right->keys.assign(node->keys.begin() + mid + 1, node->keys.end());
    for (size_t j = mid + 1; j < node->children.size(); ++j) {
      right->children.push_back(std::move(node->children[j]));
    }
    node->keys.resize(mid);
    node->children.resize(mid + 1);
    return right;
  }

  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace axon

#endif  // AXON_STORAGE_BTREE_H_
