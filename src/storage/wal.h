// Write-ahead delta log for the updatable store.
//
// UpdatableDatabase acknowledges an Insert/Delete only after the operation
// is framed, appended to `<base>.wal` and fsynced; Compact() folds the log
// into a freshly written base snapshot (write-temp + fsync + rename) and
// resets the log. Crash recovery = open base + replay log; because the
// logged operations are idempotent RDF set mutations, replaying a log that
// was already (partially) folded into the base converges to the same
// state, which is what makes the compaction protocol crash-atomic at
// every intermediate point.
//
// Frame format (little-endian):  [fixed32 len][payload][fixed64 fnv1a]
// A torn tail — a frame cut short by a crash — fails the length or
// checksum test and cleanly ends the replay; a record that was never
// fully durable was by construction never acknowledged.

#ifndef AXON_STORAGE_WAL_H_
#define AXON_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "util/mmap_file.h"
#include "util/status.h"

namespace axon {

/// Appends checksummed frames to a log file. Usage:
///   WalWriter w;  w.Open(path);
///   w.Append(record);  w.Sync();   // now the record may be acknowledged
///
/// Externally synchronized: WalWriter has no internal lock. Its one owner,
/// UpdatableDatabase, serializes every call under the store mutex
/// (UpdateStoreImpl::mu in engine/update_store.cc) — do not share a
/// WalWriter across threads without equivalent locking.
class WalWriter {
 public:
  /// Opens `path` for appending (creating it if absent). Any bytes past
  /// `trusted_bytes` — a torn tail found by ReplayWal — are truncated
  /// away first so later appends never land after garbage.
  Status Open(const std::string& path, uint64_t trusted_bytes);

  /// Opens fresh, truncating an existing log (the post-compaction reset).
  Status Reset(const std::string& path);

  /// Frames and appends one record. On any append failure the writer
  /// truncates the file back to the last durable frame boundary, so a
  /// half-written frame can never sit *between* valid frames; if even the
  /// self-heal fails the writer goes broken and every later Append
  /// returns the original error (fail-stop, nothing acknowledged).
  Status Append(std::string_view record);

  /// Fsyncs the log. Acknowledge only after this returns OK.
  Status Sync();

  Status Close();

  uint64_t bytes() const { return writer_.offset(); }
  bool broken() const { return broken_; }

 private:
  std::string path_;
  FileWriter writer_;
  bool open_ = false;
  bool broken_ = false;
};

struct WalReplayResult {
  uint64_t records = 0;      // frames successfully applied
  uint64_t valid_bytes = 0;  // log prefix covered by those frames
  bool torn = false;         // trailing bytes did not form a whole frame
};

/// Replays every intact frame of `path` through `apply`, stopping cleanly
/// at a torn tail. A missing file is an empty log (0 records). An apply
/// failure aborts the replay with that status.
Result<WalReplayResult> ReplayWal(
    const std::string& path,
    const std::function<Status(std::string_view)>& apply);

}  // namespace axon

#endif  // AXON_STORAGE_WAL_H_
