#include "storage/db_file.h"

#include "util/failpoint.h"
#include "util/hash.h"
#include "util/varint.h"

namespace axon {

namespace {
constexpr char kMagic[] = "AXDB0001";
constexpr size_t kMagicLen = 8;
constexpr char kFooterMagic[] = "AXDBTOC1";
constexpr size_t kFooterLen = 16;  // fixed64 toc_offset + footer magic
}  // namespace

Status DbFileWriter::Open(const std::string& path) {
  AXON_RETURN_NOT_OK(writer_.Open(path));
  return writer_.Append(kMagic, kMagicLen);
}

Status DbFileWriter::AddSection(const std::string& name,
                                std::string_view payload) {
  AXON_FAILPOINT_STATUS("dbfile.write.section");
  for (const auto& s : sections_) {
    if (s.name == name) {
      return Status::AlreadyExists("duplicate section: " + name);
    }
  }
  // Pad to an 8-byte boundary so fixed-width payloads (e.g. raw triple
  // tables) can be used zero-copy from a memory mapping.
  while (writer_.offset() % 8 != 0) {
    AXON_RETURN_NOT_OK(writer_.Append("\0", 1));
  }
  SectionEntry e;
  e.name = name;
  e.offset = writer_.offset();
  e.size = payload.size();
  e.hash = HashBytes(payload.data(), payload.size());
  AXON_RETURN_NOT_OK(writer_.Append(payload));
  sections_.push_back(std::move(e));
  return Status::OK();
}

Status DbFileWriter::Finish() {
  AXON_FAILPOINT_STATUS("dbfile.write.toc");
  uint64_t toc_offset = writer_.offset();
  std::string toc;
  PutVarint64(&toc, sections_.size());
  for (const auto& s : sections_) {
    PutVarint64(&toc, s.name.size());
    toc.append(s.name);
    PutFixed64(&toc, s.offset);
    PutFixed64(&toc, s.size);
    PutFixed64(&toc, s.hash);
  }
  AXON_RETURN_NOT_OK(writer_.Append(toc));
  AXON_RETURN_NOT_OK(writer_.AppendFixed64(toc_offset));
  AXON_RETURN_NOT_OK(writer_.Append(kFooterMagic, kMagicLen));
  // A db file is only complete once its footer is on stable storage; the
  // crash-atomic save protocol (write temp + Finish + rename) relies on it.
  AXON_RETURN_NOT_OK(writer_.Sync());
  return writer_.Close();
}

Status DbFileReader::Open(const std::string& path) {
  return OpenInternal(path, /*salvage=*/false, nullptr);
}

Status DbFileReader::OpenSalvage(const std::string& path,
                                 SalvageReport* report) {
  return OpenInternal(path, /*salvage=*/true, report);
}

// Every field read below is bounds-checked against the mapping before use,
// and every size/offset arithmetic is overflow-safe: the TOC comes from
// disk and must be treated as hostile (fuzz_dbfile feeds this path
// adversarial bytes; tier-1 replays its regression corpus).
Status DbFileReader::OpenInternal(const std::string& path, bool salvage,
                                  SalvageReport* report) {
  sections_.clear();
  AXON_FAILPOINT_STATUS("dbfile.open");
  AXON_RETURN_NOT_OK(file_.Open(path));
  if (file_.size() < kMagicLen + kFooterLen) {
    return Status::Corruption("db file too small (torn tail?): " + path);
  }
  if (file_.view().substr(0, kMagicLen) !=
      std::string_view(kMagic, kMagicLen)) {
    return Status::Corruption("db file: bad magic");
  }
  const char* end = file_.data() + file_.size();
  if (std::string_view(end - kMagicLen, kMagicLen) !=
      std::string_view(kFooterMagic, kMagicLen)) {
    return Status::Corruption("db file: bad footer magic (torn tail?)");
  }
  uint64_t toc_offset = DecodeFixed64(end - kFooterLen);
  if (toc_offset < kMagicLen || toc_offset >= file_.size() - kFooterLen) {
    return Status::Corruption("db file: bad TOC offset");
  }
  const char* p = file_.data() + toc_offset;
  const char* limit = end - kFooterLen;
  uint64_t count = 0;
  p = GetVarint64(p, limit, &count);
  if (p == nullptr) return Status::Corruption("db file: truncated TOC count");
  // Each entry needs >= 25 bytes (name length varint + 24 fixed); an
  // adversarial count can't make us loop past the mapping.
  if (count > static_cast<uint64_t>(limit - p) / 25 + 1) {
    return Status::Corruption("db file: absurd TOC count");
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = 0;
    p = GetVarint64(p, limit, &name_len);
    if (p == nullptr || name_len > static_cast<uint64_t>(limit - p) ||
        static_cast<uint64_t>(limit - p) - name_len < 24) {
      return Status::Corruption("db file: truncated TOC entry");
    }
    SectionEntry e;
    e.name.assign(p, name_len);
    p += name_len;
    e.offset = DecodeFixed64(p);
    e.size = DecodeFixed64(p + 8);
    uint64_t expected_hash = DecodeFixed64(p + 16);
    p += 24;
    for (const auto& prev : sections_) {
      if (prev.name == e.name) {
        return Status::Corruption("db file: duplicate section in TOC: " +
                                  e.name);
      }
    }
    if (e.offset < kMagicLen || e.offset > toc_offset ||
        e.size > toc_offset - e.offset) {  // overflow-safe bounds check
      return Status::Corruption("db file: section out of bounds: " + e.name);
    }
    uint64_t actual = HashBytes(file_.data() + e.offset, e.size);
    if (actual != expected_hash) {
      if (!salvage) {
        return Status::Corruption("db file: checksum mismatch in section " +
                                  e.name);
      }
      e.quarantined = true;
      if (report != nullptr) {
        report->quarantined.push_back(e.name + ": checksum mismatch");
      }
    }
    sections_.push_back(std::move(e));
  }
  return Status::OK();
}

Result<std::string_view> DbFileReader::GetSection(
    const std::string& name) const {
  for (const auto& s : sections_) {
    if (s.name == name) {
      if (s.quarantined) {
        return Status::Corruption("db file: section quarantined: " + name);
      }
      return std::string_view(file_.data() + s.offset, s.size);
    }
  }
  return Status::NotFound("db file: no section named " + name);
}

bool DbFileReader::HasSection(const std::string& name) const {
  for (const auto& s : sections_) {
    if (s.name == name) return !s.quarantined;
  }
  return false;
}

std::vector<std::string> DbFileReader::SectionNames() const {
  std::vector<std::string> out;
  out.reserve(sections_.size());
  for (const auto& s : sections_) {
    if (!s.quarantined) out.push_back(s.name);
  }
  return out;
}

}  // namespace axon
