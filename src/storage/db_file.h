// Single-binary-file database container.
//
// The paper notes axonDB "writes all data in a single binary file, similar
// to RDF-3x and Virtuoso" (Sec. V.A). This module implements that container:
// named sections laid out back-to-back with a checksummed table of contents
// at the tail. Readers memory-map the file and hand out zero-copy
// string_views per section.

#ifndef AXON_STORAGE_DB_FILE_H_
#define AXON_STORAGE_DB_FILE_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/mmap_file.h"
#include "util/status.h"

namespace axon {

/// Streams sections into a database file. Usage:
///   DbFileWriter w;  w.Open(path);
///   w.AddSection("dict", payload); ...; w.Finish();
class DbFileWriter {
 public:
  Status Open(const std::string& path);

  /// Appends one named section (payload start 8-byte aligned within the
  /// file, so fixed-width payloads can be mapped zero-copy). Names must be
  /// unique.
  Status AddSection(const std::string& name, std::string_view payload);

  /// Writes the table of contents and footer, closes the file.
  Status Finish();

  /// Bytes written so far (payloads only, before Finish()).
  uint64_t bytes_written() const { return writer_.offset(); }

 private:
  struct SectionEntry {
    std::string name;
    uint64_t offset;
    uint64_t size;
    uint64_t hash;
  };

  FileWriter writer_;
  std::vector<SectionEntry> sections_;
};

/// Memory-maps a database file and resolves sections by name.
class DbFileReader {
 public:
  /// What OpenSalvage() had to quarantine, for operator triage.
  struct SalvageReport {
    /// Sections whose checksum did not match, with the reason appended
    /// ("name: checksum mismatch"). Quarantined sections are not served.
    std::vector<std::string> quarantined;
  };

  /// Maps the file and validates magic, TOC and per-section checksums.
  /// Any damage — torn tail, truncated TOC, checksum mismatch — yields a
  /// typed Corruption status naming what failed; never aborts.
  Status Open(const std::string& path);

  /// Salvage mode: structural damage (bad magic/footer/TOC) still fails
  /// the open, but sections with checksum mismatches are quarantined
  /// instead of failing the whole file — the healthy sections stay
  /// readable. `report` (optional) receives the quarantine list.
  Status OpenSalvage(const std::string& path, SalvageReport* report);

  /// Zero-copy view of a section's payload. The view stays valid for the
  /// lifetime of this reader. Quarantined sections return Corruption;
  /// absent ones NotFound.
  Result<std::string_view> GetSection(const std::string& name) const;

  /// True for healthy (non-quarantined) sections only.
  bool HasSection(const std::string& name) const;
  std::vector<std::string> SectionNames() const;
  uint64_t file_size() const { return file_.size(); }

 private:
  struct SectionEntry {
    std::string name;
    uint64_t offset;
    uint64_t size;
    bool quarantined = false;
  };

  Status OpenInternal(const std::string& path, bool salvage,
                      SalvageReport* report);

  MmapFile file_;
  std::vector<SectionEntry> sections_;
};

}  // namespace axon

#endif  // AXON_STORAGE_DB_FILE_H_
