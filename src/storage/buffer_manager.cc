#include "storage/buffer_manager.h"

#include <utility>

#include "util/failpoint.h"
#include "util/trace.h"

namespace axon {

/// One decoded page. Pointer-stable (held by unique_ptr in the frame map)
/// so pins can reference it across map rehashes. All fields are guarded by
/// the owning BufferManager's mu_ — the nested-struct relationship is not
/// expressible with AXON_GUARDED_BY, so the discipline is documented here
/// and enforced by the TSan stress test. `rows` is safe to read without
/// the lock *while pinned*: it is written only by the loading thread
/// before the frame is published (loading -> false under mu_) and never
/// mutated afterwards.
struct PinnedPage::Frame {
  uint64_t key = 0;       // (table_id << 32) | page_no
  std::vector<Triple> rows;
  uint64_t bytes = 0;     // decoded bytes charged to the pool budget
  uint32_t pins = 0;
  bool loading = false;   // a thread is running the loader for this frame
  bool failed = false;    // last load attempt errored; next Pin retries
  bool ref = false;       // clock second-chance bit
};

std::span<const Triple> PinnedPage::rows() const {
  if (frame_ == nullptr) return {};
  return {frame_->rows.data(), frame_->rows.size()};
}

void PinnedPage::Release() {
  if (manager_ != nullptr && frame_ != nullptr) {
    manager_->Unpin(frame_);
  }
  manager_ = nullptr;
  frame_ = nullptr;
}

namespace {
uint64_t FrameKey(uint32_t table_id, uint32_t page_no) {
  return (static_cast<uint64_t>(table_id) << 32) | page_no;
}
}  // namespace

BufferManager::BufferManager(BufferOptions options)
    : options_(options), budget_(options.hard_limit_bytes) {}

BufferManager::~BufferManager() = default;

uint32_t BufferManager::RegisterTable(PageLoader loader) {
  MutexLock lock(&mu_);
  loaders_.push_back(std::move(loader));
  return static_cast<uint32_t>(loaders_.size() - 1);
}

Result<PinnedPage> BufferManager::Pin(uint32_t table_id, uint32_t page_no) {
  const uint64_t key = FrameKey(table_id, page_no);
  Frame* frame = nullptr;
  PageLoader loader;
  {
    MutexLock lock(&mu_);
    for (;;) {
      auto it = frames_.find(key);
      if (it == frames_.end()) break;
      Frame* f = it->second.get();
      if (f->loading) {
        // Another thread is loading this page: park until it publishes or
        // fails. The frame cannot be erased while loading, so re-finding
        // after the wait is only defensive against a failed->erased race
        // (failed frames are kept, never erased, precisely so waiters can
        // retake them).
        cv_.Wait(&mu_);
        continue;
      }
      if (f->failed) {
        // Take ownership of the retry: transient faults (injected
        // page.read errors, once-armed failpoints) heal on the next pin.
        f->loading = true;
        f->failed = false;
        frame = f;
        break;
      }
      ++f->pins;
      f->ref = true;
      ++stats_.pin_hits;
      return PinnedPage(this, f);
    }
    if (frame == nullptr) {
      auto owned = std::make_unique<Frame>();
      owned->key = key;
      owned->loading = true;
      frame = owned.get();
      frames_.emplace(key, std::move(owned));
      clock_keys_.push_back(key);
    }
    if (table_id >= loaders_.size()) {
      frame->loading = false;
      frame->failed = true;
      cv_.NotifyAll();
      return Status::InvalidArgument("buffer: unregistered table id");
    }
    loader = loaders_[table_id];
  }

  // Load outside the lock: decode cost and failpoint delays must not
  // serialize unrelated pins. The page.read fault is handled inline (not
  // via AXON_FAILPOINT_STATUS, whose early return would strand the
  // loading frame with waiters parked on it forever).
  std::vector<Triple> rows;
  Status st = Status::OK();
  const failpoint::Fault fault = AXON_FAILPOINT_EVAL("page.read");
  if (fault) {
    failpoint::Execute("page.read", fault);
    if (fault.action == failpoint::Action::kError) {
      st = failpoint::InjectedError("page.read");
    }
  }
  if (st.ok()) st = loader(page_no, &rows);
  if (st.ok() && rows.empty()) {
    st = Status::Corruption("buffer: loader produced an empty page");
  }
  const uint64_t bytes = rows.size() * sizeof(Triple);

  MutexLock lock(&mu_);
  if (!st.ok()) {
    frame->loading = false;
    frame->failed = true;
    cv_.NotifyAll();
    return st;
  }
  EvictForLocked(bytes);
  if (!budget_.TryCharge(bytes)) {
    // Hard cap: one more sweep, then give up. Pinned frames are the only
    // thing that can hold bytes at this point, and they must not be torn
    // down under a reader.
    while (EvictOneLocked()) {
      if (budget_.TryCharge(bytes)) break;
    }
    if (budget_.exceeded()) {
      frame->loading = false;
      frame->failed = true;
      cv_.NotifyAll();
      return Status::ResourceExhausted("buffer: frame pool hard limit");
    }
  }
  frame->rows = std::move(rows);
  frame->bytes = bytes;
  frame->loading = false;
  frame->pins = 1;
  frame->ref = true;
  resident_bytes_ += bytes;
  ++stats_.pages_read;
  AXON_COUNTER_ADD("buffer.pages_read", 1);
  cv_.NotifyAll();
  return PinnedPage(this, frame);
}

void BufferManager::Unpin(Frame* frame) {
  MutexLock lock(&mu_);
  --frame->pins;
}

bool BufferManager::EvictOneLocked() {
  if (clock_keys_.empty()) return false;
  // Two full sweeps: the first may only clear ref bits, the second then
  // finds a victim. If every frame is pinned or loading, give up.
  const size_t max_steps = clock_keys_.size() * 2;
  for (size_t step = 0; step < max_steps; ++step) {
    if (clock_hand_ >= clock_keys_.size()) clock_hand_ = 0;
    const uint64_t key = clock_keys_[clock_hand_];
    auto it = frames_.find(key);
    if (it == frames_.end()) {
      // Stale clock entry (frame evicted earlier): compact in place.
      clock_keys_[clock_hand_] = clock_keys_.back();
      clock_keys_.pop_back();
      continue;
    }
    Frame* f = it->second.get();
    if (f->loading || f->pins > 0 || f->bytes == 0) {
      ++clock_hand_;
      continue;
    }
    if (f->ref) {
      f->ref = false;
      ++clock_hand_;
      continue;
    }
    resident_bytes_ -= f->bytes;
    budget_.Refund(f->bytes);
    frames_.erase(it);
    clock_keys_[clock_hand_] = clock_keys_.back();
    clock_keys_.pop_back();
    ++stats_.pages_evicted;
    AXON_COUNTER_ADD("buffer.pages_evicted", 1);
    return true;
  }
  return false;
}

void BufferManager::EvictForLocked(uint64_t incoming) {
  while (resident_bytes_ + incoming > options_.pool_bytes) {
    if (!EvictOneLocked()) break;
  }
}

BufferStats BufferManager::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

uint64_t BufferManager::resident_bytes() const {
  MutexLock lock(&mu_);
  return resident_bytes_;
}

uint64_t BufferManager::pinned_frames() const {
  MutexLock lock(&mu_);
  uint64_t n = 0;
  for (const auto& [key, f] : frames_) {
    if (f->pins > 0) ++n;
  }
  return n;
}

}  // namespace axon
