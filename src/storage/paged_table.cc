#include "storage/paged_table.h"

#include <algorithm>

#include "util/varint.h"

namespace axon {

PagedTripleTable PagedTripleTable::Build(std::span<const Triple> rows,
                                         uint32_t page_bytes) {
  PagedTripleTable t;
  t.page_bytes_ = std::max(page_bytes, pagecodec::kMinPageBytes);

  std::vector<std::string> pages;
  std::vector<uint32_t> rows_per_page;
  pagecodec::PageBuilder builder(t.page_bytes_);
  for (const Triple& row : rows) {
    if (!builder.TryAdd(row)) {
      rows_per_page.push_back(builder.num_rows());
      pages.push_back(builder.Finish());
      builder.TryAdd(row);  // first row of a fresh page always fits
    }
  }
  if (!builder.empty()) {
    rows_per_page.push_back(builder.num_rows());
    pages.push_back(builder.Finish());
  }

  std::string blob;
  PutVarint64(&blob, rows.size());
  PutVarint32(&blob, static_cast<uint32_t>(pages.size()));
  PutVarint32(&blob, t.page_bytes_);
  for (size_t i = 0; i < pages.size(); ++i) {
    PutVarint32(&blob, static_cast<uint32_t>(pages[i].size()));
    PutVarint32(&blob, rows_per_page[i]);
  }
  t.pages_base_ = blob.size();
  for (const std::string& page : pages) blob += page;

  t.owned_ = std::move(blob);
  t.blob_ = t.owned_;
  t.num_rows_ = rows.size();
  t.page_rows_ = std::move(rows_per_page);
  t.page_off_.reserve(pages.size() + 1);
  t.first_row_.reserve(pages.size() + 1);
  uint64_t off = 0;
  uint64_t row = 0;
  for (size_t i = 0; i < pages.size(); ++i) {
    t.page_off_.push_back(off);
    t.first_row_.push_back(row);
    off += pages[i].size();
    row += t.page_rows_[i];
  }
  t.page_off_.push_back(off);
  t.first_row_.push_back(row);
  return t;
}

Result<PagedTripleTable> PagedTripleTable::FromSerialized(
    std::string_view bytes, bool copy) {
  PagedTripleTable t;
  if (copy) {
    t.owned_.assign(bytes.data(), bytes.size());
    t.blob_ = t.owned_;
  } else {
    t.blob_ = bytes;
  }
  const char* base = t.blob_.data();
  const char* p = base;
  const char* limit = base + t.blob_.size();
  uint32_t num_pages = 0;
  p = GetVarint64(p, limit, &t.num_rows_);
  if (p != nullptr) p = GetVarint32(p, limit, &num_pages);
  if (p != nullptr) p = GetVarint32(p, limit, &t.page_bytes_);
  if (p == nullptr) return Status::Corruption("paged table: truncated header");
  // A non-empty page holds at least one row and an empty table has no
  // pages, so these bounds block hostile directory sizes before any
  // allocation happens.
  if (static_cast<uint64_t>(num_pages) > t.num_rows_ ||
      (num_pages == 0) != (t.num_rows_ == 0)) {
    return Status::Corruption("paged table: implausible page count");
  }
  t.page_off_.reserve(num_pages + 1);
  t.page_rows_.reserve(num_pages);
  t.first_row_.reserve(num_pages + 1);
  uint64_t off = 0;
  uint64_t row = 0;
  for (uint32_t i = 0; i < num_pages; ++i) {
    uint32_t len = 0;
    uint32_t rows = 0;
    p = GetVarint32(p, limit, &len);
    if (p != nullptr) p = GetVarint32(p, limit, &rows);
    if (p == nullptr || len == 0 || rows == 0) {
      return Status::Corruption("paged table: bad directory entry");
    }
    t.page_off_.push_back(off);
    t.first_row_.push_back(row);
    off += len;
    row += rows;
    t.page_rows_.push_back(rows);
  }
  t.page_off_.push_back(off);
  t.first_row_.push_back(row);
  t.pages_base_ = static_cast<size_t>(p - base);
  if (row != t.num_rows_) {
    return Status::Corruption("paged table: directory row count mismatch");
  }
  if (off != t.blob_.size() - t.pages_base_) {
    return Status::Corruption("paged table: page bytes do not match directory");
  }
  return t;
}

void PagedTripleTable::AttachBuffer(std::shared_ptr<BufferManager> buffer) {
  buffer_ = std::move(buffer);
  table_id_ = buffer_->RegisterTable(
      [this](uint32_t page, std::vector<Triple>* rows) {
        return LoadPage(page, rows);
      });
}

uint32_t PagedTripleTable::PageOf(uint64_t row) const {
  // upper_bound over the cumulative row starts: the last page whose
  // first_row_ <= row.
  auto it = std::upper_bound(first_row_.begin(), first_row_.end() - 1, row);
  return static_cast<uint32_t>(it - first_row_.begin() - 1);
}

std::string_view PagedTripleTable::PageImage(uint32_t page) const {
  return blob_.substr(pages_base_ + page_off_[page],
                      page_off_[page + 1] - page_off_[page]);
}

Status PagedTripleTable::LoadPage(uint32_t page,
                                  std::vector<Triple>* rows) const {
  pagecodec::PageView view;
  AXON_RETURN_NOT_OK(pagecodec::ParsePage(PageImage(page), &view));
  if (view.num_rows != page_rows_[page]) {
    return Status::Corruption("paged table: page row count disagrees with "
                              "directory");
  }
  rows->clear();
  return pagecodec::DecodeRows(view, rows);
}

Result<PinnedPage> PagedTripleTable::PinPage(uint32_t page) const {
  if (buffer_ == nullptr) {
    return Status::Internal("paged table: no buffer manager attached");
  }
  return buffer_->Pin(table_id_, page);
}

Status PagedTripleTable::RowAt(uint64_t row, Triple* out) const {
  if (row >= num_rows_) {
    return Status::OutOfRange("paged table: row index out of range");
  }
  const uint32_t page = PageOf(row);
  pagecodec::PageView view;
  AXON_RETURN_NOT_OK(pagecodec::ParsePage(PageImage(page), &view));
  if (view.num_rows != page_rows_[page]) {
    return Status::Corruption("paged table: page row count disagrees with "
                              "directory");
  }
  return pagecodec::DecodeRowAt(
      view, static_cast<uint32_t>(row - first_row_[page]), out);
}

void PagedTripleTable::Scan(
    const RowRange& range,
    const std::function<void(std::span<const Triple>, uint64_t)>& fn) const {
  if (range.empty()) return;
  if (buffer_ == nullptr) {
    throw PagedIoError(
        Status::Internal("paged table: no buffer manager attached"));
  }
  for (uint32_t page = PageOf(range.begin);
       page < num_pages() && first_row_[page] < range.end; ++page) {
    Result<PinnedPage> pin = buffer_->Pin(table_id_, page);
    if (!pin.ok()) throw PagedIoError(pin.status());
    const std::span<const Triple> rows = pin.value().rows();
    const uint64_t page_first = first_row_[page];
    const uint64_t lo = std::max(range.begin, page_first);
    const uint64_t hi = std::min(range.end, page_first + rows.size());
    fn(rows.subspan(lo - page_first, hi - lo), lo);
  }
}

Status PagedTripleTable::ForEachPage(
    const std::function<void(std::span<const Triple>, uint64_t)>& fn) const {
  std::vector<Triple> rows;
  for (uint32_t page = 0; page < num_pages(); ++page) {
    AXON_RETURN_NOT_OK(LoadPage(page, &rows));
    fn(std::span<const Triple>(rows), first_row_[page]);
  }
  return Status::OK();
}

RowRange PagedTripleTable::EqualRangeBySubject(const RowRange& within,
                                               TermId subject) const {
  auto subject_at = [this](uint64_t row) {
    Triple t;
    Status st = RowAt(row, &t);
    if (!st.ok()) throw PagedIoError(std::move(st));
    return t.s;
  };
  // lower_bound / upper_bound over row indices (rows of `within` are
  // subject-sorted — a CS partition's (S, P, O) order).
  uint64_t lo = within.begin;
  uint64_t hi = within.end;
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (subject_at(mid) < subject) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  const uint64_t first = lo;
  hi = within.end;
  while (lo < hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    if (subject < subject_at(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return RowRange{first, lo};
}

}  // namespace axon
