// Page codec: fixed-size compressed leaf pages of triple rows.
//
// The paged storage mode (DESIGN.md §14) stores the CS (SPO) and ECS (PSO)
// tables as a sequence of independently decodable leaf pages instead of one
// flat row array, in the spirit of RDF-3X's FactsSegment leaves. Rows are
// delta-encoded against their predecessor with zigzag varints — partitions
// are sorted, so deltas are small, but partition boundaries can step
// *backwards*, hence the signed encoding. Every kRestartInterval-th row is
// a restart point holding absolute component values, so a seek decodes at
// most kRestartInterval-1 rows instead of the whole page, and a corrupt
// tail cannot poison earlier runs.
//
// Serialized page layout (everything little-endian):
//
//   fixed32   checksum — FNV-1a 64 of all following bytes, folded to 32
//   varint32  num_rows            (> 0; empty pages are never written)
//   varint32  num_restarts        (== ceil(num_rows / kRestartInterval))
//   varint32  restart_off[i] - restart_off[i-1]   (payload-relative, i
//             ascending, restart_off[0] == 0)
//   payload   per restart run: 3 varint32 absolute components for the
//             restart row, then 3 zigzag-varint component deltas per row
//
// Decoding is strict: every varint is bounds-checked, restart offsets must
// match the decode cursor exactly, components must fit in 32 bits, and the
// payload must be consumed exactly — hostile bytes yield Corruption, never
// undefined behavior (fuzz_page drives this contract).

#ifndef AXON_STORAGE_PAGE_CODEC_H_
#define AXON_STORAGE_PAGE_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "rdf/triple.h"
#include "util/status.h"

namespace axon {
namespace pagecodec {

/// Rows between restart points. A seek decodes at most this many rows.
inline constexpr uint32_t kRestartInterval = 16;

/// Default serialized page size target in bytes (a classic 4 KiB leaf).
inline constexpr uint32_t kDefaultPageBytes = 4096;

/// Smallest page size the builder accepts — below this a single
/// worst-case row (15 varint bytes) plus the header would not fit.
inline constexpr uint32_t kMinPageBytes = 64;

/// Incremental encoder for one page. Add rows until TryAdd refuses, then
/// Finish() the page and keep going with the next row.
class PageBuilder {
 public:
  explicit PageBuilder(uint32_t page_bytes = kDefaultPageBytes);

  /// Appends `t` if the serialized page stays within the size target.
  /// The first row of a page always fits (oversized targets degrade to
  /// one-row pages, never to failure). Returns false when full.
  bool TryAdd(const Triple& t);

  uint32_t num_rows() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  /// Serializes the page (layout above) and resets the builder for the
  /// next page. Precondition: !empty().
  std::string Finish();

 private:
  uint32_t page_bytes_;
  uint32_t num_rows_ = 0;
  Triple prev_{};
  std::string payload_;
  std::vector<uint32_t> restarts_;      // payload-relative byte offsets
  uint32_t restart_table_bytes_ = 0;    // encoded size of the offset deltas
};

/// Parsed page header: validated checksum, row count, restart offsets and
/// the payload view (pointing into the caller's page bytes).
struct PageView {
  uint32_t num_rows = 0;
  std::vector<uint32_t> restarts;  // payload-relative, restarts[0] == 0
  std::string_view payload;
};

/// Verifies the checksum and parses the header. Corruption on any
/// malformed input. Failpoint site "page.decode": err injects an IOError,
/// bitflip flips one bit of a copy of the page before verification (the
/// checksum must reject it — the torn-page / bitrot drill).
Status ParsePage(std::string_view page, PageView* view);

/// Appends all rows of a parsed page to `out`. Strict: restart offsets
/// must match the decode cursor and the payload must be consumed exactly.
Status DecodeRows(const PageView& view, std::vector<Triple>* out);

/// Decodes the single row at `slot` (< num_rows) via its restart run —
/// at most kRestartInterval rows of work, no allocation.
Status DecodeRowAt(const PageView& view, uint32_t slot, Triple* out);

}  // namespace pagecodec
}  // namespace axon

#endif  // AXON_STORAGE_PAGE_CODEC_H_
