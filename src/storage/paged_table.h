// Paged triple tables: a sorted triple table stored as compressed leaf
// pages (storage/page_codec.h) plus a page directory, decoded on demand
// through a pin/unpin buffer manager (storage/buffer_manager.h).
//
// This is the secondary-storage substrate of DESIGN.md §14: the CS (SPO)
// and ECS (PSO) tables keep only their *compressed* bytes resident (an
// owned blob or a borrowed mmapped db-file section); row access pins one
// page at a time, so the decoded working set is bounded by the buffer
// manager's frame pool and datasets larger than the pool still load and
// query. Point lookups (the binary searches behind CsIndex::SubjectRange)
// decode single rows straight from the compressed bytes via restart
// points, bypassing the pool entirely.
//
// Serialized layout (the "spo_pages"/"pso_pages" db-file sections):
//
//   varint64  num_rows
//   varint32  num_pages
//   varint32  page_bytes          (builder's size target, for round-trips)
//   per page: varint32 page_len, varint32 page_rows
//   pages     concatenated page images (page_codec layout, checksummed)
//
// TripleSource unifies the resident and paged read paths behind one
// chunked-scan interface so executor code branches once per scan, not per
// row. Paged I/O errors (checksum mismatch, injected faults, frame-pool
// exhaustion) surface as PagedIoError, caught at the query fault boundary.

#ifndef AXON_STORAGE_PAGED_TABLE_H_
#define AXON_STORAGE_PAGED_TABLE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "storage/buffer_manager.h"
#include "storage/page_codec.h"
#include "storage/triple_table.h"

namespace axon {

/// A paged-storage failure thrown from deep scan code (which returns
/// tables, not Statuses) and translated back to its Status at the query
/// fault boundary (Executor::Execute) — the same pattern as
/// QueryStopError.
class PagedIoError : public std::runtime_error {
 public:
  explicit PagedIoError(Status status)
      : std::runtime_error(status.ToString()), status_(std::move(status)) {}
  const Status& status() const { return status_; }

 private:
  Status status_;
};

/// One compressed, paged triple table. Not mutable: built once from a
/// sorted row array (or parsed from a serialized blob) and read forever.
/// Thread-safe for concurrent reads after AttachBuffer(). Must not be
/// moved after AttachBuffer() — the registered page loader captures
/// `this` (hold it behind a stable pointer, as Database does).
class PagedTripleTable {
 public:
  PagedTripleTable() = default;
  // Moves must re-point blob_ when it views the owned backing string (a
  // small-string move relocates the inline bytes).
  PagedTripleTable(PagedTripleTable&& other) noexcept {
    *this = std::move(other);
  }
  PagedTripleTable& operator=(PagedTripleTable&& other) noexcept {
    if (this == &other) return *this;
    const bool self_backed = other.blob_.data() == other.owned_.data();
    owned_ = std::move(other.owned_);
    blob_ = self_backed ? std::string_view(owned_) : other.blob_;
    num_rows_ = other.num_rows_;
    page_bytes_ = other.page_bytes_;
    pages_base_ = other.pages_base_;
    page_off_ = std::move(other.page_off_);
    page_rows_ = std::move(other.page_rows_);
    first_row_ = std::move(other.first_row_);
    buffer_ = std::move(other.buffer_);
    table_id_ = other.table_id_;
    return *this;
  }
  PagedTripleTable(const PagedTripleTable&) = delete;
  PagedTripleTable& operator=(const PagedTripleTable&) = delete;

  /// Packs `rows` (already sorted in table order) into pages of at most
  /// `page_bytes` serialized bytes each. Deterministic: same rows, same
  /// blob.
  static PagedTripleTable Build(
      std::span<const Triple> rows,
      uint32_t page_bytes = pagecodec::kDefaultPageBytes);

  /// Parses a Build()-serialized blob. With copy=false the table borrows
  /// `bytes` (mmapped section; caller keeps it alive), otherwise it owns a
  /// copy. Strict: a malformed directory is Corruption. Page payloads are
  /// *not* decoded here — their checksums are verified lazily on first
  /// pin, so opening a database stays O(directory).
  static Result<PagedTripleTable> FromSerialized(std::string_view bytes,
                                                 bool copy);

  uint64_t num_rows() const { return num_rows_; }
  uint32_t num_pages() const { return static_cast<uint32_t>(page_rows_.size()); }
  uint32_t page_bytes() const { return page_bytes_; }
  /// The full serialized blob (directory + pages) — what Save() writes.
  std::string_view serialized() const { return blob_; }
  /// Compressed footprint in bytes (== serialized().size()).
  uint64_t CompressedBytes() const { return blob_.size(); }

  /// Registers this table with `buffer` for pinned-page access. Scan() and
  /// PinPage() require an attached buffer.
  void AttachBuffer(std::shared_ptr<BufferManager> buffer);
  bool attached() const { return buffer_ != nullptr; }
  const BufferManager* buffer() const { return buffer_.get(); }

  /// The page containing `row` (row < num_rows()).
  uint32_t PageOf(uint64_t row) const;
  /// Rows [begin, end) stored in `page`.
  RowRange PageRows(uint32_t page) const {
    return RowRange{first_row_[page], first_row_[page + 1]};
  }

  /// Pins page `page` through the attached buffer manager.
  Result<PinnedPage> PinPage(uint32_t page) const;

  /// Decodes the single row at index `row` straight from the compressed
  /// bytes (restart-point seek; no buffer, no frame allocation).
  Status RowAt(uint64_t row, Triple* out) const;

  /// Calls `fn(chunk, first_row)` for each maximal same-page run of rows
  /// in `range`, pinning one page at a time. Chunks arrive in row order.
  /// Throws PagedIoError on a load/decode failure.
  void Scan(const RowRange& range,
            const std::function<void(std::span<const Triple>, uint64_t)>& fn)
      const;

  /// Sequentially decodes every page (no buffer needed) — the streaming
  /// full-table read behind Save()/ExportNTriples/update-store recovery.
  Status ForEachPage(
      const std::function<void(std::span<const Triple>, uint64_t)>& fn) const;

  /// Binary-searches the rows of `within` (which must be sorted by
  /// subject, as CS partitions are) for the subrange with subject ==
  /// `subject`. Throws PagedIoError on a decode failure.
  RowRange EqualRangeBySubject(const RowRange& within, TermId subject) const;

 private:
  /// Serialized bytes of one page image.
  std::string_view PageImage(uint32_t page) const;
  /// Buffer-manager loader: parse + strictly decode one page, cross-checked
  /// against the directory's row count. Failpoint site "page.decode" fires
  /// inside ParsePage.
  Status LoadPage(uint32_t page, std::vector<Triple>* rows) const;

  std::string owned_;       // backing bytes when not borrowed
  std::string_view blob_;   // full blob (== owned_ unless borrowed)
  uint64_t num_rows_ = 0;
  uint32_t page_bytes_ = pagecodec::kDefaultPageBytes;
  size_t pages_base_ = 0;              // blob offset of the first page
  std::vector<uint64_t> page_off_;     // per page: offset from pages_base_
  std::vector<uint32_t> page_rows_;    // per page: row count (directory)
  std::vector<uint64_t> first_row_;    // cumulative rows, num_pages + 1
  std::shared_ptr<BufferManager> buffer_;
  uint32_t table_id_ = 0;
};

/// A read seam over either a resident TripleTable or a PagedTripleTable,
/// so scan loops are written once. Non-owning; both referents must
/// outlive the source (executor-call lifetime).
class TripleSource {
 public:
  explicit TripleSource(const TripleTable* resident) : resident_(resident) {}
  explicit TripleSource(const PagedTripleTable* paged) : paged_(paged) {}

  bool paged() const { return paged_ != nullptr; }
  uint64_t size() const {
    return paged_ != nullptr ? paged_->num_rows() : resident_->size();
  }

  /// Resident fast path: the zero-copy span the existing operators take.
  /// Precondition: !paged().
  std::span<const Triple> ResidentSlice(const RowRange& r) const {
    return resident_->slice(r);
  }

  /// Chunked scan of `r` in row order: one chunk (the whole slice) when
  /// resident, one chunk per pinned page when paged.
  void Scan(const RowRange& r,
            const std::function<void(std::span<const Triple>, uint64_t)>& fn)
      const {
    if (r.empty()) return;
    if (paged_ != nullptr) {
      paged_->Scan(r, fn);
    } else {
      fn(resident_->slice(r), r.begin);
    }
  }

 private:
  const TripleTable* resident_ = nullptr;
  const PagedTripleTable* paged_ = nullptr;
};

}  // namespace axon

#endif  // AXON_STORAGE_PAGED_TABLE_H_
