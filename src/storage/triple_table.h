// Triple tables: contiguous arrays of id triples with permutation sorting,
// binary-searched prefix ranges, and raw binary persistence.
//
// axonDB itself keeps two tables (SPO partitioned by CS, PSO partitioned by
// ECS — Secs. III.B/III.C). The baseline engines reuse the same container
// for their own permutations (all six for the RDF-3x analogue), so storage
// accounting across engines is apples-to-apples.

#ifndef AXON_STORAGE_TRIPLE_TABLE_H_
#define AXON_STORAGE_TRIPLE_TABLE_H_

#include <array>
#include <cassert>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "rdf/triple.h"
#include "util/status.h"

namespace axon {

/// A triple component ordering. The name lists the sort key from major to
/// minor, e.g. kPso sorts by (P, S, O).
enum class Permutation : uint8_t {
  kSpo = 0,
  kSop,
  kPso,
  kPos,
  kOsp,
  kOps,
};

/// All six permutations, in enum order (used by the six-permutation engine).
inline constexpr std::array<Permutation, 6> kAllPermutations = {
    Permutation::kSpo, Permutation::kSop, Permutation::kPso,
    Permutation::kPos, Permutation::kOsp, Permutation::kOps};

const char* PermutationName(Permutation p);

/// Reorders (s, p, o) into the permutation's (major, mid, minor) key.
std::array<TermId, 3> PermutationKey(Permutation perm, const Triple& t);

/// A half-open row range [begin, end) in a table.
struct RowRange {
  uint64_t begin = 0;
  uint64_t end = 0;

  uint64_t size() const { return end - begin; }
  bool empty() const { return begin >= end; }
  bool operator==(const RowRange& other) const {
    return begin == other.begin && end == other.end;
  }
};

/// An append-then-sort table of triples.
///
/// Storage is either *owned* (a vector, mutable) or *borrowed* (a span over
/// externally owned memory — typically a memory-mapped database file, the
/// paper's Sec. III.A layout). Borrowed tables are read-only: mutating
/// calls assert in debug builds and are undefined otherwise.
class TripleTable {
 public:
  TripleTable() = default;

  void Append(const Triple& t) {
    assert(!borrowed_ && "cannot mutate a borrowed (mapped) table");
    rows_.push_back(t);
  }
  void Append(TermId s, TermId p, TermId o) { Append(Triple{s, p, o}); }
  void Reserve(size_t n) { rows_.reserve(n); }

  size_t size() const { return borrowed_ ? view_.size() : rows_.size(); }
  bool empty() const { return size() == 0; }
  const Triple& row(size_t i) const { return rows()[i]; }
  std::span<const Triple> rows() const {
    return borrowed_ ? view_ : std::span<const Triple>(rows_);
  }
  std::span<const Triple> slice(const RowRange& r) const {
    return rows().subspan(r.begin, r.size());
  }

  /// True when the rows live in externally owned (mapped) memory.
  bool borrowed() const { return borrowed_; }

  /// Sorts all rows by the given permutation (stable order on full triple).
  void Sort(Permutation perm);

  /// Removes exact duplicate rows. Table must be sorted first.
  void Dedup();

  /// Binary-searches the prefix range of rows matching the bound components
  /// of the permutation's key. Pass kInvalidId for unbound components; bound
  /// components must form a prefix of the key (e.g. for kPso: p, or p+s, or
  /// p+s+o). Precondition: table sorted by `perm`.
  RowRange EqualRange(Permutation perm, TermId major,
                      TermId mid = kInvalidId,
                      TermId minor = kInvalidId) const;

  /// Raw on-disk size in bytes (rows only).
  uint64_t ByteSize() const { return size() * sizeof(Triple); }

  /// Appends the rows as little-endian u32 array to `out`.
  void SerializeTo(std::string* out) const;

  /// Reads a SerializeTo()d table; advances *pos. Copies the rows.
  static Result<TripleTable> Deserialize(std::string_view data, size_t* pos);

  /// Raw row image (no header): exactly size()*sizeof(Triple) bytes.
  /// Written into its own (aligned) db-file section for mapped opens.
  void SerializeRaw(std::string* out) const;

  /// Wraps a raw row image without copying when `bytes.data()` is suitably
  /// aligned (falls back to a copy otherwise). The caller must keep the
  /// underlying buffer alive for the table's lifetime.
  static Result<TripleTable> FromRaw(std::string_view bytes);

  /// Copies a raw row image into an owned table (no lifetime coupling).
  static Result<TripleTable> FromRawOwned(std::string_view bytes);

 private:
  std::vector<Triple> rows_;
  std::span<const Triple> view_;
  bool borrowed_ = false;
};

}  // namespace axon

#endif  // AXON_STORAGE_TRIPLE_TABLE_H_
