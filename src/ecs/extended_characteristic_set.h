// Extended Characteristic Sets (paper Sec. II, Eq. 3-4).
//
// An ECS E(s,o) is the ordered pair (CS of subject, CS of object) of a
// triple whose object itself emits properties. Every such triple belongs to
// exactly one ECS; triples with literal objects or sink objects (empty
// object CS) belong to none and live only in the SPO/CS side of the store.

#ifndef AXON_ECS_EXTENDED_CHARACTERISTIC_SET_H_
#define AXON_ECS_EXTENDED_CHARACTERISTIC_SET_H_

#include <vector>

#include "rdf/triple.h"

namespace axon {

struct ExtendedCharacteristicSet {
  EcsId id = kNoEcs;
  CsId subject_cs = kNoCs;
  CsId object_cs = kNoCs;

  bool operator==(const ExtendedCharacteristicSet& other) const {
    return id == other.id && subject_cs == other.subject_cs &&
           object_cs == other.object_cs;
  }
};

/// A PSO-side row: the triple plus its ECS tag (the ECS analogue of the
/// loader's 4-wide CS row).
struct EcsTriple {
  EcsId ecs = kNoEcs;
  TermId s = kInvalidId;
  TermId p = kInvalidId;
  TermId o = kInvalidId;

  Triple triple() const { return Triple{s, p, o}; }

  bool operator==(const EcsTriple& other) const {
    return ecs == other.ecs && s == other.s && p == other.p && o == other.o;
  }
};

}  // namespace axon

#endif  // AXON_ECS_EXTENDED_CHARACTERISTIC_SET_H_
