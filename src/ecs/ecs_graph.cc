#include "ecs/ecs_graph.h"

#include <algorithm>
#include <deque>

#include "util/varint.h"

namespace axon {

bool EcsGraph::HasEdge(EcsId from, EcsId to) const {
  if (from.value() >= links_.size()) return false;
  const auto& succ = links_[from.value()];
  return std::binary_search(succ.begin(), succ.end(), to);
}

bool EcsGraph::Reachable(EcsId from, EcsId to, size_t max_hops) const {
  if (from.value() >= links_.size()) return false;
  std::vector<bool> visited(links_.size(), false);
  std::deque<std::pair<EcsId, size_t>> queue;
  queue.emplace_back(from, 0);
  visited[from.value()] = true;
  while (!queue.empty()) {
    auto [node, depth] = queue.front();
    queue.pop_front();
    if (depth >= max_hops) continue;
    for (EcsId next : links_[node.value()]) {
      if (next == to) return true;
      if (!visited[next.value()]) {
        visited[next.value()] = true;
        queue.emplace_back(next, depth + 1);
      }
    }
  }
  return false;
}

std::vector<std::vector<EcsId>> EcsGraph::PathsFrom(EcsId from, size_t length,
                                                    size_t limit) const {
  std::vector<std::vector<EcsId>> out;
  if (from.value() >= links_.size()) return out;
  std::vector<EcsId> path = {from};
  // Iterative DFS over partial paths.
  struct Frame {
    EcsId node;
    size_t next_child;
  };
  std::vector<Frame> stack = {{from, 0}};
  while (!stack.empty()) {
    if (out.size() >= limit) break;
    Frame& top = stack.back();
    if (path.size() == length + 1) {
      out.push_back(path);
      stack.pop_back();
      path.pop_back();
      continue;
    }
    const auto& succ = links_[top.node.value()];
    bool advanced = false;
    while (top.next_child < succ.size()) {
      EcsId child = succ[top.next_child++];
      // Simple paths only: skip nodes already on the path.
      if (std::find(path.begin(), path.end(), child) != path.end()) continue;
      path.push_back(child);
      stack.push_back({child, 0});
      advanced = true;
      break;
    }
    if (!advanced) {
      stack.pop_back();
      path.pop_back();
    }
  }
  return out;
}

void EcsGraph::SerializeTo(std::string* out) const {
  PutVarint64(out, links_.size());
  for (const auto& succ : links_) {
    PutVarint64(out, succ.size());
    for (EcsId id : succ) PutVarintId(out, id);
  }
}

Result<EcsGraph> EcsGraph::Deserialize(std::string_view data, size_t* pos) {
  const char* p = data.data() + *pos;
  const char* limit = data.data() + data.size();
  uint64_t n = 0;
  p = GetVarint64(p, limit, &n);
  if (p == nullptr) return Status::Corruption("ecs graph: node count");
  std::vector<std::vector<EcsId>> links(n);
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t m = 0;
    p = GetVarint64(p, limit, &m);
    if (p == nullptr) return Status::Corruption("ecs graph: edge count");
    links[i].reserve(m);
    for (uint64_t j = 0; j < m; ++j) {
      EcsId id;
      p = GetVarintId(p, limit, &id);
      if (p == nullptr) return Status::Corruption("ecs graph: edge");
      links[i].push_back(id);
    }
  }
  *pos = p - data.data();
  return EcsGraph(std::move(links));
}

}  // namespace axon
