// ECS specialization hierarchy (paper Sec. III.D).
//
// ECS E_b specializes E_a when E_b contains all properties of E_a — i.e.
// E_a's subject-CS bitmap is a subset of E_b's and likewise for the object
// CS. The hierarchy is a lattice whose roots are the most generic ECSs.
// Its pre-order traversal defines the on-disk storage order of the PSO
// partitions, so hierarchically related ECSs — which match the same query
// ECSs — sit in adjacent ranges and one extended range scan covers a whole
// matched family.

#ifndef AXON_ECS_ECS_HIERARCHY_H_
#define AXON_ECS_ECS_HIERARCHY_H_

#include <string>
#include <vector>

#include "cs/characteristic_set.h"
#include "ecs/extended_characteristic_set.h"

namespace axon {

class EcsHierarchy {
 public:
  EcsHierarchy() = default;

  /// Builds the lattice over `sets`, resolving CS bitmaps through `cs_sets`
  /// (indexed by CsId).
  static EcsHierarchy Build(const std::vector<ExtendedCharacteristicSet>& sets,
                            const std::vector<CharacteristicSet>& cs_sets);

  size_t num_nodes() const { return children_.size(); }

  /// Immediate specializations of `node` (one level down the lattice).
  const std::vector<EcsId>& Children(EcsId node) const {
    return children_[node.value()];
  }
  /// Immediate generalizations of `node`.
  const std::vector<EcsId>& Parents(EcsId node) const {
    return parents_[node.value()];
  }
  /// Most generic ECSs (no parents), in ascending property-count order.
  const std::vector<EcsId>& Roots() const { return roots_; }

  /// True if `general` ⊑ `special` in the generality order (reflexive).
  /// Computed from the stored bitmaps, independent of the edge structure —
  /// tests use it to validate the edges.
  bool IsGeneralization(EcsId general, EcsId special) const;

  /// Pre-order traversal of the lattice (each node once, at its first
  /// visit). This is the PSO storage order used when the hierarchy
  /// optimization is on.
  const std::vector<EcsId>& PreOrder() const { return preorder_; }

  /// rank[id] = position of ECS `id` in PreOrder(). Identity-sized.
  std::vector<uint32_t> StorageRank() const;

  /// Total property count (subject CS + object CS bits) of `node`; the
  /// sort key for genericity ("the fewer properties, the more generic").
  uint32_t PropertyCount(EcsId node) const {
    return property_count_[node.value()];
  }

  void SerializeTo(std::string* out) const;
  static Result<EcsHierarchy> Deserialize(std::string_view data, size_t* pos);

 private:
  void ComputePreOrder();

  std::vector<std::vector<EcsId>> children_;
  std::vector<std::vector<EcsId>> parents_;
  std::vector<EcsId> roots_;
  std::vector<uint32_t> property_count_;
  std::vector<Bitmap> subject_bitmaps_;  // per ECS, resolved at Build time
  std::vector<Bitmap> object_bitmaps_;
  std::vector<EcsId> preorder_;
};

}  // namespace axon

#endif  // AXON_ECS_ECS_HIERARCHY_H_
