// ECS index (Sec. III.C): the PSO table holding only valid-ECS triples,
// partitioned by ECS, with a B+-tree from ECS id to row range and, per ECS,
// the first-occurrence pointers of every property ("each ECS maintains
// pointers to the first occurrences of each property in the indexed PSO
// table", Sec. III.D) — stored here as full per-property subranges since
// rows within an ECS are (P, S, O)-sorted.

#ifndef AXON_ECS_ECS_INDEX_H_
#define AXON_ECS_ECS_INDEX_H_

#include <span>
#include <vector>

#include "ecs/ecs_extractor.h"
#include "storage/btree.h"
#include "storage/triple_table.h"

namespace axon {

class PagedTripleTable;

class EcsIndex {
 public:
  EcsIndex() = default;

  /// Builds the index. `storage_rank` permutes the on-disk order of ECS
  /// partitions: rank[id] = position of ECS `id`'s partition in the PSO
  /// table. Pass the hierarchy pre-order rank to enable the Sec. III.D
  /// locality optimization, or an empty vector for plain id order.
  static EcsIndex Build(const EcsExtraction& extraction,
                        const std::vector<uint32_t>& storage_rank);

  /// The PSO table (valid-ECS triples only).
  const TripleTable& pso() const { return pso_; }

  size_t num_sets() const { return sets_.size(); }
  const ExtendedCharacteristicSet& set(EcsId id) const {
    return sets_[id.value()];
  }
  std::span<const ExtendedCharacteristicSet> sets() const { return sets_; }

  /// Row range of an ECS partition in the PSO table.
  RowRange RangeOf(EcsId id) const;

  /// Per-property subranges of an ECS partition: (predicate id, rows),
  /// ascending by row. The `.begin` of each entry is the paper's
  /// first-occurrence pointer.
  const std::vector<std::pair<TermId, RowRange>>& Properties(EcsId id) const {
    return properties_[id.value()];
  }

  /// True if the ECS's triples contain predicate `p` (condition (7) of the
  /// match test).
  bool HasProperty(EcsId id, TermId p) const;

  /// Rows of predicate `p` within ECS `id` (empty if absent).
  RowRange PropertyRange(EcsId id, TermId p) const;

  /// The storage order of partitions (ECS ids in on-disk order).
  const std::vector<EcsId>& StorageOrder() const { return storage_order_; }

  void SerializeTo(std::string* out) const;
  static Result<EcsIndex> Deserialize(std::string_view data, size_t* pos);

  /// Metadata-only serialization (everything except the PSO table); see
  /// CsIndex::SerializeMetaTo.
  void SerializeMetaTo(std::string* out) const;
  static Result<EcsIndex> DeserializeMeta(std::string_view data, size_t* pos);
  void AttachPso(TripleTable pso) { pso_ = std::move(pso); }

  /// Paged mode: see CsIndex::AttachPagedSpo. Range lookups here are
  /// metadata-only (B+-tree plus stored per-property subranges), so the
  /// only behavioral change is ByteSize reporting the compressed footprint.
  void AttachPagedPso(const PagedTripleTable* paged) { paged_pso_ = paged; }
  const PagedTripleTable* paged_pso() const { return paged_pso_; }

  uint64_t ByteSize() const;

 private:
  std::vector<ExtendedCharacteristicSet> sets_;
  TripleTable pso_;
  const PagedTripleTable* paged_pso_ = nullptr;
  BPlusTree<EcsId, RowRange> ranges_;
  std::vector<std::vector<std::pair<TermId, RowRange>>> properties_;
  std::vector<EcsId> storage_order_;
};

}  // namespace axon

#endif  // AXON_ECS_ECS_INDEX_H_
