#include "ecs/ecs_statistics.h"

#include <unordered_set>

#include "util/varint.h"

namespace axon {

EcsStatistics EcsStatistics::Build(const EcsExtraction& extraction) {
  EcsStatistics out;
  out.stats_.assign(extraction.sets.size(), EcsStats{});

  size_t i = 0;
  const auto& triples = extraction.triples;
  while (i < triples.size()) {
    EcsId ecs = triples[i].ecs;
    EcsStats& s = out.stats_[ecs.value()];
    std::unordered_set<TermId> subjects;
    std::unordered_set<TermId> objects;
    TermId last_p = kInvalidId;
    size_t j = i;
    for (; j < triples.size() && triples[j].ecs == ecs; ++j) {
      ++s.num_triples;
      subjects.insert(triples[j].s);
      objects.insert(triples[j].o);
      // Triples within an ECS are sorted by P, so distinct properties are
      // run boundaries.
      if (triples[j].p != last_p) {
        ++s.distinct_properties;
        last_p = triples[j].p;
      }
    }
    s.distinct_subjects = subjects.size();
    s.distinct_objects = objects.size();
    i = j;
  }
  return out;
}

void EcsStatistics::SerializeTo(std::string* out) const {
  PutVarint64(out, stats_.size());
  for (const EcsStats& s : stats_) {
    PutVarint64(out, s.num_triples);
    PutVarint64(out, s.distinct_subjects);
    PutVarint64(out, s.distinct_objects);
    PutVarint64(out, s.distinct_properties);
  }
}

Result<EcsStatistics> EcsStatistics::Deserialize(std::string_view data,
                                                 size_t* pos) {
  const char* p = data.data() + *pos;
  const char* limit = data.data() + data.size();
  uint64_t n = 0;
  p = GetVarint64(p, limit, &n);
  if (p == nullptr) return Status::Corruption("ecs stats: count");
  EcsStatistics out;
  out.stats_.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    EcsStats& s = out.stats_[i];
    if ((p = GetVarint64(p, limit, &s.num_triples)) == nullptr ||
        (p = GetVarint64(p, limit, &s.distinct_subjects)) == nullptr ||
        (p = GetVarint64(p, limit, &s.distinct_objects)) == nullptr ||
        (p = GetVarint64(p, limit, &s.distinct_properties)) == nullptr) {
      return Status::Corruption("ecs stats: entry");
    }
  }
  *pos = p - data.data();
  return out;
}

}  // namespace axon
