// ECS extraction — Algorithm 2 of the paper.
//
// Two implementations are provided:
//  * ExtractExtendedCharacteristicSets — the production path. One scan over
//    the CS-partitioned triples: each triple's object CS is resolved through
//    the subject→CS map built by Algorithm 1 and the (subjectCS, objectCS)
//    pair is interned. This computes exactly the ECS partitioning Algorithm 2
//    defines, in O(|D|) after CS extraction.
//  * ExtractExtendedCharacteristicSetsPairwise — the literal Algorithm 2
//    formulation (iterate all CS pairs, object-subject hash-join their triple
//    chunks). Kept as an executable specification: tests assert both paths
//    produce identical ECSs, links and triple partitions.
//
// Both also emit `ecsLinks`, the ECS-graph adjacency lists (Algorithm 2
// lines 11-18): edge E_a → E_b when E_a's object CS equals E_b's subject CS.

#ifndef AXON_ECS_ECS_EXTRACTOR_H_
#define AXON_ECS_ECS_EXTRACTOR_H_

#include <vector>

#include "cs/cs_extractor.h"
#include "ecs/extended_characteristic_set.h"

namespace axon {

struct EcsExtraction {
  /// All distinct ECSs; index == EcsId. Ids are minted in first-encounter
  /// order of (subjectCS, objectCS) pairs.
  std::vector<ExtendedCharacteristicSet> sets;

  /// Only triples belonging to a valid ECS, tagged and sorted by
  /// (ECS, P, S, O) — the persistent PSO ordering of Sec. III.C.
  std::vector<EcsTriple> triples;

  /// ecsLinks: adjacency lists over EcsIds (ECS graph edges).
  std::vector<std::vector<EcsId>> links;
};

/// Production path: single scan using the subject→CS map. With a pool the
/// discovery/tagging passes run chunked over the workers and the PSO
/// partition sort runs in parallel; ECS ids are minted from the sorted
/// (subjectCS, objectCS) pair set, so the output is bit-identical to the
/// serial (null pool) path.
EcsExtraction ExtractExtendedCharacteristicSets(const CsExtraction& cs,
                                                ThreadPool* pool = nullptr);

/// Literal Algorithm 2: p² pairwise object-subject hash joins over csMap
/// chunks. Quadratic in the number of CSs — use only on small inputs.
EcsExtraction ExtractExtendedCharacteristicSetsPairwise(const CsExtraction& cs);

}  // namespace axon

#endif  // AXON_ECS_ECS_EXTRACTOR_H_
