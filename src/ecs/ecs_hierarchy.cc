#include "ecs/ecs_hierarchy.h"

#include <algorithm>
#include <numeric>

namespace axon {

EcsHierarchy EcsHierarchy::Build(
    const std::vector<ExtendedCharacteristicSet>& sets,
    const std::vector<CharacteristicSet>& cs_sets) {
  EcsHierarchy h;
  size_t n = sets.size();
  h.children_.assign(n, {});
  h.parents_.assign(n, {});
  h.property_count_.assign(n, 0);
  h.subject_bitmaps_.resize(n);
  h.object_bitmaps_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    h.subject_bitmaps_[i] = cs_sets[sets[i].subject_cs.value()].properties;
    h.object_bitmaps_[i] = cs_sets[sets[i].object_cs.value()].properties;
    h.property_count_[i] =
        h.subject_bitmaps_[i].Count() + h.object_bitmaps_[i].Count();
  }

  // Sort by ascending property count: generalizations always precede their
  // specializations in this order (a strict generalization has strictly
  // fewer properties... unless bitmaps are equal, in which case the ECSs
  // would be the same pair — ids are unique per pair, so strictness holds
  // except for equal-count incomparable pairs, which IsGeneralization
  // rejects anyway).
  std::vector<EcsId> order(n);
  std::iota(order.begin(), order.end(), EcsId(0));
  std::sort(order.begin(), order.end(), [&h](EcsId a, EcsId b) {
    if (h.property_count_[a.value()] != h.property_count_[b.value()]) {
      return h.property_count_[a.value()] < h.property_count_[b.value()];
    }
    return a < b;
  });

  // Immediate-parent computation: for each node e (in ascending-count
  // order), its parents are the maximal strict generalizations — i.e.
  // generalizations g of e with no other generalization g' of e such that
  // g ⊑ g' (one level of ancestry only, per Sec. III.D).
  for (size_t oi = 0; oi < n; ++oi) {
    EcsId e = order[oi];
    std::vector<EcsId> gens;
    for (size_t oj = 0; oj < oi; ++oj) {
      EcsId g = order[oj];
      if (g != e && h.IsGeneralization(g, e)) gens.push_back(g);
    }
    for (EcsId g : gens) {
      bool maximal = true;
      for (EcsId g2 : gens) {
        if (g2 != g && h.IsGeneralization(g, g2)) {
          maximal = false;
          break;
        }
      }
      if (maximal) {
        h.parents_[e.value()].push_back(g);
        h.children_[g.value()].push_back(e);
      }
    }
  }

  for (EcsId e : order) {
    if (h.parents_[e.value()].empty()) h.roots_.push_back(e);
  }
  // Children in ascending-count order so the pre-order visits generic
  // families before specialized ones deterministically.
  for (auto& ch : h.children_) {
    std::sort(ch.begin(), ch.end(), [&h](EcsId a, EcsId b) {
      if (h.property_count_[a.value()] != h.property_count_[b.value()]) {
        return h.property_count_[a.value()] < h.property_count_[b.value()];
      }
      return a < b;
    });
  }
  h.ComputePreOrder();
  return h;
}

bool EcsHierarchy::IsGeneralization(EcsId general, EcsId special) const {
  return subject_bitmaps_[general.value()].IsSubsetOf(
             subject_bitmaps_[special.value()]) &&
         object_bitmaps_[general.value()].IsSubsetOf(
             object_bitmaps_[special.value()]);
}

void EcsHierarchy::ComputePreOrder() {
  preorder_.clear();
  preorder_.reserve(children_.size());
  std::vector<bool> visited(children_.size(), false);
  // Depth-first from each root; a lattice node with several parents is
  // emitted at its first visit.
  std::vector<EcsId> stack;
  for (EcsId root : roots_) {
    if (visited[root.value()]) continue;
    stack.push_back(root);
    while (!stack.empty()) {
      EcsId node = stack.back();
      stack.pop_back();
      if (visited[node.value()]) continue;
      visited[node.value()] = true;
      preorder_.push_back(node);
      // Push children in reverse so the smallest-count child pops first.
      for (auto it = children_[node.value()].rbegin();
           it != children_[node.value()].rend(); ++it) {
        if (!visited[it->value()]) stack.push_back(*it);
      }
    }
  }
  // Defensive: any node unreachable from the roots (cannot happen in a
  // well-formed lattice, but keeps PreOrder a permutation regardless).
  for (uint32_t i = 0; i < children_.size(); ++i) {
    if (!visited[i]) preorder_.push_back(EcsId(i));
  }
}

std::vector<uint32_t> EcsHierarchy::StorageRank() const {
  std::vector<uint32_t> rank(preorder_.size());
  for (uint32_t i = 0; i < preorder_.size(); ++i) {
    rank[preorder_[i].value()] = i;
  }
  return rank;
}

void EcsHierarchy::SerializeTo(std::string* out) const {
  PutVarint64(out, children_.size());
  for (size_t i = 0; i < children_.size(); ++i) {
    SerializeBitmap(subject_bitmaps_[i], out);
    SerializeBitmap(object_bitmaps_[i], out);
    PutVarint64(out, children_[i].size());
    for (EcsId c : children_[i]) PutVarintId(out, c);
  }
}

Result<EcsHierarchy> EcsHierarchy::Deserialize(std::string_view data,
                                               size_t* pos) {
  const char* p = data.data() + *pos;
  const char* limit = data.data() + data.size();
  uint64_t n = 0;
  p = GetVarint64(p, limit, &n);
  if (p == nullptr) return Status::Corruption("ecs hierarchy: node count");
  *pos = p - data.data();

  EcsHierarchy h;
  h.children_.assign(n, {});
  h.parents_.assign(n, {});
  h.property_count_.assign(n, 0);
  h.subject_bitmaps_.resize(n);
  h.object_bitmaps_.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    auto sb = DeserializeBitmap(data, pos);
    if (!sb.ok()) return sb.status();
    h.subject_bitmaps_[i] = std::move(sb).ValueOrDie();
    auto ob = DeserializeBitmap(data, pos);
    if (!ob.ok()) return ob.status();
    h.object_bitmaps_[i] = std::move(ob).ValueOrDie();
    h.property_count_[i] =
        h.subject_bitmaps_[i].Count() + h.object_bitmaps_[i].Count();
    p = data.data() + *pos;
    uint64_t m = 0;
    p = GetVarint64(p, limit, &m);
    if (p == nullptr) return Status::Corruption("ecs hierarchy: child count");
    for (uint64_t j = 0; j < m; ++j) {
      EcsId c;
      p = GetVarintId(p, limit, &c);
      if (p == nullptr) return Status::Corruption("ecs hierarchy: child");
      h.children_[i].push_back(c);
      if (c.value() >= n) {
        return Status::Corruption("ecs hierarchy: child id range");
      }
    }
    *pos = p - data.data();
  }
  for (uint32_t pi = 0; pi < n; ++pi) {
    EcsId parent(pi);
    for (EcsId c : h.children_[pi]) h.parents_[c.value()].push_back(parent);
  }
  for (uint32_t i = 0; i < n; ++i) {
    if (h.parents_[i].empty()) h.roots_.push_back(EcsId(i));
  }
  std::sort(h.roots_.begin(), h.roots_.end(), [&h](EcsId a, EcsId b) {
    if (h.property_count_[a.value()] != h.property_count_[b.value()]) {
      return h.property_count_[a.value()] < h.property_count_[b.value()];
    }
    return a < b;
  });
  h.ComputePreOrder();
  return h;
}

}  // namespace axon
