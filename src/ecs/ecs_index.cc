#include "ecs/ecs_index.h"

#include <algorithm>
#include <numeric>

#include "storage/paged_table.h"
#include "util/trace.h"

namespace axon {

EcsIndex EcsIndex::Build(const EcsExtraction& extraction,
                         const std::vector<uint32_t>& storage_rank) {
  AXON_SPAN("load.ecs_index_build");
  EcsIndex idx;
  idx.sets_ = extraction.sets;
  size_t n = idx.sets_.size();
  idx.properties_.assign(n, {});

  // Establish the partition storage order.
  idx.storage_order_.resize(n);
  std::iota(idx.storage_order_.begin(), idx.storage_order_.end(), EcsId(0));
  if (!storage_rank.empty()) {
    std::sort(idx.storage_order_.begin(), idx.storage_order_.end(),
              [&storage_rank](EcsId a, EcsId b) {
                return storage_rank[a.value()] < storage_rank[b.value()];
              });
  }

  // Locate each ECS's contiguous run in the extraction (sorted by ECS id).
  std::vector<RowRange> runs(n, RowRange{});
  for (size_t i = 0; i < extraction.triples.size();) {
    size_t j = i;
    EcsId id = extraction.triples[i].ecs;
    while (j < extraction.triples.size() && extraction.triples[j].ecs == id) {
      ++j;
    }
    runs[id.value()] = RowRange{i, j};
    i = j;
  }

  // Emit partitions in storage order; record ranges and per-property
  // subranges as we go.
  idx.pso_.Reserve(extraction.triples.size());
  std::vector<std::pair<EcsId, RowRange>> range_entries;
  for (EcsId id : idx.storage_order_) {
    const RowRange& run = runs[id.value()];
    uint64_t base = idx.pso_.size();
    TermId current_p = kInvalidId;
    for (uint64_t k = run.begin; k < run.end; ++k) {
      const EcsTriple& t = extraction.triples[k];
      if (t.p != current_p) {
        if (current_p != kInvalidId) {
          idx.properties_[id.value()].back().second.end = idx.pso_.size();
        }
        idx.properties_[id.value()].emplace_back(
            t.p, RowRange{idx.pso_.size(), idx.pso_.size()});
        current_p = t.p;
      }
      idx.pso_.Append(t.s, t.p, t.o);
    }
    if (current_p != kInvalidId) {
      idx.properties_[id.value()].back().second.end = idx.pso_.size();
    }
    range_entries.emplace_back(id, RowRange{base, idx.pso_.size()});
  }
  std::sort(range_entries.begin(), range_entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  idx.ranges_ = BPlusTree<EcsId, RowRange>::BulkLoad(range_entries);
  return idx;
}

RowRange EcsIndex::RangeOf(EcsId id) const {
  const RowRange* r = ranges_.Find(id);
  return r == nullptr ? RowRange{} : *r;
}

bool EcsIndex::HasProperty(EcsId id, TermId p) const {
  return !PropertyRange(id, p).empty();
}

RowRange EcsIndex::PropertyRange(EcsId id, TermId p) const {
  if (id.value() >= properties_.size()) return RowRange{};
  for (const auto& [pred, range] : properties_[id.value()]) {
    if (pred == p) return range;
  }
  return RowRange{};
}

void EcsIndex::SerializeMetaTo(std::string* out) const {
  PutVarint64(out, sets_.size());
  for (const ExtendedCharacteristicSet& e : sets_) {
    PutVarintId(out, e.subject_cs);
    PutVarintId(out, e.object_cs);
  }
  for (EcsId id : storage_order_) PutVarintId(out, id);
  for (const auto& props : properties_) {
    PutVarint64(out, props.size());
    for (const auto& [p, range] : props) {
      PutVarintId(out, p);
      PutVarint64(out, range.begin);
      PutVarint64(out, range.end);
    }
  }
  ranges_.SerializeTo(out);
}

void EcsIndex::SerializeTo(std::string* out) const {
  SerializeMetaTo(out);
  pso_.SerializeTo(out);
}

Result<EcsIndex> EcsIndex::DeserializeMeta(std::string_view data,
                                           size_t* pos) {
  const char* p = data.data() + *pos;
  const char* limit = data.data() + data.size();
  uint64_t n = 0;
  p = GetVarint64(p, limit, &n);
  if (p == nullptr) return Status::Corruption("ecs index: set count");

  EcsIndex idx;
  idx.sets_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    CsId scs;
    CsId ocs;
    if ((p = GetVarintId(p, limit, &scs)) == nullptr ||
        (p = GetVarintId(p, limit, &ocs)) == nullptr) {
      return Status::Corruption("ecs index: set entry");
    }
    idx.sets_.push_back(
        ExtendedCharacteristicSet{EcsId(static_cast<uint32_t>(i)), scs, ocs});
  }
  idx.storage_order_.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    EcsId id;
    p = GetVarintId(p, limit, &id);
    if (p == nullptr || id.value() >= n) {
      return Status::Corruption("ecs index: storage order");
    }
    idx.storage_order_[i] = id;
  }
  idx.properties_.assign(n, {});
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t m = 0;
    p = GetVarint64(p, limit, &m);
    if (p == nullptr) return Status::Corruption("ecs index: property count");
    for (uint64_t j = 0; j < m; ++j) {
      TermId pred;
      uint64_t begin = 0;
      uint64_t end = 0;
      if ((p = GetVarintId(p, limit, &pred)) == nullptr ||
          (p = GetVarint64(p, limit, &begin)) == nullptr ||
          (p = GetVarint64(p, limit, &end)) == nullptr) {
        return Status::Corruption("ecs index: property entry");
      }
      idx.properties_[i].emplace_back(pred, RowRange{begin, end});
    }
  }
  *pos = p - data.data();

  auto ranges = BPlusTree<EcsId, RowRange>::Deserialize(data, pos);
  if (!ranges.ok()) return ranges.status();
  idx.ranges_ = std::move(ranges).ValueOrDie();
  return idx;
}

Result<EcsIndex> EcsIndex::Deserialize(std::string_view data, size_t* pos) {
  auto idx = DeserializeMeta(data, pos);
  if (!idx.ok()) return idx.status();
  auto pso = TripleTable::Deserialize(data, pos);
  if (!pso.ok()) return pso.status();
  idx.value().pso_ = std::move(pso).ValueOrDie();
  return idx;
}

uint64_t EcsIndex::ByteSize() const {
  std::string buf;
  if (paged_pso_ != nullptr) {
    SerializeMetaTo(&buf);
    return buf.size() + paged_pso_->CompressedBytes();
  }
  SerializeTo(&buf);
  return buf.size();
}

}  // namespace axon
