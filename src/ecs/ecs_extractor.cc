#include "ecs/ecs_extractor.h"

#include <algorithm>
#include <map>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "util/hash.h"
#include "util/trace.h"

namespace axon {

namespace {

// Sorts tagged triples into the persistent (ECS, P, S, O) order and builds
// ecsLinks; shared by both extraction paths.
void FinalizeExtraction(EcsExtraction* out, ThreadPool* pool = nullptr) {
  ParallelSort(pool, &out->triples,
               [](const EcsTriple& a, const EcsTriple& b) {
                 return std::tuple(a.ecs, a.p, a.s, a.o) <
                        std::tuple(b.ecs, b.p, b.s, b.o);
               });

  // Algorithm 2 lines 9-18: subjectCSMap / objectCSMap then cross-link.
  std::unordered_map<CsId, std::vector<EcsId>> subject_cs_map;
  std::unordered_map<CsId, std::vector<EcsId>> object_cs_map;
  for (const ExtendedCharacteristicSet& e : out->sets) {
    subject_cs_map[e.subject_cs].push_back(e.id);
    object_cs_map[e.object_cs].push_back(e.id);
  }
  out->links.assign(out->sets.size(), {});
  for (const auto& [cs, lefts] : object_cs_map) {
    auto it = subject_cs_map.find(cs);
    if (it == subject_cs_map.end()) continue;
    for (EcsId left : lefts) {
      for (EcsId right : it->second) {
        out->links[left.value()].push_back(right);
      }
    }
  }
  for (auto& succ : out->links) {
    std::sort(succ.begin(), succ.end());
    succ.erase(std::unique(succ.begin(), succ.end()), succ.end());
  }
}

// Assigns ECS ids to (subjectCS, objectCS) pairs in ascending pair order —
// the same order the literal Algorithm 2 encounters them when iterating
// csMap twice — so both extraction paths are bit-identical.
std::map<std::pair<CsId, CsId>, EcsId> AssignIds(
    const std::vector<std::pair<CsId, CsId>>& pairs,
    std::vector<ExtendedCharacteristicSet>* sets) {
  std::map<std::pair<CsId, CsId>, EcsId> ids;
  for (const auto& pr : pairs) ids.emplace(pr, kNoEcs);
  uint32_t next = 0;
  for (auto& [pr, id] : ids) {
    id = EcsId(next++);
    sets->push_back(ExtendedCharacteristicSet{id, pr.first, pr.second});
  }
  return ids;
}

}  // namespace

EcsExtraction ExtractExtendedCharacteristicSets(const CsExtraction& cs,
                                                ThreadPool* pool) {
  AXON_SPAN("load.ecs_extract");
  EcsExtraction out;

  // Chunk the CS-partitioned stream for the two scan passes. Each chunk is
  // processed independently (reads of cs.subject_cs are concurrent but the
  // map is immutable here); chunk outputs are concatenated in chunk order,
  // which reproduces the serial input order exactly.
  size_t chunks = pool == nullptr ? 1
                                  : std::min(pool->num_threads() * 4,
                                             cs.triples.size() / 4096);
  if (chunks < 2) chunks = 1;
  std::vector<size_t> bounds(chunks + 1);
  for (size_t i = 0; i <= chunks; ++i) {
    bounds[i] = i * cs.triples.size() / chunks;
  }

  // Pass 1: discover the distinct (subjectCS, objectCS) pairs. Chunk-local
  // dedup, then a serial global dedup; AssignIds mints ids in ascending
  // pair order regardless of discovery order, so ids are deterministic.
  std::vector<std::pair<CsId, CsId>> pairs;
  {
    std::vector<std::vector<std::pair<CsId, CsId>>> local(chunks);
    ParallelFor(pool, chunks, [&](size_t c) {
      std::unordered_set<uint64_t> seen;
      for (size_t i = bounds[c]; i < bounds[c + 1]; ++i) {
        const LoadTriple& t = cs.triples[i];
        auto it = cs.subject_cs.find(t.o);
        if (it == cs.subject_cs.end()) continue;  // object has empty CS
        uint64_t key = HashIdPair(t.cs.value(), it->second.value());
        if (seen.insert(key).second) local[c].emplace_back(t.cs, it->second);
      }
    });
    std::unordered_set<uint64_t> seen;
    for (const auto& chunk_pairs : local) {
      for (const auto& pr : chunk_pairs) {
        if (seen.insert(HashIdPair(pr.first.value(), pr.second.value()))
                .second) {
          pairs.push_back(pr);
        }
      }
    }
  }
  auto ids = AssignIds(pairs, &out.sets);

  // Pass 2: tag the valid-ECS triples (chunk-local, concatenated in order).
  {
    std::vector<std::vector<EcsTriple>> local(chunks);
    ParallelFor(pool, chunks, [&](size_t c) {
      for (size_t i = bounds[c]; i < bounds[c + 1]; ++i) {
        const LoadTriple& t = cs.triples[i];
        auto it = cs.subject_cs.find(t.o);
        if (it == cs.subject_cs.end()) continue;
        EcsId id = ids.find({t.cs, it->second})->second;
        local[c].push_back(EcsTriple{id, t.s, t.p, t.o});
      }
    });
    size_t total = 0;
    for (const auto& chunk_triples : local) total += chunk_triples.size();
    out.triples.reserve(total);
    for (auto& chunk_triples : local) {
      out.triples.insert(out.triples.end(), chunk_triples.begin(),
                         chunk_triples.end());
    }
  }

  AXON_COUNTER_ADD("load.ecs_sets", out.sets.size());
  AXON_COUNTER_ADD("load.ecs_triples", out.triples.size());
  FinalizeExtraction(&out, pool);
  return out;
}

EcsExtraction ExtractExtendedCharacteristicSetsPairwise(
    const CsExtraction& cs) {
  EcsExtraction out;

  // csMap: CS id -> contiguous chunk of triples (input is sorted by CS).
  struct Chunk {
    size_t begin;
    size_t end;
  };
  std::map<CsId, Chunk> cs_map;
  for (size_t i = 0; i < cs.triples.size();) {
    size_t j = i;
    while (j < cs.triples.size() && cs.triples[j].cs == cs.triples[i].cs) ++j;
    cs_map.emplace(cs.triples[i].cs, Chunk{i, j});
    i = j;
  }

  // Lines 2-10: for every CS pair, object-subject hash-join their chunks.
  std::vector<std::pair<CsId, CsId>> pairs;
  std::vector<std::vector<EcsTriple>> pair_triples;
  for (const auto& [si, chunk_i] : cs_map) {
    for (const auto& [sj, chunk_j] : cs_map) {
      // Build (hash side): subjects of S_j's chunk.
      std::unordered_set<TermId> subjects_j;
      for (size_t k = chunk_j.begin; k < chunk_j.end; ++k) {
        subjects_j.insert(cs.triples[k].s);
      }
      // Probe side: triples of S_i whose object is a subject in S_j.
      std::vector<EcsTriple> joined;
      for (size_t k = chunk_i.begin; k < chunk_i.end; ++k) {
        const LoadTriple& t = cs.triples[k];
        if (subjects_j.count(t.o)) {
          joined.push_back(EcsTriple{kNoEcs, t.s, t.p, t.o});
        }
      }
      if (!joined.empty()) {
        pairs.emplace_back(si, sj);
        pair_triples.push_back(std::move(joined));
      }
    }
  }

  auto ids = AssignIds(pairs, &out.sets);
  for (size_t i = 0; i < pairs.size(); ++i) {
    EcsId id = ids.find(pairs[i])->second;
    for (EcsTriple& t : pair_triples[i]) {
      t.ecs = id;
      out.triples.push_back(t);
    }
  }

  FinalizeExtraction(&out);
  return out;
}

}  // namespace axon
