// Per-ECS metadata and statistics (paper Sec. III.D, "Metadata and
// statistics"): triple counts, distinct subject/object/property
// cardinalities. These feed the query planner's cost model — in particular
// the object-subject multiplication factor m_f,os.

#ifndef AXON_ECS_ECS_STATISTICS_H_
#define AXON_ECS_ECS_STATISTICS_H_

#include <string>
#include <vector>

#include "ecs/ecs_extractor.h"
#include "util/status.h"

namespace axon {

struct EcsStats {
  uint64_t num_triples = 0;
  uint64_t distinct_subjects = 0;
  uint64_t distinct_objects = 0;
  uint64_t distinct_properties = 0;

  bool operator==(const EcsStats& other) const {
    return num_triples == other.num_triples &&
           distinct_subjects == other.distinct_subjects &&
           distinct_objects == other.distinct_objects &&
           distinct_properties == other.distinct_properties;
  }
};

class EcsStatistics {
 public:
  EcsStatistics() = default;

  static EcsStatistics Build(const EcsExtraction& extraction);

  const EcsStats& Of(EcsId id) const { return stats_[id.value()]; }
  size_t size() const { return stats_.size(); }

  /// m_f,os(E): estimated output rows per input row of an object-subject
  /// join with E on the right (Sec. IV.C). The paper defines it as the
  /// ratio of distinct objects per subject in E; we use the tighter
  /// triples-per-distinct-subject ratio, which equals the paper's value
  /// when subject/object pairs are linked by a single property and bounds
  /// it otherwise.
  double MultiplicationFactorOs(EcsId id) const {
    const EcsStats& s = stats_[id.value()];
    if (s.distinct_subjects == 0) return 0.0;
    return static_cast<double>(s.num_triples) /
           static_cast<double>(s.distinct_subjects);
  }

  /// The symmetric factor for joins entering E through its *object* side
  /// (left-expansion of a chain): triples per distinct object.
  double MultiplicationFactorSo(EcsId id) const {
    const EcsStats& s = stats_[id.value()];
    if (s.distinct_objects == 0) return 0.0;
    return static_cast<double>(s.num_triples) /
           static_cast<double>(s.distinct_objects);
  }

  void SerializeTo(std::string* out) const;
  static Result<EcsStatistics> Deserialize(std::string_view data, size_t* pos);

 private:
  std::vector<EcsStats> stats_;
};

}  // namespace axon

#endif  // AXON_ECS_ECS_STATISTICS_H_
