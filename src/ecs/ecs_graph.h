// The ECS graph (paper Sec. II): nodes are ECSs, a directed edge
// E_{n1,n2} → E_{n2,n3} means triples of the first ECS object-subject-join
// with triples of the second. Query chains are matched against paths in
// this graph (Algorithms 3-4).

#ifndef AXON_ECS_ECS_GRAPH_H_
#define AXON_ECS_ECS_GRAPH_H_

#include <string>
#include <vector>

#include "ecs/extended_characteristic_set.h"
#include "util/status.h"

namespace axon {

class EcsGraph {
 public:
  EcsGraph() = default;
  explicit EcsGraph(std::vector<std::vector<EcsId>> links)
      : links_(std::move(links)) {}

  size_t num_nodes() const { return links_.size(); }

  size_t num_edges() const {
    size_t n = 0;
    for (const auto& s : links_) n += s.size();
    return n;
  }

  /// Successors of `node` (ECSs object-subject-joinable after it), ascending.
  const std::vector<EcsId>& Successors(EcsId node) const {
    return links_[node.value()];
  }

  bool HasEdge(EcsId from, EcsId to) const;

  /// True if `to` is reachable from `from` via 1..max_hops edges.
  bool Reachable(EcsId from, EcsId to, size_t max_hops) const;

  /// All simple paths of exactly `length` edges starting at `from`
  /// (bounded enumeration; used by tests and the path-exploration example).
  std::vector<std::vector<EcsId>> PathsFrom(EcsId from, size_t length,
                                            size_t limit = 1000) const;

  void SerializeTo(std::string* out) const;
  static Result<EcsGraph> Deserialize(std::string_view data, size_t* pos);

  bool operator==(const EcsGraph& other) const {
    return links_ == other.links_;
  }

 private:
  std::vector<std::vector<EcsId>> links_;
};

}  // namespace axon

#endif  // AXON_ECS_ECS_GRAPH_H_
