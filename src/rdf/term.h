// RDF term model (Sec. II of the paper): IRIs, blank nodes and literals.
//
// Terms exist at the system boundary only — the parser produces them and the
// result renderer consumes them. Inside the engine every term is a dense
// uint32 id assigned by the Dictionary; query processing never touches
// strings.

#ifndef AXON_RDF_TERM_H_
#define AXON_RDF_TERM_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace axon {

enum class TermKind : uint8_t {
  kIri = 0,
  kBlank = 1,
  kLiteral = 2,
};

/// A parsed RDF term. For literals, `datatype` holds the datatype IRI (may be
/// empty = xsd:string) and `language` the BCP-47 tag (mutually exclusive with
/// a datatype, as in Turtle).
struct Term {
  TermKind kind = TermKind::kIri;
  std::string value;     // IRI string, blank node label, or literal lexical form
  std::string datatype;  // literals only
  std::string language;  // literals only

  static Term Iri(std::string iri) {
    Term t;
    t.kind = TermKind::kIri;
    t.value = std::move(iri);
    return t;
  }
  static Term Blank(std::string label) {
    Term t;
    t.kind = TermKind::kBlank;
    t.value = std::move(label);
    return t;
  }
  static Term Literal(std::string lexical, std::string datatype = "",
                      std::string language = "") {
    Term t;
    t.kind = TermKind::kLiteral;
    t.value = std::move(lexical);
    t.datatype = std::move(datatype);
    t.language = std::move(language);
    return t;
  }

  bool is_iri() const { return kind == TermKind::kIri; }
  bool is_blank() const { return kind == TermKind::kBlank; }
  bool is_literal() const { return kind == TermKind::kLiteral; }

  /// N-Triples canonical form: `<iri>`, `_:label`, `"lex"`, `"lex"@en`,
  /// `"lex"^^<dt>`. This string doubles as the dictionary key, so equality of
  /// canonical forms defines term identity throughout the system.
  std::string Canonical() const;

  /// Inverse of Canonical(): parses a term from its canonical serialization.
  static Result<Term> FromCanonical(std::string_view s);

  bool operator==(const Term& other) const {
    return kind == other.kind && value == other.value &&
           datatype == other.datatype && language == other.language;
  }
  bool operator!=(const Term& other) const { return !(*this == other); }
};

}  // namespace axon

#endif  // AXON_RDF_TERM_H_
