// Term dictionary (Sec. III.A): maps RDF terms to dense uint32 ids and back.
//
// IRIs are prefix-compressed: the namespace part (up to the last '/' or '#')
// is stored once in a prefix table and each entry stores only (prefix id,
// suffix). The serialized form keeps entries in id order plus a permutation
// sorted by canonical string — the flat equivalent of the paper's clustered
// B+-tree with ascending keys — so string→id lookups after a load are binary
// searches.

#ifndef AXON_RDF_DICTIONARY_H_
#define AXON_RDF_DICTIONARY_H_

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "rdf/term.h"
#include "rdf/triple.h"
#include "util/status.h"

namespace axon {

class Dictionary {
 public:
  Dictionary();

  /// Returns the id for `term`, assigning the next free id if unseen.
  /// Ids are dense and start at 1 (0 is reserved for "unbound").
  TermId Intern(const Term& term);

  /// Interns a term given directly in canonical form.
  TermId InternCanonical(const std::string& canonical);

  /// Id of `term` if present.
  std::optional<TermId> Lookup(const Term& term) const;
  std::optional<TermId> LookupCanonical(std::string_view canonical) const;

  /// Canonical string of an id. Precondition: 1 <= id <= size().
  std::string GetCanonical(TermId id) const;

  /// Parsed term of an id.
  Result<Term> GetTerm(TermId id) const;

  /// Number of interned terms.
  size_t size() const { return suffixes_.size(); }

  /// Number of distinct IRI prefixes in the compression table.
  size_t num_prefixes() const { return prefixes_.size(); }

  /// Serializes to `out` (appends).
  Status Serialize(std::string* out) const;

  /// Rebuilds a dictionary from a Serialize()d buffer.
  static Result<Dictionary> Deserialize(std::string_view data);

  /// Approximate in-memory footprint in bytes (for the Table III storage
  /// accounting).
  uint64_t MemoryUsage() const;

 private:
  // Splits a canonical string into (prefix, suffix) at the last '/' or '#'
  // of an IRI; non-IRIs compress with the empty prefix (id 0).
  static std::pair<std::string_view, std::string_view> SplitPrefix(
      std::string_view canonical);

  uint32_t InternPrefix(std::string_view prefix);

  // prefixes_[0] is always the empty prefix.
  std::vector<std::string> prefixes_;
  std::unordered_map<std::string, uint32_t> prefix_map_;

  // Entry i (id i+1): canonical = prefixes_[prefix_ids_[i]] + suffixes_[i].
  std::vector<uint32_t> prefix_ids_;
  std::vector<std::string> suffixes_;

  std::unordered_map<std::string, TermId> term_map_;
};

}  // namespace axon

#endif  // AXON_RDF_DICTIONARY_H_
