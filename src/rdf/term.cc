#include "rdf/term.h"

#include "util/string_util.h"

namespace axon {

std::string Term::Canonical() const {
  switch (kind) {
    case TermKind::kIri:
      return "<" + value + ">";
    case TermKind::kBlank:
      return "_:" + value;
    case TermKind::kLiteral: {
      std::string s = "\"" + EscapeNTriplesLiteral(value) + "\"";
      if (!language.empty()) {
        s += "@" + language;
      } else if (!datatype.empty()) {
        s += "^^<" + datatype + ">";
      }
      return s;
    }
  }
  return "";
}

Result<Term> Term::FromCanonical(std::string_view s) {
  if (s.empty()) return Status::ParseError("empty term");
  if (s.front() == '<') {
    if (s.back() != '>' || s.size() < 2) {
      return Status::ParseError("unterminated IRI: " + std::string(s));
    }
    return Term::Iri(std::string(s.substr(1, s.size() - 2)));
  }
  if (s.size() >= 2 && s[0] == '_' && s[1] == ':') {
    return Term::Blank(std::string(s.substr(2)));
  }
  if (s.front() == '"') {
    // Find the closing quote, honoring backslash escapes.
    size_t end = std::string_view::npos;
    for (size_t i = 1; i < s.size(); ++i) {
      if (s[i] == '\\') {
        ++i;
        continue;
      }
      if (s[i] == '"') {
        end = i;
        break;
      }
    }
    if (end == std::string_view::npos) {
      return Status::ParseError("unterminated literal: " + std::string(s));
    }
    std::string lexical = UnescapeNTriplesLiteral(s.substr(1, end - 1));
    std::string_view rest = s.substr(end + 1);
    if (rest.empty()) return Term::Literal(std::move(lexical));
    if (rest.front() == '@') {
      return Term::Literal(std::move(lexical), "", std::string(rest.substr(1)));
    }
    if (StartsWith(rest, "^^<") && rest.back() == '>') {
      return Term::Literal(std::move(lexical),
                           std::string(rest.substr(3, rest.size() - 4)));
    }
    return Status::ParseError("bad literal suffix: " + std::string(s));
  }
  return Status::ParseError("unrecognized term: " + std::string(s));
}

}  // namespace axon
