#include "rdf/ntriples.h"

#include "util/string_util.h"

namespace axon {

namespace {

// Scans one term starting at s[pos]; advances pos past the term.
Result<Term> ScanTerm(std::string_view s, size_t* pos) {
  size_t i = *pos;
  if (i >= s.size()) return Status::ParseError("expected term, found end");
  char c = s[i];
  if (c == '<') {
    size_t end = s.find('>', i);
    if (end == std::string_view::npos) {
      return Status::ParseError("unterminated IRI");
    }
    *pos = end + 1;
    return Term::Iri(std::string(s.substr(i + 1, end - i - 1)));
  }
  if (c == '_' && i + 1 < s.size() && s[i + 1] == ':') {
    size_t end = i + 2;
    while (end < s.size() && !std::isspace(static_cast<unsigned char>(s[end])) &&
           s[end] != '.') {
      ++end;
    }
    if (end == i + 2) return Status::ParseError("empty blank node label");
    *pos = end;
    return Term::Blank(std::string(s.substr(i + 2, end - i - 2)));
  }
  if (c == '"') {
    size_t end = std::string_view::npos;
    for (size_t j = i + 1; j < s.size(); ++j) {
      if (s[j] == '\\') {
        ++j;
        continue;
      }
      if (s[j] == '"') {
        end = j;
        break;
      }
    }
    if (end == std::string_view::npos) {
      return Status::ParseError("unterminated literal");
    }
    std::string lexical = UnescapeNTriplesLiteral(s.substr(i + 1, end - i - 1));
    size_t j = end + 1;
    if (j < s.size() && s[j] == '@') {
      size_t tag_end = j + 1;
      while (tag_end < s.size() &&
             (std::isalnum(static_cast<unsigned char>(s[tag_end])) ||
              s[tag_end] == '-')) {
        ++tag_end;
      }
      if (tag_end == j + 1) return Status::ParseError("empty language tag");
      *pos = tag_end;
      return Term::Literal(std::move(lexical), "",
                           std::string(s.substr(j + 1, tag_end - j - 1)));
    }
    if (j + 1 < s.size() && s[j] == '^' && s[j + 1] == '^') {
      if (j + 2 >= s.size() || s[j + 2] != '<') {
        return Status::ParseError("expected datatype IRI after ^^");
      }
      size_t dt_end = s.find('>', j + 2);
      if (dt_end == std::string_view::npos) {
        return Status::ParseError("unterminated datatype IRI");
      }
      *pos = dt_end + 1;
      return Term::Literal(std::move(lexical),
                           std::string(s.substr(j + 3, dt_end - j - 3)));
    }
    *pos = j;
    return Term::Literal(std::move(lexical));
  }
  return Status::ParseError(std::string("unexpected character '") + c + "'");
}

void SkipSpace(std::string_view s, size_t* pos) {
  while (*pos < s.size() &&
         std::isspace(static_cast<unsigned char>(s[*pos]))) {
    ++*pos;
  }
}

}  // namespace

Result<TermTriple> ParseNTriplesLine(std::string_view line) {
  size_t pos = 0;
  SkipSpace(line, &pos);
  auto s = ScanTerm(line, &pos);
  if (!s.ok()) return s.status();
  if (!s.value().is_iri() && !s.value().is_blank()) {
    return Status::ParseError("subject must be IRI or blank node");
  }
  SkipSpace(line, &pos);
  auto p = ScanTerm(line, &pos);
  if (!p.ok()) return p.status();
  if (!p.value().is_iri()) {
    return Status::ParseError("predicate must be an IRI");
  }
  SkipSpace(line, &pos);
  auto o = ScanTerm(line, &pos);
  if (!o.ok()) return o.status();
  SkipSpace(line, &pos);
  if (pos < line.size() && line[pos] == '.') {
    ++pos;
    SkipSpace(line, &pos);
  }
  if (pos != line.size()) {
    return Status::ParseError("trailing garbage after statement");
  }
  TermTriple t;
  t.s = std::move(s).ValueOrDie();
  t.p = std::move(p).ValueOrDie();
  t.o = std::move(o).ValueOrDie();
  return t;
}

Status ParseNTriples(std::string_view text,
                     const std::function<void(TermTriple)>& sink) {
  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    ++line_no;
    std::string_view raw = text.substr(start, end - start);
    start = end + 1;
    std::string_view line = TrimView(raw);
    if (line.empty() || line.front() == '#') {
      if (end == text.size()) break;
      continue;
    }
    auto t = ParseNTriplesLine(line);
    if (!t.ok()) {
      return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                t.status().message());
    }
    sink(std::move(t).ValueOrDie());
    if (end == text.size()) break;
  }
  return Status::OK();
}

Result<std::vector<TermTriple>> ParseNTriplesToVector(std::string_view text) {
  std::vector<TermTriple> out;
  Status st = ParseNTriples(text, [&out](TermTriple t) {
    out.push_back(std::move(t));
  });
  if (!st.ok()) return st;
  return out;
}

std::string WriteNTriplesLine(const TermTriple& t) {
  return t.s.Canonical() + " " + t.p.Canonical() + " " + t.o.Canonical() +
         " .\n";
}

}  // namespace axon
