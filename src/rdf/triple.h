// Id-encoded triples. During loading each triple is "a vector of size 4":
// subject, predicate, object ids plus the characteristic-set id of its
// subject (Sec. III.A) — exactly the layout Algorithm 1 operates on.

#ifndef AXON_RDF_TRIPLE_H_
#define AXON_RDF_TRIPLE_H_

#include <cstdint>
#include <tuple>
#include <vector>

namespace axon {

/// Dense term id. Id 0 is reserved as "invalid / unbound".
using TermId = uint32_t;
constexpr TermId kInvalidId = 0;

/// Characteristic-set id. kNoCs marks subjects whose CS has not been
/// assigned yet, and objects with no outgoing edges ("empty CS").
using CsId = uint32_t;
constexpr CsId kNoCs = UINT32_MAX;

/// Extended-characteristic-set id.
using EcsId = uint32_t;
constexpr EcsId kNoEcs = UINT32_MAX;

struct Triple {
  TermId s = kInvalidId;
  TermId p = kInvalidId;
  TermId o = kInvalidId;

  bool operator==(const Triple& other) const {
    return s == other.s && p == other.p && o == other.o;
  }
  auto Key() const { return std::tuple(s, p, o); }
};

/// The loader's 4-wide row: triple ids plus the subject's CS id
/// (column 4 of Algorithm 1's `triples` table).
struct LoadTriple {
  TermId s = kInvalidId;
  TermId p = kInvalidId;
  TermId o = kInvalidId;
  CsId cs = kNoCs;

  Triple triple() const { return Triple{s, p, o}; }

  bool operator==(const LoadTriple& other) const {
    return s == other.s && p == other.p && o == other.o && cs == other.cs;
  }
};

using TripleVec = std::vector<Triple>;
using LoadTripleVec = std::vector<LoadTriple>;

}  // namespace axon

#endif  // AXON_RDF_TRIPLE_H_
