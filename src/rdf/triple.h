// Id-encoded triples. During loading each triple is "a vector of size 4":
// subject, predicate, object ids plus the characteristic-set id of its
// subject (Sec. III.A) — exactly the layout Algorithm 1 operates on.

#ifndef AXON_RDF_TRIPLE_H_
#define AXON_RDF_TRIPLE_H_

#include <cstdint>
#include <tuple>
#include <vector>

#include "util/strong_id.h"

namespace axon {

// Tag types for the engine's id spaces. Each space gets its own StrongId
// instantiation, so the compiler rejects any cross-space mix-up (a CsId
// where an EcsId belongs, a term id where a CS id belongs, ...).
struct TermIdTag {};
struct CsIdTag {};
struct EcsIdTag {};
struct PropOrdinalTag {};

/// Dense term id. Id 0 is reserved as "invalid / unbound".
using TermId = StrongId<TermIdTag>;
inline constexpr TermId kInvalidId{0};

/// Aggregate outputs (COUNT) bind variables to integers that need not
/// exist in the dictionary, which is immutable during query execution.
/// Ids with the top bit set encode a non-negative integer value directly;
/// the rendering layers (results_io, Database::Render) turn them back
/// into xsd:integer literals. Dictionary ids are dense from 1 and never
/// reach the tag bit in practice (2^31 - 1 distinct terms).
inline constexpr uint32_t kValueIdTag = 0x80000000u;

inline constexpr TermId MakeValueId(uint32_t v) {
  return TermId(kValueIdTag | v);
}
inline constexpr bool IsValueId(TermId id) {
  return (id.value() & kValueIdTag) != 0;
}
inline constexpr uint32_t ValueIdPayload(TermId id) {
  return id.value() & ~kValueIdTag;
}

/// Characteristic-set id. kNoCs marks subjects whose CS has not been
/// assigned yet, and objects with no outgoing edges ("empty CS").
using CsId = StrongId<CsIdTag>;
inline constexpr CsId kNoCs{UINT32_MAX};

/// Extended-characteristic-set id.
using EcsId = StrongId<EcsIdTag>;
inline constexpr EcsId kNoEcs{UINT32_MAX};

/// Dense property ordinal in PropertyRegistry first-appearance order — the
/// bit position of a property in every CS bitmap. Distinct from the
/// predicate's TermId on purpose: bitmaps are indexed by ordinal, the
/// dictionary by term id, and confusing the two was previously silent.
using PropOrdinal = StrongId<PropOrdinalTag>;

struct Triple {
  TermId s = kInvalidId;
  TermId p = kInvalidId;
  TermId o = kInvalidId;

  bool operator==(const Triple& other) const {
    return s == other.s && p == other.p && o == other.o;
  }
  auto Key() const { return std::tuple(s, p, o); }
};

/// The loader's 4-wide row: triple ids plus the subject's CS id
/// (column 4 of Algorithm 1's `triples` table).
struct LoadTriple {
  TermId s = kInvalidId;
  TermId p = kInvalidId;
  TermId o = kInvalidId;
  CsId cs = kNoCs;

  Triple triple() const { return Triple{s, p, o}; }

  bool operator==(const LoadTriple& other) const {
    return s == other.s && p == other.p && o == other.o && cs == other.cs;
  }
};

using TripleVec = std::vector<Triple>;
using LoadTripleVec = std::vector<LoadTriple>;

}  // namespace axon

#endif  // AXON_RDF_TRIPLE_H_
