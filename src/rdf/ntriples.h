// N-Triples parser and writer.
//
// N-Triples is the line-oriented RDF syntax every dataset in the paper's
// evaluation ships in. The parser is strict about term syntax but tolerant
// of surrounding whitespace and '#' comment lines, and reports
// line-numbered errors.

#ifndef AXON_RDF_NTRIPLES_H_
#define AXON_RDF_NTRIPLES_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "rdf/term.h"
#include "util/status.h"

namespace axon {

/// One parsed statement.
struct TermTriple {
  Term s;
  Term p;
  Term o;

  bool operator==(const TermTriple& other) const {
    return s == other.s && p == other.p && o == other.o;
  }
};

/// Parses N-Triples text, invoking `sink` for every statement.
/// Stops at the first syntax error and reports its 1-based line number.
Status ParseNTriples(std::string_view text,
                     const std::function<void(TermTriple)>& sink);

/// Convenience: parse into a vector.
Result<std::vector<TermTriple>> ParseNTriplesToVector(std::string_view text);

/// Parses a single N-Triples statement (no trailing '.' required).
Result<TermTriple> ParseNTriplesLine(std::string_view line);

/// Serializes one statement as a canonical N-Triples line (with " .\n").
std::string WriteNTriplesLine(const TermTriple& t);

}  // namespace axon

#endif  // AXON_RDF_NTRIPLES_H_
