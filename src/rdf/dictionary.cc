#include "rdf/dictionary.h"

#include <algorithm>

#include "util/varint.h"

namespace axon {

namespace {
constexpr char kMagic[] = "AXDICT01";
constexpr size_t kMagicLen = 8;
}  // namespace

Dictionary::Dictionary() {
  prefixes_.push_back("");
  prefix_map_.emplace("", 0);
}

std::pair<std::string_view, std::string_view> Dictionary::SplitPrefix(
    std::string_view canonical) {
  // Only IRIs ("<...>") get a namespace prefix; the '<' sigil is kept inside
  // the prefix so that concatenation reproduces the canonical form exactly.
  if (canonical.empty() || canonical.front() != '<') {
    return {std::string_view{}, canonical};
  }
  size_t pos = canonical.find_last_of("/#");
  if (pos == std::string_view::npos || pos + 1 >= canonical.size()) {
    return {std::string_view{}, canonical};
  }
  return {canonical.substr(0, pos + 1), canonical.substr(pos + 1)};
}

uint32_t Dictionary::InternPrefix(std::string_view prefix) {
  auto it = prefix_map_.find(std::string(prefix));
  if (it != prefix_map_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(prefixes_.size());
  prefixes_.emplace_back(prefix);
  prefix_map_.emplace(std::string(prefix), id);
  return id;
}

TermId Dictionary::Intern(const Term& term) {
  return InternCanonical(term.Canonical());
}

TermId Dictionary::InternCanonical(const std::string& canonical) {
  auto it = term_map_.find(canonical);
  if (it != term_map_.end()) return it->second;
  auto [prefix, suffix] = SplitPrefix(canonical);
  prefix_ids_.push_back(InternPrefix(prefix));
  suffixes_.emplace_back(suffix);
  TermId id(static_cast<uint32_t>(suffixes_.size()));  // ids start at 1
  term_map_.emplace(canonical, id);
  return id;
}

std::optional<TermId> Dictionary::Lookup(const Term& term) const {
  return LookupCanonical(term.Canonical());
}

std::optional<TermId> Dictionary::LookupCanonical(
    std::string_view canonical) const {
  auto it = term_map_.find(std::string(canonical));
  if (it == term_map_.end()) return std::nullopt;
  return it->second;
}

std::string Dictionary::GetCanonical(TermId id) const {
  size_t i = id.value() - 1;
  return prefixes_[prefix_ids_[i]] + suffixes_[i];
}

Result<Term> Dictionary::GetTerm(TermId id) const {
  if (id == kInvalidId || id.value() > suffixes_.size()) {
    return Status::OutOfRange("term id out of range: " +
                              std::to_string(id.value()));
  }
  return Term::FromCanonical(GetCanonical(id));
}

Status Dictionary::Serialize(std::string* out) const {
  out->append(kMagic, kMagicLen);
  PutVarint64(out, prefixes_.size());
  for (const std::string& p : prefixes_) {
    PutVarint64(out, p.size());
    out->append(p);
  }
  PutVarint64(out, suffixes_.size());
  for (size_t i = 0; i < suffixes_.size(); ++i) {
    PutVarint32(out, prefix_ids_[i]);
    PutVarint64(out, suffixes_[i].size());
    out->append(suffixes_[i]);
  }
  // Clustered lookup section: ids sorted by canonical string. Readers can
  // binary-search this without materializing a hash map; we also use it to
  // verify integrity on load.
  std::vector<TermId> order(suffixes_.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = TermId(static_cast<uint32_t>(i + 1));
  }
  std::sort(order.begin(), order.end(), [this](TermId a, TermId b) {
    return GetCanonical(a) < GetCanonical(b);
  });
  for (TermId id : order) PutFixed32(out, id.value());
  return Status::OK();
}

Result<Dictionary> Dictionary::Deserialize(std::string_view data) {
  if (data.size() < kMagicLen ||
      data.substr(0, kMagicLen) != std::string_view(kMagic, kMagicLen)) {
    return Status::Corruption("dictionary: bad magic");
  }
  const char* p = data.data() + kMagicLen;
  const char* limit = data.data() + data.size();

  Dictionary dict;
  uint64_t num_prefixes = 0;
  p = GetVarint64(p, limit, &num_prefixes);
  if (p == nullptr) return Status::Corruption("dictionary: prefix count");
  dict.prefixes_.clear();
  dict.prefix_map_.clear();
  dict.prefixes_.reserve(num_prefixes);
  for (uint64_t i = 0; i < num_prefixes; ++i) {
    uint64_t len = 0;
    p = GetVarint64(p, limit, &len);
    if (p == nullptr || p + len > limit) {
      return Status::Corruption("dictionary: prefix entry");
    }
    dict.prefixes_.emplace_back(p, len);
    dict.prefix_map_.emplace(dict.prefixes_.back(),
                             static_cast<uint32_t>(i));
    p += len;
  }

  uint64_t num_terms = 0;
  p = GetVarint64(p, limit, &num_terms);
  if (p == nullptr) return Status::Corruption("dictionary: term count");
  dict.prefix_ids_.reserve(num_terms);
  dict.suffixes_.reserve(num_terms);
  for (uint64_t i = 0; i < num_terms; ++i) {
    uint32_t prefix_id = 0;
    p = GetVarint32(p, limit, &prefix_id);
    if (p == nullptr || prefix_id >= dict.prefixes_.size()) {
      return Status::Corruption("dictionary: term prefix id");
    }
    uint64_t len = 0;
    p = GetVarint64(p, limit, &len);
    if (p == nullptr || p + len > limit) {
      return Status::Corruption("dictionary: term suffix");
    }
    dict.prefix_ids_.push_back(prefix_id);
    dict.suffixes_.emplace_back(p, len);
    p += len;
    TermId id(static_cast<uint32_t>(i + 1));
    dict.term_map_.emplace(dict.GetCanonical(id), id);
  }

  // Validate the clustered section.
  if (p + num_terms * 4 > limit) {
    return Status::Corruption("dictionary: truncated order section");
  }
  std::string prev;
  for (uint64_t i = 0; i < num_terms; ++i) {
    TermId id(DecodeFixed32(p));
    p += 4;
    if (id == kInvalidId || id.value() > num_terms) {
      return Status::Corruption("dictionary: order id out of range");
    }
    std::string cur = dict.GetCanonical(id);
    if (i > 0 && !(prev < cur)) {
      return Status::Corruption("dictionary: order section not sorted");
    }
    prev = std::move(cur);
  }
  return dict;
}

uint64_t Dictionary::MemoryUsage() const {
  uint64_t total = 0;
  for (const auto& s : prefixes_) total += s.size() + sizeof(std::string);
  for (const auto& s : suffixes_) total += s.size() + sizeof(std::string);
  total += prefix_ids_.size() * sizeof(uint32_t);
  // Hash maps: entry overhead estimate (key string + id + bucket pointer).
  for (const auto& [k, v] : term_map_) {
    (void)v;
    total += k.size() + sizeof(std::string) + sizeof(TermId) + 16;
  }
  return total;
}

}  // namespace axon
