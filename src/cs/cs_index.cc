#include "cs/cs_index.h"

#include <algorithm>

#include "storage/paged_table.h"
#include "util/trace.h"

namespace axon {

CsIndex CsIndex::Build(const CsExtraction& extraction) {
  AXON_SPAN("load.cs_index_build");
  CsIndex idx;
  idx.properties_ = extraction.properties;
  idx.sets_ = extraction.sets;
  idx.distinct_subjects_.assign(idx.sets_.size(), 0);

  idx.predicate_counts_.assign(idx.sets_.size(), {});
  idx.spo_.Reserve(extraction.triples.size());
  std::vector<std::pair<CsId, RowRange>> ranges;
  CsId current = kNoCs;
  TermId last_subject = kInvalidId;
  for (size_t i = 0; i < extraction.triples.size(); ++i) {
    const LoadTriple& t = extraction.triples[i];
    idx.spo_.Append(t.s, t.p, t.o);
    if (t.cs != current) {
      if (current != kNoCs) ranges.back().second.end = i;
      ranges.emplace_back(t.cs, RowRange{i, i});
      current = t.cs;
      last_subject = kInvalidId;
    }
    if (t.s != last_subject) {
      ++idx.distinct_subjects_[t.cs.value()];
      last_subject = t.s;
    }
    auto& counts = idx.predicate_counts_[t.cs.value()];
    auto it = std::lower_bound(
        counts.begin(), counts.end(), t.p,
        [](const auto& entry, TermId p) { return entry.first < p; });
    if (it != counts.end() && it->first == t.p) {
      ++it->second;
    } else {
      counts.insert(it, {t.p, 1});
    }
  }
  if (!ranges.empty()) ranges.back().second.end = extraction.triples.size();

  idx.ranges_ = BPlusTree<CsId, RowRange>::BulkLoad(ranges);

  std::vector<std::pair<TermId, CsId>> subject_entries(
      extraction.subject_cs.begin(), extraction.subject_cs.end());
  std::sort(subject_entries.begin(), subject_entries.end());
  idx.subject_cs_ = BPlusTree<TermId, CsId>::BulkLoad(subject_entries);
  return idx;
}

uint64_t CsIndex::PredicateCount(CsId id, TermId p) const {
  const auto& counts = predicate_counts_[id.value()];
  auto it = std::lower_bound(
      counts.begin(), counts.end(), p,
      [](const auto& entry, TermId pred) { return entry.first < pred; });
  if (it != counts.end() && it->first == p) return it->second;
  return 0;
}

RowRange CsIndex::RangeOf(CsId id) const {
  const RowRange* r = ranges_.Find(id);
  return r == nullptr ? RowRange{} : *r;
}

std::optional<CsId> CsIndex::CsOfSubject(TermId subject) const {
  const CsId* cs = subject_cs_.Find(subject);
  if (cs == nullptr) return std::nullopt;
  return *cs;
}

std::vector<CsId> CsIndex::MatchSupersets(const Bitmap& query) const {
  std::vector<CsId> out;
  for (const CharacteristicSet& cs : sets_) {
    if (query.IsSubsetOf(cs.properties)) out.push_back(cs.id);
  }
  return out;
}

RowRange CsIndex::SubjectRange(CsId cs, TermId subject) const {
  RowRange range = RangeOf(cs);
  if (range.empty()) return RowRange{};
  if (paged_spo_ != nullptr) {
    return paged_spo_->EqualRangeBySubject(range, subject);
  }
  std::span<const Triple> rows = spo_.slice(range);
  auto lo = std::lower_bound(rows.begin(), rows.end(), subject,
                             [](const Triple& t, TermId s) { return t.s < s; });
  auto hi = std::upper_bound(rows.begin(), rows.end(), subject,
                             [](TermId s, const Triple& t) { return s < t.s; });
  uint64_t base = range.begin;
  return RowRange{base + static_cast<uint64_t>(lo - rows.begin()),
                  base + static_cast<uint64_t>(hi - rows.begin())};
}

void CsIndex::SerializeMetaTo(std::string* out) const {
  properties_.SerializeTo(out);
  PutVarint64(out, sets_.size());
  for (const CharacteristicSet& cs : sets_) {
    SerializeBitmap(cs.properties, out);
  }
  for (uint64_t d : distinct_subjects_) PutVarint64(out, d);
  for (const auto& counts : predicate_counts_) {
    PutVarint64(out, counts.size());
    for (const auto& [p, c] : counts) {
      PutVarintId(out, p);
      PutVarint64(out, c);
    }
  }
  ranges_.SerializeTo(out);
  subject_cs_.SerializeTo(out);
}

void CsIndex::SerializeTo(std::string* out) const {
  SerializeMetaTo(out);
  spo_.SerializeTo(out);
}

Result<CsIndex> CsIndex::DeserializeMeta(std::string_view data,
                                         size_t* pos) {
  CsIndex idx;
  auto props = PropertyRegistry::Deserialize(data, pos);
  if (!props.ok()) return props.status();
  idx.properties_ = std::move(props).ValueOrDie();

  const char* p = data.data() + *pos;
  const char* limit = data.data() + data.size();
  uint64_t num_sets = 0;
  p = GetVarint64(p, limit, &num_sets);
  if (p == nullptr) return Status::Corruption("cs index: set count");
  *pos = p - data.data();
  idx.sets_.reserve(num_sets);
  for (uint64_t i = 0; i < num_sets; ++i) {
    auto bm = DeserializeBitmap(data, pos);
    if (!bm.ok()) return bm.status();
    idx.sets_.push_back(
        CharacteristicSet{CsId(static_cast<uint32_t>(i)),
                          std::move(bm).ValueOrDie()});
  }
  idx.distinct_subjects_.resize(num_sets);
  p = data.data() + *pos;
  for (uint64_t i = 0; i < num_sets; ++i) {
    uint64_t d = 0;
    p = GetVarint64(p, limit, &d);
    if (p == nullptr) return Status::Corruption("cs index: distinct subjects");
    idx.distinct_subjects_[i] = d;
  }
  idx.predicate_counts_.assign(num_sets, {});
  for (uint64_t i = 0; i < num_sets; ++i) {
    uint64_t m = 0;
    p = GetVarint64(p, limit, &m);
    if (p == nullptr) return Status::Corruption("cs index: predicate counts");
    for (uint64_t j = 0; j < m; ++j) {
      TermId pred;
      uint64_t count = 0;
      if ((p = GetVarintId(p, limit, &pred)) == nullptr ||
          (p = GetVarint64(p, limit, &count)) == nullptr) {
        return Status::Corruption("cs index: predicate count entry");
      }
      idx.predicate_counts_[i].emplace_back(pred, count);
    }
  }
  *pos = p - data.data();

  auto ranges = BPlusTree<CsId, RowRange>::Deserialize(data, pos);
  if (!ranges.ok()) return ranges.status();
  idx.ranges_ = std::move(ranges).ValueOrDie();

  auto subject_cs = BPlusTree<TermId, CsId>::Deserialize(data, pos);
  if (!subject_cs.ok()) return subject_cs.status();
  idx.subject_cs_ = std::move(subject_cs).ValueOrDie();
  return idx;
}

Result<CsIndex> CsIndex::Deserialize(std::string_view data, size_t* pos) {
  auto idx = DeserializeMeta(data, pos);
  if (!idx.ok()) return idx.status();
  auto spo = TripleTable::Deserialize(data, pos);
  if (!spo.ok()) return spo.status();
  idx.value().spo_ = std::move(spo).ValueOrDie();
  return idx;
}

uint64_t CsIndex::ByteSize() const {
  std::string buf;
  if (paged_spo_ != nullptr) {
    // Paged mode: metadata + the compressed page blob (the resident spo_
    // is empty; the raw table bytes never materialize).
    SerializeMetaTo(&buf);
    return buf.size() + paged_spo_->CompressedBytes();
  }
  SerializeTo(&buf);
  return buf.size();
}

}  // namespace axon
