// Characteristic-set extraction — Algorithm 1 of the paper.
//
// Input: the loader's N×4 table (S, P, O, CS) with the CS column unassigned.
// The extractor sorts by subject, aggregates each subject's property bitmap,
// dedupes bitmaps by hash to mint CS ids, writes the CS id into column 4 of
// every triple, then re-sorts by (CS, S) to produce the partitioned SPO
// ordering the CS index is built over.

#ifndef AXON_CS_CS_EXTRACTOR_H_
#define AXON_CS_CS_EXTRACTOR_H_

#include <unordered_map>
#include <vector>

#include "cs/characteristic_set.h"
#include "rdf/triple.h"
#include "util/thread_pool.h"

namespace axon {

/// Output of CS extraction.
struct CsExtraction {
  /// All distinct characteristic sets; index == CsId.
  std::vector<CharacteristicSet> sets;

  /// Subject node -> its CS id (needed later to resolve object CSs during
  /// ECS extraction, and for bound-subject query lookups).
  std::unordered_map<TermId, CsId> subject_cs;

  /// The input triples with column 4 assigned, sorted by (CS, S, P, O) —
  /// i.e. the exact row order of the persistent SPO table.
  LoadTripleVec triples;

  /// Dataset property ordering shared by all bitmaps.
  PropertyRegistry properties;
};

/// Runs Algorithm 1. `triples` is consumed (moved into the result and
/// re-sorted). The property registry is seeded in input order, matching the
/// paper's reference ordering. With a pool, the two partition sorts and the
/// per-subject bitmap aggregation run on the workers; CS ids are still
/// minted serially in sorted-subject order, so the extraction is
/// bit-identical to the serial (null pool) path.
CsExtraction ExtractCharacteristicSets(LoadTripleVec triples,
                                       ThreadPool* pool = nullptr);

}  // namespace axon

#endif  // AXON_CS_CS_EXTRACTOR_H_
