// Characteristic Sets (Neumann & Moerkotte; paper Sec. II, Eq. 1-2).
//
// A characteristic set S_c(s) is the set of properties a subject node emits.
// We represent it as a Bitmap over dense *property ordinals*: the paper keeps
// "a bitmap of the properties that define it, where each bit corresponds to
// the presence of a property in D", with properties "ordered as they appear
// in the first iteration of the input triples" — PropertyRegistry implements
// exactly that reference ordering.

#ifndef AXON_CS_CHARACTERISTIC_SET_H_
#define AXON_CS_CHARACTERISTIC_SET_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/triple.h"
#include "util/bitmap.h"
#include "util/status.h"
#include "util/varint.h"

namespace axon {

/// Maps predicate term ids to dense ordinals in first-appearance order.
/// This ordering is the shared reference for every property bitmap in the
/// system (CS bitmaps, query CS bitmaps, ECS property sets).
class PropertyRegistry {
 public:
  /// Registers `predicate` if unseen; returns its ordinal.
  PropOrdinal Register(TermId predicate) {
    auto it = ordinal_.find(predicate);
    if (it != ordinal_.end()) return it->second;
    PropOrdinal ord(static_cast<uint32_t>(predicates_.size()));
    predicates_.push_back(predicate);
    ordinal_.emplace(predicate, ord);
    return ord;
  }

  /// Ordinal of `predicate`, if registered.
  std::optional<PropOrdinal> OrdinalOf(TermId predicate) const {
    auto it = ordinal_.find(predicate);
    if (it == ordinal_.end()) return std::nullopt;
    return it->second;
  }

  TermId PredicateOf(PropOrdinal ordinal) const {
    return predicates_[ordinal.value()];
  }

  /// Number of distinct properties (the bitmap width; "#properties" row of
  /// Table II).
  uint32_t size() const { return static_cast<uint32_t>(predicates_.size()); }

  void SerializeTo(std::string* out) const {
    PutVarint64(out, predicates_.size());
    for (TermId p : predicates_) PutVarintId(out, p);
  }

  static Result<PropertyRegistry> Deserialize(std::string_view data,
                                              size_t* pos) {
    const char* p = data.data() + *pos;
    const char* limit = data.data() + data.size();
    uint64_t n = 0;
    p = GetVarint64(p, limit, &n);
    if (p == nullptr) return Status::Corruption("property registry: count");
    PropertyRegistry reg;
    for (uint64_t i = 0; i < n; ++i) {
      TermId id;
      p = GetVarintId(p, limit, &id);
      if (p == nullptr) return Status::Corruption("property registry: entry");
      reg.Register(id);
    }
    *pos = p - data.data();
    return reg;
  }

 private:
  std::vector<TermId> predicates_;
  std::unordered_map<TermId, PropOrdinal> ordinal_;
};

/// One characteristic set: a unique id plus the defining property bitmap.
struct CharacteristicSet {
  CsId id = kNoCs;
  Bitmap properties;  // over PropertyRegistry ordinals

  uint32_t NumProperties() const { return properties.Count(); }
};

/// Serializes a bitmap (shared helper for CS/ECS metadata sections).
void SerializeBitmap(const Bitmap& b, std::string* out);
Result<Bitmap> DeserializeBitmap(std::string_view data, size_t* pos);

}  // namespace axon

#endif  // AXON_CS_CHARACTERISTIC_SET_H_
