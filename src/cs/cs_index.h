// CS index (Sec. III.B): the persistent SPO table partitioned by the
// subject's characteristic set, with a B+-tree from CS id to row range.
//
// "The CS Index partitions all triples based on their subject's CS and
// allows us to easily evaluate properties in star patterns around a given
// node or variable, with simple range scans."

#ifndef AXON_CS_CS_INDEX_H_
#define AXON_CS_CS_INDEX_H_

#include <optional>
#include <span>
#include <vector>

#include "cs/cs_extractor.h"
#include "storage/btree.h"
#include "storage/triple_table.h"

namespace axon {

class PagedTripleTable;

class CsIndex {
 public:
  CsIndex() = default;

  /// Builds the index from a finished CS extraction. The SPO table adopts
  /// the extraction's (CS, S, P, O) row order.
  static CsIndex Build(const CsExtraction& extraction);

  /// The full SPO triples table (all triples of the dataset).
  const TripleTable& spo() const { return spo_; }

  const PropertyRegistry& properties() const { return properties_; }

  size_t num_sets() const { return sets_.size(); }
  const CharacteristicSet& set(CsId id) const { return sets_[id.value()]; }
  std::span<const CharacteristicSet> sets() const { return sets_; }

  /// Row range of a CS in the SPO table (empty range if the id is unknown).
  RowRange RangeOf(CsId id) const;

  /// CS of a subject node, if the node emits any properties.
  std::optional<CsId> CsOfSubject(TermId subject) const;

  /// All CS ids whose property bitmap is a superset of `query`
  /// (the star-pattern matching primitive: query CS ⊆ data CS).
  std::vector<CsId> MatchSupersets(const Bitmap& query) const;

  /// Rows of one subject inside its CS partition (empty if absent). Within a
  /// CS range rows are sorted by (S, P, O), so this is a binary search.
  RowRange SubjectRange(CsId cs, TermId subject) const;

  /// Number of distinct subjects carrying CS `id`.
  uint64_t DistinctSubjects(CsId id) const {
    return distinct_subjects_[id.value()];
  }

  /// Occurrences of predicate `p` among the triples of CS `id` (0 when the
  /// predicate is not in the CS). Together with DistinctSubjects this gives
  /// the per-CS multiplicity statistics of Neumann & Moerkotte's
  /// characteristic-set cardinality estimation, which Sec. IV.C's cost
  /// model builds on.
  uint64_t PredicateCount(CsId id, TermId p) const;

  /// All (predicate, count) pairs of CS `id`, ascending by predicate id.
  const std::vector<std::pair<TermId, uint64_t>>& PredicateCounts(
      CsId id) const {
    return predicate_counts_[id.value()];
  }

  void SerializeTo(std::string* out) const;
  static Result<CsIndex> Deserialize(std::string_view data, size_t* pos);

  /// Metadata-only serialization (everything except the SPO table), used
  /// by the mapped database layout where the table lives in its own
  /// aligned section.
  void SerializeMetaTo(std::string* out) const;
  static Result<CsIndex> DeserializeMeta(std::string_view data, size_t* pos);
  /// Attaches the SPO table to a DeserializeMeta()d index (owned copy or a
  /// borrowed mapped view).
  void AttachSpo(TripleTable spo) { spo_ = std::move(spo); }

  /// Paged mode (DESIGN.md §14): points the index at a compressed paged
  /// SPO table. SubjectRange switches to restart-point row decodes and
  /// ByteSize to the compressed footprint; the resident spo_ is typically
  /// dropped (AttachSpo({})) so only compressed bytes stay resident.
  /// `paged` must outlive this index (Database owns both).
  void AttachPagedSpo(const PagedTripleTable* paged) { paged_spo_ = paged; }
  const PagedTripleTable* paged_spo() const { return paged_spo_; }

  /// On-disk footprint of the table + index payloads.
  uint64_t ByteSize() const;

 private:
  PropertyRegistry properties_;
  std::vector<CharacteristicSet> sets_;
  std::vector<uint64_t> distinct_subjects_;  // per CS
  std::vector<std::vector<std::pair<TermId, uint64_t>>> predicate_counts_;
  TripleTable spo_;
  const PagedTripleTable* paged_spo_ = nullptr;
  BPlusTree<CsId, RowRange> ranges_;
  BPlusTree<TermId, CsId> subject_cs_;
};

}  // namespace axon

#endif  // AXON_CS_CS_INDEX_H_
