#include "cs/cs_extractor.h"

#include <algorithm>
#include <tuple>

namespace axon {

void SerializeBitmap(const Bitmap& b, std::string* out) {
  PutVarint32(out, b.num_bits());
  const auto& words = b.words();
  PutVarint64(out, words.size());
  for (uint64_t w : words) PutFixed64(out, w);
}

Result<Bitmap> DeserializeBitmap(std::string_view data, size_t* pos) {
  const char* p = data.data() + *pos;
  const char* limit = data.data() + data.size();
  uint32_t num_bits = 0;
  p = GetVarint32(p, limit, &num_bits);
  if (p == nullptr) return Status::Corruption("bitmap: num_bits");
  uint64_t num_words = 0;
  p = GetVarint64(p, limit, &num_words);
  if (p == nullptr || p + num_words * 8 > limit) {
    return Status::Corruption("bitmap: words");
  }
  std::vector<uint64_t> words(num_words);
  for (uint64_t i = 0; i < num_words; ++i) {
    words[i] = DecodeFixed64(p);
    p += 8;
  }
  *pos = p - data.data();
  return Bitmap::FromWords(std::move(words), num_bits);
}

CsExtraction ExtractCharacteristicSets(LoadTripleVec triples) {
  CsExtraction out;

  // Register properties in input order first — this fixes the reference
  // bitmap ordering before any sorting rearranges the triples (paper
  // footnote 5).
  for (const LoadTriple& t : triples) out.properties.Register(t.p);

  // Line 1: sort by subject (full key keeps the order deterministic).
  std::sort(triples.begin(), triples.end(),
            [](const LoadTriple& a, const LoadTriple& b) {
              return std::tuple(a.s, a.p, a.o) < std::tuple(b.s, b.p, b.o);
            });

  // Lines 2-14: one pass over subject groups; dedupe property bitmaps by
  // content hash to mint CS ids.
  std::unordered_map<uint64_t, std::vector<CsId>> bitmap_to_cs;
  auto intern_cs = [&](const Bitmap& bm) -> CsId {
    auto& bucket = bitmap_to_cs[bm.Hash()];
    for (CsId id : bucket) {
      if (out.sets[id].properties == bm) return id;
    }
    CsId id = static_cast<CsId>(out.sets.size());
    out.sets.push_back(CharacteristicSet{id, bm});
    bucket.push_back(id);
    return id;
  };

  size_t group_start = 0;
  while (group_start < triples.size()) {
    size_t group_end = group_start;
    TermId subject = triples[group_start].s;
    Bitmap bm(out.properties.size());
    while (group_end < triples.size() && triples[group_end].s == subject) {
      bm.Set(*out.properties.OrdinalOf(triples[group_end].p));
      ++group_end;
    }
    CsId cs = intern_cs(bm);
    for (size_t i = group_start; i < group_end; ++i) triples[i].cs = cs;
    out.subject_cs.emplace(subject, cs);
    group_start = group_end;
  }

  // Line 15: re-sort by CS with subject as the secondary key — the
  // persistent SPO ordering ("sort the triples by their CS, maintaining the
  // subject as the secondary sort key", Sec. III.B).
  std::sort(triples.begin(), triples.end(),
            [](const LoadTriple& a, const LoadTriple& b) {
              return std::tuple(a.cs, a.s, a.p, a.o) <
                     std::tuple(b.cs, b.s, b.p, b.o);
            });

  out.triples = std::move(triples);
  return out;
}

}  // namespace axon
