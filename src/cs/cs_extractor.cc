#include "cs/cs_extractor.h"

#include <algorithm>
#include <tuple>

#include "util/trace.h"

namespace axon {

void SerializeBitmap(const Bitmap& b, std::string* out) {
  PutVarint32(out, b.num_bits());
  const auto& words = b.words();
  PutVarint64(out, words.size());
  for (uint64_t w : words) PutFixed64(out, w);
}

Result<Bitmap> DeserializeBitmap(std::string_view data, size_t* pos) {
  const char* p = data.data() + *pos;
  const char* limit = data.data() + data.size();
  uint32_t num_bits = 0;
  p = GetVarint32(p, limit, &num_bits);
  if (p == nullptr) return Status::Corruption("bitmap: num_bits");
  uint64_t num_words = 0;
  p = GetVarint64(p, limit, &num_words);
  if (p == nullptr || p + num_words * 8 > limit) {
    return Status::Corruption("bitmap: words");
  }
  std::vector<uint64_t> words(num_words);
  for (uint64_t i = 0; i < num_words; ++i) {
    words[i] = DecodeFixed64(p);
    p += 8;
  }
  *pos = p - data.data();
  return Bitmap::FromWords(std::move(words), num_bits);
}

CsExtraction ExtractCharacteristicSets(LoadTripleVec triples,
                                       ThreadPool* pool) {
  AXON_SPAN("load.cs_extract");
  AXON_COUNTER_ADD("load.input_triples", triples.size());
  CsExtraction out;

  // Register properties in input order first — this fixes the reference
  // bitmap ordering before any sorting rearranges the triples (paper
  // footnote 5). Inherently sequential (first-encounter order).
  for (const LoadTriple& t : triples) out.properties.Register(t.p);

  // Line 1: sort by subject (full key keeps the order deterministic).
  ParallelSort(pool, &triples,
               [](const LoadTriple& a, const LoadTriple& b) {
                 return std::tuple(a.s, a.p, a.o) < std::tuple(b.s, b.p, b.o);
               });

  // Lines 2-14: locate the subject groups, aggregate each group's property
  // bitmap (parallel over groups), then mint CS ids serially in
  // sorted-subject order — the same first-encounter order the serial
  // single-pass loop produces, so ids are identical at every parallelism.
  std::vector<size_t> group_start;
  for (size_t i = 0; i < triples.size();) {
    group_start.push_back(i);
    size_t j = i;
    while (j < triples.size() && triples[j].s == triples[i].s) ++j;
    i = j;
  }
  group_start.push_back(triples.size());
  size_t num_groups = group_start.size() - 1;

  std::vector<Bitmap> group_bitmap(num_groups);
  ParallelFor(pool, num_groups, [&](size_t g) {
    Bitmap bm(out.properties.size());
    for (size_t i = group_start[g]; i < group_start[g + 1]; ++i) {
      bm.Set(out.properties.OrdinalOf(triples[i].p)->value());
    }
    group_bitmap[g] = std::move(bm);
  });

  // Dedupe property bitmaps by content hash to mint CS ids.
  std::unordered_map<uint64_t, std::vector<CsId>> bitmap_to_cs;
  auto intern_cs = [&](const Bitmap& bm) -> CsId {
    auto& bucket = bitmap_to_cs[bm.Hash()];
    for (CsId id : bucket) {
      if (out.sets[id.value()].properties == bm) return id;
    }
    CsId id(static_cast<uint32_t>(out.sets.size()));
    out.sets.push_back(CharacteristicSet{id, bm});
    bucket.push_back(id);
    return id;
  };
  for (size_t g = 0; g < num_groups; ++g) {
    CsId cs = intern_cs(group_bitmap[g]);
    for (size_t i = group_start[g]; i < group_start[g + 1]; ++i) {
      triples[i].cs = cs;
    }
    out.subject_cs.emplace(triples[group_start[g]].s, cs);
  }

  // Line 15: re-sort by CS with subject as the secondary key — the
  // persistent SPO ordering ("sort the triples by their CS, maintaining the
  // subject as the secondary sort key", Sec. III.B).
  ParallelSort(pool, &triples,
               [](const LoadTriple& a, const LoadTriple& b) {
                 return std::tuple(a.cs, a.s, a.p, a.o) <
                        std::tuple(b.cs, b.s, b.p, b.o);
               });

  out.triples = std::move(triples);
  return out;
}

}  // namespace axon
