// Chaos harness: seeded randomized load -> update -> fault -> crash ->
// reopen -> query cycles over the durable UpdatableDatabase.
//
// Each cycle opens the store, applies a random op sequence while a fault
// schedule (drawn deterministically from the seed) is armed, then reopens
// and verifies. The invariants, checked every cycle:
//
//   1. Every acknowledged write survives reopen.
//   2. Nothing materializes that was never attempted: the reopened state
//      may differ from the acknowledged state only on triples whose last
//      operation returned an error or was cut down mid-flight by a crash
//      (those bytes may or may not have reached the disk — both outcomes
//      are legal; silently resurrecting or dropping anything else is not).
//   3. Every injected failure surfaces as a clean Status — never an
//      abort, never a crash of the harness process itself.
//   4. No cycle leaves a file the reader can neither open nor cleanly
//      reject. Bitflip cycles deliberately corrupt the base file and
//      accept exactly two outcomes: an open that reproduces the oracle
//      state, or a typed Corruption rejection (counted, then salvaged).
//
// Crash cycles fork(): the child arms a `crash` failpoint at a random
// storage site, streams an intent/ack record per operation over a pipe,
// and dies mid-operation via std::_Exit; the parent replays the pipe to
// learn which writes were acknowledged and verifies the reopened store.
//
// Without -DAXON_FAILPOINTS=ON every cycle degrades to a clean
// (fault-free) cycle, so the same binary exercises the full durable
// open/update/compact/reopen/query loop in tier-1 builds and becomes a
// real chaos test in the dedicated CI job.

#ifndef AXON_CHAOS_CHAOS_HARNESS_H_
#define AXON_CHAOS_CHAOS_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace axon {
namespace chaos {

struct ChaosOptions {
  /// Master seed: the whole run — op sequences, fault schedules, crash
  /// points — is a pure function of it.
  uint64_t seed = 1;

  /// Number of load->fault->reopen->verify cycles.
  uint64_t cycles = 25;

  /// Working directory for the store files (created if absent). The store
  /// lives at <dir>/store.db (+ .wal/.tmp siblings).
  std::string dir;

  /// Operations attempted per cycle.
  uint64_t ops_per_cycle = 48;

  /// Fork-based crash cycles (needs failpoints compiled in; POSIX only).
  bool enable_crashes = true;

  /// Narrate each cycle to stderr.
  bool verbose = false;
};

struct ChaosReport {
  uint64_t cycles_run = 0;
  uint64_t ops_acknowledged = 0;
  uint64_t ops_rejected = 0;       // ops that returned a clean non-OK Status
  uint64_t crashes_injected = 0;   // children that died at an armed site
  uint64_t errors_injected = 0;    // faults that fired in error cycles
  uint64_t corruptions_detected = 0;  // bitflipped files cleanly rejected
  uint64_t salvage_opens = 0;      // OpenSalvage attempts on rejected files

  /// One line per cycle: the armed-site schedule. Reprinting it (see
  /// tools/chaos_run) is enough to reproduce a failure.
  std::vector<std::string> schedule;

  /// Invariant violations; empty == the run passed.
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
};

/// Runs the chaos loop. Deterministic in options.seed (modulo which of the
/// two legal outcomes each bitflip lands on, which depends on where the
/// flipped bit falls — both are verified, neither is a violation).
ChaosReport RunChaos(const ChaosOptions& options);

}  // namespace chaos
}  // namespace axon

#endif  // AXON_CHAOS_CHAOS_HARNESS_H_
