#include "chaos/chaos_harness.h"

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <set>
#include <utility>

#include "engine/update_store.h"
#include "rdf/ntriples.h"
#include "storage/db_file.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace axon {
namespace chaos {

namespace {

// The acknowledged-state oracle. `uncertain` holds triples whose last
// operation returned an error or was cut down by a crash: durability made
// no promise either way, so the reopened store may disagree with `oracle`
// on exactly those triples and nothing else.
struct Tracker {
  std::set<std::string> oracle;
  std::set<std::string> uncertain;

  void Acked(char op, const std::string& line) {
    uncertain.erase(line);
    if (op == '+') {
      oracle.insert(line);
    } else {
      oracle.erase(line);
    }
  }
  void Unresolved(const std::string& line) { uncertain.insert(line); }
};

std::string TripleLine(const TermTriple& t) {
  std::string line = WriteNTriplesLine(t);
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.pop_back();
  }
  return line;
}

// A deliberately small universe so inserts and deletes keep colliding —
// idempotence and delete-of-absent paths get constant exercise.
TermTriple RandomTriple(Random& rng) {
  const uint64_t s = rng.Uniform(24);
  const uint64_t p = rng.Uniform(6);
  const uint64_t o = rng.Uniform(40);
  TermTriple t;
  t.s = Term::Iri("http://chaos.axon/s" + std::to_string(s));
  t.p = Term::Iri("http://chaos.axon/p" + std::to_string(p));
  t.o = (o % 5 == 0) ? Term::Literal("v" + std::to_string(o))
                     : Term::Iri("http://chaos.axon/o" + std::to_string(o));
  return t;
}

void RemoveStoreFiles(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  std::remove((path + ".tmp").c_str());
}

void Violation(ChaosReport* report, uint64_t cycle, const char* ctx,
               const std::string& what) {
  report->violations.push_back("cycle " + std::to_string(cycle) + " (" + ctx +
                               "): " + what);
}

// Reopens the store, checks both containment invariants, runs one query
// and — on success — resolves all uncertainty to the observed state so
// later cycles verify exactly.
void VerifyReopen(const std::string& path, const UpdateOptions& store_opts,
                  uint64_t cycle, const char* ctx, uint64_t query_pick,
                  Tracker* tr, ChaosReport* report) {
  auto opened = UpdatableDatabase::OpenDurable(path, store_opts);
  if (!opened.ok()) {
    Violation(report, cycle, ctx,
              "reopen failed: " + opened.status().ToString());
    return;
  }
  UpdatableDatabase db = std::move(opened).ValueOrDie();
  auto exported = db.ExportLines();
  if (!exported.ok()) {
    Violation(report, cycle, ctx,
              "export failed: " + exported.status().ToString());
    return;
  }
  std::set<std::string> reopened(exported.value().begin(),
                                 exported.value().end());

  uint64_t bad = 0;
  for (const std::string& line : tr->oracle) {
    if (reopened.count(line) == 0 && tr->uncertain.count(line) == 0) {
      if (++bad <= 5) {
        Violation(report, cycle, ctx, "acknowledged write lost: " + line);
      }
    }
  }
  for (const std::string& line : reopened) {
    if (tr->oracle.count(line) == 0 && tr->uncertain.count(line) == 0) {
      if (++bad <= 5) {
        Violation(report, cycle, ctx,
                  "unattempted triple materialized: " + line);
      }
    }
  }
  if (bad > 5) {
    Violation(report, cycle, ctx,
              std::to_string(bad - 5) + " further state mismatches");
  }

  // One real query against the reopened store: it must succeed and agree
  // with a by-hand count over the exported lines.
  const std::string pred =
      "http://chaos.axon/p" + std::to_string(query_pick % 6);
  uint64_t expected = 0;
  const std::string needle = " <" + pred + "> ";
  for (const std::string& line : reopened) {
    if (line.find(needle) != std::string::npos) ++expected;
  }
  auto qr = db.ExecuteSparql("SELECT ?s ?o WHERE { ?s <" + pred + "> ?o }");
  if (!qr.ok()) {
    Violation(report, cycle, ctx,
              "query after reopen failed: " + qr.status().ToString());
  } else if (qr.value().table.num_rows() != expected) {
    Violation(report, cycle, ctx,
              "query returned " + std::to_string(qr.value().table.num_rows()) +
                  " rows, expected " + std::to_string(expected));
  }

  tr->oracle = std::move(reopened);
  tr->uncertain.clear();
}

// One random mutation (or occasional explicit fold) against the open
// store, with intent/ack bookkeeping in the tracker.
Status DoRandomOp(UpdatableDatabase& db, Random& rng, Tracker* tr,
                  ChaosReport* report) {
  const uint64_t roll = rng.Uniform(10);
  if (roll == 0) {
    return db.Compact();  // no logical effect; may cleanly fail
  }
  const TermTriple t = RandomTriple(rng);
  const std::string line = TripleLine(t);
  const char op = roll < 7 ? '+' : '-';
  const Status st = op == '+' ? db.Insert(t) : db.Delete(t);
  if (st.ok()) {
    tr->Acked(op, line);
    ++report->ops_acknowledged;
  } else {
    // Rolled back in memory, but the WAL bytes may or may not be durable
    // (e.g. fsync failed after a complete append): both outcomes legal.
    tr->Unresolved(line);
    ++report->ops_rejected;
  }
  return st;
}

// ---------------------------------------------------------------------
// Cycle kinds.

void RunCleanCycle(const ChaosOptions& options, const std::string& path,
                   const UpdateOptions& store_opts, uint64_t cycle,
                   Random& rng, Tracker* tr, ChaosReport* report) {
  auto opened = UpdatableDatabase::OpenDurable(path, store_opts);
  if (!opened.ok()) {
    Violation(report, cycle, "clean",
              "open failed: " + opened.status().ToString());
    return;
  }
  UpdatableDatabase db = std::move(opened).ValueOrDie();
  for (uint64_t i = 0; i < options.ops_per_cycle; ++i) {
    const Status st = DoRandomOp(db, rng, tr, report);
    if (!st.ok()) {
      Violation(report, cycle, "clean",
                "fault-free op failed: " + st.ToString());
    }
  }
}

void RunErrorCycle(const ChaosOptions& options, const std::string& path,
                   const UpdateOptions& store_opts, uint64_t cycle,
                   Random& rng, Tracker* tr, ChaosReport* report,
                   std::string* schedule_detail) {
  static const char* const kMenu[] = {
      "wal.append=err@0.4",          "wal.sync=err@0.4",
      "file.write=err@0.25",         "file.write=short:8@0.25",
      "file.sync=err@0.5",           "compact.build=err@0.5",
      "compact.persist=err@0.6",     "dbfile.write.section=err@0.3",
      "dbfile.write.toc=err@0.6",    "atomic.rename=err@0.6",
      "exec.query=oom@0.5",          "pool.task=delay:1@0.3",
  };
  auto opened = UpdatableDatabase::OpenDurable(path, store_opts);
  if (!opened.ok()) {
    Violation(report, cycle, "error",
              "open failed: " + opened.status().ToString());
    return;
  }
  UpdatableDatabase db = std::move(opened).ValueOrDie();

  const uint64_t fp_seed = rng.Next();
  failpoint::SetSeed(fp_seed);
  std::string spec(kMenu[rng.Uniform(std::size(kMenu))]);
  if (rng.Uniform(2) == 0) {
    const std::string extra = kMenu[rng.Uniform(std::size(kMenu))];
    if (extra.substr(0, extra.find('=')) !=
        spec.substr(0, spec.find('='))) {
      spec += "," + extra;
    }
  }
  *schedule_detail = "sites=" + spec + " fpseed=" + std::to_string(fp_seed);
  if (!failpoint::ArmFromSpec(spec).ok()) {
    Violation(report, cycle, "error", "failed to arm: " + spec);
    return;
  }

  for (uint64_t i = 0; i < options.ops_per_cycle; ++i) {
    if (rng.Uniform(8) == 0) {
      // Queries under fault: any outcome but a crash is legal — an armed
      // exec.query=oom must come back as a clean ResourceExhausted.
      auto qr = db.ExecuteSparql(
          "SELECT ?s ?o WHERE { ?s <http://chaos.axon/p" +
          std::to_string(rng.Uniform(6)) + "> ?o }");
      if (!qr.ok()) ++report->errors_injected;
      continue;
    }
    const Status st = DoRandomOp(db, rng, tr, report);
    if (!st.ok() && failpoint::IsInjected(st)) ++report->errors_injected;
  }
  failpoint::DisarmAll();

  // With every site disarmed the store must be fully functional again.
  const Status st = db.Compact();
  if (!st.ok()) {
    Violation(report, cycle, "error",
              "compact after disarm failed: " + st.ToString());
  }
}

void WriteLine(int fd, std::string line) {
  line.push_back('\n');
  const char* p = line.data();
  size_t left = line.size();
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // reader gone; missing acks become uncertainty
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
}

// Everything the forked child does: arm the crash site, reopen, stream
// intent/ack records while mutating, and exit without cleanup. Never
// returns to the caller's stack.
[[noreturn]] void CrashChild(int fd, const std::string& path,
                             const UpdateOptions& store_opts,
                             const std::string& site, const std::string& spec,
                             uint64_t seed, uint64_t ops) {
  failpoint::DisarmAll();
  failpoint::SetSeed(seed);
  (void)failpoint::Arm(site, spec);
  Random rng(seed);
  {
    auto opened = UpdatableDatabase::OpenDurable(path, store_opts);
    if (!opened.ok()) {
      WriteLine(fd, "E" + opened.status().ToString());
      std::_Exit(3);
    }
    UpdatableDatabase db = std::move(opened).ValueOrDie();
    for (uint64_t i = 0; i < ops; ++i) {
      const uint64_t roll = rng.Uniform(10);
      if (roll == 0) {
        (void)db.Compact();  // crash-in-compaction coverage
        continue;
      }
      const TermTriple t = RandomTriple(rng);
      const char op = roll < 7 ? '+' : '-';
      WriteLine(fd, std::string("I") + op + TripleLine(t));
      const Status st = op == '+' ? db.Insert(t) : db.Delete(t);
      WriteLine(fd, st.ok() ? "R1" : "R0");
    }
  }
  std::_Exit(0);  // armed site never fired: a clean, quiet exit
}

// Replays the child's intent/ack stream into the tracker. An intent with
// no matching result is the op the crash cut down mid-flight.
void ReplayChildStream(const std::string& stream, Tracker* tr,
                       ChaosReport* report, uint64_t cycle,
                       std::string* child_error) {
  char pending_op = 0;
  std::string pending_line;
  size_t pos = 0;
  while (pos < stream.size()) {
    const size_t eol = stream.find('\n', pos);
    if (eol == std::string::npos) break;  // partial trailing line
    const std::string line = stream.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (line[0] == 'E') {
      *child_error = line.substr(1);
    } else if (line[0] == 'I' && line.size() > 2) {
      if (pending_op != 0) tr->Unresolved(pending_line);
      pending_op = line[1];
      pending_line = line.substr(2);
    } else if (line == "R1" && pending_op != 0) {
      tr->Acked(pending_op, pending_line);
      ++report->ops_acknowledged;
      pending_op = 0;
    } else if (line == "R0" && pending_op != 0) {
      tr->Unresolved(pending_line);
      ++report->ops_rejected;
      pending_op = 0;
    }
  }
  (void)cycle;
  if (pending_op != 0) tr->Unresolved(pending_line);
}

void RunCrashCycle(const ChaosOptions& options, const std::string& path,
                   const UpdateOptions& store_opts, uint64_t cycle,
                   Random& rng, Tracker* tr, ChaosReport* report,
                   std::string* schedule_detail) {
  static const char* const kSites[] = {
      "wal.append",     "wal.sync",        "file.write",
      "file.sync",      "compact.build",   "compact.persist",
      "dbfile.write.section", "dbfile.write.toc", "atomic.rename",
  };
  const std::string site = kSites[rng.Uniform(std::size(kSites))];
  const std::string spec = "crash+" + std::to_string(rng.Uniform(24));
  const uint64_t child_seed = rng.Next();
  *schedule_detail =
      "site=" + site + " spec=" + spec + " childseed=" +
      std::to_string(child_seed);

  int fds[2];
  if (::pipe(fds) != 0) {
    Violation(report, cycle, "crash", "pipe() failed");
    return;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    Violation(report, cycle, "crash", "fork() failed");
    return;
  }
  if (pid == 0) {
    ::close(fds[0]);
    CrashChild(fds[1], path, store_opts, site, spec, child_seed,
               options.ops_per_cycle);
  }
  ::close(fds[1]);

  // Drain to EOF before waiting — never deadlocks on pipe capacity.
  std::string stream;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(fds[0], buf, sizeof(buf))) > 0) {
    stream.append(buf, static_cast<size_t>(n));
  }
  ::close(fds[0]);
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);

  std::string child_error;
  ReplayChildStream(stream, tr, report, cycle, &child_error);

  if (WIFEXITED(wstatus)) {
    const int code = WEXITSTATUS(wstatus);
    if (code == failpoint::kCrashExitCode) {
      ++report->crashes_injected;
    } else if (code == 3) {
      Violation(report, cycle, "crash",
                "child failed to open store: " + child_error);
    } else if (code != 0) {
      Violation(report, cycle, "crash",
                "child exited with unexpected code " + std::to_string(code));
    }
  } else if (WIFSIGNALED(wstatus)) {
    Violation(report, cycle, "crash",
              "child killed by signal " + std::to_string(WTERMSIG(wstatus)));
  }
}

void RunBitflipCycle(const ChaosOptions& options, const std::string& path,
                     const UpdateOptions& store_opts, uint64_t cycle,
                     Random& rng, Tracker* tr, ChaosReport* report,
                     std::string* schedule_detail) {
  {
    auto opened = UpdatableDatabase::OpenDurable(path, store_opts);
    if (!opened.ok()) {
      Violation(report, cycle, "bitflip",
                "open failed: " + opened.status().ToString());
      return;
    }
    UpdatableDatabase db = std::move(opened).ValueOrDie();
    // Mutations run fault-free so the oracle is exact...
    for (uint64_t i = 0; i < options.ops_per_cycle; ++i) {
      const Status st = DoRandomOp(db, rng, tr, report);
      if (!st.ok()) {
        Violation(report, cycle, "bitflip",
                  "fault-free op failed: " + st.ToString());
      }
    }
    // ...then exactly one silent bitflip lands somewhere in the rewritten
    // base file during the fold.
    const uint64_t fp_seed = rng.Next();
    const std::string spec = "bitflip*1+" + std::to_string(rng.Uniform(10));
    *schedule_detail = "spec=file.write=" + spec +
                       " fpseed=" + std::to_string(fp_seed);
    failpoint::SetSeed(fp_seed);
    (void)failpoint::Arm("file.write", spec);
    const Status folded = db.Compact();
    failpoint::DisarmAll();
    if (!folded.ok()) {
      // Bitflips are silent at the write site; the fold itself must not
      // observe them.
      Violation(report, cycle, "bitflip",
                "compact failed: " + folded.ToString());
      return;
    }
  }

  // Detection contract: the corrupted store either opens with the exact
  // acknowledged state (the flip fell on padding or never fired) or is
  // cleanly rejected with a typed Status. Nothing in between, no crash.
  // The query pick is drawn unconditionally so the rng stream — and with
  // it the whole schedule — does not depend on where the flip landed.
  const uint64_t query_pick = rng.Next();
  auto reopened = UpdatableDatabase::OpenDurable(path, store_opts);
  if (reopened.ok()) {
    VerifyReopen(path, store_opts, cycle, "bitflip", query_pick, tr, report);
    return;
  }
  ++report->corruptions_detected;

  // Salvage pass: quarantine checksum-failed sections; structural damage
  // may still cleanly reject the whole file. Either way, no crash.
  DbFileReader salvage;
  DbFileReader::SalvageReport salvage_report;
  ++report->salvage_opens;
  (void)salvage.OpenSalvage(path, &salvage_report);

  // The store is gone for good — wipe it and start the oracle afresh.
  RemoveStoreFiles(path);
  tr->oracle.clear();
  tr->uncertain.clear();
}

}  // namespace

ChaosReport RunChaos(const ChaosOptions& options) {
  ChaosReport report;
  if (options.dir.empty()) {
    report.violations.push_back("ChaosOptions.dir must be set");
    return report;
  }
  ::mkdir(options.dir.c_str(), 0755);  // EEXIST is fine
  const std::string path = options.dir + "/store.db";
  RemoveStoreFiles(path);  // stale files would poison the oracle

  UpdateOptions store_opts;
  store_opts.compaction_threshold = 24;  // keep auto-folds in the mix

  Random rng(options.seed ^ 0xC4A05C4A05ULL);
  Tracker tr;
  failpoint::DisarmAll();

  for (uint64_t cycle = 0; cycle < options.cycles; ++cycle) {
    uint64_t kind = rng.Uniform(4);
    if (!failpoint::CompiledIn()) kind = 0;
    if (kind == 2 && !options.enable_crashes) kind = 1;

    std::string detail;
    static const char* const kKindName[] = {"clean", "error", "crash",
                                            "bitflip"};
    switch (kind) {
      case 1:
        RunErrorCycle(options, path, store_opts, cycle, rng, &tr, &report,
                      &detail);
        break;
      case 2:
        RunCrashCycle(options, path, store_opts, cycle, rng, &tr, &report,
                      &detail);
        break;
      case 3:
        RunBitflipCycle(options, path, store_opts, cycle, rng, &tr, &report,
                        &detail);
        break;
      default:
        RunCleanCycle(options, path, store_opts, cycle, rng, &tr, &report);
        break;
    }
    std::string line = "cycle " + std::to_string(cycle) +
                       ": kind=" + kKindName[kind];
    if (!detail.empty()) line += " " + detail;
    report.schedule.push_back(line);
    if (options.verbose) std::fprintf(stderr, "[chaos] %s\n", line.c_str());

    // Bitflip cycles verify (or wipe) themselves; everything else gets
    // the standard reopen-and-verify epilogue.
    if (kind != 3) {
      VerifyReopen(path, store_opts, cycle, kKindName[kind], rng.Next(), &tr,
                   &report);
    }
    ++report.cycles_run;
    if (options.verbose && !report.violations.empty()) {
      std::fprintf(stderr, "[chaos] violations so far: %zu\n",
                   report.violations.size());
    }
  }
  failpoint::DisarmAll();
  return report;
}

}  // namespace chaos
}  // namespace axon
