// Engine comparison: runs one multi-chain-star query on axonDB and the
// three baseline index architectures over the same data, reporting
// runtimes, intermediate-result sizes and storage footprints — a miniature
// of the paper's evaluation you can play with interactively.
//
// Usage: engine_comparison [universities]   (default 4)

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "baselines/partial_index_engine.h"
#include "baselines/sixperm_engine.h"
#include "baselines/vp_engine.h"
#include "datagen/lubm_generator.h"
#include "engine/database.h"
#include "util/string_util.h"
#include "workloads/workloads.h"

int main(int argc, char** argv) {
  using namespace axon;

  LubmConfig cfg;
  cfg.num_universities = argc > 1 ? std::atoi(argv[1]) : 4;
  Dataset data = GenerateLubmDataset(cfg);
  std::printf("LUBM-like dataset: %u universities, %zu triples\n\n",
              cfg.num_universities, data.triples.size());

  auto axon_db = Database::Build(data);
  if (!axon_db.ok()) {
    std::fprintf(stderr, "build failed\n");
    return 1;
  }
  SixPermEngine sixperm = SixPermEngine::Build(data);
  PartialIndexEngine partial = PartialIndexEngine::Build(data);
  VpEngine vp = VpEngine::Build(data);

  const QueryEngine* engines[] = {&axon_db.value(), &sixperm, &partial, &vp};

  std::printf("storage footprint (indexes, dictionary excluded):\n");
  for (const QueryEngine* e : engines) {
    std::printf("  %-22s %s\n", e->name().c_str(),
                FormatBytes(e->StorageBytes()).c_str());
  }

  const WorkloadQuery& wq = LubmModifiedWorkload().Get("Q9");
  auto q = ParseSparql(wq.sparql);
  if (!q.ok()) {
    std::fprintf(stderr, "parse failed\n");
    return 1;
  }
  std::printf("\nquery %s (the Table I motivating query):\n%s\n\n",
              wq.name.c_str(), wq.sparql.c_str());

  std::printf("%-22s %12s %10s %16s %8s\n", "engine", "seconds", "rows",
              "intermediates", "joins");
  for (const QueryEngine* e : engines) {
    auto start = std::chrono::steady_clock::now();
    auto r = e->Execute(q.value());
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    if (!r.ok()) {
      std::printf("%-22s ERROR: %s\n", e->name().c_str(),
                  r.status().ToString().c_str());
      continue;
    }
    std::printf("%-22s %12.6f %10zu %16llu %8llu\n", e->name().c_str(), secs,
                r.value().table.num_rows(),
                static_cast<unsigned long long>(
                    r.value().stats.intermediate_rows),
                static_cast<unsigned long long>(r.value().stats.joins));
  }

  std::printf(
      "\nthe intermediate-result column is the paper's story in one number:"
      "\nECS matching feeds the joins only triples that participate in the"
      "\nfull chain, while per-pattern index scans materialize everything"
      "\nthat matches each pattern in isolation.\n");
  return 0;
}
