// Pathway explorer: the paper's Reactome scenario — long biological
// pathway chains with branching — explored through the public API.
//
// Demonstrates: dataset generation, chain-heavy SPARQL over the ECS index,
// the provably-empty fast path, and using the ECS graph to enumerate the
// schema-level paths that make chain queries answerable.

#include <cstdio>

#include "datagen/reactome_generator.h"
#include "engine/database.h"

int main() {
  using namespace axon;

  ReactomeConfig cfg;
  cfg.num_pathways = 60;
  Dataset data = GenerateReactomeDataset(cfg);
  std::printf("generated Reactome-like pathway graph: %zu triples\n",
              data.triples.size());

  auto db = Database::Build(data);
  if (!db.ok()) {
    std::fprintf(stderr, "build failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  const BuildInfo& info = db.value().build_info();
  std::printf("%llu CS, %llu ECS, %llu ECS-graph edges\n\n",
              static_cast<unsigned long long>(info.num_cs),
              static_cast<unsigned long long>(info.num_ecs),
              static_cast<unsigned long long>(info.num_ecs_edges));

  // A three-hop chain with stars: pathway -> reaction -> entity ->
  // reference. This is the query shape the paper's Sec. I motivates.
  constexpr char kChainQuery[] = R"(
    PREFIX bp: <http://www.biopax.org/release/biopax-level3.owl#>
    SELECT ?pathway ?reaction ?entity ?ref WHERE {
      ?pathway bp:pathwayComponent ?reaction .
      ?pathway bp:displayName ?pn .
      ?reaction bp:left ?entity .
      ?reaction bp:displayName ?rn .
      ?entity bp:entityReference ?ref .
      ?entity bp:displayName ?en .
      ?ref bp:displayName ?refn
    } LIMIT 5)";
  auto r = db.value().ExecuteSparql(kChainQuery);
  if (!r.ok()) {
    std::fprintf(stderr, "query failed: %s\n", r.status().ToString().c_str());
    return 1;
  }
  std::printf("pathway -> reaction -> entity -> reference chains (LIMIT 5):\n");
  auto rendered = db.value().Render(r.value().table);
  for (const auto& row : rendered.value()) {
    std::printf("  %s | %s | %s | %s\n", row[0].c_str(), row[1].c_str(),
                row[2].c_str(), row[3].c_str());
  }

  // The preprocessor proves structurally impossible queries empty without
  // touching the triple tables: no node both precedes an event and carries
  // a population (a Geonames property that does not even exist here).
  constexpr char kImpossible[] = R"(
    PREFIX bp: <http://www.biopax.org/release/biopax-level3.owl#>
    SELECT ?x WHERE {
      ?x bp:precedingEvent ?y .
      ?x bp:organism ?o .
      ?y bp:displayName ?n })";
  auto empty = db.value().ExecuteSparql(kImpossible);
  std::printf(
      "\nstructurally impossible chain query: %zu rows, %llu rows scanned "
      "(answered from the ECS graph alone)\n",
      empty.value().table.num_rows(),
      static_cast<unsigned long long>(empty.value().stats.rows_scanned));

  // Schema-level exploration: longest chains in the ECS graph tell us how
  // deep path queries can reach in this dataset.
  const EcsGraph& graph = db.value().ecs_graph();
  size_t longest = 0;
  for (uint32_t i = 0; i < graph.num_nodes(); ++i) {
    EcsId e(i);
    for (size_t len = longest + 1; len <= 8; ++len) {
      if (graph.PathsFrom(e, len, 1).empty()) break;
      longest = len;
    }
  }
  std::printf("\nlongest schema-level (ECS) chain: %zu hops\n", longest);
  std::printf("=> conjunctive path queries up to %zu object-subject joins "
              "can return results on this dataset\n",
              longest);
  return 0;
}
