// Schema discovery on a loosely structured dataset: the paper's Geonames
// scenario. RDF data has no declared schema, but CS/ECS extraction reveals
// the emergent one — this example prints the discovered characteristic
// sets, their populations, the ECS hierarchy, and per-ECS statistics.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "datagen/geonames_generator.h"
#include "engine/database.h"

int main() {
  using namespace axon;

  GeonamesConfig cfg;
  cfg.num_features = 3000;
  Dataset data = GenerateGeonamesDataset(cfg);
  auto db_r = Database::Build(data);
  if (!db_r.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 db_r.status().ToString().c_str());
    return 1;
  }
  const Database& db = db_r.value();
  const CsIndex& cs = db.cs_index();
  const EcsIndex& ecs = db.ecs_index();

  std::printf("Geonames-like dataset: %zu triples\n", data.triples.size());
  std::printf("emergent schema: %zu characteristic sets, %zu ECSs\n\n",
              cs.num_sets(), ecs.num_sets());

  // --- Top characteristic sets by population, with their property lists.
  std::vector<CsId> by_population(cs.num_sets());
  for (uint32_t i = 0; i < cs.num_sets(); ++i) by_population[i] = CsId(i);
  std::sort(by_population.begin(), by_population.end(),
            [&cs](CsId a, CsId b) {
              return cs.RangeOf(a).size() > cs.RangeOf(b).size();
            });
  std::printf("top 5 node types (characteristic sets) by triple count:\n");
  for (size_t i = 0; i < 5 && i < by_population.size(); ++i) {
    CsId id = by_population[i];
    std::printf("  CS%-5u %6llu triples, %4llu subjects, properties:",
                id.value(),
                static_cast<unsigned long long>(cs.RangeOf(id).size()),
                static_cast<unsigned long long>(cs.DistinctSubjects(id)));
    for (uint32_t ord : cs.set(id).properties.ToIndices()) {
      std::string canonical =
          db.dict().GetCanonical(cs.properties().PredicateOf(PropOrdinal(ord)));
      // Print only the local name for readability.
      size_t pos = canonical.find_last_of("/#");
      std::printf(" %s", canonical.substr(pos + 1, canonical.size() - pos - 2)
                             .c_str());
    }
    std::printf("\n");
  }

  // --- Relationship types (ECSs) and their join statistics.
  std::vector<EcsId> ecs_by_size(ecs.num_sets());
  for (uint32_t i = 0; i < ecs.num_sets(); ++i) ecs_by_size[i] = EcsId(i);
  std::sort(ecs_by_size.begin(), ecs_by_size.end(), [&ecs](EcsId a, EcsId b) {
    return ecs.RangeOf(a).size() > ecs.RangeOf(b).size();
  });
  std::printf("\ntop 5 relationship types (ECSs) by triple count:\n");
  for (size_t i = 0; i < 5 && i < ecs_by_size.size(); ++i) {
    EcsId id = ecs_by_size[i];
    const auto& e = ecs.set(id);
    const EcsStats& st = db.statistics().Of(id);
    std::printf(
        "  ECS%-4u CS%u -> CS%u: %llu triples, %llu subjects, %llu objects,"
        " m_f,os=%.2f\n",
        id.value(), e.subject_cs.value(), e.object_cs.value(),
        static_cast<unsigned long long>(st.num_triples),
        static_cast<unsigned long long>(st.distinct_subjects),
        static_cast<unsigned long long>(st.distinct_objects),
        db.statistics().MultiplicationFactorOs(id));
  }

  // --- The specialization hierarchy (Sec. III.D).
  const EcsHierarchy& h = db.hierarchy();
  size_t root_count = h.Roots().size();
  size_t with_children = 0;
  size_t max_children = 0;
  for (uint32_t i = 0; i < h.num_nodes(); ++i) {
    EcsId node(i);
    if (!h.Children(node).empty()) {
      ++with_children;
      max_children = std::max(max_children, h.Children(node).size());
    }
  }
  std::printf(
      "\nECS hierarchy: %zu roots (most generic), %zu internal nodes, "
      "widest family %zu children\n",
      root_count, with_children, max_children);
  std::printf(
      "storage layout follows the hierarchy pre-order so related ECS "
      "partitions are disk neighbours.\n");

  // --- What schema diversity costs: fragmentation census.
  uint64_t single_triple_ecs = 0;
  for (uint32_t i = 0; i < ecs.num_sets(); ++i) {
    if (ecs.RangeOf(EcsId(i)).size() == 1) ++single_triple_ecs;
  }
  std::printf(
      "\nfragmentation: %llu of %zu ECSs hold a single triple — the "
      "paper's observed weak spot on Geonames (Sec. V.B).\n",
      static_cast<unsigned long long>(single_triple_ecs), ecs.num_sets());
  return 0;
}
