// axon_shell: a minimal interactive shell over the public API.
//
//   .help                      command list
//   .load <file.nt>            bulk-load an N-Triples file
//   .gen lubm|reactome|geonames <scale>   generate a synthetic dataset
//   .insert <s> <p> <o> .      insert one N-Triples statement
//   .delete <s> <p> <o> .      delete one N-Triples statement
//   .stats                     schema census + storage numbers
//   .estimate                  toggle printing estimates + query plans
//   .paged on [pool-kb]|off    rebuild into compressed paged storage
//   .save <file.axdb>          persist the database (single binary file)
//   .export <file.nt>          dump the contents as N-Triples
//   .quit
//
// Any other input is accumulated until a line ending in ';' and executed
// as a SPARQL query. Works both interactively and piped:
//   printf '.gen lubm 1\nSELECT ?x WHERE { ?x <...> ?y } ;\n' | axon_shell

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "datagen/geonames_generator.h"
#include "datagen/lubm_generator.h"
#include "datagen/reactome_generator.h"
#include "engine/update_store.h"
#include "sparql/results_io.h"
#include "util/mmap_file.h"
#include "util/string_util.h"

namespace {

using namespace axon;

void PrintHelp() {
  std::printf(
      ".help | .load <file.nt> | .gen lubm|reactome|geonames <scale> |\n"
      ".insert <triple> . | .delete <triple> . | .stats | .estimate |\n"
      ".paged on [pool-kb]|off | .save <file.axdb> | .export <file.nt> |\n"
      ".quit\n"
      "anything else: SPARQL, terminated by a line ending in ';'\n"
      ".server: to serve queries over HTTP, use the axon_httpd binary\n"
      "  (axon_httpd --db store.axdb --port 8080; see README quickstart)\n");
}

void PrintStats(UpdatableDatabase& db) {
  auto snap = db.Snapshot();
  if (!snap.ok()) {
    std::printf("error: %s\n", snap.status().ToString().c_str());
    return;
  }
  const BuildInfo& info = snap.value()->build_info();
  std::printf(
      "triples %llu | terms %llu | properties %llu | CS %llu | ECS %llu | "
      "ECS edges %llu | indexes %s\n",
      static_cast<unsigned long long>(info.num_triples),
      static_cast<unsigned long long>(info.num_terms),
      static_cast<unsigned long long>(info.num_properties),
      static_cast<unsigned long long>(info.num_cs),
      static_cast<unsigned long long>(info.num_ecs),
      static_cast<unsigned long long>(info.num_ecs_edges),
      FormatBytes(snap.value()->StorageBytes()).c_str());
  if (snap.value()->is_paged()) {
    const BufferManager* buf = snap.value()->buffer_manager();
    std::printf(
        "paged storage: frame pool %s, resident %s, "
        "reads %llu, evictions %llu\n",
        FormatBytes(buf->options().pool_bytes).c_str(),
        FormatBytes(buf->resident_bytes()).c_str(),
        static_cast<unsigned long long>(buf->stats().pages_read),
        static_cast<unsigned long long>(buf->stats().pages_evicted));
  }
}

// Returns false on any query failure. Diagnostics go to stderr so piped /
// scripted use can separate results from errors, and the caller turns a
// failure into a non-zero exit code — a query that dies mid-stream must
// not look like success to a shell pipeline.
bool RunQuery(UpdatableDatabase& db, const std::string& text,
              bool print_estimates) {
  auto q = ParseSparql(text);
  if (!q.ok()) {
    std::fprintf(stderr, "parse error: %s\n", q.status().ToString().c_str());
    return false;
  }
  if (print_estimates) {
    auto snap = db.Snapshot();
    if (snap.ok()) {
      auto est = snap.value()->EstimateCardinality(q.value());
      if (est.ok()) std::printf("estimated cardinality: %.1f\n", est.value());
      auto plan = snap.value()->Explain(q.value());
      if (plan.ok()) std::printf("%s", plan.value().c_str());
    }
  }
  auto r = db.Execute(q.value());
  if (!r.ok()) {
    std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
    return false;
  }
  auto rows = db.Render(r.value().table);
  if (!rows.ok()) {
    std::fprintf(stderr, "render error: %s\n",
                 rows.status().ToString().c_str());
    return false;
  }
  // Header.
  for (const std::string& v : r.value().table.vars()) {
    std::printf("?%s\t", v.c_str());
  }
  std::printf("\n");
  size_t shown = 0;
  for (const auto& row : rows.value()) {
    for (const std::string& cell : row) std::printf("%s\t", cell.c_str());
    std::printf("\n");
    if (++shown >= 50) {
      std::printf("... (%zu more rows)\n", rows.value().size() - shown);
      break;
    }
  }
  std::printf("%zu rows; scanned %llu, intermediates %llu, joins %llu, "
              "pages %llu, evicted %llu\n",
              rows.value().size(),
              static_cast<unsigned long long>(r.value().stats.rows_scanned),
              static_cast<unsigned long long>(
                  r.value().stats.intermediate_rows),
              static_cast<unsigned long long>(r.value().stats.joins),
              static_cast<unsigned long long>(r.value().stats.pages_read),
              static_cast<unsigned long long>(r.value().stats.pages_evicted));
  return true;
}

bool HandleCommand(UpdatableDatabase& db, const std::string& line,
                   bool* print_estimates) {
  std::istringstream in(line);
  std::string cmd;
  in >> cmd;
  if (cmd == ".quit" || cmd == ".exit") return false;
  if (cmd == ".help") {
    PrintHelp();
  } else if (cmd == ".server") {
    std::printf(
        "this shell is single-user; to serve SPARQL over HTTP use\n"
        "  axon_httpd --db store.axdb --port 8080\n"
        "(.save the database first; see the README quickstart)\n");
  } else if (cmd == ".stats") {
    PrintStats(db);
  } else if (cmd == ".estimate") {
    *print_estimates = !*print_estimates;
    std::printf("cardinality estimates %s\n",
                *print_estimates ? "on" : "off");
  } else if (cmd == ".load") {
    std::string path;
    in >> path;
    std::string text;
    Status st = ReadFileToString(path, &text);
    if (st.ok()) st = db.InsertNTriples(text);
    std::printf("%s\n", st.ok() ? "ok" : st.ToString().c_str());
  } else if (cmd == ".gen") {
    std::string kind;
    uint32_t scale = 1;
    in >> kind >> scale;
    Dataset data;
    if (kind == "lubm") {
      LubmConfig cfg;
      cfg.num_universities = scale;
      data = GenerateLubmDataset(cfg);
    } else if (kind == "reactome") {
      ReactomeConfig cfg;
      cfg.num_pathways = scale * 40;
      data = GenerateReactomeDataset(cfg);
    } else if (kind == "geonames") {
      GeonamesConfig cfg;
      cfg.num_features = scale * 2000;
      data = GenerateGeonamesDataset(cfg);
    } else {
      std::printf("unknown generator '%s'\n", kind.c_str());
      return true;
    }
    std::string nt;
    for (const Triple& t : data.triples) {
      nt += data.dict.GetCanonical(t.s) + " " + data.dict.GetCanonical(t.p) +
            " " + data.dict.GetCanonical(t.o) + " .\n";
    }
    Status st = db.InsertNTriples(nt);
    std::printf("%s (%zu triples added)\n",
                st.ok() ? "ok" : st.ToString().c_str(), data.triples.size());
  } else if (cmd == ".save" || cmd == ".export") {
    std::string path;
    in >> path;
    auto snap = db.Snapshot();
    if (!snap.ok()) {
      std::printf("error: %s\n", snap.status().ToString().c_str());
      return true;
    }
    Status st;
    if (cmd == ".save") {
      st = snap.value()->Save(path);
    } else {
      auto text = snap.value()->ExportNTriples();
      st = text.ok() ? WriteStringToFile(path, text.value()) : text.status();
    }
    std::printf("%s\n", st.ok() ? "ok" : st.ToString().c_str());
  } else if (cmd == ".paged") {
    // Rebuilds the store from its current contents with paged storage
    // toggled: compressed pages behind the buffer manager (DESIGN.md §14).
    std::string mode;
    uint64_t pool_kb = 4096;
    in >> mode >> pool_kb;
    if (mode != "on" && mode != "off") {
      std::printf("usage: .paged on [pool-kb] | .paged off\n");
      return true;
    }
    auto snap = db.Snapshot();
    auto text = snap.ok() ? snap.value()->ExportNTriples()
                          : Result<std::string>(snap.status());
    if (!text.ok()) {
      std::printf("error: %s\n", text.status().ToString().c_str());
      return true;
    }
    UpdateOptions opts;
    opts.engine.use_paged_storage = mode == "on";
    opts.engine.frame_pool_bytes = pool_kb * 1024;
    auto rebuilt = UpdatableDatabase::Create(Dataset{}, opts);
    Status st = rebuilt.ok() ? rebuilt.value().InsertNTriples(text.value())
                             : rebuilt.status();
    if (!st.ok()) {
      std::printf("error: %s\n", st.ToString().c_str());
      return true;
    }
    db = std::move(rebuilt).ValueOrDie();
    if (mode == "on") {
      std::printf("paged storage on (frame pool %s)\n",
                  FormatBytes(pool_kb * 1024).c_str());
    } else {
      std::printf("paged storage off (resident)\n");
    }
  } else if (cmd == ".insert" || cmd == ".delete") {
    std::string rest = line.substr(cmd.size());
    auto t = ParseNTriplesLine(TrimView(rest));
    if (!t.ok()) {
      std::printf("parse error: %s\n", t.status().ToString().c_str());
      return true;
    }
    Status st = cmd == ".insert" ? db.Insert(t.value()) : db.Delete(t.value());
    std::printf("%s\n", st.ok() ? "ok" : st.ToString().c_str());
  } else {
    std::printf("unknown command %s (try .help)\n", cmd.c_str());
  }
  return true;
}

}  // namespace

int main() {
  auto db_r = UpdatableDatabase::Create(Dataset{});
  if (!db_r.ok()) {
    std::fprintf(stderr, "init failed: %s\n",
                 db_r.status().ToString().c_str());
    return 1;
  }
  UpdatableDatabase db = std::move(db_r).ValueOrDie();
  bool print_estimates = false;

  std::printf("axon_shell — ECS-indexed RDF store. .help for commands.\n");
  std::string line;
  std::string query_buffer;
  bool any_query_failed = false;
  while (true) {
    std::printf(query_buffer.empty() ? "axon> " : "  ... ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string_view trimmed = axon::TrimView(line);
    if (trimmed.empty()) continue;
    if (query_buffer.empty() && trimmed.front() == '.') {
      if (!HandleCommand(db, std::string(trimmed), &print_estimates)) break;
      continue;
    }
    query_buffer += std::string(trimmed) + "\n";
    if (trimmed.back() == ';') {
      // Strip the terminator and run.
      size_t pos = query_buffer.rfind(';');
      query_buffer.erase(pos);
      if (!RunQuery(db, query_buffer, print_estimates)) {
        any_query_failed = true;
      }
      query_buffer.clear();
    }
  }
  // Scripted runs (queries piped on stdin) must see failures in the exit
  // code, not only in interleaved output.
  return any_query_failed ? 1 : 0;
}
