// axon_httpd: the SPARQL-over-HTTP endpoint (src/server) as a daemon.
//
//   axon_httpd --db store.axdb --port 8080
//   axon_httpd --gen lubm --scale 2 --port 8080 --workers 4
//
// Serves GET /sparql?query=... and POST /sparql (Content-Type:
// application/sparql-query), plus GET /healthz. Results are SPARQL TSV by
// default, JSON with `Accept: application/sparql-results+json`. Overload
// is shed as 503 + Retry-After; per-request deadlines come from
// --timeout-ms or an X-Axon-Timeout-Millis request header.
//
//   curl 'http://127.0.0.1:8080/sparql?query=SELECT%20...'
//   curl -X POST -H 'Content-Type: application/sparql-query'
//        --data 'SELECT ?x WHERE { ?x <p> ?y }' http://127.0.0.1:8080/sparql
//
// SIGTERM/SIGINT trigger a graceful drain: stop accepting, finish or
// cancel in-flight queries within the drain deadline, flush stats, exit 0.

#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "datagen/lubm_generator.h"
#include "datagen/sp2b_generator.h"
#include "engine/database.h"
#include "server/server.h"

namespace {

using namespace axon;

// Signal handlers may only touch lock-free state; the main thread polls
// the flag and runs the actual drain.
volatile sig_atomic_t g_shutdown_requested = 0;

void OnSignal(int) { g_shutdown_requested = 1; }

struct Args {
  std::string db_path;
  std::string gen = "lubm";  // used when --db is absent
  uint32_t scale = 1;
  std::string host = "127.0.0.1";
  uint16_t port = 8080;
  uint32_t workers = 4;
  uint32_t max_concurrent = 8;
  uint64_t timeout_ms = 10'000;
  uint64_t drain_ms = 2'000;
};

void Usage() {
  std::fprintf(
      stderr,
      "usage: axon_httpd [--db FILE.axdb | --gen lubm|sp2b --scale N]\n"
      "                  [--host H] [--port P] [--workers N]\n"
      "                  [--max-concurrent N] [--timeout-ms T]\n"
      "                  [--drain-ms T]\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&](std::string* out) {
      if (i + 1 >= argc) return false;
      *out = argv[++i];
      return true;
    };
    std::string v;
    if (a == "--db" && next(&v)) {
      args->db_path = v;
    } else if (a == "--gen" && next(&v)) {
      args->gen = v;
    } else if (a == "--scale" && next(&v)) {
      args->scale = static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (a == "--host" && next(&v)) {
      args->host = v;
    } else if (a == "--port" && next(&v)) {
      args->port = static_cast<uint16_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (a == "--workers" && next(&v)) {
      args->workers =
          static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (a == "--max-concurrent" && next(&v)) {
      args->max_concurrent =
          static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (a == "--timeout-ms" && next(&v)) {
      args->timeout_ms = std::strtoull(v.c_str(), nullptr, 10);
    } else if (a == "--drain-ms" && next(&v)) {
      args->drain_ms = std::strtoull(v.c_str(), nullptr, 10);
    } else {
      Usage();
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;

  Result<Database> db_r = [&]() -> Result<Database> {
    if (!args.db_path.empty()) return Database::Open(args.db_path);
    Dataset data;
    if (args.gen == "lubm") {
      LubmConfig cfg;
      cfg.num_universities = args.scale;
      data = GenerateLubmDataset(cfg);
    } else if (args.gen == "sp2b") {
      Sp2bConfig cfg;
      cfg.num_years = 5 * args.scale;
      data = GenerateSp2bDataset(cfg);
    } else {
      return Status::InvalidArgument("unknown generator: " + args.gen);
    }
    return Database::Build(data);
  }();
  if (!db_r.ok()) {
    std::fprintf(stderr, "axon_httpd: database init failed: %s\n",
                 db_r.status().ToString().c_str());
    return 1;
  }
  Database db = std::move(db_r).ValueOrDie();

  GovernedOptions gov;
  gov.admission.max_concurrent = args.max_concurrent;
  gov.timeout_millis = args.timeout_ms;
  GovernedEngine engine(&db, nullptr, gov);

  server::ServerOptions opts;
  opts.host = args.host;
  opts.port = args.port;
  opts.num_workers = args.workers;
  opts.request_timeout_millis = args.timeout_ms;
  opts.drain_timeout_millis = args.drain_ms;
  server::SparqlHttpServer server(&engine, &db.dict(), opts);
  Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "axon_httpd: start failed: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "axon_httpd: serving %llu triples on http://%s:%u/sparql "
               "(%u workers, %u concurrent queries)\n",
               static_cast<unsigned long long>(db.build_info().num_triples),
               args.host.c_str(), server.port(), args.workers,
               args.max_concurrent);

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = OnSignal;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  while (g_shutdown_requested == 0) {
    ::usleep(100 * 1000);
  }
  std::fprintf(stderr, "axon_httpd: draining...\n");
  server.Shutdown();

  const server::ServerStats& s = server.stats();
  std::fprintf(
      stderr,
      "axon_httpd: done. accepted=%llu closed=%llu requests=%llu "
      "ok=%llu 4xx=%llu shed=%llu timeout=%llu 5xx=%llu abandoned=%llu\n",
      static_cast<unsigned long long>(s.accepted.load()),
      static_cast<unsigned long long>(s.closed.load()),
      static_cast<unsigned long long>(s.requests_received.load()),
      static_cast<unsigned long long>(s.responses_ok.load()),
      static_cast<unsigned long long>(s.responses_client_error.load()),
      static_cast<unsigned long long>(s.responses_shed.load()),
      static_cast<unsigned long long>(s.responses_timeout.load()),
      static_cast<unsigned long long>(s.responses_server_error.load()),
      static_cast<unsigned long long>(s.requests_abandoned.load()));
  return 0;
}
