// Quickstart: load N-Triples, build an axonDB database, run a SPARQL
// query, inspect the ECS schema census, and persist/reopen the database.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "engine/database.h"

namespace {

// The running example of the paper's Fig. 1: three people working for a
// company, its manager, and its registry.
constexpr char kNTriples[] = R"(
<http://example.org/Bob> <http://example.org/name> "Bob Plain" .
<http://example.org/Bob> <http://example.org/origin> "Ireland" .
<http://example.org/Bob> <http://example.org/birthday> "1986" .
<http://example.org/Bob> <http://example.org/worksFor> <http://example.org/RadioCom> .
<http://example.org/John> <http://example.org/name> "John Doe" .
<http://example.org/John> <http://example.org/origin> "USA" .
<http://example.org/John> <http://example.org/birthday> "1976" .
<http://example.org/John> <http://example.org/worksFor> <http://example.org/RadioCom> .
<http://example.org/Jack> <http://example.org/name> "Jack Doe" .
<http://example.org/Jack> <http://example.org/origin> "UK" .
<http://example.org/Jack> <http://example.org/birthday> "1980" .
<http://example.org/Jack> <http://example.org/marriedTo> <http://example.org/Alice> .
<http://example.org/Jack> <http://example.org/worksFor> <http://example.org/RadioCom> .
<http://example.org/RadioCom> <http://example.org/label> "Radio Com" .
<http://example.org/RadioCom> <http://example.org/address> "21 Jump St." .
<http://example.org/RadioCom> <http://example.org/managedBy> <http://example.org/Mike> .
<http://example.org/RadioCom> <http://example.org/registeredIn> <http://example.org/UKRegistry> .
<http://example.org/Mike> <http://example.org/position> "Director" .
<http://example.org/UKRegistry> <http://example.org/label> "UK Company Registry" .
<http://example.org/UKRegistry> <http://example.org/type> <http://example.org/Registrar> .
)";

constexpr char kQuery[] = R"(
PREFIX ex: <http://example.org/>
SELECT ?person ?company ?registry WHERE {
  ?person ex:name ?n .
  ?person ex:birthday ?b .
  ?person ex:worksFor ?company .
  ?company ex:label ?l .
  ?company ex:address ?a .
  ?company ex:registeredIn ?registry .
  ?registry ex:label ?rl .
  ?registry ex:type ?t
})";

}  // namespace

int main() {
  using namespace axon;

  // 1. Parse N-Triples into an id-encoded dataset.
  Dataset data;
  Status st = data.AddNTriples(kNTriples);
  if (!st.ok()) {
    std::fprintf(stderr, "parse failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu triples, %zu dictionary terms\n",
              data.triples.size(), data.dict.size());

  // 2. Build the database: CS/ECS extraction + all indexes. EngineOptions
  //    defaults to axonDB+ (hierarchy layout + query planner on).
  auto db = Database::Build(data);
  if (!db.ok()) {
    std::fprintf(stderr, "build failed: %s\n", db.status().ToString().c_str());
    return 1;
  }
  const BuildInfo& info = db.value().build_info();
  std::printf(
      "schema census: %llu properties, %llu characteristic sets, "
      "%llu extended characteristic sets (%llu chain triples)\n",
      static_cast<unsigned long long>(info.num_properties),
      static_cast<unsigned long long>(info.num_cs),
      static_cast<unsigned long long>(info.num_ecs),
      static_cast<unsigned long long>(info.num_ecs_triples));

  // 3. Run the multi-chain-star query from the paper's Fig. 1.
  auto result = db.value().ExecuteSparql(kQuery);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  auto rows = db.value().Render(result.value().table);
  std::printf("\nquery results (%zu rows):\n", rows.value().size());
  for (const auto& row : rows.value()) {
    for (const auto& cell : row) std::printf("  %s", cell.c_str());
    std::printf("\n");
  }
  std::printf("(scanned %llu rows, %llu joins)\n",
              static_cast<unsigned long long>(result.value().stats.rows_scanned),
              static_cast<unsigned long long>(result.value().stats.joins));

  // 4. Persist to a single binary file and reopen.
  std::string path = "/tmp/axon_quickstart.axdb";
  st = db.value().Save(path);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  auto reopened = Database::Open(path);
  if (!reopened.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 reopened.status().ToString().c_str());
    return 1;
  }
  auto again = reopened.value().ExecuteSparql(kQuery);
  std::printf("\nreopened %s: same query returns %zu rows\n", path.c_str(),
              again.value().table.num_rows());
  return 0;
}
