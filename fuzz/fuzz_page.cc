// Fuzz target for the page codec and the paged-table directory
// (src/storage/page_codec.cc, src/storage/paged_table.cc).
//
// The input bytes are presented twice: as a single page image to the
// strict page decoder, and as a serialized paged-table blob to the
// directory parser. The contract: hostile bytes may be rejected with
// Corruption but must never crash, hang, over-read or return without
// consuming the payload exactly. When a parse is accepted, the decoded
// views must be self-consistent — DecodeRowAt(slot) agrees with
// DecodeRows for every slot, and the directory's row counts agree with
// what the pages actually decode to.

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "storage/page_codec.h"
#include "storage/paged_table.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view bytes(reinterpret_cast<const char*>(data), size);

  // Path 1: one page image through the strict decoder.
  axon::pagecodec::PageView view;
  if (axon::pagecodec::ParsePage(bytes, &view).ok()) {
    std::vector<axon::Triple> rows;
    if (axon::pagecodec::DecodeRows(view, &rows).ok()) {
      // An accepted page must decode identically slot-by-slot.
      for (uint32_t slot = 0; slot < view.num_rows; ++slot) {
        axon::Triple t;
        if (!axon::pagecodec::DecodeRowAt(view, slot, &t).ok() ||
            !(t == rows[slot])) {
          __builtin_trap();
        }
      }
    }
  }

  // Path 2: a paged-table blob through the directory parser. Accepted
  // directories get their pages decoded (checksums verify lazily) and a
  // few point reads; mismatching row counts must surface as Corruption,
  // never as a bad span.
  auto table = axon::PagedTripleTable::FromSerialized(bytes, /*copy=*/true);
  if (table.ok()) {
    const axon::PagedTripleTable& t = table.value();
    uint64_t walked = 0;
    axon::Status walk = t.ForEachPage(
        [&walked](std::span<const axon::Triple> chunk, uint64_t first_row) {
          if (first_row != walked) __builtin_trap();
          walked += chunk.size();
        });
    if (walk.ok() && walked != t.num_rows()) __builtin_trap();
    for (uint64_t row = 0; row < t.num_rows();
         row += t.num_rows() / 7 + 1) {
      axon::Triple out;
      (void)t.RowAt(row, &out);
    }
  }
  return 0;
}
