// Fuzz target for the single-binary-file database reader
// (src/storage/db_file.cc).
//
// The input bytes are presented to DbFileReader as a database file. The
// contract under test: hostile bytes may be rejected with a typed Status
// but must never crash, hang or over-read — in both strict Open() and
// quarantine-based OpenSalvage() mode. Every section a successful open
// serves is fully read, so a TOC entry pointing outside the mapping would
// surface under ASan.

#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>

#include "storage/db_file.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // DbFileReader memory-maps a path, so the input goes through a
  // per-process scratch file (reused across iterations).
  static const std::string path =
      "/tmp/axon_fuzz_dbfile_" + std::to_string(::getpid()) + ".bin";
  {
    FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return 0;
    if (size > 0 && std::fwrite(data, 1, size, f) != size) {
      std::fclose(f);
      return 0;
    }
    std::fclose(f);
  }

  axon::DbFileReader reader;
  if (reader.Open(path).ok()) {
    for (const std::string& name : reader.SectionNames()) {
      auto section = reader.GetSection(name);
      if (section.ok()) {
        // Touch every byte: an out-of-bounds TOC entry must fault under
        // ASan here rather than lurk.
        uint64_t sum = 0;
        for (const char c : section.value()) {
          sum += static_cast<unsigned char>(c);
        }
        volatile uint64_t sink = sum;
        (void)sink;
      }
    }
    (void)reader.GetSection("no-such-section");
    (void)reader.HasSection("no-such-section");
  }

  axon::DbFileReader salvage;
  axon::DbFileReader::SalvageReport report;
  if (salvage.OpenSalvage(path, &report).ok()) {
    for (const std::string& name : salvage.SectionNames()) {
      (void)salvage.GetSection(name);
    }
    for (const std::string& q : report.quarantined) {
      (void)q.size();
    }
  }
  return 0;
}
