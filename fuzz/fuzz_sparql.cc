// Fuzz target for the SPARQL lexer and parser (src/sparql).
//
// The lexer runs first so a token-stream crash is attributed to it even
// when the parser would have rejected the query earlier. Accepted queries
// must satisfy basic well-formedness of the produced algebra (non-empty
// pattern list unless the query is trivial), guarding against "parses but
// produces garbage" states.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "sparql/lexer.h"
#include "sparql/parser.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  (void)axon::TokenizeSparql(text);
  auto q = axon::ParseSparql(text);
  if (q.ok()) {
    // Touch the parsed representation so dangling views would be caught
    // under ASan.
    for (const auto& p : q.value().patterns) {
      (void)p.ToString().size();
    }
    for (const auto& v : q.value().EffectiveProjection()) (void)v.size();
  }
  return 0;
}
