// Fuzz target for the SPARQL lexer and parser (src/sparql).
//
// The lexer runs first so a token-stream crash is attributed to it even
// when the parser would have rejected the query earlier. Accepted queries
// must satisfy basic well-formedness of the produced algebra (some group
// content unless the query is trivial), guarding against "parses but
// produces garbage" states. The whole extended surface — OPTIONAL blocks,
// UNION branches, FILTER expression trees, ORDER BY keys and aggregates —
// is walked and printed so dangling views anywhere in the algebra are
// caught under ASan, and the printed form is re-parsed to exercise the
// printer/parser pair on fuzzer-discovered shapes.

#include <cstddef>
#include <cstdint>
#include <string_view>

#include "sparql/algebra.h"
#include "sparql/lexer.h"
#include "sparql/parser.h"

namespace {

void WalkGroup(const axon::GroupPattern& g) {
  for (const auto& p : g.patterns) (void)p.ToString().size();
  for (const auto& f : g.filters) (void)f.ToString().size();
  for (const auto& opt : g.optionals) WalkGroup(opt);
  for (const auto& u : g.unions) {
    for (const auto& branch : u.branches) WalkGroup(branch);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  (void)axon::TokenizeSparql(text);
  auto q = axon::ParseSparql(text);
  if (q.ok()) {
    const axon::SelectQuery& query = q.value();
    // Touch the parsed representation so dangling views would be caught
    // under ASan.
    for (const auto& p : query.patterns) (void)p.ToString().size();
    for (const auto& f : query.expr_filters) (void)f.ToString().size();
    for (const auto& opt : query.optionals) WalkGroup(opt);
    for (const auto& u : query.unions) {
      for (const auto& branch : u.branches) WalkGroup(branch);
    }
    for (const auto& k : query.order_by) (void)k.var.size();
    for (const auto& a : query.aggregates) (void)(a.var.size() + a.as.size());
    for (const auto& v : query.EffectiveProjection()) (void)v.size();
    // The printer must never crash on an accepted query, and its output
    // must go back through the parser without crashing either.
    std::string printed = query.ToString();
    (void)axon::ParseSparql(printed);
  }
  return 0;
}
