// Fuzz target for the HTTP request parser (src/server/http).
//
// The parser sits directly on untrusted socket bytes, so the contract
// under fuzzing is total: any byte sequence, fed at any fragmentation, is
// either accepted as a well-formed request or rejected with one of the
// pinned 4xx/5xx statuses — never a crash, never an unbounded buffer, and
// never a result that differs with how the bytes were torn into reads.
// The first input byte seeds the fragmentation pattern so libFuzzer can
// explore torn-read interleavings; the one-shot parse is then replayed
// and the outcomes compared.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "server/http.h"

namespace {

struct Outcome {
  axon::http::ParseResult result;
  int status;
  std::string method, path, query, body;
};

Outcome ParseWith(std::string_view wire, size_t fragment) {
  axon::http::RequestParser parser;
  axon::http::ParseResult r = axon::http::ParseResult::kNeedMore;
  std::string pending(wire);
  while (!pending.empty()) {
    std::string_view window(pending);
    if (fragment != 0) window = window.substr(0, fragment);
    size_t consumed = 0;
    r = parser.Feed(window, &consumed);
    pending.erase(0, consumed);
    if (r != axon::http::ParseResult::kNeedMore) break;
    if (consumed == 0 && window.size() == pending.size()) break;
  }
  Outcome out;
  out.result = r;
  out.status = parser.error_status();
  if (r == axon::http::ParseResult::kDone) {
    const axon::http::Request& req = parser.request();
    out.method = req.method;
    out.path = req.path;
    out.query = req.query;
    out.body = req.body;
    // Exercise the accessors the server calls on every request.
    std::string decoded;
    (void)req.QueryParam("query", &decoded);
    (void)req.FindHeader("content-type");
    (void)req.FindHeader("accept");
  }
  return out;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  // Byte 0 picks the fragmentation: 0 = one-shot, else chunks of 1..255.
  const size_t fragment = data[0];
  std::string_view wire(reinterpret_cast<const char*>(data + 1), size - 1);

  Outcome whole = ParseWith(wire, 0);
  Outcome torn = ParseWith(wire, fragment == 0 ? 1 : fragment);

  // Fragmentation must never change what the bytes mean.
  if (whole.result != torn.result || whole.status != torn.status ||
      whole.method != torn.method || whole.path != torn.path ||
      whole.query != torn.query || whole.body != torn.body) {
    __builtin_trap();
  }

  if (whole.result == axon::http::ParseResult::kError) {
    // Rejections must carry one of the statuses the server knows how to
    // answer with (and a reason phrase exists for each).
    switch (whole.status) {
      case 400: case 405: case 411: case 413: case 414: case 431: case 505:
        break;
      default:
        __builtin_trap();
    }
    if (axon::http::StatusReason(whole.status) == "Unknown") {
      __builtin_trap();
    }
  }

  // Percent-decoding is reachable from the raw query string; it must be
  // total too.
  std::string decoded;
  (void)axon::http::PercentDecode(wire.substr(0, std::min<size_t>(
                                                     wire.size(), 512)),
                                  &decoded);

  // Response serialization round-trip on fuzz-shaped bodies.
  axon::http::Response resp;
  resp.status = 200;
  resp.content_type = "text/plain";
  resp.body = std::string(wire.substr(0, std::min<size_t>(wire.size(), 256)));
  resp.chunked = (size % 2) == 0;
  (void)axon::http::SerializeResponse(resp);
  return 0;
}
