// Fuzz target for the N-Triples reader (src/rdf/ntriples.cc).
//
// Beyond "don't crash", the target checks the parse/print round-trip
// invariant: every statement the parser accepts must re-serialize to text
// the parser accepts again, yielding an equal statement. That turns the
// fuzzer into a differential test of the reader against the writer.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <string_view>

#include "rdf/ntriples.h"
#include "rdf/term.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  std::string_view text(reinterpret_cast<const char*>(data), size);
  auto parsed = axon::ParseNTriplesToVector(text);
  if (!parsed.ok()) return 0;  // rejection is fine; crashing is not
  for (const axon::TermTriple& t : parsed.value()) {
    std::string line = t.s.Canonical() + " " + t.p.Canonical() + " " +
                       t.o.Canonical() + " .\n";
    auto again = axon::ParseNTriplesToVector(line);
    if (!again.ok() || again.value().size() != 1 ||
        !(again.value()[0] == t)) {
      std::abort();  // round-trip broken: surface as a fuzzer finding
    }
  }
  return 0;
}
