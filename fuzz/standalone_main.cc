// Standalone driver for the fuzz targets, for toolchains without
// libFuzzer (the containerized GCC build). Links against the same
// LLVMFuzzerTestOneInput entry point clang's -fsanitize=fuzzer uses, so a
// target builds unchanged either way.
//
// Modes:
//   fuzz_x FILE...              replay each file once (corpus / regression
//                               replay; exit 0 iff none crashed)
//   fuzz_x --mutate SECONDS DIR seeded mutational loop: load DIR as the
//                               corpus, then mutate random picks for
//                               SECONDS wall-clock seconds. New inputs that
//                               crash are written next to the binary as
//                               crash-<hash> before the driver aborts.
//
// The mutator is deliberately simple (bit flips, byte edits, splices,
// truncation) — it is a smoke harness, not a coverage-guided engine; CI
// runs the real libFuzzer build.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>((std::istreambuf_iterator<char>(in)),
                              std::istreambuf_iterator<char>());
}

uint64_t Fnv1a(const std::vector<uint8_t>& data) {
  uint64_t h = 1469598103934665603ull;
  for (uint8_t b : data) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

// Writes the crashing input before the target's abort tears us down.
// Registered state for the terminate path via a global.
std::vector<uint8_t> g_current;
bool g_in_mutate = false;

void DumpCurrentInput() {
  if (!g_in_mutate || g_current.empty()) return;
  char name[64];
  std::snprintf(name, sizeof(name), "crash-%016llx",
                static_cast<unsigned long long>(Fnv1a(g_current)));
  std::ofstream out(name, std::ios::binary);
  out.write(reinterpret_cast<const char*>(g_current.data()),
            static_cast<std::streamsize>(g_current.size()));
  std::fprintf(stderr, "crashing input saved to %s (%zu bytes)\n", name,
               g_current.size());
}

std::vector<uint8_t> Mutate(std::vector<uint8_t> input,
                            const std::vector<std::vector<uint8_t>>& corpus,
                            std::mt19937_64* rng) {
  auto rand_below = [&](size_t n) {
    return static_cast<size_t>((*rng)() % (n == 0 ? 1 : n));
  };
  int rounds = 1 + static_cast<int>(rand_below(4));
  for (int r = 0; r < rounds; ++r) {
    switch (rand_below(6)) {
      case 0:  // bit flip
        if (!input.empty()) {
          input[rand_below(input.size())] ^=
              static_cast<uint8_t>(1u << rand_below(8));
        }
        break;
      case 1:  // random byte overwrite
        if (!input.empty()) {
          input[rand_below(input.size())] = static_cast<uint8_t>((*rng)());
        }
        break;
      case 2:  // insert a byte (favour structural N-Triples/SPARQL chars)
        {
          static const char kInteresting[] = "<>\"{}?.;,@^#\\\n\x00\xff";
          uint8_t b = rand_below(2) == 0
                          ? static_cast<uint8_t>((*rng)())
                          : static_cast<uint8_t>(
                                kInteresting[rand_below(sizeof(kInteresting))]);
          input.insert(input.begin() +
                           static_cast<std::ptrdiff_t>(
                               rand_below(input.size() + 1)),
                       b);
        }
        break;
      case 3:  // delete a span
        if (!input.empty()) {
          size_t at = rand_below(input.size());
          size_t len = 1 + rand_below(8);
          input.erase(input.begin() + static_cast<std::ptrdiff_t>(at),
                      input.begin() + static_cast<std::ptrdiff_t>(
                                          std::min(at + len, input.size())));
        }
        break;
      case 4:  // truncate
        if (!input.empty()) input.resize(rand_below(input.size()));
        break;
      case 5:  // splice with another corpus member
        if (!corpus.empty()) {
          const auto& other = corpus[rand_below(corpus.size())];
          size_t cut_a = rand_below(input.size() + 1);
          size_t cut_b = rand_below(other.size() + 1);
          input.resize(cut_a);
          input.insert(input.end(), other.begin(),
                       other.begin() + static_cast<std::ptrdiff_t>(cut_b));
        }
        break;
    }
  }
  if (input.size() > 65536) input.resize(65536);
  return input;
}

int RunMutateLoop(double seconds, const std::string& dir) {
  std::vector<std::vector<uint8_t>> corpus;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) corpus.push_back(ReadFile(entry.path()));
  }
  if (corpus.empty()) {
    std::fprintf(stderr, "no seeds in %s\n", dir.c_str());
    return 2;
  }
  std::atexit(DumpCurrentInput);
  g_in_mutate = true;
  std::mt19937_64 rng(0x9e3779b97f4a7c15ull);
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::duration<double>(seconds);
  uint64_t execs = 0;
  // Replay the seeds themselves first.
  for (const auto& seed : corpus) {
    g_current = seed;
    LLVMFuzzerTestOneInput(seed.data(), seed.size());
    ++execs;
  }
  while (std::chrono::steady_clock::now() < deadline) {
    g_current = Mutate(corpus[static_cast<size_t>(rng() % corpus.size())],
                       corpus, &rng);
    LLVMFuzzerTestOneInput(g_current.data(), g_current.size());
    ++execs;
  }
  g_in_mutate = false;  // disarm the atexit dump: this is a clean exit
  std::fprintf(stderr, "mutate loop done: %llu execs, no crashes\n",
               static_cast<unsigned long long>(execs));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 4 && std::strcmp(argv[1], "--mutate") == 0) {
    return RunMutateLoop(std::atof(argv[2]), argv[3]);
  }
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    std::vector<uint8_t> data = ReadFile(argv[i]);
    LLVMFuzzerTestOneInput(data.data(), data.size());
    ++replayed;
  }
  std::fprintf(stderr, "replayed %d input(s), no crashes\n", replayed);
  return 0;
}
