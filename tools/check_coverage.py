#!/usr/bin/env python3
"""Coverage gate: measure line coverage of src/ and compare to a baseline.

Runs gcov (JSON mode) over every .gcda a --coverage build produced, merges
execution counts per source line, and reports the line-coverage percentage
over the library sources (src/ only — tests, benches, tools and third-party
headers are excluded). The committed baseline (bench/baselines/coverage.json)
is a ratchet: the job fails when coverage drops more than --tolerance
percentage points below it, and nudges when it rises enough that the
baseline should be re-pinned.

Usage:
  # after: cmake -B build-cov -S . -DAXON_COVERAGE=ON && build && ctest
  tools/check_coverage.py --build-dir build-cov
  tools/check_coverage.py --build-dir build-cov --update   # re-pin baseline
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "bench", "baselines",
                                "coverage.json")


def find_gcda(build_dir):
    out = []
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcda"):
                # Absolute: gcov runs from a scratch directory so its
                # *.gcov litter never lands in the tree.
                out.append(os.path.abspath(os.path.join(root, name)))
    return sorted(out)


def run_gcov(gcda_files, gcov_binary):
    """Yields parsed gcov JSON documents, one per .gcda."""
    with tempfile.TemporaryDirectory() as scratch:
        for gcda in gcda_files:
            proc = subprocess.run(
                [gcov_binary, "--json-format", "--stdout", gcda],
                cwd=scratch,
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                check=False,
            )
            if proc.returncode != 0 or not proc.stdout:
                continue
            # --stdout emits one JSON document per input file.
            for chunk in proc.stdout.splitlines():
                if not chunk.strip():
                    continue
                try:
                    yield json.loads(chunk)
                except json.JSONDecodeError:
                    continue


def in_scope(source_path):
    """Only first-party library sources count toward the gate."""
    path = os.path.normpath(os.path.join(REPO_ROOT, source_path)
                            if not os.path.isabs(source_path)
                            else source_path)
    rel = os.path.relpath(path, REPO_ROOT)
    return rel.startswith("src" + os.sep) and not rel.startswith("..")


def collect(build_dir, gcov_binary):
    """Returns {relative_source: {line_number: max_count}}."""
    gcda_files = find_gcda(build_dir)
    if not gcda_files:
        sys.exit(f"error: no .gcda files under {build_dir} — "
                 "build with -DAXON_COVERAGE=ON and run ctest first")
    lines_by_file = {}
    for doc in run_gcov(gcda_files, gcov_binary):
        for f in doc.get("files", []):
            source = f.get("file", "")
            if not in_scope(source):
                continue
            rel = os.path.relpath(
                os.path.normpath(os.path.join(REPO_ROOT, source)
                                 if not os.path.isabs(source) else source),
                REPO_ROOT)
            per_line = lines_by_file.setdefault(rel, {})
            for line in f.get("lines", []):
                num = line.get("line_number")
                count = line.get("count", 0)
                if num is None:
                    continue
                per_line[num] = max(per_line.get(num, 0), count)
    return lines_by_file


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build-cov",
                    help="coverage build tree holding the .gcda files")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE)
    ap.add_argument("--tolerance", type=float, default=1.0,
                    help="allowed drop in percentage points (default 1.0)")
    ap.add_argument("--gcov", default=os.environ.get("GCOV", "gcov"))
    ap.add_argument("--update", action="store_true",
                    help="re-pin the baseline to the measured value")
    ap.add_argument("--verbose", action="store_true",
                    help="print the per-file breakdown")
    args = ap.parse_args()

    lines_by_file = collect(args.build_dir, args.gcov)
    total = covered = 0
    per_file = {}
    for rel in sorted(lines_by_file):
        lines = lines_by_file[rel]
        file_total = len(lines)
        file_covered = sum(1 for c in lines.values() if c > 0)
        total += file_total
        covered += file_covered
        if file_total:
            per_file[rel] = round(100.0 * file_covered / file_total, 2)
    if total == 0:
        sys.exit("error: gcov reported no src/ lines")
    percent = round(100.0 * covered / total, 2)

    if args.verbose:
        for rel, pct in sorted(per_file.items()):
            print(f"  {pct:6.2f}%  {rel}")
    print(f"line coverage (src/): {percent:.2f}% "
          f"({covered}/{total} lines, {len(per_file)} files)")

    if args.update:
        payload = {
            "line_coverage_percent": percent,
            "lines_covered": covered,
            "lines_total": total,
            "files": len(per_file),
        }
        os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
        with open(args.baseline, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"baseline updated: {args.baseline}")
        return

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except FileNotFoundError:
        sys.exit(f"error: baseline {args.baseline} missing — run with "
                 "--update to create it")
    pinned = baseline["line_coverage_percent"]
    floor = pinned - args.tolerance
    print(f"baseline: {pinned:.2f}% (floor {floor:.2f}%)")
    if percent < floor:
        sys.exit(f"FAIL: coverage {percent:.2f}% fell more than "
                 f"{args.tolerance}pp below the {pinned:.2f}% baseline")
    if percent > pinned + 2.0:
        print(f"note: coverage rose to {percent:.2f}% — consider re-pinning "
              "the baseline with --update")
    print("OK: coverage gate passed")


if __name__ == "__main__":
    main()
