// chaos_run — command-line driver for the chaos harness.
//
// Modes:
//
//   chaos_run --seed=N [--cycles=K] [--ops=M] [--dir=PATH]
//             [--no-crashes] [--verbose]
//     Replays the seeded chaos schedule (src/chaos/chaos_harness) and
//     prints the armed-site schedule — the exact reproducer for any
//     failure — plus the invariant report. Exit code 1 on violations.
//
//   chaos_run --failpoints=SPEC [--seed=N] [--ops=M] [--dir=PATH]
//     Arms an explicit AXON_FAILPOINTS-syntax spec (e.g.
//     "wal.sync=err@0.3,pool.task=delay:5ms"), runs one deterministic
//     update/query workload against a durable store, prints per-site hit
//     counts, then verifies every acknowledged write survives reopen.
//
//   chaos_run --write-dbfile-corpus=DIR
//     Regenerates the seed corpus for fuzz_dbfile (valid, truncated,
//     corrupted, zero-length-section and degenerate db files).
//
//   chaos_run --overload [--clients=N] [--queries=M] [--max-concurrent=K]
//             [--seed=S] [--failpoints=SPEC]
//     Overload soak: N client threads push M queries through a
//     GovernedEngine with a K-slot admission gate and a small memory
//     budget, optionally under armed failpoints. Verifies every query
//     resolves to an allowed status and that the governor's accounting
//     identity covers all M queries exactly. Exit code 1 on violations.
//
// Without -DAXON_FAILPOINTS=ON the fault schedules degrade to clean
// cycles; the tool says so rather than pretending to inject.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "baselines/sixperm_engine.h"
#include "chaos/chaos_harness.h"
#include "datagen/lubm_generator.h"
#include "engine/database.h"
#include "engine/governed_engine.h"
#include "engine/update_store.h"
#include "storage/db_file.h"
#include "util/failpoint.h"
#include "util/mmap_file.h"
#include "util/random.h"
#include "workloads/workloads.h"

namespace axon {
namespace {

struct Args {
  uint64_t seed = 1;
  uint64_t cycles = 50;
  uint64_t ops = 48;
  std::string dir = "/tmp/axon_chaos_run";
  std::string failpoints;
  std::string corpus_dir;
  bool no_crashes = false;
  bool verbose = false;
  bool overload = false;
  uint64_t clients = 8;
  uint64_t queries = 200;
  uint64_t max_concurrent = 2;
};

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "--seed", &v)) {
      args->seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--cycles", &v)) {
      args->cycles = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--ops", &v)) {
      args->ops = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--dir", &v)) {
      args->dir = v;
    } else if (ParseFlag(argv[i], "--failpoints", &v)) {
      args->failpoints = v;
    } else if (ParseFlag(argv[i], "--write-dbfile-corpus", &v)) {
      args->corpus_dir = v;
    } else if (ParseFlag(argv[i], "--clients", &v)) {
      args->clients = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--queries", &v)) {
      args->queries = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "--max-concurrent", &v)) {
      args->max_concurrent = std::strtoull(v.c_str(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--overload") == 0) {
      args->overload = true;
    } else if (std::strcmp(argv[i], "--no-crashes") == 0) {
      args->no_crashes = true;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      args->verbose = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

// --------------------------------------------------------------- corpus

Status WriteCorpusFile(const std::string& dir, const std::string& name,
                       const std::string& bytes) {
  const std::string path = dir + "/" + name;
  AXON_RETURN_NOT_OK(WriteStringToFile(path, bytes));
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), bytes.size());
  return Status::OK();
}

int WriteDbfileCorpus(const std::string& dir) {
  // Seed 1: a real (small) database file.
  Dataset data;
  Status parsed = data.AddNTriples(
      "<http://c/a> <http://c/p> <http://c/b> .\n"
      "<http://c/a> <http://c/q> \"v1\" .\n"
      "<http://c/b> <http://c/p> <http://c/c> .\n"
      "<http://c/c> <http://c/q> \"v2\" .\n");
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s\n", parsed.ToString().c_str());
    return 1;
  }
  auto built = Database::Build(data);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  const std::string tmp = dir + "/.seed_build.tmp";
  Status saved = built.value().Save(tmp);
  if (!saved.ok()) {
    std::fprintf(stderr, "%s\n", saved.ToString().c_str());
    return 1;
  }
  std::string db_bytes;
  Status read = ReadFileToString(tmp, &db_bytes);
  std::remove(tmp.c_str());
  if (!read.ok()) {
    std::fprintf(stderr, "%s\n", read.ToString().c_str());
    return 1;
  }

  // Seed 2: a handmade section file with a zero-length section.
  const std::string tmp2 = dir + "/.seed_sections.tmp";
  DbFileWriter w;
  std::string section_bytes;
  if (w.Open(tmp2).ok() && w.AddSection("alpha", "alpha-payload").ok() &&
      w.AddSection("empty", "").ok() &&
      w.AddSection("beta", std::string(256, 'b')).ok() && w.Finish().ok()) {
    (void)ReadFileToString(tmp2, &section_bytes);
  }
  std::remove(tmp2.c_str());

  std::string truncated = db_bytes.substr(0, db_bytes.size() / 2);
  std::string corrupt = db_bytes;
  if (!corrupt.empty()) corrupt[corrupt.size() / 3] ^= 0x10;
  std::string toc_bent = db_bytes;
  if (toc_bent.size() > 16) {
    char& b = toc_bent[toc_bent.size() - 12];
    b = static_cast<char>(b ^ 0xFF);
  }

  Status st = Status::OK();
  if (st.ok()) st = WriteCorpusFile(dir, "seed_db_full.bin", db_bytes);
  if (st.ok()) st = WriteCorpusFile(dir, "seed_sections.bin", section_bytes);
  if (st.ok()) st = WriteCorpusFile(dir, "seed_db_truncated.bin", truncated);
  if (st.ok()) st = WriteCorpusFile(dir, "seed_db_bitflip.bin", corrupt);
  if (st.ok()) st = WriteCorpusFile(dir, "seed_db_toc_bent.bin", toc_bent);
  if (st.ok()) st = WriteCorpusFile(dir, "seed_empty.bin", "");
  if (st.ok()) {
    st = WriteCorpusFile(dir, "seed_header_only.bin", db_bytes.substr(0, 16));
  }
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}

// ------------------------------------------------- explicit-spec driver

int RunExplicitSpec(const Args& args) {
  if (!failpoint::CompiledIn()) {
    std::printf(
        "note: failpoint sites are compiled out (-DAXON_FAILPOINTS=OFF); "
        "the spec arms but injects nothing\n");
  }
  failpoint::SetSeed(args.seed);
  Status armed = failpoint::ArmFromSpec(args.failpoints);
  if (!armed.ok()) {
    std::fprintf(stderr, "bad --failpoints: %s\n", armed.ToString().c_str());
    return 2;
  }
  std::printf("armed sites (seed %llu):\n",
              static_cast<unsigned long long>(args.seed));
  for (const auto& [site, spec] : failpoint::ArmedSites()) {
    std::printf("  %-28s %s\n", site.c_str(), spec.c_str());
  }

  const std::string path = args.dir + "/explicit_store.db";
  std::remove(path.c_str());
  std::remove((path + ".wal").c_str());
  std::remove((path + ".tmp").c_str());
  UpdateOptions options;
  options.compaction_threshold = 24;

  std::set<std::string> acked, uncertain;
  uint64_t ok_ops = 0, failed_ops = 0, failed_queries = 0;
  {
    auto opened = UpdatableDatabase::OpenDurable(path, options);
    if (!opened.ok()) {
      // With error faults armed this is a legal outcome — report it.
      std::printf("OpenDurable: %s\n", opened.status().ToString().c_str());
      failpoint::DisarmAll();
      return 0;
    }
    UpdatableDatabase db = std::move(opened).ValueOrDie();
    Random rng(args.seed);
    for (uint64_t i = 0; i < args.ops; ++i) {
      const uint64_t roll = rng.Uniform(10);
      if (roll == 0) {
        auto qr = db.ExecuteSparql(
            "SELECT ?s ?o WHERE { ?s <http://chaos.axon/p" +
            std::to_string(rng.Uniform(6)) + "> ?o }");
        if (!qr.ok()) ++failed_queries;
        continue;
      }
      TermTriple t;
      t.s = Term::Iri("http://chaos.axon/s" + std::to_string(rng.Uniform(24)));
      t.p = Term::Iri("http://chaos.axon/p" + std::to_string(rng.Uniform(6)));
      t.o = Term::Iri("http://chaos.axon/o" + std::to_string(rng.Uniform(40)));
      std::string line = WriteNTriplesLine(t);
      while (!line.empty() && line.back() == '\n') line.pop_back();
      const bool insert = roll < 7;
      const Status st = insert ? db.Insert(t) : db.Delete(t);
      if (st.ok()) {
        ++ok_ops;
        uncertain.erase(line);
        if (insert) {
          acked.insert(line);
        } else {
          acked.erase(line);
        }
      } else {
        ++failed_ops;
        uncertain.insert(line);
        if (args.verbose) {
          std::printf("op %llu: %s\n", static_cast<unsigned long long>(i),
                      st.ToString().c_str());
        }
      }
    }
  }

  std::printf("\nper-site hits:\n");
  for (const auto& [site, spec] : failpoint::ArmedSites()) {
    std::printf("  %-28s %llu\n", site.c_str(),
                static_cast<unsigned long long>(failpoint::Hits(site)));
  }
  failpoint::DisarmAll();

  // Reopen fault-free: every acknowledged write must be there.
  int violations = 0;
  auto reopened = UpdatableDatabase::OpenDurable(path, options);
  if (!reopened.ok()) {
    std::fprintf(stderr, "VIOLATION: reopen failed: %s\n",
                 reopened.status().ToString().c_str());
    ++violations;
  } else {
    auto lines = reopened.value().ExportLines();
    if (!lines.ok()) {
      std::fprintf(stderr, "VIOLATION: export failed: %s\n",
                   lines.status().ToString().c_str());
      ++violations;
    } else {
      const std::set<std::string> present(lines.value().begin(),
                                          lines.value().end());
      for (const std::string& line : acked) {
        if (present.count(line) == 0 && uncertain.count(line) == 0) {
          std::fprintf(stderr, "VIOLATION: acknowledged write lost: %s\n",
                       line.c_str());
          ++violations;
        }
      }
    }
  }
  std::printf(
      "\nops ok=%llu failed=%llu queries-failed=%llu; reopen %s; "
      "%d violation(s)\n",
      static_cast<unsigned long long>(ok_ops),
      static_cast<unsigned long long>(failed_ops),
      static_cast<unsigned long long>(failed_queries),
      reopened.ok() ? "ok" : "FAILED", violations);
  return violations == 0 ? 0 : 1;
}

// ------------------------------------------------------- overload driver

int RunOverload(const Args& args) {
  if (!args.failpoints.empty()) {
    if (!failpoint::CompiledIn()) {
      std::printf(
          "note: failpoint sites are compiled out (-DAXON_FAILPOINTS=OFF); "
          "the spec arms but injects nothing\n");
    }
    failpoint::SetSeed(args.seed);
    Status armed = failpoint::ArmFromSpec(args.failpoints);
    if (!armed.ok()) {
      std::fprintf(stderr, "bad --failpoints: %s\n", armed.ToString().c_str());
      return 2;
    }
    std::printf("armed sites (seed %llu):\n",
                static_cast<unsigned long long>(args.seed));
    for (const auto& [site, spec] : failpoint::ArmedSites()) {
      std::printf("  %-28s %s\n", site.c_str(), spec.c_str());
    }
  }

  // Small LUBM dataset; primary runs with internal parallelism under the
  // admission gate, the SixPerm baseline is the degradation target.
  LubmConfig cfg;
  cfg.num_universities = 2;
  Dataset data = GenerateLubmDataset(cfg);
  EngineOptions engine_opts;
  engine_opts.parallelism = 2;
  auto built = Database::Build(data, engine_opts);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 2;
  }
  Database primary = std::move(built).ValueOrDie();
  SixPermEngine fallback = SixPermEngine::Build(data);

  GovernedOptions gov_opts;
  gov_opts.admission.max_concurrent =
      static_cast<uint32_t>(args.max_concurrent);
  gov_opts.admission.max_queue = 6;
  gov_opts.admission.queue_wait_millis = 500;
  gov_opts.memory_budget_bytes = 16 << 10;
  gov_opts.degrade_to_baseline = true;
  gov_opts.degrade_backoff_millis = 1;
  gov_opts.seed = args.seed;
  GovernedEngine governed(&primary, &fallback, gov_opts);

  std::vector<SelectQuery> pool;
  for (const WorkloadQuery& wq : LubmOriginalWorkload().queries) {
    auto q = ParseSparql(wq.sparql);
    if (q.ok()) pool.push_back(std::move(q).ValueOrDie());
  }
  if (pool.empty()) {
    std::fprintf(stderr, "no parsable workload queries\n");
    return 2;
  }

  const uint64_t total = args.queries;
  const uint64_t clients = args.clients == 0 ? 1 : args.clients;
  std::atomic<uint64_t> next{0};
  std::atomic<uint64_t> bad_status{0};
  std::vector<CancellationToken> tokens(total);
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (uint64_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      Random rng(args.seed * 1000003 + c);
      for (;;) {
        const uint64_t i = next.fetch_add(1);
        if (i >= total) return;
        // Every 16th query is pre-cancelled: a deterministic source of
        // kCancelled outcomes in the accounting.
        if (i % 16 == 15) tokens[i].Cancel();
        const SelectQuery& q = pool[rng.Uniform(pool.size())];
        auto r = governed.ExecuteCancellable(q, &tokens[i]);
        const StatusCode code = r.ok() ? StatusCode::kOk : r.status().code();
        switch (code) {
          case StatusCode::kOk:
          case StatusCode::kResourceExhausted:
          case StatusCode::kCancelled:
          case StatusCode::kDeadlineExceeded:
            break;
          case StatusCode::kUnavailable:
            // Honor the retry-after hint (well-behaved client): pausing
            // lets queued waiters take freed slots, so the soak exercises
            // the queue path, not just instant shedding.
            std::this_thread::sleep_for(std::chrono::milliseconds(
                governed.options().admission.retry_after_millis));
            break;
          default:
            bad_status.fetch_add(1);
            std::fprintf(stderr, "VIOLATION: disallowed status: %s\n",
                         r.status().ToString().c_str());
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();

  if (!args.failpoints.empty()) {
    std::printf("\nper-site hits:\n");
    for (const auto& [site, spec] : failpoint::ArmedSites()) {
      std::printf("  %-28s %llu\n", site.c_str(),
                  static_cast<unsigned long long>(failpoint::Hits(site)));
    }
    failpoint::DisarmAll();
  }

  const GovernorCounters gov = governed.governor().Snapshot();
  std::printf(
      "\nsubmitted=%llu admitted=%llu queued=%llu shed=%llu completed=%llu "
      "budget_killed=%llu cancelled=%llu deadline_expired=%llu degraded=%llu "
      "failed=%llu\n",
      static_cast<unsigned long long>(gov.submitted),
      static_cast<unsigned long long>(gov.admitted),
      static_cast<unsigned long long>(gov.queued),
      static_cast<unsigned long long>(gov.shed),
      static_cast<unsigned long long>(gov.completed),
      static_cast<unsigned long long>(gov.budget_killed),
      static_cast<unsigned long long>(gov.cancelled),
      static_cast<unsigned long long>(gov.deadline_expired),
      static_cast<unsigned long long>(gov.degraded),
      static_cast<unsigned long long>(gov.failed));

  int violations = static_cast<int>(bad_status.load());
  if (gov.submitted != total) {
    std::fprintf(stderr, "VIOLATION: submitted %llu != %llu queries\n",
                 static_cast<unsigned long long>(gov.submitted),
                 static_cast<unsigned long long>(total));
    ++violations;
  }
  const uint64_t resolved = gov.shed + gov.completed + gov.budget_killed +
                            gov.cancelled + gov.deadline_expired +
                            gov.degraded + gov.failed;
  if (resolved != gov.submitted) {
    std::fprintf(stderr,
                 "VIOLATION: outcomes %llu do not account for %llu submitted\n",
                 static_cast<unsigned long long>(resolved),
                 static_cast<unsigned long long>(gov.submitted));
    ++violations;
  }
  if (violations == 0) {
    std::printf("all %llu queries accounted for; no disallowed statuses\n",
                static_cast<unsigned long long>(total));
    return 0;
  }
  return 1;
}

// ------------------------------------------------------------ main mode

int RunSchedule(const Args& args) {
  chaos::ChaosOptions options;
  options.seed = args.seed;
  options.cycles = args.cycles;
  options.ops_per_cycle = args.ops;
  options.dir = args.dir;
  options.enable_crashes = !args.no_crashes;
  options.verbose = args.verbose;

  if (!failpoint::CompiledIn()) {
    std::printf(
        "note: failpoint sites are compiled out (-DAXON_FAILPOINTS=OFF); "
        "every cycle degrades to a clean durability round trip\n");
  }
  const chaos::ChaosReport report = chaos::RunChaos(options);

  std::printf("armed-site schedule (seed %llu):\n",
              static_cast<unsigned long long>(args.seed));
  for (const std::string& line : report.schedule) {
    std::printf("  %s\n", line.c_str());
  }
  std::printf(
      "\ncycles=%llu acked=%llu rejected=%llu errors=%llu crashes=%llu "
      "corruptions=%llu salvages=%llu\n",
      static_cast<unsigned long long>(report.cycles_run),
      static_cast<unsigned long long>(report.ops_acknowledged),
      static_cast<unsigned long long>(report.ops_rejected),
      static_cast<unsigned long long>(report.errors_injected),
      static_cast<unsigned long long>(report.crashes_injected),
      static_cast<unsigned long long>(report.corruptions_detected),
      static_cast<unsigned long long>(report.salvage_opens));
  if (!report.ok()) {
    for (const std::string& v : report.violations) {
      std::fprintf(stderr, "VIOLATION: %s\n", v.c_str());
    }
    return 1;
  }
  std::printf("all invariants held\n");
  return 0;
}

int Main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return 2;
  if (!args.corpus_dir.empty()) return WriteDbfileCorpus(args.corpus_dir);
  if (args.overload) return RunOverload(args);
  ::system(("mkdir -p '" + args.dir + "'").c_str());
  if (!args.failpoints.empty()) return RunExplicitSpec(args);
  return RunSchedule(args);
}

}  // namespace
}  // namespace axon

int main(int argc, char** argv) { return axon::Main(argc, argv); }
